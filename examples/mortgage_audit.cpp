// Mortgage-lending audit (the paper's LAR scenario, end to end):
// statistical-parity audit of loan approvals over the synthetic HMDA-like
// dataset, with three region families — a coarse grid, a fine grid, and
// unrestricted k-means-centered squares — plus directional red/green scans
// and non-overlapping evidence selection.
#include <cstdio>

#include "common/macros.h"
#include "core/audit.h"
#include "core/evidence.h"
#include "core/export.h"
#include "core/grid_family.h"
#include "core/report.h"
#include "core/square_family.h"
#include "data/lar_sim.h"
#include "stats/kmeans.h"

namespace {

void PrintTop(const char* title, const std::vector<sfa::core::RegionFinding>& fs,
              size_t k) {
  std::printf("\n%s (%zu total)\n", title, fs.size());
  std::printf("%s", sfa::core::FormatFindingsTable(fs, k).c_str());
}

}  // namespace

int main() {
  // Modest scale so the example runs in seconds; bump for the full 206k.
  sfa::data::LarSimOptions lar_opts;
  lar_opts.num_locations = 15000;
  lar_opts.num_applications = 60000;
  auto lar = sfa::data::MakeLarSim(lar_opts);
  SFA_CHECK_OK(lar.status());
  const sfa::data::OutcomeDataset& dataset = lar->dataset;
  std::printf("%s\n", dataset.Summary().c_str());
  std::printf("Question: does every area have the same chance of loan approval?\n");

  sfa::core::AuditOptions options;
  options.alpha = 0.005;
  options.monte_carlo.num_worlds = 499;

  // --- Pass 1: coarse grid (fast triage).
  auto coarse = sfa::core::GridPartitionFamily::Create(dataset.locations(), 25, 12);
  SFA_CHECK_OK(coarse.status());
  auto coarse_result = sfa::core::Auditor(options).Audit(dataset, **coarse);
  SFA_CHECK_OK(coarse_result.status());
  std::printf("\n%s",
              sfa::core::FormatAuditSummary(*coarse_result, "LAR @ 25x12").c_str());

  // --- Pass 2: unrestricted squares around k-means centers (the paper's
  //     Fig. 5 pipeline), with non-overlapping evidence.
  sfa::stats::KMeansOptions km;
  km.k = 50;
  km.seed = 7;
  auto clusters = sfa::stats::KMeans(dataset.locations(), km);
  SFA_CHECK_OK(clusters.status());
  sfa::core::SquareScanOptions scan;
  scan.centers = clusters->centers;
  scan.side_lengths = sfa::core::SquareScanOptions::DefaultSideLengths();
  auto squares = sfa::core::SquareScanFamily::Create(dataset.locations(), scan);
  SFA_CHECK_OK(squares.status());

  auto square_result = sfa::core::Auditor(options).Audit(dataset, **squares);
  SFA_CHECK_OK(square_result.status());
  const auto exhibits = sfa::core::SelectNonOverlapping(
      sfa::core::BestPerGroup(square_result->findings));
  PrintTop("Non-overlapping unfair regions (any direction)", exhibits, 10);

  // --- Pass 3: directional scans — where are approvals depressed (red) or
  //     elevated (green)?
  sfa::core::AuditOptions red_opts = options;
  red_opts.direction = sfa::stats::ScanDirection::kLow;
  auto red = sfa::core::Auditor(red_opts).Audit(dataset, **squares);
  SFA_CHECK_OK(red.status());
  PrintTop("RED regions: approval rate significantly below the rest",
           sfa::core::SelectNonOverlapping(sfa::core::BestPerGroup(red->findings)),
           5);

  sfa::core::AuditOptions green_opts = options;
  green_opts.direction = sfa::stats::ScanDirection::kHigh;
  auto green = sfa::core::Auditor(green_opts).Audit(dataset, **squares);
  SFA_CHECK_OK(green.status());
  PrintTop("GREEN regions: approval rate significantly above the rest",
           sfa::core::SelectNonOverlapping(sfa::core::BestPerGroup(green->findings)),
           5);

  // --- Deliverables: the exhibits as GeoJSON (drop into any map viewer)
  //     and CSV (for the audit report appendix).
  const std::string geojson_path = "/tmp/sfa_mortgage_exhibits.geojson";
  const std::string csv_path = "/tmp/sfa_mortgage_exhibits.csv";
  SFA_CHECK_OK(sfa::core::WriteFindingsGeoJson(exhibits, geojson_path));
  SFA_CHECK_OK(sfa::core::WriteFindingsCsv(exhibits, csv_path));
  std::printf("\nExhibits written to %s and %s\n", geojson_path.c_str(),
              csv_path.c_str());

  std::printf(
      "\nAn auditor would now cross-check the red exhibits against protected\n"
      "demographics (redlining) and the green ones against gentrification\n"
      "pressure — the audit supplies the *where*, with significance.\n");
  return 0;
}
