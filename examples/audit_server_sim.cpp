// Audit server simulation: drives the STREAMING audit service the way a
// production endpoint would — concurrent producers submit mixed-priority
// requests through the bounded admission queue, dispatcher workers yield
// each response the moment it finishes, and the calibration cache persists
// to an on-disk CalibrationStore. The run then simulates a process restart:
// a fresh pipeline (empty memory cache) warm-starts from the store
// directory, replays the same request stream, and the sim verifies the
// replayed responses are byte-identical to the live run with ZERO Monte
// Carlo simulations — the persisted-warm contract.
//
// The stream mixes three "cities" (two with planted bias), two fairness
// measures, four α levels, two scan directions, and three priority classes;
// many requests differ only in α or direction-irrelevant knobs, so the
// cache collapses their Monte Carlo calibrations.
//
// Reports per-phase throughput, queue wait and assembly latency
// percentiles, cache/store hit rates, and writes a machine-readable JSON
// run summary (every string routed through the shared core::JsonEscape —
// city and family names are user-controlled in a real deployment).
//
//   SFA_QUICK=1 shrinks the stream for smoke runs (CI builds it and runs it
//   this way).
//
// Fault-drill flags (default off; the default run stays the strict CI smoke):
//
//   --failpoints=<spec>  arms the fault-injection registry with a
//                        common/failpoint.h spec, e.g.
//                        --failpoints='store.write=every(3):corrupt'
//                        (equivalent to the SFA_FAILPOINTS env var);
//   --deadline-ms=<ms>   gives every streamed request that relative deadline
//                        and opts it into graceful degradation, so expiries
//                        surface as degraded/deadline-missed counters
//                        instead of hard failures.
//
// With either flag set, per-request failures are tolerated and reported (the
// exit criteria relax to: no replay failures, no payload mismatch among
// successfully-served-undegraded requests) and the JSON summary grows a
// "faults" object with the armed sites and observed fault counters.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/audit_pipeline.h"
#include "core/calibration_store.h"
#include "core/export.h"
#include "core/grid_family.h"
#include "core/measure.h"
#include "data/dataset.h"

namespace {

using sfa::Rng;
using namespace sfa::core;

struct City {
  std::string name;
  sfa::data::OutcomeDataset dataset;
  sfa::data::OutcomeDataset eo_view;  // equal-opportunity slice (Y=1)
  std::unique_ptr<GridPartitionFamily> sp_family;
  std::unique_ptr<GridPartitionFamily> eo_family;
};

City MakeCity(const std::string& name, uint64_t seed, size_t n,
              double planted_rate) {
  Rng rng(seed);
  City city;
  city.name = name;
  city.dataset.set_name(name);
  const sfa::geo::Rect zone(6.0, 6.0, 9.0, 9.0);
  for (size_t i = 0; i < n; ++i) {
    const sfa::geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const double rate = zone.Contains(loc) ? planted_rate : 0.55;
    city.dataset.Add(loc, rng.Bernoulli(rate) ? 1 : 0,
                     rng.Bernoulli(0.5) ? 1 : 0);
  }
  auto view = BuildMeasureView(city.dataset, FairnessMeasure::kEqualOpportunity);
  SFA_CHECK_OK(view.status());
  city.eo_view = std::move(view).value();
  auto sp = GridPartitionFamily::Create(city.dataset.locations(), 10, 10);
  auto eo = GridPartitionFamily::Create(city.eo_view.locations(), 8, 8);
  SFA_CHECK_OK(sp.status());
  SFA_CHECK_OK(eo.status());
  city.sp_family = std::move(sp).value();
  city.eo_family = std::move(eo).value();
  return city;
}

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double pos = q * (sorted_ms.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  return sorted_ms[lo] + (pos - lo) * (sorted_ms[hi] - sorted_ms[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = [] {
    const char* env = std::getenv("SFA_QUICK");
    return env != nullptr && env[0] == '1';
  }();

  std::string failpoint_spec;
  double deadline_ms = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--failpoints=", 0) == 0) {
      failpoint_spec = arg.substr(std::string("--failpoints=").size());
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::atof(arg.c_str() +
                              std::string("--deadline-ms=").size());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--failpoints=<spec>] [--deadline-ms=<ms>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!failpoint_spec.empty()) {
    const sfa::Status armed =
        sfa::Failpoints::Instance().ArmFromSpec(failpoint_spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "bad --failpoints spec: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
  }
  // Faulted runs tolerate (and report) per-request failures; the default run
  // keeps the strict persisted-warm exit criteria for CI.
  const bool faulted = !failpoint_spec.empty() || deadline_ms > 0.0;
  const size_t city_points = quick ? 4000 : 20000;
  const uint32_t num_worlds = quick ? 99 : 499;
  const size_t num_requests = quick ? 48 : 160;
  const size_t num_producers = 4;

  std::printf("== audit_server_sim: streaming service + persistent calibration "
              "store ==\n");
  std::printf("3 cities x {statistical parity, equal opportunity} x 4 alphas "
              "x 2 directions x 3 priorities, %u worlds/calibration%s\n\n",
              num_worlds, quick ? " (SFA_QUICK=1)" : "");
  if (!failpoint_spec.empty()) {
    std::printf("failpoints armed: %s\n", failpoint_spec.c_str());
  }
  if (deadline_ms > 0.0) {
    std::printf("per-request deadline: %.1f ms (degraded serving enabled)\n",
                deadline_ms);
  }
  if (faulted) std::printf("\n");

  std::vector<City> cities;
  cities.push_back(MakeCity("riverton", 11, city_points, 0.35));
  cities.push_back(MakeCity("lakeside", 22, city_points, 0.55));  // fair
  cities.push_back(MakeCity("hillcrest", 33, city_points, 0.45));

  const double alphas[4] = {0.05, 0.01, 0.005, 0.001};
  const sfa::stats::ScanDirection directions[2] = {
      sfa::stats::ScanDirection::kTwoSided, sfa::stats::ScanDirection::kLow};
  const RequestPriority priorities[3] = {RequestPriority::kInteractive,
                                         RequestPriority::kNormal,
                                         RequestPriority::kBulk};

  // The request stream: uniformly random (city, measure, α, direction,
  // priority) draws, i.e. heavy key collision by design — an α-sweep of one
  // city costs one calibration, not four.
  Rng stream_rng(777);
  std::vector<AuditRequest> requests;
  std::vector<RequestPriority> request_priorities;
  requests.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    const City& city = cities[stream_rng.NextUint64(cities.size())];
    const bool eo = stream_rng.Bernoulli(0.4);
    AuditRequest req;
    req.id = sfa::StrFormat("r%03zu-%s-%s", i, city.name.c_str(),
                            eo ? "eo" : "sp");
    req.dataset = eo ? &city.eo_view : &city.dataset;
    req.dataset_is_view = true;
    req.family = eo ? city.eo_family.get() : city.sp_family.get();
    req.options.measure = eo ? FairnessMeasure::kEqualOpportunity
                             : FairnessMeasure::kStatisticalParity;
    req.options.alpha = alphas[stream_rng.NextUint64(4)];
    req.options.direction = directions[stream_rng.NextUint64(2)];
    req.options.monte_carlo.num_worlds = num_worlds;
    requests.push_back(std::move(req));
    request_priorities.push_back(priorities[stream_rng.NextUint64(3)]);
  }

  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() /
      sfa::StrFormat("sfa_audit_server_sim_store_%d", ::getpid());
  std::filesystem::remove_all(store_dir);

  // ---------------------------------------------------- phase 1: streaming
  std::printf("-- phase 1: streaming service, cold store --\n");
  std::vector<std::shared_ptr<AuditTicket>> tickets(requests.size());
  double stream_wall_ms = 0.0;
  StreamStats stream_stats;
  CalibrationCache::Stats live_cache_stats;
  {
    AuditPipeline pipeline;
    auto store = CalibrationStore::Open({.directory = store_dir.string()});
    SFA_CHECK_OK(store.status());
    pipeline.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*store)));

    StreamOptions opts;
    opts.queue_capacity = 16;
    opts.num_workers = 3;
    opts.block_when_full = true;  // a replayed trace sheds no load
    SFA_CHECK_OK(pipeline.StartStream(opts));

    sfa::Stopwatch wall;
    std::vector<std::thread> producers;
    const size_t per_producer = (requests.size() + num_producers - 1) /
                                num_producers;
    for (size_t p = 0; p < num_producers; ++p) {
      producers.emplace_back([&, p] {
        const size_t begin = p * per_producer;
        const size_t end = std::min(requests.size(), begin + per_producer);
        for (size_t i = begin; i < end; ++i) {
          AuditRequest req = requests[i];
          if (deadline_ms > 0.0) {
            // The drill deadline applies to the live stream only (the replay
            // must re-serve everything to verify the persisted-warm
            // contract); expiries degrade rather than fail outright.
            req.deadline_ms = deadline_ms;
            req.allow_degraded = true;
          }
          auto ticket = pipeline.Submit(std::move(req),
                                        request_priorities[i]);
          if (!ticket.ok()) {
            // Admission rejection (deadline or backpressure) — legal in a
            // faulted run, counted in the stream stats. tickets[i] stays
            // null and the replay comparison skips this request.
            SFA_CHECK_MSG(faulted, "Submit failed in a fault-free run");
            continue;
          }
          tickets[i] = *ticket;
        }
      });
    }
    for (std::thread& t : producers) t.join();
    SFA_CHECK_OK(pipeline.FinishStream());  // drains + flushes write-behind
    stream_wall_ms = wall.ElapsedMillis();
    stream_stats = pipeline.stream_stats();
    live_cache_stats = pipeline.cache().stats();
  }

  std::vector<double> queue_waits, assembly_ms;
  size_t unfair = 0, hits = 0, live_failed = 0, live_degraded = 0;
  size_t not_admitted = 0;
  for (const auto& ticket : tickets) {
    if (ticket == nullptr) {
      ++not_admitted;
      continue;
    }
    const AuditResponse& response = ticket->Get();
    if (!response.status.ok()) {
      SFA_CHECK_MSG(faulted, "request failed in a fault-free run");
      ++live_failed;
      continue;
    }
    queue_waits.push_back(response.queue_wait_ms);
    assembly_ms.push_back(response.assemble_ms);
    if (response.degraded) ++live_degraded;
    if (!response.result.spatially_fair) ++unfair;
    if (response.cache_hit) ++hits;
  }
  if (faulted) {
    std::printf(
        "fault outcomes: not-admitted=%zu failed=%zu degraded=%zu "
        "deadline-misses=%llu store-retries=%llu quarantined=%llu "
        "breaker-trips=%llu breaker-open=%s\n",
        not_admitted, live_failed, live_degraded,
        static_cast<unsigned long long>(stream_stats.deadline_misses),
        static_cast<unsigned long long>(stream_stats.store_retries),
        static_cast<unsigned long long>(stream_stats.store_quarantined),
        static_cast<unsigned long long>(stream_stats.breaker_trips),
        stream_stats.breaker_open ? "true" : "false");
  }
  std::printf(
      "streamed %llu requests in %.1f ms (%.1f req/s): completed=%llu "
      "max-queue-depth=%zu unfair=%zu cache-hits=%zu\n",
      static_cast<unsigned long long>(stream_stats.submitted), stream_wall_ms,
      1e3 * static_cast<double>(stream_stats.submitted) / stream_wall_ms,
      static_cast<unsigned long long>(stream_stats.completed),
      stream_stats.max_queue_depth, unfair, hits);
  std::printf("submit-to-dispatch wait (incl. backpressure blocking): "
              "p50=%.2f ms p90=%.2f ms p99=%.2f ms\n",
              Percentile(queue_waits, 0.50), Percentile(queue_waits, 0.90),
              Percentile(queue_waits, 0.99));
  std::printf("assembly:   p50=%.2f ms p90=%.2f ms p99=%.2f ms\n",
              Percentile(assembly_ms, 0.50), Percentile(assembly_ms, 0.90),
              Percentile(assembly_ms, 0.99));
  std::printf("store writes queued: %llu\n\n",
              static_cast<unsigned long long>(live_cache_stats.store_writes));

  // ------------------------------------------- phase 2: restart and replay
  std::printf("-- phase 2: restart replay, persisted-warm store --\n");
  PipelineManifest replay_manifest;
  size_t mismatches = 0;
  double replay_wall_ms = 0.0;
  {
    AuditPipeline restarted;  // fresh process: empty memory cache
    auto store = CalibrationStore::Open(
        {.directory = store_dir.string(), .create_if_missing = false});
    SFA_CHECK_OK(store.status());
    restarted.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*store)));

    sfa::Stopwatch wall;
    auto replayed = restarted.Run(requests, &replay_manifest);
    SFA_CHECK_OK(replayed.status());
    replay_wall_ms = wall.ElapsedMillis();
    size_t compared = 0;
    for (size_t i = 0; i < requests.size(); ++i) {
      const AuditResponse& replay = (*replayed)[i];
      SFA_CHECK_OK(replay.status);
      // Only a clean, undegraded live response pins the full payload (a
      // degraded one ranks against a shorter prefix by design).
      if (tickets[i] == nullptr) continue;
      const AuditResponse& live = tickets[i]->Get();
      if (!live.status.ok() || live.degraded) continue;
      ++compared;
      // The authoritative full-payload comparison (core::ResultsBitIdentical)
      // — this binary's exit code is the restart-replay pass/fail signal.
      if (!ResultsBitIdentical(live.result, replay.result)) {
        ++mismatches;
        std::printf("MISMATCH at %s: live p=%.17g tau=%.17g vs replay "
                    "p=%.17g tau=%.17g\n",
                    requests[i].id.c_str(), live.result.p_value,
                    live.result.tau, replay.result.p_value, replay.result.tau);
      }
    }
    if (faulted) {
      std::printf("compared %zu cleanly-served responses against the replay\n",
                  compared);
    }
  }
  std::printf(
      "replayed %zu requests in %.1f ms: calibrations computed=%llu "
      "loaded-from-store=%llu reused=%llu — %s\n\n",
      requests.size(), replay_wall_ms,
      static_cast<unsigned long long>(replay_manifest.calibrations_computed),
      static_cast<unsigned long long>(replay_manifest.calibrations_loaded),
      static_cast<unsigned long long>(replay_manifest.calibrations_reused),
      mismatches == 0 ? "byte-identical to the live stream"
                      : "RESPONSES DIVERGED");

  // --------------------------------------------- machine-readable summary
  // Every string below is user-controlled in a real deployment (city names
  // arrive from datasets, family names embed construction parameters), so
  // all of them go through the shared JSON escaper.
  std::string summary;
  summary += sfa::StrFormat(
      "{\"quick\":%s,\"num_requests\":%zu,\"stream\":{\"wall_ms\":%.3f,"
      "\"queue_wait_p90_ms\":%.3f,\"stats\":%s},\"replay\":{\"wall_ms\":%.3f,"
      "\"calibrations_computed\":%llu,\"calibrations_loaded\":%llu,"
      "\"mismatches\":%zu},\"store_dir\":\"%s\",\"cities\":[",
      quick ? "true" : "false", requests.size(), stream_wall_ms,
      Percentile(queue_waits, 0.90), stream_stats.ToJson().c_str(),
      replay_wall_ms,
      static_cast<unsigned long long>(replay_manifest.calibrations_computed),
      static_cast<unsigned long long>(replay_manifest.calibrations_loaded),
      mismatches, JsonEscape(store_dir.string()).c_str());
  for (size_t c = 0; c < cities.size(); ++c) {
    if (c > 0) summary += ',';
    summary += sfa::StrFormat(
        "{\"name\":\"%s\",\"sp_family\":\"%s\",\"eo_family\":\"%s\","
        "\"n\":%zu}",
        JsonEscape(cities[c].name).c_str(),
        JsonEscape(cities[c].sp_family->Name()).c_str(),
        JsonEscape(cities[c].eo_family->Name()).c_str(),
        cities[c].dataset.size());
  }
  summary += "],\"faults\":{\"armed\":[";
  {
    const std::vector<std::string> armed = sfa::Failpoints::Instance().armed();
    for (size_t i = 0; i < armed.size(); ++i) {
      if (i > 0) summary += ',';
      summary += '"' + JsonEscape(armed[i]) + '"';
    }
  }
  summary += sfa::StrFormat(
      "],\"deadline_ms\":%.3f,\"not_admitted\":%zu,\"live_failed\":%zu,"
      "\"live_degraded\":%zu}",
      deadline_ms, not_admitted, live_failed, live_degraded);
  summary += ",\"last_manifest\":";
  summary += replay_manifest.ToJson();
  summary += "}";
  std::printf("== run summary (machine-readable) ==\n%s\n", summary.c_str());

  std::filesystem::remove_all(store_dir);
  // Strict criteria (default run): every replayed calibration must come warm
  // from the store. Faulted runs relax the warm requirement — injected store
  // faults legitimately cost recomputes, and failed live requests never
  // persisted theirs — but payload agreement and replay health stay binding.
  const bool ok = mismatches == 0 && replay_manifest.num_failed == 0 &&
                  (faulted || replay_manifest.calibrations_computed == 0);
  if (!ok) {
    std::printf("\nFAILED: restart replay violated the persisted-warm "
                "contract\n");
  }
  return ok ? 0 : 1;
}
