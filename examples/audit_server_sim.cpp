// Audit server simulation: replays a synthetic stream of audit requests
// through the concurrent AuditPipeline the way a production endpoint would —
// requests arrive in waves, each wave is executed as one batch, and the
// calibration cache stays warm across waves. Reports per-wave throughput,
// end-to-end latency percentiles, cache hit rates, and finishes with the
// machine-readable run manifest of the last wave.
//
// The stream mixes three "cities" (two with planted bias), two fairness
// measures, four α levels, and two scan directions; many requests differ
// only in α or direction-irrelevant knobs, so the cache collapses their
// Monte Carlo calibrations — the effect this binary exists to demonstrate.
//
//   SFA_QUICK=1 shrinks the stream for smoke runs (CI builds it and runs it
//   this way).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/audit_pipeline.h"
#include "core/grid_family.h"
#include "core/measure.h"
#include "data/dataset.h"

namespace {

using sfa::Rng;
using namespace sfa::core;

struct City {
  std::string name;
  sfa::data::OutcomeDataset dataset;
  sfa::data::OutcomeDataset eo_view;  // equal-opportunity slice (Y=1)
  std::unique_ptr<GridPartitionFamily> sp_family;
  std::unique_ptr<GridPartitionFamily> eo_family;
};

City MakeCity(const std::string& name, uint64_t seed, size_t n,
              double planted_rate) {
  Rng rng(seed);
  City city;
  city.name = name;
  city.dataset.set_name(name);
  const sfa::geo::Rect zone(6.0, 6.0, 9.0, 9.0);
  for (size_t i = 0; i < n; ++i) {
    const sfa::geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const double rate = zone.Contains(loc) ? planted_rate : 0.55;
    city.dataset.Add(loc, rng.Bernoulli(rate) ? 1 : 0,
                     rng.Bernoulli(0.5) ? 1 : 0);
  }
  auto view = BuildMeasureView(city.dataset, FairnessMeasure::kEqualOpportunity);
  SFA_CHECK_OK(view.status());
  city.eo_view = std::move(view).value();
  auto sp = GridPartitionFamily::Create(city.dataset.locations(), 10, 10);
  auto eo = GridPartitionFamily::Create(city.eo_view.locations(), 8, 8);
  SFA_CHECK_OK(sp.status());
  SFA_CHECK_OK(eo.status());
  city.sp_family = std::move(sp).value();
  city.eo_family = std::move(eo).value();
  return city;
}

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double pos = q * (sorted_ms.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  return sorted_ms[lo] + (pos - lo) * (sorted_ms[hi] - sorted_ms[lo]);
}

}  // namespace

int main() {
  const bool quick = [] {
    const char* env = std::getenv("SFA_QUICK");
    return env != nullptr && env[0] == '1';
  }();
  const size_t city_points = quick ? 4000 : 20000;
  const uint32_t num_worlds = quick ? 99 : 499;
  const size_t num_waves = quick ? 3 : 5;
  const size_t wave_size = quick ? 16 : 32;

  std::printf("== audit_server_sim: concurrent pipeline + calibration cache ==\n");
  std::printf("3 cities x {statistical parity, equal opportunity} x 4 alphas "
              "x 2 directions, %u worlds/calibration%s\n\n",
              num_worlds, quick ? " (SFA_QUICK=1)" : "");

  std::vector<City> cities;
  cities.push_back(MakeCity("riverton", 11, city_points, 0.35));
  cities.push_back(MakeCity("lakeside", 22, city_points, 0.55));  // fair
  cities.push_back(MakeCity("hillcrest", 33, city_points, 0.45));

  const double alphas[4] = {0.05, 0.01, 0.005, 0.001};
  const sfa::stats::ScanDirection directions[2] = {
      sfa::stats::ScanDirection::kTwoSided, sfa::stats::ScanDirection::kLow};

  // The request stream: uniformly random (city, measure, α, direction)
  // draws, i.e. heavy key collision by design — an α-sweep of one city costs
  // one calibration, not four.
  Rng stream_rng(777);
  AuditPipeline pipeline;
  std::vector<double> all_latencies_ms;
  size_t served = 0, failed = 0;
  PipelineManifest manifest;

  for (size_t wave = 0; wave < num_waves; ++wave) {
    std::vector<AuditRequest> batch;
    batch.reserve(wave_size);
    for (size_t i = 0; i < wave_size; ++i) {
      const City& city = cities[stream_rng.NextUint64(cities.size())];
      const bool eo = stream_rng.Bernoulli(0.4);
      AuditRequest req;
      req.id = sfa::StrFormat("w%zu-r%zu-%s-%s", wave, i, city.name.c_str(),
                              eo ? "eo" : "sp");
      req.dataset = eo ? &city.eo_view : &city.dataset;
      req.dataset_is_view = true;
      req.family = eo ? city.eo_family.get() : city.sp_family.get();
      req.options.measure = eo ? FairnessMeasure::kEqualOpportunity
                               : FairnessMeasure::kStatisticalParity;
      req.options.alpha = alphas[stream_rng.NextUint64(4)];
      req.options.direction = directions[stream_rng.NextUint64(2)];
      req.options.monte_carlo.num_worlds = num_worlds;
      batch.push_back(std::move(req));
    }

    sfa::Stopwatch wall;
    auto responses = pipeline.Run(batch, &manifest);
    SFA_CHECK_OK(responses.status());
    const double wave_ms = wall.ElapsedMillis();

    std::vector<double> latencies;
    size_t wave_hits = 0, unfair = 0;
    for (const AuditResponse& response : *responses) {
      if (!response.status.ok()) {
        ++failed;
        continue;
      }
      ++served;
      latencies.push_back(response.assemble_ms);
      all_latencies_ms.push_back(response.assemble_ms);
      if (response.cache_hit) ++wave_hits;
      if (!response.result.spatially_fair) ++unfair;
    }
    std::printf(
        "wave %zu: %2zu requests in %7.1f ms  (%6.1f req/s)  "
        "calibrations computed=%llu reused=%llu  hit-rate=%.0f%%  unfair=%zu\n",
        wave, batch.size(), wave_ms, 1e3 * batch.size() / wave_ms,
        static_cast<unsigned long long>(manifest.calibrations_computed),
        static_cast<unsigned long long>(manifest.calibrations_reused),
        100.0 * manifest.HitRate(), unfair);
  }

  const auto cache = pipeline.cache().stats();
  std::printf("\n== totals ==\n");
  std::printf("served %zu requests (%zu failed), %llu distinct calibrations "
              "cached, cache hits=%llu misses=%llu\n",
              served, failed, static_cast<unsigned long long>(cache.entries),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));
  std::printf("assembly latency: p50=%.2f ms  p90=%.2f ms  p99=%.2f ms\n",
              Percentile(all_latencies_ms, 0.50),
              Percentile(all_latencies_ms, 0.90),
              Percentile(all_latencies_ms, 0.99));
  std::printf("\n== manifest of the last wave (machine-readable) ==\n%s\n",
              manifest.ToJson().c_str());
  return failed == 0 ? 0 : 1;
}
