// Audit server simulation: drives the STREAMING audit service the way a
// production endpoint would — concurrent producers submit mixed-priority
// requests through the bounded admission queue, dispatcher workers yield
// each response the moment it finishes, and the calibration cache persists
// to an on-disk CalibrationStore. The run then simulates a process restart:
// a fresh pipeline (empty memory cache) warm-starts from the store
// directory, replays the same request stream, and the sim verifies the
// replayed responses are byte-identical to the live run with ZERO Monte
// Carlo simulations — the persisted-warm contract.
//
// The stream mixes three "cities" (two with planted bias), two fairness
// measures, four α levels, two scan directions, and three priority classes;
// many requests differ only in α or direction-irrelevant knobs, so the
// cache collapses their Monte Carlo calibrations.
//
// Reports per-phase throughput, queue wait and assembly latency
// percentiles, cache/store hit rates, and writes a machine-readable JSON
// run summary (every string routed through the shared core::JsonEscape —
// city and family names are user-controlled in a real deployment).
//
//   SFA_QUICK=1 shrinks the stream for smoke runs (CI builds it and runs it
//   this way).
//
// Graceful shutdown: SIGTERM/SIGINT stops the producers, drains the session
// within --drain-ms via AuditPipeline::Drain (in-flight calibrations finish
// or stop at a batch boundary, write-behind flushes, leases release), prints
// the final StreamStats JSON, and exits 130 — an interrupted run never loses
// its summary or leaves unflushed frames.
//
// Multi-process fabric drill (--shards=N): the driver forks N real worker
// processes BEFORE creating any threads. Each child rebuilds the identical
// request world from the deterministic seeds, keeps the requests whose
// CalibrationKey hash lands on its shard, opens the SHARED store directory
// with cross-process leases enabled, serves its slice through the streaming
// pipeline, and appends each cleanly-served response to shard-<i>.results
// (flushed per line, so even a killed worker leaves a verifiable record).
// With --chaos-kill=<i> the parent waits until calibration activity is
// visible in the store (a lease file appears), then SIGKILLs that worker
// mid-flight. The parent then re-opens the store — the Open recovery sweep
// must leave NO `.tmp.*` or lease debris — replays every request in one
// batch, and verifies every response any shard recorded matches the replay:
// a torn frame or a lost calibration would surface right here.
//
// Fault-drill flags (default off; the default run stays the strict CI smoke):
//
//   --failpoints=<spec>  arms the fault-injection registry with a
//                        common/failpoint.h spec, e.g.
//                        --failpoints='store.write=every(3):corrupt'
//                        (equivalent to the SFA_FAILPOINTS env var);
//   --deadline-ms=<ms>   gives every streamed request that relative deadline
//                        and opts it into graceful degradation, so expiries
//                        surface as degraded/deadline-missed counters
//                        instead of hard failures.
//   --shards=N           fork-based multi-process fabric drill (above).
//   --chaos-kill=<i>     SIGKILL shard i once calibration activity appears.
//   --drain-ms=<ms>      drain budget used by the SIGTERM/SIGINT path.
//   --replay[=N]         million-request warm-path replay harness (below);
//                        N defaults to 1,000,000, shards default to 3.
//
// Warm-path replay harness (--replay=N): every forked shard walks the SAME
// deterministic Zipf-skewed stream of N requests over a fixed 64-key
// population (distinct Monte Carlo seeds → distinct store frames) and
// serves the keys whose hash lands on it. The in-memory calibration cache
// is deliberately cleared every few thousand requests so the store's
// zero-copy warm path (in-memory index + mmap'd frames) carries the load.
// The driver reports per-shard throughput, queue-wait/assembly p50/p90/p99,
// and store/mmap hit rates as JSON, asserts the recovery sweep leaves zero
// debris, and proves the mmap path byte-identical to the copy path by
// re-serving every key through both (SFA_STORE_MMAP toggled) with zero
// recomputes on either side.
//
// With a fault flag set, per-request failures are tolerated and reported (the
// exit criteria relax to: no replay failures, no payload mismatch among
// successfully-served-undegraded requests) and the JSON summary grows a
// "faults" object with the armed sites and observed fault counters.
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/audit.h"
#include "core/audit_pipeline.h"
#include "core/calibration_store.h"
#include "core/export.h"
#include "core/grid_family.h"
#include "core/measure.h"
#include "data/dataset.h"

namespace {

using sfa::Rng;
using namespace sfa::core;

std::atomic<bool> g_shutdown{false};
void OnShutdownSignal(int) { g_shutdown.store(true); }

struct City {
  std::string name;
  sfa::data::OutcomeDataset dataset;
  sfa::data::OutcomeDataset eo_view;  // equal-opportunity slice (Y=1)
  std::unique_ptr<GridPartitionFamily> sp_family;
  std::unique_ptr<GridPartitionFamily> eo_family;
};

City MakeCity(const std::string& name, uint64_t seed, size_t n,
              double planted_rate) {
  Rng rng(seed);
  City city;
  city.name = name;
  city.dataset.set_name(name);
  const sfa::geo::Rect zone(6.0, 6.0, 9.0, 9.0);
  for (size_t i = 0; i < n; ++i) {
    const sfa::geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const double rate = zone.Contains(loc) ? planted_rate : 0.55;
    city.dataset.Add(loc, rng.Bernoulli(rate) ? 1 : 0,
                     rng.Bernoulli(0.5) ? 1 : 0);
  }
  auto view = BuildMeasureView(city.dataset, FairnessMeasure::kEqualOpportunity);
  SFA_CHECK_OK(view.status());
  city.eo_view = std::move(view).value();
  auto sp = GridPartitionFamily::Create(city.dataset.locations(), 10, 10);
  auto eo = GridPartitionFamily::Create(city.eo_view.locations(), 8, 8);
  SFA_CHECK_OK(sp.status());
  SFA_CHECK_OK(eo.status());
  city.sp_family = std::move(sp).value();
  city.eo_family = std::move(eo).value();
  return city;
}

/// The deterministic request world every process (parent, shards, replay)
/// rebuilds identically from fixed seeds.
struct World {
  std::vector<City> cities;
  std::vector<AuditRequest> requests;
  std::vector<RequestPriority> priorities;
};

World BuildWorld(size_t city_points, uint32_t num_worlds, size_t num_requests) {
  World world;
  world.cities.reserve(3);
  world.cities.push_back(MakeCity("riverton", 11, city_points, 0.35));
  world.cities.push_back(MakeCity("lakeside", 22, city_points, 0.55));  // fair
  world.cities.push_back(MakeCity("hillcrest", 33, city_points, 0.45));

  const double alphas[4] = {0.05, 0.01, 0.005, 0.001};
  const sfa::stats::ScanDirection directions[2] = {
      sfa::stats::ScanDirection::kTwoSided, sfa::stats::ScanDirection::kLow};
  const RequestPriority priority_classes[3] = {RequestPriority::kInteractive,
                                               RequestPriority::kNormal,
                                               RequestPriority::kBulk};

  // The request stream: uniformly random (city, measure, α, direction,
  // priority) draws, i.e. heavy key collision by design — an α-sweep of one
  // city costs one calibration, not four.
  Rng stream_rng(777);
  world.requests.reserve(num_requests);
  for (size_t i = 0; i < num_requests; ++i) {
    const City& city = world.cities[stream_rng.NextUint64(world.cities.size())];
    const bool eo = stream_rng.Bernoulli(0.4);
    AuditRequest req;
    req.id = sfa::StrFormat("r%03zu-%s-%s", i, city.name.c_str(),
                            eo ? "eo" : "sp");
    req.dataset = eo ? &city.eo_view : &city.dataset;
    req.dataset_is_view = true;
    req.family = eo ? city.eo_family.get() : city.sp_family.get();
    req.options.measure = eo ? FairnessMeasure::kEqualOpportunity
                             : FairnessMeasure::kStatisticalParity;
    req.options.alpha = alphas[stream_rng.NextUint64(4)];
    req.options.direction = directions[stream_rng.NextUint64(2)];
    req.options.monte_carlo.num_worlds = num_worlds;
    world.requests.push_back(std::move(req));
    world.priorities.push_back(priority_classes[stream_rng.NextUint64(3)]);
  }
  return world;
}

/// The exact calibration-key hash the pipeline will use for each request
/// (same fingerprint + statistic + options path), so sharding by
/// hash % shards puts every request of one calibration on one shard.
std::vector<uint64_t> RequestKeyHashes(const World& world) {
  std::map<const RegionFamily*, uint64_t> fingerprints;
  std::vector<uint64_t> hashes;
  hashes.reserve(world.requests.size());
  for (const AuditRequest& req : world.requests) {
    auto [it, inserted] = fingerprints.emplace(req.family, 0);
    if (inserted) it->second = FamilyFingerprint(*req.family);
    auto statistic = MakeScanStatistic(req.options, *req.dataset);
    SFA_CHECK_OK(statistic.status());
    const CalibrationKey key = MakeCalibrationKey(
        *req.family, it->second, **statistic, req.options.monte_carlo);
    hashes.push_back(key.hash);
  }
  return hashes;
}

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double pos = q * (sorted_ms.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  return sorted_ms[lo] + (pos - lo) * (sorted_ms[hi] - sorted_ms[lo]);
}

struct SimConfig {
  bool quick = false;
  std::string failpoint_spec;
  double deadline_ms = 0.0;
  int shards = 0;       // 0 = single-process mode
  int chaos_kill = -1;  // shard index to SIGKILL, -1 = none
  double drain_ms = 10'000.0;
  bool faulted = false;
  size_t city_points = 0;
  uint32_t num_worlds = 0;
  size_t num_requests = 0;
  size_t replay = 0;  // --replay=N million-request warm-path harness, 0 = off
};

/// One cleanly-served response, as recorded by a shard and recomputed by the
/// replay. %.17g round-trips doubles exactly, so string equality here IS
/// payload bit-identity for the compared fields.
struct RecordedResponse {
  std::string p_value;
  std::string tau;
  int fair = 0;
  unsigned long long worlds = 0;
  size_t findings = 0;

  bool operator==(const RecordedResponse& o) const {
    return p_value == o.p_value && tau == o.tau && fair == o.fair &&
           worlds == o.worlds && findings == o.findings;
  }
};

std::string FormatRecord(const std::string& id, const RecordedResponse& r) {
  return sfa::StrFormat("%s\t%s\t%s\t%d\t%llu\t%zu\n", id.c_str(),
                        r.p_value.c_str(), r.tau.c_str(), r.fair, r.worlds,
                        r.findings);
}

RecordedResponse RecordOf(const AuditResponse& response) {
  RecordedResponse r;
  r.p_value = sfa::StrFormat("%.17g", response.result.p_value);
  r.tau = sfa::StrFormat("%.17g", response.result.tau);
  r.fair = response.result.spatially_fair ? 1 : 0;
  r.worlds = static_cast<unsigned long long>(response.worlds_completed);
  r.findings = response.result.findings.size();
  return r;
}

/// Parses shard result files line-by-line, tolerating a torn final line (a
/// SIGKILLed worker may die mid-fprintf).
std::map<std::string, RecordedResponse> ReadRecords(
    const std::filesystem::path& path) {
  std::map<std::string, RecordedResponse> records;
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return records;
  char line[512];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    const size_t len = std::strlen(line);
    if (len == 0 || line[len - 1] != '\n') continue;  // torn last line
    char id[128], p[64], tau[64];
    int fair = 0;
    unsigned long long worlds = 0;
    size_t findings = 0;
    if (std::sscanf(line, "%127[^\t]\t%63[^\t]\t%63[^\t]\t%d\t%llu\t%zu", id,
                    p, tau, &fair, &worlds, &findings) != 6) {
      continue;
    }
    RecordedResponse r;
    r.p_value = p;
    r.tau = tau;
    r.fair = fair;
    r.worlds = worlds;
    r.findings = findings;
    records.emplace(id, std::move(r));
  }
  std::fclose(f);
  return records;
}

/// Streams `subset` (indices into world.requests) through `pipeline`.
/// Producers stop at the shutdown flag; the caller decides how to finish
/// (FinishStream vs Drain). Returns the tickets (null where not admitted).
std::vector<std::shared_ptr<AuditTicket>> StreamSubset(
    AuditPipeline& pipeline, const World& world,
    const std::vector<size_t>& subset, const SimConfig& config,
    size_t num_producers) {
  std::vector<std::shared_ptr<AuditTicket>> tickets(world.requests.size());
  std::vector<std::thread> producers;
  const size_t per_producer =
      (subset.size() + num_producers - 1) / num_producers;
  for (size_t p = 0; p < num_producers; ++p) {
    producers.emplace_back([&, p] {
      const size_t begin = p * per_producer;
      const size_t end = std::min(subset.size(), begin + per_producer);
      for (size_t s = begin; s < end; ++s) {
        if (g_shutdown.load(std::memory_order_relaxed)) break;
        const size_t i = subset[s];
        AuditRequest req = world.requests[i];
        if (config.deadline_ms > 0.0) {
          // The drill deadline applies to the live stream only (the replay
          // must re-serve everything to verify the persisted-warm
          // contract); expiries degrade rather than fail outright.
          req.deadline_ms = config.deadline_ms;
          req.allow_degraded = true;
        }
        auto ticket = pipeline.Submit(std::move(req), world.priorities[i]);
        if (!ticket.ok()) {
          // Admission rejection (deadline, backpressure, or shutdown race) —
          // legal in a faulted/interrupted run, counted in the stream stats.
          SFA_CHECK_MSG(config.faulted || g_shutdown.load(),
                        "Submit failed in a fault-free run");
          continue;
        }
        tickets[i] = *ticket;
      }
    });
  }
  for (std::thread& t : producers) t.join();
  return tickets;
}

// ------------------------------------------------------------ shard worker --

/// One forked fabric worker: rebuilds the world, serves the requests whose
/// key hash lands on `shard`, records every cleanly-served response (flushed
/// per line). Returns the process exit code.
int RunShardWorker(int shard, const std::filesystem::path& work_dir,
                   const SimConfig& config) {
  const World world =
      BuildWorld(config.city_points, config.num_worlds, config.num_requests);
  const std::vector<uint64_t> hashes = RequestKeyHashes(world);
  std::vector<size_t> subset;
  for (size_t i = 0; i < world.requests.size(); ++i) {
    if (hashes[i] % static_cast<uint64_t>(config.shards) ==
        static_cast<uint64_t>(shard)) {
      subset.push_back(i);
    }
  }

  AuditPipeline pipeline;
  auto store = CalibrationStore::Open({
      .directory = (work_dir / "store").string(),
      .lease_ttl_ms = 1500.0,
      .lease_heartbeat_interval_ms = 50.0,
  });
  SFA_CHECK_OK(store.status());
  pipeline.cache().AttachStore(
      std::shared_ptr<CalibrationStore>(std::move(*store)));

  StreamOptions opts;
  opts.queue_capacity = 16;
  opts.num_workers = 2;
  opts.block_when_full = true;
  SFA_CHECK_OK(pipeline.StartStream(opts));
  const auto tickets = StreamSubset(pipeline, world, subset, config,
                                    /*num_producers=*/2);
  if (g_shutdown.load()) {
    SFA_CHECK_OK(pipeline.Drain(config.drain_ms));
  } else {
    SFA_CHECK_OK(pipeline.FinishStream());
  }

  // Record AFTER the drain (everything is settled) but re-walk in subset
  // order; per-line flush so a later chaos kill of this process cannot tear
  // more than the final line.
  const std::filesystem::path results =
      work_dir / sfa::StrFormat("shard-%d.results", shard);
  std::FILE* out = std::fopen(results.string().c_str(), "wb");
  SFA_CHECK_MSG(out != nullptr, "cannot open shard results file");
  size_t failed = 0;
  for (const size_t i : subset) {
    if (tickets[i] == nullptr) continue;
    const AuditResponse& response = tickets[i]->Get();
    if (!response.status.ok()) {
      ++failed;
      continue;
    }
    if (response.degraded) continue;  // ranks against a shorter prefix
    const std::string line = FormatRecord(response.id, RecordOf(response));
    std::fputs(line.c_str(), out);
    std::fflush(out);
  }
  std::fclose(out);
  const StreamStats stats = pipeline.stream_stats();
  std::printf("[shard %d] %s\n", shard, stats.ToJson().c_str());
  // Per-request failures are tolerated exactly when faults are armed.
  return (failed == 0 || config.faulted) ? 0 : 1;
}

// ------------------------------------------------------------ shard driver --

/// Forks the shard workers (BEFORE any thread exists in this process), runs
/// the optional chaos kill, then recovers: Open sweep, leftover scan, full
/// single-process replay, record comparison.
int RunShardedDriver(const SimConfig& config) {
  const std::filesystem::path work_dir =
      std::filesystem::temp_directory_path() /
      sfa::StrFormat("sfa_audit_server_sim_fabric_%d", ::getpid());
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);
  const std::filesystem::path store_dir = work_dir / "store";

  std::printf("== audit_server_sim: %d-shard fabric over one store ==\n",
              config.shards);
  if (config.chaos_kill >= 0) {
    std::printf("chaos: SIGKILL shard %d once store activity appears\n",
                config.chaos_kill);
  }

  std::vector<pid_t> pids;
  for (int shard = 0; shard < config.shards; ++shard) {
    const pid_t pid = ::fork();
    SFA_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) {
      // Child: no threads were created pre-fork, so the full C++ runtime is
      // usable. _exit avoids re-running the parent's atexit state.
      ::_exit(RunShardWorker(shard, work_dir, config));
    }
    pids.push_back(pid);
  }

  if (config.chaos_kill >= 0 &&
      config.chaos_kill < static_cast<int>(pids.size())) {
    // Kill mid-calibration: wait until calibration activity is visible in
    // the store — a held lease, or a first published frame (quick-mode
    // leases live only milliseconds, so a lease alone is easy to miss) —
    // then SIGKILL the victim. Falls through after a bounded wait so a
    // degenerate run still terminates.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool saw_activity = false;
    while (std::chrono::steady_clock::now() < until && !saw_activity) {
      std::error_code ec;
      for (std::filesystem::recursive_directory_iterator it(store_dir, ec),
           end;
           !ec && it != end; it.increment(ec)) {
        const auto ext = it->path().extension();
        if (ext == ".lease" || ext == ".nulldist") {
          saw_activity = true;
          break;
        }
      }
      if (!saw_activity) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    ::kill(pids[config.chaos_kill], SIGKILL);
    std::printf("chaos: killed shard %d (store activity observed: %s)\n",
                config.chaos_kill, saw_activity ? "yes" : "timeout");
  }

  std::vector<int> exits(pids.size(), -1);
  std::vector<bool> killed(pids.size(), false);
  for (size_t i = 0; i < pids.size(); ++i) {
    int status = 0;
    ::waitpid(pids[i], &status, 0);
    if (WIFEXITED(status)) exits[i] = WEXITSTATUS(status);
    if (WIFSIGNALED(status)) killed[i] = true;
  }

  // Recovery: the Open sweep must reap every temp and lease the dead (and
  // live-but-exited) workers left behind — their pids are all dead now, so
  // the dead-pid arm reaps regardless of age.
  auto reopened = CalibrationStore::Open({
      .directory = store_dir.string(),
      .create_if_missing = false,
      .lease_ttl_ms = 1500.0,
  });
  SFA_CHECK_OK(reopened.status());
  const auto count_leftovers = [&store_dir](bool print) {
    size_t count = 0;
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(store_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.find(".tmp.") != std::string::npos ||
          name.find(".reap.") != std::string::npos ||
          entry.path().extension() == ".lease") {
        ++count;
        if (print) {
          std::printf("LEFTOVER after sweep: %s\n",
                      entry.path().string().c_str());
        }
      }
    }
    return count;
  };
  size_t leftovers = count_leftovers(/*print=*/false);
  if (leftovers > 0) {
    // Every shard pid is dead by now, so anything still here is either an
    // unparseable lease inside its TTL (a shard SIGKILLed between the
    // O_EXCL create and its identity write — the dead-pid arm cannot read
    // the pid) or a genuine leak. Give the TTL arm its window and sweep
    // once more before judging.
    std::this_thread::sleep_for(std::chrono::milliseconds(1600));
    (*reopened)->RecoverySweep();
    leftovers = count_leftovers(/*print=*/true);
  }
  const CalibrationStore::Stats sweep_stats = (*reopened)->stats();

  // Full single-process replay over the SAME request world, warm-started
  // from whatever the fabric persisted; every calibration a shard lost is
  // recomputed here byte-identically (the determinism contract).
  const World world =
      BuildWorld(config.city_points, config.num_worlds, config.num_requests);
  PipelineManifest manifest;
  size_t mismatches = 0;
  size_t compared = 0;
  {
    AuditPipeline replayer;
    replayer.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*reopened)));
    auto replayed = replayer.Run(world.requests, &manifest);
    SFA_CHECK_OK(replayed.status());
    std::map<std::string, RecordedResponse> replay_records;
    for (const AuditResponse& response : *replayed) {
      SFA_CHECK_OK(response.status);
      replay_records.emplace(response.id, RecordOf(response));
    }
    for (int shard = 0; shard < config.shards; ++shard) {
      const auto records = ReadRecords(
          work_dir / sfa::StrFormat("shard-%d.results", shard));
      for (const auto& [id, record] : records) {
        ++compared;
        auto it = replay_records.find(id);
        if (it == replay_records.end() || !(it->second == record)) {
          ++mismatches;
          std::printf("MISMATCH at %s (shard %d)\n", id.c_str(), shard);
        }
      }
    }
  }

  std::string exits_json;
  for (size_t i = 0; i < exits.size(); ++i) {
    if (i > 0) exits_json += ',';
    exits_json += killed[i] ? "\"killed\"" : sfa::StrFormat("%d", exits[i]);
  }
  const std::string summary = sfa::StrFormat(
      "{\"shards\":%d,\"chaos_kill\":%d,\"shard_exits\":[%s],"
      "\"compared\":%zu,\"mismatches\":%zu,\"leftover_files\":%zu,"
      "\"replay_failed\":%zu,\"replay_computed\":%llu,"
      "\"replay_loaded\":%llu,\"recovery\":{\"temps_reaped\":%llu,"
      "\"leases_reclaimed\":%llu,\"quarantine_evicted_files\":%llu}}",
      config.shards, config.chaos_kill, exits_json.c_str(), compared,
      mismatches, leftovers, manifest.num_failed,
      static_cast<unsigned long long>(manifest.calibrations_computed),
      static_cast<unsigned long long>(manifest.calibrations_loaded),
      static_cast<unsigned long long>(sweep_stats.temps_reaped),
      static_cast<unsigned long long>(sweep_stats.leases_reclaimed),
      static_cast<unsigned long long>(sweep_stats.quarantine_evicted_files));
  std::printf("== fabric summary (machine-readable) ==\n%s\n", summary.c_str());

  std::filesystem::remove_all(work_dir);
  bool ok = mismatches == 0 && leftovers == 0 && manifest.num_failed == 0 &&
            compared > 0;
  for (size_t i = 0; i < exits.size(); ++i) {
    if (!killed[i] && exits[i] != 0) ok = false;  // the victim may die dirty
  }
  if (!ok) std::printf("\nFAILED: fabric recovery violated its contract\n");
  return ok ? 0 : 1;
}

// ----------------------------------------------------------- replay harness --

/// The replay harness's fixed key population: one city, one family, one
/// options shape — `num_keys` distinct calibrations produced purely by
/// varying the Monte Carlo seed (the seed is draw-relevant, so every key
/// maps to its own store frame). Kept in a one-element vector so the
/// templates' dataset/family pointers survive a move of the struct.
struct ReplayWorld {
  std::vector<City> cities;
  std::vector<AuditRequest> templates;  // one per key
  std::vector<uint64_t> hashes;         // calibration-key hash per template
};

constexpr size_t kReplayKeys = 64;
constexpr uint32_t kReplayWorlds = 199;
constexpr double kReplayZipfExponent = 1.07;
/// The in-memory calibration cache is cleared every this many served
/// requests, modelling restart/memory-pressure churn — without it the
/// memory cache would absorb every warm hit and the store warm path (the
/// thing this harness measures) would see only the first touch per key.
constexpr size_t kReplayCacheChurnEvery = 2048;
/// Bounded ring of outstanding tickets: responses are consumed in flight,
/// so a million-request replay holds a constant number of result payloads.
constexpr size_t kReplayRingSize = 256;

ReplayWorld BuildReplayWorld() {
  ReplayWorld rw;
  rw.cities.push_back(MakeCity("replayville", 55, 4000, 0.42));
  const City& city = rw.cities.front();
  const uint64_t fingerprint = FamilyFingerprint(*city.sp_family);
  rw.templates.reserve(kReplayKeys);
  rw.hashes.reserve(kReplayKeys);
  for (size_t k = 0; k < kReplayKeys; ++k) {
    AuditRequest req;
    req.id = sfa::StrFormat("key-%03zu", k);
    req.dataset = &city.dataset;
    req.dataset_is_view = true;
    req.family = city.sp_family.get();
    req.options.measure = FairnessMeasure::kStatisticalParity;
    req.options.alpha = 0.05;
    req.options.monte_carlo.num_worlds = kReplayWorlds;
    req.options.monte_carlo.seed = 40'000 + static_cast<uint64_t>(k);
    auto statistic = MakeScanStatistic(req.options, *req.dataset);
    SFA_CHECK_OK(statistic.status());
    const CalibrationKey key = MakeCalibrationKey(
        *req.family, fingerprint, **statistic, req.options.monte_carlo);
    rw.hashes.push_back(key.hash);
    rw.templates.push_back(std::move(req));
  }
  return rw;
}

/// Zipf(s) CDF over ranks 0..n-1 (rank 0 hottest), for inverse-CDF draws.
std::vector<double> ZipfCdf(size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

/// One forked replay worker: walks the shared deterministic Zipf request
/// stream, serves the requests whose key lands on `shard` through the
/// streaming pipeline (memory cache churned every kReplayCacheChurnEvery
/// served requests so the store's zero-copy warm path does the real work),
/// and writes its metrics as one TSV line the parent aggregates.
int RunReplayShardWorker(int shard, const std::filesystem::path& work_dir,
                         const SimConfig& config) {
  const ReplayWorld rw = BuildReplayWorld();

  AuditPipeline pipeline;
  auto store = CalibrationStore::Open({
      .directory = (work_dir / "store").string(),
      .lease_ttl_ms = 1500.0,
      .lease_heartbeat_interval_ms = 50.0,
  });
  SFA_CHECK_OK(store.status());
  const std::shared_ptr<CalibrationStore> store_ref(std::move(*store));
  pipeline.cache().AttachStore(store_ref);

  StreamOptions opts;
  opts.queue_capacity = 64;
  opts.num_workers = 2;
  opts.block_when_full = true;
  SFA_CHECK_OK(pipeline.StartStream(opts));

  const std::vector<double> cdf = ZipfCdf(kReplayKeys, kReplayZipfExponent);
  Rng stream_rng(9001);  // identical stream in every shard; ownership by hash
  std::vector<double> queue_waits, assembly_ms;
  std::vector<std::shared_ptr<AuditTicket>> ring;
  size_t ring_head = 0;  // ring is a circular buffer once it reaches capacity
  size_t served = 0, failed = 0, cache_hits = 0;
  const auto consume = [&](const std::shared_ptr<AuditTicket>& ticket) {
    const AuditResponse& response = ticket->Get();
    if (!response.status.ok()) {
      ++failed;
      return;
    }
    queue_waits.push_back(response.queue_wait_ms);
    assembly_ms.push_back(response.assemble_ms);
    if (response.cache_hit) ++cache_hits;
  };

  sfa::Stopwatch wall;
  for (size_t j = 0; j < config.replay; ++j) {
    if (g_shutdown.load(std::memory_order_relaxed)) break;
    const double u = stream_rng.Uniform(0.0, 1.0);
    const size_t key_idx = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (rw.hashes[key_idx] % static_cast<uint64_t>(config.shards) !=
        static_cast<uint64_t>(shard)) {
      continue;
    }
    AuditRequest req = rw.templates[key_idx];
    req.id = sfa::StrFormat("rp%08zu", j);
    auto ticket = pipeline.Submit(std::move(req), RequestPriority::kNormal);
    SFA_CHECK_OK(ticket.status());
    if (ring.size() < kReplayRingSize) {
      ring.push_back(std::move(*ticket));
    } else {
      consume(ring[ring_head]);
      ring[ring_head] = std::move(*ticket);
      ring_head = (ring_head + 1) % kReplayRingSize;
    }
    ++served;
    if (served % kReplayCacheChurnEvery == 0) pipeline.cache().Clear();
  }
  for (const auto& ticket : ring) consume(ticket);
  SFA_CHECK_OK(pipeline.FinishStream());
  const double wall_ms = wall.ElapsedMillis();

  const CalibrationStore::Stats ss = store_ref->stats();
  const double store_hit_rate =
      ss.load_hits + ss.load_misses > 0
          ? static_cast<double>(ss.load_hits) /
                static_cast<double>(ss.load_hits + ss.load_misses)
          : 0.0;
  const double mmap_hit_rate =
      ss.load_hits > 0
          ? static_cast<double>(ss.mmap_loads) /
                static_cast<double>(ss.load_hits)
          : 0.0;

  // One TSV line the parent can both aggregate and re-render as JSON.
  const std::filesystem::path stats_path =
      work_dir / sfa::StrFormat("replay-shard-%d.stats", shard);
  std::FILE* out = std::fopen(stats_path.string().c_str(), "wb");
  SFA_CHECK_MSG(out != nullptr, "cannot open replay stats file");
  std::fprintf(
      out,
      "%d\t%zu\t%zu\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%llu\t%llu\t"
      "%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t%.9f\t%.9f\t%zu\n",
      shard, served, failed, wall_ms, Percentile(queue_waits, 0.50),
      Percentile(queue_waits, 0.90), Percentile(queue_waits, 0.99),
      Percentile(assembly_ms, 0.50), Percentile(assembly_ms, 0.90),
      Percentile(assembly_ms, 0.99),
      static_cast<unsigned long long>(ss.load_hits),
      static_cast<unsigned long long>(ss.load_misses),
      static_cast<unsigned long long>(ss.index_hits),
      static_cast<unsigned long long>(ss.mmap_loads),
      static_cast<unsigned long long>(ss.mmap_frames),
      static_cast<unsigned long long>(ss.mmap_bytes),
      static_cast<unsigned long long>(ss.remap_races),
      static_cast<unsigned long long>(ss.touch_failures), store_hit_rate,
      mmap_hit_rate, cache_hits);
  std::fclose(out);
  std::printf("[replay shard %d] served=%zu failed=%zu wall=%.1fms "
              "store-hit-rate=%.4f mmap-hit-rate=%.4f\n",
              shard, served, failed, wall_ms, store_hit_rate, mmap_hit_rate);
  return failed == 0 ? 0 : 1;
}

/// Per-shard replay metrics, as parsed back by the parent.
struct ReplayShardStats {
  int shard = -1;
  size_t served = 0, failed = 0, cache_hits = 0;
  double wall_ms = 0, qw_p50 = 0, qw_p90 = 0, qw_p99 = 0;
  double as_p50 = 0, as_p90 = 0, as_p99 = 0;
  unsigned long long load_hits = 0, load_misses = 0, index_hits = 0;
  unsigned long long mmap_loads = 0, mmap_frames = 0, mmap_bytes = 0;
  unsigned long long remap_races = 0, touch_failures = 0;
  double store_hit_rate = 0, mmap_hit_rate = 0;
};

bool ReadReplayShardStats(const std::filesystem::path& path,
                          ReplayShardStats* s) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  char line[1024];
  const bool got = std::fgets(line, sizeof line, f) != nullptr;
  std::fclose(f);
  if (!got) return false;
  return std::sscanf(
             line,
             "%d\t%zu\t%zu\t%lf\t%lf\t%lf\t%lf\t%lf\t%lf\t%lf\t%llu\t%llu\t"
             "%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t%lf\t%lf\t%zu",
             &s->shard, &s->served, &s->failed, &s->wall_ms, &s->qw_p50,
             &s->qw_p90, &s->qw_p99, &s->as_p50, &s->as_p90, &s->as_p99,
             &s->load_hits, &s->load_misses, &s->index_hits, &s->mmap_loads,
             &s->mmap_frames, &s->mmap_bytes, &s->remap_races,
             &s->touch_failures, &s->store_hit_rate, &s->mmap_hit_rate,
             &s->cache_hits) == 21;
}

/// The million-request replay driver: forks the shard workers over one
/// shared store, aggregates their metrics, asserts zero recovery debris,
/// and proves the zero-copy path byte-identical to the copy path by
/// re-serving every key through BOTH (SFA_STORE_MMAP toggled between two
/// persisted-warm pipelines) and comparing full payloads.
int RunReplayDriver(const SimConfig& config) {
  const std::filesystem::path work_dir =
      std::filesystem::temp_directory_path() /
      sfa::StrFormat("sfa_audit_server_sim_replay_%d", ::getpid());
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);
  const std::filesystem::path store_dir = work_dir / "store";

  std::printf("== audit_server_sim: %zu-request Zipf replay over %d shards "
              "(%zu keys, s=%.2f) ==\n",
              config.replay, config.shards, kReplayKeys, kReplayZipfExponent);

  std::vector<pid_t> pids;
  for (int shard = 0; shard < config.shards; ++shard) {
    const pid_t pid = ::fork();
    SFA_CHECK_MSG(pid >= 0, "fork failed");
    if (pid == 0) ::_exit(RunReplayShardWorker(shard, work_dir, config));
    pids.push_back(pid);
  }
  std::vector<int> exits(pids.size(), -1);
  for (size_t i = 0; i < pids.size(); ++i) {
    int status = 0;
    ::waitpid(pids[i], &status, 0);
    if (WIFEXITED(status)) exits[i] = WEXITSTATUS(status);
  }

  // Recovery sweep + zero-debris assertion over the shared store.
  {
    auto reopened = CalibrationStore::Open({
        .directory = store_dir.string(),
        .create_if_missing = false,
        .lease_ttl_ms = 1500.0,
    });
    SFA_CHECK_OK(reopened.status());
  }  // the sweep ran at Open; the identity check reopens its own handles
  size_t leftovers = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(store_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") != std::string::npos ||
        name.find(".reap.") != std::string::npos ||
        entry.path().extension() == ".lease") {
      ++leftovers;
      std::printf("LEFTOVER after sweep: %s\n", entry.path().string().c_str());
    }
  }

  // Byte-identity: the same persisted-warm key population served through
  // the copy path (SFA_STORE_MMAP=0) and the mmap path must produce
  // identical full payloads with ZERO recomputes on either side.
  const ReplayWorld rw = BuildReplayWorld();
  size_t identity_mismatches = 0;
  PipelineManifest copy_manifest, mmap_manifest;
  {
    ::setenv("SFA_STORE_MMAP", "0", 1);
    auto copy_store = CalibrationStore::Open(
        {.directory = store_dir.string(), .create_if_missing = false});
    ::setenv("SFA_STORE_MMAP", "1", 1);
    auto mmap_store = CalibrationStore::Open(
        {.directory = store_dir.string(), .create_if_missing = false});
    ::unsetenv("SFA_STORE_MMAP");
    SFA_CHECK_OK(copy_store.status());
    SFA_CHECK_OK(mmap_store.status());
    AuditPipeline copy_pipeline, mmap_pipeline;
    copy_pipeline.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*copy_store)));
    mmap_pipeline.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*mmap_store)));
    auto copied = copy_pipeline.Run(rw.templates, &copy_manifest);
    auto mapped = mmap_pipeline.Run(rw.templates, &mmap_manifest);
    SFA_CHECK_OK(copied.status());
    SFA_CHECK_OK(mapped.status());
    for (size_t k = 0; k < rw.templates.size(); ++k) {
      SFA_CHECK_OK((*copied)[k].status);
      SFA_CHECK_OK((*mapped)[k].status);
      if (!ResultsBitIdentical((*copied)[k].result, (*mapped)[k].result)) {
        ++identity_mismatches;
        std::printf("IDENTITY MISMATCH at %s\n", rw.templates[k].id.c_str());
      }
    }
  }

  // Aggregate + machine-readable summary.
  std::string per_shard_json;
  size_t total_served = 0, total_failed = 0;
  double sum_rps = 0.0, max_qw_p99 = 0.0, max_as_p99 = 0.0;
  unsigned long long sum_load_hits = 0, sum_load_misses = 0, sum_mmap = 0;
  bool stats_ok = true;
  for (int shard = 0; shard < config.shards; ++shard) {
    ReplayShardStats s;
    if (!ReadReplayShardStats(
            work_dir / sfa::StrFormat("replay-shard-%d.stats", shard), &s)) {
      stats_ok = false;
      continue;
    }
    total_served += s.served;
    total_failed += s.failed;
    const double rps =
        s.wall_ms > 0 ? 1e3 * static_cast<double>(s.served) / s.wall_ms : 0.0;
    sum_rps += rps;
    max_qw_p99 = std::max(max_qw_p99, s.qw_p99);
    max_as_p99 = std::max(max_as_p99, s.as_p99);
    sum_load_hits += s.load_hits;
    sum_load_misses += s.load_misses;
    sum_mmap += s.mmap_loads;
    if (!per_shard_json.empty()) per_shard_json += ',';
    per_shard_json += sfa::StrFormat(
        "{\"shard\":%d,\"served\":%zu,\"failed\":%zu,\"wall_ms\":%.3f,"
        "\"throughput_rps\":%.1f,"
        "\"queue_wait_ms\":{\"p50\":%.4f,\"p90\":%.4f,\"p99\":%.4f},"
        "\"assemble_ms\":{\"p50\":%.4f,\"p90\":%.4f,\"p99\":%.4f},"
        "\"store\":{\"load_hits\":%llu,\"load_misses\":%llu,"
        "\"index_hits\":%llu,\"mmap_loads\":%llu,\"mmap_frames\":%llu,"
        "\"mmap_bytes\":%llu,\"remap_races\":%llu,\"touch_failures\":%llu,"
        "\"store_hit_rate\":%.6f,\"mmap_hit_rate\":%.6f},"
        "\"cache_hits\":%zu}",
        s.shard, s.served, s.failed, s.wall_ms, rps, s.qw_p50, s.qw_p90,
        s.qw_p99, s.as_p50, s.as_p90, s.as_p99, s.load_hits, s.load_misses,
        s.index_hits, s.mmap_loads, s.mmap_frames, s.mmap_bytes,
        s.remap_races, s.touch_failures, s.store_hit_rate, s.mmap_hit_rate,
        s.cache_hits);
  }
  std::string exits_json;
  for (size_t i = 0; i < exits.size(); ++i) {
    if (i > 0) exits_json += ',';
    exits_json += sfa::StrFormat("%d", exits[i]);
  }
  const double agg_store_hit_rate =
      sum_load_hits + sum_load_misses > 0
          ? static_cast<double>(sum_load_hits) /
                static_cast<double>(sum_load_hits + sum_load_misses)
          : 0.0;
  const double agg_mmap_hit_rate =
      sum_load_hits > 0 ? static_cast<double>(sum_mmap) /
                              static_cast<double>(sum_load_hits)
                        : 0.0;
  const std::string summary = sfa::StrFormat(
      "{\"replay\":{\"requests\":%zu,\"served\":%zu,\"shards\":%d,"
      "\"keys\":%zu,\"zipf_exponent\":%.2f,\"per_shard\":[%s],"
      "\"aggregate\":{\"throughput_rps\":%.1f,\"queue_wait_p99_ms\":%.4f,"
      "\"assemble_p99_ms\":%.4f,\"store_hit_rate\":%.6f,"
      "\"mmap_hit_rate\":%.6f},"
      "\"identity\":{\"compared\":%zu,\"mismatches\":%zu,"
      "\"copy_path_computed\":%llu,\"mmap_path_computed\":%llu},"
      "\"leftover_files\":%zu,\"shard_exits\":[%s]}}",
      config.replay, total_served, config.shards, kReplayKeys,
      kReplayZipfExponent, per_shard_json.c_str(), sum_rps, max_qw_p99,
      max_as_p99, agg_store_hit_rate, agg_mmap_hit_rate, rw.templates.size(),
      identity_mismatches,
      static_cast<unsigned long long>(copy_manifest.calibrations_computed),
      static_cast<unsigned long long>(mmap_manifest.calibrations_computed),
      leftovers, exits_json.c_str());
  std::printf("== replay summary (machine-readable) ==\n%s\n", summary.c_str());

  std::filesystem::remove_all(work_dir);
  bool ok = stats_ok && leftovers == 0 && identity_mismatches == 0 &&
            total_failed == 0 && total_served > 0 &&
            copy_manifest.calibrations_computed == 0 &&
            mmap_manifest.calibrations_computed == 0;
  for (const int e : exits) {
    if (e != 0) ok = false;
  }
  if (!ok) std::printf("\nFAILED: replay harness violated its contract\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  SimConfig config;
  config.quick = [] {
    const char* env = std::getenv("SFA_QUICK");
    return env != nullptr && env[0] == '1';
  }();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--failpoints=", 0) == 0) {
      config.failpoint_spec = arg.substr(std::string("--failpoints=").size());
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      config.deadline_ms =
          std::atof(arg.c_str() + std::string("--deadline-ms=").size());
    } else if (arg.rfind("--shards=", 0) == 0) {
      config.shards = std::atoi(arg.c_str() + std::string("--shards=").size());
    } else if (arg.rfind("--chaos-kill=", 0) == 0) {
      config.chaos_kill =
          std::atoi(arg.c_str() + std::string("--chaos-kill=").size());
    } else if (arg.rfind("--drain-ms=", 0) == 0) {
      config.drain_ms =
          std::atof(arg.c_str() + std::string("--drain-ms=").size());
    } else if (arg == "--replay") {
      config.replay = 1'000'000;
    } else if (arg.rfind("--replay=", 0) == 0) {
      config.replay = static_cast<size_t>(
          std::strtoull(arg.c_str() + std::string("--replay=").size(),
                        nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--failpoints=<spec>] [--deadline-ms=<ms>] "
                   "[--shards=N [--chaos-kill=<i>]] [--drain-ms=<ms>] "
                   "[--replay[=N]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!config.failpoint_spec.empty()) {
    const sfa::Status armed =
        sfa::Failpoints::Instance().ArmFromSpec(config.failpoint_spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "bad --failpoints spec: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
  }
  // Faulted runs tolerate (and report) per-request failures; the default run
  // keeps the strict persisted-warm exit criteria for CI. A chaos kill
  // implies faults even without failpoints.
  config.faulted = !config.failpoint_spec.empty() || config.deadline_ms > 0.0 ||
                   config.chaos_kill >= 0;
  config.city_points = config.quick ? 4000 : 20000;
  config.num_worlds = config.quick ? 99 : 499;
  config.num_requests = config.quick ? 48 : 160;
  const size_t num_producers = 4;

  // Graceful-shutdown wiring: producers poll the flag, the main thread
  // drains and still prints the summary. Installed before any fork so shard
  // workers inherit it.
  std::signal(SIGTERM, OnShutdownSignal);
  std::signal(SIGINT, OnShutdownSignal);

  if (config.replay > 0) {
    // Million-request Zipf replay over the forked shard fabric; exercises
    // the zero-copy warm path (mmap'd frames + store index) at volume.
    if (config.shards <= 0) config.shards = 3;
    return RunReplayDriver(config);
  }

  if (config.shards > 0) {
    // Fork-based fabric drill. MUST run before any thread (or thread pool)
    // exists in this process: fork only carries the calling thread, so a
    // pre-fork pool would leave children with dead workers and locked locks.
    return RunShardedDriver(config);
  }

  std::printf("== audit_server_sim: streaming service + persistent calibration "
              "store ==\n");
  std::printf("3 cities x {statistical parity, equal opportunity} x 4 alphas "
              "x 2 directions x 3 priorities, %u worlds/calibration%s\n\n",
              config.num_worlds, config.quick ? " (SFA_QUICK=1)" : "");
  if (!config.failpoint_spec.empty()) {
    std::printf("failpoints armed: %s\n", config.failpoint_spec.c_str());
  }
  if (config.deadline_ms > 0.0) {
    std::printf("per-request deadline: %.1f ms (degraded serving enabled)\n",
                config.deadline_ms);
  }
  if (config.faulted) std::printf("\n");

  const World world =
      BuildWorld(config.city_points, config.num_worlds, config.num_requests);
  const std::vector<AuditRequest>& requests = world.requests;

  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() /
      sfa::StrFormat("sfa_audit_server_sim_store_%d", ::getpid());
  std::filesystem::remove_all(store_dir);

  // ---------------------------------------------------- phase 1: streaming
  std::printf("-- phase 1: streaming service, cold store --\n");
  std::vector<std::shared_ptr<AuditTicket>> tickets;
  double stream_wall_ms = 0.0;
  bool interrupted = false;
  StreamStats stream_stats;
  CalibrationCache::Stats live_cache_stats;
  {
    AuditPipeline pipeline;
    auto store = CalibrationStore::Open({.directory = store_dir.string()});
    SFA_CHECK_OK(store.status());
    pipeline.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*store)));

    StreamOptions opts;
    opts.queue_capacity = 16;
    opts.num_workers = 3;
    opts.block_when_full = true;  // a replayed trace sheds no load
    SFA_CHECK_OK(pipeline.StartStream(opts));

    std::vector<size_t> all(requests.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    sfa::Stopwatch wall;
    tickets = StreamSubset(pipeline, world, all, config, num_producers);
    interrupted = g_shutdown.load();
    if (interrupted) {
      // The SIGTERM/SIGINT contract: stop admission, finish what fits the
      // drain budget (leases release either way), flush write-behind, and
      // STILL report — the final stats JSON below is the whole point.
      SFA_CHECK_OK(pipeline.Drain(config.drain_ms));
    } else {
      SFA_CHECK_OK(pipeline.FinishStream());  // drains + flushes write-behind
    }
    stream_wall_ms = wall.ElapsedMillis();
    stream_stats = pipeline.stream_stats();
    live_cache_stats = pipeline.cache().stats();
  }
  if (interrupted) {
    std::printf("interrupted: drained within %.0f ms; final stream stats:\n%s\n",
                config.drain_ms, stream_stats.ToJson().c_str());
    return 130;
  }

  std::vector<double> queue_waits, assembly_ms;
  size_t unfair = 0, hits = 0, live_failed = 0, live_degraded = 0;
  size_t not_admitted = 0;
  for (const auto& ticket : tickets) {
    if (ticket == nullptr) {
      ++not_admitted;
      continue;
    }
    const AuditResponse& response = ticket->Get();
    if (!response.status.ok()) {
      SFA_CHECK_MSG(config.faulted, "request failed in a fault-free run");
      ++live_failed;
      continue;
    }
    queue_waits.push_back(response.queue_wait_ms);
    assembly_ms.push_back(response.assemble_ms);
    if (response.degraded) ++live_degraded;
    if (!response.result.spatially_fair) ++unfair;
    if (response.cache_hit) ++hits;
  }
  if (config.faulted) {
    std::printf(
        "fault outcomes: not-admitted=%zu failed=%zu degraded=%zu "
        "deadline-misses=%llu store-retries=%llu quarantined=%llu "
        "breaker-trips=%llu breaker-open=%s\n",
        not_admitted, live_failed, live_degraded,
        static_cast<unsigned long long>(stream_stats.deadline_misses),
        static_cast<unsigned long long>(stream_stats.store_retries),
        static_cast<unsigned long long>(stream_stats.store_quarantined),
        static_cast<unsigned long long>(stream_stats.breaker_trips),
        stream_stats.breaker_open ? "true" : "false");
  }
  std::printf(
      "streamed %llu requests in %.1f ms (%.1f req/s): completed=%llu "
      "max-queue-depth=%zu unfair=%zu cache-hits=%zu\n",
      static_cast<unsigned long long>(stream_stats.submitted), stream_wall_ms,
      1e3 * static_cast<double>(stream_stats.submitted) / stream_wall_ms,
      static_cast<unsigned long long>(stream_stats.completed),
      stream_stats.max_queue_depth, unfair, hits);
  std::printf("submit-to-dispatch wait (incl. backpressure blocking): "
              "p50=%.2f ms p90=%.2f ms p99=%.2f ms\n",
              Percentile(queue_waits, 0.50), Percentile(queue_waits, 0.90),
              Percentile(queue_waits, 0.99));
  std::printf("assembly:   p50=%.2f ms p90=%.2f ms p99=%.2f ms\n",
              Percentile(assembly_ms, 0.50), Percentile(assembly_ms, 0.90),
              Percentile(assembly_ms, 0.99));
  std::printf("store writes queued: %llu\n\n",
              static_cast<unsigned long long>(live_cache_stats.store_writes));

  // ------------------------------------------- phase 2: restart and replay
  std::printf("-- phase 2: restart replay, persisted-warm store --\n");
  PipelineManifest replay_manifest;
  size_t mismatches = 0;
  double replay_wall_ms = 0.0;
  {
    AuditPipeline restarted;  // fresh process: empty memory cache
    auto store = CalibrationStore::Open(
        {.directory = store_dir.string(), .create_if_missing = false});
    SFA_CHECK_OK(store.status());
    restarted.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*store)));

    sfa::Stopwatch wall;
    auto replayed = restarted.Run(requests, &replay_manifest);
    SFA_CHECK_OK(replayed.status());
    replay_wall_ms = wall.ElapsedMillis();
    size_t compared = 0;
    for (size_t i = 0; i < requests.size(); ++i) {
      const AuditResponse& replay = (*replayed)[i];
      SFA_CHECK_OK(replay.status);
      // Only a clean, undegraded live response pins the full payload (a
      // degraded one ranks against a shorter prefix by design).
      if (tickets[i] == nullptr) continue;
      const AuditResponse& live = tickets[i]->Get();
      if (!live.status.ok() || live.degraded) continue;
      ++compared;
      // The authoritative full-payload comparison (core::ResultsBitIdentical)
      // — this binary's exit code is the restart-replay pass/fail signal.
      if (!ResultsBitIdentical(live.result, replay.result)) {
        ++mismatches;
        std::printf("MISMATCH at %s: live p=%.17g tau=%.17g vs replay "
                    "p=%.17g tau=%.17g\n",
                    requests[i].id.c_str(), live.result.p_value,
                    live.result.tau, replay.result.p_value, replay.result.tau);
      }
    }
    if (config.faulted) {
      std::printf("compared %zu cleanly-served responses against the replay\n",
                  compared);
    }
  }
  std::printf(
      "replayed %zu requests in %.1f ms: calibrations computed=%llu "
      "loaded-from-store=%llu reused=%llu — %s\n\n",
      requests.size(), replay_wall_ms,
      static_cast<unsigned long long>(replay_manifest.calibrations_computed),
      static_cast<unsigned long long>(replay_manifest.calibrations_loaded),
      static_cast<unsigned long long>(replay_manifest.calibrations_reused),
      mismatches == 0 ? "byte-identical to the live stream"
                      : "RESPONSES DIVERGED");

  // --------------------------------------------- machine-readable summary
  // Every string below is user-controlled in a real deployment (city names
  // arrive from datasets, family names embed construction parameters), so
  // all of them go through the shared JSON escaper.
  std::string summary;
  summary += sfa::StrFormat(
      "{\"quick\":%s,\"num_requests\":%zu,\"stream\":{\"wall_ms\":%.3f,"
      "\"queue_wait_p90_ms\":%.3f,\"stats\":%s},\"replay\":{\"wall_ms\":%.3f,"
      "\"calibrations_computed\":%llu,\"calibrations_loaded\":%llu,"
      "\"mismatches\":%zu},\"store_dir\":\"%s\",\"cities\":[",
      config.quick ? "true" : "false", requests.size(), stream_wall_ms,
      Percentile(queue_waits, 0.90), stream_stats.ToJson().c_str(),
      replay_wall_ms,
      static_cast<unsigned long long>(replay_manifest.calibrations_computed),
      static_cast<unsigned long long>(replay_manifest.calibrations_loaded),
      mismatches, JsonEscape(store_dir.string()).c_str());
  for (size_t c = 0; c < world.cities.size(); ++c) {
    if (c > 0) summary += ',';
    summary += sfa::StrFormat(
        "{\"name\":\"%s\",\"sp_family\":\"%s\",\"eo_family\":\"%s\","
        "\"n\":%zu}",
        JsonEscape(world.cities[c].name).c_str(),
        JsonEscape(world.cities[c].sp_family->Name()).c_str(),
        JsonEscape(world.cities[c].eo_family->Name()).c_str(),
        world.cities[c].dataset.size());
  }
  summary += "],\"faults\":{\"armed\":[";
  {
    const std::vector<std::string> armed = sfa::Failpoints::Instance().armed();
    for (size_t i = 0; i < armed.size(); ++i) {
      if (i > 0) summary += ',';
      summary += '"' + JsonEscape(armed[i]) + '"';
    }
  }
  summary += sfa::StrFormat(
      "],\"deadline_ms\":%.3f,\"not_admitted\":%zu,\"live_failed\":%zu,"
      "\"live_degraded\":%zu}",
      config.deadline_ms, not_admitted, live_failed, live_degraded);
  summary += ",\"last_manifest\":";
  summary += replay_manifest.ToJson();
  summary += "}";
  std::printf("== run summary (machine-readable) ==\n%s\n", summary.c_str());

  std::filesystem::remove_all(store_dir);
  // Strict criteria (default run): every replayed calibration must come warm
  // from the store. Faulted runs relax the warm requirement — injected store
  // faults legitimately cost recomputes, and failed live requests never
  // persisted theirs — but payload agreement and replay health stay binding.
  const bool ok = mismatches == 0 && replay_manifest.num_failed == 0 &&
                  (config.faulted ||
                   replay_manifest.calibrations_computed == 0);
  if (!ok) {
    std::printf("\nFAILED: restart replay violated the persisted-warm "
                "contract\n");
  }
  return ok ? 0 : 1;
}
