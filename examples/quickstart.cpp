// Quickstart: audit a small synthetic dataset for spatial fairness in ~40
// lines. Generates outcomes with a planted biased zone, scans a regular
// grid, and prints the verdict plus the evidence regions.
#include <cstdio>

#include "common/random.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "core/report.h"
#include "data/dataset.h"

int main() {
  // 1. Assemble the audit input: one (location, outcome) pair per
  //    individual. Outcomes are the model's binary decisions.
  sfa::Rng rng(42);
  sfa::data::OutcomeDataset dataset("quickstart");
  const sfa::geo::Rect biased_zone(6.0, 6.0, 9.0, 9.0);
  for (int i = 0; i < 20000; ++i) {
    const sfa::geo::Point location(rng.Uniform(0, 10), rng.Uniform(0, 10));
    // Global approval rate 0.6, but the planted zone sits at 0.35.
    const double rate = biased_zone.Contains(location) ? 0.35 : 0.6;
    dataset.Add(location, rng.Bernoulli(rate) ? 1 : 0);
  }

  // 2. Choose the regions to scan — here the cells of a 10x10 grid.
  auto family = sfa::core::GridPartitionFamily::Create(dataset.locations(), 10, 10);
  if (!family.ok()) {
    std::fprintf(stderr, "family: %s\n", family.status().ToString().c_str());
    return 1;
  }

  // 3. Audit: likelihood-ratio scan + Monte Carlo significance. Tail-smart
  //    significance (optional, both default off): kAuto extrapolates
  //    p-values below the 1/(W+1) empirical floor via a Gumbel tail fit
  //    when the observed statistic lands beyond every simulated maximum,
  //    and adaptive.enabled lets the Monte Carlo loop stop early once a
  //    Wilson confidence interval puts the p-value decisively on one side
  //    of alpha — same verdict, a fraction of the worlds.
  sfa::core::AuditOptions options;
  options.alpha = 0.005;                 // the paper's significance level
  options.monte_carlo.num_worlds = 999;  // p-value resolution 0.001
  options.significance = sfa::core::SignificanceMethod::kAuto;
  options.monte_carlo.adaptive.enabled = true;
  auto result = sfa::core::Auditor(options).Audit(dataset, **family);
  if (!result.ok()) {
    std::fprintf(stderr, "audit: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Read the verdict and the evidence. With a strong plant the summary
  //    shows the Gumbel-tail p-value ("p-value (Gumbel tail, KS=...)").
  //    When an audit stops early the summary also reports "adaptive MC:
  //    stopped at .../999 worlds"; at an alpha this stringent the CI needs
  //    more than the full budget to conclude "below alpha", so a strong
  //    rejection like this one still runs all 999 worlds — clearly-fair
  //    audits are where the big savings land (they stop after min_worlds).
  std::printf("%s\n", sfa::core::FormatAuditSummary(*result, dataset.name()).c_str());
  std::printf("%s\n", sfa::core::FormatFindingsTable(result->findings, 5).c_str());
  std::printf("Planted zone %s: %s — the top findings should sit there.\n",
              biased_zone.ToString().c_str(),
              result->spatially_fair ? "MISSED (unexpected!)" : "recovered");
  return result->spatially_fair ? 1 : 0;  // we planted bias; expect unfair
}
