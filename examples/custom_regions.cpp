// Implementing a custom RegionFamily: auditing over city-district polygons
// is out of scope for the built-in families, but any region shape works as
// long as you can enumerate memberships. This example defines a family of
// CIRCULAR regions and runs the standard audit over it — nothing in the
// auditor knows or cares that the regions are not rectangles.
#include <cstdio>

#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/audit.h"
#include "core/report.h"
#include "data/dataset.h"
#include "spatial/bitvector.h"

namespace {

/// A circle-based region family. Membership bit vectors are built once at
/// construction; per-world positive counts are AND+popcounts, identical in
/// cost to the built-in SquareScanFamily.
class CircleFamily final : public sfa::core::RegionFamily {
 public:
  CircleFamily(const std::vector<sfa::geo::Point>& points,
               std::vector<sfa::geo::Point> centers, std::vector<double> radii)
      : centers_(std::move(centers)),
        radii_(std::move(radii)),
        num_points_(points.size()) {
    for (const auto& center : centers_) {
      for (double radius : radii_) {
        sfa::spatial::BitVector membership(points.size());
        for (size_t i = 0; i < points.size(); ++i) {
          if (points[i].DistanceTo(center) <= radius) membership.Set(i);
        }
        counts_.push_back(membership.Popcount());
        memberships_.push_back(std::move(membership));
      }
    }
  }

  size_t num_regions() const override { return memberships_.size(); }
  size_t num_points() const override { return num_points_; }

  sfa::core::RegionDescriptor Describe(size_t r) const override {
    const auto center = centers_[r / radii_.size()];
    const double radius = radii_[r % radii_.size()];
    sfa::core::RegionDescriptor desc;
    // Report the circle's bounding box so evidence overlap tests work.
    desc.rect = sfa::geo::Rect(center.x - radius, center.y - radius,
                               center.x + radius, center.y + radius);
    desc.label = sfa::StrFormat("circle((%.2f, %.2f), r=%.2f)", center.x,
                                center.y, radius);
    desc.group = static_cast<uint32_t>(r / radii_.size());
    return desc;
  }

  uint64_t PointCount(size_t r) const override { return counts_[r]; }

  void CountPositives(const sfa::core::Labels& labels,
                      std::vector<uint64_t>* out) const override {
    out->resize(num_regions());
    for (size_t r = 0; r < memberships_.size(); ++r) {
      (*out)[r] =
          sfa::spatial::BitVector::AndPopcount(memberships_[r], labels.bits());
    }
  }

  std::string Name() const override {
    return sfa::StrFormat("%zu circles over %zu points", num_regions(),
                          num_points_);
  }

 private:
  std::vector<sfa::geo::Point> centers_;
  std::vector<double> radii_;
  std::vector<sfa::spatial::BitVector> memberships_;
  std::vector<uint64_t> counts_;
  size_t num_points_;
};

}  // namespace

int main() {
  // Data with a circular biased district: inside radius 1.2 of (7, 7), the
  // positive rate is depressed.
  sfa::Rng rng(99);
  sfa::data::OutcomeDataset dataset("circular-district");
  const sfa::geo::Point district_center(7.0, 7.0);
  for (int i = 0; i < 15000; ++i) {
    const sfa::geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const bool inside = loc.DistanceTo(district_center) <= 1.2;
    dataset.Add(loc, rng.Bernoulli(inside ? 0.4 : 0.6) ? 1 : 0);
  }

  // Circle family: a lattice of candidate centers x three radii.
  std::vector<sfa::geo::Point> centers;
  for (double x = 1.0; x <= 9.0; x += 1.0) {
    for (double y = 1.0; y <= 9.0; y += 1.0) centers.push_back({x, y});
  }
  CircleFamily family(dataset.locations(), centers, {0.8, 1.2, 1.8});
  std::printf("scanning %s\n", family.Name().c_str());

  sfa::core::AuditOptions options;
  options.alpha = 0.005;
  options.monte_carlo.num_worlds = 499;
  auto result = sfa::core::Auditor(options).Audit(dataset, family);
  SFA_CHECK_OK(result.status());

  std::printf("\n%s",
              sfa::core::FormatAuditSummary(*result, dataset.name()).c_str());
  std::printf("%s", sfa::core::FormatFindingsTable(result->findings, 5).c_str());
  if (!result->findings.empty()) {
    const auto top_center = result->findings[0].rect.Center();
    std::printf("\nTop circle center (%.1f, %.1f) vs planted district (7, 7).\n",
                top_center.x, top_center.y);
  }
  return 0;
}
