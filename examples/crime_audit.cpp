// Crime-forecasting audit (the paper's Crime scenario): train a random
// forest to predict incident seriousness from non-spatial features, then
// audit whether its ACCURACY is spatially fair — equal opportunity (TPR
// surface) and predictive equality (FPR surface).
#include <cstdio>

#include "common/macros.h"
#include "core/audit.h"
#include "core/equal_odds.h"
#include "core/grid_family.h"
#include "core/report.h"
#include "data/crime_sim.h"

int main() {
  // Generate incidents and train the classifier (location never enters the
  // feature set — unawareness! — yet the audit will still find unfairness).
  sfa::data::CrimeAuditOptions options;
  options.sim.num_incidents = 150000;  // reduced from the paper's 711,852
  options.forest.num_trees = 15;
  auto bundle = sfa::data::BuildCrimeAudit(options);
  SFA_CHECK_OK(bundle.status());
  std::printf("model accuracy %.3f | global TPR %.3f | test size %llu\n",
              bundle->model_accuracy, bundle->global_tpr,
              static_cast<unsigned long long>(bundle->num_test));

  sfa::core::AuditOptions audit_opts;
  audit_opts.alpha = 0.005;
  audit_opts.monte_carlo.num_worlds = 499;

  // --- Equal opportunity: is the true-positive rate location-independent?
  //     (The family must be bound to the Y=1 view's locations.)
  const sfa::data::OutcomeDataset& eo_view = bundle->equal_opportunity;
  auto eo_family =
      sfa::core::GridPartitionFamily::Create(eo_view.locations(), 20, 20);
  SFA_CHECK_OK(eo_family.status());
  auto eo_result = sfa::core::Auditor(audit_opts).AuditView(eo_view, **eo_family);
  SFA_CHECK_OK(eo_result.status());
  std::printf("\n%s", sfa::core::FormatAuditSummary(
                          *eo_result, "Crime TPR surface (equal opportunity)")
                          .c_str());
  std::printf("%s", sfa::core::FormatFindingsTable(eo_result->findings, 5).c_str());
  for (const auto& finding : eo_result->findings) {
    if (finding.local_rate < eo_result->overall_rate) {
      std::printf(
          "\nUnder-detection finding: local TPR %.2f vs global %.2f — the model\n"
          "misses serious crime there (the planted 'Hollywood' effect).\n",
          finding.local_rate, eo_result->overall_rate);
      break;
    }
  }

  // --- Predictive equality: is the false-positive rate location-independent?
  auto pe_view = sfa::core::BuildMeasureView(
      bundle->full_test, sfa::core::FairnessMeasure::kPredictiveEquality);
  SFA_CHECK_OK(pe_view.status());
  auto pe_family =
      sfa::core::GridPartitionFamily::Create(pe_view->locations(), 20, 20);
  SFA_CHECK_OK(pe_family.status());
  auto pe_result = sfa::core::Auditor(audit_opts).AuditView(*pe_view, **pe_family);
  SFA_CHECK_OK(pe_result.status());
  std::printf("\n%s", sfa::core::FormatAuditSummary(
                          *pe_result, "Crime FPR surface (predictive equality)")
                          .c_str());

  // --- Or run both at once: the joint equal-odds audit (Bonferroni across
  //     the two surfaces, so the family-wise level stays at alpha).
  sfa::core::FamilyFactory grid_factory =
      [](const std::vector<sfa::geo::Point>& locations)
      -> sfa::Result<std::unique_ptr<sfa::core::RegionFamily>> {
    SFA_ASSIGN_OR_RETURN(auto family, sfa::core::GridPartitionFamily::Create(
                                          locations, 20, 20));
    return std::unique_ptr<sfa::core::RegionFamily>(std::move(family));
  };
  auto equal_odds =
      sfa::core::AuditEqualOdds(bundle->full_test, grid_factory, audit_opts);
  SFA_CHECK_OK(equal_odds.status());
  std::printf("\nJoint equal-odds verdict at alpha=%.3f: %s (TPR p=%.4f, FPR p=%.4f)\n",
              equal_odds->alpha,
              equal_odds->spatially_fair ? "FAIR" : "UNFAIR",
              equal_odds->tpr.p_value, equal_odds->fpr.p_value);

  std::printf(
      "\nTogether the two audits cover equalized odds: TPR unfairness means\n"
      "under-detection (under-policing risk); FPR unfairness means spurious\n"
      "seriousness (over-policing risk).\n");
  return 0;
}
