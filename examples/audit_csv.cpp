// audit_csv — command-line spatial-fairness audit for arbitrary data.
//
// Usage:
//   audit_csv FILE.csv [--grid GX GY] [--alpha A] [--worlds W]
//             [--measure sp|eo|pe] [--direction two|high|low] [--seed S]
//
// The CSV needs columns lon, lat, predicted (0/1) and, for the eo/pe
// measures, actual (0/1). With no FILE argument the tool writes a small
// demo CSV to /tmp and audits it, so it is runnable out of the box.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/random.h"
#include "common/string_util.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "core/report.h"
#include "data/csv.h"

namespace {

struct CliOptions {
  std::string file;
  uint32_t gx = 20;
  uint32_t gy = 20;
  double alpha = 0.005;
  uint32_t worlds = 999;
  uint64_t seed = 99;
  sfa::core::FairnessMeasure measure =
      sfa::core::FairnessMeasure::kStatisticalParity;
  sfa::stats::ScanDirection direction = sfa::stats::ScanDirection::kTwoSided;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s FILE.csv [--grid GX GY] [--alpha A] [--worlds W]\n"
               "       [--measure sp|eo|pe] [--direction two|high|low] [--seed S]\n",
               argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char** out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    const char* value = nullptr;
    if (arg == "--grid") {
      const char* gy = nullptr;
      if (!next(&value) || !next(&gy)) return false;
      opts->gx = static_cast<uint32_t>(std::atoi(value));
      opts->gy = static_cast<uint32_t>(std::atoi(gy));
    } else if (arg == "--alpha") {
      if (!next(&value)) return false;
      opts->alpha = std::atof(value);
    } else if (arg == "--worlds") {
      if (!next(&value)) return false;
      opts->worlds = static_cast<uint32_t>(std::atoi(value));
    } else if (arg == "--seed") {
      if (!next(&value)) return false;
      opts->seed = static_cast<uint64_t>(std::atoll(value));
    } else if (arg == "--measure") {
      if (!next(&value)) return false;
      if (std::strcmp(value, "sp") == 0) {
        opts->measure = sfa::core::FairnessMeasure::kStatisticalParity;
      } else if (std::strcmp(value, "eo") == 0) {
        opts->measure = sfa::core::FairnessMeasure::kEqualOpportunity;
      } else if (std::strcmp(value, "pe") == 0) {
        opts->measure = sfa::core::FairnessMeasure::kPredictiveEquality;
      } else {
        return false;
      }
    } else if (arg == "--direction") {
      if (!next(&value)) return false;
      if (std::strcmp(value, "two") == 0) {
        opts->direction = sfa::stats::ScanDirection::kTwoSided;
      } else if (std::strcmp(value, "high") == 0) {
        opts->direction = sfa::stats::ScanDirection::kHigh;
      } else if (std::strcmp(value, "low") == 0) {
        opts->direction = sfa::stats::ScanDirection::kLow;
      } else {
        return false;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      opts->file = arg;
    } else {
      return false;
    }
  }
  return true;
}

std::string WriteDemoCsv() {
  const std::string path = "/tmp/sfa_demo.csv";
  sfa::Rng rng(1);
  sfa::data::OutcomeDataset demo("demo");
  const sfa::geo::Rect zone(2.0, 2.0, 4.5, 4.5);
  for (int i = 0; i < 25000; ++i) {
    const sfa::geo::Point p(rng.Uniform(0, 10), rng.Uniform(0, 10));
    demo.Add(p, rng.Bernoulli(zone.Contains(p) ? 0.35 : 0.6) ? 1 : 0);
  }
  const sfa::Status status = sfa::data::WriteCsv(demo, path);
  if (!status.ok()) {
    std::fprintf(stderr, "demo write failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  std::printf("(no input given — wrote demo data with a planted zone to %s)\n",
              path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return Usage(argv[0]);
  if (cli.file.empty()) cli.file = WriteDemoCsv();

  auto dataset = sfa::data::ReadCsv(cli.file);
  if (!dataset.ok()) {
    std::fprintf(stderr, "read: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", dataset->Summary().c_str());

  auto view = sfa::core::BuildMeasureView(*dataset, cli.measure);
  if (!view.ok()) {
    std::fprintf(stderr, "measure: %s\n", view.status().ToString().c_str());
    return 1;
  }
  std::printf("measure: %s | direction: %s | grid %ux%u | alpha %.4g | %u worlds\n",
              sfa::core::FairnessMeasureToString(cli.measure),
              sfa::stats::ScanDirectionToString(cli.direction), cli.gx, cli.gy,
              cli.alpha, cli.worlds);

  auto family =
      sfa::core::GridPartitionFamily::Create(view->locations(), cli.gx, cli.gy);
  if (!family.ok()) {
    std::fprintf(stderr, "family: %s\n", family.status().ToString().c_str());
    return 1;
  }

  sfa::core::AuditOptions options;
  options.alpha = cli.alpha;
  options.measure = cli.measure;
  options.direction = cli.direction;
  options.monte_carlo.num_worlds = cli.worlds;
  options.monte_carlo.seed = cli.seed;
  auto result = sfa::core::Auditor(options).AuditView(*view, **family);
  if (!result.ok()) {
    std::fprintf(stderr, "audit: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s", sfa::core::FormatAuditSummary(*result, cli.file).c_str());
  std::printf("%s", sfa::core::FormatFindingsTable(result->findings, 20).c_str());
  return result->spatially_fair ? 0 : 3;  // exit code signals the verdict
}
