// Multi-class spatial audit: beyond binary outcomes.
//
// Scenario: a delivery platform routes orders to three service tiers
// (standard / express / premium). Tier assignment should not depend on where
// the customer lives. The multiclass audit (multinomial scan, the
// generalization the paper's binary test derives from) checks whether the
// full tier DISTRIBUTION is independent of location, and points at the
// neighborhoods where the mix deviates.
#include <cstdio>

#include "common/macros.h"
#include "common/random.h"
#include "core/multiclass.h"

int main() {
  sfa::Rng rng(2718);
  std::vector<sfa::geo::Point> customers;
  std::vector<uint8_t> tier;  // 0 = standard, 1 = express, 2 = premium
  const std::vector<double> global_mix = {0.6, 0.3, 0.1};

  // A planted district where premium service is quietly withheld: its orders
  // are mostly standard regardless of the global mix.
  const sfa::geo::Rect underserved(1.0, 6.0, 4.0, 9.0);
  const std::vector<double> underserved_mix = {0.85, 0.13, 0.02};
  for (int i = 0; i < 30000; ++i) {
    // Customers cluster around a city center with suburban scatter.
    sfa::geo::Point home;
    if (rng.Bernoulli(0.6)) {
      home = {rng.Normal(5.0, 1.2), rng.Normal(5.0, 1.2)};
    } else {
      home = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    }
    const auto& mix =
        underserved.Contains(home) ? underserved_mix : global_mix;
    customers.push_back(home);
    tier.push_back(static_cast<uint8_t>(rng.Categorical(mix)));
  }

  sfa::core::MulticlassAuditOptions options;
  options.alpha = 0.005;
  options.grid_x = 12;
  options.grid_y = 12;
  options.monte_carlo.num_worlds = 499;
  auto result =
      sfa::core::AuditMulticlassGrid(customers, tier, 3, options);
  SFA_CHECK_OK(result.status());

  std::printf("global tier mix: standard %.2f, express %.2f, premium %.2f\n",
              result->class_distribution[0], result->class_distribution[1],
              result->class_distribution[2]);
  std::printf("verdict: %s (p = %.4f, tau = %.2f, critical = %.2f)\n",
              result->spatially_fair ? "FAIR" : "UNFAIR", result->p_value,
              result->tau, result->critical_value);
  std::printf("significant cells: %zu\n", result->findings.size());
  for (size_t i = 0; i < std::min<size_t>(5, result->findings.size()); ++i) {
    const auto& f = result->findings[i];
    std::printf(
        "  #%zu %s n=%llu mix=(%.2f, %.2f, %.2f) LLR=%.2f\n", i + 1,
        f.rect.ToString().c_str(), static_cast<unsigned long long>(f.n),
        static_cast<double>(f.class_counts[0]) / static_cast<double>(f.n),
        static_cast<double>(f.class_counts[1]) / static_cast<double>(f.n),
        static_cast<double>(f.class_counts[2]) / static_cast<double>(f.n),
        f.llr);
  }
  if (!result->findings.empty()) {
    std::printf("\nPlanted underserved district was %s — %s\n",
                underserved.ToString().c_str(),
                result->findings[0].rect.Intersects(underserved)
                    ? "recovered by the top finding"
                    : "NOT the top finding (unexpected)");
  }
  return result->spatially_fair ? 1 : 0;
}
