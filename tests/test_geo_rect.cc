// Tests for Point and the half-open Rect semantics the whole counting stack
// depends on.
#include "geo/rect.h"

#include <gtest/gtest.h>

#include "geo/point.h"

namespace sfa::geo {
namespace {

TEST(Point, ArithmeticAndDistance) {
  const Point a(1.0, 2.0);
  const Point b(4.0, 6.0);
  EXPECT_EQ(a + b, Point(5.0, 8.0));
  EXPECT_EQ(b - a, Point(3.0, 4.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
  EXPECT_DOUBLE_EQ(a.DistanceSquaredTo(b), 25.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 5.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0.0);
}

TEST(Rect, BasicAccessors) {
  const Rect r(0.0, 1.0, 4.0, 3.0);
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 2.0);
  EXPECT_DOUBLE_EQ(r.Area(), 8.0);
  EXPECT_EQ(r.Center(), Point(2.0, 2.0));
  EXPECT_TRUE(r.IsValid());
}

TEST(Rect, ContainsIsHalfOpen) {
  const Rect r(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(r.Contains({0.0, 0.0}));    // min edges inclusive
  EXPECT_TRUE(r.Contains({0.5, 0.5}));
  EXPECT_FALSE(r.Contains({1.0, 0.5}));   // max edges exclusive
  EXPECT_FALSE(r.Contains({0.5, 1.0}));
  EXPECT_FALSE(r.Contains({1.0, 1.0}));
  EXPECT_FALSE(r.Contains({-0.1, 0.5}));
}

TEST(Rect, AdjacentCellsPartitionPoints) {
  // A point on a shared edge belongs to exactly one of two adjacent cells.
  const Rect left(0.0, 0.0, 1.0, 1.0);
  const Rect right(1.0, 0.0, 2.0, 1.0);
  const Point edge(1.0, 0.5);
  EXPECT_EQ(left.Contains(edge) + right.Contains(edge), 1);
}

TEST(Rect, CenteredSquare) {
  const Rect r = Rect::CenteredSquare({2.0, 3.0}, 4.0);
  EXPECT_EQ(r, Rect(0.0, 1.0, 4.0, 5.0));
  EXPECT_EQ(r.Center(), Point(2.0, 3.0));
}

TEST(Rect, BoundingBox) {
  const Rect r = Rect::BoundingBox({{1, 5}, {-2, 3}, {4, -1}});
  EXPECT_EQ(r, Rect(-2.0, -1.0, 4.0, 5.0));
  EXPECT_EQ(Rect::BoundingBox({}), Rect());
  EXPECT_EQ(Rect::BoundingBox({{2, 2}}), Rect(2, 2, 2, 2));
}

TEST(Rect, ContainsRect) {
  const Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.ContainsRect(Rect(1, 1, 9, 9)));
  EXPECT_TRUE(outer.ContainsRect(outer));  // closed containment
  EXPECT_FALSE(outer.ContainsRect(Rect(5, 5, 11, 9)));
  EXPECT_FALSE(outer.ContainsRect(Rect(-1, 0, 5, 5)));
}

TEST(Rect, IntersectsOpenInteriors) {
  const Rect a(0, 0, 2, 2);
  EXPECT_TRUE(a.Intersects(Rect(1, 1, 3, 3)));
  EXPECT_FALSE(a.Intersects(Rect(2, 0, 4, 2)));  // shared edge only
  EXPECT_FALSE(a.Intersects(Rect(3, 3, 4, 4)));
  EXPECT_TRUE(a.Intersects(a));
}

TEST(Rect, IntersectionAndUnion) {
  const Rect a(0, 0, 4, 4);
  const Rect b(2, 1, 6, 3);
  EXPECT_EQ(a.Intersection(b), Rect(2, 1, 4, 3));
  EXPECT_EQ(a.Union(b), Rect(0, 0, 6, 4));
  // Disjoint intersection degenerates to zero area.
  const Rect far(10, 10, 12, 12);
  EXPECT_DOUBLE_EQ(a.Intersection(far).Area(), 0.0);
}

TEST(Rect, Expanded) {
  EXPECT_EQ(Rect(0, 0, 1, 1).Expanded(0.5), Rect(-0.5, -0.5, 1.5, 1.5));
}

TEST(Rect, SymmetryOfIntersects) {
  const Rect a(0, 0, 2, 2);
  const Rect b(1, -1, 3, 1);
  EXPECT_EQ(a.Intersects(b), b.Intersects(a));
}

// Property sweep: Intersection area is never larger than either input and
// Union contains both inputs.
class RectPairSweep : public ::testing::TestWithParam<int> {};

TEST_P(RectPairSweep, IntersectionUnionInvariants) {
  const int seed = GetParam();
  auto pseudo = [&](int k) {
    return static_cast<double>(((seed * 2654435761u + k * 40503u) % 1000)) / 100.0;
  };
  Rect a(pseudo(1), pseudo(2), pseudo(1) + pseudo(3), pseudo(2) + pseudo(4));
  Rect b(pseudo(5), pseudo(6), pseudo(5) + pseudo(7), pseudo(6) + pseudo(8));
  const Rect inter = a.Intersection(b);
  const Rect uni = a.Union(b);
  EXPECT_LE(inter.Area(), a.Area() + 1e-12);
  EXPECT_LE(inter.Area(), b.Area() + 1e-12);
  EXPECT_TRUE(uni.ContainsRect(a));
  EXPECT_TRUE(uni.ContainsRect(b));
  if (inter.Area() > 0) {
    EXPECT_TRUE(a.Intersects(b));
    EXPECT_TRUE(a.ContainsRect(inter) && b.ContainsRect(inter));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPairSweep, ::testing::Range(1, 25));

}  // namespace
}  // namespace sfa::geo
