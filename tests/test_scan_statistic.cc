// Tests of the pluggable ScanStatistic layer (core/scan_statistic.h):
//
//   * the Bernoulli statistic is a faithful re-seat of the legacy scan and
//     Monte Carlo paths — byte-identical observed scans and null
//     distributions against the pre-statistic-layer entry points;
//   * statistic-fingerprint keying: calibrations of different statistics
//     (or differently-configured instances of one statistic) over the SAME
//     family, N, and Monte Carlo options never collide;
//   * the multinomial statistic: observed Λ matches the brute-force
//     std::log evaluation, class counts are consistent, the engine
//     strategies are bit-identical across batch size and parallelism for
//     both null models, and it runs over non-grid families.
#include "core/scan_statistic.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/bernoulli_statistic.h"
#include "core/calibration_cache.h"
#include "core/grid_family.h"
#include "core/knn_circle_family.h"
#include "core/multinomial_statistic.h"
#include "core/scan.h"
#include "core/significance.h"
#include "stats/multinomial_scan.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::MakeFairDataset;

/// A multiclass "city": uniform locations on [0,10)², classes drawn from a
/// fixed mix (optionally shifted inside one zone to plant unfairness).
struct MulticlassCity {
  std::vector<geo::Point> locations;
  std::vector<uint8_t> classes;
  data::OutcomeDataset view{"multiclass-city"};
};

MulticlassCity MakeMulticlassCity(uint64_t seed, size_t n,
                                  const std::vector<double>& mix,
                                  bool planted = false) {
  Rng rng(seed);
  MulticlassCity city;
  const geo::Rect zone(6.0, 6.0, 9.0, 9.0);
  const std::vector<double> shifted = {0.1, 0.2, 0.7};
  for (size_t i = 0; i < n; ++i) {
    const geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const auto& m = planted && zone.Contains(loc) ? shifted : mix;
    const auto c = static_cast<uint8_t>(rng.Categorical(m));
    city.locations.push_back(loc);
    city.classes.push_back(c);
    city.view.Add(loc, c);
  }
  return city;
}

// ------------------------------------------------------- Bernoulli re-seat --

TEST(BernoulliStatistic, ObservedScanMatchesLegacyScanBitForBit) {
  const auto ds = MakeFairDataset(11, 600, 0.4);
  auto family = GridPartitionFamily::Create(ds.locations(), 5, 4);
  ASSERT_TRUE(family.ok());

  const BernoulliScanStatistic statistic(stats::ScanDirection::kTwoSided,
                                         ds.size(), ds.PositiveCount());
  AuditScratch scratch;
  const ScanResult via_statistic = statistic.ScanObserved(
      **family, ds.predicted().data(), ds.size(), &scratch);

  const Labels labels = Labels::FromBytes(ds.predicted());
  const ScanResult legacy =
      ScanAllRegions(**family, labels, stats::ScanDirection::kTwoSided);

  EXPECT_EQ(via_statistic.llr, legacy.llr);
  EXPECT_EQ(via_statistic.positives, legacy.positives);
  EXPECT_EQ(via_statistic.max_llr, legacy.max_llr);
  EXPECT_EQ(via_statistic.argmax, legacy.argmax);
  EXPECT_EQ(via_statistic.total_p, legacy.total_p);
  EXPECT_TRUE(via_statistic.class_counts.empty());
}

TEST(BernoulliStatistic, SimulateNullMatchesLegacyEntryPointBitForBit) {
  const auto ds = MakeFairDataset(12, 500, 0.35);
  auto family = GridPartitionFamily::Create(ds.locations(), 6, 6);
  ASSERT_TRUE(family.ok());

  for (const NullModel null_model :
       {NullModel::kBernoulli, NullModel::kPermutation}) {
    MonteCarloOptions mc;
    mc.num_worlds = 120;
    mc.seed = 77;
    mc.null_model = null_model;

    const BernoulliScanStatistic statistic(stats::ScanDirection::kTwoSided,
                                           ds.size(), ds.PositiveCount());
    auto via_statistic = SimulateNull(statistic, **family, mc);
    auto legacy = SimulateNull(**family, ds.PositiveRate(), ds.PositiveCount(),
                               stats::ScanDirection::kTwoSided, mc);
    ASSERT_TRUE(via_statistic.ok() && legacy.ok());
    EXPECT_EQ(via_statistic->MaximaVector(), legacy->MaximaVector())
        << NullModelToString(null_model);
  }
}

// ------------------------------------------------ statistic-aware keying ---

TEST(ScanStatisticKeying, DifferentStatisticsNeverCollide) {
  // Identical family, N, and Monte Carlo options — only the statistic
  // differs. Keys must differ in hash AND debug rendering (CalibrationKey
  // equality compares both), for every pair.
  auto city = MakeMulticlassCity(21, 800, {0.5, 0.3, 0.2});
  auto family = GridPartitionFamily::Create(city.locations, 5, 5);
  ASSERT_TRUE(family.ok());
  const MonteCarloOptions mc;

  uint64_t positives = 0;  // count of class 1 as a binary projection
  for (uint8_t c : city.classes) positives += c == 1 ? 1 : 0;

  const BernoulliScanStatistic two_sided(stats::ScanDirection::kTwoSided,
                                         city.locations.size(), positives);
  const BernoulliScanStatistic low(stats::ScanDirection::kLow,
                                   city.locations.size(), positives);
  auto multinomial = MultinomialScanStatistic::FromOutcomes(
      city.classes.data(), city.classes.size(), 3);
  ASSERT_TRUE(multinomial.ok());
  // A different class decomposition of the SAME points (coarser relabeling).
  std::vector<uint8_t> binary_classes(city.classes.size());
  for (size_t i = 0; i < city.classes.size(); ++i) {
    binary_classes[i] = city.classes[i] == 1 ? 1 : 0;
  }
  auto multinomial_k2 = MultinomialScanStatistic::FromOutcomes(
      binary_classes.data(), binary_classes.size(), 2);
  ASSERT_TRUE(multinomial_k2.ok());

  const std::vector<const ScanStatistic*> statistics = {
      &two_sided, &low, multinomial->get(), multinomial_k2->get()};
  std::vector<CalibrationKey> keys;
  for (const ScanStatistic* statistic : statistics) {
    keys.push_back(MakeCalibrationKey(**family, *statistic, mc));
    // Every key carries the statistic fingerprint in its debug rendering.
    EXPECT_NE(keys.back().debug.find(statistic->Fingerprint()),
              std::string::npos);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i].hash, keys[j].hash) << i << " vs " << j;
      EXPECT_NE(keys[i].debug, keys[j].debug) << i << " vs " << j;
      EXPECT_FALSE(keys[i] == keys[j]);
    }
  }
}

TEST(ScanStatisticKeying, LegacyBernoulliOverloadAgrees) {
  const auto ds = MakeFairDataset(22, 300, 0.5);
  auto family = GridPartitionFamily::Create(ds.locations(), 4, 4);
  ASSERT_TRUE(family.ok());
  const MonteCarloOptions mc;
  const BernoulliScanStatistic statistic(stats::ScanDirection::kHigh,
                                         ds.size(), ds.PositiveCount());
  const CalibrationKey via_statistic =
      MakeCalibrationKey(**family, statistic, mc);
  const CalibrationKey legacy =
      MakeCalibrationKey(**family, ds.size(), ds.PositiveCount(),
                         stats::ScanDirection::kHigh, mc);
  EXPECT_TRUE(via_statistic == legacy);
}

// ------------------------------------------------------------ multinomial --

TEST(MultinomialStatistic, ObservedScanMatchesBruteForce) {
  auto city = MakeMulticlassCity(31, 1200, {0.5, 0.3, 0.2}, /*planted=*/true);
  auto family = GridPartitionFamily::Create(city.locations, 6, 6);
  ASSERT_TRUE(family.ok());
  auto statistic = MultinomialScanStatistic::FromOutcomes(
      city.classes.data(), city.classes.size(), 3);
  ASSERT_TRUE(statistic.ok());

  AuditScratch scratch;
  const ScanResult scan = (*statistic)->ScanObserved(
      **family, city.classes.data(), city.classes.size(), &scratch);
  ASSERT_EQ(scan.llr.size(), (*family)->num_regions());
  ASSERT_EQ(scan.num_classes, 3u);
  ASSERT_EQ(scan.class_counts.size(), (*family)->num_regions() * 3);

  // Brute force per region: count classes point-by-point, evaluate the
  // std::log LLR, compare (table arithmetic agrees to reassociation ulps).
  const std::vector<uint64_t>& totals = (*statistic)->class_totals();
  double max_llr = 0.0;
  for (size_t r = 0; r < (*family)->num_regions(); ++r) {
    const geo::Rect rect = (*family)->Describe(r).rect;
    std::vector<uint64_t> inside(3, 0);
    for (size_t i = 0; i < city.locations.size(); ++i) {
      if (rect.Contains(city.locations[i])) ++inside[city.classes[i]];
    }
    for (uint32_t k = 0; k < 3; ++k) {
      EXPECT_EQ(scan.class_counts[r * 3 + k], inside[k])
          << "region " << r << " class " << k;
    }
    const double expected =
        stats::MultinomialLogLikelihoodRatio(inside, totals);
    EXPECT_NEAR(scan.llr[r], expected, 1e-8) << "region " << r;
    max_llr = std::max(max_llr, scan.llr[r]);
  }
  EXPECT_EQ(scan.max_llr, max_llr);
  EXPECT_GT(scan.max_llr, 0.0) << "planted shift should light up";
}

TEST(MultinomialStatistic, TwoClassCaseTracksBernoulliTau) {
  // K=2 multinomial Λ reduces to the two-sided Bernoulli Λ (class 1 as
  // "positive"), so the observed max statistics must agree numerically.
  const auto ds = MakeFairDataset(32, 700, 0.45);
  auto family = GridPartitionFamily::Create(ds.locations(), 5, 5);
  ASSERT_TRUE(family.ok());

  AuditScratch scratch;
  // The multinomial LLR is symmetric in its classes, so {0,1} outcomes need
  // no relabeling to match the Bernoulli "class 1 = positive" convention.
  auto statistic = MultinomialScanStatistic::FromOutcomes(
      ds.predicted().data(), ds.size(), 2);
  ASSERT_TRUE(statistic.ok());
  const ScanResult multinomial = (*statistic)->ScanObserved(
      **family, ds.predicted().data(), ds.size(), &scratch);

  const BernoulliScanStatistic bernoulli(stats::ScanDirection::kTwoSided,
                                         ds.size(), ds.PositiveCount());
  AuditScratch bernoulli_scratch;
  const ScanResult binary = bernoulli.ScanObserved(
      **family, ds.predicted().data(), ds.size(), &bernoulli_scratch);

  EXPECT_NEAR(multinomial.max_llr, binary.max_llr, 1e-8);
  for (size_t r = 0; r < multinomial.llr.size(); ++r) {
    EXPECT_NEAR(multinomial.llr[r], binary.llr[r], 1e-8) << "region " << r;
  }
}

TEST(MultinomialStatistic, EngineStrategiesBitIdentical) {
  auto city = MakeMulticlassCity(33, 900, {0.4, 0.35, 0.25});
  auto family = GridPartitionFamily::Create(city.locations, 5, 4);
  ASSERT_TRUE(family.ok());
  auto statistic = MultinomialScanStatistic::FromOutcomes(
      city.classes.data(), city.classes.size(), 3);
  ASSERT_TRUE(statistic.ok());

  for (const NullModel null_model :
       {NullModel::kBernoulli, NullModel::kPermutation}) {
    for (const bool closed_form : {true, false}) {
      MonteCarloOptions reference;
      reference.num_worlds = 80;
      reference.seed = 404;
      reference.null_model = null_model;
      reference.closed_form_cells = closed_form;
      reference.engine = McEngine::kReference;
      reference.parallel = false;
      auto baseline = SimulateNull(**statistic, **family, reference);
      ASSERT_TRUE(baseline.ok());
      EXPECT_GT(baseline->sorted_max().front(), 0.0);

      for (const uint32_t batch_size : {1u, 3u, 16u}) {
        for (const bool parallel : {false, true}) {
          MonteCarloOptions batched = reference;
          batched.engine = McEngine::kBatched;
          batched.batch_size = batch_size;
          batched.parallel = parallel;
          auto got = SimulateNull(**statistic, **family, batched);
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got->MaximaVector(), baseline->MaximaVector())
              << NullModelToString(null_model) << " cf=" << closed_form
              << " batch=" << batch_size << " parallel=" << parallel;
        }
      }
    }
  }
}

TEST(MultinomialStatistic, RunsOverNonGridFamilies) {
  // The whole point of the refactor: multiclass audits are no longer
  // grid-only. A kNN circle family (overlapping regions, sparse-annulus
  // counting, no cell decomposition) calibrates and scans fine.
  auto city = MakeMulticlassCity(34, 600, {0.5, 0.3, 0.2}, /*planted=*/true);
  KnnCircleOptions options;
  options.centers = {{2.0, 2.0}, {5.0, 5.0}, {7.5, 7.5}, {8.0, 2.0}};
  auto family = KnnCircleFamily::Create(city.locations, options);
  ASSERT_TRUE(family.ok());

  AuditOptions audit_options;
  audit_options.statistic = StatisticKind::kMultinomial;
  audit_options.num_classes = 3;
  audit_options.alpha = 0.05;
  audit_options.monte_carlo.num_worlds = 99;
  auto result = Auditor(audit_options).AuditView(city.view, **family);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->statistic, StatisticKind::kMultinomial);
  EXPECT_EQ(result->total_n, city.locations.size());
  ASSERT_EQ(result->class_distribution.size(), 3u);
  // The planted corner around (7.5, 7.5) should reject fairness.
  EXPECT_FALSE(result->spatially_fair) << "p=" << result->p_value;

  auto again = Auditor(audit_options).AuditView(city.view, **family);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(ResultsBitIdentical(*result, *again));
}

TEST(MakeScanStatistic, ValidatesOutcomeModel) {
  auto city = MakeMulticlassCity(35, 50, {0.5, 0.3, 0.2});

  // Bernoulli over class ids > 1 must fail loudly, not miscount.
  AuditOptions bernoulli;
  auto statistic = MakeScanStatistic(bernoulli, city.view);
  ASSERT_TRUE(statistic.ok());  // construction only counts positives...
  EXPECT_FALSE(
      (*statistic)
          ->ValidateOutcomes(city.view.predicted().data(), city.view.size())
          .ok());

  AuditOptions multinomial;
  multinomial.statistic = StatisticKind::kMultinomial;
  multinomial.num_classes = 1;
  EXPECT_FALSE(MakeScanStatistic(multinomial, city.view).ok());
  multinomial.num_classes = 2;  // data holds class 2 -> out of range
  EXPECT_FALSE(MakeScanStatistic(multinomial, city.view).ok());
  multinomial.num_classes = 3;
  EXPECT_TRUE(MakeScanStatistic(multinomial, city.view).ok());
}

}  // namespace
}  // namespace sfa::core
