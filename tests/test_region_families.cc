// Tests for the three region-family implementations: counts must agree with
// brute-force geometry for both n(R) and p(R), across label assignments.
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/grid_family.h"
#include "core/partitioning_family.h"
#include "core/square_family.h"
#include "stats/kmeans.h"

namespace sfa::core {
namespace {

struct TestCloud {
  std::vector<geo::Point> points;
  std::vector<uint8_t> labels;
};

TestCloud MakeCloud(size_t n, uint64_t seed) {
  sfa::Rng rng(seed);
  TestCloud cloud;
  cloud.points.resize(n);
  cloud.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Clustered + background mix to stress irregular densities.
    if (rng.Bernoulli(0.7)) {
      cloud.points[i] = {rng.Normal(3.0, 0.5), rng.Normal(7.0, 0.5)};
    } else {
      cloud.points[i] = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    }
    cloud.labels[i] = rng.Bernoulli(0.4) ? 1 : 0;
  }
  return cloud;
}

void CheckFamilyAgainstBruteForce(const RegionFamily& family,
                                  const TestCloud& cloud) {
  const Labels labels = Labels::FromBytes(cloud.labels);
  std::vector<uint64_t> positives;
  family.CountPositives(labels, &positives);
  ASSERT_EQ(positives.size(), family.num_regions());
  for (size_t r = 0; r < family.num_regions(); ++r) {
    const geo::Rect rect = family.Describe(r).rect;
    uint64_t expected_n = 0, expected_p = 0;
    for (size_t i = 0; i < cloud.points.size(); ++i) {
      if (rect.Contains(cloud.points[i])) {
        ++expected_n;
        expected_p += cloud.labels[i];
      }
    }
    ASSERT_EQ(family.PointCount(r), expected_n) << family.Name() << " region " << r;
    ASSERT_EQ(positives[r], expected_p) << family.Name() << " region " << r;
  }
}

TEST(GridPartitionFamily, RejectsEmptyPoints) {
  EXPECT_FALSE(GridPartitionFamily::Create({}, 4, 4).ok());
}

TEST(GridPartitionFamily, CountsMatchBruteForce) {
  const TestCloud cloud = MakeCloud(2000, 41);
  auto family = GridPartitionFamily::Create(cloud.points, 8, 6);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ((*family)->num_regions(), 48u);
  EXPECT_EQ((*family)->num_points(), 2000u);
  CheckFamilyAgainstBruteForce(**family, cloud);
}

TEST(GridPartitionFamily, PointCountsSumToN) {
  const TestCloud cloud = MakeCloud(1500, 42);
  auto family = GridPartitionFamily::Create(cloud.points, 10, 10);
  ASSERT_TRUE(family.ok());
  uint64_t total = 0;
  for (size_t r = 0; r < (*family)->num_regions(); ++r) {
    total += (*family)->PointCount(r);
  }
  EXPECT_EQ(total, 1500u);  // every point in exactly one cell
}

TEST(GridPartitionFamily, ExplicitExtentExcludesOutsiders) {
  const std::vector<geo::Point> pts = {{1, 1}, {9, 9}, {100, 100}};
  auto family =
      GridPartitionFamily::CreateWithExtent(pts, geo::Rect(0, 0, 10, 10), 2, 2);
  ASSERT_TRUE(family.ok());
  uint64_t total = 0;
  for (size_t r = 0; r < (*family)->num_regions(); ++r) {
    total += (*family)->PointCount(r);
  }
  EXPECT_EQ(total, 2u);
}

TEST(GridPartitionFamily, DescribeGivesDisjointTilingRects) {
  const TestCloud cloud = MakeCloud(100, 43);
  auto family = GridPartitionFamily::Create(cloud.points, 4, 3);
  ASSERT_TRUE(family.ok());
  double area = 0.0;
  for (size_t r = 0; r < (*family)->num_regions(); ++r) {
    area += (*family)->Describe(r).rect.Area();
  }
  EXPECT_NEAR(area, (*family)->grid().extent().Area(), 1e-6);
}

TEST(PartitioningCollectionFamily, RejectsEmptyInputs) {
  sfa::Rng rng(1);
  auto p = geo::Partitioning::Regular(geo::Rect(0, 0, 10, 10), 2, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(PartitioningCollectionFamily::Create({}, {*p}).ok());
  EXPECT_FALSE(PartitioningCollectionFamily::Create({{1, 1}}, {}).ok());
}

TEST(PartitioningCollectionFamily, CountsMatchBruteForce) {
  const TestCloud cloud = MakeCloud(1000, 44);
  sfa::Rng rng(45);
  const geo::Rect extent(0, 0, 10, 10);
  auto partitionings = geo::MakeRandomPartitionings(extent, 5, 3, 8, &rng);
  ASSERT_TRUE(partitionings.ok());
  auto family = PartitioningCollectionFamily::Create(cloud.points, *partitionings);
  ASSERT_TRUE(family.ok());
  CheckFamilyAgainstBruteForce(**family, cloud);
}

TEST(PartitioningCollectionFamily, LocateRoundTrips) {
  const TestCloud cloud = MakeCloud(200, 46);
  sfa::Rng rng(47);
  auto partitionings =
      geo::MakeRandomPartitionings(geo::Rect(0, 0, 10, 10), 4, 2, 5, &rng);
  ASSERT_TRUE(partitionings.ok());
  auto family = PartitioningCollectionFamily::Create(cloud.points, *partitionings);
  ASSERT_TRUE(family.ok());
  for (size_t r = 0; r < (*family)->num_regions(); ++r) {
    const auto [t, partition] = (*family)->Locate(r);
    ASSERT_EQ((*family)->RegionOffset(t) + partition, r);
    ASSERT_LT(t, (*family)->num_partitionings());
    ASSERT_LT(partition, (*family)->partitioning(t).num_partitions());
  }
}

TEST(PartitioningCollectionFamily, EachPartitioningSumsToN) {
  const TestCloud cloud = MakeCloud(800, 48);
  sfa::Rng rng(49);
  auto partitionings =
      geo::MakeRandomPartitionings(geo::Rect(0, 0, 10, 10), 3, 4, 10, &rng);
  ASSERT_TRUE(partitionings.ok());
  auto family = PartitioningCollectionFamily::Create(cloud.points, *partitionings);
  ASSERT_TRUE(family.ok());
  for (size_t t = 0; t < (*family)->num_partitionings(); ++t) {
    uint64_t total = 0;
    const size_t begin = (*family)->RegionOffset(t);
    const size_t count = (*family)->partitioning(t).num_partitions();
    for (size_t r = begin; r < begin + count; ++r) {
      total += (*family)->PointCount(r);
    }
    ASSERT_EQ(total, 800u) << "partitioning " << t;
  }
}

TEST(SquareScanFamily, RejectsBadOptions) {
  const TestCloud cloud = MakeCloud(10, 50);
  SquareScanOptions opts;
  EXPECT_FALSE(SquareScanFamily::Create(cloud.points, opts).ok());  // no centers
  opts.centers = {{5, 5}};
  EXPECT_FALSE(SquareScanFamily::Create(cloud.points, opts).ok());  // no sides
  opts.side_lengths = {0.0};
  EXPECT_FALSE(SquareScanFamily::Create(cloud.points, opts).ok());  // zero side
  opts.side_lengths = {1.0};
  EXPECT_FALSE(SquareScanFamily::Create({}, opts).ok());  // no points
}

TEST(SquareScanFamily, DefaultSideLengthsMatchPaper) {
  const auto sides = SquareScanOptions::DefaultSideLengths();
  ASSERT_EQ(sides.size(), 20u);
  EXPECT_DOUBLE_EQ(sides.front(), 0.1);
  EXPECT_DOUBLE_EQ(sides.back(), 2.0);
  for (size_t i = 1; i < sides.size(); ++i) ASSERT_GT(sides[i], sides[i - 1]);
}

TEST(SquareScanFamily, CountsMatchBruteForce) {
  const TestCloud cloud = MakeCloud(1200, 51);
  SquareScanOptions opts;
  opts.centers = {{3, 7}, {5, 5}, {9, 1}};
  opts.side_lengths = {0.5, 1.5, 4.0};
  for (CountingBackend backend :
       {CountingBackend::kSparseAnnulus, CountingBackend::kDenseBits}) {
    opts.backend = backend;
    auto family = SquareScanFamily::Create(cloud.points, opts);
    ASSERT_TRUE(family.ok());
    EXPECT_EQ((*family)->num_regions(), 9u);
    CheckFamilyAgainstBruteForce(**family, cloud);
  }
}

TEST(SquareScanFamily, RegionIndexingAndGroups) {
  const TestCloud cloud = MakeCloud(100, 52);
  SquareScanOptions opts;
  opts.centers = {{2, 2}, {8, 8}};
  opts.side_lengths = {1.0, 2.0, 3.0};
  auto family = SquareScanFamily::Create(cloud.points, opts);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ((*family)->num_centers(), 2u);
  EXPECT_EQ((*family)->num_sides(), 3u);
  EXPECT_EQ((*family)->CenterOfRegion(0), 0u);
  EXPECT_EQ((*family)->CenterOfRegion(2), 0u);
  EXPECT_EQ((*family)->CenterOfRegion(3), 1u);
  EXPECT_DOUBLE_EQ((*family)->SideOfRegion(4), 2.0);
  // Regions of the same center share an evidence group.
  EXPECT_EQ((*family)->Describe(0).group, (*family)->Describe(2).group);
  EXPECT_NE((*family)->Describe(0).group, (*family)->Describe(3).group);
}

TEST(SquareScanFamily, NestedSidesHaveMonotoneCounts) {
  const TestCloud cloud = MakeCloud(2000, 53);
  SquareScanOptions opts;
  opts.centers = {{3, 7}};
  opts.side_lengths = SquareScanOptions::DefaultSideLengths(0.2, 6.0, 10);
  auto family = SquareScanFamily::Create(cloud.points, opts);
  ASSERT_TRUE(family.ok());
  for (size_t r = 1; r < (*family)->num_regions(); ++r) {
    ASSERT_GE((*family)->PointCount(r), (*family)->PointCount(r - 1));
  }
}

TEST(SquareScanFamily, WithKMeansCentersCoversMassOfPoints) {
  const TestCloud cloud = MakeCloud(3000, 54);
  stats::KMeansOptions km;
  km.k = 10;
  auto clusters = stats::KMeans(cloud.points, km);
  ASSERT_TRUE(clusters.ok());
  SquareScanOptions opts;
  opts.centers = clusters->centers;
  opts.side_lengths = {2.0};
  auto family = SquareScanFamily::Create(cloud.points, opts);
  ASSERT_TRUE(family.ok());
  uint64_t covered_max = 0;
  for (size_t r = 0; r < (*family)->num_regions(); ++r) {
    covered_max = std::max(covered_max, (*family)->PointCount(r));
  }
  EXPECT_GT(covered_max, 100u);  // k-means centers sit in dense areas
}

// Property sweep: all three families agree with brute force on randomized
// clouds of several sizes.
class FamilyAgreementSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(FamilyAgreementSweep, AllFamiliesMatchBruteForce) {
  const TestCloud cloud = MakeCloud(GetParam(), GetParam() * 7 + 1);
  sfa::Rng rng(GetParam());

  auto grid = GridPartitionFamily::Create(cloud.points, 5, 4);
  ASSERT_TRUE(grid.ok());
  CheckFamilyAgainstBruteForce(**grid, cloud);

  auto partitionings =
      geo::MakeRandomPartitionings(geo::Rect(0, 0, 10, 10), 3, 2, 6, &rng);
  ASSERT_TRUE(partitionings.ok());
  auto collection =
      PartitioningCollectionFamily::Create(cloud.points, *partitionings);
  ASSERT_TRUE(collection.ok());
  CheckFamilyAgainstBruteForce(**collection, cloud);

  SquareScanOptions opts;
  opts.centers = {{2, 2}, {5, 8}, {8, 3}};
  opts.side_lengths = {1.0, 3.0};
  auto squares = SquareScanFamily::Create(cloud.points, opts);
  ASSERT_TRUE(squares.ok());
  CheckFamilyAgainstBruteForce(**squares, cloud);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FamilyAgreementSweep,
                         ::testing::Values(1, 10, 100, 700));

}  // namespace
}  // namespace sfa::core
