// The cross-process lease protocol (common/lease.h): O_EXCL acquisition,
// rate-limited heartbeats, nonce-guarded release, dead-pid and TTL staleness,
// flock-guarded takeover, and the recovery sweep. Every scenario here is
// single-process (threads at most); the multi-process and kill -9 drills
// live in test_crash_fabric.cc. Labeled `fault` with the other failure
// drills and run under TSan in CI (the two-thread takeover race is a real
// race amplifier).
#include "common/lease.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/process_util.h"

namespace sfa {
namespace {

struct TempLeaseDir {
  std::filesystem::path path;

  explicit TempLeaseDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("sfa_lease_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempLeaseDir() { std::filesystem::remove_all(path); }

  std::string LeasePath(const std::string& name) const {
    return (path / (name + ".lease")).string();
  }
};

/// A pid that is guaranteed dead: fork a child that exits immediately and
/// reap it. (Pid reuse within one test run is implausible.)
int DeadPid() {
  const pid_t pid = ::fork();
  SFA_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) ::_exit(0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return static_cast<int>(pid);
}

/// Writes a lease file exactly as a (possibly crashed) holder would have.
void WriteLeaseFile(const std::string& path, int pid, uint64_t nonce) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  SFA_CHECK_MSG(f != nullptr, "cannot write fixture lease");
  std::fprintf(f, "pid=%d nonce=%016llx start_unix_ms=%lld\n", pid,
               static_cast<unsigned long long>(nonce), 0LL);
  std::fclose(f);
}

void AgeMtime(const std::string& path, double age_ms) {
  std::filesystem::last_write_time(
      path, std::filesystem::file_time_type::clock::now() -
                std::chrono::milliseconds(static_cast<int64_t>(age_ms)));
}

TEST(FileLease, AcquireWritesIdentityAndReleaseUnlinks) {
  TempLeaseDir dir("acquire");
  const std::string path = dir.LeasePath("k");

  auto outcome = FileLease::TryAcquire(path, /*ttl_ms=*/1000.0,
                                       /*heartbeat_interval_ms=*/10.0);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_NE(outcome->lease, nullptr);
  EXPECT_FALSE(outcome->takeover);

  const LeaseHolder holder = ReadLeaseHolder(path);
  EXPECT_TRUE(holder.parsed);
  EXPECT_EQ(holder.pid, CurrentPid());
  EXPECT_EQ(holder.nonce, outcome->lease->nonce());
  EXPECT_FALSE(LeaseIsStale(holder, 1000.0));

  outcome->lease->Release();
  EXPECT_FALSE(std::filesystem::exists(path));
  outcome->lease->Release();  // idempotent
}

TEST(FileLease, SecondAcquireObservesLiveHolder) {
  TempLeaseDir dir("holder");
  const std::string path = dir.LeasePath("k");

  auto first = FileLease::TryAcquire(path, 1000.0, 10.0);
  ASSERT_TRUE(first.ok());
  ASSERT_NE(first->lease, nullptr);

  auto second = FileLease::TryAcquire(path, 1000.0, 10.0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->lease, nullptr);
  EXPECT_TRUE(second->holder.parsed);
  EXPECT_EQ(second->holder.pid, CurrentPid());
  EXPECT_EQ(second->holder.nonce, first->lease->nonce());
}

TEST(FileLease, HeartbeatKeepsAnAgedLeaseFresh) {
  TempLeaseDir dir("heartbeat");
  const std::string path = dir.LeasePath("k");

  auto outcome = FileLease::TryAcquire(path, /*ttl_ms=*/50.0,
                                       /*heartbeat_interval_ms=*/0.0);
  ASSERT_TRUE(outcome.ok());
  ASSERT_NE(outcome->lease, nullptr);

  // Back-date the mtime past the TTL, then heartbeat: the touch must bring
  // the lease back under it (interval 0 = never rate-limited away).
  AgeMtime(path, 5'000.0);
  EXPECT_TRUE(LeaseIsStale(ReadLeaseHolder(path), 50.0) ||
              ProcessAlive(CurrentPid()));  // TTL arm is what aged it
  EXPECT_GT(ReadLeaseHolder(path).heartbeat_age_ms, 50.0);
  outcome->lease->Heartbeat();
  EXPECT_LT(ReadLeaseHolder(path).heartbeat_age_ms, 50.0);
}

TEST(FileLease, DeadHolderIsStaleAndTakenOver) {
  TempLeaseDir dir("deadpid");
  const std::string path = dir.LeasePath("k");
  WriteLeaseFile(path, DeadPid(), 0xabcdef);

  EXPECT_TRUE(LeaseIsStale(ReadLeaseHolder(path), /*ttl_ms=*/0.0));

  // ttl_ms=0 disables the TTL arm entirely — only the dead pid reclaims.
  auto outcome = FileLease::TryAcquire(path, /*ttl_ms=*/0.0, 10.0);
  ASSERT_TRUE(outcome.ok());
  ASSERT_NE(outcome->lease, nullptr);
  EXPECT_TRUE(outcome->takeover);
  EXPECT_EQ(ReadLeaseHolder(path).pid, CurrentPid());
}

TEST(FileLease, LiveButSilentHolderIsStalePastTtl) {
  TempLeaseDir dir("ttl");
  const std::string path = dir.LeasePath("k");
  // Holder pid is THIS process — alive, so only the heartbeat-age arm can
  // declare it stale (the wedged-but-alive case).
  WriteLeaseFile(path, CurrentPid(), 0x1111);
  AgeMtime(path, 10'000.0);

  EXPECT_FALSE(LeaseIsStale(ReadLeaseHolder(path), /*ttl_ms=*/0.0));
  EXPECT_TRUE(LeaseIsStale(ReadLeaseHolder(path), /*ttl_ms=*/500.0));

  auto blocked = FileLease::TryAcquire(path, /*ttl_ms=*/0.0, 10.0);
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->lease, nullptr);  // no TTL arm: holder looks live

  auto takeover = FileLease::TryAcquire(path, /*ttl_ms=*/500.0, 10.0);
  ASSERT_TRUE(takeover.ok());
  ASSERT_NE(takeover->lease, nullptr);
  EXPECT_TRUE(takeover->takeover);
}

TEST(FileLease, StaleOriginalReleaseNeverDeletesSuccessor) {
  TempLeaseDir dir("nonce");
  const std::string path = dir.LeasePath("k");

  auto original = FileLease::TryAcquire(path, 500.0, 10.0);
  ASSERT_TRUE(original.ok());
  ASSERT_NE(original->lease, nullptr);

  // The original stalls past the TTL and a successor takes over.
  AgeMtime(path, 10'000.0);
  auto successor = FileLease::TryAcquire(path, 500.0, 10.0);
  ASSERT_TRUE(successor.ok());
  ASSERT_NE(successor->lease, nullptr);
  EXPECT_TRUE(successor->takeover);

  // The zombie's release must be a no-op: the file now carries the
  // successor's nonce.
  original->lease->Release();
  const LeaseHolder holder = ReadLeaseHolder(path);
  EXPECT_TRUE(holder.parsed);
  EXPECT_EQ(holder.nonce, successor->lease->nonce());

  successor->lease->Release();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FileLease, TwoThreadsRacingAnExpiredLeaseElectExactlyOneWinner) {
  // Satellite drill: deterministic outcome under nondeterministic schedules.
  // Repeat the race; every round exactly one thread must win the takeover
  // and the loser must observe the winner as a LIVE holder (its cue to poll
  // the store instead of simulating).
  for (int round = 0; round < 25; ++round) {
    TempLeaseDir dir("race" + std::to_string(round));
    const std::string path = dir.LeasePath("k");
    WriteLeaseFile(path, DeadPid(), 0x2222);

    std::vector<FileLease::AcquireOutcome> outcomes(2);
    std::vector<std::thread> racers;
    for (int t = 0; t < 2; ++t) {
      racers.emplace_back([&, t] {
        auto outcome = FileLease::TryAcquire(path, 1000.0, 10.0);
        SFA_CHECK_OK(outcome.status());
        outcomes[t] = std::move(outcome).value();
      });
    }
    for (std::thread& t : racers) t.join();

    const int winners = (outcomes[0].lease != nullptr ? 1 : 0) +
                        (outcomes[1].lease != nullptr ? 1 : 0);
    ASSERT_EQ(winners, 1) << "round " << round;
    const auto& loser = outcomes[outcomes[0].lease != nullptr ? 1 : 0];
    const auto& winner = outcomes[outcomes[0].lease != nullptr ? 0 : 1];
    // The loser saw either the winner's fresh lease (parsed, live pid) or
    // caught it mid-write (unparsed); it never saw the dead holder as live.
    if (loser.holder.parsed) {
      EXPECT_EQ(loser.holder.pid, CurrentPid()) << "round " << round;
    }
    winner.lease->Release();
    EXPECT_FALSE(std::filesystem::exists(path));
  }
}

TEST(ReclaimStaleLeases, SweepsDeadAndExpiredButKeepsLiveHolders) {
  TempLeaseDir dir("sweep");

  // Live: held by this process, fresh heartbeat.
  auto live = FileLease::TryAcquire(dir.LeasePath("live"), 60'000.0, 10.0);
  ASSERT_TRUE(live.ok());
  ASSERT_NE(live->lease, nullptr);
  // Stale by dead pid.
  WriteLeaseFile(dir.LeasePath("dead"), DeadPid(), 0x3333);
  // Stale by TTL despite a live pid.
  WriteLeaseFile(dir.LeasePath("silent"), CurrentPid(), 0x4444);
  AgeMtime(dir.LeasePath("silent"), 60'000.0);
  // Abandoned takeover tombstone from an older build's rename-based reap
  // (the sweep still clears them so a fabric can mix binary versions).
  const std::string tomb = dir.LeasePath("dead") + ".reap." +
                           std::to_string(DeadPid()) + ".1";
  WriteLeaseFile(tomb, CurrentPid(), 0x5555);

  EXPECT_EQ(ReclaimStaleLeases(dir.path.string(), /*ttl_ms=*/5'000.0), 3u);
  EXPECT_TRUE(std::filesystem::exists(dir.LeasePath("live")));
  EXPECT_FALSE(std::filesystem::exists(dir.LeasePath("dead")));
  EXPECT_FALSE(std::filesystem::exists(dir.LeasePath("silent")));
  EXPECT_FALSE(std::filesystem::exists(tomb));

  // Missing directory sweeps zero, not an error.
  EXPECT_EQ(ReclaimStaleLeases((dir.path / "absent").string(), 5'000.0), 0u);
}

}  // namespace
}  // namespace sfa
