// Multiclass audits through the unified serving stack: the legacy
// AuditMulticlassGrid entry point is now a thin adapter over the
// Auditor/AuditPipeline path with StatisticKind::kMultinomial, so this suite
// pins the equivalence (adapter == pipeline == direct AuditView on a grid
// family) and exercises what the adapter could never do before the
// statistic layer: calibration cache sharing with Bernoulli requests in the
// same batch, persistent-store round-trips, and streaming Submit() — all
// byte-identical per the pipeline determinism contract.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/audit_pipeline.h"
#include "core/calibration_store.h"
#include "core/grid_family.h"
#include "core/multiclass.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::ExpectIdenticalResult;

struct MulticlassCity {
  std::vector<geo::Point> locations;
  std::vector<uint8_t> classes;
  data::OutcomeDataset view{"multiclass-city"};
};

MulticlassCity MakeCity(uint64_t seed, size_t n, bool planted) {
  Rng rng(seed);
  MulticlassCity city;
  const geo::Rect zone(6.0, 6.0, 9.0, 9.0);
  const std::vector<double> base = {0.5, 0.3, 0.2};
  const std::vector<double> shifted = {0.15, 0.25, 0.6};
  for (size_t i = 0; i < n; ++i) {
    const geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const auto& mix = planted && zone.Contains(loc) ? shifted : base;
    const auto c = static_cast<uint8_t>(rng.Categorical(mix));
    city.locations.push_back(loc);
    city.classes.push_back(c);
    city.view.Add(loc, c);
  }
  return city;
}

AuditOptions MultinomialOptions(uint32_t num_classes, double alpha = 0.01,
                                uint32_t worlds = 99) {
  AuditOptions options;
  options.alpha = alpha;
  options.statistic = StatisticKind::kMultinomial;
  options.num_classes = num_classes;
  options.monte_carlo.num_worlds = worlds;
  return options;
}

TEST(MulticlassPipeline, AdapterMatchesUnifiedPathOnGridFamily) {
  const MulticlassCity city = MakeCity(41, 3000, /*planted=*/true);

  MulticlassAuditOptions adapter_options;
  adapter_options.alpha = 0.01;
  adapter_options.grid_x = 8;
  adapter_options.grid_y = 8;
  adapter_options.monte_carlo.num_worlds = 99;
  auto adapter = AuditMulticlassGrid(city.locations, city.classes, 3,
                                     adapter_options);
  ASSERT_TRUE(adapter.ok()) << adapter.status();

  // The same audit spelled as an ordinary pipeline request over an explicit
  // grid family (the adapter builds exactly this family internally).
  auto family = GridPartitionFamily::Create(city.locations, 8, 8);
  ASSERT_TRUE(family.ok());
  AuditRequest request;
  request.id = "multiclass";
  request.dataset = &city.view;
  request.family = family->get();
  request.options = MultinomialOptions(3);
  AuditPipeline pipeline;
  auto responses = pipeline.Run({request});
  ASSERT_TRUE(responses.ok());
  ASSERT_TRUE((*responses)[0].status.ok()) << (*responses)[0].status;
  const AuditResult& unified = (*responses)[0].result;

  EXPECT_EQ(adapter->spatially_fair, unified.spatially_fair);
  EXPECT_EQ(adapter->p_value, unified.p_value);
  EXPECT_EQ(adapter->tau, unified.tau);
  EXPECT_EQ(adapter->critical_value, unified.critical_value);
  EXPECT_EQ(adapter->total_n, unified.total_n);
  EXPECT_EQ(adapter->class_distribution, unified.class_distribution);
  ASSERT_EQ(adapter->findings.size(), unified.findings.size());
  for (size_t i = 0; i < adapter->findings.size(); ++i) {
    EXPECT_EQ(adapter->findings[i].cell, unified.findings[i].region_index);
    EXPECT_EQ(adapter->findings[i].llr, unified.findings[i].llr);
    EXPECT_EQ(adapter->findings[i].n, unified.findings[i].n);
    EXPECT_EQ(adapter->findings[i].class_counts,
              unified.findings[i].class_counts);
  }
  // The planted corner is recovered with the shifted mix on top.
  EXPECT_FALSE(adapter->spatially_fair);
  ASSERT_FALSE(adapter->findings.empty());
  EXPECT_GT(adapter->findings[0].class_counts[2],
            adapter->findings[0].class_counts[0]);

  // ToMulticlassResult is the adapter's own conversion.
  const MulticlassAuditResult converted = ToMulticlassResult(unified);
  EXPECT_EQ(converted.p_value, adapter->p_value);
  EXPECT_EQ(converted.findings.size(), adapter->findings.size());
}

TEST(MulticlassPipeline, MixedStatisticBatchSharesNothingAcrossStatistics) {
  // One batch holding a Bernoulli and a multinomial audit of the SAME
  // points/family/Monte Carlo options: two distinct calibrations must be
  // simulated (fingerprinted keys keep them apart — the satellite contract).
  const MulticlassCity city = MakeCity(42, 1500, /*planted=*/false);
  data::OutcomeDataset binary_view("binary-projection");
  for (size_t i = 0; i < city.locations.size(); ++i) {
    binary_view.Add(city.locations[i], city.classes[i] == 2 ? 1 : 0);
  }
  auto family = GridPartitionFamily::Create(city.locations, 6, 6);
  ASSERT_TRUE(family.ok());

  AuditRequest multinomial;
  multinomial.id = "multinomial";
  multinomial.dataset = &city.view;
  multinomial.family = family->get();
  multinomial.options = MultinomialOptions(3);

  AuditRequest bernoulli;
  bernoulli.id = "bernoulli";
  bernoulli.dataset = &binary_view;
  bernoulli.family = family->get();
  bernoulli.options.alpha = 0.01;
  bernoulli.options.monte_carlo.num_worlds = 99;

  AuditPipeline pipeline;
  PipelineManifest manifest;
  auto responses = pipeline.Run({multinomial, bernoulli}, &manifest);
  ASSERT_TRUE(responses.ok());
  for (const AuditResponse& response : *responses) {
    ASSERT_TRUE(response.status.ok()) << response.id;
  }
  EXPECT_EQ(manifest.calibrations_computed, 2u);
  EXPECT_EQ(pipeline.cache().stats().entries, 2u);
  EXPECT_NE((*responses)[0].calibration_key, (*responses)[1].calibration_key);
  EXPECT_EQ((*responses)[0].result.statistic, StatisticKind::kMultinomial);
  EXPECT_EQ((*responses)[1].result.statistic, StatisticKind::kBernoulli);
}

TEST(MulticlassPipeline, StreamedEqualsBatchAndSurvivesStoreRestart) {
  const MulticlassCity city = MakeCity(43, 2000, /*planted=*/true);
  auto family = GridPartitionFamily::Create(city.locations, 7, 7);
  ASSERT_TRUE(family.ok());

  AuditRequest request;
  request.id = "mc";
  request.dataset = &city.view;
  request.family = family->get();
  request.options = MultinomialOptions(3);

  // Batch reference result.
  AuditPipeline batch_pipeline;
  auto batch = batch_pipeline.Run({request});
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE((*batch)[0].status.ok());

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("sfa_multiclass_store_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  {
    // Streamed, persisting to a fresh store.
    CalibrationStore::Options store_options;
    store_options.directory = dir;
    auto store = CalibrationStore::Open(store_options);
    ASSERT_TRUE(store.ok());
    AuditPipeline pipeline;
    pipeline.cache().AttachStore(std::move(*store));
    ASSERT_TRUE(pipeline.StartStream({}).ok());
    auto ticket = pipeline.Submit(request);
    ASSERT_TRUE(ticket.ok());
    const AuditResponse& response = (*ticket)->Get();
    ASSERT_TRUE(response.status.ok());
    ExpectIdenticalResult(response.result, (*batch)[0].result,
                          "streamed == batch");
    ASSERT_TRUE(pipeline.FinishStream().ok());
  }
  {
    // "Restart": a fresh pipeline over the same store directory serves the
    // multinomial calibration persisted-warm, byte-identically.
    CalibrationStore::Options store_options;
    store_options.directory = dir;
    auto store = CalibrationStore::Open(store_options);
    ASSERT_TRUE(store.ok());
    AuditPipeline pipeline;
    pipeline.cache().AttachStore(std::move(*store));
    PipelineManifest manifest;
    auto warm = pipeline.Run({request}, &manifest);
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE((*warm)[0].status.ok());
    ExpectIdenticalResult((*warm)[0].result, (*batch)[0].result,
                          "persisted-warm == batch");
    EXPECT_EQ(manifest.calibrations_loaded, 1u);
    EXPECT_EQ(manifest.calibrations_computed, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(MulticlassPipeline, LegacyAdapterValidationSurvives) {
  const std::vector<geo::Point> pts = {{0, 0}, {1, 1}};
  MulticlassAuditOptions options;
  options.monte_carlo.num_worlds = 9;
  EXPECT_FALSE(AuditMulticlassGrid({}, {}, 3, options).ok());
  EXPECT_FALSE(AuditMulticlassGrid(pts, {0}, 3, options).ok());
  EXPECT_FALSE(AuditMulticlassGrid(pts, {0, 1}, 1, options).ok());
  EXPECT_FALSE(AuditMulticlassGrid(pts, {0, 5}, 3, options).ok());
  options.alpha = 1.5;
  EXPECT_FALSE(AuditMulticlassGrid(pts, {0, 1}, 2, options).ok());
  options.alpha = 0.05;
  options.monte_carlo.num_worlds = 0;
  EXPECT_FALSE(AuditMulticlassGrid(pts, {0, 1}, 2, options).ok());
}

}  // namespace
}  // namespace sfa::core
