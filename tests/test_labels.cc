// Tests for the dual-representation Labels used by the Monte Carlo loop.
#include "core/labels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace sfa::core {
namespace {

TEST(Labels, FromBytesKeepsBothViewsConsistent) {
  const Labels labels = Labels::FromBytes({1, 0, 1, 1, 0, 0, 1});
  EXPECT_EQ(labels.size(), 7u);
  EXPECT_EQ(labels.positive_count(), 4u);
  EXPECT_NEAR(labels.positive_rate(), 4.0 / 7, 1e-12);
  for (size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(labels.bits().Get(i), labels.bytes()[i] != 0) << i;
  }
  EXPECT_EQ(labels.bits().Popcount(), 4u);
}

TEST(Labels, EmptyLabels) {
  const Labels labels = Labels::FromBytes({});
  EXPECT_EQ(labels.size(), 0u);
  EXPECT_EQ(labels.positive_count(), 0u);
  EXPECT_DOUBLE_EQ(labels.positive_rate(), 0.0);
}

TEST(Labels, BernoulliSamplingApproximatesRho) {
  sfa::Rng rng(31);
  const Labels labels = Labels::SampleBernoulli(50000, 0.62, &rng);
  EXPECT_EQ(labels.size(), 50000u);
  EXPECT_NEAR(labels.positive_rate(), 0.62, 0.01);
  EXPECT_EQ(labels.bits().Popcount(), labels.positive_count());
}

TEST(Labels, BernoulliExtremes) {
  sfa::Rng rng(32);
  EXPECT_EQ(Labels::SampleBernoulli(100, 0.0, &rng).positive_count(), 0u);
  EXPECT_EQ(Labels::SampleBernoulli(100, 1.0, &rng).positive_count(), 100u);
}

TEST(Labels, PermutationSamplingHasExactCount) {
  sfa::Rng rng(33);
  for (uint64_t positives : {0ull, 1ull, 250ull, 499ull, 500ull}) {
    const Labels labels = Labels::SamplePermutation(500, positives, &rng);
    ASSERT_EQ(labels.positive_count(), positives);
    ASSERT_EQ(labels.bits().Popcount(), positives);
  }
}

TEST(Labels, PermutationPositionsVaryAcrossDraws) {
  sfa::Rng rng(34);
  const Labels a = Labels::SamplePermutation(200, 100, &rng);
  const Labels b = Labels::SamplePermutation(200, 100, &rng);
  EXPECT_NE(a.bytes(), b.bytes());  // same count, different placement w.h.p.
}

TEST(Labels, PermutationIsUniformish) {
  // Each position should receive the positive label about half the time.
  sfa::Rng rng(35);
  const size_t n = 50;
  std::vector<int> hits(n, 0);
  const int reps = 2000;
  for (int rep = 0; rep < reps; ++rep) {
    const Labels labels = Labels::SamplePermutation(n, n / 2, &rng);
    for (size_t i = 0; i < n; ++i) hits[i] += labels.bytes()[i];
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(hits[i] / static_cast<double>(reps), 0.5, 0.06) << i;
  }
}

TEST(LabelsDeathTest, PermutationRejectsTooManyPositives) {
  sfa::Rng rng(36);
  EXPECT_DEATH(Labels::SamplePermutation(10, 11, &rng), "more positives");
}

TEST(Labels, ResampleBernoulliMatchesFactoryStream) {
  sfa::Rng a(40), b(40);
  Labels pooled;
  for (int round = 0; round < 3; ++round) {
    pooled.ResampleBernoulli(300, 0.35, &a);
    const Labels fresh = Labels::SampleBernoulli(300, 0.35, &b);
    ASSERT_EQ(pooled.bytes(), fresh.bytes()) << round;
    ASSERT_EQ(pooled.positive_count(), fresh.positive_count());
    ASSERT_EQ(pooled.bits(), fresh.bits());
  }
}

TEST(Labels, ResamplePermutationMatchesFactoryStream) {
  sfa::Rng a(41), b(41);
  Labels pooled;
  std::vector<uint32_t> order_scratch;
  for (int round = 0; round < 3; ++round) {
    pooled.ResamplePermutation(200, 80, &a, &order_scratch);
    const Labels fresh = Labels::SamplePermutation(200, 80, &b);
    ASSERT_EQ(pooled.bytes(), fresh.bytes()) << round;
    ASSERT_EQ(pooled.positive_count(), 80u);
    ASSERT_EQ(pooled.bits(), fresh.bits());
  }
}

TEST(Labels, ResampleAcrossSizesDropsStaleState) {
  sfa::Rng rng(42);
  Labels pooled;
  pooled.ResampleBernoulli(500, 0.9, &rng);
  EXPECT_EQ(pooled.bits().size(), 500u);
  pooled.ResampleBernoulli(64, 0.1, &rng);
  EXPECT_EQ(pooled.size(), 64u);
  EXPECT_EQ(pooled.bits().size(), 64u);
  EXPECT_EQ(pooled.bits().Popcount(), pooled.positive_count());
}

TEST(Labels, PositiveIndicesMatchBytes) {
  const Labels labels = Labels::FromBytes({1, 0, 1, 1, 0, 0, 1});
  EXPECT_EQ(labels.positive_indices(), (std::vector<uint32_t>{0, 2, 3, 6}));
  EXPECT_TRUE(Labels::FromBytes({}).positive_indices().empty());
  EXPECT_TRUE(Labels::FromBytes({0, 0, 0}).positive_indices().empty());
}

TEST(Labels, PositiveIndicesRefreshAfterEachResample) {
  sfa::Rng rng(44);
  Labels pooled;
  for (int round = 0; round < 4; ++round) {
    pooled.ResampleBernoulli(211, 0.3, &rng);
    const std::vector<uint32_t>& positives = pooled.positive_indices();
    ASSERT_EQ(positives.size(), pooled.positive_count()) << round;
    // Ascending, and exactly the set bytes.
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < pooled.size(); ++i) {
      if (pooled.bytes()[i]) expected.push_back(i);
    }
    ASSERT_EQ(positives, expected) << round;
  }
  std::vector<uint32_t> scratch;
  for (int round = 0; round < 3; ++round) {
    pooled.ResamplePermutation(150, 60, &rng, &scratch);
    const std::vector<uint32_t>& positives = pooled.positive_indices();
    ASSERT_EQ(positives.size(), 60u) << round;
    for (uint32_t id : positives) ASSERT_EQ(pooled.bytes()[id], 1) << round;
    ASSERT_TRUE(std::is_sorted(positives.begin(), positives.end())) << round;
  }
}

TEST(Labels, BitsAreLazyAndConsistentAfterEachResample) {
  sfa::Rng rng(43);
  Labels pooled;
  for (int round = 0; round < 4; ++round) {
    pooled.ResampleBernoulli(137, 0.5, &rng);
    const spatial::BitVector& bits = pooled.bits();  // built on demand
    ASSERT_EQ(bits.size(), 137u);
    for (size_t i = 0; i < pooled.size(); ++i) {
      ASSERT_EQ(bits.Get(i), pooled.bytes()[i] != 0) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace sfa::core
