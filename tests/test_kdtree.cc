// Tests for the KD-tree: range counting/reporting and nearest neighbor,
// verified against brute force on randomized point sets.
#include "spatial/kdtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/random.h"

namespace sfa::spatial {
namespace {

std::vector<geo::Point> RandomPoints(size_t n, uint64_t seed,
                                     double lo = -10.0, double hi = 10.0) {
  sfa::Rng rng(seed);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) {
    p.x = rng.Uniform(lo, hi);
    p.y = rng.Uniform(lo, hi);
  }
  return pts;
}

size_t NaiveCount(const std::vector<geo::Point>& pts, const geo::Rect& r) {
  return static_cast<size_t>(std::count_if(
      pts.begin(), pts.end(), [&r](const geo::Point& p) { return r.Contains(p); }));
}

TEST(KdTree, EmptyTree) {
  KdTree tree{std::vector<geo::Point>{}};
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.CountInRect(geo::Rect(-1, -1, 1, 1)), 0u);
  EXPECT_TRUE(tree.ReportRect(geo::Rect(-1, -1, 1, 1)).empty());
}

TEST(KdTree, SinglePoint) {
  KdTree tree{{geo::Point(1.0, 2.0)}};
  EXPECT_EQ(tree.CountInRect(geo::Rect(0, 0, 2, 3)), 1u);
  EXPECT_EQ(tree.CountInRect(geo::Rect(2, 2, 3, 3)), 0u);
  EXPECT_EQ(tree.Nearest({5, 5}), 0u);
}

TEST(KdTree, CountMatchesHalfOpenSemantics) {
  KdTree tree{{{0, 0}, {1, 0}, {0, 1}, {1, 1}}};
  // Half-open: the max edges are excluded.
  EXPECT_EQ(tree.CountInRect(geo::Rect(0, 0, 1, 1)), 1u);
  EXPECT_EQ(tree.CountInRect(geo::Rect(0, 0, 1.001, 1.001)), 4u);
}

TEST(KdTree, DuplicatePoints) {
  std::vector<geo::Point> pts(50, geo::Point(3.0, 3.0));
  KdTree tree{pts};
  EXPECT_EQ(tree.CountInRect(geo::Rect(2, 2, 4, 4)), 50u);
  EXPECT_EQ(tree.CountInRect(geo::Rect(3.001, 3.001, 4, 4)), 0u);
  EXPECT_EQ(tree.ReportRect(geo::Rect(2, 2, 4, 4)).size(), 50u);
}

TEST(KdTree, ReportReturnsExactIds) {
  const std::vector<geo::Point> pts = {{0, 0}, {5, 5}, {2, 2}, {8, 8}};
  KdTree tree{pts};
  auto ids = tree.ReportRect(geo::Rect(1, 1, 6, 6));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint32_t>{1, 2}));
}

TEST(KdTree, VisitRectVisitsEachOnce) {
  const auto pts = RandomPoints(500, 11);
  KdTree tree{pts};
  const geo::Rect query(-3, -3, 4, 4);
  std::vector<int> visits(pts.size(), 0);
  tree.VisitRect(query, [&](uint32_t id) { ++visits[id]; });
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_EQ(visits[i], query.Contains(pts[i]) ? 1 : 0) << i;
  }
}

TEST(KdTree, NearestMatchesBruteForce) {
  const auto pts = RandomPoints(300, 21);
  KdTree tree{pts};
  sfa::Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    const geo::Point q(rng.Uniform(-12, 12), rng.Uniform(-12, 12));
    const uint32_t got = tree.Nearest(q);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : pts) best = std::min(best, q.DistanceSquaredTo(p));
    EXPECT_DOUBLE_EQ(q.DistanceSquaredTo(pts[got]), best);
  }
}

TEST(KdTree, WholeSpaceQueryCountsEverything) {
  const auto pts = RandomPoints(1000, 31);
  KdTree tree{pts};
  EXPECT_EQ(tree.CountInRect(geo::Rect(-100, -100, 100, 100)), 1000u);
}

TEST(KdTree, DegenerateColinearPoints) {
  std::vector<geo::Point> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({static_cast<double>(i), 0.0});
  KdTree tree{pts};
  EXPECT_EQ(tree.CountInRect(geo::Rect(10, -1, 20, 1)), 10u);  // x in [10,20)
  EXPECT_EQ(tree.Nearest({14.4, 0.0}), 14u);
}

// Property sweep: counts and reports match brute force over random queries
// and point-set sizes.
class KdTreeRandomSweep
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(KdTreeRandomSweep, CountAndReportMatchBruteForce) {
  const auto [n, seed] = GetParam();
  const auto pts = RandomPoints(n, seed);
  KdTree tree{pts};
  sfa::Rng rng(seed + 1000);
  for (int trial = 0; trial < 50; ++trial) {
    const double x0 = rng.Uniform(-12, 12);
    const double y0 = rng.Uniform(-12, 12);
    const geo::Rect query(x0, y0, x0 + rng.Uniform(0, 15), y0 + rng.Uniform(0, 15));
    const size_t expected = NaiveCount(pts, query);
    ASSERT_EQ(tree.CountInRect(query), expected);
    auto ids = tree.ReportRect(query);
    ASSERT_EQ(ids.size(), expected);
    for (uint32_t id : ids) ASSERT_TRUE(query.Contains(pts[id]));
    std::sort(ids.begin(), ids.end());
    ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeRandomSweep,
    ::testing::Combine(::testing::Values<size_t>(2, 10, 100, 1000, 5000),
                       ::testing::Values<uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace sfa::spatial
