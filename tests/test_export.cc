// Tests for GeoJSON / CSV export of audit artifacts.
#include "core/export.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>

namespace sfa::core {
namespace {

RegionFinding MakeFinding(double llr, const geo::Rect& rect,
                          const std::string& label = "r") {
  RegionFinding f;
  f.llr = llr;
  f.rect = rect;
  f.label = label;
  f.n = 100;
  f.p = 40;
  f.local_rate = 0.4;
  return f;
}

TEST(FindingsToGeoJson, EmptyCollection) {
  EXPECT_EQ(FindingsToGeoJson({}),
            "{\"type\":\"FeatureCollection\",\"features\":[]}");
}

TEST(FindingsToGeoJson, StructureAndProperties) {
  const std::string json = FindingsToGeoJson(
      {MakeFinding(12.5, geo::Rect(-80.5, 25.0, -80.0, 25.5), "miami")});
  EXPECT_NE(json.find("\"type\":\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"Polygon\""), std::string::npos);
  EXPECT_NE(json.find("\"rank\":1"), std::string::npos);
  EXPECT_NE(json.find("\"n\":100"), std::string::npos);
  EXPECT_NE(json.find("\"local_rate\":0.400000"), std::string::npos);
  EXPECT_NE(json.find("\"llr\":12.500000"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"miami\""), std::string::npos);
  // The ring is closed: first coordinate appears twice.
  EXPECT_NE(json.find("[-80.500000,25.000000],[-80.000000,25.000000]"),
            std::string::npos);
}

TEST(FindingsToGeoJson, EscapesLabels) {
  const std::string json = FindingsToGeoJson(
      {MakeFinding(1.0, geo::Rect(0, 0, 1, 1), "say \"hi\"\nback\\slash")});
  EXPECT_NE(json.find("say \\\"hi\\\"\\nback\\\\slash"), std::string::npos);
}

TEST(FindingsToGeoJson, MultipleFeaturesCommaSeparated) {
  const std::string json =
      FindingsToGeoJson({MakeFinding(2.0, geo::Rect(0, 0, 1, 1)),
                         MakeFinding(1.0, geo::Rect(2, 2, 3, 3))});
  EXPECT_NE(json.find("\"rank\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rank\":2"), std::string::npos);
  EXPECT_NE(json.find("},{"), std::string::npos);
}

TEST(DatasetToGeoJson, PointsWithOutcomes) {
  data::OutcomeDataset ds("x");
  ds.Add({1.0, 2.0}, 1);
  ds.Add({3.0, 4.0}, 0);
  const std::string json = DatasetToGeoJson(ds);
  EXPECT_NE(json.find("\"type\":\"Point\""), std::string::npos);
  EXPECT_NE(json.find("[1.000000,2.000000]"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":1"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":0"), std::string::npos);
}

TEST(DatasetToGeoJson, StridesDownLargeDatasets) {
  data::OutcomeDataset ds("big");
  for (int i = 0; i < 1000; ++i) {
    ds.Add({static_cast<double>(i), 0.0}, 0);
  }
  const std::string json = DatasetToGeoJson(ds, /*max_points=*/100);
  // Count features by counting "Point".
  size_t count = 0;
  for (size_t pos = json.find("Point"); pos != std::string::npos;
       pos = json.find("Point", pos + 1)) {
    ++count;
  }
  EXPECT_LE(count, 100u);
  EXPECT_GE(count, 90u);
}

class ExportFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("sfa_export_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST_F(ExportFileTest, WriteFindingsGeoJsonRoundTrip) {
  ASSERT_TRUE(
      WriteFindingsGeoJson({MakeFinding(3.0, geo::Rect(0, 0, 1, 1))}, path())
          .ok());
  std::ifstream in(path());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, FindingsToGeoJson({MakeFinding(3.0, geo::Rect(0, 0, 1, 1))}));
}

TEST_F(ExportFileTest, WriteFindingsCsvHasHeaderAndRows) {
  ASSERT_TRUE(WriteFindingsCsv({MakeFinding(3.0, geo::Rect(0, 0, 1, 1), "a"),
                                MakeFinding(2.0, geo::Rect(2, 2, 3, 3), "b")},
                               path())
                  .ok());
  std::ifstream in(path());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "rank,min_lon,min_lat,max_lon,max_lat,n,p,local_rate,llr,label");
  std::getline(in, line);
  EXPECT_NE(line.find("1,0.000000,0.000000,1.000000,1.000000,100,40"),
            std::string::npos);
  EXPECT_NE(line.find("\"a\""), std::string::npos);
  std::getline(in, line);
  EXPECT_NE(line.find("\"b\""), std::string::npos);
}

TEST(ExportErrors, UnwritablePathIsIOError) {
  EXPECT_TRUE(WriteFindingsGeoJson({}, "/nonexistent/dir/out.geojson").IsIOError());
  EXPECT_TRUE(WriteFindingsCsv({}, "/nonexistent/dir/out.csv").IsIOError());
}

// The shared escaper guards every JSON artifact (GeoJSON labels, pipeline
// manifests, the audit server simulation's run summary): user-controlled
// strings — dataset/family names, request ids — flow into all of them.
TEST(JsonEscape, PassesPlainStringsThrough) {
  EXPECT_EQ(JsonEscape(""), "");
  EXPECT_EQ(JsonEscape("riverton grid 10x10"), "riverton grid 10x10");
  EXPECT_EQ(JsonEscape("utf-8 déjà vu"), "utf-8 déjà vu");  // bytes >= 0x20
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("\"\\\""), "\\\"\\\\\\\"");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("car\rriage"), "car\\rriage");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(JsonEscape("\x01\x1f"), "\\u0001\\u001f");
}

TEST(JsonEscape, RoundTripsThroughAManifestShapedDocument) {
  // A family name with every hazardous character class embedded in a JSON
  // document must keep the document balanced.
  const std::string hostile = "grid \"10x10\"\n\\path\tend";
  const std::string json = "{\"family\":\"" + JsonEscape(hostile) + "\"}";
  EXPECT_EQ(std::count(json.begin(), json.end(), '\n'), 0);
  size_t unescaped_quotes = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '"' && (i == 0 || json[i - 1] != '\\')) ++unescaped_quotes;
  }
  EXPECT_EQ(unescaped_quotes, 4u);  // {"family":"..."} exactly
}

}  // namespace
}  // namespace sfa::core
