// Tests for polygon point-in-polygon, areas, and the distance helpers.
#include "geo/polygon.h"

#include <gtest/gtest.h>

#include "data/us_geography.h"
#include "geo/distance.h"

namespace sfa::geo {
namespace {

Polygon MakeSquare() {
  auto p = Polygon::Create({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(Polygon, RejectsTooFewVertices) {
  EXPECT_FALSE(Polygon::Create({}).ok());
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 1}}).ok());
}

TEST(Polygon, SquareContainment) {
  const Polygon square = MakeSquare();
  EXPECT_TRUE(square.Contains({2, 2}));
  EXPECT_TRUE(square.Contains({0.01, 3.99}));
  EXPECT_FALSE(square.Contains({-1, 2}));
  EXPECT_FALSE(square.Contains({5, 2}));
  EXPECT_FALSE(square.Contains({2, -0.5}));
}

TEST(Polygon, SquareArea) {
  const Polygon square = MakeSquare();
  EXPECT_DOUBLE_EQ(square.Area(), 16.0);
  // Counter-clockwise ring → positive signed area.
  EXPECT_DOUBLE_EQ(square.SignedArea(), 16.0);
}

TEST(Polygon, ClockwiseRingHasNegativeSignedArea) {
  auto p = Polygon::Create({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->SignedArea(), -16.0);
  EXPECT_DOUBLE_EQ(p->Area(), 16.0);
}

TEST(Polygon, ConcaveShape) {
  // L-shape: the notch must be outside.
  auto p = Polygon::Create({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Contains({1, 3}));
  EXPECT_TRUE(p->Contains({3, 1}));
  EXPECT_FALSE(p->Contains({3, 3}));  // inside bbox, outside polygon
  EXPECT_DOUBLE_EQ(p->Area(), 12.0);
}

TEST(Polygon, BoundingBoxCoversVertices) {
  auto p = Polygon::Create({{-1, 2}, {3, -4}, {5, 6}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->bounding_box(), Rect(-1, -4, 5, 6));
}

TEST(FloridaOutline, ContainsMajorFloridaCities) {
  const Polygon& florida = sfa::data::FloridaOutline();
  EXPECT_TRUE(florida.Contains({-80.19, 25.76}));  // Miami
  EXPECT_TRUE(florida.Contains({-82.46, 27.95}));  // Tampa
  EXPECT_TRUE(florida.Contains({-81.38, 28.54}));  // Orlando
  EXPECT_TRUE(florida.Contains({-81.66, 30.33}));  // Jacksonville
  EXPECT_TRUE(florida.Contains({-84.28, 30.44}));  // Tallahassee
}

TEST(FloridaOutline, ExcludesNonFloridaCities) {
  const Polygon& florida = sfa::data::FloridaOutline();
  EXPECT_FALSE(florida.Contains({-84.39, 33.75}));   // Atlanta
  EXPECT_FALSE(florida.Contains({-90.07, 29.95}));   // New Orleans
  EXPECT_FALSE(florida.Contains({-74.01, 40.71}));   // New York
  EXPECT_FALSE(florida.Contains({-79.0, 26.5}));     // Atlantic ocean
  EXPECT_FALSE(florida.Contains({-85.0, 27.5}));     // Gulf of Mexico
}

TEST(Distance, HaversineKnownPairs) {
  // New York to Los Angeles is about 3936 km.
  const Point nyc(-74.0060, 40.7128);
  const Point la(-118.2437, 34.0522);
  EXPECT_NEAR(HaversineKm(nyc, la), 3936.0, 40.0);
  EXPECT_DOUBLE_EQ(HaversineKm(nyc, nyc), 0.0);
  EXPECT_NEAR(HaversineKm(nyc, la), HaversineKm(la, nyc), 1e-9);
}

TEST(Distance, OneDegreeLatitudeIs111Km) {
  const Point a(-100.0, 40.0);
  const Point b(-100.0, 41.0);
  EXPECT_NEAR(HaversineKm(a, b), 111.2, 0.5);
}

TEST(Distance, LongitudeDegreesShrinkWithLatitude) {
  EXPECT_NEAR(KmPerDegreeLonAt(0.0), 111.2, 0.5);
  EXPECT_LT(KmPerDegreeLonAt(60.0), KmPerDegreeLonAt(30.0));
  EXPECT_NEAR(KmPerDegreeLonAt(60.0), 111.195 * 0.5, 0.5);
}

TEST(Distance, PaperDegreeToKmCorrespondence) {
  // The paper equates 0.1..2 degrees with roughly 10..200 km.
  const Point a(-98.0, 38.0);
  const Point b(-98.0, 38.1);
  const double km = HaversineKm(a, b);
  EXPECT_GT(km, 10.0);
  EXPECT_LT(km, 12.0);
}

}  // namespace
}  // namespace sfa::geo
