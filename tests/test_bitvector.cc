// Tests for the popcount BitVector, including the cross-word boundaries the
// Monte Carlo counting path exercises.
#include "spatial/bitvector.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace sfa::spatial {
namespace {

TEST(BitVector, StartsAllZero) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.Popcount(), 0u);
  for (size_t i = 0; i < 130; ++i) ASSERT_FALSE(bv.Get(i));
}

TEST(BitVector, SetGetClear) {
  BitVector bv(100);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(99));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Popcount(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.Popcount(), 3u);
}

TEST(BitVector, AssignDispatches) {
  BitVector bv(10);
  bv.Assign(3, true);
  EXPECT_TRUE(bv.Get(3));
  bv.Assign(3, false);
  EXPECT_FALSE(bv.Get(3));
}

TEST(BitVector, ResetZeroesWithoutResizing) {
  BitVector bv(70);
  bv.Set(5);
  bv.Set(69);
  bv.Reset();
  EXPECT_EQ(bv.size(), 70u);
  EXPECT_EQ(bv.Popcount(), 0u);
}

TEST(BitVector, FromBools) {
  const BitVector bv = BitVector::FromBools({1, 0, 1, 1, 0});
  EXPECT_EQ(bv.size(), 5u);
  EXPECT_EQ(bv.Popcount(), 3u);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_TRUE(bv.Get(3));
}

TEST(BitVector, AndPopcountAcrossWordBoundary) {
  BitVector a(200), b(200);
  for (size_t i = 0; i < 200; i += 2) a.Set(i);     // evens
  for (size_t i = 0; i < 200; i += 3) b.Set(i);     // multiples of 3
  // Intersection = multiples of 6 in [0, 200): 34 values (0, 6, ..., 198).
  EXPECT_EQ(BitVector::AndPopcount(a, b), 34u);
}

TEST(BitVector, AndNotPopcount) {
  BitVector a(10), b(10);
  a.Set(1);
  a.Set(2);
  a.Set(3);
  b.Set(2);
  EXPECT_EQ(BitVector::AndNotPopcount(a, b), 2u);  // bits 1 and 3
  EXPECT_EQ(BitVector::AndNotPopcount(b, a), 0u);
}

TEST(BitVector, OrAndWith) {
  BitVector a(65), b(65);
  a.Set(0);
  b.Set(64);
  a.OrWith(b);
  EXPECT_TRUE(a.Get(0));
  EXPECT_TRUE(a.Get(64));
  BitVector mask(65);
  mask.Set(64);
  a.AndWith(mask);
  EXPECT_FALSE(a.Get(0));
  EXPECT_TRUE(a.Get(64));
}

TEST(BitVector, ToIndicesAscending) {
  BitVector bv(130);
  bv.Set(127);
  bv.Set(3);
  bv.Set(64);
  EXPECT_EQ(bv.ToIndices(), (std::vector<uint32_t>{3, 64, 127}));
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector a(10), b(10), c(11);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  b.Set(2);
  EXPECT_FALSE(a == b);
}

TEST(BitVector, EmptyVector) {
  BitVector bv(0);
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_EQ(bv.Popcount(), 0u);
  EXPECT_TRUE(bv.ToIndices().empty());
}

// Property sweep: AndPopcount agrees with a naive bit-by-bit count on random
// vectors of assorted sizes (word-aligned and not).
class BitVectorRandomSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorRandomSweep, AndPopcountMatchesNaive) {
  const size_t n = GetParam();
  sfa::Rng rng(n * 13 + 1);
  BitVector a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.4)) a.Set(i);
    if (rng.Bernoulli(0.6)) b.Set(i);
  }
  size_t expected_and = 0, expected_andnot = 0, expected_pop = 0;
  for (size_t i = 0; i < n; ++i) {
    expected_and += a.Get(i) && b.Get(i);
    expected_andnot += a.Get(i) && !b.Get(i);
    expected_pop += a.Get(i);
  }
  EXPECT_EQ(BitVector::AndPopcount(a, b), expected_and);
  EXPECT_EQ(BitVector::AndNotPopcount(a, b), expected_andnot);
  EXPECT_EQ(a.Popcount(), expected_pop);
  EXPECT_EQ(a.ToIndices().size(), expected_pop);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorRandomSweep,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128, 129, 1000,
                                           4096, 10001));

class AssignFromBytesSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(AssignFromBytesSweep, MatchesFromBools) {
  const size_t n = GetParam();
  sfa::Rng rng(n * 13 + 1);
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = rng.Bernoulli(0.4) ? 1 : 0;
  BitVector packed;
  packed.AssignFromBytes(bytes.data(), n);
  EXPECT_EQ(packed, BitVector::FromBools(bytes));
  EXPECT_EQ(packed.size(), n);

  // Refill in place (storage reuse path): old bits must not survive.
  for (auto& b : bytes) b = rng.Bernoulli(0.7) ? 1 : 0;
  packed.AssignFromBytes(bytes.data(), n);
  EXPECT_EQ(packed, BitVector::FromBools(bytes));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AssignFromBytesSweep,
                         ::testing::Values(0, 1, 8, 63, 64, 65, 100, 128, 500,
                                           4096, 10001));

TEST(BitVector, AndPopcountManyMatchesPairwise) {
  sfa::Rng rng(29);
  const size_t n = 777;
  BitVector membership(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) membership.Set(i);
  }
  // 7 worlds exercises the 4-wide register block plus the scalar tail.
  std::vector<BitVector> worlds;
  std::vector<const BitVector*> ptrs;
  for (int b = 0; b < 7; ++b) {
    BitVector w(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) w.Set(i);
    }
    worlds.push_back(std::move(w));
  }
  for (const auto& w : worlds) ptrs.push_back(&w);
  std::vector<uint64_t> batched(worlds.size());
  BitVector::AndPopcountMany(membership, ptrs.data(), worlds.size(),
                             batched.data());
  for (size_t b = 0; b < worlds.size(); ++b) {
    EXPECT_EQ(batched[b], BitVector::AndPopcount(membership, worlds[b])) << b;
  }
}

// Regression for the batch-validation bug: the old 4-wide block checked only
// batch[b] per block, so a mis-sized vector in positions 1..3 of a block read
// out of bounds undetected. Validation is now upfront, over EVERY entry, and
// always-on (release builds included) — a mis-sized entry anywhere must abort
// before the kernel touches a word.
TEST(BitVectorDeathTest, AndPopcountManyValidatesEveryBatchEntry) {
  const BitVector a(256);
  const BitVector ok(256);
  const BitVector mis_sized(64);
  std::vector<uint64_t> out(4);
  for (size_t bad_pos = 0; bad_pos < 4; ++bad_pos) {
    std::vector<const BitVector*> batch(4, &ok);
    batch[bad_pos] = &mis_sized;
    EXPECT_DEATH(
        BitVector::AndPopcountMany(a, batch.data(), batch.size(), out.data()),
        "size mismatch")
        << "bad position " << bad_pos;
  }
  // The remainder path (count < 4) must validate too.
  std::vector<const BitVector*> tail = {&ok, &mis_sized};
  EXPECT_DEATH(
      BitVector::AndPopcountMany(a, tail.data(), tail.size(), out.data()),
      "size mismatch");
}

}  // namespace
}  // namespace sfa::spatial
