// Tests for the deterministic RNG stack: reproducibility, range contracts,
// and distributional sanity at fixed seeds (loose tolerances — these are
// regression guards, not GOF certifications).
#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace sfa {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform(-3.5, 12.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 12.25);
  }
}

TEST(Rng, NextUint64CoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextUint64(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, 500);  // ~5 sigma for binomial(1e5, .1)
  }
}

TEST(Rng, NextUint64OfOneIsAlwaysZero) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(rng.NextUint64(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    ASSERT_FALSE(rng.Bernoulli(0.0));
    ASSERT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMatchesRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(16);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(17);
  const int n = 100000;
  uint64_t sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.0);
  EXPECT_NEAR(static_cast<double>(sum) / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesSplitPath) {
  Rng rng(18);
  const int n = 20000;
  uint64_t sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(100.0);
  EXPECT_NEAR(static_cast<double>(sum) / n, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(19);
  EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(Rng, BinomialMatchesMoments) {
  Rng rng(20);
  const int n = 50000;
  uint64_t sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Binomial(40, 0.25);
  EXPECT_NEAR(static_cast<double>(sum) / n, 10.0, 0.15);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(21);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.Binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(10, 1.0), 10u);
}

TEST(Rng, BinomialHighPReflection) {
  Rng rng(22);
  const int n = 50000;
  uint64_t sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Binomial(20, 0.9);
  EXPECT_NEAR(static_cast<double>(sum) / n, 18.0, 0.1);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(24);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) ASSERT_EQ(rng.Categorical(weights), 1u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(25);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v.begin(), v.end());
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) ASSERT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng root(42);
  Rng a1 = root.Split(1);
  Rng a2 = root.Split(1);
  Rng b = root.Split(2);
  EXPECT_EQ(a1.Next(), a2.Next());
  // Streams from different indices should disagree immediately w.h.p.
  Rng a3 = root.Split(1);
  EXPECT_NE(a3.Next(), b.Next());
}

TEST(Rng, SplitDoesNotPerturbParent) {
  Rng a(5), b(5);
  (void)a.Split(3);
  EXPECT_EQ(a.Next(), b.Next());
}

// Property sweep: bounded generation respects [0, n) for many n.
class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, NextUint64StaysInRange) {
  const uint64_t n = GetParam();
  Rng rng(n * 31 + 7);
  for (int i = 0; i < 2000; ++i) ASSERT_LT(rng.NextUint64(n), n);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 7, 10, 100, 1000, 1ULL << 20,
                                           (1ULL << 62) + 12345));

// Property sweep: Binomial(n, p) stays within [0, n] and near its mean.
class BinomialSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(BinomialSweep, WithinSupportAndNearMean) {
  const auto [n, p] = GetParam();
  Rng rng(99);
  const int reps = 20000;
  uint64_t sum = 0;
  for (int i = 0; i < reps; ++i) {
    const uint64_t k = rng.Binomial(n, p);
    ASSERT_LE(k, n);
    sum += k;
  }
  const double mean = static_cast<double>(sum) / reps;
  const double expected = static_cast<double>(n) * p;
  const double sigma = std::sqrt(static_cast<double>(n) * p * (1 - p) / reps);
  EXPECT_NEAR(mean, expected, std::max(6.0 * sigma, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Params, BinomialSweep,
    ::testing::Combine(::testing::Values<uint64_t>(1, 5, 50, 500),
                       ::testing::Values(0.01, 0.25, 0.5, 0.75, 0.99)));

TEST(Rng, BinomialIsDeterministic) {
  Rng a(55), b(55);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(a.Binomial(30, 0.1), b.Binomial(30, 0.1));   // inversion branch
    ASSERT_EQ(a.Binomial(200, 0.4), b.Binomial(200, 0.4));  // BTRS branch
  }
}

// Chi-square goodness of fit against the exact pmf, for both sampler
// branches: CDF inversion (n·p < 10) and BTRS rejection (n·p >= 10),
// including the p > 1/2 reflection. Deterministic (fixed seeds); the bound
// df + 5*sqrt(2 df) sits ~5 sigma above the chi-square mean.
class BinomialChiSquare
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(BinomialChiSquare, MatchesExactPmf) {
  const auto [n, p] = GetParam();
  Rng rng(4242 + n);
  const int draws = 40000;
  std::vector<int> observed(n + 1, 0);
  for (int i = 0; i < draws; ++i) {
    const uint64_t k = rng.Binomial(n, p);
    ASSERT_LE(k, n);
    ++observed[k];
  }
  // Exact pmf by the stable recurrence from the mode (independent of the
  // sampler under test).
  std::vector<double> pmf(n + 1, 0.0);
  const double nd = static_cast<double>(n);
  const auto mode = static_cast<uint64_t>(
      std::min(nd, std::floor((nd + 1) * p)));
  {
    double log_pmf = 0.0;  // log C(n, mode) + mode log p + (n-mode) log q
    for (uint64_t i = 1; i <= mode; ++i) {
      log_pmf += std::log(nd - static_cast<double>(i) + 1.0) -
                 std::log(static_cast<double>(i));
    }
    log_pmf += static_cast<double>(mode) * std::log(p) +
               (nd - static_cast<double>(mode)) * std::log1p(-p);
    pmf[mode] = std::exp(log_pmf);
  }
  const double odds = p / (1.0 - p);
  for (uint64_t k = mode; k > 0; --k) {
    pmf[k - 1] = pmf[k] * static_cast<double>(k) /
                 (odds * (nd - static_cast<double>(k) + 1.0));
  }
  for (uint64_t k = mode; k < n; ++k) {
    pmf[k + 1] = pmf[k] * odds * (nd - static_cast<double>(k)) /
                 (static_cast<double>(k) + 1.0);
  }
  // Merge outcomes into bins with expected >= 5, then chi-square.
  double chi2 = 0.0;
  int df = -1;
  double expected_bin = 0.0, observed_bin = 0.0;
  for (uint64_t k = 0; k <= n; ++k) {
    expected_bin += pmf[k] * draws;
    observed_bin += observed[k];
    if (expected_bin >= 5.0) {
      chi2 += (observed_bin - expected_bin) * (observed_bin - expected_bin) /
              expected_bin;
      ++df;
      expected_bin = 0.0;
      observed_bin = 0.0;
    }
  }
  if (expected_bin > 0.0) {
    chi2 += (observed_bin - expected_bin) * (observed_bin - expected_bin) /
            std::max(expected_bin, 1e-9);
    ++df;
  }
  ASSERT_GE(df, 1);
  EXPECT_LT(chi2, df + 5.0 * std::sqrt(2.0 * df))
      << "n=" << n << " p=" << p << " df=" << df << " chi2=" << chi2;
}

INSTANTIATE_TEST_SUITE_P(
    Params, BinomialChiSquare,
    ::testing::Values(std::make_tuple<uint64_t, double>(30, 0.1),    // inversion
                      std::make_tuple<uint64_t, double>(12, 0.45),   // inversion
                      std::make_tuple<uint64_t, double>(200, 0.4),   // BTRS
                      std::make_tuple<uint64_t, double>(5000, 0.3),  // BTRS
                      std::make_tuple<uint64_t, double>(64, 0.85),   // reflected
                      std::make_tuple<uint64_t, double>(400, 0.97)));  // refl+inv

}  // namespace
}  // namespace sfa
