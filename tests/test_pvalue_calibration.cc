// Statistical acceptance of the audit's p-values: under a world that IS
// spatially fair (labels independent of location), the Monte Carlo p-value
// of the max scan statistic must be (approximately) Uniform(0,1) — the
// defining property of a calibrated test. We run K = 200 small audits per
// null model, each with its own data seed and Monte Carlo seed, batched
// through the AuditPipeline, and assert
//
//   * a Kolmogorov–Smirnov bound against Uniform(0,1): with W = 99 worlds
//     the p-values live on the grid {0.01, ..., 1.00}, which alone
//     contributes D ≈ 0.01; sampling noise at K = 200 puts the 99th
//     percentile of D near 1.63/sqrt(200) ≈ 0.115. Everything here is
//     seeded, so a pass is reproducible — the bound documents the
//     statistical meaning, not a flaky threshold;
//   * the empirical rejection rate at α = 0.05 within binomial tolerance:
//     3·sqrt(0.05·0.95/200) ≈ 0.046 around 0.05.
//
// A systematic miscalibration — e.g. a biased null sampler, an off-by-one in
// the rank p-value, or a scan that peeks at the observed labels — shifts the
// whole p-value distribution and fails these bounds decisively.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/audit_pipeline.h"
#include "core/grid_family.h"
#include "data/dataset.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::MakeFairDataset;

constexpr size_t kNumAudits = 200;
constexpr uint32_t kNumWorlds = 99;
constexpr size_t kPointsPerAudit = 400;
constexpr double kRho = 0.4;

/// Max |F_empirical - F_uniform| over the sample (the two-sided KS statistic
/// against Uniform(0,1), evaluated at both sides of each jump).
double KsAgainstUniform(std::vector<double> sample) {
  std::sort(sample.begin(), sample.end());
  const double k = static_cast<double>(sample.size());
  double d = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    const double f = sample[i];  // Uniform(0,1) CDF at the sample point
    d = std::max(d, (static_cast<double>(i) + 1.0) / k - f);
    d = std::max(d, f - static_cast<double>(i) / k);
  }
  return d;
}

std::vector<double> FairWorldPValues(NullModel null_model) {
  // Every audit owns its dataset + family (the pipeline borrows them).
  std::vector<std::unique_ptr<data::OutcomeDataset>> datasets;
  std::vector<std::unique_ptr<GridPartitionFamily>> families;
  std::vector<AuditRequest> requests;
  datasets.reserve(kNumAudits);
  families.reserve(kNumAudits);
  for (size_t k = 0; k < kNumAudits; ++k) {
    // Fair by construction: the label ignores the location.
    auto ds = std::make_unique<data::OutcomeDataset>(MakeFairDataset(
        1000 + k, kPointsPerAudit, kRho, 3, 2, "fair-" + std::to_string(k)));
    auto family = GridPartitionFamily::Create(ds->locations(), 6, 6);
    SFA_CHECK_OK(family.status());

    AuditRequest req;
    req.id = std::to_string(k);
    req.dataset = ds.get();
    req.family = family->get();
    req.options.alpha = 0.05;
    req.options.monte_carlo.num_worlds = kNumWorlds;
    req.options.monte_carlo.seed = 5000 + k;
    req.options.monte_carlo.null_model = null_model;
    requests.push_back(req);

    datasets.push_back(std::move(ds));
    families.push_back(std::move(*family));
  }

  AuditPipeline pipeline;
  auto responses = pipeline.Run(requests);
  SFA_CHECK_OK(responses.status());
  std::vector<double> p_values;
  p_values.reserve(kNumAudits);
  for (const AuditResponse& response : *responses) {
    SFA_CHECK_OK(response.status);
    p_values.push_back(response.result.p_value);
  }
  return p_values;
}

void ExpectCalibrated(const std::vector<double>& p_values, const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(p_values.size(), kNumAudits);
  for (double p : p_values) {
    ASSERT_GT(p, 0.0);
    ASSERT_LE(p, 1.0);
  }

  const double ks = KsAgainstUniform(p_values);
  printf("[p-value calibration] %s: KS=%.4f (bound 0.115)\n", label, ks);
  EXPECT_LE(ks, 0.115) << "p-values are not ~Uniform(0,1); KS=" << ks;

  size_t rejections = 0;
  for (double p : p_values) {
    if (p <= 0.05) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / kNumAudits;
  printf("[p-value calibration] %s: rejection rate at 0.05 = %.4f\n", label,
         rate);
  // 0.05 ± 3σ with σ = sqrt(0.05·0.95/200) ≈ 0.0154.
  EXPECT_GE(rate, 0.05 - 0.047) << rejections << " rejections";
  EXPECT_LE(rate, 0.05 + 0.047) << rejections << " rejections";
}

TEST(PValueCalibration, BernoulliNullIsUniformUnderFairWorld) {
  ExpectCalibrated(FairWorldPValues(NullModel::kBernoulli), "bernoulli");
}

TEST(PValueCalibration, PermutationNullIsUniformUnderFairWorld) {
  ExpectCalibrated(FairWorldPValues(NullModel::kPermutation), "permutation");
}

// The same property must hold for directional scans — they are separate
// code paths through the LLR gating.
TEST(PValueCalibration, DirectionalScansAreCalibratedToo) {
  for (auto direction :
       {stats::ScanDirection::kHigh, stats::ScanDirection::kLow}) {
    std::vector<std::unique_ptr<data::OutcomeDataset>> datasets;
    std::vector<std::unique_ptr<GridPartitionFamily>> families;
    std::vector<AuditRequest> requests;
    for (size_t k = 0; k < kNumAudits; ++k) {
      auto ds = std::make_unique<data::OutcomeDataset>(
          MakeFairDataset(3000 + k, kPointsPerAudit, kRho));
      auto family = GridPartitionFamily::Create(ds->locations(), 6, 6);
      SFA_CHECK_OK(family.status());
      AuditRequest req;
      req.id = std::to_string(k);
      req.dataset = ds.get();
      req.family = family->get();
      req.options.direction = direction;
      req.options.monte_carlo.num_worlds = kNumWorlds;
      req.options.monte_carlo.seed = 7000 + k;
      requests.push_back(req);
      datasets.push_back(std::move(ds));
      families.push_back(std::move(*family));
    }
    AuditPipeline pipeline;
    auto responses = pipeline.Run(requests);
    SFA_CHECK_OK(responses.status());
    std::vector<double> p_values;
    for (const AuditResponse& response : *responses) {
      SFA_CHECK_OK(response.status);
      p_values.push_back(response.result.p_value);
    }
    ExpectCalibrated(p_values, stats::ScanDirectionToString(direction));
  }
}

}  // namespace
}  // namespace sfa::core
