// Bit-identity suite for the runtime-dispatched AND+popcount kernels
// (spatial/simd_popcount.h): every vector arm (avx2, avx512) must produce
// EXACTLY the scalar reference's counts — popcounts are integer-exact, so any
// difference is a kernel bug, not noise. Fuzzes across awkward tail lengths
// (word boundaries ±1, sub-word, and a multi-megabit size) and mixed batch
// counts so both the 4-stream blocked path and the remainder path of
// BitVector::AndPopcountMany are exercised, plus the force/env override
// semantics and the SWAR class-indicator packer the dense multi-class
// counting backend builds its bit planes with.
#include "spatial/simd_popcount.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "spatial/bitvector.h"

namespace sfa::spatial {
namespace {

using sfa::Rng;

/// Restores the previously active kernel on scope exit so tests never leak a
/// forced kernel into the rest of the binary.
class ScopedKernel {
 public:
  explicit ScopedKernel(PopcountKernel kernel)
      : previous_(ForcePopcountKernel(kernel)) {}
  ~ScopedKernel() { ForcePopcountKernel(previous_); }

 private:
  PopcountKernel previous_;
};

BitVector RandomBits(size_t n, double density, Rng* rng) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) bytes[i] = rng->Bernoulli(density) ? 1 : 0;
  BitVector bv;
  bv.AssignFromBytes(bytes.data(), n);
  return bv;
}

uint64_t NaiveAndPopcount(const BitVector& a, const BitVector& b) {
  uint64_t total = 0;
  for (size_t i = 0; i < a.num_words(); ++i) {
    total += static_cast<uint64_t>(std::popcount(a.words()[i] & b.words()[i]));
  }
  return total;
}

TEST(SimdPopcount, KernelNamesAreStable) {
  EXPECT_STREQ(PopcountKernelName(PopcountKernel::kScalar), "scalar");
  EXPECT_STREQ(PopcountKernelName(PopcountKernel::kAvx2), "avx2");
  EXPECT_STREQ(PopcountKernelName(PopcountKernel::kAvx512), "avx512");
}

TEST(SimdPopcount, ForceReturnsPreviousAndClampsToSupported) {
  const PopcountKernel original = ActivePopcountKernel();
  const PopcountKernel before = ForcePopcountKernel(PopcountKernel::kScalar);
  EXPECT_EQ(before, original);
  EXPECT_EQ(ActivePopcountKernel(), PopcountKernel::kScalar);
  // Requesting a tier the CPU lacks must clamp down, never leave scalar
  // dispatch pointing at an illegal-instruction kernel.
  ForcePopcountKernel(PopcountKernel::kAvx512);
  const PopcountKernel clamped = ActivePopcountKernel();
  EXPECT_LE(static_cast<int>(clamped),
            static_cast<int>(PopcountKernel::kAvx512));
  ForcePopcountKernel(original);
  EXPECT_EQ(ActivePopcountKernel(), original);
}

// The core bit-identity fuzz of the ISSUE: for every vector arm the CPU
// supports, AndPopcountMany must equal the scalar arm exactly across tail
// lengths straddling the 64-bit word and 256/512-bit chunk boundaries, and
// across batch counts covering the 4-stream blocks plus every remainder.
TEST(SimdPopcount, FuzzBitIdentityAcrossTailLengthsAndBatchCounts) {
  const size_t kLengths[] = {0, 1, 63, 64, 65, 127, 128, 1000003};
  Rng rng(20230707);
  for (const size_t n : kLengths) {
    const BitVector membership = RandomBits(n, 0.4, &rng);
    std::vector<BitVector> worlds;
    std::vector<const BitVector*> ptrs;
    for (size_t b = 0; b < 9; ++b) {
      worlds.push_back(RandomBits(n, 0.1 + 0.1 * static_cast<double>(b), &rng));
    }
    for (const BitVector& w : worlds) ptrs.push_back(&w);

    for (size_t count = 1; count <= worlds.size(); ++count) {
      std::vector<uint64_t> expected(count);
      {
        ScopedKernel scalar(PopcountKernel::kScalar);
        BitVector::AndPopcountMany(membership, ptrs.data(), count,
                                   expected.data());
      }
      for (size_t b = 0; b < count; ++b) {
        ASSERT_EQ(expected[b], NaiveAndPopcount(membership, worlds[b]))
            << "scalar kernel vs naive loop, n=" << n << " world=" << b;
      }
      for (const PopcountKernel kernel :
           {PopcountKernel::kAvx2, PopcountKernel::kAvx512}) {
        ScopedKernel forced(kernel);
        if (ActivePopcountKernel() == PopcountKernel::kScalar) {
          continue;  // arm unavailable on this CPU/build; clamped to scalar
        }
        std::vector<uint64_t> got(count, ~0ULL);
        BitVector::AndPopcountMany(membership, ptrs.data(), count, got.data());
        ASSERT_EQ(got, expected)
            << PopcountKernelName(kernel) << " n=" << n << " count=" << count;
        for (size_t b = 0; b < count; ++b) {
          ASSERT_EQ(BitVector::AndPopcount(membership, worlds[b]), expected[b])
              << PopcountKernelName(kernel) << " single-stream, n=" << n;
        }
      }
    }
  }
}

TEST(SimdPopcount, WordKernelsAgreeOnRawArrays) {
  Rng rng(99);
  for (const size_t words : {0u, 1u, 3u, 4u, 5u, 17u, 64u, 1021u}) {
    std::vector<uint64_t> a(words), b0(words), b1(words), b2(words), b3(words);
    for (size_t i = 0; i < words; ++i) {
      a[i] = rng.Next();
      b0[i] = rng.Next();
      b1[i] = rng.Next();
      b2[i] = rng.Next();
      b3[i] = rng.Next();
    }
    uint64_t expected1;
    uint64_t expected4[4];
    {
      ScopedKernel scalar(PopcountKernel::kScalar);
      expected1 = AndPopcountWords(a.data(), b0.data(), words);
      AndPopcountWords4(a.data(), b0.data(), b1.data(), b2.data(), b3.data(),
                        words, expected4);
    }
    EXPECT_EQ(expected1, expected4[0]);
    for (const PopcountKernel kernel :
         {PopcountKernel::kAvx2, PopcountKernel::kAvx512}) {
      ScopedKernel forced(kernel);
      if (ActivePopcountKernel() == PopcountKernel::kScalar) continue;
      EXPECT_EQ(AndPopcountWords(a.data(), b0.data(), words), expected1)
          << PopcountKernelName(kernel) << " words=" << words;
      uint64_t got4[4];
      AndPopcountWords4(a.data(), b0.data(), b1.data(), b2.data(), b3.data(),
                        words, got4);
      for (int s = 0; s < 4; ++s) {
        EXPECT_EQ(got4[s], expected4[s])
            << PopcountKernelName(kernel) << " words=" << words
            << " stream=" << s;
      }
    }
  }
}

// The dense multi-class backend packs class-indicator bit planes with
// AssignFromByteValue; pin its SWAR equality detection against the naive
// per-bit construction, including codes above 0x7f (high-bit bytes are where
// sloppy zero-detection tricks break).
TEST(SimdPopcount, AssignFromByteValueMatchesNaive) {
  Rng rng(7);
  for (const size_t n : {0u, 1u, 63u, 64u, 65u, 129u, 1000u}) {
    std::vector<uint8_t> codes(n);
    for (size_t i = 0; i < n; ++i) {
      codes[i] = static_cast<uint8_t>(rng.Next() & 0xff);
    }
    BitVector packed;
    for (const uint8_t value : {0, 1, 2, 127, 128, 255}) {
      packed.AssignFromByteValue(codes.data(), n, value);
      ASSERT_EQ(packed.size(), n);
      BitVector naive(n);
      for (size_t i = 0; i < n; ++i) {
        if (codes[i] == value) naive.Set(i);
      }
      ASSERT_TRUE(packed == naive) << "n=" << n << " value=" << int{value};
      // Reassignment on the same instance must fully overwrite stale words.
      packed.AssignFromByteValue(codes.data(), n, value);
      ASSERT_TRUE(packed == naive);
    }
  }
}

}  // namespace
}  // namespace sfa::spatial
