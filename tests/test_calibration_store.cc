// The persistence contract of the CalibrationStore: a pipeline warm-started
// from a store directory reproduces cold-run responses byte-for-byte, and
// every way a frame can go bad — version skew, truncation, corruption, a
// frame for a different key — degrades to recompute, never to a wrong
// result. Labeled `stream` (with test_pipeline_streaming.cc) and run under
// TSan in CI: the concurrent read-through test exercises two pipelines
// sharing one directory.
#include "core/calibration_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "core/audit_pipeline.h"
#include "core/grid_family.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::ExpectIdenticalResult;
using core::testing::MakePlantedCity;

/// A fresh, empty store directory, removed on destruction.
struct TempStoreDir {
  std::filesystem::path path;

  explicit TempStoreDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("sfa_calibration_store_test_" + tag + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempStoreDir() { std::filesystem::remove_all(path); }

  std::shared_ptr<CalibrationStore> OpenOrDie() const {
    auto store = CalibrationStore::Open({.directory = path.string()});
    SFA_CHECK_OK(store.status());
    return std::shared_ptr<CalibrationStore>(std::move(store).value());
  }
};

/// A small fixture batch: one city, one family, two calibrations (two-sided
/// + low direction) spread over four requests.
struct StoreBatch {
  data::OutcomeDataset city = MakePlantedCity(71, 3000, 0.40);
  std::unique_ptr<GridPartitionFamily> family;
  std::vector<AuditRequest> requests;

  StoreBatch() {
    auto f = GridPartitionFamily::Create(city.locations(), 8, 8);
    SFA_CHECK_OK(f.status());
    family = std::move(f).value();
    for (double alpha : {0.05, 0.01}) {
      for (auto direction :
           {stats::ScanDirection::kTwoSided, stats::ScanDirection::kLow}) {
        AuditRequest r;
        r.id = std::to_string(alpha) + "-" +
               stats::ScanDirectionToString(direction);
        r.dataset = &city;
        r.family = family.get();
        r.options.alpha = alpha;
        r.options.direction = direction;
        r.options.monte_carlo.num_worlds = 99;
        r.options.monte_carlo.seed = 13;
        requests.push_back(r);
      }
    }
  }
};

std::vector<AuditResponse> RunOrDie(AuditPipeline& pipeline,
                                    const std::vector<AuditRequest>& batch,
                                    PipelineManifest* manifest = nullptr) {
  auto responses = pipeline.Run(batch, manifest);
  SFA_CHECK_OK(responses.status());
  for (const AuditResponse& r : *responses) SFA_CHECK_OK(r.status);
  return std::move(responses).value();
}

CalibrationKey KeyFor(const StoreBatch& b, const AuditRequest& req) {
  return MakeCalibrationKey(*b.family, b.city.size(), b.city.PositiveCount(),
                            req.options.direction, req.options.monte_carlo);
}

TEST(CalibrationStore, RoundTripsNullDistributionExactly) {
  TempStoreDir dir("roundtrip");
  auto store = dir.OpenOrDie();
  StoreBatch b;
  const CalibrationKey key = KeyFor(b, b.requests[0]);

  auto simulated = SimulateNull(*b.family, b.city.PositiveRate(),
                                b.city.PositiveCount(),
                                b.requests[0].options.direction,
                                b.requests[0].options.monte_carlo);
  ASSERT_TRUE(simulated.ok()) << simulated.status();

  ASSERT_TRUE(store->Store(key, *simulated).ok());
  auto loaded = store->Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // Bit-exact round trip: doubles survive the binary frame unchanged.
  EXPECT_EQ(loaded->MaximaVector(), simulated->MaximaVector());
  EXPECT_EQ(store->stats().load_hits, 1u);
  EXPECT_EQ(store->stats().stores, 1u);
}

TEST(CalibrationStore, RoundTripsEarlyStopMetadata) {
  // v3 frames append (worlds_requested, stop_reason) after the maxima: an
  // early-stopped adaptive calibration must come back early-stopped — not
  // masquerading as a full run of its truncated length.
  TempStoreDir dir("earlystop");
  auto store = dir.OpenOrDie();
  StoreBatch b;
  const CalibrationKey key = KeyFor(b, b.requests[0]);

  const NullDistribution stopped(std::vector<double>{4.0, 3.0, 2.0, 1.0},
                                 /*worlds_requested=*/99,
                                 McStopReason::kCiAboveAlpha);
  ASSERT_TRUE(stopped.early_stopped());
  ASSERT_TRUE(store->Store(key, stopped).ok());
  auto loaded = store->Load(key);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->MaximaVector(), stopped.MaximaVector());
  EXPECT_EQ(loaded->worlds_requested(), 99u);
  EXPECT_EQ(loaded->stop_reason(), McStopReason::kCiAboveAlpha);
  EXPECT_TRUE(loaded->early_stopped());
}

TEST(CalibrationStore, RejectsFrameWithCorruptStopMetadata) {
  // worlds_requested below the completed count is structurally impossible;
  // a frame claiming it is quarantined into a recompute.
  TempStoreDir dir("badstop");
  auto store = dir.OpenOrDie();
  StoreBatch b;
  const CalibrationKey key = KeyFor(b, b.requests[0]);
  NullDistribution dist(std::vector<double>{3.0, 2.0, 1.0});
  ASSERT_TRUE(store->Store(key, dist).ok());

  const std::string path = store->FilePathFor(key);
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    ASSERT_TRUE(f.good());
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  // Layout from the trailer backwards: checksum(u64) | stop_reason(u32) |
  // worlds_requested(u64). Claim fewer requested worlds than stored maxima.
  const uint64_t bogus_requested = 1;
  std::memcpy(bytes.data() + bytes.size() - sizeof(uint64_t) -
                  sizeof(uint32_t) - sizeof(uint64_t),
              &bogus_requested, sizeof bogus_requested);
  uint64_t checksum = 0xcbf29ce484222325ULL;  // FNV-1a over all but trailer
  for (size_t i = 0; i + sizeof(uint64_t) < bytes.size(); ++i) {
    checksum ^= static_cast<unsigned char>(bytes[i]);
    checksum *= 0x100000001b3ULL;
  }
  std::memcpy(bytes.data() + bytes.size() - sizeof checksum, &checksum,
              sizeof checksum);
  { std::ofstream(path, std::ios::binary) << bytes; }

  auto loaded = store->Load(key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status();
  EXPECT_EQ(store->stats().load_rejected, 1u);
}

TEST(CalibrationStore, WarmStartedPipelineIsByteIdenticalToColdRun) {
  TempStoreDir dir("warmstart");
  StoreBatch b;

  // Process 1: cold run with write-behind persistence.
  PipelineManifest cold_manifest;
  std::vector<AuditResponse> cold;
  {
    AuditPipeline pipeline;
    pipeline.cache().AttachStore(dir.OpenOrDie());
    cold = RunOrDie(pipeline, b.requests, &cold_manifest);
    pipeline.cache().FlushStore();
    EXPECT_EQ(cold_manifest.calibrations_computed, 2u);
    EXPECT_EQ(cold_manifest.calibrations_loaded, 0u);
    EXPECT_EQ(pipeline.cache().stats().store_writes, 2u);
  }

  // "Process" 2: fresh pipeline + fresh store handle on the same directory —
  // no simulation runs, responses match bit-for-bit.
  PipelineManifest warm_manifest;
  AuditPipeline restarted;
  restarted.cache().AttachStore(dir.OpenOrDie());
  const auto warm = RunOrDie(restarted, b.requests, &warm_manifest);
  EXPECT_EQ(warm_manifest.calibrations_computed, 0u);
  EXPECT_EQ(warm_manifest.calibrations_loaded, 2u);
  EXPECT_EQ(restarted.cache().stats().store_hits, 2u);
  ASSERT_EQ(warm.size(), cold.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    ExpectIdenticalResult(cold[i].result, warm[i].result,
                          "persisted-warm " + b.requests[i].id);
    EXPECT_TRUE(warm[i].cache_hit);
  }
}

TEST(CalibrationStore, RejectsForeignFormatVersion) {
  TempStoreDir dir("version");
  auto store = dir.OpenOrDie();
  StoreBatch b;
  const CalibrationKey key = KeyFor(b, b.requests[0]);
  NullDistribution dist(std::vector<double>{3.0, 2.0, 1.0});
  ASSERT_TRUE(store->Store(key, dist).ok());

  // Bump the version field in place (bytes 8..11, after the 8-byte magic).
  const std::string path = store->FilePathFor(key);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(8);
    const uint32_t foreign = CalibrationStore::kFormatVersion + 1;
    f.write(reinterpret_cast<const char*>(&foreign), sizeof foreign);
  }
  auto loaded = store->Load(key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status();
  EXPECT_EQ(store->stats().load_rejected, 1u);
}

TEST(CalibrationStore, RejectsTruncatedAndCorruptedFrames) {
  TempStoreDir dir("corrupt");
  auto store = dir.OpenOrDie();
  StoreBatch b;
  const CalibrationKey key = KeyFor(b, b.requests[0]);
  NullDistribution dist(std::vector<double>{5.5, 4.5, 3.5, 2.5});
  ASSERT_TRUE(store->Store(key, dist).ok());
  const std::string path = store->FilePathFor(key);
  const auto full_size = std::filesystem::file_size(path);

  // Truncation at several byte lengths, including mid-header and mid-payload.
  for (uintmax_t keep : {uintmax_t{0}, uintmax_t{5}, uintmax_t{19},
                         full_size / 2, full_size - 1}) {
    ASSERT_TRUE(store->Store(key, dist).ok());
    std::filesystem::resize_file(path, keep);
    auto loaded = store->Load(key);
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_TRUE(loaded.status().IsNotFound());
  }

  // Bit-flip in the payload: the checksum trailer catches it.
  ASSERT_TRUE(store->Store(key, dist).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(-16, std::ios::end);  // inside the last double, before the trailer
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-16, std::ios::end);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  auto loaded = store->Load(key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
  EXPECT_GE(store->stats().load_rejected, 6u);

  // Every reject above also quarantined its frame: the defective bytes moved
  // aside, so by now the key is a clean miss (a fresh-handle load_misses, not
  // another parse-and-reject).
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(store->stats().quarantined, store->stats().load_rejected);

  // And the pipeline-level fallback: a corrupt store never poisons results —
  // the calibration is recomputed and responses match a store-less run.
  ASSERT_TRUE(store->Store(key, dist).ok());
  std::filesystem::resize_file(path, full_size / 3);
  AuditPipeline clean, fallback;
  PipelineManifest manifest;
  fallback.cache().AttachStore(store);
  const auto expected = RunOrDie(clean, b.requests);
  const auto recovered = RunOrDie(fallback, b.requests, &manifest);
  EXPECT_EQ(manifest.calibrations_loaded, 0u);
  EXPECT_EQ(manifest.calibrations_computed, 2u);
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectIdenticalResult(expected[i].result, recovered[i].result,
                          "corrupt-fallback " + b.requests[i].id);
  }
}

TEST(CalibrationStore, RejectsFrameBelongingToAnotherKey) {
  TempStoreDir dir("wrongkey");
  auto store = dir.OpenOrDie();
  StoreBatch b;
  const CalibrationKey key_a = KeyFor(b, b.requests[0]);   // two-sided
  const CalibrationKey key_b = KeyFor(b, b.requests[1]);   // low
  ASSERT_NE(key_a, key_b);
  NullDistribution dist(std::vector<double>{2.0, 1.0});
  ASSERT_TRUE(store->Store(key_a, dist).ok());

  // Masquerade key A's frame under key B's filename: the embedded key wins.
  std::filesystem::copy_file(store->FilePathFor(key_a),
                             store->FilePathFor(key_b));
  auto loaded = store->Load(key_b);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
  EXPECT_EQ(store->stats().load_rejected, 1u);
}

TEST(CalibrationStore, RejectsPreStatisticLayerV1Frames) {
  // The statistic layer changed what a calibration key MEANS (keys embed the
  // ScanStatistic fingerprint) — v2; the adaptive-stop layer appended stop
  // metadata to the frame body — v3; the zero-copy mmap layer aligned the
  // maxima array — v4. Frames of any other version — written by older
  // builds — must be rejected into a recompute, never adopted.
  ASSERT_EQ(CalibrationStore::kFormatVersion, 4u);
  TempStoreDir dir("v1frame");
  auto store = dir.OpenOrDie();
  StoreBatch b;
  const CalibrationKey key = KeyFor(b, b.requests[0]);
  NullDistribution dist(std::vector<double>{3.0, 2.0, 1.0});
  ASSERT_TRUE(store->Store(key, dist).ok());

  // Rewrite the version field to 1 and re-seal the checksum, simulating a
  // well-formed old-format frame (not mere corruption).
  const std::string path = store->FilePathFor(key);
  std::string bytes;
  {
    std::ifstream f(path, std::ios::binary);
    ASSERT_TRUE(f.good());
    std::ostringstream ss;
    ss << f.rdbuf();
    bytes = ss.str();
  }
  const uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, sizeof v1);
  uint64_t checksum = 0xcbf29ce484222325ULL;  // FNV-1a over all but trailer
  for (size_t i = 0; i + sizeof(uint64_t) < bytes.size(); ++i) {
    checksum ^= static_cast<unsigned char>(bytes[i]);
    checksum *= 0x100000001b3ULL;
  }
  std::memcpy(bytes.data() + bytes.size() - sizeof checksum, &checksum,
              sizeof checksum);
  { std::ofstream(path, std::ios::binary) << bytes; }

  auto loaded = store->Load(key);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound()) << loaded.status();
  EXPECT_EQ(store->stats().load_rejected, 1u);

  // End to end: a pipeline over this directory recomputes instead of
  // adopting the stale frame.
  AuditPipeline pipeline;
  pipeline.cache().AttachStore(store);
  PipelineManifest manifest;
  RunOrDie(pipeline, {b.requests[0]}, &manifest);
  EXPECT_EQ(manifest.calibrations_loaded, 0u);
  EXPECT_EQ(manifest.calibrations_computed, 1u);
}

TEST(CalibrationStore, EvictToBudgetSweepsLeastRecentlyUsedFirst) {
  TempStoreDir dir("evict");
  auto store = dir.OpenOrDie();
  StoreBatch b;

  // Three frames with identical sizes and staggered mtimes (oldest first).
  std::vector<CalibrationKey> keys;
  for (uint64_t seed : {101u, 102u, 103u}) {
    MonteCarloOptions mc = b.requests[0].options.monte_carlo;
    mc.seed = seed;
    keys.push_back(MakeCalibrationKey(*b.family, b.city.size(),
                                      b.city.PositiveCount(),
                                      stats::ScanDirection::kTwoSided, mc));
    NullDistribution dist(std::vector<double>{1.0 + static_cast<double>(seed)});
    ASSERT_TRUE(store->Store(keys.back(), dist).ok());
    // Stagger mtimes into the past, first-written oldest (seed 101 → -99h).
    const auto stamp = std::filesystem::file_time_type::clock::now() -
                       std::chrono::hours(200 - seed);
    std::filesystem::last_write_time(store->FilePathFor(keys.back()), stamp);
  }
  const auto frame_size =
      std::filesystem::file_size(store->FilePathFor(keys[0]));

  // Touch the oldest via a Load hit: it becomes the most recent, so the
  // sweep (budget = 2 frames) must evict the key written second instead.
  ASSERT_TRUE(store->Load(keys[0]).ok());
  auto evicted = store->EvictToBudget(2 * frame_size + frame_size / 2);
  ASSERT_TRUE(evicted.ok()) << evicted.status();
  EXPECT_EQ(*evicted, 1u);
  EXPECT_TRUE(store->Load(keys[0]).ok()) << "LRU-touched frame survived";
  EXPECT_FALSE(store->Load(keys[1]).ok()) << "coldest frame evicted";
  EXPECT_TRUE(store->Load(keys[2]).ok());
  EXPECT_EQ(store->stats().evicted_files, 1u);
  EXPECT_GT(store->stats().evicted_bytes, 0u);

  // Budget 0 clears everything; an empty directory sweep is a no-op.
  ASSERT_TRUE(store->EvictToBudget(0).ok());
  EXPECT_FALSE(store->Load(keys[0]).ok());
  EXPECT_FALSE(store->Load(keys[2]).ok());
  auto none = store->EvictToBudget(0);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
}

TEST(CalibrationStore, SweepOnOpenBoundsALongLivedDirectory) {
  TempStoreDir dir("sweepopen");
  StoreBatch b;
  uint64_t frame_size = 0;
  {
    auto store = dir.OpenOrDie();
    for (uint64_t seed : {201u, 202u, 203u, 204u}) {
      MonteCarloOptions mc = b.requests[0].options.monte_carlo;
      mc.seed = seed;
      const CalibrationKey key = MakeCalibrationKey(
          *b.family, b.city.size(), b.city.PositiveCount(),
          stats::ScanDirection::kTwoSided, mc);
      NullDistribution dist(std::vector<double>{0.5});
      ASSERT_TRUE(store->Store(key, dist).ok());
      const auto stamp = std::filesystem::file_time_type::clock::now() -
                         std::chrono::hours(300 - seed);
      std::filesystem::last_write_time(store->FilePathFor(key), stamp);
      frame_size = std::filesystem::file_size(store->FilePathFor(key));
    }
  }
  // sweep_on_open with the default max_bytes=0 ("unbounded") must be a
  // no-op — NOT a wipe of the whole directory.
  auto unbounded = CalibrationStore::Open(
      {.directory = dir.path.string(), .sweep_on_open = true});
  ASSERT_TRUE(unbounded.ok());
  size_t remaining = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    if (entry.path().extension() == ".nulldist") ++remaining;
  }
  EXPECT_EQ(remaining, 4u);
  EXPECT_EQ((*unbounded)->stats().evicted_files, 0u);

  // Reopen with a two-frame budget and the startup sweep enabled.
  auto swept = CalibrationStore::Open({.directory = dir.path.string(),
                                       .max_bytes = 2 * frame_size,
                                       .sweep_on_open = true});
  ASSERT_TRUE(swept.ok()) << swept.status();
  remaining = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    if (entry.path().extension() == ".nulldist") ++remaining;
  }
  EXPECT_EQ(remaining, 2u);
  EXPECT_EQ((*swept)->stats().evicted_files, 2u);
}

TEST(CalibrationStore, OpenRequiresUsableDirectory) {
  TempStoreDir dir("open");
  // A file where the directory should be.
  const auto file_path = dir.path / "not_a_dir";
  { std::ofstream(file_path) << "x"; }
  EXPECT_FALSE(
      CalibrationStore::Open({.directory = file_path.string()}).ok());
  EXPECT_FALSE(CalibrationStore::Open({.directory = ""}).ok());
  // create_if_missing=false on an absent path.
  auto absent = CalibrationStore::Open(
      {.directory = (dir.path / "absent").string(), .create_if_missing = false});
  EXPECT_FALSE(absent.ok());
  EXPECT_TRUE(absent.status().IsNotFound());
  // And the success path creates nested directories.
  EXPECT_TRUE(CalibrationStore::Open(
                  {.directory = (dir.path / "a" / "b").string()})
                  .ok());
}

TEST(CalibrationStore, ConcurrentReadThroughFromTwoPipelinesSharingADirectory) {
  TempStoreDir dir("concurrent");
  StoreBatch b;

  // Baseline without any store.
  AuditPipeline baseline_pipeline;
  const auto baseline = RunOrDie(baseline_pipeline, b.requests);

  // Seed the directory with one of the two calibrations so the concurrent
  // run mixes read-through hits and compute+write-behind misses.
  {
    AuditPipeline seeder;
    seeder.cache().AttachStore(dir.OpenOrDie());
    RunOrDie(seeder, {b.requests[0]});
  }

  // Two pipelines, each with its OWN store handle on the shared directory,
  // running the full batch concurrently.
  AuditPipeline p1, p2;
  p1.cache().AttachStore(dir.OpenOrDie());
  p2.cache().AttachStore(dir.OpenOrDie());
  std::vector<AuditResponse> r1, r2;
  std::thread t1([&] { r1 = RunOrDie(p1, b.requests); });
  std::thread t2([&] { r2 = RunOrDie(p2, b.requests); });
  t1.join();
  t2.join();

  for (size_t i = 0; i < baseline.size(); ++i) {
    ExpectIdenticalResult(baseline[i].result, r1[i].result,
                          "concurrent-p1 " + b.requests[i].id);
    ExpectIdenticalResult(baseline[i].result, r2[i].result,
                          "concurrent-p2 " + b.requests[i].id);
  }
  // Each pipeline served at least the seeded calibration from disk.
  EXPECT_GE(p1.cache().stats().store_hits, 1u);
  EXPECT_GE(p2.cache().stats().store_hits, 1u);
}

TEST(CalibrationStore, OpenCreatesMissingParentDirectories) {
  // Regression: create_if_missing must behave like `mkdir -p` — a deploy
  // pointing at a nested, not-yet-existing path (fresh volume) has no parent
  // to lean on.
  TempStoreDir dir("mkdirp");
  const auto nested = dir.path / "a" / "b" / "c" / "store";
  ASSERT_FALSE(std::filesystem::exists(dir.path / "a"));
  auto store = CalibrationStore::Open({.directory = nested.string()});
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_TRUE(std::filesystem::is_directory(nested));

  // And the created directory is immediately usable end to end.
  StoreBatch b;
  const CalibrationKey key = KeyFor(b, b.requests[0]);
  NullDistribution dist(std::vector<double>{1.0});
  ASSERT_TRUE((*store)->Store(key, dist).ok());
  EXPECT_TRUE((*store)->Load(key).ok());
}

TEST(CalibrationStore, EvictSweepRacingConcurrentLoadsAndStoresStaysSafe) {
  // An eviction sweep racing writers and readers on the same directory must
  // never produce a wrong result — only extra misses (evicted frame →
  // recompute) or benign raced removals. Exercises the entry_ec/remove_ec
  // tolerance paths in EvictToBudget under real contention.
  TempStoreDir dir("evictrace");
  auto store = dir.OpenOrDie();
  StoreBatch b;
  std::vector<CalibrationKey> keys;
  std::vector<NullDistribution> dists;
  for (uint64_t seed = 900; seed < 916; ++seed) {
    MonteCarloOptions mc = b.requests[0].options.monte_carlo;
    mc.seed = seed;
    keys.push_back(MakeCalibrationKey(*b.family, b.city.size(),
                                      b.city.PositiveCount(),
                                      stats::ScanDirection::kTwoSided, mc));
    dists.emplace_back(
        std::vector<double>{static_cast<double>(seed), 1.0, 0.5});
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> wrong_payloads{0};
  std::thread writer([&] {
    for (int round = 0; round < 40; ++round) {
      for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_TRUE(store->Store(keys[i], dists[i]).ok());
      }
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      for (size_t i = 0; i < keys.size(); ++i) {
        auto loaded = store->Load(keys[i]);
        if (loaded.ok() && loaded->MaximaVector() != dists[i].MaximaVector()) {
          wrong_payloads.fetch_add(1);
        }
      }
    }
  });
  std::thread evictor([&] {
    while (!stop.load()) {
      auto swept = store->EvictToBudget(0);  // max pressure: evict everything
      ASSERT_TRUE(swept.ok()) << swept.status();
    }
  });
  writer.join();
  reader.join();
  evictor.join();

  EXPECT_EQ(wrong_payloads.load(), 0u);
  // Zero corrupt frames were ever observed: every load either hit a complete
  // frame or missed; nothing was quarantined by the race.
  EXPECT_EQ(store->stats().load_rejected, 0u);
  EXPECT_EQ(store->stats().store_failures, 0u);

  // The directory still works after the storm.
  ASSERT_TRUE(store->Store(keys[0], dists[0]).ok());
  EXPECT_TRUE(store->Load(keys[0]).ok());
}

TEST(CalibrationStore, OrphanedTempsAreReapedButInFlightWritesSurvive) {
  // Regression: a writer killed between fopen and rename used to leak its
  // .tmp.* file forever — invisible to the byte accounting, never swept.
  TempStoreDir dir("orphantemp");
  StoreBatch b;
  {
    auto store = dir.OpenOrDie();
    NullDistribution dist(std::vector<double>{0.5});
    ASSERT_TRUE(store->Store(KeyFor(b, b.requests[0]), dist).ok());
  }

  // A dead writer's temp (embedded pid provably dead: a reaped child), and
  // a LIVE writer's fresh temp (our own pid, inside the grace window).
  const pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) ::_exit(0);
  { int status = 0; ::waitpid(dead, &status, 0); }
  const auto orphan =
      dir.path / ("deadbeef.nulldist.tmp." + std::to_string(dead) + ".1");
  const auto in_flight =
      dir.path / ("cafef00d.nulldist.tmp." + std::to_string(::getpid()) + ".2");
  { std::ofstream(orphan) << "partial frame of a killed writer"; }
  { std::ofstream(in_flight) << "partial frame of a live writer"; }

  // Reopen: the recovery sweep must reap the orphan (dead pid — no grace
  // wait) and must NOT touch the live writer's in-grace temp.
  auto store = CalibrationStore::Open({.directory = dir.path.string()});
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_TRUE(std::filesystem::exists(in_flight));
  EXPECT_EQ((*store)->stats().temps_reaped, 1u);

  // Age the live temp past the grace window: EvictToBudget's sweep reaps it
  // even though its writer is alive (a wedged writer must not leak forever).
  std::filesystem::last_write_time(
      in_flight,
      std::filesystem::file_time_type::clock::now() - std::chrono::hours(2));
  ASSERT_TRUE((*store)->EvictToBudget(1u << 30).ok());
  EXPECT_FALSE(std::filesystem::exists(in_flight));
  EXPECT_EQ((*store)->stats().temps_reaped, 2u);
  // The published frame was never collateral damage.
  EXPECT_TRUE((*store)->Load(KeyFor(b, b.requests[0])).ok());
}

TEST(CalibrationStore, QuarantineIsBoundedByBytesOldestFirst) {
  TempStoreDir dir("quarbudget");

  // Three quarantined frames of 100 bytes each, staggered mtimes.
  const auto qdir = dir.path / "quarantine";
  std::filesystem::create_directories(qdir);
  const std::string payload(100, 'x');
  for (int i = 0; i < 3; ++i) {
    const auto path = qdir / ("bad" + std::to_string(i) + ".nulldist");
    { std::ofstream(path) << payload; }
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now() -
                  std::chrono::hours(30 - i));
  }

  // Budget 0 = unbounded: open must keep all three.
  {
    auto store = CalibrationStore::Open({.directory = dir.path.string()});
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->stats().quarantine_evicted_files, 0u);
  }
  // Budget for two frames: the oldest goes, newest two stay.
  auto store = CalibrationStore::Open(
      {.directory = dir.path.string(), .quarantine_max_bytes = 250});
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->stats().quarantine_evicted_files, 1u);
  EXPECT_EQ((*store)->stats().quarantine_evicted_bytes, 100u);
  EXPECT_FALSE(std::filesystem::exists(qdir / "bad0.nulldist"));
  EXPECT_TRUE(std::filesystem::exists(qdir / "bad1.nulldist"));
  EXPECT_TRUE(std::filesystem::exists(qdir / "bad2.nulldist"));

  // RecoverySweep re-enforces the budget as quarantine grows at runtime.
  const auto late = qdir / "bad3.nulldist";
  { std::ofstream(late) << payload << payload; }  // 200 bytes, newest
  (*store)->RecoverySweep();
  uint64_t remaining_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(qdir)) {
    remaining_bytes += std::filesystem::file_size(entry.path());
  }
  EXPECT_LE(remaining_bytes, 250u);
  EXPECT_TRUE(std::filesystem::exists(late)) << "newest must survive";
}

}  // namespace
}  // namespace sfa::core
