// Tests for KdTree::KNearest and the kNN circular scan family.
#include "core/knn_circle_family.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"
#include "core/audit.h"
#include "spatial/kdtree.h"

namespace sfa {
namespace {

std::vector<geo::Point> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) p = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
  return pts;
}

TEST(KdTreeKNearest, MatchesBruteForce) {
  const auto pts = RandomPoints(400, 1);
  const spatial::KdTree tree(pts);
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const geo::Point q(rng.Uniform(-1, 11), rng.Uniform(-1, 11));
    const size_t k = 1 + rng.NextUint64(20);
    const auto got = tree.KNearest(q, k);
    ASSERT_EQ(got.size(), k);
    // Brute force: sort all ids by distance.
    std::vector<uint32_t> all(pts.size());
    std::iota(all.begin(), all.end(), 0u);
    std::sort(all.begin(), all.end(), [&](uint32_t a, uint32_t b) {
      return q.DistanceSquaredTo(pts[a]) < q.DistanceSquaredTo(pts[b]);
    });
    // Compare distances (ids may tie).
    for (size_t i = 0; i < k; ++i) {
      ASSERT_NEAR(q.DistanceSquaredTo(pts[got[i]]),
                  q.DistanceSquaredTo(pts[all[i]]), 1e-12)
          << "trial " << trial << " position " << i;
    }
    // Ascending order.
    for (size_t i = 1; i < k; ++i) {
      ASSERT_LE(q.DistanceSquaredTo(pts[got[i - 1]]),
                q.DistanceSquaredTo(pts[got[i]]) + 1e-12);
    }
  }
}

TEST(KdTreeKNearest, KEqualsNReturnsEverything) {
  const auto pts = RandomPoints(50, 3);
  const spatial::KdTree tree(pts);
  auto got = tree.KNearest({5, 5}, 50);
  std::sort(got.begin(), got.end());
  for (uint32_t i = 0; i < 50; ++i) ASSERT_EQ(got[i], i);
}

TEST(KdTreeKNearestDeathTest, RejectsBadK) {
  const auto pts = RandomPoints(10, 4);
  const spatial::KdTree tree(pts);
  EXPECT_DEATH(tree.KNearest({0, 0}, 0), "outside");
  EXPECT_DEATH(tree.KNearest({0, 0}, 11), "outside");
}

TEST(KnnCircleFamily, RejectsBadOptions) {
  const auto pts = RandomPoints(100, 5);
  core::KnnCircleOptions opts;
  EXPECT_FALSE(core::KnnCircleFamily::Create(pts, opts).ok());  // no centers
  opts.centers = {{5, 5}};
  opts.population_fractions = {};
  EXPECT_FALSE(core::KnnCircleFamily::Create(pts, opts).ok());
  opts.population_fractions = {1.5};
  EXPECT_FALSE(core::KnnCircleFamily::Create(pts, opts).ok());
  opts.population_fractions = {0.1};
  EXPECT_FALSE(core::KnnCircleFamily::Create({}, opts).ok());
}

TEST(KnnCircleFamily, RegionsHoldExactPopulationShares) {
  const auto pts = RandomPoints(1000, 6);
  core::KnnCircleOptions opts;
  opts.centers = {{2, 2}, {8, 8}};
  opts.population_fractions = {0.01, 0.05, 0.10};
  auto family = core::KnnCircleFamily::Create(pts, opts);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ((*family)->num_regions(), 6u);
  // Region point counts are exactly ceil(fraction * N).
  EXPECT_EQ((*family)->PointCount(0), 10u);
  EXPECT_EQ((*family)->PointCount(1), 50u);
  EXPECT_EQ((*family)->PointCount(2), 100u);
  // Radii grow with k.
  EXPECT_LT((*family)->RadiusOfRegion(0), (*family)->RadiusOfRegion(1));
  EXPECT_LT((*family)->RadiusOfRegion(1), (*family)->RadiusOfRegion(2));
}

TEST(KnnCircleFamily, MembersAreTheNearestPoints) {
  const auto pts = RandomPoints(500, 7);
  core::KnnCircleOptions opts;
  opts.centers = {{5, 5}};
  opts.population_fractions = {0.04};
  auto family = core::KnnCircleFamily::Create(pts, opts);
  ASSERT_TRUE(family.ok());
  // All members must be within the region radius; all non-members outside
  // (up to ties).
  const double radius = (*family)->RadiusOfRegion(0);
  core::Labels all_ones =
      core::Labels::FromBytes(std::vector<uint8_t>(pts.size(), 1));
  std::vector<uint64_t> counts;
  (*family)->CountPositives(all_ones, &counts);
  EXPECT_EQ(counts[0], 20u);  // ceil(0.04 * 500)
  size_t within = 0;
  for (const auto& p : pts) {
    within += geo::Point{5, 5}.DistanceTo(p) <= radius + 1e-12;
  }
  EXPECT_EQ(within, 20u);
}

TEST(KnnCircleFamily, AdaptsRadiusToDensity) {
  // Dense cluster at (2,2), sparse elsewhere: the same population share has
  // a much smaller radius at the dense center.
  Rng rng(8);
  std::vector<geo::Point> pts;
  for (int i = 0; i < 900; ++i) {
    pts.push_back({rng.Normal(2.0, 0.1), rng.Normal(2.0, 0.1)});
  }
  for (int i = 0; i < 100; ++i) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  core::KnnCircleOptions opts;
  opts.centers = {{2, 2}, {8, 8}};
  opts.population_fractions = {0.05};
  auto family = core::KnnCircleFamily::Create(pts, opts);
  ASSERT_TRUE(family.ok());
  EXPECT_LT((*family)->RadiusOfRegion(0), (*family)->RadiusOfRegion(1) / 3.0);
}

TEST(KnnCircleFamily, WorksWithAuditorAndFindsPlant) {
  Rng rng(9);
  data::OutcomeDataset ds("knn-audit");
  const geo::Point hot(7.0, 3.0);
  for (int i = 0; i < 6000; ++i) {
    const geo::Point p(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const bool in_plant = p.DistanceTo(hot) < 1.0;
    ds.Add(p, rng.Bernoulli(in_plant ? 0.75 : 0.5) ? 1 : 0);
  }
  core::KnnCircleOptions opts;
  for (double x = 1.0; x <= 9.0; x += 2.0) {
    for (double y = 1.0; y <= 9.0; y += 2.0) opts.centers.push_back({x, y});
  }
  auto family = core::KnnCircleFamily::Create(ds.locations(), opts);
  ASSERT_TRUE(family.ok());
  core::AuditOptions audit_opts;
  audit_opts.alpha = 0.01;
  audit_opts.monte_carlo.num_worlds = 199;
  auto result = core::Auditor(audit_opts).Audit(ds, **family);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
  ASSERT_FALSE(result->findings.empty());
  // The top finding's enclosing square overlaps the hot circle.
  EXPECT_TRUE(result->findings[0].rect.Contains(hot));
}

}  // namespace
}  // namespace sfa
