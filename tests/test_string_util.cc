// Tests for string helpers and strict numeric parsing.
#include "common/string_util.h"

#include <gtest/gtest.h>

namespace sfa {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(Trim, RemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(ParseDouble, AcceptsValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  42 "), 42.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDouble, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(ParseInt64, AcceptsValid) {
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64("-9"), -9);
  EXPECT_EQ(*ParseInt64(" 0 "), 0);
}

TEST(ParseInt64, RejectsInvalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("7seven").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());  // overflow
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(WithThousands, GroupsDigits) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(206418), "206,418");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace sfa
