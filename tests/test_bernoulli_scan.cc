// Tests for the Bernoulli scan statistic — the mathematical heart of the
// audit. Verifies the closed forms against direct binomial log-likelihood
// evaluation and checks every invariant the paper relies on.
#include "stats/bernoulli_scan.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sfa::stats {
namespace {

// Direct evaluation of k log(k/m) + (m-k) log(1-k/m).
double NaiveLL(uint64_t k, uint64_t m) {
  if (m == 0) return 0.0;
  const double kd = static_cast<double>(k), md = static_cast<double>(m);
  double ll = 0.0;
  if (k > 0) ll += kd * std::log(kd / md);
  if (k < m) ll += (md - kd) * std::log1p(-kd / md);
  return ll;
}

TEST(MaxBernoulliLogLikelihood, MatchesDirectFormula) {
  EXPECT_NEAR(MaxBernoulliLogLikelihood(3, 10), NaiveLL(3, 10), 1e-12);
  EXPECT_NEAR(MaxBernoulliLogLikelihood(500, 1000), NaiveLL(500, 1000), 1e-9);
}

TEST(MaxBernoulliLogLikelihood, ZeroLogZeroConvention) {
  // All-or-nothing outcomes have likelihood 1 → log-likelihood 0.
  EXPECT_DOUBLE_EQ(MaxBernoulliLogLikelihood(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(MaxBernoulliLogLikelihood(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(MaxBernoulliLogLikelihood(0, 0), 0.0);
}

TEST(MaxBernoulliLogLikelihood, IsNegativeForMixedOutcomes) {
  for (uint64_t k = 1; k < 10; ++k) {
    EXPECT_LT(MaxBernoulliLogLikelihood(k, 10), 0.0) << k;
  }
}

TEST(MaxBernoulliLogLikelihood, SymmetricInSuccessFailure) {
  for (uint64_t k = 0; k <= 20; ++k) {
    EXPECT_NEAR(MaxBernoulliLogLikelihood(k, 20),
                MaxBernoulliLogLikelihood(20 - k, 20), 1e-12);
  }
}

TEST(ScanCounts, RatesAndValidity) {
  ScanCounts c{.n = 10, .p = 4, .total_n = 100, .total_p = 40};
  EXPECT_TRUE(c.IsValid());
  EXPECT_DOUBLE_EQ(c.inside_rate(), 0.4);
  EXPECT_DOUBLE_EQ(c.outside_rate(), 0.4);
  EXPECT_DOUBLE_EQ(c.overall_rate(), 0.4);
  // Inconsistent: more positives inside than total positives.
  ScanCounts bad{.n = 10, .p = 9, .total_n = 100, .total_p = 5};
  EXPECT_FALSE(bad.IsValid());
}

TEST(LogLikelihoodRatio, ZeroWhenRatesEqual) {
  // Inside rate == outside rate → alternative collapses to the null.
  ScanCounts c{.n = 50, .p = 20, .total_n = 150, .total_p = 60};
  EXPECT_DOUBLE_EQ(BernoulliLogLikelihoodRatio(c), 0.0);
}

TEST(LogLikelihoodRatio, ZeroForDegenerateRegions) {
  ScanCounts empty{.n = 0, .p = 0, .total_n = 100, .total_p = 40};
  EXPECT_DOUBLE_EQ(BernoulliLogLikelihoodRatio(empty), 0.0);
  ScanCounts everything{.n = 100, .p = 40, .total_n = 100, .total_p = 40};
  EXPECT_DOUBLE_EQ(BernoulliLogLikelihoodRatio(everything), 0.0);
}

TEST(LogLikelihoodRatio, MatchesHandComputedExample) {
  // n=10 all positive inside; outside 90 with 30 positive.
  const ScanCounts c{.n = 10, .p = 10, .total_n = 100, .total_p = 40};
  const double alt = NaiveLL(10, 10) + NaiveLL(30, 90);
  const double null = NaiveLL(40, 100);
  EXPECT_NEAR(BernoulliLogLikelihoodRatio(c), alt - null, 1e-12);
  EXPECT_GT(BernoulliLogLikelihoodRatio(c), 0.0);
}

TEST(LogLikelihoodRatio, GrowsWithEffectSize) {
  // Same inside size, increasingly extreme inside rate.
  const double llr_mild = BernoulliLogLikelihoodRatio(
      ScanCounts{.n = 100, .p = 60, .total_n = 1000, .total_p = 500});
  const double llr_strong = BernoulliLogLikelihoodRatio(
      ScanCounts{.n = 100, .p = 90, .total_n = 1000, .total_p = 500});
  EXPECT_GT(llr_strong, llr_mild);
}

TEST(LogLikelihoodRatio, GrowsWithSampleSizeAtFixedRates) {
  // Doubling all counts at the same rates roughly doubles the LLR.
  const ScanCounts small{.n = 100, .p = 70, .total_n = 1000, .total_p = 500};
  const ScanCounts big{.n = 200, .p = 140, .total_n = 2000, .total_p = 1000};
  const double llr_small = BernoulliLogLikelihoodRatio(small);
  const double llr_big = BernoulliLogLikelihoodRatio(big);
  EXPECT_NEAR(llr_big, 2.0 * llr_small, 1e-9);
}

TEST(LogLikelihoodRatio, SparseExtremeRegionScoresLow) {
  // The paper's Fig. 2 contrast: five all-negative points in a big dataset
  // score ~1 nat; a dense moderate deviation scores hundreds.
  const double sparse = BernoulliLogLikelihoodRatio(
      ScanCounts{.n = 5, .p = 0, .total_n = 206418, .total_p = 127286});
  const double dense = BernoulliLogLikelihoodRatio(
      ScanCounts{.n = 8000, .p = 6720, .total_n = 206418, .total_p = 127286});
  EXPECT_LT(sparse, 10.0);
  EXPECT_GT(dense, 100.0);
  EXPECT_GT(sparse, 0.0);
}

TEST(LogLikelihoodRatio, DirectionalFiltering) {
  const ScanCounts high{.n = 100, .p = 90, .total_n = 1000, .total_p = 500};
  const ScanCounts low{.n = 100, .p = 10, .total_n = 1000, .total_p = 500};
  // Two-sided sees both.
  EXPECT_GT(BernoulliLogLikelihoodRatio(high, ScanDirection::kTwoSided), 0.0);
  EXPECT_GT(BernoulliLogLikelihoodRatio(low, ScanDirection::kTwoSided), 0.0);
  // kHigh sees only the elevated region.
  EXPECT_GT(BernoulliLogLikelihoodRatio(high, ScanDirection::kHigh), 0.0);
  EXPECT_DOUBLE_EQ(BernoulliLogLikelihoodRatio(low, ScanDirection::kHigh), 0.0);
  // kLow sees only the depressed region.
  EXPECT_DOUBLE_EQ(BernoulliLogLikelihoodRatio(high, ScanDirection::kLow), 0.0);
  EXPECT_GT(BernoulliLogLikelihoodRatio(low, ScanDirection::kLow), 0.0);
}

TEST(LogLikelihoodRatio, TwoSidedIsMaxOfDirectional) {
  const ScanCounts c{.n = 30, .p = 25, .total_n = 300, .total_p = 150};
  const double two = BernoulliLogLikelihoodRatio(c, ScanDirection::kTwoSided);
  const double hi = BernoulliLogLikelihoodRatio(c, ScanDirection::kHigh);
  const double lo = BernoulliLogLikelihoodRatio(c, ScanDirection::kLow);
  EXPECT_DOUBLE_EQ(two, std::max(hi, lo));
}

TEST(LogSpatialUnfairnessLikelihood, DecomposesAsLlrPlusNull) {
  const ScanCounts c{.n = 40, .p = 30, .total_n = 400, .total_p = 100};
  const double log_sul = LogSpatialUnfairnessLikelihood(c);
  const double llr = BernoulliLogLikelihoodRatio(c);
  const double null = NullLogLikelihood(c.total_p, c.total_n);
  EXPECT_NEAR(log_sul, llr + null, 1e-12);
  // SUL is a likelihood (<= 1), so its log is <= 0.
  EXPECT_LE(log_sul, 0.0);
}

TEST(ScanDirectionToString, Names) {
  EXPECT_STREQ(ScanDirectionToString(ScanDirection::kTwoSided), "two-sided");
  EXPECT_STREQ(ScanDirectionToString(ScanDirection::kHigh), "high (green)");
  EXPECT_STREQ(ScanDirectionToString(ScanDirection::kLow), "low (red)");
}

// Property sweep: Λ >= 0 always, equals 0 iff rates coincide, and the
// alternative likelihood never falls below the null (Eq. 1's case split).
class LlrGridSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(LlrGridSweep, NonNegativityAndNesting) {
  const auto [n, total_n] = GetParam();
  for (uint64_t p = 0; p <= n; ++p) {
    for (uint64_t total_p = p; total_p <= total_n - (n - p); ++total_p) {
      const ScanCounts c{.n = n, .p = p, .total_n = total_n, .total_p = total_p};
      ASSERT_TRUE(c.IsValid());
      const double llr = BernoulliLogLikelihoodRatio(c);
      ASSERT_GE(llr, 0.0);
      const bool rates_equal =
          std::abs(c.inside_rate() - c.outside_rate()) < 1e-12;
      if (rates_equal) {
        ASSERT_DOUBLE_EQ(llr, 0.0);
      }
      // Eq. 1: log L1max = max(alt, null) → log SUL >= log L0max.
      ASSERT_GE(LogSpatialUnfairnessLikelihood(c) + 1e-9,
                NullLogLikelihood(total_p, total_n));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LlrGridSweep,
    ::testing::Values(std::make_tuple<uint64_t, uint64_t>(1, 10),
                      std::make_tuple<uint64_t, uint64_t>(5, 10),
                      std::make_tuple<uint64_t, uint64_t>(9, 10),
                      std::make_tuple<uint64_t, uint64_t>(10, 30),
                      std::make_tuple<uint64_t, uint64_t>(25, 40)));

TEST(LogLikelihoodTable, MatchesDirectLogLikelihood) {
  const LogLikelihoodTable table(200);
  for (uint64_t m = 0; m <= 200; m += 7) {
    for (uint64_t k = 0; k <= m; ++k) {
      const double direct = MaxBernoulliLogLikelihood(k, m);
      const double via_table = table.MaxBernoulliLogLikelihood(k, m);
      // Same math, reassociated (k log k + (m-k) log(m-k) - m log m), so
      // agreement is to additive rounding, not bit-exact.
      ASSERT_NEAR(via_table, direct, 1e-9 * std::max(1.0, std::abs(direct)))
          << k << "/" << m;
    }
  }
}

TEST(LogLikelihoodTable, LlrMatchesDirectAcrossDirections) {
  const uint64_t total_n = 500;
  const LogLikelihoodTable table(total_n);
  for (uint64_t n : {1ULL, 20ULL, 250ULL, 499ULL}) {
    for (uint64_t p_frac = 0; p_frac <= 4; ++p_frac) {
      const uint64_t p = n * p_frac / 4;
      for (uint64_t total_p : {p, p + (total_n - n) / 3, p + (total_n - n)}) {
        ScanCounts c{.n = n, .p = p, .total_n = total_n, .total_p = total_p};
        if (!c.IsValid()) continue;
        for (ScanDirection d :
             {ScanDirection::kTwoSided, ScanDirection::kHigh, ScanDirection::kLow}) {
          const double direct = BernoulliLogLikelihoodRatio(c, d);
          const double via_table = BernoulliLogLikelihoodRatio(c, d, table);
          ASSERT_NEAR(via_table, direct, 1e-9 * std::max(1.0, direct));
          // The zero gates (degenerate regions, equal rates, direction
          // mismatch) are integer decisions in the table path: exact.
          ASSERT_EQ(via_table == 0.0, direct == 0.0)
              << n << " " << p << " " << total_p << " "
              << ScanDirectionToString(d);
        }
      }
    }
  }
}

}  // namespace
}  // namespace sfa::stats
