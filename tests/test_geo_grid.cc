// Tests for GridSpec: cell addressing, clamped max edges, and assignment.
#include "geo/grid.h"

#include <gtest/gtest.h>

namespace sfa::geo {
namespace {

GridSpec MakeGrid(const Rect& extent, uint32_t nx, uint32_t ny) {
  auto grid = GridSpec::Create(extent, nx, ny);
  EXPECT_TRUE(grid.ok()) << grid.status();
  return *grid;
}

TEST(GridSpec, RejectsDegenerateInputs) {
  EXPECT_FALSE(GridSpec::Create(Rect(0, 0, 1, 1), 0, 5).ok());
  EXPECT_FALSE(GridSpec::Create(Rect(0, 0, 1, 1), 5, 0).ok());
  EXPECT_FALSE(GridSpec::Create(Rect(0, 0, 0, 1), 2, 2).ok());  // zero width
  EXPECT_FALSE(GridSpec::Create(Rect(1, 1, 1, 1), 2, 2).ok());
  EXPECT_FALSE(GridSpec::Create(Rect(0, 0, 1, 1), 1u << 16, 1u << 16).ok());
}

TEST(GridSpec, BasicGeometry) {
  const GridSpec g = MakeGrid(Rect(0, 0, 10, 4), 5, 2);
  EXPECT_EQ(g.nx(), 5u);
  EXPECT_EQ(g.ny(), 2u);
  EXPECT_EQ(g.num_cells(), 10u);
  EXPECT_DOUBLE_EQ(g.cell_width(), 2.0);
  EXPECT_DOUBLE_EQ(g.cell_height(), 2.0);
}

TEST(GridSpec, CellOfInteriorPoints) {
  const GridSpec g = MakeGrid(Rect(0, 0, 10, 10), 10, 10);
  EXPECT_EQ(g.CellOf({0.5, 0.5}), 0u);
  EXPECT_EQ(g.CellOf({9.5, 0.5}), 9u);
  EXPECT_EQ(g.CellOf({0.5, 9.5}), 90u);
  EXPECT_EQ(g.CellOf({9.5, 9.5}), 99u);
  EXPECT_EQ(g.CellOf({5.5, 3.5}), 35u);
}

TEST(GridSpec, MaxEdgePointsClampIntoLastCells) {
  const GridSpec g = MakeGrid(Rect(0, 0, 10, 10), 10, 10);
  EXPECT_TRUE(g.Covers({10.0, 10.0}));
  EXPECT_EQ(g.CellOf({10.0, 5.0}), 59u);
  EXPECT_EQ(g.CellOf({5.0, 10.0}), 95u);
  EXPECT_EQ(g.CellOf({10.0, 10.0}), 99u);
}

TEST(GridSpec, CellBoundariesBelongToUpperCell) {
  const GridSpec g = MakeGrid(Rect(0, 0, 10, 10), 10, 10);
  // x = 3.0 is the boundary between columns 2 and 3; half-open cells put it
  // in column 3.
  EXPECT_EQ(g.ColumnOf(3.0), 3u);
  EXPECT_EQ(g.RowOf(7.0), 7u);
}

TEST(GridSpec, CellRectRoundTrip) {
  const GridSpec g = MakeGrid(Rect(-2, -2, 2, 2), 4, 4);
  for (uint32_t id = 0; id < g.num_cells(); ++id) {
    const Rect cell = g.CellRectById(id);
    EXPECT_EQ(g.CellOf(cell.Center()), id);
  }
}

TEST(GridSpec, CellRectsTileTheExtent) {
  const GridSpec g = MakeGrid(Rect(0, 0, 6, 3), 3, 3);
  double total_area = 0.0;
  for (uint32_t id = 0; id < g.num_cells(); ++id) {
    total_area += g.CellRectById(id).Area();
  }
  EXPECT_NEAR(total_area, g.extent().Area(), 1e-9);
}

TEST(GridSpec, AssignCellsFlagsOutsiders) {
  const GridSpec g = MakeGrid(Rect(0, 0, 1, 1), 2, 2);
  const std::vector<Point> pts = {{0.25, 0.25}, {1.5, 0.5}, {0.75, 0.75},
                                  {-0.1, 0.5}};
  const std::vector<uint32_t> cells = g.AssignCells(pts);
  EXPECT_EQ(cells[0], 0u);
  EXPECT_EQ(cells[1], GridSpec::kInvalidCell);
  EXPECT_EQ(cells[2], 3u);
  EXPECT_EQ(cells[3], GridSpec::kInvalidCell);
}

// Property sweep: every covered point maps to the cell whose rect contains
// it (or the clamped boundary cell).
class GridRoundTripSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(GridRoundTripSweep, PointToCellToRectConsistency) {
  const auto [nx, ny] = GetParam();
  const GridSpec g = MakeGrid(Rect(-3, 2, 7, 12), nx, ny);
  for (int i = 0; i <= 20; ++i) {
    for (int j = 0; j <= 20; ++j) {
      const Point p(-3.0 + 10.0 * i / 20.0, 2.0 + 10.0 * j / 20.0);
      ASSERT_TRUE(g.Covers(p));
      const uint32_t cell = g.CellOf(p);
      const Rect r = g.CellRectById(cell);
      // Either properly inside, or on the grid's global max edge (clamped).
      const bool inside = r.Contains(p);
      const bool on_max_edge = p.x == 7.0 || p.y == 12.0;
      ASSERT_TRUE(inside || on_max_edge)
          << "point " << p.x << "," << p.y << " cell " << cell;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GridRoundTripSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 100u),
                       ::testing::Values(1u, 3u, 50u)));

}  // namespace
}  // namespace sfa::geo
