// Golden regression pins for the paper-figure experiments at test scale.
//
// These values were produced by the audit stack at the PR that introduced
// this file and are asserted EXACTLY (to EXPECT_DOUBLE_EQ's 4-ulp slack for
// transcendental-dependent doubles, bit-exact for counts/indices). They are
// the tripwire for engine and backend refactors: a change to the world
// engine, counting backends, LLR evaluation, or RNG streams that silently
// shifts any paper-figure number fails here first, with a diff a human can
// read (τ, p-value, finding ranks) instead of a flaky downstream figure.
//
// If a change fails this test INTENTIONALLY (e.g. a new RNG stream layout),
// regenerate the constants and say so in the commit: the point is that
// shifts are loud and deliberate, never silent.
#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "core/partitioning_family.h"
#include "data/crime_sim.h"
#include "data/synth.h"
#include "geo/partitioning.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

AuditOptions GoldenOptions() {
  AuditOptions opts;
  opts.alpha = 0.005;
  opts.monte_carlo.num_worlds = 199;  // default seed 99, batched engine
  return opts;
}

/// Fig. 1's family construction at reduced scale: 20 random rectangular
/// partitionings with 4-12 splits per axis, from the shared seeded helper
/// (the golden constants below pin its RNG stream).
Result<std::unique_ptr<PartitioningCollectionFamily>> Fig1Family(
    const data::OutcomeDataset& ds) {
  return core::testing::MakeSeededPartitioningFamily(ds, 2023, 20, 4, 12);
}

TEST(GoldenFigures, Fig1SynthUnfairByDesign) {
  data::SynthOptions so;
  so.num_outcomes = 4000;  // seed 17 (default)
  auto ds = data::MakeSynth(so);
  ASSERT_TRUE(ds.ok());
  auto family = Fig1Family(*ds);
  ASSERT_TRUE(family.ok());
  auto r = Auditor(GoldenOptions()).Audit(*ds, **family);
  ASSERT_TRUE(r.ok()) << r.status();

  EXPECT_EQ(r->total_n, 4000u);
  EXPECT_EQ(r->total_p, 1981u);
  EXPECT_FALSE(r->spatially_fair);
  EXPECT_DOUBLE_EQ(r->tau, 17.193572302669963);
  EXPECT_DOUBLE_EQ(r->p_value, 0.0050000000000000001);
  EXPECT_DOUBLE_EQ(r->critical_value, 12.046794690610113);
  EXPECT_EQ(r->best_region, 305u);
  ASSERT_EQ(r->findings.size(), 18u);

  // Top-5 findings: index, Λ, and the region's (n, p).
  const size_t idx[5] = {305, 1652, 1089, 107, 989};
  const double llr[5] = {17.193572302669963, 15.160603144817742,
                         14.921887168933154, 14.26717168918367,
                         14.26717168918367};
  const uint64_t n[5] = {54, 92, 50, 130, 130};
  const uint64_t p[5] = {47, 71, 43, 35, 35};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r->findings[i].region_index, idx[i]) << "rank " << i;
    EXPECT_DOUBLE_EQ(r->findings[i].llr, llr[i]) << "rank " << i;
    EXPECT_EQ(r->findings[i].n, n[i]) << "rank " << i;
    EXPECT_EQ(r->findings[i].p, p[i]) << "rank " << i;
  }
}

TEST(GoldenFigures, Fig1SemiSynthFairByDesign) {
  data::SemiSynthOptions so;
  so.num_outcomes = 4000;  // seed 23 (default)
  auto ds = data::MakeSemiSynthStandalone(so);
  ASSERT_TRUE(ds.ok());
  auto family = Fig1Family(*ds);
  ASSERT_TRUE(family.ok());
  auto r = Auditor(GoldenOptions()).Audit(*ds, **family);
  ASSERT_TRUE(r.ok()) << r.status();

  EXPECT_EQ(r->total_n, 4000u);
  EXPECT_EQ(r->total_p, 2026u);
  EXPECT_TRUE(r->spatially_fair);
  EXPECT_DOUBLE_EQ(r->tau, 4.73573818701243);
  EXPECT_DOUBLE_EQ(r->p_value, 0.62);
  EXPECT_DOUBLE_EQ(r->critical_value, 13.123729507773533);
  EXPECT_EQ(r->best_region, 259u);
  EXPECT_EQ(r->findings.size(), 0u);
}

TEST(GoldenFigures, Fig4CrimeEqualOpportunity20x20) {
  data::CrimeAuditOptions co;
  co.sim.num_incidents = 120000;  // sim seed 1019, split seed 404 (defaults)
  // The paper-scale planted effect needs ~700k incidents to surface at the
  // default scramble; at test scale we deepen the Hollywood scramble so the
  // audit stays decisively unfair and pins non-trivial findings.
  co.sim.hollywood_scramble = 0.55;
  auto bundle = data::BuildCrimeAudit(co);
  ASSERT_TRUE(bundle.ok());
  const data::OutcomeDataset& view = bundle->equal_opportunity;
  auto family = GridPartitionFamily::CreateWithExtent(
      view.locations(), view.BoundingBox().Expanded(1e-9), 20, 20);
  ASSERT_TRUE(family.ok());
  AuditOptions opts = GoldenOptions();
  opts.measure = FairnessMeasure::kEqualOpportunity;
  auto r = Auditor(opts).AuditView(view, **family);
  ASSERT_TRUE(r.ok()) << r.status();

  EXPECT_EQ(r->total_n, 13531u);
  EXPECT_EQ(r->total_p, 8553u);
  EXPECT_FALSE(r->spatially_fair);
  EXPECT_DOUBLE_EQ(r->tau, 23.85982846549814);
  EXPECT_DOUBLE_EQ(r->p_value, 0.0050000000000000001);
  EXPECT_DOUBLE_EQ(r->critical_value, 7.2323803935996693);
  EXPECT_EQ(r->best_region, 253u);
  ASSERT_EQ(r->findings.size(), 4u);

  const size_t idx[4] = {253, 272, 273, 252};
  const double llr[4] = {23.85982846549814, 17.483322309115465,
                         16.382610097038196, 15.687261796956591};
  const uint64_t n[4] = {245, 120, 114, 221};
  const uint64_t p[4] = {102, 44, 42, 99};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(r->findings[i].region_index, idx[i]) << "rank " << i;
    EXPECT_DOUBLE_EQ(r->findings[i].llr, llr[i]) << "rank " << i;
    EXPECT_EQ(r->findings[i].n, n[i]) << "rank " << i;
    EXPECT_EQ(r->findings[i].p, p[i]) << "rank " << i;
  }
  // The paper's under-detection exhibit: the top region's local TPR sits
  // far below the global rate.
  EXPECT_LT(r->findings[0].local_rate, r->overall_rate);
}

}  // namespace
}  // namespace sfa::core
