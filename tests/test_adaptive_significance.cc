// The adaptive sequential Monte Carlo contract (tier1 + stat):
//
//   prefix identity     an adaptive run's completed worlds are byte-identical
//                       to a fixed-num_worlds run of the same length;
//   engine invariance   the stop point and the maxima depend only on the
//                       decision-relevant options — never on batch size,
//                       thread count, parallel on/off, or engine strategy;
//   decision agreement  early-stopped calibrations reach the same
//                       significant/not-significant verdict at alpha as the
//                       full-precision run, across seeds, both scan
//                       directions, and both statistics (property test);
//   key hygiene         adaptive calibrations never alias full-precision
//                       cache/store entries;
//   propagation         AuditView, the batch pipeline manifest, and the
//                       streaming stats all surface the early-stop metadata.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/audit.h"
#include "core/audit_pipeline.h"
#include "core/bernoulli_statistic.h"
#include "core/calibration_cache.h"
#include "core/grid_family.h"
#include "core/multinomial_statistic.h"
#include "core/scan_statistic.h"
#include "core/significance.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::MakePlantedCity;

/// A 3-class city on [0,10)²: class 2 is oversampled inside the planted
/// zone when `planted` (otherwise the mix is location-independent).
data::OutcomeDataset MakeClassCity(uint64_t seed, size_t n, bool planted) {
  Rng rng(seed);
  data::OutcomeDataset ds("classcity");
  const geo::Rect zone(6.0, 6.0, 9.0, 9.0);
  for (size_t i = 0; i < n; ++i) {
    const geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const double u = rng.Uniform(0, 1);
    uint8_t cls;
    if (planted && zone.Contains(loc)) {
      cls = u < 0.1 ? 0 : (u < 0.2 ? 1 : 2);  // zone: mostly class 2
    } else {
      cls = u < 0.4 ? 0 : (u < 0.8 ? 1 : 2);
    }
    ds.Add(loc, cls);
  }
  return ds;
}

std::unique_ptr<GridPartitionFamily> FamilyFor(
    const data::OutcomeDataset& ds) {
  auto family = GridPartitionFamily::Create(ds.locations(), 6, 6);
  SFA_CHECK_OK(family.status());
  return std::move(family).value();
}

MonteCarloOptions AdaptiveOptions(double observed, double alpha,
                                  uint32_t num_worlds, uint64_t seed) {
  MonteCarloOptions mc;
  mc.num_worlds = num_worlds;
  mc.seed = seed;
  mc.adaptive.enabled = true;
  mc.adaptive.observed = observed;
  mc.adaptive.alpha = alpha;
  return mc;
}

TEST(AdaptiveMc, PrefixByteIdenticalToFixedWorldsRun) {
  const data::OutcomeDataset city = MakePlantedCity(301, 1500, 0.55);
  const auto family = FamilyFor(city);
  const BernoulliScanStatistic statistic(stats::ScanDirection::kTwoSided,
                                         city.size(), city.PositiveCount());
  AuditScratch scratch;
  const double tau =
      statistic
          .ScanObserved(*family, city.predicted().data(), city.size(), &scratch)
          .max_llr;

  const MonteCarloOptions mc = AdaptiveOptions(tau, 0.05, 499, 17);
  auto adaptive = SimulateNull(statistic, *family, mc);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();
  ASSERT_TRUE(adaptive->early_stopped());  // a fair city settles fast
  ASSERT_LT(adaptive->num_worlds(), 499u);
  EXPECT_EQ(adaptive->worlds_requested(), 499u);

  // A fixed run of exactly the completed-world count, same seed, adaptive
  // off: identical maxima — the prefix is a pure function of its length.
  MonteCarloOptions fixed;
  fixed.num_worlds = static_cast<uint32_t>(adaptive->num_worlds());
  fixed.seed = 17;
  auto pinned = SimulateNull(statistic, *family, fixed);
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  EXPECT_EQ(adaptive->MaximaVector(), pinned->MaximaVector());
}

TEST(AdaptiveMc, StopPointInvariantAcrossExecutionStrategies) {
  const data::OutcomeDataset city = MakePlantedCity(302, 1200, 0.55);
  const auto family = FamilyFor(city);
  const BernoulliScanStatistic statistic(stats::ScanDirection::kTwoSided,
                                         city.size(), city.PositiveCount());
  AuditScratch scratch;
  const double tau =
      statistic
          .ScanObserved(*family, city.predicted().data(), city.size(), &scratch)
          .max_llr;
  const MonteCarloOptions base = AdaptiveOptions(tau, 0.05, 399, 23);

  auto reference = SimulateNull(statistic, *family, base);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->early_stopped());

  std::vector<MonteCarloOptions> variants;
  {
    MonteCarloOptions v = base;
    v.parallel = false;
    variants.push_back(v);
  }
  {
    MonteCarloOptions v = base;
    v.batch_size = 1;
    variants.push_back(v);
  }
  {
    MonteCarloOptions v = base;
    v.batch_size = 7;  // does not divide check_every
    variants.push_back(v);
  }
  {
    MonteCarloOptions v = base;
    v.engine = McEngine::kReference;
    variants.push_back(v);
  }
  for (size_t i = 0; i < variants.size(); ++i) {
    SCOPED_TRACE("variant " + std::to_string(i));
    auto got = SimulateNull(statistic, *family, variants[i]);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->num_worlds(), reference->num_worlds());
    EXPECT_EQ(got->stop_reason(), reference->stop_reason());
    EXPECT_EQ(got->MaximaVector(), reference->MaximaVector());
  }
}

TEST(AdaptiveMc, ErrorValidationStillApplies) {
  const data::OutcomeDataset city = MakePlantedCity(303, 300, 0.55);
  const auto family = FamilyFor(city);
  const BernoulliScanStatistic statistic(stats::ScanDirection::kTwoSided,
                                         city.size(), city.PositiveCount());
  MonteCarloOptions mc = AdaptiveOptions(1.0, 0.05, 99, 5);
  mc.adaptive.alpha = 1.5;
  EXPECT_FALSE(SimulateNull(statistic, *family, mc).ok());
  mc.adaptive.alpha = 0.05;
  mc.adaptive.observed = std::nan("");
  EXPECT_FALSE(SimulateNull(statistic, *family, mc).ok());
  mc.adaptive.z = -1.0;
  mc.adaptive.observed = 1.0;
  EXPECT_FALSE(SimulateNull(statistic, *family, mc).ok());
  mc = AdaptiveOptions(1.0, 0.05, 99, 5);
  mc.adaptive.check_every = 0;
  EXPECT_FALSE(SimulateNull(statistic, *family, mc).ok());
  mc = AdaptiveOptions(1.0, 0.05, 99, 5);
  mc.adaptive.min_worlds = 0;
  EXPECT_FALSE(SimulateNull(statistic, *family, mc).ok());
}

// The property test (satellite): early-stopped decisions match full-run
// decisions at equal alpha — across seeds, BOTH scan directions, and BOTH
// statistics. Everything is seeded, so this pins deterministic agreement,
// and it also asserts the early stop actually engages on most cases (the
// worlds saved are the point of the feature).
TEST(AdaptiveMc, DecisionAgreementAcrossSeedsDirectionsAndStatistics) {
  constexpr double kAlpha = 0.05;
  // W must leave room for the significant side to stop: with zero
  // exceedances the Wilson upper bound first drops below α = 0.05 around
  // world 206, so W = 399 lets clear rejections stop near 256 while clear
  // fair cases stop at min_worlds.
  constexpr uint32_t kWorlds = 399;
  size_t cases = 0, early = 0;
  uint64_t requested = 0, completed = 0;

  const auto check = [&](const ScanStatistic& statistic,
                         const RegionFamily& family, const uint8_t* outcomes,
                         size_t n, uint64_t mc_seed) {
    AuditScratch scratch;
    const double tau =
        statistic.ScanObserved(family, outcomes, n, &scratch).max_llr;
    MonteCarloOptions full;
    full.num_worlds = kWorlds;
    full.seed = mc_seed;
    auto exact = SimulateNull(statistic, family, full);
    ASSERT_TRUE(exact.ok()) << exact.status();
    auto adaptive = SimulateNull(statistic, family,
                                 AdaptiveOptions(tau, kAlpha, kWorlds, mc_seed));
    ASSERT_TRUE(adaptive.ok()) << adaptive.status();

    const bool exact_sig = exact->PValue(tau) <= kAlpha;
    const bool adaptive_sig = adaptive->PValue(tau) <= kAlpha;
    EXPECT_EQ(exact_sig, adaptive_sig)
        << "exact p=" << exact->PValue(tau)
        << " adaptive p=" << adaptive->PValue(tau) << " at "
        << adaptive->num_worlds() << "/" << kWorlds << " worlds";
    ++cases;
    if (adaptive->early_stopped()) ++early;
    requested += kWorlds;
    completed += adaptive->num_worlds();
  };

  for (uint64_t seed = 401; seed <= 406; ++seed) {
    for (const bool planted : {false, true}) {
      const data::OutcomeDataset city =
          MakePlantedCity(seed, 1200, planted ? 0.85 : 0.55);
      const auto family = FamilyFor(city);
      for (const auto direction :
           {stats::ScanDirection::kTwoSided, stats::ScanDirection::kHigh}) {
        SCOPED_TRACE("bernoulli seed=" + std::to_string(seed) +
                     " planted=" + std::to_string(planted) + " dir=" +
                     stats::ScanDirectionToString(direction));
        const BernoulliScanStatistic statistic(direction, city.size(),
                                               city.PositiveCount());
        check(statistic, *family, city.predicted().data(), city.size(),
              seed * 7 + 1);
      }
    }
  }
  for (uint64_t seed = 421; seed <= 424; ++seed) {
    for (const bool planted : {false, true}) {
      const data::OutcomeDataset city = MakeClassCity(seed, 1200, planted);
      const auto family = FamilyFor(city);
      SCOPED_TRACE("multinomial seed=" + std::to_string(seed) +
                   " planted=" + std::to_string(planted));
      auto statistic = MultinomialScanStatistic::FromOutcomes(
          city.predicted().data(), city.size(), 3);
      ASSERT_TRUE(statistic.ok()) << statistic.status();
      check(**statistic, *family, city.predicted().data(), city.size(),
            seed * 7 + 1);
    }
  }

  // The rule must actually engage: clear-cut cases (most of the suite by
  // construction) stop early, and the aggregate world count shrinks.
  EXPECT_GE(early, cases / 2);
  EXPECT_LT(completed, requested / 2)
      << "adaptive MC saved too few worlds: " << completed << "/" << requested;
}

TEST(AdaptiveMc, KeysNeverAliasFullPrecisionCalibrations) {
  const data::OutcomeDataset city = MakePlantedCity(305, 800, 0.55);
  const auto family = FamilyFor(city);
  const BernoulliScanStatistic statistic(stats::ScanDirection::kTwoSided,
                                         city.size(), city.PositiveCount());
  MonteCarloOptions full;
  full.num_worlds = 199;
  full.seed = 3;
  const CalibrationKey full_key = MakeCalibrationKey(*family, statistic, full);

  MonteCarloOptions adaptive = AdaptiveOptions(8.5, 0.05, 199, 3);
  const CalibrationKey adaptive_key =
      MakeCalibrationKey(*family, statistic, adaptive);
  EXPECT_NE(full_key.hash, adaptive_key.hash);
  EXPECT_NE(full_key.debug, adaptive_key.debug);
  EXPECT_NE(adaptive_key.debug.find("adaptive"), std::string::npos);

  // The stop point depends on (observed, alpha): different rules, different
  // calibrations — they must not share entries either.
  MonteCarloOptions other = adaptive;
  other.adaptive.observed = 9.5;
  EXPECT_NE(MakeCalibrationKey(*family, statistic, other).hash,
            adaptive_key.hash);
  other = adaptive;
  other.adaptive.alpha = 0.01;
  EXPECT_NE(MakeCalibrationKey(*family, statistic, other).hash,
            adaptive_key.hash);
}

TEST(AdaptiveMc, AuditViewResolvesRuleAndSurfacesMetadata) {
  // A saturated plant (every zone prediction positive) at n = 4000: the zone
  // cells alone push τ far beyond any null maximum — null maxima don't grow
  // with n, so this is the regime where the empirical p-value floors at
  // 1/(W+1) and kAuto must reach for the Gumbel tail.
  const data::OutcomeDataset city = MakePlantedCity(306, 4000, 1.0);
  const auto family = FamilyFor(city);
  AuditOptions options;
  options.alpha = 0.05;
  options.measure = FairnessMeasure::kStatisticalParity;
  options.significance = SignificanceMethod::kAuto;
  options.monte_carlo.num_worlds = 399;
  options.monte_carlo.seed = 41;
  options.monte_carlo.adaptive.enabled = true;

  auto result = Auditor(options).AuditView(city, *family);
  ASSERT_TRUE(result.ok()) << result.status();
  // A hard plant: unfair verdict, early CI stop on the significant side.
  EXPECT_FALSE(result->spatially_fair);
  ASSERT_TRUE(result->null_distribution.early_stopped());
  EXPECT_EQ(result->null_distribution.stop_reason(),
            McStopReason::kCiBelowAlpha);
  EXPECT_EQ(result->null_distribution.worlds_requested(), 399u);
  // τ dwarfs every null maximum, so kAuto reaches for the tail fit; either
  // gate outcome is legal, but the attempt must be recorded.
  EXPECT_LT(result->tail_ks, 1.0);
  if (result->tail_fit_ok) {
    EXPECT_EQ(result->p_value_method, SignificanceMethod::kGumbelTail);
    EXPECT_LT(result->p_value,
              1.0 / (static_cast<double>(result->null_distribution.num_worlds()) + 1.0));
  } else {
    EXPECT_EQ(result->p_value_method, SignificanceMethod::kEmpirical);
  }
}

TEST(AdaptiveMc, BatchPipelineCountsEarlyStopsAndWorldsSaved) {
  const data::OutcomeDataset fair = MakePlantedCity(307, 1200, 0.55);
  const data::OutcomeDataset unfair = MakePlantedCity(308, 1200, 0.9);
  const auto fair_family = FamilyFor(fair);
  const auto unfair_family = FamilyFor(unfair);

  std::vector<AuditRequest> batch;
  for (const auto* pair :
       {&fair, &unfair}) {
    AuditRequest r;
    r.id = pair == &fair ? "fair" : "unfair";
    r.dataset = pair;
    r.family = pair == &fair ? fair_family.get() : unfair_family.get();
    r.options.alpha = 0.05;
    r.options.significance = SignificanceMethod::kAuto;
    r.options.monte_carlo.num_worlds = 399;
    r.options.monte_carlo.seed = 51;
    r.options.monte_carlo.adaptive.enabled = true;
    batch.push_back(r);
  }

  AuditPipeline pipeline;
  PipelineManifest manifest;
  auto responses = pipeline.Run(batch, &manifest);
  ASSERT_TRUE(responses.ok()) << responses.status();
  for (const AuditResponse& r : *responses) ASSERT_TRUE(r.status.ok()) << r.status;

  EXPECT_GE(manifest.early_stops, 1u);
  EXPECT_GT(manifest.worlds_saved, 0u);
  EXPECT_NE(manifest.ToJson().find("\"worlds_saved\""), std::string::npos);
  EXPECT_NE(manifest.ToJson().find("\"p_value_method\""), std::string::npos);

  // Decisions match a full-precision (non-adaptive) pipeline run.
  std::vector<AuditRequest> full = batch;
  for (AuditRequest& r : full) r.options.monte_carlo.adaptive.enabled = false;
  AuditPipeline exact_pipeline;
  auto exact = exact_pipeline.Run(full);
  ASSERT_TRUE(exact.ok());
  for (size_t i = 0; i < exact->size(); ++i) {
    ASSERT_TRUE((*exact)[i].status.ok());
    EXPECT_EQ((*responses)[i].result.spatially_fair,
              (*exact)[i].result.spatially_fair)
        << batch[i].id;
  }
}

TEST(AdaptiveMc, StreamingStatsCountEarlyStopsAndTailFits) {
  const data::OutcomeDataset unfair = MakePlantedCity(309, 1500, 0.9);
  const auto family = FamilyFor(unfair);

  AuditRequest r;
  r.id = "stream-adaptive";
  r.dataset = &unfair;
  r.family = family.get();
  r.options.alpha = 0.05;
  r.options.significance = SignificanceMethod::kAuto;
  r.options.monte_carlo.num_worlds = 399;
  r.options.monte_carlo.seed = 61;
  r.options.monte_carlo.adaptive.enabled = true;

  AuditPipeline pipeline;
  ASSERT_TRUE(pipeline.StartStream({.num_workers = 1}).ok());
  auto ticket = pipeline.Submit(r);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  const AuditResponse& response = (*ticket)->Get();
  ASSERT_TRUE(response.status.ok()) << response.status;
  ASSERT_TRUE(pipeline.FinishStream().ok());

  const StreamStats stats = pipeline.stream_stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.early_stops, 1u);
  EXPECT_GT(stats.worlds_saved, 0u);
  EXPECT_EQ(stats.worlds_saved,
            399u - response.result.null_distribution.num_worlds());
  if (response.result.p_value_method == SignificanceMethod::kGumbelTail) {
    EXPECT_EQ(stats.tail_fits, 1u);
  }
  EXPECT_NE(stats.ToJson().find("\"early_stops\":1"), std::string::npos);
  EXPECT_NE(stats.ToJson().find("\"worlds_saved\""), std::string::npos);
}

}  // namespace
}  // namespace sfa::core
