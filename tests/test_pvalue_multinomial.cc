// Statistical acceptance of the MULTINOMIAL statistic's p-values, the
// multi-class sibling of test_pvalue_calibration.cc: under a world whose
// class assignment ignores location, the Monte Carlo p-value of the max
// multinomial scan statistic must be ~Uniform(0,1). K = 200 seeded audits
// per null model, batched through the AuditPipeline (so this also soaks the
// statistic-fingerprinted calibration keying at scale), asserting the same
// KS and rejection-rate bounds as the Bernoulli suite:
//
//   * KS bound 0.115 (p-values on the 1/100 grid at W = 99 worlds plus
//     sampling noise at K = 200 — the 99th percentile of D is ≈
//     1.63/sqrt(200));
//   * rejection rate at α = 0.05 within 0.05 ± 3·sqrt(0.05·0.95/200).
//
// Everything is seeded; a pass is reproducible. A miscalibrated multinomial
// null — a biased chained-binomial cell sampler, a table-arithmetic mismatch
// between observed and null worlds, an off-by-one rank — shifts the whole
// distribution and fails decisively.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/audit_pipeline.h"
#include "core/grid_family.h"
#include "data/dataset.h"

namespace sfa::core {
namespace {

constexpr size_t kNumAudits = 200;
constexpr uint32_t kNumWorlds = 99;
constexpr size_t kPointsPerAudit = 400;
constexpr uint32_t kNumClasses = 3;

double KsAgainstUniform(std::vector<double> sample) {
  std::sort(sample.begin(), sample.end());
  const double k = static_cast<double>(sample.size());
  double d = 0.0;
  for (size_t i = 0; i < sample.size(); ++i) {
    const double f = sample[i];
    d = std::max(d, (static_cast<double>(i) + 1.0) / k - f);
    d = std::max(d, f - static_cast<double>(i) / k);
  }
  return d;
}

/// A spatially fair multiclass dataset: the class draw ignores the location
/// by construction. Draw order per individual: x, y, class.
data::OutcomeDataset MakeFairMulticlass(uint64_t seed, size_t n) {
  Rng rng(seed);
  data::OutcomeDataset ds("fair-multiclass-" + std::to_string(seed));
  const std::vector<double> mix = {0.5, 0.3, 0.2};
  for (size_t i = 0; i < n; ++i) {
    ds.Add({rng.Uniform(0, 3), rng.Uniform(0, 2)},
           static_cast<uint8_t>(rng.Categorical(mix)));
  }
  return ds;
}

std::vector<double> FairWorldPValues(NullModel null_model) {
  std::vector<std::unique_ptr<data::OutcomeDataset>> datasets;
  std::vector<std::unique_ptr<GridPartitionFamily>> families;
  std::vector<AuditRequest> requests;
  datasets.reserve(kNumAudits);
  families.reserve(kNumAudits);
  for (size_t k = 0; k < kNumAudits; ++k) {
    auto ds = std::make_unique<data::OutcomeDataset>(
        MakeFairMulticlass(9000 + k, kPointsPerAudit));
    auto family = GridPartitionFamily::Create(ds->locations(), 6, 6);
    SFA_CHECK_OK(family.status());

    AuditRequest req;
    req.id = std::to_string(k);
    req.dataset = ds.get();
    req.family = family->get();
    req.options.alpha = 0.05;
    req.options.statistic = StatisticKind::kMultinomial;
    req.options.num_classes = kNumClasses;
    req.options.monte_carlo.num_worlds = kNumWorlds;
    req.options.monte_carlo.seed = 11000 + k;
    req.options.monte_carlo.null_model = null_model;
    requests.push_back(req);

    datasets.push_back(std::move(ds));
    families.push_back(std::move(*family));
  }

  AuditPipeline pipeline;
  auto responses = pipeline.Run(requests);
  SFA_CHECK_OK(responses.status());
  std::vector<double> p_values;
  p_values.reserve(kNumAudits);
  for (const AuditResponse& response : *responses) {
    SFA_CHECK_OK(response.status);
    p_values.push_back(response.result.p_value);
  }
  return p_values;
}

void ExpectCalibrated(const std::vector<double>& p_values, const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(p_values.size(), kNumAudits);
  for (double p : p_values) {
    ASSERT_GT(p, 0.0);
    ASSERT_LE(p, 1.0);
  }

  const double ks = KsAgainstUniform(p_values);
  printf("[multinomial p-value calibration] %s: KS=%.4f (bound 0.115)\n",
         label, ks);
  EXPECT_LE(ks, 0.115) << "p-values are not ~Uniform(0,1); KS=" << ks;

  size_t rejections = 0;
  for (double p : p_values) {
    if (p <= 0.05) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / kNumAudits;
  printf("[multinomial p-value calibration] %s: rejection rate at 0.05 = "
         "%.4f\n",
         label, rate);
  EXPECT_GE(rate, 0.05 - 0.047) << rejections << " rejections";
  EXPECT_LE(rate, 0.05 + 0.047) << rejections << " rejections";
}

TEST(MultinomialPValueCalibration, IidNullIsUniformUnderFairWorld) {
  ExpectCalibrated(FairWorldPValues(NullModel::kBernoulli), "iid-categorical");
}

TEST(MultinomialPValueCalibration, PermutationNullIsUniformUnderFairWorld) {
  ExpectCalibrated(FairWorldPValues(NullModel::kPermutation), "permutation");
}

}  // namespace
}  // namespace sfa::core
