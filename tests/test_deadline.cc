// Deadline-enforcement drills, engine to pipeline: cooperative stops at
// Monte Carlo batch boundaries (contiguous-prefix contract), admission and
// dequeue (lazy-reap) enforcement in the streaming pipeline, graceful
// degradation from a partial calibration, joiner retry after a foreign
// single-flight stop, and batch-vs-streaming determinism under fault
// injection. Stops are driven by the `mc_engine.batch` failpoint
// (common/failpoint.h) so every worlds_completed value asserted here is an
// exact function of the spec, not of wall-clock luck. Labeled `fault` +
// `tier1`.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/audit_pipeline.h"
#include "core/bernoulli_statistic.h"
#include "core/calibration_store.h"
#include "core/grid_family.h"
#include "core/mc_engine.h"
#include "core/scan_statistic.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::ExpectIdenticalResult;
using core::testing::MakePlantedCity;

/// One city + one family + request builders. Serial Monte Carlo by default:
/// with options.parallel=false the engine visits batches in order, so a
/// `times`/`every` trigger on mc_engine.batch maps to an exact batch index
/// and worlds_completed is a constant of the spec.
struct DeadlineFixture {
  data::OutcomeDataset city = MakePlantedCity(71, 2000, 0.40);
  std::unique_ptr<GridPartitionFamily> family;

  DeadlineFixture() {
    auto f = GridPartitionFamily::Create(city.locations(), 6, 6);
    SFA_CHECK_OK(f.status());
    family = std::move(f).value();
  }

  MonteCarloOptions SerialMc(uint32_t num_worlds) const {
    MonteCarloOptions mc;
    mc.num_worlds = num_worlds;
    mc.seed = 13;
    mc.parallel = false;
    mc.batch_size = 8;
    return mc;
  }

  AuditRequest Request(const std::string& id, uint32_t num_worlds) const {
    AuditRequest r;
    r.id = id;
    r.dataset = &city;
    r.family = family.get();
    r.options.monte_carlo = SerialMc(num_worlds);
    return r;
  }

  BernoulliScanStatistic Statistic() const {
    return BernoulliScanStatistic(stats::ScanDirection::kTwoSided, city.size(),
                                  city.PositiveCount(), city.PositiveRate());
  }
};

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().DisarmAll(); }
  void TearDown() override { Failpoints::Instance().DisarmAll(); }

  Failpoints& fp() { return Failpoints::Instance(); }
};

const AuditResponse& GetOrDie(const Result<std::shared_ptr<AuditTicket>>& t) {
  SFA_CHECK_OK(t.status());
  return (*t)->Get();
}

// ---------------------------------------------------------------- engine --

TEST_F(DeadlineTest, EngineStopKeepsExactContiguousPrefixInSerialOrder) {
  DeadlineFixture f;
  const MonteCarloOptions mc = f.SerialMc(49);  // 7 batches of 8 (last: 1)

  // Serial order makes the poll sequence exact: hit k is the poll before
  // batch k-1, so every(4) stops before batch 3 — exactly 24 worlds done.
  ASSERT_TRUE(
      fp().Arm("mc_engine.batch", "every(4):error(DeadlineExceeded,injected)")
          .ok());
  PartialCalibration partial;
  auto stopped = SimulateNull(f.Statistic(), *f.family, mc, &partial);
  ASSERT_TRUE(stopped.status().IsDeadlineExceeded()) << stopped.status();
  EXPECT_EQ(partial.worlds_completed, 24u);
  EXPECT_EQ(partial.maxima.size(), 24u);

  // The prefix contract: those 24 maxima ARE the 24-world calibration (per-
  // world substreams make world w independent of num_worlds), so a degraded
  // response built from them is a pure function of (request, 24).
  fp().DisarmAll();
  auto full = SimulateNull(f.Statistic(), *f.family, mc);
  auto clean24 = SimulateNull(f.Statistic(), *f.family, f.SerialMc(24));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(clean24.ok());
  const NullDistribution from_partial(std::move(partial.maxima));
  EXPECT_EQ(from_partial.MaximaVector(), clean24->MaximaVector());
  EXPECT_NE(full->MaximaVector().size(), clean24->MaximaVector().size());
}

TEST_F(DeadlineTest, ParallelStopPrefixDependsOnlyOnItsLength) {
  DeadlineFixture f;
  MonteCarloOptions mc = f.SerialMc(49);
  mc.parallel = true;

  // Under a parallel pool the batch that trips first is scheduling-dependent,
  // so worlds_completed varies — but whatever prefix survives must be THE
  // calibration of that length, batch-aligned, never a scrambled subset.
  ASSERT_TRUE(
      fp().Arm("mc_engine.batch", "every(3):error(DeadlineExceeded,injected)")
          .ok());
  PartialCalibration partial;
  auto stopped = SimulateNull(f.Statistic(), *f.family, mc, &partial);
  ASSERT_TRUE(stopped.status().IsDeadlineExceeded()) << stopped.status();
  ASSERT_LT(partial.worlds_completed, 49u);
  EXPECT_EQ(partial.worlds_completed % mc.batch_size, 0u);
  fp().DisarmAll();
  if (partial.worlds_completed > 0) {
    auto clean_prefix = SimulateNull(
        f.Statistic(), *f.family,
        f.SerialMc(static_cast<uint32_t>(partial.worlds_completed)));
    ASSERT_TRUE(clean_prefix.ok());
    const NullDistribution from_partial(std::move(partial.maxima));
    EXPECT_EQ(from_partial.MaximaVector(), clean_prefix->MaximaVector());
  }
}

TEST_F(DeadlineTest, PreCancelledTokenAndExpiredDeadlineStopBeforeAnyWorld) {
  DeadlineFixture f;
  CancellationToken cancel;
  cancel.Cancel();
  MonteCarloOptions mc = f.SerialMc(49);
  mc.cancel = &cancel;
  PartialCalibration partial;
  auto cancelled = SimulateNull(f.Statistic(), *f.family, mc, &partial);
  EXPECT_TRUE(cancelled.status().IsCancelled()) << cancelled.status();
  EXPECT_EQ(partial.worlds_completed, 0u);

  mc = f.SerialMc(49);
  mc.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto expired = SimulateNull(f.Statistic(), *f.family, mc, &partial);
  EXPECT_TRUE(expired.status().IsDeadlineExceeded()) << expired.status();
  EXPECT_EQ(partial.worlds_completed, 0u);
}

TEST_F(DeadlineTest, RawEngineWithoutOutcomeIsNeverStopped) {
  DeadlineFixture f;
  // A caller that cannot receive partial progress must never get a silently
  // short vector: without an McRunOutcome the engine does not poll at all.
  ASSERT_TRUE(
      fp().Arm("mc_engine.batch", "always:error(DeadlineExceeded,injected)")
          .ok());
  const MonteCarloOptions mc = f.SerialMc(49);
  const BernoulliScanStatistic statistic = f.Statistic();
  const auto simulation = statistic.MakeSimulation(*f.family, mc);
  const std::vector<double> worlds = RunMonteCarloWorlds(*simulation, mc);
  EXPECT_EQ(worlds.size(), 49u);
  EXPECT_EQ(fp().HitCount("mc_engine.batch"), 0u);  // site never consulted
}

// -------------------------------------------------------------- pipeline --

TEST_F(DeadlineTest, ExpiredDeadlineIsRejectedAtStreamAdmission) {
  DeadlineFixture f;
  AuditPipeline pipeline;
  ASSERT_TRUE(pipeline.StartStream({}).ok());

  AuditRequest dead = f.Request("dead-on-arrival", 49);
  dead.deadline_ms = -1.0;  // born expired
  auto ticket = pipeline.Submit(std::move(dead));
  EXPECT_TRUE(ticket.status().IsDeadlineExceeded()) << ticket.status();

  // The bounced request consumed nothing; a live one still gets served.
  auto live = pipeline.Submit(f.Request("live", 49));
  SFA_CHECK_OK(live.status());
  ASSERT_TRUE(pipeline.FinishStream().ok());
  SFA_CHECK_OK((*live)->Get().status);

  const StreamStats stats = pipeline.stream_stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(DeadlineTest, QueuedRequestPastItsDeadlineIsReapedAtDequeue) {
  DeadlineFixture f;
  AuditPipeline pipeline;
  StreamOptions opts;
  opts.num_workers = 1;
  opts.start_paused = true;  // deterministically expire IN the queue
  ASSERT_TRUE(pipeline.StartStream(opts).ok());

  AuditRequest doomed = f.Request("doomed", 49);
  doomed.deadline_ms = 15.0;
  auto doomed_ticket = pipeline.Submit(std::move(doomed));
  auto live_ticket = pipeline.Submit(f.Request("live", 49));
  SFA_CHECK_OK(doomed_ticket.status());
  SFA_CHECK_OK(live_ticket.status());

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  pipeline.ResumeDispatch();
  ASSERT_TRUE(pipeline.FinishStream().ok());

  // Reaped without executing — and the freed worker served the live request.
  const AuditResponse& reaped = GetOrDie(doomed_ticket);
  EXPECT_TRUE(reaped.status.IsDeadlineExceeded()) << reaped.status;
  EXPECT_NE(reaped.status.ToString().find("expired in queue"),
            std::string::npos)
      << reaped.status;
  SFA_CHECK_OK(GetOrDie(live_ticket).status);

  const StreamStats stats = pipeline.stream_stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.deadline_misses, 1u);
}

TEST_F(DeadlineTest, BatchRunBouncesExpiredRequestsAndServesTheRest) {
  DeadlineFixture f;
  AuditPipeline pipeline;
  std::vector<AuditRequest> batch;
  batch.push_back(f.Request("live", 49));
  batch.push_back(f.Request("dead", 49));
  batch.back().deadline_ms = -1.0;

  auto responses = pipeline.Run(batch);
  SFA_CHECK_OK(responses.status());
  SFA_CHECK_OK((*responses)[0].status);
  EXPECT_EQ((*responses)[0].worlds_completed, 49u);
  EXPECT_TRUE((*responses)[1].status.IsDeadlineExceeded())
      << (*responses)[1].status;
}

TEST_F(DeadlineTest, MidCalibrationDeadlineServesDegradedPrefixWhenOptedIn) {
  DeadlineFixture f;
  AuditPipeline pipeline;
  StreamOptions opts;
  opts.num_workers = 1;
  ASSERT_TRUE(pipeline.StartStream(opts).ok());

  // Deterministic mid-calibration expiry: the failpoint injects the same
  // DeadlineExceeded the real clock would, before batch 3 of the request's
  // own (serial) simulation — 24 of 49 worlds completed.
  ASSERT_TRUE(
      fp().Arm("mc_engine.batch", "every(4):error(DeadlineExceeded,injected)")
          .ok());
  AuditRequest degraded_req = f.Request("degraded", 49);
  degraded_req.allow_degraded = true;
  auto ticket = pipeline.Submit(std::move(degraded_req));
  SFA_CHECK_OK(ticket.status());
  const AuditResponse& response = GetOrDie(ticket);
  ASSERT_TRUE(pipeline.FinishStream().ok());
  fp().DisarmAll();

  SFA_CHECK_OK(response.status);
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(response.worlds_completed, 24u);

  // The degraded payload is deterministic given worlds_completed: byte-
  // identical to honestly requesting a 24-world audit.
  AuditPipeline reference;
  auto expected = reference.Run({f.Request("expected", 24)});
  SFA_CHECK_OK(expected.status());
  SFA_CHECK_OK((*expected)[0].status);
  ExpectIdenticalResult((*expected)[0].result, response.result,
                        "degraded == clean 24-world audit");

  const StreamStats stats = pipeline.stream_stats();
  EXPECT_EQ(stats.completed, 1u);  // served, not failed
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(DeadlineTest, MidCalibrationDeadlineFailsWithoutOptIn) {
  DeadlineFixture f;
  AuditPipeline pipeline;
  StreamOptions opts;
  opts.num_workers = 1;
  ASSERT_TRUE(pipeline.StartStream(opts).ok());

  ASSERT_TRUE(
      fp().Arm("mc_engine.batch", "every(4):error(DeadlineExceeded,injected)")
          .ok());
  auto ticket = pipeline.Submit(f.Request("strict", 49));  // no opt-in
  SFA_CHECK_OK(ticket.status());
  const AuditResponse& response = GetOrDie(ticket);
  ASSERT_TRUE(pipeline.FinishStream().ok());

  EXPECT_TRUE(response.status.IsDeadlineExceeded()) << response.status;
  EXPECT_FALSE(response.degraded);
  const StreamStats stats = pipeline.stream_stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.degraded, 0u);
}

TEST_F(DeadlineTest, ForeignSingleFlightStopIsRetriedNotInherited) {
  DeadlineFixture f;
  AuditPipeline pipeline;
  StreamOptions opts;
  opts.num_workers = 2;
  ASSERT_TRUE(pipeline.StartStream(opts).ok());

  // Exactly one simulation (whoever owns the single-flight slot first) is
  // stopped by the injection. The sibling request shares the calibration
  // key; if it joined the doomed owner it receives a FOREIGN DeadlineExceeded
  // — which must be retried under its own (absent) deadline, not surfaced.
  // Whatever the interleaving: exactly one response fails, and the survivor
  // is byte-identical to a clean run.
  ASSERT_TRUE(
      fp().Arm("mc_engine.batch", "once:error(DeadlineExceeded,injected)")
          .ok());
  auto a = pipeline.Submit(f.Request("a", 49));
  auto b = pipeline.Submit(f.Request("b", 49));
  SFA_CHECK_OK(a.status());
  SFA_CHECK_OK(b.status());
  const AuditResponse& ra = GetOrDie(a);
  const AuditResponse& rb = GetOrDie(b);
  ASSERT_TRUE(pipeline.FinishStream().ok());
  fp().DisarmAll();

  const int failures =
      (ra.status.ok() ? 0 : 1) + (rb.status.ok() ? 0 : 1);
  ASSERT_EQ(failures, 1) << "a: " << ra.status << "  b: " << rb.status;
  const AuditResponse& survivor = ra.status.ok() ? ra : rb;
  const AuditResponse& victim = ra.status.ok() ? rb : ra;
  EXPECT_TRUE(victim.status.IsDeadlineExceeded()) << victim.status;

  AuditPipeline reference;
  auto expected = reference.Run({f.Request("expected", 49)});
  SFA_CHECK_OK(expected.status());
  ExpectIdenticalResult((*expected)[0].result, survivor.result,
                        "survivor of foreign stop");
}

TEST_F(DeadlineTest, BatchAndStreamingAgreeByteForByteUnderInjection) {
  DeadlineFixture f;
  // Two calibration keys across four requests.
  auto make_requests = [&] {
    std::vector<AuditRequest> requests;
    for (auto direction :
         {stats::ScanDirection::kTwoSided, stats::ScanDirection::kLow}) {
      for (double alpha : {0.05, 0.01}) {
        AuditRequest r = f.Request(
            std::string(stats::ScanDirectionToString(direction)) + "-" +
                std::to_string(alpha),
            49);
        r.options.alpha = alpha;
        r.options.direction = direction;
        requests.push_back(std::move(r));
      }
    }
    return requests;
  };
  const std::vector<AuditRequest> requests = make_requests();

  // The injected faults (torn every-2nd store write, every Load erroring)
  // hit the persistence layer only — under the determinism contract the
  // served payloads must be byte-identical across batch vs. streaming AND
  // against a fault-free run. Each mode gets a fresh directory, a fresh
  // write→serve process pair, and a freshly armed spec.
  const char* kSpec =
      "store.write=every(2):corrupt;store.load=every(2):error(IOError)";

  auto expected = [&] {
    AuditPipeline clean;
    auto responses = clean.Run(requests);
    SFA_CHECK_OK(responses.status());
    return std::move(responses).value();
  }();

  auto open_store = [](const std::filesystem::path& dir) {
    CalibrationStore::Options options;
    options.directory = dir.string();
    auto store = CalibrationStore::Open(options);
    SFA_CHECK_OK(store.status());
    return std::shared_ptr<CalibrationStore>(std::move(store).value());
  };

  for (const bool streaming : {false, true}) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("sfa_deadline_xmode_" + std::to_string(streaming) + "_" +
         std::to_string(::getpid()));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    ASSERT_TRUE(fp().ArmFromSpec(kSpec).ok());

    // Process 1: compute + persist (some frames torn, some loads broken).
    {
      AuditPipeline writer;
      writer.cache().AttachStore(open_store(dir));
      auto r = writer.Run(requests);
      SFA_CHECK_OK(r.status());
      writer.cache().FlushStore();
    }
    // Process 2: serve from the damaged directory in the mode under test.
    std::vector<AuditResponse> served;
    {
      AuditPipeline server;
      server.cache().AttachStore(open_store(dir));
      if (streaming) {
        ASSERT_TRUE(server.StartStream({}).ok());
        std::vector<Result<std::shared_ptr<AuditTicket>>> tickets;
        for (const AuditRequest& r : requests) tickets.push_back(server.Submit(r));
        ASSERT_TRUE(server.FinishStream().ok());
        for (const auto& t : tickets) served.push_back(GetOrDie(t));
      } else {
        auto r = server.Run(requests);
        SFA_CHECK_OK(r.status());
        served = std::move(r).value();
      }
    }
    fp().DisarmAll();
    std::filesystem::remove_all(dir);

    ASSERT_EQ(served.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      // Streaming ticket order == submit order == request order here.
      SFA_CHECK_OK(served[i].status);
      EXPECT_EQ(served[i].id, expected[i].id);
      ExpectIdenticalResult(
          expected[i].result, served[i].result,
          (streaming ? "streaming " : "batch ") + expected[i].id);
    }
  }
}

}  // namespace
}  // namespace sfa::core
