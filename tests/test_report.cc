// Tests for the textual report rendering.
#include "core/report.h"

#include <gtest/gtest.h>

#include <limits>

namespace sfa::core {
namespace {

AuditResult SampleResult() {
  AuditResult result;
  result.spatially_fair = false;
  result.p_value = 0.001;
  result.tau = 123.456;
  result.critical_value = 9.6;
  result.critical_value_resolvable = true;
  result.alpha = 0.005;
  result.total_n = 206418;
  result.total_p = 127286;
  result.overall_rate = 0.6166;
  RegionFinding f;
  f.n = 7800;
  f.p = 6552;
  f.local_rate = 0.84;
  f.llr = 123.456;
  f.rect = geo::Rect(-123.0, 37.0, -121.0, 39.0);
  f.label = "cell(3,4)";
  result.findings.push_back(f);
  return result;
}

TEST(FormatAuditSummary, ContainsVerdictAndNumbers) {
  const std::string s = FormatAuditSummary(SampleResult(), "LAR");
  EXPECT_NE(s.find("LAR"), std::string::npos);
  EXPECT_NE(s.find("SPATIALLY UNFAIR"), std::string::npos);
  EXPECT_NE(s.find("206,418"), std::string::npos);
  EXPECT_NE(s.find("127,286"), std::string::npos);
  EXPECT_NE(s.find("0.6166"), std::string::npos);
  EXPECT_NE(s.find("123.456"), std::string::npos);
  EXPECT_NE(s.find("significant regions: 1"), std::string::npos);
}

TEST(FormatAuditSummary, FairVerdict) {
  AuditResult result = SampleResult();
  result.spatially_fair = true;
  result.findings.clear();
  const std::string s = FormatAuditSummary(result, "x");
  EXPECT_NE(s.find("SPATIALLY FAIR"), std::string::npos);
  EXPECT_NE(s.find("significant regions: 0"), std::string::npos);
}

TEST(FormatFindingsTable, RendersRowsAndTruncation) {
  AuditResult result = SampleResult();
  for (int i = 0; i < 30; ++i) result.findings.push_back(result.findings[0]);
  const std::string s = FormatFindingsTable(result.findings, 5);
  // Header + separator + 5 rows + "more" line.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 8);
  EXPECT_NE(s.find("(26 more)"), std::string::npos);
  EXPECT_NE(s.find("0.840"), std::string::npos);
}

TEST(FormatFindingsTable, EmptyFindings) {
  const std::string s = FormatFindingsTable({}, 5);
  EXPECT_NE(s.find("rank"), std::string::npos);
  EXPECT_EQ(s.find("more"), std::string::npos);
}

TEST(FormatFindingsTable, MultinomialFindingsGetClassColumns) {
  // Regression: multinomial findings (class_counts set, binary p/rate fields
  // zero) used to render through the binary columns as "p=0, rate=0.000".
  // They must get the class-distribution column instead.
  RegionFinding f;
  f.n = 900;
  f.llr = 42.5;
  f.rect = geo::Rect(0, 0, 2, 2);
  f.label = "cell(1,1)";
  f.class_counts = {300, 450, 150};
  const std::string s = FormatFindingsTable({f}, 5);
  EXPECT_NE(s.find("classes"), std::string::npos);
  EXPECT_NE(s.find("300/450/150"), std::string::npos);
  EXPECT_NE(s.find("42.5"), std::string::npos);
  // The binary-only columns must be gone — no phantom zeros.
  EXPECT_EQ(s.find("rate"), std::string::npos);
  EXPECT_EQ(s.find("| 0.000 |"), std::string::npos);
}

TEST(FormatAuditSummary, TailPValueAndAdaptiveStopAreReported) {
  AuditResult result = SampleResult();
  result.p_value = 3.2e-7;
  result.p_value_method = SignificanceMethod::kGumbelTail;
  result.tail_fit_ok = true;
  result.tail_ks = 0.042;
  result.null_distribution =
      NullDistribution({5.0, 4.0, 3.0, 2.0, 1.0}, /*worlds_requested=*/199,
                       McStopReason::kCiBelowAlpha);
  const std::string s = FormatAuditSummary(result, "tail");
  EXPECT_NE(s.find("Gumbel tail"), std::string::npos);
  EXPECT_NE(s.find("3.200e-07"), std::string::npos);
  EXPECT_NE(s.find("stopped at 5/199 worlds"), std::string::npos);
  EXPECT_NE(s.find("ci-below-alpha"), std::string::npos);
}

TEST(FormatAuditSummary, UnresolvableCriticalValueIsFlagged) {
  AuditResult result = SampleResult();
  result.critical_value = std::numeric_limits<double>::infinity();
  result.critical_value_resolvable = false;
  const std::string plain = FormatAuditSummary(result, "x");
  EXPECT_NE(plain.find("unresolvable at this world budget"),
            std::string::npos);

  result.critical_value = 14.2;
  result.critical_value_advisory = true;
  const std::string advisory = FormatAuditSummary(result, "x");
  EXPECT_NE(advisory.find("Gumbel advisory"), std::string::npos);
}

TEST(FormatFinding, OneLiner) {
  const std::string s = FormatFinding(SampleResult().findings[0]);
  EXPECT_NE(s.find("n=7800"), std::string::npos);
  EXPECT_NE(s.find("local rate=0.840"), std::string::npos);
  EXPECT_EQ(s.find('\n'), std::string::npos);
}

TEST(FormatMeanVarTable, RendersContributions) {
  MeanVarResult mv;
  mv.mean_var = 0.0522;
  mv.per_partitioning_variance = {0.05, 0.054};
  PartitionContribution c;
  c.n = 5;
  c.p = 0;
  c.measure = 0.0;
  c.contribution = 1.2e-4;
  c.rect = geo::Rect(0, 0, 1, 1);
  mv.ranked_partitions.push_back(c);
  const std::string s = FormatMeanVarTable(mv, 10);
  EXPECT_NE(s.find("0.052200"), std::string::npos);
  EXPECT_NE(s.find("2 partitionings"), std::string::npos);
  EXPECT_NE(s.find("1.20e-04"), std::string::npos);
}

}  // namespace
}  // namespace sfa::core
