// Tests for the textual report rendering.
#include "core/report.h"

#include <gtest/gtest.h>

namespace sfa::core {
namespace {

AuditResult SampleResult() {
  AuditResult result;
  result.spatially_fair = false;
  result.p_value = 0.001;
  result.tau = 123.456;
  result.critical_value = 9.6;
  result.alpha = 0.005;
  result.total_n = 206418;
  result.total_p = 127286;
  result.overall_rate = 0.6166;
  RegionFinding f;
  f.n = 7800;
  f.p = 6552;
  f.local_rate = 0.84;
  f.llr = 123.456;
  f.rect = geo::Rect(-123.0, 37.0, -121.0, 39.0);
  f.label = "cell(3,4)";
  result.findings.push_back(f);
  return result;
}

TEST(FormatAuditSummary, ContainsVerdictAndNumbers) {
  const std::string s = FormatAuditSummary(SampleResult(), "LAR");
  EXPECT_NE(s.find("LAR"), std::string::npos);
  EXPECT_NE(s.find("SPATIALLY UNFAIR"), std::string::npos);
  EXPECT_NE(s.find("206,418"), std::string::npos);
  EXPECT_NE(s.find("127,286"), std::string::npos);
  EXPECT_NE(s.find("0.6166"), std::string::npos);
  EXPECT_NE(s.find("123.456"), std::string::npos);
  EXPECT_NE(s.find("significant regions: 1"), std::string::npos);
}

TEST(FormatAuditSummary, FairVerdict) {
  AuditResult result = SampleResult();
  result.spatially_fair = true;
  result.findings.clear();
  const std::string s = FormatAuditSummary(result, "x");
  EXPECT_NE(s.find("SPATIALLY FAIR"), std::string::npos);
  EXPECT_NE(s.find("significant regions: 0"), std::string::npos);
}

TEST(FormatFindingsTable, RendersRowsAndTruncation) {
  AuditResult result = SampleResult();
  for (int i = 0; i < 30; ++i) result.findings.push_back(result.findings[0]);
  const std::string s = FormatFindingsTable(result.findings, 5);
  // Header + separator + 5 rows + "more" line.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 8);
  EXPECT_NE(s.find("(26 more)"), std::string::npos);
  EXPECT_NE(s.find("0.840"), std::string::npos);
}

TEST(FormatFindingsTable, EmptyFindings) {
  const std::string s = FormatFindingsTable({}, 5);
  EXPECT_NE(s.find("rank"), std::string::npos);
  EXPECT_EQ(s.find("more"), std::string::npos);
}

TEST(FormatFinding, OneLiner) {
  const std::string s = FormatFinding(SampleResult().findings[0]);
  EXPECT_NE(s.find("n=7800"), std::string::npos);
  EXPECT_NE(s.find("local rate=0.840"), std::string::npos);
  EXPECT_EQ(s.find('\n'), std::string::npos);
}

TEST(FormatMeanVarTable, RendersContributions) {
  MeanVarResult mv;
  mv.mean_var = 0.0522;
  mv.per_partitioning_variance = {0.05, 0.054};
  PartitionContribution c;
  c.n = 5;
  c.p = 0;
  c.measure = 0.0;
  c.contribution = 1.2e-4;
  c.rect = geo::Rect(0, 0, 1, 1);
  mv.ranked_partitions.push_back(c);
  const std::string s = FormatMeanVarTable(mv, 10);
  EXPECT_NE(s.find("0.052200"), std::string::npos);
  EXPECT_NE(s.find("2 partitionings"), std::string::npos);
  EXPECT_NE(s.find("1.20e-04"), std::string::npos);
}

}  // namespace
}  // namespace sfa::core
