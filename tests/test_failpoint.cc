// Units for the deterministic fault-injection registry: spec parsing,
// trigger semantics (one-shot / times / every-Nth / seeded probability),
// action payloads, the zero-cost disarmed gate, and payload mutation.
// Labeled `fault` (with the store and deadline drills) — the suite the CI
// tier-1 matrix and the TSan job both run.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace sfa {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().DisarmAll(); }
  void TearDown() override { Failpoints::Instance().DisarmAll(); }

  Failpoints& fp() { return Failpoints::Instance(); }
};

TEST_F(FailpointTest, DisarmedRegistryFiresNothing) {
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_FALSE(fp().Evaluate("store.write").fired());
  EXPECT_EQ(fp().HitCount("store.write"), 0u);  // never armed: not even counted
}

TEST_F(FailpointTest, ArmCountsAndDisarmRestoresZeroCostGate) {
  ASSERT_TRUE(fp().Arm("a.site", "error(IOError)").ok());
  ASSERT_TRUE(fp().Arm("b.site", "delay(1)").ok());
  EXPECT_TRUE(Failpoints::AnyArmed());
  EXPECT_EQ(fp().armed(), (std::vector<std::string>{"a.site", "b.site"}));
  fp().Disarm("a.site");
  EXPECT_TRUE(Failpoints::AnyArmed());
  fp().DisarmAll();
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_TRUE(fp().armed().empty());
}

TEST_F(FailpointTest, ErrorActionCarriesCodeAndMessage) {
  ASSERT_TRUE(fp().Arm("s", "error(ResourceExhausted,disk full)").ok());
  const FailpointAction action = fp().Evaluate("s");
  ASSERT_EQ(action.kind, FailpointActionKind::kError);
  EXPECT_TRUE(action.status.IsResourceExhausted());
  EXPECT_EQ(action.status.message(), "disk full");
}

TEST_F(FailpointTest, ErrorActionDefaultMessageNamesTheSite) {
  ASSERT_TRUE(fp().Arm("store.write", "error(IOError)").ok());
  const FailpointAction action = fp().Evaluate("store.write");
  ASSERT_EQ(action.kind, FailpointActionKind::kError);
  EXPECT_TRUE(action.status.IsIOError());
  EXPECT_NE(action.status.message().find("store.write"), std::string::npos);
}

TEST_F(FailpointTest, ErrorActionParsesEveryStatusCodeName) {
  for (const char* code :
       {"InvalidArgument", "NotFound", "OutOfRange", "AlreadyExists",
        "FailedPrecondition", "IOError", "ParseError", "Internal",
        "NotImplemented", "ResourceExhausted", "Cancelled",
        "DeadlineExceeded"}) {
    ASSERT_TRUE(fp().Arm("s", std::string("error(") + code + ")").ok()) << code;
    EXPECT_STREQ(StatusCodeToString(fp().Evaluate("s").status.code()), code);
  }
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(fp().Arm("s", "once:error(IOError)").ok());
  EXPECT_TRUE(fp().Evaluate("s").fired());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(fp().Evaluate("s").fired());
  EXPECT_EQ(fp().HitCount("s"), 6u);
  EXPECT_EQ(fp().FireCount("s"), 1u);
}

TEST_F(FailpointTest, TimesFiresOnFirstNHits) {
  ASSERT_TRUE(fp().Arm("s", "times(3):error(IOError)").ok());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(fp().Evaluate("s").fired());
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(fp().Evaluate("s").fired());
  EXPECT_EQ(fp().FireCount("s"), 3u);
}

TEST_F(FailpointTest, EveryFiresOnMultiplesOfN) {
  ASSERT_TRUE(fp().Arm("s", "every(3):error(IOError)").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) fired.push_back(fp().Evaluate("s").fired());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FailpointTest, ProbIsDeterministicGivenSeed) {
  // The same seed twice (re-arming resets the per-site stream) must fire on
  // exactly the same hit indices — seeded probability is a reproducible
  // drill, not flakiness.
  std::vector<bool> first, second;
  ASSERT_TRUE(fp().Arm("s", "prob(0.4,1234):error(IOError)").ok());
  for (int i = 0; i < 64; ++i) first.push_back(fp().Evaluate("s").fired());
  ASSERT_TRUE(fp().Arm("s", "prob(0.4,1234):error(IOError)").ok());
  for (int i = 0; i < 64; ++i) second.push_back(fp().Evaluate("s").fired());
  EXPECT_EQ(first, second);
  // Sanity: p=0.4 over 64 draws neither never nor always fires.
  const size_t fires = fp().FireCount("s");
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FailpointTest, RearmingReplacesRuleAndResetsCounters) {
  ASSERT_TRUE(fp().Arm("s", "always:error(IOError)").ok());
  fp().Evaluate("s");
  fp().Evaluate("s");
  EXPECT_EQ(fp().HitCount("s"), 2u);
  ASSERT_TRUE(fp().Arm("s", "once:delay(1)").ok());
  EXPECT_EQ(fp().HitCount("s"), 0u);
  EXPECT_EQ(fp().Evaluate("s").kind, FailpointActionKind::kDelay);
}

TEST_F(FailpointTest, OffActionParsesButNeverFires) {
  ASSERT_TRUE(fp().Arm("s", "off").ok());
  EXPECT_TRUE(Failpoints::AnyArmed());  // armed, merely inert
  EXPECT_FALSE(fp().Evaluate("s").fired());
  EXPECT_EQ(fp().HitCount("s"), 1u);  // still counted: drills assert coverage
}

TEST_F(FailpointTest, MultiSiteSpecArmsEachEntry) {
  ASSERT_TRUE(fp()
                  .ArmFromSpec("store.write=every(2):truncate(16); "
                               "pipeline.dispatch=once:delay(1);")
                  .ok());
  EXPECT_EQ(fp().armed(),
            (std::vector<std::string>{"pipeline.dispatch", "store.write"}));
  EXPECT_FALSE(fp().Evaluate("store.write").fired());
  const FailpointAction action = fp().Evaluate("store.write");
  EXPECT_EQ(action.kind, FailpointActionKind::kTruncate);
  EXPECT_EQ(action.arg, 16u);
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_TRUE(fp().ArmFromSpec("no-equals-here").IsParseError());
  EXPECT_TRUE(fp().Arm("s", "explode(3)").IsParseError());
  EXPECT_TRUE(fp().Arm("s", "sometimes:delay(1)").IsParseError());
  EXPECT_TRUE(fp().Arm("s", "error(NoSuchCode)").IsParseError());
  EXPECT_TRUE(fp().Arm("s", "every(0):delay(1)").IsParseError());
  EXPECT_TRUE(fp().Arm("s", "prob(1.5,1):delay(1)").IsParseError());
  EXPECT_TRUE(fp().Arm("s", "delay(1").IsParseError());
  EXPECT_TRUE(fp().Arm("", "delay(1)").IsInvalidArgument());
  // Nothing half-armed by the rejected rules.
  EXPECT_FALSE(Failpoints::AnyArmed());
}

TEST_F(FailpointTest, SpecStopsAtFirstBadEntryKeepingEarlierOnes) {
  const Status s = fp().ArmFromSpec("good=delay(1);bad=wat(");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(fp().armed(), (std::vector<std::string>{"good"}));
}

TEST_F(FailpointTest, TruncateAndCorruptMutatePayloads) {
  std::string payload = "SFANULLD-0123456789";
  const std::string original = payload;

  FailpointAction truncate;
  truncate.kind = FailpointActionKind::kTruncate;
  truncate.arg = 8;
  Failpoints::MutatePayload(truncate, &payload);
  EXPECT_EQ(payload, "SFANULLD");
  truncate.arg = 100;  // never grows
  Failpoints::MutatePayload(truncate, &payload);
  EXPECT_EQ(payload, "SFANULLD");

  payload = original;
  FailpointAction corrupt;
  corrupt.kind = FailpointActionKind::kCorrupt;
  Failpoints::MutatePayload(corrupt, &payload);
  EXPECT_EQ(payload.size(), original.size());
  EXPECT_NE(payload, original);

  FailpointAction none;  // non-mutating kinds are no-ops
  Failpoints::MutatePayload(none, &payload);
  Failpoints::MutatePayload(none, nullptr);
}

TEST_F(FailpointTest, StatusReturningMacroInjectsAndPassesThrough) {
  auto guarded = []() -> Status {
    SFA_FAILPOINT("macro.site");
    return Status::OK();
  };
  EXPECT_TRUE(guarded().ok());
  ASSERT_TRUE(fp().Arm("macro.site", "once:error(IOError,injected)").ok());
  Status s = guarded();
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "injected");
  EXPECT_TRUE(guarded().ok());  // one-shot spent
}

TEST_F(FailpointTest, MutateMacroTearsThePayloadInPlace) {
  auto write = [](std::string frame) -> Result<std::string> {
    SFA_FAILPOINT_MUTATE("macro.write", &frame);
    return frame;
  };
  ASSERT_TRUE(fp().Arm("macro.write", "always:truncate(4)").ok());
  auto torn = write("0123456789");
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(*torn, "0123");
  ASSERT_TRUE(fp().Arm("macro.write", "always:error(IOError)").ok());
  EXPECT_TRUE(write("0123456789").status().IsIOError());
}

TEST_F(FailpointTest, ConcurrentEvaluationCountsEveryHitExactlyOnce) {
  ASSERT_TRUE(fp().Arm("s", "every(7):delay(1)").ok());
  constexpr int kThreads = 8, kPerThread = 250;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) fp().Evaluate("s");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fp().HitCount("s"), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(fp().FireCount("s"),
            static_cast<uint64_t>(kThreads * kPerThread / 7));
}

}  // namespace
}  // namespace sfa
