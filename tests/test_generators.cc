// Tests for the dataset generators: Synth, SemiSynth, LarSim, CrimeSim.
// These verify the structural properties the paper's evaluation depends on,
// at reduced sizes for speed.
#include <gtest/gtest.h>

#include "data/crime_sim.h"
#include "data/lar_sim.h"
#include "data/synth.h"
#include "data/us_geography.h"
#include "geo/grid.h"

namespace sfa::data {
namespace {

TEST(Synth, RejectsBadOptions) {
  SynthOptions opts;
  opts.num_outcomes = 0;
  EXPECT_FALSE(MakeSynth(opts).ok());
  opts = SynthOptions();
  opts.left_positive_rate = 1.5;
  EXPECT_FALSE(MakeSynth(opts).ok());
  opts = SynthOptions();
  opts.extent = geo::Rect(0, 0, 0, 1);
  EXPECT_FALSE(MakeSynth(opts).ok());
}

TEST(Synth, HalvesHaveDesignedRates) {
  SynthOptions opts;
  opts.num_outcomes = 20000;
  auto ds = MakeSynth(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 20000u);
  const double mid_x = opts.extent.Center().x;
  uint64_t left_n = 0, left_p = 0, right_n = 0, right_p = 0;
  for (size_t i = 0; i < ds->size(); ++i) {
    if (ds->locations()[i].x < mid_x) {
      ++left_n;
      left_p += ds->predicted()[i];
    } else {
      ++right_n;
      right_p += ds->predicted()[i];
    }
  }
  EXPECT_EQ(left_n, 10000u);
  EXPECT_EQ(right_n, 10000u);
  // Left rate ≈ 2/3, right ≈ 1/3 (the paper's "twice as many positives").
  EXPECT_NEAR(static_cast<double>(left_p) / left_n, 2.0 / 3, 0.02);
  EXPECT_NEAR(static_cast<double>(right_p) / right_n, 1.0 / 3, 0.02);
}

TEST(Synth, AllPointsInsideExtent) {
  SynthOptions opts;
  opts.num_outcomes = 1000;
  auto ds = MakeSynth(opts);
  ASSERT_TRUE(ds.ok());
  for (const auto& p : ds->locations()) {
    EXPECT_TRUE(opts.extent.Contains(p));
  }
}

TEST(Synth, DeterministicForSeed) {
  SynthOptions opts;
  opts.num_outcomes = 500;
  auto a = MakeSynth(opts);
  auto b = MakeSynth(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->predicted(), b->predicted());
  EXPECT_EQ(a->locations()[123], b->locations()[123]);
  opts.seed += 1;
  auto c = MakeSynth(opts);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->predicted(), c->predicted());
}

TEST(SemiSynth, SamplesInsideFloridaWithFairLabels) {
  // Base locations: a grid straddling Florida and the Atlantic.
  std::vector<geo::Point> base;
  for (double lon = -84.0; lon <= -78.0; lon += 0.1) {
    for (double lat = 25.0; lat <= 31.0; lat += 0.1) {
      base.push_back({lon, lat});
    }
  }
  SemiSynthOptions opts;
  opts.num_outcomes = 5000;
  auto ds = MakeSemiSynth(base, opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 5000u);
  const geo::Polygon& florida = FloridaOutline();
  for (const auto& p : ds->locations()) {
    ASSERT_TRUE(florida.Contains(p));
  }
  EXPECT_NEAR(ds->PositiveRate(), 0.5, 0.02);
}

TEST(SemiSynth, FailsWithoutFloridaLocations) {
  const std::vector<geo::Point> base = {{-74.0, 40.7}, {-118.2, 34.0}};
  EXPECT_TRUE(MakeSemiSynth(base, {}).status().IsFailedPrecondition());
}

TEST(SemiSynthStandalone, GeneratesClusteredFloridaLocations) {
  SemiSynthOptions opts;
  opts.num_outcomes = 8000;
  auto ds = MakeSemiSynthStandalone(opts);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 8000u);
  const geo::Polygon& florida = FloridaOutline();
  for (const auto& p : ds->locations()) ASSERT_TRUE(florida.Contains(p));
  EXPECT_NEAR(ds->PositiveRate(), 0.5, 0.02);
  // Locations are (a) essentially all distinct and (b) strongly clustered:
  // a Miami-sized box should hold far more than its area share.
  EXPECT_GT(ds->CountDistinctLocations(), 7990u);
  const geo::Rect miami(-80.6, 25.4, -79.9, 26.2);
  size_t in_miami = 0;
  for (const auto& p : ds->locations()) in_miami += miami.Contains(p);
  EXPECT_GT(in_miami, 8000u / 20);  // >5% of points in <1% of the state bbox
}

TEST(SemiSynthStandalone, RejectsBadRuralFraction) {
  SemiSynthOptions opts;
  opts.rural_fraction = 1.5;
  EXPECT_FALSE(MakeSemiSynthStandalone(opts).ok());
}

TEST(SemiSynthStandalone, DeterministicForSeed) {
  SemiSynthOptions opts;
  opts.num_outcomes = 500;
  auto a = MakeSemiSynthStandalone(opts);
  auto b = MakeSemiSynthStandalone(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->predicted(), b->predicted());
  EXPECT_EQ(a->locations()[17], b->locations()[17]);
}

LarSimOptions SmallLar() {
  LarSimOptions opts;
  opts.num_locations = 5000;
  opts.num_applications = 20000;
  return opts;
}

TEST(LarSim, RejectsBadOptions) {
  LarSimOptions opts = SmallLar();
  opts.num_applications = 100;  // fewer than locations
  EXPECT_FALSE(MakeLarSim(opts).ok());
  opts = SmallLar();
  opts.overall_positive_rate = 1.5;
  EXPECT_FALSE(MakeLarSim(opts).ok());
  opts = SmallLar();
  opts.planted.push_back({"bad", geo::Rect(0, 0, 1, 1), 2.0});
  EXPECT_FALSE(MakeLarSim(opts).ok());
}

TEST(LarSim, HitsTargetPositiveRate) {
  auto result = MakeLarSim(SmallLar());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset.size(), 20000u);
  EXPECT_NEAR(result->dataset.PositiveRate(), 0.62, 0.02);
}

TEST(LarSim, PlantedRegionsHavePlantedRates) {
  LarSimOptions opts = SmallLar();
  opts.num_applications = 100000;
  opts.num_locations = 20000;
  auto result = MakeLarSim(opts);
  ASSERT_TRUE(result.ok());
  // Check the strongest planted regions empirically.
  for (size_t r = 0; r < opts.planted.size(); ++r) {
    const PlantedRegion& region = opts.planted[r];
    uint64_t n = 0, p = 0;
    for (size_t i = 0; i < result->dataset.size(); ++i) {
      if (region.rect.Contains(result->dataset.locations()[i])) {
        // Respect first-match-wins: skip points claimed by earlier regions.
        bool claimed_earlier = false;
        for (size_t q = 0; q < r; ++q) {
          if (opts.planted[q].rect.Contains(result->dataset.locations()[i])) {
            claimed_earlier = true;
            break;
          }
        }
        if (claimed_earlier) continue;
        ++n;
        p += result->dataset.predicted()[i];
      }
    }
    ASSERT_EQ(n, result->planted_counts[r]) << region.label;
    if (n >= 500) {
      EXPECT_NEAR(static_cast<double>(p) / static_cast<double>(n),
                  region.positive_rate, 0.05)
          << region.label;
    }
  }
}

TEST(LarSim, LocationsAreIrregular) {
  // Spatial density must be highly non-uniform (metro clustering): the most
  // crowded 10% of grid cells should hold well over half the points.
  auto result = MakeLarSim(SmallLar());
  ASSERT_TRUE(result.ok());
  auto grid = geo::GridSpec::Create(ContinentalUsBounds(), 40, 20);
  ASSERT_TRUE(grid.ok());
  std::vector<uint32_t> counts(grid->num_cells(), 0);
  for (const auto& p : result->dataset.locations()) {
    if (grid->Covers(p)) ++counts[grid->CellOf(p)];
  }
  std::sort(counts.begin(), counts.end(), std::greater<uint32_t>());
  uint64_t total = 0, top = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i < counts.size() / 10) top += counts[i];
  }
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.6);
}

TEST(LarSim, NoPlantedRegionsMeansUniformRate) {
  LarSimOptions opts = SmallLar();
  opts.planted.clear();
  auto result = MakeLarSim(opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->base_rate, 0.62, 1e-9);
  EXPECT_NEAR(result->dataset.PositiveRate(), 0.62, 0.02);
  EXPECT_TRUE(result->planted_counts.empty());
}

TEST(LarSim, DeterministicForSeed) {
  auto a = MakeLarSim(SmallLar());
  auto b = MakeLarSim(SmallLar());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->dataset.predicted(), b->dataset.predicted());
  EXPECT_EQ(a->base_rate, b->base_rate);
}

CrimeSimOptions SmallCrime() {
  CrimeSimOptions opts;
  opts.num_incidents = 30000;
  return opts;
}

TEST(CrimeSim, GeneratesIncidentsInLaBounds) {
  auto sim = MakeCrimeIncidents(SmallCrime());
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->table.num_rows(), 30000u);
  EXPECT_EQ(sim->table.num_features(), 7u);
  EXPECT_EQ(sim->locations.size(), 30000u);
  const geo::Rect la = LosAngelesBounds();
  for (const auto& p : sim->locations) {
    ASSERT_TRUE(p.x >= la.min_x && p.x <= la.max_x);
    ASSERT_TRUE(p.y >= la.min_y && p.y <= la.max_y);
  }
}

TEST(CrimeSim, FeatureRangesAreValid) {
  auto sim = MakeCrimeIncidents(SmallCrime());
  ASSERT_TRUE(sim.ok());
  for (size_t i = 0; i < sim->table.num_rows(); ++i) {
    ASSERT_LT(sim->table.Feature(i, 0), 24);   // hour
    ASSERT_LT(sim->table.Feature(i, 1), 21);   // precinct
    ASSERT_LT(sim->table.Feature(i, 2), 10);   // age bucket
    ASSERT_LT(sim->table.Feature(i, 3), 3);    // sex
    ASSERT_LT(sim->table.Feature(i, 4), 6);    // descent
    ASSERT_LT(sim->table.Feature(i, 5), 10);   // premise
    ASSERT_LT(sim->table.Feature(i, 6), 8);    // weapon
  }
}

TEST(CrimeSim, SeriousRateIsModerate) {
  auto sim = MakeCrimeIncidents(SmallCrime());
  ASSERT_TRUE(sim.ok());
  const double rate = sim->table.PositiveRate();
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.45);
}

TEST(CrimeSim, RejectsBadScramble) {
  CrimeSimOptions opts = SmallCrime();
  opts.hollywood_scramble = 1.5;
  EXPECT_FALSE(MakeCrimeIncidents(opts).ok());
}

TEST(CrimeAudit, EndToEndBundle) {
  CrimeAuditOptions opts;
  opts.sim.num_incidents = 40000;
  opts.forest.num_trees = 8;
  opts.forest.tree.max_depth = 8;
  auto bundle = BuildCrimeAudit(opts);
  ASSERT_TRUE(bundle.ok()) << bundle.status();
  EXPECT_EQ(bundle->num_test, 12000u);
  EXPECT_GT(bundle->model_accuracy, 0.7);
  EXPECT_GT(bundle->global_tpr, 0.3);
  EXPECT_LT(bundle->global_tpr, 0.95);
  // The equal-opportunity view holds only Y=1 individuals, and its positive
  // rate equals the model's TPR.
  ASSERT_TRUE(bundle->equal_opportunity.has_actual());
  for (uint8_t y : bundle->equal_opportunity.actual()) ASSERT_EQ(y, 1);
  EXPECT_NEAR(bundle->equal_opportunity.PositiveRate(), bundle->global_tpr, 1e-9);
  EXPECT_EQ(bundle->equal_opportunity.size(), bundle->num_test_positives);
}

TEST(CrimeAudit, HollywoodTprIsDepressed) {
  CrimeAuditOptions opts;
  opts.sim.num_incidents = 120000;
  opts.forest.num_trees = 10;
  auto bundle = BuildCrimeAudit(opts);
  ASSERT_TRUE(bundle.ok());
  // Hollywood precinct center ±0.03 deg (location noise sigma).
  const geo::Rect hollywood(-118.33 - 0.06, 34.10 - 0.06, -118.33 + 0.06,
                            34.10 + 0.06);
  uint64_t n = 0, p = 0;
  const auto& eo = bundle->equal_opportunity;
  for (size_t i = 0; i < eo.size(); ++i) {
    if (hollywood.Contains(eo.locations()[i])) {
      ++n;
      p += eo.predicted()[i];
    }
  }
  ASSERT_GT(n, 100u);
  const double local_tpr = static_cast<double>(p) / static_cast<double>(n);
  EXPECT_LT(local_tpr, bundle->global_tpr - 0.03);
}

TEST(UsGeography, MetroTableIsPlausible) {
  const auto& metros = UsMetros();
  EXPECT_GT(metros.size(), 50u);
  const geo::Rect us = ContinentalUsBounds();
  for (const Metro& m : metros) {
    EXPECT_TRUE(us.Contains(m.center)) << m.name;
    EXPECT_GT(m.population_m, 0.0);
  }
  // Sorted descending by population.
  for (size_t i = 1; i < metros.size(); ++i) {
    EXPECT_GE(metros[i - 1].population_m, metros[i].population_m);
  }
}

}  // namespace
}  // namespace sfa::data
