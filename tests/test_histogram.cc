// Tests for the fixed-bin histogram used in Monte Carlo reports.
#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace sfa::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.7);
  h.Add(9.9);
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 0u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(99.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, BinLowEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLow(2), 3.0);
}

TEST(Histogram, FractionAtOrAboveUsesExactValues) {
  Histogram h(0.0, 10.0, 5);
  h.AddAll({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(h.FractionAtOrAbove(2.5), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionAtOrAbove(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.FractionAtOrAbove(4.0), 0.25);
  EXPECT_DOUBLE_EQ(h.FractionAtOrAbove(4.1), 0.0);
}

TEST(Histogram, EmptyFraction) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.FractionAtOrAbove(0.5), 0.0);
}

TEST(Histogram, AsciiRenderingHasOneRowPerBin) {
  Histogram h(0.0, 3.0, 3);
  h.AddAll({0.5, 1.5, 1.6, 2.5});
  const std::string art = h.ToAscii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(HistogramDeathTest, RejectsEmptyRange) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 4), "empty");
}

}  // namespace
}  // namespace sfa::stats
