// Tests for the MeanVar baseline (Xie et al. 2022) — including the paper's
// central qualitative claim: MeanVar inverts the fairness ordering of a
// fair-by-design irregular dataset vs an unfair-by-design uniform one.
#include "core/meanvar.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/synth.h"

namespace sfa::core {
namespace {

geo::Partitioning Halves(const geo::Rect& extent) {
  auto p = geo::Partitioning::Create(extent, {extent.Center().x}, {});
  EXPECT_TRUE(p.ok());
  return *p;
}

TEST(MeanVar, RejectsBadInputs) {
  data::OutcomeDataset empty;
  EXPECT_FALSE(ComputeMeanVar(empty, {Halves(geo::Rect(0, 0, 2, 1))}).ok());
  data::OutcomeDataset ds;
  ds.Add({0.5, 0.5}, 1);
  EXPECT_FALSE(ComputeMeanVar(ds, {}).ok());
}

TEST(MeanVar, PerfectlyUniformRatesGiveZeroVariance) {
  data::OutcomeDataset ds;
  // Two partitions, each 2 points with one positive → rate 0.5 everywhere.
  ds.Add({0.25, 0.5}, 1);
  ds.Add({0.30, 0.5}, 0);
  ds.Add({1.25, 0.5}, 1);
  ds.Add({1.30, 0.5}, 0);
  auto result = ComputeMeanVar(ds, {Halves(geo::Rect(0, 0, 2, 1))});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->mean_var, 0.0);
}

TEST(MeanVar, KnownTwoPartitionVariance) {
  data::OutcomeDataset ds;
  // Left rate 1.0 (2/2), right rate 0.0 (0/2): measures {1, 0}, mean 0.5,
  // population variance 0.25.
  ds.Add({0.25, 0.5}, 1);
  ds.Add({0.30, 0.5}, 1);
  ds.Add({1.25, 0.5}, 0);
  ds.Add({1.30, 0.5}, 0);
  auto result = ComputeMeanVar(ds, {Halves(geo::Rect(0, 0, 2, 1))});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->mean_var, 0.25);
  ASSERT_EQ(result->per_partitioning_variance.size(), 1u);
  EXPECT_DOUBLE_EQ(result->per_partitioning_variance[0], 0.25);
  // Contributions: each partition contributes 0.25^2... deviation^2/(K*T) =
  // 0.25/2 = 0.125, summing to the mean_var.
  double total_contribution = 0.0;
  for (const auto& c : result->ranked_partitions) {
    total_contribution += c.contribution;
  }
  EXPECT_NEAR(total_contribution, result->mean_var, 1e-12);
}

TEST(MeanVar, EmptyPartitionsAreSkippedByDefault) {
  data::OutcomeDataset ds;
  ds.Add({0.25, 0.5}, 1);
  ds.Add({0.30, 0.5}, 0);
  // Right half empty.
  auto result = ComputeMeanVar(ds, {Halves(geo::Rect(0, 0, 2, 1))});
  ASSERT_TRUE(result.ok());
  // Only one non-empty partition → variance 0.
  EXPECT_DOUBLE_EQ(result->mean_var, 0.0);
  EXPECT_EQ(result->ranked_partitions.size(), 1u);
}

TEST(MeanVar, IncludingEmptyPartitionsChangesTheScore) {
  data::OutcomeDataset ds;
  ds.Add({0.25, 0.5}, 1);
  ds.Add({0.30, 0.5}, 1);
  MeanVarOptions keep_empty;
  keep_empty.skip_empty_partitions = false;
  auto result =
      ComputeMeanVar(ds, {Halves(geo::Rect(0, 0, 2, 1))}, keep_empty);
  ASSERT_TRUE(result.ok());
  // Measures {1.0, 0.0 (empty)} → variance 0.25.
  EXPECT_DOUBLE_EQ(result->mean_var, 0.25);
  EXPECT_EQ(result->ranked_partitions.size(), 2u);
}

TEST(MeanVar, ContributionsSumToMeanVar) {
  sfa::Rng rng(91);
  data::OutcomeDataset ds;
  for (int i = 0; i < 2000; ++i) {
    ds.Add({rng.Uniform(0, 2), rng.Uniform(0, 1)}, rng.Bernoulli(0.4) ? 1 : 0);
  }
  auto partitionings =
      geo::MakeRandomPartitionings(geo::Rect(0, 0, 2, 1), 7, 3, 9, &rng);
  ASSERT_TRUE(partitionings.ok());
  auto result = ComputeMeanVar(ds, *partitionings);
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (const auto& c : result->ranked_partitions) total += c.contribution;
  EXPECT_NEAR(total, result->mean_var, 1e-9);
  // Ranked descending.
  for (size_t i = 1; i < result->ranked_partitions.size(); ++i) {
    ASSERT_LE(result->ranked_partitions[i].contribution,
              result->ranked_partitions[i - 1].contribution);
  }
}

TEST(MeanVar, SparseExtremePartitionsDominateTheRanking) {
  // The failure mode the paper documents (Fig. 2a): a partition with very
  // few, all-negative points outranks a dense partition with a moderate
  // deviation.
  sfa::Rng rng(92);
  data::OutcomeDataset ds;
  // Dense background at rate 0.6 across the left partition, dense moderate
  // deviation (rate 0.75) in the middle, 4 all-negative points on the right.
  for (int i = 0; i < 3000; ++i) {
    ds.Add({rng.Uniform(0.0, 1.0), rng.Uniform(0, 1)}, rng.Bernoulli(0.6) ? 1 : 0);
  }
  for (int i = 0; i < 3000; ++i) {
    ds.Add({rng.Uniform(1.0, 2.0), rng.Uniform(0, 1)}, rng.Bernoulli(0.75) ? 1 : 0);
  }
  for (int i = 0; i < 4; ++i) {
    ds.Add({rng.Uniform(2.0, 3.0), rng.Uniform(0, 1)}, 0);
  }
  auto thirds = geo::Partitioning::Create(geo::Rect(0, 0, 3, 1), {1.0, 2.0}, {});
  ASSERT_TRUE(thirds.ok());
  auto result = ComputeMeanVar(ds, {*thirds});
  ASSERT_TRUE(result.ok());
  // The sparse all-negative partition has measure 0 → by far the farthest
  // from the mean → ranked first.
  EXPECT_EQ(result->ranked_partitions[0].n, 4u);
  EXPECT_DOUBLE_EQ(result->ranked_partitions[0].measure, 0.0);
}

TEST(MeanVar, ReproducesThePaperInversionAtTestScale) {
  // Fair-by-design but irregular (SemiSynth-like) vs unfair-by-design
  // uniform (Synth): MeanVar must order the fair one as MORE unfair.
  sfa::Rng rng(93);

  // Irregular fair data: tight clusters + sparse scatter, labels Bernoulli(.5).
  data::OutcomeDataset fair("fair-irregular");
  for (int c = 0; c < 8; ++c) {
    const geo::Point center{rng.Uniform(0.2, 1.8), rng.Uniform(0.2, 0.8)};
    for (int i = 0; i < 400; ++i) {
      fair.Add({rng.Normal(center.x, 0.02), rng.Normal(center.y, 0.02)},
               rng.Bernoulli(0.5) ? 1 : 0);
    }
  }
  for (int i = 0; i < 300; ++i) {  // sparse scatter → tiny partitions
    fair.Add({rng.Uniform(0, 2), rng.Uniform(0, 1)}, rng.Bernoulli(0.5) ? 1 : 0);
  }

  data::SynthOptions synth_opts;
  synth_opts.num_outcomes = fair.size();
  auto unfair = data::MakeSynth(synth_opts);
  ASSERT_TRUE(unfair.ok());

  auto partitionings = geo::MakeRandomPartitionings(geo::Rect(0, 0, 2, 1), 40,
                                                    10, 40, &rng);
  ASSERT_TRUE(partitionings.ok());
  auto mv_fair = ComputeMeanVar(fair, *partitionings);
  auto mv_unfair = ComputeMeanVar(*unfair, *partitionings);
  ASSERT_TRUE(mv_fair.ok() && mv_unfair.ok());
  // The inversion: the fair irregular dataset scores as less fair.
  EXPECT_GT(mv_fair->mean_var, mv_unfair->mean_var);
}

}  // namespace
}  // namespace sfa::core
