// Equivalence suite for the batched Monte Carlo world engine: the batched
// strategy must reproduce the per-world reference bit-for-bit — same
// NullDistribution for the same seed — across every bundled region family,
// both null models, any batch size, and parallel on/off. Also checks the
// batch counting interface against scalar counting directly, the engine's
// inlined table LLR against the stats layer, and the closed-form cell
// sampler's distributional agreement with point-level labeling.
#include "core/mc_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/grid_family.h"
#include "core/knn_circle_family.h"
#include "core/partitioning_family.h"
#include "core/rectangle_sweep_family.h"
#include "core/significance.h"
#include "core/square_family.h"
#include "geo/partitioning.h"
#include "stats/bernoulli_scan.h"

namespace sfa::core {
namespace {

constexpr size_t kPoints = 700;
constexpr double kRho = 0.43;
constexpr uint64_t kPositives = 300;

std::vector<geo::Point> Cloud(uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::Point> pts(kPoints);
  for (auto& p : pts) {
    if (rng.Bernoulli(0.6)) {
      p = {rng.Normal(4, 0.8), rng.Normal(6, 0.8)};
    } else {
      p = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    }
  }
  return pts;
}

struct NamedFamily {
  std::string name;
  std::unique_ptr<RegionFamily> family;
};

std::vector<NamedFamily> AllFamilies() {
  const auto pts = Cloud(41);
  std::vector<NamedFamily> out;

  auto grid = GridPartitionFamily::Create(pts, 8, 6);
  EXPECT_TRUE(grid.ok());
  out.push_back({"grid", std::move(*grid)});

  const geo::Rect extent = geo::Rect::BoundingBox(pts);
  Rng prng(7);
  auto partitionings = geo::MakeRandomPartitionings(extent, 3, 2, 5, &prng);
  EXPECT_TRUE(partitionings.ok());
  auto collection = PartitioningCollectionFamily::Create(pts, std::move(*partitionings));
  EXPECT_TRUE(collection.ok());
  out.push_back({"partitioning-collection", std::move(*collection)});

  auto single = geo::MakeRandomPartitionings(extent, 1, 3, 6, &prng);
  EXPECT_TRUE(single.ok());
  auto single_family = PartitioningCollectionFamily::Create(pts, std::move(*single));
  EXPECT_TRUE(single_family.ok());
  out.push_back({"single-partitioning", std::move(*single_family)});

  // Both counting backends of the overlapping families ride through the
  // whole engine equivalence suite.
  SquareScanOptions square_opts;
  Rng crng(13);
  for (int i = 0; i < 12; ++i) {
    square_opts.centers.push_back({crng.Uniform(0, 10), crng.Uniform(0, 10)});
  }
  square_opts.side_lengths = SquareScanOptions::DefaultSideLengths(0.5, 3.0, 5);
  auto square = SquareScanFamily::Create(pts, square_opts);
  EXPECT_TRUE(square.ok());
  out.push_back({"square", std::move(*square)});
  square_opts.backend = CountingBackend::kDenseBits;
  auto square_dense = SquareScanFamily::Create(pts, square_opts);
  EXPECT_TRUE(square_dense.ok());
  out.push_back({"square-dense", std::move(*square_dense)});

  KnnCircleOptions knn_opts;
  for (int i = 0; i < 10; ++i) {
    knn_opts.centers.push_back({crng.Uniform(0, 10), crng.Uniform(0, 10)});
  }
  auto knn = KnnCircleFamily::Create(pts, knn_opts);
  EXPECT_TRUE(knn.ok());
  out.push_back({"knn-circle", std::move(*knn)});
  knn_opts.backend = CountingBackend::kDenseBits;
  auto knn_dense = KnnCircleFamily::Create(pts, knn_opts);
  EXPECT_TRUE(knn_dense.ok());
  out.push_back({"knn-circle-dense", std::move(*knn_dense)});

  auto sweep = RectangleSweepFamily::Create(pts, 6, 5);
  EXPECT_TRUE(sweep.ok());
  out.push_back({"rectangle-sweep", std::move(*sweep)});

  return out;
}

NullDistribution Simulate(const RegionFamily& family, const MonteCarloOptions& mc) {
  auto dist = SimulateNull(family, kRho, kPositives,
                           stats::ScanDirection::kTwoSided, mc);
  EXPECT_TRUE(dist.ok());
  return *dist;
}

// The batched engine must equal the per-world reference exactly — same
// maxima, double-for-double — for every family, both null models, and
// parallel on/off.
TEST(McEngineEquivalence, BatchedMatchesReferenceExactly) {
  const auto families = AllFamilies();
  for (const auto& [name, family] : families) {
    for (NullModel null_model : {NullModel::kBernoulli, NullModel::kPermutation}) {
      MonteCarloOptions mc;
      mc.num_worlds = 60;
      mc.seed = 2024;
      mc.null_model = null_model;
      mc.parallel = false;
      mc.engine = McEngine::kReference;
      const NullDistribution reference = Simulate(*family, mc);

      for (bool parallel : {false, true}) {
        for (McEngine engine : {McEngine::kBatched, McEngine::kReference}) {
          mc.parallel = parallel;
          mc.engine = engine;
          const NullDistribution run = Simulate(*family, mc);
          EXPECT_EQ(run.MaximaVector(), reference.MaximaVector())
              << name << " / " << NullModelToString(null_model) << " / "
              << McEngineToString(engine) << " / parallel=" << parallel;
        }
      }
    }
  }
}

// Batch size is a performance knob, never a semantic one.
TEST(McEngineEquivalence, BatchSizeNeverChangesResults) {
  const auto families = AllFamilies();
  for (const auto& [name, family] : families) {
    MonteCarloOptions mc;
    mc.num_worlds = 45;
    mc.seed = 5;
    mc.batch_size = 1;
    const NullDistribution baseline = Simulate(*family, mc);
    for (uint32_t batch_size : {2u, 3u, 8u, 64u}) {
      mc.batch_size = batch_size;
      const NullDistribution run = Simulate(*family, mc);
      EXPECT_EQ(run.MaximaVector(), baseline.MaximaVector())
          << name << " batch_size=" << batch_size;
    }
  }
}

// CountPositivesBatch is integer-exact against scalar CountPositives for
// every family (including the tuned overrides).
TEST(McEngineEquivalence, BatchCountingMatchesScalarCounting) {
  const auto families = AllFamilies();
  Rng rng(77);
  constexpr size_t kWorlds = 7;  // exercises the 4-wide block + tail kernels
  std::vector<Labels> labels;
  std::vector<const Labels*> ptrs;
  for (size_t b = 0; b < kWorlds; ++b) {
    labels.push_back(Labels::SampleBernoulli(kPoints, 0.37, &rng));
  }
  for (const auto& label : labels) ptrs.push_back(&label);
  for (const auto& [name, family] : families) {
    std::vector<uint64_t> batched(kWorlds * family->num_regions());
    family->CountPositivesBatch(ptrs.data(), kWorlds, batched.data());
    for (size_t b = 0; b < kWorlds; ++b) {
      std::vector<uint64_t> scalar;
      family->CountPositives(*ptrs[b], &scalar);
      const std::vector<uint64_t> row(
          batched.begin() + b * family->num_regions(),
          batched.begin() + (b + 1) * family->num_regions());
      EXPECT_EQ(row, scalar) << name << " world " << b;
    }
  }
}

// With closed-form sampling off, the engine's per-world maxima must equal a
// hand-rolled oracle: sample the same labels, count with the scalar
// interface, evaluate every region through the stats-layer table LLR.
TEST(McEngineEquivalence, EngineMatchesStatsLayerOracle) {
  const auto pts = Cloud(41);
  auto family = GridPartitionFamily::Create(pts, 8, 6);
  ASSERT_TRUE(family.ok());

  MonteCarloOptions mc;
  mc.num_worlds = 25;
  mc.seed = 99;
  mc.closed_form_cells = false;
  const NullDistribution dist = Simulate(**family, mc);

  const stats::LogLikelihoodTable table(kPoints);
  Rng root(mc.seed);
  std::vector<double> oracle(mc.num_worlds);
  for (size_t w = 0; w < mc.num_worlds; ++w) {
    Rng rng = root.Split(w);
    const Labels labels = Labels::SampleBernoulli(kPoints, kRho, &rng);
    std::vector<uint64_t> positives;
    (*family)->CountPositives(labels, &positives);
    double max_llr = 0.0;
    for (size_t r = 0; r < (*family)->num_regions(); ++r) {
      stats::ScanCounts counts;
      counts.n = (*family)->PointCount(r);
      counts.p = positives[r];
      counts.total_n = kPoints;
      counts.total_p = labels.positive_count();
      max_llr = std::max(max_llr, stats::BernoulliLogLikelihoodRatio(
                                      counts, stats::ScanDirection::kTwoSided, table));
    }
    oracle[w] = max_llr;
  }
  EXPECT_EQ(dist.MaximaVector(), NullDistribution(oracle).MaximaVector());
}

// Closed-form cell sampling draws a different RNG stream but the same
// distribution: per-cell counts of i.i.d. Bernoulli labels are independent
// binomials. Compare summary statistics of the two nulls (fixed seeds, so
// this is deterministic, with tolerances far above Monte Carlo noise).
TEST(McEngine, ClosedFormMatchesPointLevelDistributionally) {
  const auto pts = Cloud(41);
  auto family = GridPartitionFamily::Create(pts, 8, 6);
  ASSERT_TRUE(family.ok());

  MonteCarloOptions mc;
  mc.num_worlds = 499;
  mc.seed = 17;
  mc.closed_form_cells = true;
  const NullDistribution closed = Simulate(**family, mc);
  mc.closed_form_cells = false;
  const NullDistribution point_level = Simulate(**family, mc);

  const auto mean = [](const NullDistribution& d) {
    double sum = 0.0;
    for (double v : d.sorted_max()) sum += v;
    return sum / static_cast<double>(d.sorted_max().size());
  };
  const double m_closed = mean(closed);
  const double m_point = mean(point_level);
  EXPECT_NEAR(m_closed, m_point, 0.15 * std::max(m_closed, m_point));
  const double c_closed = closed.CriticalValue(0.05);
  const double c_point = point_level.CriticalValue(0.05);
  EXPECT_NEAR(c_closed, c_point, 0.2 * std::max(c_closed, c_point));
}

// Closed-form sampling only applies where it is sound: families exposing a
// cell decomposition, and only under the Bernoulli null.
TEST(McEngine, CellDecompositionAvailability) {
  const auto families = AllFamilies();
  for (const auto& [name, family] : families) {
    const bool has_cells = family->cell_decomposition() != nullptr;
    const bool expected = name == "grid" || name == "single-partitioning" ||
                          name == "rectangle-sweep";
    EXPECT_EQ(has_cells, expected) << name;
    if (has_cells) {
      const CellDecomposition& cells = *family->cell_decomposition();
      uint64_t total = cells.num_outside;
      for (uint32_t c : cells.cell_counts) total += c;
      EXPECT_EQ(total, family->num_points()) << name;
    }
  }
}

// Identical options => identical distribution, run to run (the engine holds
// no hidden mutable state; thread-local arenas never leak into results).
TEST(McEngine, Reproducible) {
  const auto families = AllFamilies();
  for (const auto& [name, family] : families) {
    MonteCarloOptions mc;
    mc.num_worlds = 30;
    mc.seed = 3;
    const NullDistribution a = Simulate(*family, mc);
    const NullDistribution b = Simulate(*family, mc);
    EXPECT_EQ(a.MaximaVector(), b.MaximaVector()) << name;
  }
}

}  // namespace
}  // namespace sfa::core
