// Stress and determinism coverage of the pipeline's streaming path. The
// headline assertions mirror the batch determinism contract: for the same
// request set (seeds included), the streamed response set is byte-identical
// to batch Run(), under producer contention, tiny bounded queues, priority
// mixing, and persistent-store warm starts. Admission behavior is pinned
// where it is deterministic by design: with dispatch paused, a capacity-C
// queue admits exactly C requests no matter how many producers race, and a
// single resumed worker drains strictly in priority order. Labeled `stream`
// (with test_calibration_store.cc) and run under TSan in CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/audit_pipeline.h"
#include "core/calibration_store.h"
#include "core/grid_family.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::ExpectIdenticalResult;
using core::testing::MakePlantedCity;

/// Fixture: two cities × two families, mixed seeds/directions — enough key
/// diversity that streams exercise both cache sharing and fresh simulation.
struct StreamFixture {
  data::OutcomeDataset city_a = MakePlantedCity(311, 2000, 0.40, 0.55, "sa");
  data::OutcomeDataset city_b = MakePlantedCity(322, 1500, 0.55, 0.55, "sb");
  std::unique_ptr<GridPartitionFamily> family_a;
  std::unique_ptr<GridPartitionFamily> family_b;

  StreamFixture() {
    auto fa = GridPartitionFamily::Create(city_a.locations(), 7, 7);
    auto fb = GridPartitionFamily::Create(city_b.locations(), 6, 9);
    SFA_CHECK_OK(fa.status());
    SFA_CHECK_OK(fb.status());
    family_a = std::move(fa).value();
    family_b = std::move(fb).value();
  }

  /// `count` requests cycling over (city, direction, seed-class): heavy key
  /// collision by design, but more than one unique calibration.
  std::vector<AuditRequest> MakeRequests(size_t count) const {
    std::vector<AuditRequest> requests;
    requests.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      AuditRequest r;
      r.id = "req-" + std::to_string(i);
      const bool use_a = (i % 3) != 2;
      r.dataset = use_a ? &city_a : &city_b;
      r.family = use_a ? family_a.get() : family_b.get();
      r.options.alpha = (i % 2 == 0) ? 0.05 : 0.01;
      r.options.direction = (i % 4 == 1) ? stats::ScanDirection::kLow
                                         : stats::ScanDirection::kTwoSided;
      r.options.monte_carlo.num_worlds = 49;
      r.options.monte_carlo.seed = 17 + (i % 2);
      requests.push_back(r);
    }
    return requests;
  }
};

std::vector<AuditResponse> RunBatchOrDie(
    AuditPipeline& pipeline, const std::vector<AuditRequest>& batch) {
  auto responses = pipeline.Run(batch);
  SFA_CHECK_OK(responses.status());
  for (const AuditResponse& r : *responses) SFA_CHECK_OK(r.status);
  return std::move(responses).value();
}

TEST(PipelineStreaming, StreamedResponsesAreByteIdenticalToBatchRun) {
  StreamFixture f;
  const auto requests = f.MakeRequests(12);

  AuditPipeline batch_pipeline;
  const auto batch = RunBatchOrDie(batch_pipeline, requests);

  AuditPipeline streaming;
  StreamOptions opts;
  opts.queue_capacity = 4;  // smaller than the request count: forces cycling
  opts.num_workers = 3;
  opts.block_when_full = true;
  ASSERT_TRUE(streaming.StartStream(opts).ok());
  std::vector<std::shared_ptr<AuditTicket>> tickets;
  for (size_t i = 0; i < requests.size(); ++i) {
    const RequestPriority priority =
        static_cast<RequestPriority>(i % kNumRequestPriorities);
    auto ticket = streaming.Submit(requests[i], priority);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  ASSERT_TRUE(streaming.FinishStream().ok());

  for (size_t i = 0; i < requests.size(); ++i) {
    const AuditResponse& streamed = tickets[i]->Get();
    ASSERT_TRUE(streamed.status.ok()) << streamed.status;
    EXPECT_EQ(streamed.id, requests[i].id);
    EXPECT_EQ(streamed.calibration_key, batch[i].calibration_key);
    ExpectIdenticalResult(batch[i].result, streamed.result,
                          "streamed-vs-batch " + requests[i].id);
  }
  const StreamStats stats = streaming.stream_stats();
  EXPECT_EQ(stats.submitted, requests.size());
  EXPECT_EQ(stats.admitted, requests.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed, requests.size());
  EXPECT_EQ(stats.failed + stats.cancelled, 0u);
}

TEST(PipelineStreaming, ManyProducersAgainstASmallQueueNeverDeadlock) {
  StreamFixture f;
  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 12;
  const auto requests = f.MakeRequests(kProducers * kPerProducer);

  AuditPipeline batch_pipeline;
  const auto batch = RunBatchOrDie(batch_pipeline, requests);

  AuditPipeline streaming;
  StreamOptions opts;
  opts.queue_capacity = 3;  // deliberately tiny: producers must block
  opts.num_workers = 2;
  opts.block_when_full = true;
  ASSERT_TRUE(streaming.StartStream(opts).ok());

  std::atomic<size_t> callbacks{0};
  std::vector<std::shared_ptr<AuditTicket>> tickets(requests.size());
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t j = 0; j < kPerProducer; ++j) {
        const size_t i = p * kPerProducer + j;
        const RequestPriority priority =
            static_cast<RequestPriority>(i % kNumRequestPriorities);
        auto ticket = streaming.Submit(
            requests[i], priority,
            [&callbacks](const AuditResponse&) { ++callbacks; });
        SFA_CHECK_OK(ticket.status());  // block policy: never rejected
        tickets[i] = *ticket;
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_TRUE(streaming.FinishStream().ok());

  EXPECT_EQ(callbacks.load(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const AuditResponse& streamed = tickets[i]->Get();
    ASSERT_TRUE(streamed.status.ok()) << streamed.status;
    ExpectIdenticalResult(batch[i].result, streamed.result,
                          "contended " + requests[i].id);
    EXPECT_GE(streamed.queue_wait_ms, 0.0);
    EXPECT_GE(streamed.queue_depth, 1u);
    EXPECT_LE(streamed.queue_depth, opts.queue_capacity + kProducers);
  }
  const StreamStats stats = streaming.stream_stats();
  EXPECT_EQ(stats.completed, requests.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_LE(stats.max_queue_depth, opts.queue_capacity);
}

TEST(PipelineStreaming, BackpressureRejectionCountIsDeterministic) {
  StreamFixture f;
  constexpr size_t kCapacity = 6;
  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 5;  // 20 submissions against capacity 6
  const auto requests = f.MakeRequests(kProducers * kPerProducer);

  AuditPipeline streaming;
  StreamOptions opts;
  opts.queue_capacity = kCapacity;
  opts.num_workers = 2;
  opts.block_when_full = false;  // reject policy
  opts.start_paused = true;      // workers held: admissions are deterministic
  ASSERT_TRUE(streaming.StartStream(opts).ok());

  std::atomic<size_t> rejected{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t j = 0; j < kPerProducer; ++j) {
        auto ticket = streaming.Submit(requests[p * kPerProducer + j]);
        if (!ticket.ok()) {
          SFA_CHECK(ticket.status().IsResourceExhausted());
          ++rejected;
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // With dispatch paused, EXACTLY capacity admissions succeed — independent
  // of producer interleaving.
  EXPECT_EQ(rejected.load(), requests.size() - kCapacity);
  StreamStats stats = streaming.stream_stats();
  EXPECT_EQ(stats.submitted, requests.size());
  EXPECT_EQ(stats.admitted, kCapacity);
  EXPECT_EQ(stats.rejected, requests.size() - kCapacity);
  EXPECT_EQ(stats.max_queue_depth, kCapacity);

  streaming.ResumeDispatch();
  ASSERT_TRUE(streaming.FinishStream().ok());
  stats = streaming.stream_stats();
  EXPECT_EQ(stats.completed, kCapacity);
  EXPECT_EQ(stats.failed + stats.cancelled, 0u);
}

TEST(PipelineStreaming, PriorityOrderingUnderContention) {
  StreamFixture f;
  const auto requests = f.MakeRequests(12);

  AuditPipeline streaming;
  StreamOptions opts;
  opts.queue_capacity = requests.size();
  opts.num_workers = 1;     // one worker: completion order == dispatch order
  opts.start_paused = true; // the whole mix is queued before dispatch starts
  ASSERT_TRUE(streaming.StartStream(opts).ok());

  // Submit in an adversarial interleaving: bulk first, interactive last.
  std::mutex order_mu;
  std::vector<std::pair<RequestPriority, std::string>> completion_order;
  const RequestPriority submit_pattern[3] = {RequestPriority::kBulk,
                                             RequestPriority::kNormal,
                                             RequestPriority::kInteractive};
  for (size_t i = 0; i < requests.size(); ++i) {
    const RequestPriority priority = submit_pattern[i % 3];
    auto ticket = streaming.Submit(
        requests[i], priority,
        [&order_mu, &completion_order](const AuditResponse& response) {
          std::unique_lock<std::mutex> lock(order_mu);
          completion_order.emplace_back(response.priority, response.id);
        });
    ASSERT_TRUE(ticket.ok()) << ticket.status();
  }
  streaming.ResumeDispatch();
  ASSERT_TRUE(streaming.FinishStream().ok());

  ASSERT_EQ(completion_order.size(), requests.size());
  // All interactive before all normal before all bulk; FIFO within a class.
  std::map<RequestPriority, std::vector<std::string>> by_class;
  for (size_t i = 1; i < completion_order.size(); ++i) {
    EXPECT_LE(static_cast<int>(completion_order[i - 1].first),
              static_cast<int>(completion_order[i].first))
        << "priority inversion at completion " << i;
  }
  for (const auto& [priority, id] : completion_order) {
    by_class[priority].push_back(id);
  }
  for (const auto& [priority, ids] : by_class) {
    for (size_t i = 1; i < ids.size(); ++i) {
      const int prev = std::stoi(ids[i - 1].substr(4));
      const int cur = std::stoi(ids[i].substr(4));
      EXPECT_LT(prev, cur) << "FIFO violated within "
                           << RequestPriorityToString(priority);
    }
  }
}

TEST(PipelineStreaming, StreamWarmStartedFromPersistedStoreMatchesBatch) {
  StreamFixture f;
  const auto requests = f.MakeRequests(8);
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sfa_stream_store_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  AuditPipeline batch_pipeline;
  const auto batch = RunBatchOrDie(batch_pipeline, requests);

  // Process 1 streams cold and persists.
  {
    AuditPipeline streaming;
    auto store = CalibrationStore::Open({.directory = dir.string()});
    ASSERT_TRUE(store.ok()) << store.status();
    streaming.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*store)));
    ASSERT_TRUE(streaming.StartStream({.queue_capacity = 8}).ok());
    std::vector<std::shared_ptr<AuditTicket>> tickets;
    for (const AuditRequest& r : requests) {
      auto ticket = streaming.Submit(r);
      ASSERT_TRUE(ticket.ok());
      tickets.push_back(*ticket);
    }
    ASSERT_TRUE(streaming.FinishStream().ok());  // flushes write-behind
    for (size_t i = 0; i < requests.size(); ++i) {
      ExpectIdenticalResult(batch[i].result, tickets[i]->Get().result,
                            "cold-stream " + requests[i].id);
    }
  }

  // Process 2 warm-starts from the directory: zero simulations, identical
  // bytes, every response a cache hit.
  {
    AuditPipeline restarted;
    auto store = CalibrationStore::Open({.directory = dir.string()});
    ASSERT_TRUE(store.ok());
    restarted.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*store)));
    ASSERT_TRUE(restarted.StartStream({.queue_capacity = 8}).ok());
    std::vector<std::shared_ptr<AuditTicket>> tickets;
    for (const AuditRequest& r : requests) {
      auto ticket = restarted.Submit(r);
      ASSERT_TRUE(ticket.ok());
      tickets.push_back(*ticket);
    }
    ASSERT_TRUE(restarted.FinishStream().ok());
    for (size_t i = 0; i < requests.size(); ++i) {
      const AuditResponse& response = tickets[i]->Get();
      ASSERT_TRUE(response.status.ok());
      EXPECT_TRUE(response.cache_hit);
      ExpectIdenticalResult(batch[i].result, response.result,
                            "persisted-warm-stream " + requests[i].id);
    }
    EXPECT_GT(restarted.cache().stats().store_hits, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(PipelineStreaming, AbortFailsQueuedRequestsButTicketsAlwaysComplete) {
  StreamFixture f;
  const auto requests = f.MakeRequests(6);

  AuditPipeline streaming;
  StreamOptions opts;
  opts.queue_capacity = requests.size();
  opts.num_workers = 2;
  opts.start_paused = true;
  ASSERT_TRUE(streaming.StartStream(opts).ok());
  std::vector<std::shared_ptr<AuditTicket>> tickets;
  for (const AuditRequest& r : requests) {
    auto ticket = streaming.Submit(r);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  streaming.AbortStream();  // never resumed: nothing was dispatched

  for (const auto& ticket : tickets) {
    EXPECT_TRUE(ticket->done());
    EXPECT_FALSE(ticket->Get().status.ok());
    EXPECT_TRUE(ticket->Get().status.IsFailedPrecondition());
  }
  const StreamStats stats = streaming.stream_stats();
  EXPECT_EQ(stats.cancelled, requests.size());
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_FALSE(streaming.streaming());
}

TEST(PipelineStreaming, AbortWhileProducerBlockedOnFullQueueIsSafe) {
  // Regression: a producer blocked inside Submit's blocking Push is woken by
  // teardown's queue close and must still find the session state alive to
  // record its rejection (the Stream is shared, not owned solely by the
  // pipeline). Run under TSan in CI.
  StreamFixture f;
  const auto requests = f.MakeRequests(3);

  AuditPipeline streaming;
  StreamOptions opts;
  opts.queue_capacity = 1;
  opts.num_workers = 1;
  opts.block_when_full = true;
  opts.start_paused = true;  // nothing drains: the queue stays full
  ASSERT_TRUE(streaming.StartStream(opts).ok());
  auto admitted = streaming.Submit(requests[0]);
  ASSERT_TRUE(admitted.ok());

  std::atomic<bool> blocked_done{false};
  std::thread producer([&] {
    // Blocks on the full queue until the abort closes it.
    auto late = streaming.Submit(requests[1]);
    EXPECT_FALSE(late.ok());
    EXPECT_TRUE(late.status().IsFailedPrecondition()) << late.status();
    blocked_done.store(true);
  });
  // Give the producer a moment to actually block (best-effort; the test is
  // correct either way, it just covers more when the sleep wins the race).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  streaming.AbortStream();
  producer.join();
  EXPECT_TRUE(blocked_done.load());
  EXPECT_TRUE((*admitted)->done());
  EXPECT_FALSE((*admitted)->Get().status.ok());

  // The snapshot is taken only after in-flight Submits drain, so the
  // header's invariants hold exactly: the blocked producer either recorded
  // a closed-queue rejection (it entered Push before the teardown cleared
  // the accepting gate) or failed fast without counting as submitted.
  const StreamStats stats = streaming.stream_stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.admitted + stats.rejected, stats.submitted);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_GE(stats.submitted, 1u);
  EXPECT_LE(stats.submitted, 2u);
}

TEST(PipelineStreaming, CancelRemovesQueuedRequestsDeterministically) {
  // With dispatch paused, every admission stays queued, so the Cancel
  // outcome is a deterministic function of the Submit/Cancel sequence:
  // cancel k of M queued tickets, resume, drain — exactly k cancelled and
  // M-k completed, and the cancelled tickets resolve with kCancelled
  // without consuming simulation work.
  StreamFixture f;
  const auto requests = f.MakeRequests(8);

  AuditPipeline pipeline;
  StreamOptions opts;
  opts.queue_capacity = requests.size();
  opts.num_workers = 2;
  opts.start_paused = true;
  ASSERT_TRUE(pipeline.StartStream(opts).ok());

  std::vector<std::shared_ptr<AuditTicket>> tickets;
  for (const AuditRequest& request : requests) {
    auto ticket = pipeline.Submit(request);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }

  // Cancel three queued tickets (front, middle, back of the FIFO).
  const std::vector<size_t> cancelled_idx = {0, 3, 7};
  for (size_t i : cancelled_idx) {
    ASSERT_TRUE(pipeline.Cancel(tickets[i]).ok()) << i;
    ASSERT_TRUE(tickets[i]->done());
    const AuditResponse& response = tickets[i]->Get();
    EXPECT_TRUE(response.status.IsCancelled()) << response.status;
    EXPECT_EQ(response.id, requests[i].id);
  }
  // A second Cancel of the same ticket finds nothing to remove.
  EXPECT_TRUE(pipeline.Cancel(tickets[0]).IsNotFound());
  EXPECT_TRUE(pipeline.Cancel(nullptr).IsInvalidArgument());

  pipeline.ResumeDispatch();
  ASSERT_TRUE(pipeline.FinishStream().ok());

  const StreamStats stats = pipeline.stream_stats();
  EXPECT_EQ(stats.submitted, requests.size());
  EXPECT_EQ(stats.admitted, requests.size());
  EXPECT_EQ(stats.cancelled, cancelled_idx.size());
  EXPECT_EQ(stats.completed, requests.size() - cancelled_idx.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed + stats.failed + stats.cancelled, stats.admitted);
  // Survivors completed normally; a finished ticket can no longer be
  // cancelled.
  for (size_t i = 0; i < tickets.size(); ++i) {
    if (std::find(cancelled_idx.begin(), cancelled_idx.end(), i) !=
        cancelled_idx.end()) {
      continue;
    }
    EXPECT_TRUE(tickets[i]->Get().status.ok()) << i;
  }
  // JSON rendering of the final counters (the manifest/stats endpoint).
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"cancelled\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"completed\":5"), std::string::npos) << json;
}

TEST(PipelineStreaming, CancelFreesQueueCapacityForNewAdmissions) {
  // Reject-policy queue of capacity 2, dispatch paused: after two
  // admissions the third rejects; cancelling one frees the slot and the
  // retry admits. Deterministic because nothing drains while paused.
  StreamFixture f;
  const auto requests = f.MakeRequests(3);

  AuditPipeline pipeline;
  StreamOptions opts;
  opts.queue_capacity = 2;
  opts.num_workers = 1;
  opts.start_paused = true;
  opts.block_when_full = false;
  ASSERT_TRUE(pipeline.StartStream(opts).ok());

  auto first = pipeline.Submit(requests[0]);
  auto second = pipeline.Submit(requests[1]);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_TRUE(pipeline.Submit(requests[2]).status().IsResourceExhausted());

  ASSERT_TRUE(pipeline.Cancel(*first).ok());
  auto retry = pipeline.Submit(requests[2]);
  ASSERT_TRUE(retry.ok()) << retry.status();

  pipeline.ResumeDispatch();
  ASSERT_TRUE(pipeline.FinishStream().ok());
  EXPECT_TRUE((*second)->Get().status.ok());
  EXPECT_TRUE((*retry)->Get().status.ok());
  const StreamStats stats = pipeline.stream_stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(PipelineStreaming, LifecycleMisuseIsRejected) {
  StreamFixture f;
  const auto requests = f.MakeRequests(1);
  AuditPipeline pipeline;

  // Submit/Finish without a session.
  EXPECT_TRUE(pipeline.Submit(requests[0]).status().IsFailedPrecondition());
  EXPECT_TRUE(pipeline.FinishStream().IsFailedPrecondition());

  ASSERT_TRUE(pipeline.StartStream({.queue_capacity = 2}).ok());
  // Double start and batch Run during a session.
  EXPECT_TRUE(pipeline.StartStream({}).IsFailedPrecondition());
  EXPECT_TRUE(pipeline.Run(requests).status().IsFailedPrecondition());
  // Null pointers fail per-request (the ticket completes with the error).
  AuditRequest null_request;
  null_request.id = "null";
  auto ticket = pipeline.Submit(null_request);
  ASSERT_TRUE(ticket.ok());
  EXPECT_TRUE((*ticket)->Get().status.IsInvalidArgument());
  ASSERT_TRUE(pipeline.FinishStream().ok());

  // The same pipeline can stream again, then serve a batch.
  ASSERT_TRUE(pipeline.StartStream({}).ok());
  ASSERT_TRUE(pipeline.FinishStream().ok());
  EXPECT_TRUE(pipeline.Run(requests).ok());
}

}  // namespace
}  // namespace sfa::core
