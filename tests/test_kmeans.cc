// Tests for k-means clustering (scan-center placement substrate).
#include "stats/kmeans.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace sfa::stats {
namespace {

std::vector<geo::Point> ThreeBlobs(size_t per_blob, uint64_t seed) {
  sfa::Rng rng(seed);
  const std::vector<geo::Point> centers = {{0, 0}, {10, 0}, {5, 10}};
  std::vector<geo::Point> pts;
  for (const auto& c : centers) {
    for (size_t i = 0; i < per_blob; ++i) {
      pts.push_back({rng.Normal(c.x, 0.5), rng.Normal(c.y, 0.5)});
    }
  }
  return pts;
}

TEST(KMeans, RejectsBadArguments) {
  const std::vector<geo::Point> pts = {{0, 0}, {1, 1}};
  KMeansOptions opts;
  opts.k = 0;
  EXPECT_FALSE(KMeans(pts, opts).ok());
  opts.k = 3;  // more clusters than points
  EXPECT_FALSE(KMeans(pts, opts).ok());
}

TEST(KMeans, KEqualsNPutsOneCenterPerPoint) {
  const std::vector<geo::Point> pts = {{0, 0}, {5, 5}, {9, 1}};
  KMeansOptions opts;
  opts.k = 3;
  auto result = KMeans(pts, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-18);
  for (uint32_t size : result->cluster_sizes) EXPECT_EQ(size, 1u);
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  const auto pts = ThreeBlobs(100, 5);
  KMeansOptions opts;
  opts.k = 3;
  opts.seed = 9;
  auto result = KMeans(pts, opts);
  ASSERT_TRUE(result.ok());
  // Each true blob center should be within 0.5 of some k-means center.
  for (const geo::Point truth : {geo::Point{0, 0}, {10, 0}, {5, 10}}) {
    double best = 1e18;
    for (const auto& c : result->centers) {
      best = std::min(best, truth.DistanceTo(c));
    }
    EXPECT_LT(best, 0.5);
  }
  // Balanced assignment.
  for (uint32_t size : result->cluster_sizes) {
    EXPECT_NEAR(size, 100u, 10u);
  }
}

TEST(KMeans, AssignmentIsNearestCenter) {
  const auto pts = ThreeBlobs(50, 6);
  KMeansOptions opts;
  opts.k = 3;
  auto result = KMeans(pts, opts);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < pts.size(); ++i) {
    const double assigned =
        pts[i].DistanceSquaredTo(result->centers[result->assignment[i]]);
    for (const auto& c : result->centers) {
      ASSERT_LE(assigned, pts[i].DistanceSquaredTo(c) + 1e-9);
    }
  }
}

TEST(KMeans, ClusterSizesSumToN) {
  const auto pts = ThreeBlobs(40, 7);
  KMeansOptions opts;
  opts.k = 5;
  auto result = KMeans(pts, opts);
  ASSERT_TRUE(result.ok());
  uint64_t total = 0;
  for (uint32_t size : result->cluster_sizes) total += size;
  EXPECT_EQ(total, pts.size());
}

TEST(KMeans, DeterministicForFixedSeed) {
  const auto pts = ThreeBlobs(60, 8);
  KMeansOptions opts;
  opts.k = 4;
  opts.seed = 1234;
  auto a = KMeans(pts, opts);
  auto b = KMeans(pts, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->centers.size(), b->centers.size());
  for (size_t i = 0; i < a->centers.size(); ++i) {
    EXPECT_EQ(a->centers[i], b->centers[i]);
  }
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(KMeans, MoreClustersNeverIncreaseInertia) {
  const auto pts = ThreeBlobs(80, 10);
  double prev = 1e300;
  for (uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    KMeansOptions opts;
    opts.k = k;
    opts.seed = 55;
    opts.max_iterations = 100;
    auto result = KMeans(pts, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->inertia, prev * 1.05);  // small slack for local optima
    prev = result->inertia;
  }
}

TEST(KMeans, HandlesDuplicatePoints) {
  std::vector<geo::Point> pts(20, geo::Point{1.0, 1.0});
  pts.push_back({5.0, 5.0});
  KMeansOptions opts;
  opts.k = 2;
  auto result = KMeans(pts, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-18);
}

}  // namespace
}  // namespace sfa::stats
