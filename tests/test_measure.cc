// Tests for fairness-measure views.
#include "core/measure.h"

#include <gtest/gtest.h>

namespace sfa::core {
namespace {

data::OutcomeDataset Mixed() {
  data::OutcomeDataset ds("mixed");
  // (predicted, actual): TP, FN, FP, TN, TP
  ds.Add({0, 0}, 1, 1);
  ds.Add({1, 0}, 0, 1);
  ds.Add({2, 0}, 1, 0);
  ds.Add({3, 0}, 0, 0);
  ds.Add({4, 0}, 1, 1);
  return ds;
}

TEST(BuildMeasureView, StatisticalParityIsIdentity) {
  const data::OutcomeDataset ds = Mixed();
  auto view = BuildMeasureView(ds, FairnessMeasure::kStatisticalParity);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 5u);
  EXPECT_EQ(view->predicted(), ds.predicted());
  // Positive rate of the view = model positive rate (3/5).
  EXPECT_DOUBLE_EQ(view->PositiveRate(), 0.6);
}

TEST(BuildMeasureView, StatisticalParityWorksWithoutGroundTruth) {
  data::OutcomeDataset ds;
  ds.Add({0, 0}, 1);
  ds.Add({1, 1}, 0);
  auto view = BuildMeasureView(ds, FairnessMeasure::kStatisticalParity);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 2u);
}

TEST(BuildMeasureView, EqualOpportunityKeepsOnlyActualPositives) {
  auto view = BuildMeasureView(Mixed(), FairnessMeasure::kEqualOpportunity);
  ASSERT_TRUE(view.ok());
  // Three Y=1 rows; their predictions are 1, 0, 1 → positive rate = TPR = 2/3.
  EXPECT_EQ(view->size(), 3u);
  EXPECT_NEAR(view->PositiveRate(), 2.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(view->locations()[1].x, 1.0);  // the FN row
}

TEST(BuildMeasureView, PredictiveEqualityKeepsOnlyActualNegatives) {
  auto view = BuildMeasureView(Mixed(), FairnessMeasure::kPredictiveEquality);
  ASSERT_TRUE(view.ok());
  // Two Y=0 rows; predictions 1, 0 → positive rate = FPR = 1/2.
  EXPECT_EQ(view->size(), 2u);
  EXPECT_DOUBLE_EQ(view->PositiveRate(), 0.5);
}

TEST(BuildMeasureView, AccuracyMeasuresNeedGroundTruth) {
  data::OutcomeDataset ds;
  ds.Add({0, 0}, 1);
  EXPECT_TRUE(BuildMeasureView(ds, FairnessMeasure::kEqualOpportunity)
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(BuildMeasureView(ds, FairnessMeasure::kPredictiveEquality)
                  .status()
                  .IsFailedPrecondition());
}

TEST(BuildMeasureView, EmptyViewsAreRejected) {
  data::OutcomeDataset ds;
  ds.Add({0, 0}, 1, 1);  // no Y=0 rows at all
  EXPECT_TRUE(BuildMeasureView(ds, FairnessMeasure::kPredictiveEquality)
                  .status()
                  .IsFailedPrecondition());
}

TEST(FairnessMeasureToString, Names) {
  EXPECT_NE(std::string(FairnessMeasureToString(
                FairnessMeasure::kStatisticalParity))
                .find("positive rate"),
            std::string::npos);
  EXPECT_NE(std::string(FairnessMeasureToString(
                FairnessMeasure::kEqualOpportunity))
                .find("true positive"),
            std::string::npos);
  EXPECT_NE(std::string(FairnessMeasureToString(
                FairnessMeasure::kPredictiveEquality))
                .find("false positive"),
            std::string::npos);
}

}  // namespace
}  // namespace sfa::core
