// Tests for Monte Carlo null calibration: p-value semantics, critical
// values, determinism across thread counts, and the two null models.
#include "core/significance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/grid_family.h"
#include "core/scan.h"

namespace sfa::core {
namespace {

TEST(NullDistribution, PValueRankSemantics) {
  // Null maxima: 5 worlds. With the observed world, w = 6.
  NullDistribution dist({1.0, 2.0, 3.0, 4.0, 5.0});
  // Observed 10 beats everything: p = 1/6.
  EXPECT_NEAR(dist.PValue(10.0), 1.0 / 6, 1e-12);
  // Observed 0 beats nothing: p = 6/6.
  EXPECT_NEAR(dist.PValue(0.0), 1.0, 1e-12);
  // Observed 3.5: three null values >= 3.5? No — 4 and 5 → p = 3/6.
  EXPECT_NEAR(dist.PValue(3.5), 3.0 / 6, 1e-12);
  // Ties count against the observed world (conservative): observed 3.0 →
  // {3, 4, 5} are >= → p = 4/6.
  EXPECT_NEAR(dist.PValue(3.0), 4.0 / 6, 1e-12);
}

TEST(NullDistribution, CriticalValueMatchesPValue) {
  std::vector<double> maxima;
  for (int i = 1; i <= 999; ++i) maxima.push_back(static_cast<double>(i));
  NullDistribution dist(std::move(maxima));
  const double critical = dist.CriticalValue(0.005);
  // alpha*w = 0.005*1000 = 5 → the 5th largest null value, 995.
  EXPECT_DOUBLE_EQ(critical, 995.0);
  // Just above the critical value → significant.
  EXPECT_LE(dist.PValue(995.5), 0.005);
  // At or below → not significant.
  EXPECT_GT(dist.PValue(995.0), 0.005);
}

TEST(NullDistribution, UnattainableAlphaGivesInfinity) {
  NullDistribution dist({1.0, 2.0, 3.0});  // w = 4, min p = 0.25
  EXPECT_TRUE(std::isinf(dist.CriticalValue(0.1)));
  EXPECT_FALSE(std::isinf(dist.CriticalValue(0.25)));
}

TEST(NullDistribution, SortsInput) {
  NullDistribution dist({3.0, 1.0, 2.0});
  EXPECT_EQ(dist.MaximaVector(), (std::vector<double>{3.0, 2.0, 1.0}));
}

TEST(NullDistribution, MetadataConstructorCarriesStopState) {
  const NullDistribution full({3.0, 1.0, 2.0});
  EXPECT_EQ(full.worlds_requested(), 3u);
  EXPECT_FALSE(full.early_stopped());
  EXPECT_EQ(full.stop_reason(), McStopReason::kNone);

  const NullDistribution stopped({3.0, 1.0, 2.0}, /*worlds_requested=*/99,
                                 McStopReason::kCiAboveAlpha);
  EXPECT_EQ(stopped.worlds_requested(), 99u);
  EXPECT_TRUE(stopped.early_stopped());
  EXPECT_EQ(stopped.stop_reason(), McStopReason::kCiAboveAlpha);
  // Same maxima → same p-values: the metadata annotates, never reweights.
  EXPECT_DOUBLE_EQ(stopped.PValue(2.5), full.PValue(2.5));
}

std::vector<double> GumbelLikeMaxima(size_t n, uint64_t seed) {
  // Inverse-CDF samples of a Gumbel(3, 0.8): x = mu - beta*log(-log(u)).
  sfa::Rng rng(seed);
  std::vector<double> out(n);
  for (auto& x : out) {
    x = 3.0 - 0.8 * std::log(-std::log(rng.Uniform(1e-12, 1.0)));
  }
  return out;
}

TEST(NullDistribution, GumbelPValueRejectsDegenerateNulls) {
  // Constant maxima (e.g. a tiny family where every world scans to 0) have
  // no tail to fit — the error must be explicit, not a NaN downstream.
  const NullDistribution constant({0.0, 0.0, 0.0, 0.0});
  EXPECT_FALSE(constant.GumbelPValue(1.0).ok());
  const NullDistribution single({2.0});
  EXPECT_FALSE(single.GumbelPValue(1.0).ok());
}

TEST(NullDistribution, AutoDegradesToEmpiricalOnDegenerateNull) {
  // kAuto on a constant-maxima null: the tail fit cannot be attempted, so
  // the estimate cleanly stays empirical — no error surfaces.
  const NullDistribution constant({0.0, 0.0, 0.0, 0.0});
  const PValueEstimate est =
      constant.ResolvePValue(1.0, SignificanceMethod::kAuto);
  EXPECT_EQ(est.method, SignificanceMethod::kEmpirical);
  EXPECT_FALSE(est.tail_fit_ok);
  EXPECT_DOUBLE_EQ(est.p_value, constant.PValue(1.0));
}

TEST(NullDistribution, AutoUsesEmpiricalInRange) {
  const NullDistribution dist(GumbelLikeMaxima(499, 11));
  const double in_range = dist.sorted_max()[100];  // well inside the sample
  const PValueEstimate est =
      dist.ResolvePValue(in_range, SignificanceMethod::kAuto);
  EXPECT_EQ(est.method, SignificanceMethod::kEmpirical);
  EXPECT_DOUBLE_EQ(est.p_value, dist.PValue(in_range));
}

TEST(NullDistribution, AutoUsesTailBeyondSimulatedRange) {
  const NullDistribution dist(GumbelLikeMaxima(499, 12));
  const double beyond = dist.sorted_max().front() + 5.0;
  const PValueEstimate est =
      dist.ResolvePValue(beyond, SignificanceMethod::kAuto);
  ASSERT_EQ(est.method, SignificanceMethod::kGumbelTail);
  EXPECT_TRUE(est.tail_fit_ok);
  EXPECT_LE(est.tail_ks, kDefaultTailKsGate);
  // The tail p-value breaks the empirical 1/(W+1) resolution cap, and kAuto
  // keeps it under that cap (monotone in the evidence).
  EXPECT_LT(est.p_value, dist.PValue(beyond));
  EXPECT_GT(est.p_value, 0.0);
}

TEST(NullDistribution, TailFitGateRejectsNonGumbelNulls) {
  // A bimodal null is nothing like a Gumbel: the KS gate must fail it and
  // kGumbelTail must then degrade to empirical instead of extrapolating.
  std::vector<double> bimodal;
  for (int i = 0; i < 250; ++i) bimodal.push_back(1.0 + 1e-3 * i);
  for (int i = 0; i < 250; ++i) bimodal.push_back(100.0 + 1e-3 * i);
  const NullDistribution dist(std::move(bimodal));
  const TailFit fit = dist.AssessTailFit();
  EXPECT_TRUE(fit.fitted);
  EXPECT_FALSE(fit.ok);
  EXPECT_GT(fit.ks_distance, kDefaultTailKsGate);
  const PValueEstimate est =
      dist.ResolvePValue(200.0, SignificanceMethod::kGumbelTail);
  EXPECT_EQ(est.method, SignificanceMethod::kEmpirical);
  EXPECT_FALSE(est.tail_fit_ok);
  EXPECT_DOUBLE_EQ(est.p_value, dist.PValue(200.0));
}

TEST(NullDistribution, CriticalValueExFlagsResolvability) {
  // W-1 = 19 worlds → w = 20. alpha = 0.05 = 1/w is the exact boundary:
  // floor(0.05*20) = 1 → resolvable (the largest null value). Any alpha
  // strictly below 1/w is unresolvable.
  std::vector<double> maxima;
  for (int i = 1; i <= 19; ++i) maxima.push_back(static_cast<double>(i));
  const NullDistribution dist(std::move(maxima));

  const CriticalValueInfo at_boundary = dist.CriticalValueEx(0.05);
  EXPECT_TRUE(at_boundary.resolvable);
  EXPECT_FALSE(at_boundary.advisory_tail);
  EXPECT_DOUBLE_EQ(at_boundary.value, 19.0);
  EXPECT_DOUBLE_EQ(at_boundary.value, dist.CriticalValue(0.05));

  const CriticalValueInfo below = dist.CriticalValueEx(0.049);
  EXPECT_FALSE(below.resolvable);
  EXPECT_FALSE(below.advisory_tail);
  EXPECT_TRUE(std::isinf(below.value));
}

TEST(NullDistribution, CriticalValueExAdvisoryUsesGumbelQuantile) {
  const NullDistribution dist(GumbelLikeMaxima(99, 13));
  // alpha far below the 1/100 resolution: empirically unresolvable, but the
  // healthy tail fit supplies a finite advisory threshold.
  const CriticalValueInfo plain = dist.CriticalValueEx(0.001);
  EXPECT_FALSE(plain.resolvable);
  EXPECT_TRUE(std::isinf(plain.value));

  const CriticalValueInfo advisory =
      dist.CriticalValueEx(0.001, /*tail_advisory=*/true);
  EXPECT_FALSE(advisory.resolvable);
  EXPECT_TRUE(advisory.advisory_tail);
  EXPECT_TRUE(std::isfinite(advisory.value));
  // The advisory threshold sits beyond the simulated range — it answers
  // "how extreme would Λ need to be", consistent with the tail p-value.
  EXPECT_GT(advisory.value, dist.CriticalValue(0.05));
}

TEST(SignificanceEnumToString, Names) {
  EXPECT_STREQ(SignificanceMethodToString(SignificanceMethod::kEmpirical),
               "empirical");
  EXPECT_STREQ(SignificanceMethodToString(SignificanceMethod::kGumbelTail),
               "gumbel-tail");
  EXPECT_STREQ(SignificanceMethodToString(SignificanceMethod::kAuto), "auto");
  EXPECT_STREQ(McStopReasonToString(McStopReason::kNone), "none");
  EXPECT_STREQ(McStopReasonToString(McStopReason::kCiBelowAlpha),
               "ci-below-alpha");
  EXPECT_STREQ(McStopReasonToString(McStopReason::kCiAboveAlpha),
               "ci-above-alpha");
}

std::unique_ptr<GridPartitionFamily> UniformFamily(size_t n, uint64_t seed,
                                                   uint32_t g = 4) {
  sfa::Rng rng(seed);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) p = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
  auto family = GridPartitionFamily::Create(pts, g, g);
  EXPECT_TRUE(family.ok());
  return std::move(*family);
}

TEST(SimulateNull, RejectsBadOptions) {
  auto family = UniformFamily(100, 71);
  MonteCarloOptions opts;
  opts.num_worlds = 0;
  EXPECT_FALSE(SimulateNull(*family, 0.5, 50, stats::ScanDirection::kTwoSided, opts)
                   .ok());
  opts.num_worlds = 10;
  EXPECT_FALSE(SimulateNull(*family, 1.5, 50, stats::ScanDirection::kTwoSided, opts)
                   .ok());
  EXPECT_FALSE(
      SimulateNull(*family, 0.5, 200, stats::ScanDirection::kTwoSided, opts).ok());
}

TEST(SimulateNull, DeterministicAcrossParallelism) {
  auto family = UniformFamily(500, 72);
  MonteCarloOptions serial;
  serial.num_worlds = 50;
  serial.seed = 7;
  serial.parallel = false;
  MonteCarloOptions parallel = serial;
  parallel.parallel = true;
  auto a = SimulateNull(*family, 0.4, 200, stats::ScanDirection::kTwoSided, serial);
  auto b =
      SimulateNull(*family, 0.4, 200, stats::ScanDirection::kTwoSided, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->MaximaVector(), b->MaximaVector());
}

TEST(SimulateNull, DifferentSeedsGiveDifferentDistributions) {
  auto family = UniformFamily(500, 73);
  MonteCarloOptions opts;
  opts.num_worlds = 20;
  opts.seed = 1;
  auto a = SimulateNull(*family, 0.5, 250, stats::ScanDirection::kTwoSided, opts);
  opts.seed = 2;
  auto b = SimulateNull(*family, 0.5, 250, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->MaximaVector(), b->MaximaVector());
}

TEST(SimulateNull, NullMaximaArePositiveAndFinite) {
  auto family = UniformFamily(1000, 74);
  MonteCarloOptions opts;
  opts.num_worlds = 100;
  auto dist = SimulateNull(*family, 0.62, 620, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(dist.ok());
  for (double v : dist->sorted_max()) {
    ASSERT_GT(v, 0.0);  // some cell always deviates a little
    ASSERT_LT(v, 100.0);
  }
}

TEST(SimulateNull, PermutationNullWorksToo) {
  auto family = UniformFamily(500, 75);
  MonteCarloOptions opts;
  opts.num_worlds = 50;
  opts.null_model = NullModel::kPermutation;
  auto dist = SimulateNull(*family, 0.5, 250, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->num_worlds(), 50u);
}

TEST(SimulateNull, BernoulliAndPermutationNullsAgreeRoughly) {
  // For moderate N the two null models produce similar critical values.
  auto family = UniformFamily(2000, 76);
  MonteCarloOptions opts;
  opts.num_worlds = 199;
  opts.null_model = NullModel::kBernoulli;
  auto bern = SimulateNull(*family, 0.5, 1000, stats::ScanDirection::kTwoSided, opts);
  opts.null_model = NullModel::kPermutation;
  auto perm = SimulateNull(*family, 0.5, 1000, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(bern.ok() && perm.ok());
  const double c_bern = bern->CriticalValue(0.05);
  const double c_perm = perm->CriticalValue(0.05);
  EXPECT_NEAR(c_bern, c_perm, std::max(c_bern, c_perm));  // same order of magnitude
}

// The statistical contract: under a fair world, the p-value of a fresh
// fair draw should be roughly uniform — in particular, it should exceed
// 0.05 most of the time. (Smoke-level calibration check.)
TEST(SimulateNull, FairWorldsAreRarelySignificant) {
  auto family = UniformFamily(800, 77);
  MonteCarloOptions opts;
  opts.num_worlds = 99;
  opts.seed = 31;
  auto dist = SimulateNull(*family, 0.5, 400, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(dist.ok());

  sfa::Rng rng(32);
  int significant = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    const Labels labels = Labels::SampleBernoulli(800, 0.5, &rng);
    std::vector<uint64_t> scratch;
    const double observed =
        ScanMaxStatistic(*family, labels, stats::ScanDirection::kTwoSided, &scratch);
    if (dist->PValue(observed) <= 0.05) ++significant;
  }
  // Expect about 5% of 60 ≈ 3; allow generous slack.
  EXPECT_LE(significant, 10);
}

TEST(NullModelToString, Names) {
  EXPECT_STREQ(NullModelToString(NullModel::kBernoulli),
               "unconditional Bernoulli");
  EXPECT_STREQ(NullModelToString(NullModel::kPermutation),
               "conditional permutation");
}

TEST(McEngineToString, Names) {
  EXPECT_STREQ(McEngineToString(McEngine::kBatched), "batched");
  EXPECT_STREQ(McEngineToString(McEngine::kReference), "per-world reference");
}

TEST(EnumToString, NamesAreDistinct) {
  // Reports embed these strings; two enum values must never render alike.
  EXPECT_STRNE(NullModelToString(NullModel::kBernoulli),
               NullModelToString(NullModel::kPermutation));
  EXPECT_STRNE(McEngineToString(McEngine::kBatched),
               McEngineToString(McEngine::kReference));
}

}  // namespace
}  // namespace sfa::core
