// Tests for Monte Carlo null calibration: p-value semantics, critical
// values, determinism across thread counts, and the two null models.
#include "core/significance.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/grid_family.h"
#include "core/scan.h"

namespace sfa::core {
namespace {

TEST(NullDistribution, PValueRankSemantics) {
  // Null maxima: 5 worlds. With the observed world, w = 6.
  NullDistribution dist({1.0, 2.0, 3.0, 4.0, 5.0});
  // Observed 10 beats everything: p = 1/6.
  EXPECT_NEAR(dist.PValue(10.0), 1.0 / 6, 1e-12);
  // Observed 0 beats nothing: p = 6/6.
  EXPECT_NEAR(dist.PValue(0.0), 1.0, 1e-12);
  // Observed 3.5: three null values >= 3.5? No — 4 and 5 → p = 3/6.
  EXPECT_NEAR(dist.PValue(3.5), 3.0 / 6, 1e-12);
  // Ties count against the observed world (conservative): observed 3.0 →
  // {3, 4, 5} are >= → p = 4/6.
  EXPECT_NEAR(dist.PValue(3.0), 4.0 / 6, 1e-12);
}

TEST(NullDistribution, CriticalValueMatchesPValue) {
  std::vector<double> maxima;
  for (int i = 1; i <= 999; ++i) maxima.push_back(static_cast<double>(i));
  NullDistribution dist(std::move(maxima));
  const double critical = dist.CriticalValue(0.005);
  // alpha*w = 0.005*1000 = 5 → the 5th largest null value, 995.
  EXPECT_DOUBLE_EQ(critical, 995.0);
  // Just above the critical value → significant.
  EXPECT_LE(dist.PValue(995.5), 0.005);
  // At or below → not significant.
  EXPECT_GT(dist.PValue(995.0), 0.005);
}

TEST(NullDistribution, UnattainableAlphaGivesInfinity) {
  NullDistribution dist({1.0, 2.0, 3.0});  // w = 4, min p = 0.25
  EXPECT_TRUE(std::isinf(dist.CriticalValue(0.1)));
  EXPECT_FALSE(std::isinf(dist.CriticalValue(0.25)));
}

TEST(NullDistribution, SortsInput) {
  NullDistribution dist({3.0, 1.0, 2.0});
  EXPECT_EQ(dist.sorted_max(), (std::vector<double>{3.0, 2.0, 1.0}));
}

std::unique_ptr<GridPartitionFamily> UniformFamily(size_t n, uint64_t seed,
                                                   uint32_t g = 4) {
  sfa::Rng rng(seed);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) p = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
  auto family = GridPartitionFamily::Create(pts, g, g);
  EXPECT_TRUE(family.ok());
  return std::move(*family);
}

TEST(SimulateNull, RejectsBadOptions) {
  auto family = UniformFamily(100, 71);
  MonteCarloOptions opts;
  opts.num_worlds = 0;
  EXPECT_FALSE(SimulateNull(*family, 0.5, 50, stats::ScanDirection::kTwoSided, opts)
                   .ok());
  opts.num_worlds = 10;
  EXPECT_FALSE(SimulateNull(*family, 1.5, 50, stats::ScanDirection::kTwoSided, opts)
                   .ok());
  EXPECT_FALSE(
      SimulateNull(*family, 0.5, 200, stats::ScanDirection::kTwoSided, opts).ok());
}

TEST(SimulateNull, DeterministicAcrossParallelism) {
  auto family = UniformFamily(500, 72);
  MonteCarloOptions serial;
  serial.num_worlds = 50;
  serial.seed = 7;
  serial.parallel = false;
  MonteCarloOptions parallel = serial;
  parallel.parallel = true;
  auto a = SimulateNull(*family, 0.4, 200, stats::ScanDirection::kTwoSided, serial);
  auto b =
      SimulateNull(*family, 0.4, 200, stats::ScanDirection::kTwoSided, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sorted_max(), b->sorted_max());
}

TEST(SimulateNull, DifferentSeedsGiveDifferentDistributions) {
  auto family = UniformFamily(500, 73);
  MonteCarloOptions opts;
  opts.num_worlds = 20;
  opts.seed = 1;
  auto a = SimulateNull(*family, 0.5, 250, stats::ScanDirection::kTwoSided, opts);
  opts.seed = 2;
  auto b = SimulateNull(*family, 0.5, 250, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->sorted_max(), b->sorted_max());
}

TEST(SimulateNull, NullMaximaArePositiveAndFinite) {
  auto family = UniformFamily(1000, 74);
  MonteCarloOptions opts;
  opts.num_worlds = 100;
  auto dist = SimulateNull(*family, 0.62, 620, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(dist.ok());
  for (double v : dist->sorted_max()) {
    ASSERT_GT(v, 0.0);  // some cell always deviates a little
    ASSERT_LT(v, 100.0);
  }
}

TEST(SimulateNull, PermutationNullWorksToo) {
  auto family = UniformFamily(500, 75);
  MonteCarloOptions opts;
  opts.num_worlds = 50;
  opts.null_model = NullModel::kPermutation;
  auto dist = SimulateNull(*family, 0.5, 250, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->num_worlds(), 50u);
}

TEST(SimulateNull, BernoulliAndPermutationNullsAgreeRoughly) {
  // For moderate N the two null models produce similar critical values.
  auto family = UniformFamily(2000, 76);
  MonteCarloOptions opts;
  opts.num_worlds = 199;
  opts.null_model = NullModel::kBernoulli;
  auto bern = SimulateNull(*family, 0.5, 1000, stats::ScanDirection::kTwoSided, opts);
  opts.null_model = NullModel::kPermutation;
  auto perm = SimulateNull(*family, 0.5, 1000, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(bern.ok() && perm.ok());
  const double c_bern = bern->CriticalValue(0.05);
  const double c_perm = perm->CriticalValue(0.05);
  EXPECT_NEAR(c_bern, c_perm, std::max(c_bern, c_perm));  // same order of magnitude
}

// The statistical contract: under a fair world, the p-value of a fresh
// fair draw should be roughly uniform — in particular, it should exceed
// 0.05 most of the time. (Smoke-level calibration check.)
TEST(SimulateNull, FairWorldsAreRarelySignificant) {
  auto family = UniformFamily(800, 77);
  MonteCarloOptions opts;
  opts.num_worlds = 99;
  opts.seed = 31;
  auto dist = SimulateNull(*family, 0.5, 400, stats::ScanDirection::kTwoSided, opts);
  ASSERT_TRUE(dist.ok());

  sfa::Rng rng(32);
  int significant = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    const Labels labels = Labels::SampleBernoulli(800, 0.5, &rng);
    std::vector<uint64_t> scratch;
    const double observed =
        ScanMaxStatistic(*family, labels, stats::ScanDirection::kTwoSided, &scratch);
    if (dist->PValue(observed) <= 0.05) ++significant;
  }
  // Expect about 5% of 60 ≈ 3; allow generous slack.
  EXPECT_LE(significant, 10);
}

TEST(NullModelToString, Names) {
  EXPECT_STREQ(NullModelToString(NullModel::kBernoulli),
               "unconditional Bernoulli");
  EXPECT_STREQ(NullModelToString(NullModel::kPermutation),
               "conditional permutation");
}

TEST(McEngineToString, Names) {
  EXPECT_STREQ(McEngineToString(McEngine::kBatched), "batched");
  EXPECT_STREQ(McEngineToString(McEngine::kReference), "per-world reference");
}

TEST(EnumToString, NamesAreDistinct) {
  // Reports embed these strings; two enum values must never render alike.
  EXPECT_STRNE(NullModelToString(NullModel::kBernoulli),
               NullModelToString(NullModel::kPermutation));
  EXPECT_STRNE(McEngineToString(McEngine::kBatched),
               McEngineToString(McEngine::kReference));
}

}  // namespace
}  // namespace sfa::core
