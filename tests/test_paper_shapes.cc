// Integration tests asserting the paper's qualitative claims end to end at
// test scale — miniature versions of the figure experiments. These are the
// repository's regression contract for the reproduction: if any of these
// break, a bench harness would print a wrong "measured" column.
#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/evidence.h"
#include "core/grid_family.h"
#include "core/meanvar.h"
#include "core/partitioning_family.h"
#include "core/square_family.h"
#include "data/crime_sim.h"
#include "data/lar_sim.h"
#include "data/synth.h"
#include "stats/kmeans.h"

namespace sfa {
namespace {

data::LarSimResult SmallLar() {
  data::LarSimOptions opts;
  opts.num_locations = 8000;
  opts.num_applications = 32000;
  auto result = data::MakeLarSim(opts);
  SFA_CHECK_OK(result.status());
  return std::move(result).value();
}

core::AuditOptions FastAudit(double alpha = 0.005) {
  core::AuditOptions opts;
  opts.alpha = alpha;
  opts.monte_carlo.num_worlds = 199;
  return opts;
}

// --- Figure 1: the MeanVar inversion, with the real generators.
TEST(PaperShapes, Fig1MeanVarInversion) {
  data::SemiSynthOptions semi_opts;
  semi_opts.num_outcomes = 6000;
  auto semi = data::MakeSemiSynthStandalone(semi_opts);
  ASSERT_TRUE(semi.ok());
  data::SynthOptions synth_opts;
  synth_opts.num_outcomes = 6000;
  auto synth = data::MakeSynth(synth_opts);
  ASSERT_TRUE(synth.ok());

  Rng rng(11);
  auto semi_parts = geo::MakeRandomResolutionPartitionings(
      semi->BoundingBox().Expanded(1e-6), 30, 10, 40, &rng);
  auto synth_parts = geo::MakeRandomResolutionPartitionings(
      synth->BoundingBox().Expanded(1e-6), 30, 10, 40, &rng);
  ASSERT_TRUE(semi_parts.ok() && synth_parts.ok());

  auto mv_semi = core::ComputeMeanVar(*semi, *semi_parts);
  auto mv_synth = core::ComputeMeanVar(*synth, *synth_parts);
  ASSERT_TRUE(mv_semi.ok() && mv_synth.ok());
  // The inversion: MeanVar calls the FAIR dataset less fair.
  EXPECT_GT(mv_semi->mean_var, mv_synth->mean_var);
}

// --- §4.2 "Is it fair?": our audit gets both verdicts right where MeanVar
// cannot discriminate.
TEST(PaperShapes, Fig1AuditVerdicts) {
  data::SemiSynthOptions semi_opts;
  semi_opts.num_outcomes = 6000;
  auto semi = data::MakeSemiSynthStandalone(semi_opts);
  data::SynthOptions synth_opts;
  synth_opts.num_outcomes = 6000;
  auto synth = data::MakeSynth(synth_opts);
  ASSERT_TRUE(semi.ok() && synth.ok());

  Rng rng(13);
  for (const data::OutcomeDataset* ds : {&*semi, &*synth}) {
    auto parts = geo::MakeRandomResolutionPartitionings(
        ds->BoundingBox().Expanded(1e-6), 20, 10, 30, &rng);
    ASSERT_TRUE(parts.ok());
    auto family = core::PartitioningCollectionFamily::Create(ds->locations(),
                                                             *parts);
    ASSERT_TRUE(family.ok());
    auto result = core::Auditor(FastAudit()).Audit(*ds, **family);
    ASSERT_TRUE(result.ok());
    if (ds == &*semi) {
      EXPECT_TRUE(result->spatially_fair) << "SemiSynth, p=" << result->p_value;
    } else {
      EXPECT_FALSE(result->spatially_fair) << "Synth, p=" << result->p_value;
    }
  }
}

// --- Figures 2/3: MeanVar's champions are sparse extremes; ours are dense
// with non-extreme rates, and the verdict is unfair.
TEST(PaperShapes, Fig3SparseVsDenseSuspects) {
  const data::LarSimResult lar = SmallLar();
  const geo::Rect extent = lar.dataset.BoundingBox().Expanded(1e-9);
  auto family = core::GridPartitionFamily::CreateWithExtent(
      lar.dataset.locations(), extent, 60, 30);
  ASSERT_TRUE(family.ok());
  auto audit = core::Auditor(FastAudit()).Audit(lar.dataset, **family);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->spatially_fair);
  ASSERT_FALSE(audit->findings.empty());
  // Our flagged regions: dense, non-extreme.
  for (const auto& f : audit->findings) {
    EXPECT_GT(f.n, 50u);
    EXPECT_GT(f.local_rate, 0.0);
    EXPECT_LT(f.local_rate, 1.0);
  }

  auto partitioning = geo::Partitioning::Regular(extent, 60, 30);
  ASSERT_TRUE(partitioning.ok());
  auto meanvar = core::ComputeMeanVar(lar.dataset, {*partitioning});
  ASSERT_TRUE(meanvar.ok());
  // MeanVar's top-10: sparse and extreme.
  for (size_t i = 0; i < std::min<size_t>(10, meanvar->ranked_partitions.size());
       ++i) {
    const auto& c = meanvar->ranked_partitions[i];
    EXPECT_LE(c.n, 20u) << i;
    EXPECT_TRUE(c.measure == 0.0 || c.measure == 1.0) << i;
  }
}

// --- Figures 11/12: directional scans recover the planted Miami (red) and
// Bay Area (green) regions.
TEST(PaperShapes, Fig11And12DirectionalRecovery) {
  const data::LarSimResult lar = SmallLar();
  stats::KMeansOptions km;
  km.k = 40;
  km.seed = 5;
  auto clusters = stats::KMeans(lar.dataset.locations(), km);
  ASSERT_TRUE(clusters.ok());
  core::SquareScanOptions scan;
  scan.centers = clusters->centers;
  scan.side_lengths = core::SquareScanOptions::DefaultSideLengths(0.25, 2.0, 8);
  auto family = core::SquareScanFamily::Create(lar.dataset.locations(), scan);
  ASSERT_TRUE(family.ok());

  core::AuditOptions red_opts = FastAudit();
  red_opts.direction = stats::ScanDirection::kLow;
  auto red = core::Auditor(red_opts).Audit(lar.dataset, **family);
  ASSERT_TRUE(red.ok());
  ASSERT_FALSE(red->findings.empty());
  const geo::Rect miami(-80.50, 25.40, -80.05, 26.40);
  EXPECT_TRUE(red->findings[0].rect.Intersects(miami))
      << red->findings[0].rect.ToString();
  EXPECT_LT(red->findings[0].local_rate, red->overall_rate);

  core::AuditOptions green_opts = FastAudit();
  green_opts.direction = stats::ScanDirection::kHigh;
  auto green = core::Auditor(green_opts).Audit(lar.dataset, **family);
  ASSERT_TRUE(green.ok());
  ASSERT_FALSE(green->findings.empty());
  const geo::Rect bay_area(-122.80, 37.00, -121.60, 38.60);
  EXPECT_TRUE(green->findings[0].rect.Intersects(bay_area))
      << green->findings[0].rect.ToString();
  EXPECT_GT(green->findings[0].local_rate, green->overall_rate);
}

// --- Figure 5 pipeline: significant regions → best per center →
// non-overlapping exhibits, all disjoint and significant.
TEST(PaperShapes, Fig5NonOverlappingExhibits) {
  const data::LarSimResult lar = SmallLar();
  stats::KMeansOptions km;
  km.k = 30;
  km.seed = 6;
  auto clusters = stats::KMeans(lar.dataset.locations(), km);
  ASSERT_TRUE(clusters.ok());
  core::SquareScanOptions scan;
  scan.centers = clusters->centers;
  scan.side_lengths = core::SquareScanOptions::DefaultSideLengths(0.25, 2.0, 8);
  auto family = core::SquareScanFamily::Create(lar.dataset.locations(), scan);
  ASSERT_TRUE(family.ok());
  auto audit = core::Auditor(FastAudit()).Audit(lar.dataset, **family);
  ASSERT_TRUE(audit.ok());
  ASSERT_FALSE(audit->findings.empty());

  const auto exhibits =
      core::SelectNonOverlapping(core::BestPerGroup(audit->findings));
  ASSERT_FALSE(exhibits.empty());
  EXPECT_LE(exhibits.size(), audit->findings.size());
  for (size_t i = 0; i < exhibits.size(); ++i) {
    EXPECT_GT(exhibits[i].llr, audit->critical_value);
    for (size_t j = i + 1; j < exhibits.size(); ++j) {
      EXPECT_FALSE(exhibits[i].rect.Intersects(exhibits[j].rect));
    }
  }
}

// --- Figure 4: the Crime equal-opportunity audit flags Hollywood as an
// under-detection region.
TEST(PaperShapes, Fig4CrimeHollywoodUnderDetection) {
  data::CrimeAuditOptions opts;
  opts.sim.num_incidents = 150000;
  opts.forest.num_trees = 10;
  auto bundle = data::BuildCrimeAudit(opts);
  ASSERT_TRUE(bundle.ok());
  const data::OutcomeDataset& view = bundle->equal_opportunity;
  auto family = core::GridPartitionFamily::Create(view.locations(), 20, 20);
  ASSERT_TRUE(family.ok());
  core::AuditOptions audit_opts = FastAudit(/*alpha=*/0.01);
  audit_opts.measure = core::FairnessMeasure::kEqualOpportunity;
  auto audit = core::Auditor(audit_opts).AuditView(view, **family);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->spatially_fair);

  const geo::Rect hollywood(-118.33 - 0.08, 34.10 - 0.08, -118.33 + 0.08,
                            34.10 + 0.08);
  bool found_hollywood_dip = false;
  for (const auto& f : audit->findings) {
    if (f.local_rate < audit->overall_rate && f.rect.Intersects(hollywood)) {
      found_hollywood_dip = true;
      break;
    }
  }
  EXPECT_TRUE(found_hollywood_dip);
}

// --- Figure 6: fair worlds contain extreme-looking small clusters, but the
// audit's false-alarm rate stays at the nominal level.
TEST(PaperShapes, Fig6ExtremeClustersAreNotEvidence) {
  // Irregular locations, like the paper's Figure 6 panels: a few dense
  // clusters plus scatter (tight pockets of 5+ points are common).
  Rng rng(606);
  std::vector<geo::Point> pts;
  for (int c = 0; c < 6; ++c) {
    const geo::Point center{rng.Uniform(1, 9), rng.Uniform(1, 9)};
    for (int i = 0; i < 130; ++i) {
      pts.push_back({rng.Normal(center.x, 0.35), rng.Normal(center.y, 0.35)});
    }
  }
  while (pts.size() < 1000) pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  core::SquareScanOptions scan;
  for (double x = 0.25; x < 10.0; x += 0.5) {
    for (double y = 0.25; y < 10.0; y += 0.5) scan.centers.push_back({x, y});
  }
  scan.side_lengths = {0.5, 1.0, 1.5};
  auto family = core::SquareScanFamily::Create(pts, scan);
  ASSERT_TRUE(family.ok());

  core::MonteCarloOptions mc;
  mc.num_worlds = 199;
  auto null_dist = core::SimulateNull(**family, 0.5, 500,
                                      stats::ScanDirection::kTwoSided, mc);
  ASSERT_TRUE(null_dist.ok());

  int with_cluster = 0, rejections = 0;
  const int worlds = 40;
  std::vector<uint64_t> scratch;
  for (int w = 0; w < worlds; ++w) {
    const core::Labels labels = core::Labels::SampleBernoulli(1000, 0.5, &rng);
    std::vector<uint64_t> positives;
    (*family)->CountPositives(labels, &positives);
    for (size_t r = 0; r < (*family)->num_regions(); ++r) {
      if ((*family)->PointCount(r) >= 5 && positives[r] == 0) {
        ++with_cluster;
        break;
      }
    }
    const double tau = core::ScanMaxStatistic(
        **family, labels, stats::ScanDirection::kTwoSided, &scratch);
    if (null_dist->PValue(tau) <= 0.005) ++rejections;
  }
  // Extreme-looking clusters are common in fair data...
  EXPECT_GT(with_cluster, worlds / 2);
  // ...but the audit almost never rejects.
  EXPECT_LE(rejections, 2);
}

}  // namespace
}  // namespace sfa
