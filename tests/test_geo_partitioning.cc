// Tests for rectangular partitionings: construction, assignment via binary
// search, and the random generator used by the MeanVar experiments.
#include "geo/partitioning.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace sfa::geo {
namespace {

const Rect kExtent(0.0, 0.0, 10.0, 10.0);

TEST(Partitioning, CreateValidatesSplits) {
  EXPECT_TRUE(Partitioning::Create(kExtent, {2.0, 5.0}, {3.0}).ok());
  // Splits on or outside the boundary are rejected.
  EXPECT_FALSE(Partitioning::Create(kExtent, {0.0}, {}).ok());
  EXPECT_FALSE(Partitioning::Create(kExtent, {10.0}, {}).ok());
  EXPECT_FALSE(Partitioning::Create(kExtent, {-1.0}, {}).ok());
  EXPECT_FALSE(Partitioning::Create(Rect(0, 0, 0, 1), {}, {}).ok());
}

TEST(Partitioning, SplitsAreSortedAndDeduplicated) {
  auto p = Partitioning::Create(kExtent, {7.0, 2.0, 7.0}, {});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->x_splits(), (std::vector<double>{2.0, 7.0}));
  EXPECT_EQ(p->columns(), 3u);
  EXPECT_EQ(p->rows(), 1u);
  EXPECT_EQ(p->num_partitions(), 3u);
}

TEST(Partitioning, PartitionOfUsesHalfOpenCells) {
  auto p = Partitioning::Create(kExtent, {5.0}, {5.0});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->PartitionOf({2.0, 2.0}), 0u);   // bottom-left
  EXPECT_EQ(p->PartitionOf({7.0, 2.0}), 1u);   // bottom-right
  EXPECT_EQ(p->PartitionOf({2.0, 7.0}), 2u);   // top-left
  EXPECT_EQ(p->PartitionOf({7.0, 7.0}), 3u);   // top-right
  // A point exactly on a split belongs to the upper partition.
  EXPECT_EQ(p->PartitionOf({5.0, 0.0}), 1u);
  EXPECT_EQ(p->PartitionOf({0.0, 5.0}), 2u);
}

TEST(Partitioning, RegularMatchesManualSplits) {
  auto p = Partitioning::Regular(kExtent, 4, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->columns(), 4u);
  EXPECT_EQ(p->rows(), 2u);
  EXPECT_EQ(p->x_splits(), (std::vector<double>{2.5, 5.0, 7.5}));
  EXPECT_EQ(p->y_splits(), (std::vector<double>{5.0}));
}

TEST(Partitioning, RegularRejectsZeroCells) {
  EXPECT_FALSE(Partitioning::Regular(kExtent, 0, 2).ok());
}

TEST(Partitioning, PartitionRectsTileExtent) {
  auto p = Partitioning::Create(kExtent, {3.0, 8.0}, {2.0, 4.0, 9.0});
  ASSERT_TRUE(p.ok());
  double total = 0.0;
  for (uint32_t id = 0; id < p->num_partitions(); ++id) {
    total += p->PartitionRectById(id).Area();
  }
  EXPECT_NEAR(total, kExtent.Area(), 1e-9);
}

TEST(Partitioning, RectRoundTrip) {
  auto p = Partitioning::Create(kExtent, {1.0, 4.0, 6.5}, {3.3, 7.7});
  ASSERT_TRUE(p.ok());
  for (uint32_t id = 0; id < p->num_partitions(); ++id) {
    EXPECT_EQ(p->PartitionOf(p->PartitionRectById(id).Center()), id);
  }
}

TEST(Partitioning, AssignPartitionsMatchesPointwise) {
  auto p = Partitioning::Create(kExtent, {5.0}, {5.0});
  ASSERT_TRUE(p.ok());
  const std::vector<Point> pts = {{1, 1}, {6, 1}, {1, 6}, {6, 6}, {5, 5}};
  const auto ids = p->AssignPartitions(pts);
  ASSERT_EQ(ids.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(ids[i], p->PartitionOf(pts[i]));
  }
}

TEST(Partitioning, RandomHasRequestedSplitCounts) {
  Rng rng(5);
  auto p = Partitioning::Random(kExtent, 12, 30, &rng);
  ASSERT_TRUE(p.ok());
  // Duplicate uniform draws have probability zero.
  EXPECT_EQ(p->x_splits().size(), 12u);
  EXPECT_EQ(p->y_splits().size(), 30u);
  for (double s : p->x_splits()) {
    EXPECT_GT(s, kExtent.min_x);
    EXPECT_LT(s, kExtent.max_x);
  }
}

TEST(MakeRandomPartitionings, CountAndSplitRanges) {
  Rng rng(9);
  auto ps = MakeRandomPartitionings(kExtent, 100, 10, 40, &rng);
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(ps->size(), 100u);
  for (const Partitioning& p : *ps) {
    EXPECT_GE(p.x_splits().size(), 10u);
    EXPECT_LE(p.x_splits().size(), 40u);
    EXPECT_GE(p.y_splits().size(), 10u);
    EXPECT_LE(p.y_splits().size(), 40u);
  }
}

TEST(MakeRandomPartitionings, RejectsInvertedRange) {
  Rng rng(1);
  EXPECT_FALSE(MakeRandomPartitionings(kExtent, 5, 10, 5, &rng).ok());
}

TEST(MakeRandomPartitionings, DeterministicForSeed) {
  Rng rng_a(33), rng_b(33);
  auto a = MakeRandomPartitionings(kExtent, 10, 5, 15, &rng_a);
  auto b = MakeRandomPartitionings(kExtent, 10, 5, 15, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].x_splits(), (*b)[i].x_splits());
    EXPECT_EQ((*a)[i].y_splits(), (*b)[i].y_splits());
  }
}

// Property sweep: every point of a lattice lands in exactly the partition
// whose rect contains it.
class PartitionConsistencySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionConsistencySweep, AssignmentMatchesGeometry) {
  Rng rng(GetParam());
  auto p = Partitioning::Random(kExtent, 8, 8, &rng);
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < 15; ++j) {
      const Point pt(10.0 * i / 15.0, 10.0 * j / 15.0);
      const uint32_t id = p->PartitionOf(pt);
      ASSERT_TRUE(p->PartitionRectById(id).Contains(pt) ||
                  pt.x == kExtent.max_x || pt.y == kExtent.max_y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionConsistencySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sfa::geo
