// Tests for OutcomeDataset and its CSV persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/csv.h"
#include "data/dataset.h"

namespace sfa::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("sfa_csv_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

OutcomeDataset SmallDataset(bool with_actual) {
  OutcomeDataset ds("small");
  if (with_actual) {
    ds.Add({-80.1, 25.7}, 1, 1);
    ds.Add({-80.2, 25.8}, 0, 1);
    ds.Add({-80.3, 25.9}, 1, 0);
  } else {
    ds.Add({-80.1, 25.7}, 1);
    ds.Add({-80.2, 25.8}, 0);
  }
  return ds;
}

TEST(OutcomeDataset, BasicAccounting) {
  const OutcomeDataset ds = SmallDataset(false);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_FALSE(ds.has_actual());
  EXPECT_EQ(ds.PositiveCount(), 1u);
  EXPECT_DOUBLE_EQ(ds.PositiveRate(), 0.5);
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(OutcomeDataset, EmptyDataset) {
  OutcomeDataset ds;
  EXPECT_TRUE(ds.empty());
  EXPECT_DOUBLE_EQ(ds.PositiveRate(), 0.0);
  EXPECT_TRUE(ds.Validate().ok());
}

TEST(OutcomeDatasetDeathTest, MixingGroundTruthAborts) {
  OutcomeDataset ds;
  ds.Add({0, 0}, 1, 1);
  EXPECT_DEATH(ds.Add({1, 1}, 0), "ground truth");
}

TEST(OutcomeDataset, ValidateRejectsNonBinaryLabels) {
  OutcomeDataset ds;
  ds.Add({0, 0}, 2);
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(OutcomeDataset, FilterByActual) {
  const OutcomeDataset ds = SmallDataset(true);
  auto positives = ds.FilterByActual(1);
  ASSERT_TRUE(positives.ok());
  EXPECT_EQ(positives->size(), 2u);
  EXPECT_EQ(positives->PositiveCount(), 1u);  // predictions 1 and 0
  auto negatives = ds.FilterByActual(0);
  ASSERT_TRUE(negatives.ok());
  EXPECT_EQ(negatives->size(), 1u);
}

TEST(OutcomeDataset, FilterByActualNeedsGroundTruth) {
  const OutcomeDataset ds = SmallDataset(false);
  EXPECT_TRUE(ds.FilterByActual(1).status().IsFailedPrecondition());
}

TEST(OutcomeDataset, CountDistinctLocations) {
  OutcomeDataset ds;
  ds.Add({1, 1}, 0);
  ds.Add({1, 1}, 1);
  ds.Add({2, 2}, 0);
  EXPECT_EQ(ds.CountDistinctLocations(), 2u);
}

TEST(OutcomeDataset, SummaryMentionsNameAndCounts) {
  const OutcomeDataset ds = SmallDataset(false);
  const std::string s = ds.Summary();
  EXPECT_NE(s.find("small"), std::string::npos);
  EXPECT_NE(s.find("n=2"), std::string::npos);
}

TEST(ParseCsvLine, PlainFields) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLine, QuotedFieldsWithCommasAndEscapes) {
  auto fields = ParseCsvLine(R"("x,y",plain,"he said ""hi""")");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "x,y");
  EXPECT_EQ((*fields)[1], "plain");
  EXPECT_EQ((*fields)[2], "he said \"hi\"");
}

TEST(ParseCsvLine, ToleratesCrLf) {
  auto fields = ParseCsvLine("a,b\r");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[1], "b");
}

TEST(ParseCsvLine, RejectsMalformedQuotes) {
  EXPECT_FALSE(ParseCsvLine(R"(a,"unterminated)").ok());
  EXPECT_FALSE(ParseCsvLine(R"(mid"quote,b)").ok());
}

TEST_F(CsvTest, RoundTripWithoutActual) {
  const OutcomeDataset original = SmallDataset(false);
  ASSERT_TRUE(WriteCsv(original, path()).ok());
  auto loaded = ReadCsv(path());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), original.size());
  EXPECT_FALSE(loaded->has_actual());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded->locations()[i].x, original.locations()[i].x, 1e-8);
    EXPECT_NEAR(loaded->locations()[i].y, original.locations()[i].y, 1e-8);
    EXPECT_EQ(loaded->predicted()[i], original.predicted()[i]);
  }
}

TEST_F(CsvTest, RoundTripWithActual) {
  const OutcomeDataset original = SmallDataset(true);
  ASSERT_TRUE(WriteCsv(original, path()).ok());
  auto loaded = ReadCsv(path());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->has_actual());
  EXPECT_EQ(loaded->actual(), original.actual());
}

TEST_F(CsvTest, ReadAcceptsReorderedAndMixedCaseHeader) {
  std::ofstream out(path());
  out << "Predicted,LAT,lon,ACTUAL\n1,25.7,-80.1,0\n0,25.8,-80.2,1\n";
  out.close();
  auto loaded = ReadCsv(path());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->locations()[0].x, -80.1);
  EXPECT_EQ(loaded->predicted()[0], 1);
  EXPECT_EQ(loaded->actual()[1], 1);
}

TEST_F(CsvTest, ReadSkipsBlankLines) {
  std::ofstream out(path());
  out << "lon,lat,predicted\n1,2,1\n\n3,4,0\n";
  out.close();
  auto loaded = ReadCsv(path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST_F(CsvTest, ReadRejectsMissingColumns) {
  std::ofstream out(path());
  out << "lon,lat\n1,2\n";
  out.close();
  EXPECT_TRUE(ReadCsv(path()).status().IsParseError());
}

TEST_F(CsvTest, ReadRejectsBadLabel) {
  std::ofstream out(path());
  out << "lon,lat,predicted\n1,2,7\n";
  out.close();
  EXPECT_TRUE(ReadCsv(path()).status().IsParseError());
}

TEST_F(CsvTest, ReadRejectsBadCoordinate) {
  std::ofstream out(path());
  out << "lon,lat,predicted\nabc,2,1\n";
  out.close();
  const Status s = ReadCsv(path()).status();
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST_F(CsvTest, ReadRejectsShortRows) {
  std::ofstream out(path());
  out << "lon,lat,predicted\n1,2\n";
  out.close();
  EXPECT_TRUE(ReadCsv(path()).status().IsParseError());
}

TEST(Csv, ReadMissingFileIsIOError) {
  EXPECT_TRUE(ReadCsv("/nonexistent/definitely/not/here.csv").status().IsIOError());
}

TEST(Csv, WriteToInvalidPathIsIOError) {
  EXPECT_TRUE(
      WriteCsv(SmallDataset(false), "/nonexistent/dir/file.csv").IsIOError());
}

}  // namespace
}  // namespace sfa::data
