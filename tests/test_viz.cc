// Tests for the SVG canvas and map rendering.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/random.h"
#include "viz/map_render.h"
#include "viz/svg.h"

namespace sfa::viz {
namespace {

TEST(Color, HexRendering) {
  EXPECT_EQ(Color({0, 0, 0}).ToHex(), "#000000");
  EXPECT_EQ(Color({255, 128, 1}).ToHex(), "#ff8001");
  EXPECT_EQ(Color::Green().ToHex(), "#2e8b57");
}

TEST(SvgCanvas, PixelMappingFlipsY) {
  // Data square [0,10]^2 on a 100x100 canvas (2% margin).
  SvgCanvas canvas(geo::Rect(0, 0, 10, 10), 100, 100);
  const geo::Point bottom_left = canvas.ToPixel({0, 0});
  const geo::Point top_right = canvas.ToPixel({10, 10});
  // Bottom-left of data maps near the bottom-left of pixels (y large).
  EXPECT_LT(bottom_left.x, 5.0);
  EXPECT_GT(bottom_left.y, 95.0);
  EXPECT_GT(top_right.x, 95.0);
  EXPECT_LT(top_right.y, 5.0);
}

TEST(SvgCanvas, FinishProducesWellFormedDocument) {
  SvgCanvas canvas(geo::Rect(0, 0, 1, 1), 200, 100);
  canvas.DrawPoint({0.5, 0.5}, 2.0, Color::Red());
  canvas.DrawRect(geo::Rect(0.1, 0.1, 0.9, 0.9), Color::Blue());
  const std::string svg = canvas.Finish();
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("width=\"200\""), std::string::npos);
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgCanvas, PolygonAndText) {
  SvgCanvas canvas(geo::Rect(0, 0, 4, 4), 100, 100);
  auto triangle = geo::Polygon::Create({{1, 1}, {3, 1}, {2, 3}});
  ASSERT_TRUE(triangle.ok());
  canvas.DrawPolygon(*triangle, Color::Gray());
  canvas.DrawText({2, 2}, "A<B&C>\"D\"");
  const std::string svg = canvas.Finish();
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
  // XML special characters must be escaped.
  EXPECT_NE(svg.find("A&lt;B&amp;C&gt;&quot;D&quot;"), std::string::npos);
  EXPECT_EQ(svg.find("A<B"), std::string::npos);
}

TEST(SvgCanvasDeathTest, RejectsDegenerateInputs) {
  EXPECT_DEATH(SvgCanvas(geo::Rect(0, 0, 1, 1), 0, 100), "positive size");
  EXPECT_DEATH(SvgCanvas(geo::Rect(0, 0, 0, 0), 10, 10), "positive area");
}

data::OutcomeDataset SmallDataset() {
  Rng rng(5);
  data::OutcomeDataset ds("map");
  for (int i = 0; i < 500; ++i) {
    ds.Add({rng.Uniform(0, 10), rng.Uniform(0, 5)}, rng.Bernoulli(0.5) ? 1 : 0);
  }
  return ds;
}

TEST(RenderOutcomeMap, RejectsEmptyDataset) {
  EXPECT_FALSE(RenderOutcomeMap(data::OutcomeDataset(), {}).ok());
}

TEST(RenderOutcomeMap, ContainsPointsAndOverlays) {
  MapRegion overlay;
  overlay.rect = geo::Rect(2, 2, 4, 4);
  overlay.caption = "suspicious";
  MapOptions opts;
  opts.title = "test map";
  auto svg = RenderOutcomeMap(SmallDataset(), {overlay}, opts);
  ASSERT_TRUE(svg.ok());
  EXPECT_NE(svg->find("<circle"), std::string::npos);
  EXPECT_NE(svg->find("suspicious"), std::string::npos);
  EXPECT_NE(svg->find("test map"), std::string::npos);
  // Both outcome colors appear.
  EXPECT_NE(svg->find(Color::Green().ToHex()), std::string::npos);
  EXPECT_NE(svg->find(Color::Red().ToHex()), std::string::npos);
}

TEST(RenderOutcomeMap, DerivedHeightKeepsAspect) {
  MapOptions opts;
  opts.width = 1000;
  opts.height = 0;  // derive: data is 10 x 5 -> height ~500
  auto svg = RenderOutcomeMap(SmallDataset(), {}, opts);
  ASSERT_TRUE(svg.ok());
  const size_t pos = svg->find("height=\"");
  ASSERT_NE(pos, std::string::npos);
  const int height = std::atoi(svg->c_str() + pos + 8);
  EXPECT_GT(height, 450);
  EXPECT_LT(height, 550);
}

TEST(RenderOutcomeMap, MaxPointsLimitsCircleCount) {
  MapOptions opts;
  opts.max_points = 50;
  auto svg = RenderOutcomeMap(SmallDataset(), {}, opts);
  ASSERT_TRUE(svg.ok());
  size_t circles = 0;
  for (size_t pos = svg->find("<circle"); pos != std::string::npos;
       pos = svg->find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_LE(circles, 60u);  // stride rounding slack
}

TEST(WriteOutcomeMap, WritesFile) {
  const auto path = std::filesystem::temp_directory_path() / "sfa_viz_test.svg";
  ASSERT_TRUE(WriteOutcomeMap(SmallDataset(), {}, path.string()).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("</svg>"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(WriteOutcomeMap, BadPathIsIOError) {
  EXPECT_TRUE(WriteOutcomeMap(SmallDataset(), {}, "/nonexistent/x/y.svg")
                  .IsIOError());
}

}  // namespace
}  // namespace sfa::viz
