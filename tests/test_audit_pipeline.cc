// The pipeline's headline guarantee: for a fixed request batch (seeds
// included), the statistical payload of every AuditResponse is byte-identical
// regardless of scheduling order, parallel on/off, request order within the
// batch, and calibration cache state (cold, warm, or shared intra-batch) —
// and equals what a standalone Auditor::Audit of the same request produces.
#include "core/audit_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/grid_family.h"
#include "core/measure.h"
#include "data/dataset.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::ExpectIdenticalResult;
using core::testing::MakePlantedCity;

data::OutcomeDataset MakeCity(uint64_t seed, size_t n, bool planted_bias) {
  return MakePlantedCity(seed, n, planted_bias ? 0.35 : 0.55, 0.55,
                         planted_bias ? "biased-city" : "fair-city");
}

/// A reusable batch fixture: two cities, several families (incl. one bound
/// to the equal-opportunity view), mixed α / null models / engines.
struct Batch {
  data::OutcomeDataset city_a = MakeCity(101, 6000, /*planted_bias=*/true);
  data::OutcomeDataset city_b = MakeCity(202, 4000, /*planted_bias=*/false);
  data::OutcomeDataset city_a_eo_view;
  std::unique_ptr<GridPartitionFamily> family_a;
  std::unique_ptr<GridPartitionFamily> family_a_eo;
  std::unique_ptr<GridPartitionFamily> family_b;
  std::vector<AuditRequest> requests;

  Batch() {
    auto view = BuildMeasureView(city_a, FairnessMeasure::kEqualOpportunity);
    SFA_CHECK_OK(view.status());
    city_a_eo_view = std::move(view).value();

    auto fa = GridPartitionFamily::Create(city_a.locations(), 8, 8);
    auto fae = GridPartitionFamily::Create(city_a_eo_view.locations(), 6, 6);
    auto fb = GridPartitionFamily::Create(city_b.locations(), 10, 5);
    SFA_CHECK_OK(fa.status());
    SFA_CHECK_OK(fae.status());
    SFA_CHECK_OK(fb.status());
    family_a = std::move(fa).value();
    family_a_eo = std::move(fae).value();
    family_b = std::move(fb).value();

    auto base = [](double alpha) {
      AuditOptions o;
      o.alpha = alpha;
      o.monte_carlo.num_worlds = 99;
      o.monte_carlo.seed = 7;
      return o;
    };
    // City A, statistical parity, three α levels → one shared calibration.
    for (double alpha : {0.05, 0.01, 0.005}) {
      AuditRequest r;
      r.id = "a-sp-" + std::to_string(alpha);
      r.dataset = &city_a;
      r.family = family_a.get();
      r.options = base(alpha);
      requests.push_back(r);
    }
    // Same audit through the reference engine: excluded from the key, so it
    // must share the calibration AND produce identical results.
    {
      AuditRequest r;
      r.id = "a-sp-reference-engine";
      r.dataset = &city_a;
      r.family = family_a.get();
      r.options = base(0.01);
      r.options.monte_carlo.engine = McEngine::kReference;
      requests.push_back(r);
    }
    // City A, equal opportunity (view rebuilt by the pipeline) — distinct
    // totals, distinct calibration.
    {
      AuditRequest r;
      r.id = "a-eo";
      r.dataset = &city_a;
      r.family = family_a_eo.get();
      r.options = base(0.01);
      r.options.measure = FairnessMeasure::kEqualOpportunity;
      requests.push_back(r);
    }
    // City A under the permutation null — distinct calibration.
    {
      AuditRequest r;
      r.id = "a-sp-permutation";
      r.dataset = &city_a;
      r.family = family_a.get();
      r.options = base(0.01);
      r.options.monte_carlo.null_model = NullModel::kPermutation;
      requests.push_back(r);
    }
    // City B at two α levels and one low-direction variant.
    for (double alpha : {0.05, 0.005}) {
      AuditRequest r;
      r.id = "b-sp-" + std::to_string(alpha);
      r.dataset = &city_b;
      r.family = family_b.get();
      r.options = base(alpha);
      requests.push_back(r);
    }
    {
      AuditRequest r;
      r.id = "b-sp-low";
      r.dataset = &city_b;
      r.family = family_b.get();
      r.options = base(0.01);
      r.options.direction = stats::ScanDirection::kLow;
      requests.push_back(r);
    }
  }
};

std::vector<AuditResponse> RunOrDie(AuditPipeline& pipeline,
                                    const std::vector<AuditRequest>& batch,
                                    PipelineManifest* manifest = nullptr) {
  auto responses = pipeline.Run(batch, manifest);
  SFA_CHECK_OK(responses.status());
  for (const AuditResponse& r : *responses) SFA_CHECK_OK(r.status);
  return std::move(responses).value();
}

TEST(AuditPipeline, MatchesStandaloneAuditor) {
  Batch b;
  AuditPipeline pipeline(PipelineOptions{.parallel = true});
  const auto responses = RunOrDie(pipeline, b.requests);
  ASSERT_EQ(responses.size(), b.requests.size());
  for (size_t i = 0; i < b.requests.size(); ++i) {
    auto direct = Auditor(b.requests[i].options)
                      .Audit(*b.requests[i].dataset, *b.requests[i].family);
    ASSERT_TRUE(direct.ok()) << direct.status();
    ExpectIdenticalResult(responses[i].result, *direct,
                          "request " + b.requests[i].id);
  }
}

TEST(AuditPipeline, DeterministicAcrossParallelismAndCacheState) {
  Batch b;
  // Baseline: serial, cold cache.
  AuditPipeline serial(PipelineOptions{.parallel = false});
  const auto baseline = RunOrDie(serial, b.requests);

  // Parallel, cold cache.
  AuditPipeline parallel_cold(PipelineOptions{.parallel = true});
  const auto cold = RunOrDie(parallel_cold, b.requests);
  // Parallel, fully warm cache (same pipeline, second run).
  const auto warm = RunOrDie(parallel_cold, b.requests);

  for (size_t i = 0; i < b.requests.size(); ++i) {
    ExpectIdenticalResult(baseline[i].result, cold[i].result,
                          "serial-vs-parallel " + b.requests[i].id);
    ExpectIdenticalResult(baseline[i].result, warm[i].result,
                          "cold-vs-warm " + b.requests[i].id);
    EXPECT_TRUE(warm[i].cache_hit);
  }
}

TEST(AuditPipeline, DeterministicUnderRequestShuffle) {
  Batch b;
  AuditPipeline pipeline(PipelineOptions{.parallel = true});
  const auto in_order = RunOrDie(pipeline, b.requests);

  std::vector<size_t> perm(b.requests.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng rng(5);
  rng.Shuffle(perm.begin(), perm.end());
  std::vector<AuditRequest> shuffled;
  for (size_t i : perm) shuffled.push_back(b.requests[i]);

  AuditPipeline pipeline2(PipelineOptions{.parallel = true});
  const auto out_of_order = RunOrDie(pipeline2, shuffled);
  for (size_t j = 0; j < perm.size(); ++j) {
    ASSERT_EQ(out_of_order[j].id, b.requests[perm[j]].id);
    ExpectIdenticalResult(in_order[perm[j]].result, out_of_order[j].result,
                          "shuffled " + out_of_order[j].id);
  }
}

TEST(AuditPipeline, SharesCalibrationsAndReportsThem) {
  Batch b;
  AuditPipeline pipeline(PipelineOptions{.parallel = true});
  PipelineManifest manifest;
  RunOrDie(pipeline, b.requests, &manifest);

  // 9 requests, 5 unique calibrations: a-sp (3 α's + reference engine share
  // one), a-eo, a-sp-permutation, b-sp (2 α's share one), b-sp-low.
  EXPECT_EQ(manifest.num_requests, 9u);
  EXPECT_EQ(manifest.num_failed, 0u);
  EXPECT_EQ(manifest.calibrations_computed, 5u);
  EXPECT_EQ(manifest.calibrations_reused, 4u);
  EXPECT_NEAR(manifest.HitRate(), 4.0 / 9.0, 1e-12);

  // Warm rerun: everything is reused.
  PipelineManifest warm;
  RunOrDie(pipeline, b.requests, &warm);
  EXPECT_EQ(warm.calibrations_computed, 0u);
  EXPECT_EQ(warm.calibrations_reused, 9u);
  EXPECT_EQ(pipeline.cache().stats().entries, 5u);

  // Requests sharing a key report the same calibration identity.
  auto key_of = [&](const std::string& id) {
    for (const auto& row : warm.rows) {
      if (row.id == id) return row.calibration_key;
    }
    ADD_FAILURE() << "row not found: " << id;
    return std::string();
  };
  EXPECT_EQ(key_of("a-sp-0.050000"), key_of("a-sp-0.010000"));
  EXPECT_EQ(key_of("a-sp-0.010000"), key_of("a-sp-reference-engine"));
  EXPECT_NE(key_of("a-sp-0.010000"), key_of("a-sp-permutation"));
  EXPECT_NE(key_of("a-sp-0.010000"), key_of("a-eo"));
  EXPECT_NE(key_of("b-sp-0.050000"), key_of("b-sp-low"));
}

TEST(AuditPipeline, ManifestSerializesToJson) {
  Batch b;
  AuditPipeline pipeline;
  PipelineManifest manifest;
  RunOrDie(pipeline, b.requests, &manifest);
  const std::string json = manifest.ToJson();
  EXPECT_NE(json.find("\"num_requests\":9"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"a-eo\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\":"), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\":"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(AuditPipeline, IsolatesPerRequestFailures) {
  Batch b;
  // A family bound to the wrong point set: per-request error, not batch.
  AuditRequest bad;
  bad.id = "bad-binding";
  bad.dataset = &b.city_b;
  bad.family = b.family_a.get();
  bad.options.monte_carlo.num_worlds = 99;
  std::vector<AuditRequest> batch = {b.requests[0], bad, b.requests[4]};

  AuditPipeline pipeline;
  PipelineManifest manifest;
  auto responses = pipeline.Run(batch, &manifest);
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE((*responses)[0].status.ok());
  EXPECT_FALSE((*responses)[1].status.ok());
  EXPECT_TRUE((*responses)[2].status.ok());
  EXPECT_EQ(manifest.num_failed, 1u);
  EXPECT_FALSE(manifest.rows[1].ok);
  EXPECT_NE(manifest.rows[1].error.find("bad-binding"), std::string::npos);
}

TEST(AuditPipeline, RejectsNullPointersAtBatchLevel) {
  AuditPipeline pipeline;
  AuditRequest r;
  r.id = "null";
  auto responses = pipeline.Run({r});
  EXPECT_FALSE(responses.ok());
}

TEST(AuditPipeline, EmptyBatchYieldsEmptyResponses) {
  AuditPipeline pipeline;
  PipelineManifest manifest;
  auto responses = pipeline.Run({}, &manifest);
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
  EXPECT_EQ(manifest.num_requests, 0u);
  EXPECT_EQ(manifest.HitRate(), 0.0);
}

TEST(CalibrationKey, DistinguishesDrawRelevantInputsOnly) {
  Batch b;
  MonteCarloOptions mc;
  mc.num_worlds = 99;
  mc.seed = 7;
  const auto key = [&](const MonteCarloOptions& m) {
    return MakeCalibrationKey(*b.family_a, b.city_a.size(),
                              b.city_a.PositiveCount(),
                              stats::ScanDirection::kTwoSided, m);
  };
  const CalibrationKey base = key(mc);

  MonteCarloOptions engine = mc;
  engine.engine = McEngine::kReference;
  engine.batch_size = 3;
  engine.parallel = false;
  EXPECT_EQ(base, key(engine)) << "execution-only knobs must not split keys";

  MonteCarloOptions seeded = mc;
  seeded.seed = 8;
  EXPECT_NE(base, key(seeded));
  MonteCarloOptions worlds = mc;
  worlds.num_worlds = 199;
  EXPECT_NE(base, key(worlds));
  MonteCarloOptions null_model = mc;
  null_model.null_model = NullModel::kPermutation;
  EXPECT_NE(base, key(null_model));
  MonteCarloOptions closed_form = mc;
  closed_form.closed_form_cells = false;
  EXPECT_NE(base, key(closed_form));

  // Different family, same totals → different fingerprint.
  EXPECT_NE(base.hash,
            MakeCalibrationKey(*b.family_a_eo, b.city_a_eo_view.size(),
                               b.city_a_eo_view.PositiveCount(),
                               stats::ScanDirection::kTwoSided, mc)
                .hash);
}

}  // namespace
}  // namespace sfa::core
