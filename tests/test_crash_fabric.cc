// kill -9 chaos drills for the multi-process calibration fabric: real forked
// worker processes (fork + exec of this binary, so the drills are
// TSan-clean) are SIGKILLed at failpoint-chosen moments — mid frame write,
// between temp write and rename, while holding a lease — and the suite
// asserts the fabric's recovery contract:
//
//   * no torn frame is ever served (Load after the crash is a clean miss),
//   * the recovery sweep on the next Open reaps every leaked temp, lease,
//     and tombstone the victim left behind,
//   * a post-crash recompute is byte-identical to an undisturbed reference,
//   * two processes racing one expired lease elect exactly one winner, and
//     the loser serves the winner's persisted frame instead of simulating.
//
// This file has its own main(): re-invoked as `--crash-child=compute` it
// becomes a worker process instead of a test runner (exec gives the child a
// clean single-threaded address space, which is what makes the drills safe
// under ThreadSanitizer). The sharded-driver smoke (`--sim=<path>`, wired by
// CMake when examples are built) drives the full example_audit_server_sim
// fabric: 3 shards over one store, with and without a chaos kill.
// Labeled `fault` and run in the plain and TSan CI jobs.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/calibration_cache.h"
#include "core/calibration_store.h"
#include "core/grid_family.h"
#include "core/significance.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::MakePlantedCity;

std::string g_sim_path;  // --sim=<example_audit_server_sim>, may be empty

// ------------------------------------------------------------- the fixture --
// Parent and exec'd children rebuild this identically from constants; the
// calibration key (content-hashed) is therefore the same in every process.

struct Fixture {
  data::OutcomeDataset city = MakePlantedCity(71, 2500, 0.40);
  std::unique_ptr<GridPartitionFamily> family;
  MonteCarloOptions mc;
  CalibrationKey key;

  Fixture() {
    auto f = GridPartitionFamily::Create(city.locations(), 8, 8);
    SFA_CHECK_OK(f.status());
    family = std::move(f).value();
    mc.num_worlds = 149;
    mc.seed = 13;
    key = MakeCalibrationKey(*family, city.size(), city.PositiveCount(),
                             stats::ScanDirection::kTwoSided, mc);
  }

  Result<NullDistribution> Simulate(const ComputeContext& context) const {
    MonteCarloOptions options = mc;
    options.heartbeat = context.heartbeat;  // execution-only: key-invisible
    return SimulateNull(*family, city.PositiveRate(), city.PositiveCount(),
                        stats::ScanDirection::kTwoSided, options);
  }
};

CalibrationStore::Options FabricOptions(const std::string& dir) {
  CalibrationStore::Options options;
  options.directory = dir;
  options.lease_ttl_ms = 2'000.0;
  options.lease_heartbeat_interval_ms = 20.0;
  return options;
}

std::vector<std::string> MaximaLines(const NullDistribution& dist) {
  std::vector<std::string> lines;
  lines.reserve(dist.sorted_max().size());
  for (const double m : dist.sorted_max()) {
    lines.push_back(StrFormat("%.17g", m));
  }
  return lines;
}

// ------------------------------------------------------------ child worker --

/// The worker process body: open the shared store with leases enabled, serve
/// the fixture key through the calibration cache (heartbeating through the
/// lease at every world batch), and record the outcome. A parent-armed
/// failpoint spec stalls it at the chosen crash site; the parent kills it
/// there.
int RunComputeChild(const std::string& store_dir, const std::string& out_path,
                    const std::string& failpoints) {
  if (!failpoints.empty()) {
    SFA_CHECK_OK(Failpoints::Instance().ArmFromSpec(failpoints));
  }
  const Fixture fixture;
  auto store = CalibrationStore::Open(FabricOptions(store_dir));
  SFA_CHECK_OK(store.status());
  CalibrationCache cache;
  cache.AttachStore(std::shared_ptr<CalibrationStore>(std::move(*store)));

  CalibrationCache::Source source = CalibrationCache::Source::kComputed;
  auto dist = cache.GetOrCompute(
      fixture.key,
      [&fixture](const ComputeContext& context) {
        return fixture.Simulate(context);
      },
      &source);
  if (!dist.ok()) {
    std::fprintf(stderr, "child compute failed: %s\n",
                 dist.status().ToString().c_str());
    return 1;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  SFA_CHECK_MSG(out != nullptr, "child cannot open out file");
  const char* source_name = source == CalibrationCache::Source::kComputed
                                ? "computed"
                                : source == CalibrationCache::Source::kStore
                                      ? "store"
                                      : "memory";
  std::fprintf(out, "%s\n", source_name);
  for (const std::string& line : MaximaLines(**dist)) {
    std::fprintf(out, "%s\n", line.c_str());
  }
  std::fclose(out);
  return 0;
}

// -------------------------------------------------------- process plumbing --

std::string SelfExe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  SFA_CHECK_MSG(n > 0, "cannot resolve /proc/self/exe");
  buf[n] = '\0';
  return buf;
}

pid_t SpawnComputeChild(const std::string& store_dir,
                        const std::string& out_path,
                        const std::string& failpoints) {
  const std::string exe = SelfExe();
  const std::string store_arg = "--store=" + store_dir;
  const std::string out_arg = "--out=" + out_path;
  const std::string fp_arg = "--failpoints=" + failpoints;
  const pid_t pid = ::fork();
  SFA_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    // exec immediately: between fork and exec only async-signal-safe calls.
    const char* argv[] = {exe.c_str(),       "--crash-child=compute",
                          store_arg.c_str(), out_arg.c_str(),
                          fp_arg.c_str(),    nullptr};
    ::execv(exe.c_str(), const_cast<char**>(argv));
    ::_exit(127);
  }
  return pid;
}

int WaitChild(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
}

/// Polls `dir` (recursively) until a filename containing `token` appears.
bool WaitForFileContaining(const std::filesystem::path& dir,
                           const std::string& token, double timeout_s = 20.0) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < until) {
    std::error_code ec;
    for (std::filesystem::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->path().filename().string().find(token) != std::string::npos) {
        return true;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

/// Polls `dir` (recursively) until a `.lease` file whose identity line has
/// landed appears. Matching on the filename alone would race the holder's
/// identity write: a kill between the O_EXCL create and the write() leaves
/// an unparseable lease that is (by design) live until the TTL expires,
/// which is not the scenario this suite drills. The identity is one write()
/// syscall, so a non-empty lease is a fully-written one.
bool WaitForHeldLease(const std::filesystem::path& dir,
                      double timeout_s = 20.0) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < until) {
    std::error_code ec;
    for (std::filesystem::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->path().extension() != ".lease") continue;
      std::error_code size_ec;
      const auto size = std::filesystem::file_size(it->path(), size_ec);
      if (!size_ec && size > 0) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

std::vector<std::string> DebrisIn(const std::filesystem::path& dir) {
  std::vector<std::string> debris;
  std::error_code ec;
  for (std::filesystem::recursive_directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.find(".tmp.") != std::string::npos ||
        name.find(".reap.") != std::string::npos ||
        it->path().extension() == ".lease") {
      debris.push_back(it->path().string());
    }
  }
  return debris;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

struct TempFabricDir {
  std::filesystem::path path;

  explicit TempFabricDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("sfa_crash_fabric_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempFabricDir() { std::filesystem::remove_all(path); }

  std::string store() const { return (path / "store").string(); }
  std::string out(int i) const {
    return (path / StrFormat("out-%d.txt", i)).string();
  }
};

/// The undisturbed reference: what the calibration is when nothing crashes.
std::vector<std::string> ReferenceMaxima(const Fixture& fixture) {
  auto dist = fixture.Simulate(ComputeContext{});
  SFA_CHECK_OK(dist.status());
  return MaximaLines(*dist);
}

// ------------------------------------------------------------------ drills --

/// Kill -9 between temp write and rename (the `store.rename` failpoint
/// stalls the worker with the fully-written temp on disk and the lease
/// held). The canonical torn-publish crash.
TEST(CrashFabric, KillBetweenTempWriteAndRenameLeaksNothingDurable) {
  const Fixture fixture;
  TempFabricDir dir("rename");

  const pid_t pid = SpawnComputeChild(dir.store(), dir.out(0),
                                      "store.rename=once:delay(30000)");
  // The failpoint fires after the temp is written and flushed, so once a
  // temp is visible the worker is provably inside the stall window.
  ASSERT_TRUE(WaitForFileContaining(dir.path, ".tmp."))
      << "worker never reached the rename failpoint";
  ::kill(pid, SIGKILL);
  EXPECT_EQ(WaitChild(pid), 128 + SIGKILL);

  // The victim's wreckage: a temp and a lease, no published frame.
  EXPECT_FALSE(DebrisIn(dir.path).empty());

  // Recovery: reopening the store sweeps it all (dead writer pid and dead
  // lease holder reap immediately, no TTL wait), and the frame is a clean
  // miss — a torn calibration is never served.
  auto reopened = CalibrationStore::Open(FabricOptions(dir.store()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const CalibrationStore::Stats stats = (*reopened)->stats();
  EXPECT_GE(stats.temps_reaped, 1u);
  EXPECT_GE(stats.leases_reclaimed, 1u);
  EXPECT_EQ(DebrisIn(dir.path), std::vector<std::string>{});
  EXPECT_FALSE((*reopened)->Load(fixture.key).ok());
  reopened->reset();  // release the directory before the recompute worker

  // Recompute from scratch: byte-identical to the undisturbed reference.
  const pid_t retry = SpawnComputeChild(dir.store(), dir.out(1), "");
  EXPECT_EQ(WaitChild(retry), 0);
  const std::vector<std::string> lines = ReadLines(dir.out(1));
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], "computed");
  EXPECT_EQ(std::vector<std::string>(lines.begin() + 1, lines.end()),
            ReferenceMaxima(fixture));
}

/// Kill -9 while the lease is held and the frame write has not begun (the
/// `store.write` failpoint stalls before the temp is created — the same
/// window as dying anywhere mid-simulation).
TEST(CrashFabric, KillWithLeaseHeldMidWriteIsSweptAndRecomputed) {
  const Fixture fixture;
  TempFabricDir dir("write");

  const pid_t pid = SpawnComputeChild(dir.store(), dir.out(0),
                                      "store.write=once:delay(30000)");
  ASSERT_TRUE(WaitForHeldLease(dir.path))
      << "worker never acquired its lease";
  ::kill(pid, SIGKILL);
  EXPECT_EQ(WaitChild(pid), 128 + SIGKILL);
  EXPECT_FALSE(DebrisIn(dir.path).empty());  // at least the leaked lease

  auto reopened = CalibrationStore::Open(FabricOptions(dir.store()));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE((*reopened)->stats().leases_reclaimed, 1u);
  EXPECT_EQ(DebrisIn(dir.path), std::vector<std::string>{});
  EXPECT_FALSE((*reopened)->Load(fixture.key).ok());
  reopened->reset();

  const pid_t retry = SpawnComputeChild(dir.store(), dir.out(1), "");
  EXPECT_EQ(WaitChild(retry), 0);
  const std::vector<std::string> lines = ReadLines(dir.out(1));
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0], "computed");
  EXPECT_EQ(std::vector<std::string>(lines.begin() + 1, lines.end()),
            ReferenceMaxima(fixture));
}

/// Two real processes race one EXPIRED lease (its holder long dead): exactly
/// one wins the takeover and simulates; the other must serve the winner's
/// persisted frame, byte-identical, without ever computing.
TEST(CrashFabric, TwoProcessesRacingAnExpiredLeaseElectOneComputer) {
  const Fixture fixture;
  TempFabricDir dir("race");

  // Plant the expired lease exactly where the store will look for this key.
  {
    auto store = CalibrationStore::Open(FabricOptions(dir.store()));
    ASSERT_TRUE(store.ok());
    std::filesystem::create_directories((*store)->LeaseDir());
    const std::string lease_path = (*store)->LeasePathFor(fixture.key);
    const pid_t dead = ::fork();
    SFA_CHECK_MSG(dead >= 0, "fork failed");
    if (dead == 0) ::_exit(0);
    int status = 0;
    ::waitpid(dead, &status, 0);
    std::FILE* f = std::fopen(lease_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "pid=%d nonce=%016llx start_unix_ms=%lld\n",
                 static_cast<int>(dead), 0xdeadULL, 0LL);
    std::fclose(f);
  }

  const pid_t a = SpawnComputeChild(dir.store(), dir.out(0), "");
  const pid_t b = SpawnComputeChild(dir.store(), dir.out(1), "");
  EXPECT_EQ(WaitChild(a), 0);
  EXPECT_EQ(WaitChild(b), 0);

  const std::vector<std::string> lines_a = ReadLines(dir.out(0));
  const std::vector<std::string> lines_b = ReadLines(dir.out(1));
  ASSERT_FALSE(lines_a.empty());
  ASSERT_FALSE(lines_b.empty());
  const int computers =
      (lines_a[0] == "computed" ? 1 : 0) + (lines_b[0] == "computed" ? 1 : 0);
  EXPECT_EQ(computers, 1) << "a=" << lines_a[0] << " b=" << lines_b[0];
  EXPECT_EQ(lines_a[0] == "computed" ? lines_b[0] : lines_a[0], "store");

  // Byte-identical either way, and equal to the undisturbed reference.
  const auto reference = ReferenceMaxima(fixture);
  EXPECT_EQ(std::vector<std::string>(lines_a.begin() + 1, lines_a.end()),
            reference);
  EXPECT_EQ(std::vector<std::string>(lines_b.begin() + 1, lines_b.end()),
            reference);

  // Clean exit releases every lease: no debris without any recovery sweep.
  EXPECT_EQ(DebrisIn(dir.path), std::vector<std::string>{});
}

// ---------------------------------------------- sharded-driver smoke tests --

int RunSim(const std::string& args) {
  // die_after_fork=0 lets the TSan-built sim fork its shard workers; the
  // setting is inert everywhere else.
  const std::string cmd = "env SFA_QUICK=1 TSAN_OPTIONS=die_after_fork=0 '" +
                          g_sim_path + "' " + args + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : 128;
}

/// A 3-shard fabric run must replay byte-identically in one process (the
/// sim's own exit code asserts record-vs-replay equality, zero leftover
/// files, and a fully warm replay).
TEST(CrashFabric, ThreeShardFabricRunReplaysIdenticallySingleProcess) {
  if (g_sim_path.empty()) {
    GTEST_SKIP() << "example_audit_server_sim not built (--sim not passed)";
  }
  EXPECT_EQ(RunSim("--shards=3"), 0);
}

/// Same, with shard 1 SIGKILLed mid-flight: surviving shards finish, the
/// parent's recovery sweep leaves nothing, and the replay recomputes the
/// victim's lost calibrations byte-identically.
TEST(CrashFabric, ThreeShardFabricSurvivesAChaosKill) {
  if (g_sim_path.empty()) {
    GTEST_SKIP() << "example_audit_server_sim not built (--sim not passed)";
  }
  EXPECT_EQ(RunSim("--shards=3 --chaos-kill=1"), 0);
}

}  // namespace
}  // namespace sfa::core

int main(int argc, char** argv) {
  // Child mode: this same binary re-exec'd as a fabric worker process.
  std::string store_dir, out_path, failpoints;
  bool is_child = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--crash-child=compute") is_child = true;
    if (arg.rfind("--store=", 0) == 0) store_dir = arg.substr(8);
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    if (arg.rfind("--failpoints=", 0) == 0) failpoints = arg.substr(13);
    if (arg.rfind("--sim=", 0) == 0) sfa::core::g_sim_path = arg.substr(6);
  }
  if (is_child) {
    return sfa::core::RunComputeChild(store_dir, out_path, failpoints);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
