// Tests for the joint equal-odds audit.
#include "core/equal_odds.h"

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/random.h"
#include "core/grid_family.h"

namespace sfa::core {
namespace {

FamilyFactory GridFactory(uint32_t g) {
  return [g](const std::vector<geo::Point>& locations)
             -> Result<std::unique_ptr<RegionFamily>> {
    SFA_ASSIGN_OR_RETURN(std::unique_ptr<GridPartitionFamily> family,
                         GridPartitionFamily::Create(locations, g, g));
    return std::unique_ptr<RegionFamily>(std::move(family));
  };
}

AuditOptions FastOptions() {
  AuditOptions opts;
  opts.alpha = 0.02;
  opts.monte_carlo.num_worlds = 199;
  return opts;
}

// Model with a TPR hole in one zone and an FPR spike in another.
data::OutcomeDataset MakeModel(bool tpr_hole, bool fpr_spike, uint64_t seed) {
  Rng rng(seed);
  data::OutcomeDataset ds("model");
  const geo::Rect tpr_zone(0.0, 0.0, 3.0, 10.0);
  const geo::Rect fpr_zone(7.0, 0.0, 10.0, 10.0);
  for (int i = 0; i < 8000; ++i) {
    const geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const uint8_t actual = rng.Bernoulli(0.5) ? 1 : 0;
    uint8_t predicted = actual;
    // Baseline noise both ways.
    if (rng.Bernoulli(0.1)) predicted ^= 1;
    if (tpr_hole && actual == 1 && tpr_zone.Contains(loc) && rng.Bernoulli(0.4)) {
      predicted = 0;
    }
    if (fpr_spike && actual == 0 && fpr_zone.Contains(loc) && rng.Bernoulli(0.4)) {
      predicted = 1;
    }
    ds.Add(loc, predicted, actual);
  }
  return ds;
}

TEST(EqualOdds, RequiresGroundTruth) {
  data::OutcomeDataset ds;
  ds.Add({0, 0}, 1);
  EXPECT_TRUE(AuditEqualOdds(ds, GridFactory(4), FastOptions())
                  .status()
                  .IsFailedPrecondition());
}

TEST(EqualOdds, CleanModelIsFair) {
  const data::OutcomeDataset ds = MakeModel(false, false, 81);
  auto result = AuditEqualOdds(ds, GridFactory(5), FastOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->spatially_fair)
      << "tpr p=" << result->tpr.p_value << " fpr p=" << result->fpr.p_value;
  EXPECT_TRUE(result->tpr.spatially_fair);
  EXPECT_TRUE(result->fpr.spatially_fair);
}

TEST(EqualOdds, TprHoleAloneViolatesEqualOdds) {
  const data::OutcomeDataset ds = MakeModel(true, false, 82);
  auto result = AuditEqualOdds(ds, GridFactory(5), FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
  EXPECT_FALSE(result->tpr.spatially_fair);
  EXPECT_TRUE(result->fpr.spatially_fair);
  // The evidence sits in the planted TPR zone.
  ASSERT_FALSE(result->tpr.findings.empty());
  EXPECT_LT(result->tpr.findings[0].rect.Center().x, 4.0);
}

TEST(EqualOdds, FprSpikeAloneViolatesEqualOdds) {
  const data::OutcomeDataset ds = MakeModel(false, true, 83);
  auto result = AuditEqualOdds(ds, GridFactory(5), FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
  EXPECT_TRUE(result->tpr.spatially_fair);
  EXPECT_FALSE(result->fpr.spatially_fair);
  ASSERT_FALSE(result->fpr.findings.empty());
  EXPECT_GT(result->fpr.findings[0].rect.Center().x, 6.0);
}

TEST(EqualOdds, BothHolesFlagBothSurfaces) {
  const data::OutcomeDataset ds = MakeModel(true, true, 84);
  auto result = AuditEqualOdds(ds, GridFactory(5), FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
  EXPECT_FALSE(result->tpr.spatially_fair);
  EXPECT_FALSE(result->fpr.spatially_fair);
}

TEST(EqualOdds, ComponentsTestAtHalfAlpha) {
  const data::OutcomeDataset ds = MakeModel(false, false, 85);
  AuditOptions opts = FastOptions();
  opts.alpha = 0.1;
  auto result = AuditEqualOdds(ds, GridFactory(4), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->alpha, 0.1);
  EXPECT_DOUBLE_EQ(result->tpr.alpha, 0.05);
  EXPECT_DOUBLE_EQ(result->fpr.alpha, 0.05);
}

TEST(EqualOdds, FactoryErrorsPropagate) {
  const data::OutcomeDataset ds = MakeModel(false, false, 86);
  FamilyFactory failing =
      [](const std::vector<geo::Point>&) -> Result<std::unique_ptr<RegionFamily>> {
    return Status::Internal("factory boom");
  };
  const Status status = AuditEqualOdds(ds, failing, FastOptions()).status();
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.message().find("boom"), std::string::npos);
}

}  // namespace
}  // namespace sfa::core
