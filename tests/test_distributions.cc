// Tests for the probability distribution helpers against known values and
// cross-identities (pmf sums, cdf complements, normal symmetry).
#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sfa::stats {
namespace {

TEST(LogGamma, MatchesFactorials) {
  // Γ(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);                    // 0! = 1
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);                    // 1! = 1
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);         // 4! = 24
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-8);    // 10!
}

TEST(LogGamma, HalfIntegerValues) {
  // Γ(1/2) = sqrt(pi).
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  // Γ(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-10);
}

TEST(LogBinomialCoefficient, SmallValues) {
  EXPECT_NEAR(LogBinomialCoefficient(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogBinomialCoefficient(10, 5), std::log(252.0), 1e-9);
  EXPECT_DOUBLE_EQ(LogBinomialCoefficient(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomialCoefficient(7, 7), 0.0);
}

TEST(LogBinomialCoefficient, Symmetry) {
  for (uint64_t k = 0; k <= 30; ++k) {
    EXPECT_NEAR(LogBinomialCoefficient(30, k), LogBinomialCoefficient(30, 30 - k),
                1e-9);
  }
}

TEST(BinomialPmf, KnownValues) {
  // Binomial(4, 0.5): pmf = 1/16, 4/16, 6/16, 4/16, 1/16.
  EXPECT_NEAR(BinomialPmf(0, 4, 0.5), 1.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(2, 4, 0.5), 6.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 4, 0.5), 1.0 / 16, 1e-12);
}

TEST(BinomialPmf, DegenerateP) {
  EXPECT_DOUBLE_EQ(BinomialPmf(0, 5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(1, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(4, 5, 1.0), 0.0);
}

TEST(BinomialPmf, ImpossibleOutcome) {
  EXPECT_DOUBLE_EQ(BinomialPmf(6, 5, 0.5), 0.0);
}

TEST(BinomialPmf, SumsToOne) {
  for (double p : {0.1, 0.37, 0.5, 0.93}) {
    double total = 0.0;
    for (uint64_t k = 0; k <= 25; ++k) total += BinomialPmf(k, 25, p);
    EXPECT_NEAR(total, 1.0, 1e-10) << p;
  }
}

TEST(BinomialCdf, MatchesPartialSums) {
  const uint64_t n = 30;
  const double p = 0.42;
  double partial = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    partial += BinomialPmf(k, n, p);
    EXPECT_NEAR(BinomialCdf(k, n, p), partial, 1e-10) << k;
  }
  EXPECT_DOUBLE_EQ(BinomialCdf(n, n, p), 1.0);
}

TEST(BinomialCdf, LargeNStability) {
  // Median of Binomial(10^5, 0.5) → CDF at n/2 is ~0.5.
  EXPECT_NEAR(BinomialCdf(50000, 100000, 0.5), 0.5, 0.01);
  EXPECT_NEAR(BinomialCdf(49000, 100000, 0.5), 0.0, 1e-6);
  EXPECT_NEAR(BinomialCdf(51000, 100000, 0.5), 1.0, 1e-6);
}

TEST(BinomialSf, ComplementsCdf) {
  const uint64_t n = 20;
  const double p = 0.3;
  for (uint64_t k = 1; k <= n; ++k) {
    EXPECT_NEAR(BinomialSf(k, n, p), 1.0 - BinomialCdf(k - 1, n, p), 1e-10);
  }
  EXPECT_DOUBLE_EQ(BinomialSf(0, n, p), 1.0);
}

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959964), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959964), 0.025, 1e-6);
  EXPECT_NEAR(NormalCdf(3.0), 0.99865, 1e-5);
}

TEST(NormalCdf, Symmetry) {
  for (double z : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(NormalCdf(z) + NormalCdf(-z), 1.0, 1e-12);
  }
}

TEST(NormalPdf, PeakAndSymmetry) {
  EXPECT_NEAR(NormalPdf(0.0), 1.0 / std::sqrt(2 * M_PI), 1e-12);
  EXPECT_NEAR(NormalPdf(1.5), NormalPdf(-1.5), 1e-15);
}

TEST(BinomialTestTwoSided, FairCoinExtremes) {
  // 0 heads in 10 fair flips: p = 2 * (1/1024) ≈ 0.00195.
  EXPECT_NEAR(BinomialTestTwoSided(0, 10, 0.5), 2.0 / 1024, 1e-9);
  // 5 heads in 10 is the mode: p = 1.
  EXPECT_NEAR(BinomialTestTwoSided(5, 10, 0.5), 1.0, 1e-9);
}

TEST(BinomialTestTwoSided, FiveNegativesExample) {
  // The paper's Fig. 2(a) intuition: a region of 5 points all-negative when
  // the global negative rate is 0.38 is NOT statistically surprising.
  // Observing k=0 positives among n=5 at rho=0.62.
  const double p_value = BinomialTestTwoSided(0, 5, 0.62);
  EXPECT_GT(p_value, 0.005);  // not significant at the paper's level
}

// Property sweep: CDF is monotone in k and bounded in [0, 1].
class BinomialCdfSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(BinomialCdfSweep, MonotoneAndBounded) {
  const auto [n, p] = GetParam();
  double prev = -1.0;
  for (uint64_t k = 0; k <= n; ++k) {
    const double c = BinomialCdf(k, n, p);
    ASSERT_GE(c, prev - 1e-12);
    ASSERT_GE(c, 0.0);
    ASSERT_LE(c, 1.0);
    prev = c;
  }
  ASSERT_NEAR(prev, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Params, BinomialCdfSweep,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 10, 100),
                       ::testing::Values(0.01, 0.3, 0.5, 0.8, 0.99)));

TEST(FixedBinomialSampler, PointMasses) {
  sfa::Rng rng(51);
  const FixedBinomialSampler zero_n(0, 0.5);
  const FixedBinomialSampler zero_p(25, 0.0);
  const FixedBinomialSampler one_p(25, 1.0);
  const FixedBinomialSampler default_constructed;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(zero_n.Draw(&rng), 0u);
    EXPECT_EQ(zero_p.Draw(&rng), 0u);
    EXPECT_EQ(one_p.Draw(&rng), 25u);
    EXPECT_EQ(default_constructed.Draw(&rng), 0u);
  }
}

TEST(FixedBinomialSampler, DeterministicGivenRngState) {
  const FixedBinomialSampler sampler(100, 0.37);
  sfa::Rng a(9), b(9);
  for (int i = 0; i < 200; ++i) ASSERT_EQ(sampler.Draw(&a), sampler.Draw(&b));
}

// Chi-square goodness of fit of the alias sampler against the exact pmf.
// Deterministic (fixed seed); the acceptance bound df + 5*sqrt(2 df) is ~5
// sigma above the chi-square mean.
class FixedBinomialGof
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(FixedBinomialGof, MatchesExactPmf) {
  const auto [n, p] = GetParam();
  const FixedBinomialSampler sampler(n, p);
  sfa::Rng rng(1234 + n);
  const int draws = 40000;
  std::vector<int> observed(n + 1, 0);
  for (int i = 0; i < draws; ++i) {
    const uint64_t k = sampler.Draw(&rng);
    ASSERT_LE(k, n);
    ++observed[k];
  }
  // Merge outcomes into bins with expected count >= 5 (standard chi-square
  // validity rule), sweeping k in order.
  double chi2 = 0.0;
  int df = -1;  // one constraint: totals match
  double expected_bin = 0.0, observed_bin = 0.0;
  for (uint64_t k = 0; k <= n; ++k) {
    expected_bin += BinomialPmf(k, n, p) * draws;
    observed_bin += observed[k];
    if (expected_bin >= 5.0) {
      chi2 += (observed_bin - expected_bin) * (observed_bin - expected_bin) /
              expected_bin;
      ++df;
      expected_bin = 0.0;
      observed_bin = 0.0;
    }
  }
  if (expected_bin > 0.0) {  // trailing partial bin
    chi2 += (observed_bin - expected_bin) * (observed_bin - expected_bin) /
            std::max(expected_bin, 1e-9);
    ++df;
  }
  ASSERT_GE(df, 1);
  EXPECT_LT(chi2, df + 5.0 * std::sqrt(2.0 * df))
      << "n=" << n << " p=" << p << " df=" << df;
}

INSTANTIATE_TEST_SUITE_P(
    Params, FixedBinomialGof,
    ::testing::Values(std::make_tuple<uint64_t, double>(12, 0.3),
                      std::make_tuple<uint64_t, double>(40, 0.62),
                      std::make_tuple<uint64_t, double>(100, 0.5),
                      std::make_tuple<uint64_t, double>(1000, 0.01),
                      std::make_tuple<uint64_t, double>(500, 0.93)));

TEST(FixedBinomialSampler, LargeNMomentsMatch) {
  const uint64_t n = 20000;
  const double p = 0.62;
  const FixedBinomialSampler sampler(n, p);
  sfa::Rng rng(77);
  const int draws = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < draws; ++i) {
    const double k = static_cast<double>(sampler.Draw(&rng));
    sum += k;
    sum_sq += k * k;
  }
  const double mean = sum / draws;
  const double var = sum_sq / draws - mean * mean;
  const double expected_mean = n * p;
  const double expected_var = n * p * (1 - p);
  EXPECT_NEAR(mean, expected_mean, 6.0 * std::sqrt(expected_var / draws));
  EXPECT_NEAR(var, expected_var, 0.05 * expected_var);
}

}  // namespace
}  // namespace sfa::stats
