// Tests for streaming statistics, quantiles, and order statistics.
#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace sfa::stats {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance_population(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance_population(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance_population(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(rs.stddev_population(), 2.0);
  EXPECT_NEAR(rs.variance_sample(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MatchesNaiveOnRandomData) {
  sfa::Rng rng(3);
  std::vector<double> values(5000);
  RunningStats rs;
  double sum = 0.0;
  for (double& v : values) {
    v = rng.Uniform(-50, 50);
    rs.Add(v);
    sum += v;
  }
  const double mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  EXPECT_NEAR(rs.mean(), mean, 1e-9);
  EXPECT_NEAR(rs.variance_population(), sq / static_cast<double>(values.size()),
              1e-7);
}

TEST(RunningStats, NumericallyStableAtLargeOffset) {
  // Naive sum-of-squares catastrophically cancels here; Welford must not.
  RunningStats rs;
  const double offset = 1e9;
  for (double v : {offset + 1, offset + 2, offset + 3}) rs.Add(v);
  EXPECT_NEAR(rs.variance_population(), 2.0 / 3.0, 1e-6);
}

TEST(RunningStats, MergeEqualsSequential) {
  sfa::Rng rng(4);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 7.0);
    all.Add(v);
    (i < 400 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance_population(), all.variance_population(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  const double mean_before = a.mean();
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  RunningStats b;
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean_before);
  EXPECT_EQ(b.count(), 2u);
}

TEST(MeanAndVariance, FreeFunctions) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(VariancePopulation({1.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(VariancePopulation({0.0, 2.0}), 1.0);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> v = {3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(Quantile, LinearInterpolation) {
  // Type-7 on {10, 20}: q=0.25 → 12.5.
  EXPECT_DOUBLE_EQ(Quantile({10.0, 20.0}, 0.25), 12.5);
  EXPECT_DOUBLE_EQ(Quantile({10.0, 20.0, 30.0, 40.0}, 1.0 / 3), 20.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({42.0}, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(Quantile({42.0}, 0.73), 42.0);
}

TEST(KthLargest, Basics) {
  const std::vector<double> v = {5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(KthLargest(v, 1), 5.0);
  EXPECT_DOUBLE_EQ(KthLargest(v, 3), 3.0);
  EXPECT_DOUBLE_EQ(KthLargest(v, 5), 1.0);
}

TEST(KthLargest, WithDuplicates) {
  const std::vector<double> v = {2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(KthLargest(v, 1), 2.0);
  EXPECT_DOUBLE_EQ(KthLargest(v, 2), 2.0);
  EXPECT_DOUBLE_EQ(KthLargest(v, 3), 1.0);
}

// Property sweep: quantile is monotone in q and bracketed by min/max.
class QuantileSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuantileSweep, MonotoneAndBracketed) {
  sfa::Rng rng(GetParam());
  std::vector<double> v(257);
  for (double& x : v) x = rng.Normal(0, 10);
  double prev = Quantile(v, 0.0);
  for (int i = 1; i <= 20; ++i) {
    const double q = Quantile(v, i / 20.0);
    ASSERT_GE(q, prev - 1e-12);
    prev = q;
  }
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), *std::min_element(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), *std::max_element(v.begin(), v.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sfa::stats
