// Fault drills for the calibration store's I/O hardening: transient-write
// retry with backoff, torn-write quarantine, the disk-full circuit breaker
// (open → memory-only serving → probe → re-close), and lost write-behind
// persists. Every drill is driven by the deterministic failpoint registry
// (common/failpoint.h), so fire patterns — and therefore every counter
// asserted here — are exact, not flaky. Labeled `fault` + `tier1`.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "core/audit_pipeline.h"
#include "core/calibration_store.h"
#include "core/grid_family.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::ExpectIdenticalResult;
using core::testing::MakePlantedCity;

struct TempStoreDir {
  std::filesystem::path path;

  explicit TempStoreDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("sfa_store_fault_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempStoreDir() { std::filesystem::remove_all(path); }

  std::shared_ptr<CalibrationStore> OpenOrDie(
      CalibrationStore::Options options = {}) const {
    options.directory = path.string();
    auto store = CalibrationStore::Open(options);
    SFA_CHECK_OK(store.status());
    return std::shared_ptr<CalibrationStore>(std::move(store).value());
  }

  /// Options tuned for breaker drills: no retries masking failures, a low
  /// trip threshold, and a short (or effectively infinite) probe window.
  std::shared_ptr<CalibrationStore> OpenForBreakerDrill(
      uint32_t retries, uint32_t threshold, double probe_after_ms) const {
    CalibrationStore::Options options;
    options.store_retries = retries;
    options.breaker_failure_threshold = threshold;
    options.breaker_probe_after_ms = probe_after_ms;
    return OpenOrDie(std::move(options));
  }
};

/// One city + family + a pair of requests sharing one calibration key.
struct FaultFixture {
  data::OutcomeDataset city = MakePlantedCity(71, 2000, 0.40);
  std::unique_ptr<GridPartitionFamily> family;
  std::vector<AuditRequest> requests;

  FaultFixture() {
    auto f = GridPartitionFamily::Create(city.locations(), 6, 6);
    SFA_CHECK_OK(f.status());
    family = std::move(f).value();
    for (const char* id : {"r0", "r1"}) {
      AuditRequest r;
      r.id = id;
      r.dataset = &city;
      r.family = family.get();
      r.options.monte_carlo.num_worlds = 49;
      r.options.monte_carlo.seed = 13;
      requests.push_back(r);
    }
  }

  CalibrationKey Key() const {
    return MakeCalibrationKey(*family, city.size(), city.PositiveCount(),
                              requests[0].options.direction,
                              requests[0].options.monte_carlo);
  }

  NullDistribution Calibration() const {
    auto simulated = SimulateNull(*family, city.PositiveRate(),
                                  city.PositiveCount(),
                                  requests[0].options.direction,
                                  requests[0].options.monte_carlo);
    SFA_CHECK_OK(simulated.status());
    return std::move(simulated).value();
  }
};

class StoreFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().DisarmAll(); }
  void TearDown() override { Failpoints::Instance().DisarmAll(); }

  Failpoints& fp() { return Failpoints::Instance(); }
};

TEST_F(StoreFaultTest, RetryWithBackoffRecoversFromTransientWriteFailures) {
  TempStoreDir dir("retry");
  auto store = dir.OpenOrDie();  // default: 2 retries
  FaultFixture f;
  const NullDistribution dist = f.Calibration();

  // Exactly two transient failures, then clean: attempts 1 and 2 fail,
  // attempt 3 lands — one successful Store, zero call-level failures.
  ASSERT_TRUE(fp().Arm("store.write", "times(2):error(IOError)").ok());
  ASSERT_TRUE(store->Store(f.Key(), dist).ok());
  EXPECT_EQ(store->stats().stores, 1u);
  EXPECT_EQ(store->stats().store_retries, 2u);
  EXPECT_EQ(store->stats().store_failures, 0u);
  EXPECT_EQ(fp().HitCount("store.write"), 3u);

  auto loaded = store->Load(f.Key());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->MaximaVector(), dist.MaximaVector());
}

TEST_F(StoreFaultTest, ExhaustedRetriesFailTheCall) {
  TempStoreDir dir("exhaust");
  auto store = dir.OpenForBreakerDrill(/*retries=*/2, /*threshold=*/3,
                                       /*probe_after_ms=*/250.0);
  FaultFixture f;

  ASSERT_TRUE(fp().Arm("store.write", "always:error(IOError,still broken)").ok());
  const Status failed = store->Store(f.Key(), f.Calibration());
  EXPECT_TRUE(failed.IsIOError()) << failed;
  EXPECT_EQ(store->stats().store_failures, 1u);  // call-level, not per-attempt
  EXPECT_EQ(store->stats().store_retries, 2u);
  EXPECT_EQ(store->stats().stores, 0u);
  EXPECT_EQ(fp().HitCount("store.write"), 3u);  // 1 + 2 retries
}

TEST_F(StoreFaultTest, NonTransientErrorsAreNotRetried) {
  TempStoreDir dir("notransient");
  auto store = dir.OpenOrDie();
  FaultFixture f;

  // Disk-full (ResourceExhausted) fails immediately: retrying a full disk
  // only delays the breaker's verdict.
  ASSERT_TRUE(
      fp().Arm("store.write", "always:error(ResourceExhausted,disk full)").ok());
  const Status failed = store->Store(f.Key(), f.Calibration());
  EXPECT_TRUE(failed.IsResourceExhausted()) << failed;
  EXPECT_EQ(store->stats().store_retries, 0u);
  EXPECT_EQ(fp().HitCount("store.write"), 1u);
}

TEST_F(StoreFaultTest, TornWriteIsQuarantinedOnceAndRecomputedCleanly) {
  TempStoreDir dir("torn");
  auto store = dir.OpenOrDie();
  FaultFixture f;
  const NullDistribution dist = f.Calibration();

  // The write "succeeds" but only half the frame lands — a torn write.
  ASSERT_TRUE(fp().Arm("store.write", "once:truncate(24)").ok());
  ASSERT_TRUE(store->Store(f.Key(), dist).ok());
  const std::string path = store->FilePathFor(f.Key());
  ASSERT_EQ(std::filesystem::file_size(path), 24u);

  // First load rejects AND quarantines; the torn bytes are preserved under
  // quarantine/ and the key becomes a clean miss — never re-parsed.
  auto loaded = store->Load(f.Key());
  EXPECT_TRUE(loaded.status().IsNotFound());
  EXPECT_EQ(store->stats().load_rejected, 1u);
  EXPECT_EQ(store->stats().quarantined, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));
  const auto quarantined = std::filesystem::path(store->QuarantineDir()) /
                           std::filesystem::path(path).filename();
  ASSERT_TRUE(std::filesystem::exists(quarantined));
  EXPECT_EQ(std::filesystem::file_size(quarantined), 24u);
  auto second = store->Load(f.Key());
  EXPECT_TRUE(second.status().IsNotFound());
  EXPECT_EQ(store->stats().load_rejected, 1u);  // miss now, not a re-reject
  EXPECT_EQ(store->stats().load_misses, 1u);

  // End to end: a pipeline over the (healed) directory recomputes and its
  // responses are byte-identical to a store-less run — a torn frame costs a
  // simulation, never correctness. The recompute's write-behind then lands a
  // clean frame that round-trips.
  AuditPipeline clean, recovered;
  recovered.cache().AttachStore(store);
  auto clean_responses = clean.Run(f.requests);
  auto recovered_responses = recovered.Run(f.requests);
  SFA_CHECK_OK(clean_responses.status());
  SFA_CHECK_OK(recovered_responses.status());
  recovered.cache().FlushStore();
  for (size_t i = 0; i < clean_responses->size(); ++i) {
    SFA_CHECK_OK((*clean_responses)[i].status);
    SFA_CHECK_OK((*recovered_responses)[i].status);
    ExpectIdenticalResult((*clean_responses)[i].result,
                          (*recovered_responses)[i].result,
                          "torn-write recovery " + f.requests[i].id);
  }
  auto healed = store->Load(f.Key());
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed->MaximaVector(), dist.MaximaVector());
}

TEST_F(StoreFaultTest, DiskFullTripsBreakerAndServesMemoryOnly) {
  TempStoreDir dir("breaker");
  // Probe window far beyond the test's lifetime: this drill pins the OPEN
  // state (fast-fail + memory-only serving) without racing wall-clock time
  // on a loaded machine. Probe admission and reclose are drilled in
  // FailedProbeKeepsBreakerOpenUntilDiskHeals, whose sleeps only need a
  // *lower* bound (sleep > window), which load can't violate.
  auto store = dir.OpenForBreakerDrill(/*retries=*/0, /*threshold=*/2,
                                       /*probe_after_ms=*/3.6e6);
  FaultFixture f;
  const NullDistribution dist = f.Calibration();

  // Two consecutive disk-full failures open the breaker.
  ASSERT_TRUE(
      fp().Arm("store.write", "times(2):error(ResourceExhausted,disk full)").ok());
  EXPECT_TRUE(store->Store(f.Key(), dist).IsResourceExhausted());
  EXPECT_FALSE(store->stats().breaker_open);
  EXPECT_TRUE(store->Store(f.Key(), dist).IsResourceExhausted());
  EXPECT_TRUE(store->stats().breaker_open);
  EXPECT_EQ(store->stats().breaker_trips, 1u);

  // While open (probe window not yet elapsed): Store and Load fast-fail
  // without touching the disk — the injected site records no further hits.
  const uint64_t hits_when_open = fp().HitCount("store.write");
  EXPECT_TRUE(store->Store(f.Key(), dist).IsResourceExhausted());
  EXPECT_TRUE(store->Load(f.Key()).status().IsNotFound());
  EXPECT_EQ(fp().HitCount("store.write"), hits_when_open);
  EXPECT_EQ(store->stats().breaker_fast_fails, 2u);

  // Memory-only serving: a pipeline on the sick store still answers, bit-
  // identical to a store-less pipeline, with zero store loads.
  AuditPipeline clean, degraded_mode;
  degraded_mode.cache().AttachStore(store);
  PipelineManifest manifest;
  auto expected = clean.Run(f.requests);
  auto served = degraded_mode.Run(f.requests, &manifest);
  SFA_CHECK_OK(expected.status());
  SFA_CHECK_OK(served.status());
  EXPECT_EQ(manifest.calibrations_loaded, 0u);
  for (size_t i = 0; i < expected->size(); ++i) {
    SFA_CHECK_OK((*served)[i].status);
    ExpectIdenticalResult((*expected)[i].result, (*served)[i].result,
                          "memory-only " + f.requests[i].id);
  }

  // Still open at the end: the injection is long spent, but no probe was
  // ever admitted, so nothing touched the disk after the trip.
  EXPECT_TRUE(store->stats().breaker_open);
  EXPECT_EQ(fp().HitCount("store.write"), hits_when_open);
}

TEST_F(StoreFaultTest, FailedProbeKeepsBreakerOpenUntilDiskHeals) {
  TempStoreDir dir("probe");
  auto store = dir.OpenForBreakerDrill(/*retries=*/0, /*threshold=*/1,
                                       /*probe_after_ms=*/30.0);
  FaultFixture f;
  const NullDistribution dist = f.Calibration();

  // Trip (1 failure), then the first probe ALSO fails — still open, probe
  // timer re-armed. The second probe succeeds and closes it.
  ASSERT_TRUE(
      fp().Arm("store.write", "times(2):error(ResourceExhausted,disk full)").ok());
  EXPECT_TRUE(store->Store(f.Key(), dist).IsResourceExhausted());
  EXPECT_TRUE(store->stats().breaker_open);
  std::this_thread::sleep_for(std::chrono::milliseconds(45));
  EXPECT_TRUE(store->Store(f.Key(), dist).IsResourceExhausted());  // probe #1
  EXPECT_TRUE(store->stats().breaker_open);
  EXPECT_EQ(store->stats().breaker_trips, 1u);  // re-arm, not a second trip
  std::this_thread::sleep_for(std::chrono::milliseconds(45));
  ASSERT_TRUE(store->Store(f.Key(), dist).ok());  // probe #2
  EXPECT_FALSE(store->stats().breaker_open);

  // Closed for good: the probe's frame is durable and round-trips intact.
  auto healed = store->Load(f.Key());
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed->MaximaVector(), dist.MaximaVector());
}

TEST_F(StoreFaultTest, LoadInjectionFallsBackToRecomputeNotFailure) {
  TempStoreDir dir("loadfault");
  auto store = dir.OpenOrDie();
  FaultFixture f;

  // Seed the directory with a valid frame, then make every Load error out:
  // the read-through cache treats it as a miss and recomputes — injected
  // read failures can cost simulations, never results.
  ASSERT_TRUE(store->Store(f.Key(), f.Calibration()).ok());
  ASSERT_TRUE(fp().Arm("store.load", "always:error(IOError,read broken)").ok());
  AuditPipeline clean, faulted;
  faulted.cache().AttachStore(store);
  PipelineManifest manifest;
  auto expected = clean.Run(f.requests);
  auto served = faulted.Run(f.requests, &manifest);
  SFA_CHECK_OK(expected.status());
  SFA_CHECK_OK(served.status());
  EXPECT_EQ(manifest.calibrations_loaded, 0u);
  EXPECT_EQ(manifest.calibrations_computed, 1u);
  for (size_t i = 0; i < expected->size(); ++i) {
    SFA_CHECK_OK((*served)[i].status);
    ExpectIdenticalResult((*expected)[i].result, (*served)[i].result,
                          "load-fault " + f.requests[i].id);
  }
}

TEST_F(StoreFaultTest, LostWriteBehindPersistIsAbsorbedAndRecomputedLater) {
  TempStoreDir dir("writebehind");
  FaultFixture f;

  // Process 1 computes with every write-behind persist dropped on the floor.
  ASSERT_TRUE(fp().Arm("cache.write_behind", "always:error(IOError)").ok());
  {
    AuditPipeline p1;
    p1.cache().AttachStore(dir.OpenOrDie());
    auto r = p1.Run(f.requests);
    SFA_CHECK_OK(r.status());
    for (const auto& resp : *r) SFA_CHECK_OK(resp.status);
    p1.cache().FlushStore();
  }
  size_t frames = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    if (entry.path().extension() == ".nulldist") ++frames;
  }
  EXPECT_EQ(frames, 0u);  // nothing landed

  // "Process" 2 finds a cold directory and simply recomputes, byte-identical
  // to a cold run — lost persistence is a performance event, not an outcome.
  fp().DisarmAll();
  AuditPipeline clean, p2;
  p2.cache().AttachStore(dir.OpenOrDie());
  PipelineManifest manifest;
  auto expected = clean.Run(f.requests);
  auto recomputed = p2.Run(f.requests, &manifest);
  SFA_CHECK_OK(expected.status());
  SFA_CHECK_OK(recomputed.status());
  EXPECT_EQ(manifest.calibrations_loaded, 0u);
  EXPECT_EQ(manifest.calibrations_computed, 1u);
  for (size_t i = 0; i < expected->size(); ++i) {
    ExpectIdenticalResult((*expected)[i].result, (*recomputed)[i].result,
                          "lost-write-behind " + f.requests[i].id);
  }
}

TEST_F(StoreFaultTest, SkippedFlushStillLandsPersistsEventually) {
  TempStoreDir dir("flushskip");
  FaultFixture f;
  auto store = dir.OpenOrDie();
  AuditPipeline pipeline;
  pipeline.cache().AttachStore(store);
  auto r = pipeline.Run(f.requests);
  SFA_CHECK_OK(r.status());

  // A skipped flush models dying before fsync: the persist tasks themselves
  // are self-contained, so a later REAL flush still lands them.
  ASSERT_TRUE(fp().Arm("cache.flush", "once:error(Internal,crashed)").ok());
  pipeline.cache().FlushStore();  // skipped — may or may not have landed yet
  fp().DisarmAll();
  pipeline.cache().FlushStore();  // real flush: now it must be on disk
  auto loaded = store->Load(f.Key());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
}

TEST_F(StoreFaultTest, StreamStatsSnapshotCarriesStoreHealth) {
  TempStoreDir dir("health");
  auto store = dir.OpenForBreakerDrill(/*retries=*/1, /*threshold=*/1,
                                       /*probe_after_ms=*/60000.0);
  FaultFixture f;

  // One torn write (quarantined on load), then persistent disk-full trips
  // the breaker; the pipeline's stream_stats snapshot reports all of it.
  ASSERT_TRUE(fp().Arm("store.write", "once:corrupt").ok());
  ASSERT_TRUE(store->Store(f.Key(), f.Calibration()).ok());
  EXPECT_TRUE(store->Load(f.Key()).status().IsNotFound());
  ASSERT_TRUE(
      fp().Arm("store.write", "always:error(ResourceExhausted,disk full)").ok());
  EXPECT_FALSE(store->Store(f.Key(), f.Calibration()).ok());

  AuditPipeline pipeline;
  pipeline.cache().AttachStore(store);
  const StreamStats stats = pipeline.stream_stats();
  EXPECT_EQ(stats.store_quarantined, 1u);
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_TRUE(stats.breaker_open);
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"store_quarantined\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"breaker_open\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"deadline_misses\":0"), std::string::npos) << json;
}

}  // namespace
}  // namespace sfa::core
