// Tests for the Status/Result error model and propagation macros.
#include "common/status.h"

#include <gtest/gtest.h>

#include "common/macros.h"

namespace sfa {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::InvalidArgument("bad input").message(), "bad input");
}

TEST(Status, DeadlineExceededFactoryAndPredicate) {
  Status s = Status::DeadlineExceeded("request expired in queue");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "request expired in queue");
  EXPECT_EQ(s.ToString(), "DeadlineExceeded: request expired in queue");
  // No other predicate claims it, and no other code claims the predicate.
  EXPECT_FALSE(s.IsCancelled());
  EXPECT_FALSE(Status::Cancelled("x").IsDeadlineExceeded());
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

TEST(Status, DeadlineExceededPropagatesThroughContext) {
  Status s = Status::DeadlineExceeded("mid-calibration").WithContext("r42");
  EXPECT_TRUE(s.IsDeadlineExceeded());
  EXPECT_EQ(s.message(), "r42: mid-calibration");
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad").ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::IOError("").ToString(), "IOError");
}

TEST(Status, WithContextPrependsAndPreservesCode) {
  Status s = Status::ParseError("line 3").WithContext("file.csv");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(s.message(), "file.csv: line 3");
}

TEST(Status, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeToString, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented), "NotImplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueOnSuccess) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  SFA_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(Macros, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SFA_ASSIGN_OR_RETURN(int h, Half(x));
  SFA_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Macros, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

TEST(Macros, CheckOkPassesOnOk) { SFA_CHECK_OK(Status::OK()); }

TEST(MacrosDeathTest, CheckAborts) {
  EXPECT_DEATH(SFA_CHECK(false), "SFA_CHECK failed");
}

TEST(MacrosDeathTest, CheckMsgIncludesMessage) {
  EXPECT_DEATH(SFA_CHECK_MSG(1 == 2, "custom detail " << 42), "custom detail 42");
}

TEST(MacrosDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(SFA_CHECK_OK(Status::Internal("boom")), "boom");
}

}  // namespace
}  // namespace sfa
