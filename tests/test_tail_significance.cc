// Statistical acceptance of tail-smart significance (stat label, like the
// other K = 200 suites):
//
//   * adaptive sequential MC must be DECISION-INVISIBLE: on K = 200 fair
//     audits at W = 999 / α = 0.05, the adaptive pipeline must reach the
//     same fair/unfair verdict as the exact fixed-worlds pipeline on every
//     audit, while simulating several times fewer worlds in aggregate (the
//     ISSUE targets 5–10x on this suite shape; the observed seeded ratio is
//     pinned below);
//   * the Gumbel tail path must engage where it matters: on planted cities
//     whose observed Λ dwarfs every null maximum, kAuto resolves p-values
//     below the empirical floor 1/(W+1) without ever flipping a decision
//     against exact MC.
//
// Everything is seeded, so the agreement counts and the worlds-saved ratio
// are reproducible, not flaky thresholds.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "core/audit_pipeline.h"
#include "core/grid_family.h"
#include "core/significance.h"
#include "data/dataset.h"
#include "testing_util.h"

namespace sfa::core {
namespace {

using core::testing::MakeFairDataset;
using core::testing::MakePlantedCity;

constexpr size_t kNumAudits = 200;
constexpr uint32_t kNumWorlds = 999;
constexpr size_t kPointsPerAudit = 400;
constexpr double kRho = 0.4;
constexpr double kAlpha = 0.05;

struct Suite {
  std::vector<std::unique_ptr<data::OutcomeDataset>> datasets;
  std::vector<std::unique_ptr<GridPartitionFamily>> families;
  std::vector<AuditRequest> requests;
};

/// K fair audits, each with its own data + MC seed (the suite shape of
/// test_pvalue_calibration.cc, at the larger W this suite is about).
Suite FairSuite(bool adaptive) {
  Suite suite;
  for (size_t k = 0; k < kNumAudits; ++k) {
    auto ds = std::make_unique<data::OutcomeDataset>(MakeFairDataset(
        1000 + k, kPointsPerAudit, kRho, 3, 2, "fair-" + std::to_string(k)));
    auto family = GridPartitionFamily::Create(ds->locations(), 6, 6);
    SFA_CHECK_OK(family.status());

    AuditRequest req;
    req.id = std::to_string(k);
    req.dataset = ds.get();
    req.family = family->get();
    req.options.alpha = kAlpha;
    req.options.significance = SignificanceMethod::kAuto;
    req.options.monte_carlo.num_worlds = kNumWorlds;
    req.options.monte_carlo.seed = 5000 + k;
    req.options.monte_carlo.adaptive.enabled = adaptive;
    suite.requests.push_back(req);

    suite.datasets.push_back(std::move(ds));
    suite.families.push_back(std::move(*family));
  }
  return suite;
}

std::vector<AuditResponse> RunSuite(const Suite& suite,
                                    PipelineManifest* manifest = nullptr) {
  AuditPipeline pipeline;
  auto responses = pipeline.Run(suite.requests, manifest);
  SFA_CHECK_OK(responses.status());
  for (const AuditResponse& response : *responses) SFA_CHECK_OK(response.status);
  return *std::move(responses);
}

TEST(TailSignificance, AdaptiveDecisionsMatchExactMcAtFractionOfWorlds) {
  const Suite exact_suite = FairSuite(/*adaptive=*/false);
  const Suite adaptive_suite = FairSuite(/*adaptive=*/true);
  const std::vector<AuditResponse> exact = RunSuite(exact_suite);
  PipelineManifest manifest;
  const std::vector<AuditResponse> adaptive = RunSuite(adaptive_suite, &manifest);
  ASSERT_EQ(exact.size(), kNumAudits);
  ASSERT_EQ(adaptive.size(), kNumAudits);

  size_t disagreements = 0, early_stops = 0;
  uint64_t adaptive_worlds = 0;
  for (size_t k = 0; k < kNumAudits; ++k) {
    const AuditResult& e = exact[k].result;
    const AuditResult& a = adaptive[k].result;
    if (e.spatially_fair != a.spatially_fair) {
      ++disagreements;
      ADD_FAILURE() << "audit " << k << ": exact p=" << e.p_value
                    << " adaptive p=" << a.p_value << " at "
                    << a.null_distribution.num_worlds() << "/" << kNumWorlds
                    << " worlds";
    }
    ASSERT_EQ(e.null_distribution.num_worlds(), kNumWorlds);
    adaptive_worlds += a.null_distribution.num_worlds();
    if (a.null_distribution.early_stopped()) {
      ++early_stops;
      // An early stop must never leave the served p-value on the wrong side
      // of α relative to its own verdict.
      if (a.null_distribution.stop_reason() == McStopReason::kCiBelowAlpha) {
        EXPECT_LE(a.p_value, kAlpha) << "audit " << k;
      } else {
        EXPECT_GT(a.p_value, kAlpha) << "audit " << k;
      }
    }
  }
  const uint64_t exact_worlds = uint64_t{kNumAudits} * kNumWorlds;
  const double ratio =
      static_cast<double>(exact_worlds) / static_cast<double>(adaptive_worlds);
  printf("[tail significance] decisions: %zu/%zu agree, %zu early stops\n",
         kNumAudits - disagreements, kNumAudits, early_stops);
  printf("[tail significance] worlds: %llu exact vs %llu adaptive (%.1fx)\n",
         static_cast<unsigned long long>(exact_worlds),
         static_cast<unsigned long long>(adaptive_worlds), ratio);

  EXPECT_EQ(disagreements, 0u);
  // Nearly every fair audit is clear-cut at W = 999; only the handful of
  // marginal p ≈ α cases should run deep.
  EXPECT_GE(early_stops, kNumAudits * 9 / 10);
  // The ISSUE's 5–10x target for this suite shape. Seeded, so the observed
  // ratio is stable; the band documents the statistical expectation.
  EXPECT_GE(ratio, 5.0);
  EXPECT_LE(ratio, 10.0);
  // The manifest tells the same story.
  EXPECT_EQ(manifest.early_stops, early_stops);
  EXPECT_EQ(manifest.worlds_saved, exact_worlds - adaptive_worlds);
}

TEST(TailSignificance, GumbelTailResolvesSubFloorPValuesWithoutFlippingDecisions) {
  // Planted cities: Λ far beyond every null maximum, so the empirical
  // p-value saturates at its floor 1/(W+1) and kAuto reaches for the tail.
  constexpr size_t kPlanted = 40;
  Suite tail_suite, empirical_suite;
  for (size_t k = 0; k < kPlanted; ++k) {
    for (Suite* suite : {&tail_suite, &empirical_suite}) {
      auto ds = std::make_unique<data::OutcomeDataset>(
          MakePlantedCity(2000 + k, 3000, 1.0));
      auto family = GridPartitionFamily::Create(ds->locations(), 6, 6);
      SFA_CHECK_OK(family.status());
      AuditRequest req;
      req.id = std::to_string(k);
      req.dataset = ds.get();
      req.family = family->get();
      req.options.alpha = kAlpha;
      req.options.significance = suite == &tail_suite
                                     ? SignificanceMethod::kAuto
                                     : SignificanceMethod::kEmpirical;
      req.options.monte_carlo.num_worlds = kNumWorlds;
      req.options.monte_carlo.seed = 8000 + k;
      suite->requests.push_back(req);
      suite->datasets.push_back(std::move(ds));
      suite->families.push_back(std::move(*family));
    }
  }
  const std::vector<AuditResponse> tail = RunSuite(tail_suite);
  const std::vector<AuditResponse> empirical = RunSuite(empirical_suite);

  constexpr double kEmpiricalFloor = 1.0 / (kNumWorlds + 1.0);
  size_t tail_fits = 0;
  for (size_t k = 0; k < kPlanted; ++k) {
    const AuditResult& t = tail[k].result;
    const AuditResult& e = empirical[k].result;
    // Tail extrapolation may only sharpen the p-value, never the verdict.
    ASSERT_EQ(t.spatially_fair, e.spatially_fair) << "audit " << k;
    EXPECT_FALSE(t.spatially_fair) << "audit " << k;
    EXPECT_EQ(e.p_value_method, SignificanceMethod::kEmpirical);
    if (t.p_value_method == SignificanceMethod::kGumbelTail) {
      ++tail_fits;
      EXPECT_TRUE(t.tail_fit_ok) << "audit " << k;
      EXPECT_LT(t.tail_ks, kDefaultTailKsGate) << "audit " << k;
      EXPECT_LT(t.p_value, kEmpiricalFloor) << "audit " << k;
      EXPECT_GT(t.p_value, 0.0) << "audit " << k;
    } else {
      // kAuto fell back because the KS gate rejected the fit — then the
      // served p-value must be exactly the empirical one.
      EXPECT_EQ(t.p_value, e.p_value) << "audit " << k;
    }
  }
  printf("[tail significance] Gumbel tail engaged on %zu/%zu planted audits\n",
         tail_fits, kPlanted);
  // The null of the max over a 6x6 partition grid is squarely in Gumbel
  // territory; the gate should accept the large majority of fits.
  EXPECT_GE(tail_fits, kPlanted * 3 / 4);
}

}  // namespace
}  // namespace sfa::core
