// Tests for evidence post-processing: top-k, best-per-group, and greedy
// non-overlapping selection.
#include "core/evidence.h"

#include <gtest/gtest.h>

namespace sfa::core {
namespace {

RegionFinding MakeFinding(double llr, const geo::Rect& rect, uint32_t group = 0) {
  RegionFinding f;
  f.llr = llr;
  f.rect = rect;
  f.group = group;
  f.significant = true;
  return f;
}

TEST(TopK, TakesPrefix) {
  std::vector<RegionFinding> findings = {
      MakeFinding(9, {0, 0, 1, 1}), MakeFinding(5, {2, 2, 3, 3}),
      MakeFinding(1, {4, 4, 5, 5})};
  EXPECT_EQ(TopK(findings, 2).size(), 2u);
  EXPECT_DOUBLE_EQ(TopK(findings, 2)[0].llr, 9.0);
  EXPECT_EQ(TopK(findings, 10).size(), 3u);
  EXPECT_TRUE(TopK(findings, 0).empty());
  EXPECT_TRUE(TopK({}, 3).empty());
}

TEST(BestPerGroup, KeepsMaxLlrPerGroup) {
  std::vector<RegionFinding> findings = {
      MakeFinding(3, {0, 0, 1, 1}, /*group=*/0),
      MakeFinding(7, {0, 0, 2, 2}, /*group=*/0),
      MakeFinding(5, {4, 4, 5, 5}, /*group=*/1),
      MakeFinding(2, {4, 4, 6, 6}, /*group=*/1),
      MakeFinding(1, {8, 8, 9, 9}, /*group=*/2)};
  const auto best = BestPerGroup(findings);
  ASSERT_EQ(best.size(), 3u);
  // Sorted by LLR descending.
  EXPECT_DOUBLE_EQ(best[0].llr, 7.0);
  EXPECT_DOUBLE_EQ(best[1].llr, 5.0);
  EXPECT_DOUBLE_EQ(best[2].llr, 1.0);
  EXPECT_EQ(best[0].group, 0u);
}

TEST(BestPerGroup, EmptyInput) { EXPECT_TRUE(BestPerGroup({}).empty()); }

TEST(SelectNonOverlapping, KeepsDisjointRegions) {
  std::vector<RegionFinding> findings = {
      MakeFinding(10, {0, 0, 2, 2}),   // kept (best)
      MakeFinding(8, {1, 1, 3, 3}),    // overlaps the first → dropped
      MakeFinding(6, {5, 5, 7, 7}),    // disjoint → kept
      MakeFinding(4, {6, 6, 8, 8}),    // overlaps the third → dropped
      MakeFinding(2, {9, 9, 10, 10}),  // disjoint → kept
  };
  const auto kept = SelectNonOverlapping(findings);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_DOUBLE_EQ(kept[0].llr, 10.0);
  EXPECT_DOUBLE_EQ(kept[1].llr, 6.0);
  EXPECT_DOUBLE_EQ(kept[2].llr, 2.0);
  // Pairwise disjoint.
  for (size_t i = 0; i < kept.size(); ++i) {
    for (size_t j = i + 1; j < kept.size(); ++j) {
      EXPECT_FALSE(kept[i].rect.Intersects(kept[j].rect));
    }
  }
}

TEST(SelectNonOverlapping, SortsByLlrBeforeSelecting) {
  // Input deliberately unsorted: the low-LLR overlapping region must lose
  // even though it comes first.
  std::vector<RegionFinding> findings = {
      MakeFinding(1, {0, 0, 2, 2}),
      MakeFinding(9, {1, 1, 3, 3}),
  };
  const auto kept = SelectNonOverlapping(findings);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].llr, 9.0);
}

TEST(SelectNonOverlapping, TouchingEdgesDoNotOverlap) {
  std::vector<RegionFinding> findings = {
      MakeFinding(5, {0, 0, 1, 1}),
      MakeFinding(4, {1, 0, 2, 1}),  // shares an edge only
  };
  EXPECT_EQ(SelectNonOverlapping(findings).size(), 2u);
}

TEST(SelectNonOverlapping, EmptyInput) {
  EXPECT_TRUE(SelectNonOverlapping({}).empty());
}

TEST(EvidencePipeline, BestPerGroupThenNonOverlapping) {
  // Two scan centers, several side lengths each, as in the paper's Fig. 5
  // procedure: first the best region per center, then the overlap filter.
  std::vector<RegionFinding> findings = {
      MakeFinding(3, {0, 0, 1, 1}, 0), MakeFinding(8, {0, 0, 4, 4}, 0),
      MakeFinding(6, {3, 3, 5, 5}, 1), MakeFinding(2, {3, 3, 6, 6}, 1)};
  const auto best = BestPerGroup(findings);
  ASSERT_EQ(best.size(), 2u);
  const auto kept = SelectNonOverlapping(best);
  // Center 0's best (llr 8, rect 0..4) overlaps center 1's best (llr 6,
  // rect 3..5) → only the stronger survives.
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].llr, 8.0);
}

}  // namespace
}  // namespace sfa::core
