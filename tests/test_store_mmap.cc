// The zero-copy warm path of the CalibrationStore: mmap'd frame views must
// stay valid and byte-identical while eviction, recovery sweeps, and
// re-Stores unlink or rewrite the frames under them (POSIX keeps mapped
// pages alive until the last munmap); the in-memory index must answer warm
// hits without re-validating unchanged frames and must detect foreign
// rewrites by signature; and every way the mmap path can be unavailable —
// the SFA_STORE_MMAP=0 escape hatch, an injected `store.mmap` failure —
// must degrade to the copy path with bit-identical results. Run under TSan
// in CI alongside the other store suites.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/random.h"
#include "core/calibration_store.h"

namespace sfa::core {
namespace {

/// A fresh, empty store directory, removed on destruction.
struct TempStoreDir {
  std::filesystem::path path;

  explicit TempStoreDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("sfa_store_mmap_test_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempStoreDir() { std::filesystem::remove_all(path); }

  std::shared_ptr<CalibrationStore> OpenOrDie(
      CalibrationStore::Options options = {}) const {
    options.directory = path.string();
    auto store = CalibrationStore::Open(options);
    SFA_CHECK_OK(store.status());
    return std::shared_ptr<CalibrationStore>(std::move(store).value());
  }
};

CalibrationKey MakeKey(uint64_t n) {
  CalibrationKey key;
  key.hash = 0x9e3779b97f4a7c15ULL * (n + 1);
  key.debug = "mmap-test-key-" + std::to_string(n);
  return key;
}

/// A deterministic synthetic calibration; distinct seeds give frames whose
/// maxima differ in (almost) every double — a torn or mixed read of two
/// generations cannot masquerade as either.
NullDistribution MakeDistribution(uint64_t seed, size_t worlds = 512) {
  Rng rng(seed);
  std::vector<double> maxima(worlds);
  for (double& m : maxima) m = rng.Uniform(0.0, 20.0);
  return NullDistribution(std::move(maxima));
}

class StoreMmapTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().DisarmAll(); }
  void TearDown() override { Failpoints::Instance().DisarmAll(); }

  Failpoints& fp() { return Failpoints::Instance(); }
};

TEST_F(StoreMmapTest, LoadViewServesZeroCopyByteIdenticalToLoad) {
  TempStoreDir dir("zero_copy");
  auto store = dir.OpenOrDie();
  const CalibrationKey key = MakeKey(1);
  const NullDistribution dist = MakeDistribution(10);
  ASSERT_TRUE(store->Store(key, dist).ok());

  auto view = store->LoadView(key);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_TRUE(view->zero_copy());
  EXPECT_EQ(view->MaximaVector(), dist.MaximaVector());
  EXPECT_EQ(view->worlds_requested(), dist.worlds_requested());
  EXPECT_EQ(view->stop_reason(), dist.stop_reason());

  auto copy = store->Load(key);
  ASSERT_TRUE(copy.ok()) << copy.status();
  EXPECT_FALSE(copy->zero_copy());
  EXPECT_EQ(copy->MaximaVector(), view->MaximaVector());

  const CalibrationStore::Stats stats = store->stats();
  EXPECT_EQ(stats.mmap_loads, 1u);
  EXPECT_EQ(stats.mmap_frames, 1u);
  EXPECT_GT(stats.mmap_bytes, 0u);
  EXPECT_EQ(stats.load_hits, 2u);  // the view and the copy both count
}

TEST_F(StoreMmapTest, WarmHitsAreAnsweredByTheIndexWithoutRevalidation) {
  TempStoreDir dir("index_gate");
  auto store = dir.OpenOrDie();
  const CalibrationKey key = MakeKey(2);
  ASSERT_TRUE(store->Store(key, MakeDistribution(20)).ok());

  // First load earns the checksum (a Store never pre-validates its own
  // frame — torn bytes that land on disk must fail the first read).
  ASSERT_TRUE(store->Load(key).ok());
  EXPECT_EQ(store->stats().index_hits, 0u);

  // Warm copy-path hit: unchanged (size, mtime, generation) signature —
  // answered on the index's word, no re-checksum.
  ASSERT_TRUE(store->Load(key).ok());
  EXPECT_EQ(store->stats().index_hits, 1u);

  // The first LoadView maps the frame and earns ITS one-time validation of
  // the mapped generation (not an index-answered hit); every later view is.
  ASSERT_TRUE(store->LoadView(key).ok());
  EXPECT_EQ(store->stats().index_hits, 1u);
  ASSERT_TRUE(store->LoadView(key).ok());
  EXPECT_EQ(store->stats().index_hits, 2u);
  EXPECT_EQ(store->stats().mmap_loads, 2u);
}

TEST_F(StoreMmapTest, ViewsSurviveEvictionOfTheirFrame) {
  TempStoreDir dir("evict");
  auto store = dir.OpenOrDie();
  const CalibrationKey key = MakeKey(3);
  const NullDistribution dist = MakeDistribution(30);
  ASSERT_TRUE(store->Store(key, dist).ok());

  auto view = store->LoadView(key);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(store->stats().mmap_frames, 1u);

  // Evict everything: the file is unlinked while the view still maps it.
  auto evicted = store->EvictToBudget(0);
  ASSERT_TRUE(evicted.ok()) << evicted.status();
  EXPECT_FALSE(std::filesystem::exists(store->FilePathFor(key)));
  // The index dropped its mapping (gauge back to zero)...
  EXPECT_EQ(store->stats().mmap_frames, 0u);
  EXPECT_EQ(store->stats().mmap_bytes, 0u);
  // ...but the outstanding view still pins the pages, byte-identical.
  EXPECT_EQ(view->MaximaVector(), dist.MaximaVector());

  // A fresh load honestly misses now.
  EXPECT_TRUE(store->LoadView(key).status().IsNotFound());
}

TEST_F(StoreMmapTest, ViewsSurviveReStoreAndNewLoadsSeeTheNewGeneration) {
  TempStoreDir dir("restore");
  auto store = dir.OpenOrDie();
  const CalibrationKey key = MakeKey(4);
  const NullDistribution gen_a = MakeDistribution(40);
  const NullDistribution gen_b = MakeDistribution(41);
  ASSERT_TRUE(store->Store(key, gen_a).ok());

  auto view_a = store->LoadView(key);
  ASSERT_TRUE(view_a.ok()) << view_a.status();

  // Re-Store rewrites the frame via rename-over; the old mapping is
  // dropped from the index, but view_a's pages live on.
  ASSERT_TRUE(store->Store(key, gen_b).ok());
  EXPECT_EQ(view_a->MaximaVector(), gen_a.MaximaVector());

  auto view_b = store->LoadView(key);
  ASSERT_TRUE(view_b.ok()) << view_b.status();
  EXPECT_EQ(view_b->MaximaVector(), gen_b.MaximaVector());
  // Both generations remain simultaneously readable.
  EXPECT_EQ(view_a->MaximaVector(), gen_a.MaximaVector());
}

TEST_F(StoreMmapTest, ForeignRewriteIsDetectedAndRemapped) {
  TempStoreDir dir("foreign");
  auto local = dir.OpenOrDie();
  auto foreign = dir.OpenOrDie();  // a second process in spirit
  const CalibrationKey key = MakeKey(5);
  const NullDistribution gen_a = MakeDistribution(50, 512);
  const NullDistribution gen_b = MakeDistribution(51, 768);  // different size
  ASSERT_TRUE(local->Store(key, gen_a).ok());

  auto view_a = local->LoadView(key);
  ASSERT_TRUE(view_a.ok()) << view_a.status();
  EXPECT_EQ(local->stats().remap_races, 0u);

  // The foreign writer replaces the frame behind local's back: local's
  // index still vouches for the OLD signature, so the next hit must notice
  // the mismatch, count a remap race, re-validate, and serve the new bytes.
  ASSERT_TRUE(foreign->Store(key, gen_b).ok());
  auto view_b = local->LoadView(key);
  ASSERT_TRUE(view_b.ok()) << view_b.status();
  EXPECT_EQ(view_b->MaximaVector(), gen_b.MaximaVector());
  EXPECT_EQ(local->stats().remap_races, 1u);
  // The pinned old view is unaffected.
  EXPECT_EQ(view_a->MaximaVector(), gen_a.MaximaVector());
}

TEST_F(StoreMmapTest, EnvVarEscapeHatchFallsBackToIdenticalCopyPath) {
  TempStoreDir dir("env_gate");
  const CalibrationKey key = MakeKey(6);
  const NullDistribution dist = MakeDistribution(60);
  ASSERT_TRUE(dir.OpenOrDie()->Store(key, dist).ok());

  ::setenv("SFA_STORE_MMAP", "0", 1);
  auto store = dir.OpenOrDie();
  ::unsetenv("SFA_STORE_MMAP");

  EXPECT_FALSE(store->mmap_enabled());
  auto view = store->LoadView(key);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_FALSE(view->zero_copy());
  EXPECT_EQ(view->MaximaVector(), dist.MaximaVector());
  EXPECT_EQ(store->stats().mmap_loads, 0u);
  EXPECT_EQ(store->stats().mmap_frames, 0u);
  EXPECT_EQ(store->stats().load_hits, 1u);
}

TEST_F(StoreMmapTest, OptionGateDisablesMmapToo) {
  TempStoreDir dir("opt_gate");
  const CalibrationKey key = MakeKey(7);
  const NullDistribution dist = MakeDistribution(70);
  ASSERT_TRUE(dir.OpenOrDie()->Store(key, dist).ok());

  CalibrationStore::Options no_mmap;
  no_mmap.use_mmap = false;
  auto store = dir.OpenOrDie(no_mmap);
  EXPECT_FALSE(store->mmap_enabled());
  auto view = store->LoadView(key);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_FALSE(view->zero_copy());
  EXPECT_EQ(view->MaximaVector(), dist.MaximaVector());
  EXPECT_EQ(store->stats().mmap_loads, 0u);
}

TEST_F(StoreMmapTest, MmapFailpointDegradesToIdenticalCopyPath) {
  TempStoreDir dir("failpoint");
  auto store = dir.OpenOrDie();
  const CalibrationKey key = MakeKey(8);
  const NullDistribution dist = MakeDistribution(80);
  ASSERT_TRUE(store->Store(key, dist).ok());

  ASSERT_TRUE(
      fp().Arm("store.mmap", "always:error(IOError,mmap broken)").ok());
  auto view = store->LoadView(key);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_FALSE(view->zero_copy());
  EXPECT_EQ(view->MaximaVector(), dist.MaximaVector());
  EXPECT_EQ(store->stats().mmap_loads, 0u);
  EXPECT_EQ(store->stats().load_hits, 1u);

  // Once the condition clears, the next hit maps as usual.
  fp().DisarmAll();
  auto mapped = store->LoadView(key);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->zero_copy());
  EXPECT_EQ(mapped->MaximaVector(), dist.MaximaVector());
}

TEST_F(StoreMmapTest, TouchFailureDegradesToInMemoryRecencyAndLruSurvives) {
  TempStoreDir dir("touch");
  auto store = dir.OpenOrDie();
  const CalibrationKey key_old = MakeKey(90);
  const CalibrationKey key_new = MakeKey(91);
  ASSERT_TRUE(store->Store(key_old, MakeDistribution(90)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(store->Store(key_new, MakeDistribution(91)).ok());

  // A read-only filesystem: the LRU mtime touch cannot land. The hit still
  // succeeds, the condition is counted, and recency is tracked in memory.
  ASSERT_TRUE(
      fp().Arm("store.touch", "always:error(IOError,read-only fs)").ok());
  ASSERT_TRUE(store->Load(key_old).ok());
  EXPECT_EQ(store->stats().touch_failures, 1u);
  fp().DisarmAll();

  // LRU still works off the in-memory recency: key_old was just used, so
  // eviction to a one-frame budget must sweep key_new (older by
  // max(mtime, last_used)) and keep key_old — with mtime alone, key_old
  // (the older file) would have been the victim.
  const auto budget =
      std::filesystem::file_size(store->FilePathFor(key_old));
  auto evicted = store->EvictToBudget(budget);
  ASSERT_TRUE(evicted.ok()) << evicted.status();
  EXPECT_TRUE(std::filesystem::exists(store->FilePathFor(key_old)));
  EXPECT_FALSE(std::filesystem::exists(store->FilePathFor(key_new)));
}

// The mutation-vs-readers drill (TSan-relevant): reader threads hold and
// re-verify views while the main thread alternates generations, evicts to
// zero, and runs recovery sweeps over the same key. Every view a reader
// ever observes must be EXACTLY one generation's bytes — a mix, a tear, or
// a dangling page would either mismatch or crash — and views pinned before
// a mutation must stay byte-stable after it.
TEST_F(StoreMmapTest, ConcurrentViewersSurviveEvictionSweepsAndRewrites) {
  TempStoreDir dir("concurrent");
  auto store = dir.OpenOrDie();
  const CalibrationKey key = MakeKey(100);
  const NullDistribution gen_a = MakeDistribution(100);
  const NullDistribution gen_b = MakeDistribution(101);
  const std::vector<double> bytes_a = gen_a.MaximaVector();
  const std::vector<double> bytes_b = gen_b.MaximaVector();
  ASSERT_TRUE(store->Store(key, gen_a).ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> views_checked{0};
  std::atomic<size_t> generation_mixups{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      NullDistributionView pinned;  // longest-held view so far
      std::vector<double> pinned_bytes;
      while (!stop.load(std::memory_order_relaxed)) {
        auto view = store->LoadView(key);
        if (!view.ok()) continue;  // a miss between evict and re-store
        const std::vector<double> got = view->MaximaVector();
        if (got != bytes_a && got != bytes_b) {
          ++generation_mixups;
        }
        if (pinned_bytes.empty()) {
          pinned = *view;
          pinned_bytes = got;
        } else if (pinned.MaximaVector() != pinned_bytes) {
          // A held view changed under us: the mapping was torn down.
          ++generation_mixups;
        }
        ++views_checked;
      }
    });
  }

  for (int round = 0; round < 60; ++round) {
    const NullDistribution& gen = round % 2 == 0 ? gen_b : gen_a;
    ASSERT_TRUE(store->Store(key, gen).ok());
    if (round % 5 == 0) {
      auto evicted = store->EvictToBudget(0);
      ASSERT_TRUE(evicted.ok()) << evicted.status();
      ASSERT_TRUE(store->Store(key, gen).ok());
    }
    if (round % 7 == 0) store->RecoverySweep();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(views_checked.load(), 0u);
  EXPECT_EQ(generation_mixups.load(), 0u);
  // The store survives the drill in a consistent state.
  auto final_view = store->LoadView(key);
  ASSERT_TRUE(final_view.ok()) << final_view.status();
  const std::vector<double> final_bytes = final_view->MaximaVector();
  EXPECT_TRUE(final_bytes == bytes_a || final_bytes == bytes_b);
}

}  // namespace
}  // namespace sfa::core
