// Tests for the ML substrate: feature table, decision tree, random forest,
// and classification metrics.
#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/table.h"

namespace sfa::ml {
namespace {

std::vector<uint32_t> AllRows(const Table& table) {
  std::vector<uint32_t> rows(table.num_rows());
  std::iota(rows.begin(), rows.end(), 0u);
  return rows;
}

// Labels determined by a single threshold on feature 0.
Table ThresholdTable(size_t n, uint64_t seed) {
  sfa::Rng rng(seed);
  Table t({"f0", "f1"});
  for (size_t i = 0; i < n; ++i) {
    const auto f0 = static_cast<uint8_t>(rng.NextUint64(100));
    const auto f1 = static_cast<uint8_t>(rng.NextUint64(100));
    t.AddRow({f0, f1}, f0 > 50 ? 1 : 0);
  }
  return t;
}

// XOR of two binary features — needs depth >= 2 to learn.
Table XorTable(size_t n, uint64_t seed) {
  sfa::Rng rng(seed);
  Table t({"a", "b"});
  for (size_t i = 0; i < n; ++i) {
    const uint8_t a = rng.Bernoulli(0.5) ? 1 : 0;
    const uint8_t b = rng.Bernoulli(0.5) ? 1 : 0;
    t.AddRow({a, b}, a ^ b);
  }
  return t;
}

TEST(Table, AddAndAccess) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.num_features(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({1, 2, 3}, 1);
  t.AddRow({4, 5, 6}, 0);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Feature(0, 2), 3);
  EXPECT_EQ(t.Feature(1, 0), 4);
  EXPECT_EQ(t.Label(0), 1);
  EXPECT_EQ(t.Label(1), 0);
  EXPECT_EQ(t.Row(1)[1], 5);
  EXPECT_DOUBLE_EQ(t.PositiveRate(), 0.5);
}

TEST(Table, TrainTestSplitPartitionsRows) {
  const Table t = ThresholdTable(1000, 1);
  auto [train, test] = t.TrainTestSplit(0.7, 42);
  EXPECT_EQ(train.size(), 700u);
  EXPECT_EQ(test.size(), 300u);
  std::vector<uint32_t> all;
  all.insert(all.end(), train.begin(), train.end());
  all.insert(all.end(), test.begin(), test.end());
  std::sort(all.begin(), all.end());
  for (uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(all[i], i);
}

TEST(Table, TrainTestSplitDeterministic) {
  const Table t = ThresholdTable(100, 2);
  auto [a_train, a_test] = t.TrainTestSplit(0.5, 7);
  auto [b_train, b_test] = t.TrainTestSplit(0.5, 7);
  EXPECT_EQ(a_train, b_train);
  EXPECT_EQ(a_test, b_test);
  auto [c_train, c_test] = t.TrainTestSplit(0.5, 8);
  EXPECT_NE(a_train, c_train);
}

TEST(DecisionTree, RejectsEmptyTrainingSet) {
  const Table t = ThresholdTable(10, 3);
  EXPECT_FALSE(DecisionTree::Fit(t, {}, {}).ok());
}

TEST(DecisionTree, LearnsSimpleThreshold) {
  const Table t = ThresholdTable(2000, 4);
  DecisionTreeOptions opts;
  opts.max_depth = 3;
  auto tree = DecisionTree::Fit(t, AllRows(t), opts);
  ASSERT_TRUE(tree.ok());
  int correct = 0;
  const Table test = ThresholdTable(500, 5);
  for (size_t i = 0; i < test.num_rows(); ++i) {
    correct += tree->Predict(test.Row(i)) == test.Label(i);
  }
  EXPECT_GT(correct, 490);  // threshold concept is exactly learnable
}

TEST(DecisionTree, LearnsXorWithDepthTwo) {
  const Table t = XorTable(2000, 6);
  DecisionTreeOptions opts;
  opts.max_depth = 2;
  opts.min_samples_leaf = 1;
  opts.min_samples_split = 2;
  auto tree = DecisionTree::Fit(t, AllRows(t), opts);
  ASSERT_TRUE(tree.ok());
  const uint8_t zz[2] = {0, 0}, zo[2] = {0, 1}, oz[2] = {1, 0}, oo[2] = {1, 1};
  EXPECT_EQ(tree->Predict(zz), 0);
  EXPECT_EQ(tree->Predict(zo), 1);
  EXPECT_EQ(tree->Predict(oz), 1);
  EXPECT_EQ(tree->Predict(oo), 0);
}

TEST(DecisionTree, DepthZeroIsMajorityVote) {
  Table t({"f"});
  for (int i = 0; i < 10; ++i) t.AddRow({static_cast<uint8_t>(i)}, i < 7 ? 1 : 0);
  DecisionTreeOptions opts;
  opts.max_depth = 0;
  auto tree = DecisionTree::Fit(t, AllRows(t), opts);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
  const uint8_t probe[1] = {0};
  EXPECT_NEAR(tree->PredictProba(probe), 0.7, 1e-6);  // stored as float
  EXPECT_EQ(tree->Predict(probe), 1);
}

TEST(DecisionTree, PureNodeStopsSplitting) {
  Table t({"f"});
  for (int i = 0; i < 50; ++i) t.AddRow({static_cast<uint8_t>(i % 7)}, 1);
  auto tree = DecisionTree::Fit(t, AllRows(t), {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
}

TEST(DecisionTree, MinSamplesLeafIsRespected) {
  const Table t = ThresholdTable(100, 8);
  DecisionTreeOptions opts;
  opts.min_samples_leaf = 60;  // no split can satisfy this
  auto tree = DecisionTree::Fit(t, AllRows(t), opts);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
}

TEST(RandomForest, RejectsBadOptions) {
  const Table t = ThresholdTable(50, 9);
  RandomForestOptions opts;
  opts.num_trees = 0;
  EXPECT_FALSE(RandomForest::Fit(t, AllRows(t), opts).ok());
  opts.num_trees = 3;
  opts.bootstrap_fraction = 0.0;
  EXPECT_FALSE(RandomForest::Fit(t, AllRows(t), opts).ok());
  EXPECT_FALSE(RandomForest::Fit(t, {}, RandomForestOptions{}).ok());
}

TEST(RandomForest, BeatsChanceOnNoisyThreshold) {
  // Threshold concept with 15% label noise.
  sfa::Rng rng(10);
  Table t({"f0", "f1"});
  for (int i = 0; i < 3000; ++i) {
    const auto f0 = static_cast<uint8_t>(rng.NextUint64(100));
    const auto f1 = static_cast<uint8_t>(rng.NextUint64(100));
    uint8_t label = f0 > 50 ? 1 : 0;
    if (rng.Bernoulli(0.15)) label ^= 1;
    t.AddRow({f0, f1}, label);
  }
  auto [train, test] = t.TrainTestSplit(0.7, 11);
  RandomForestOptions opts;
  opts.num_trees = 10;
  opts.tree.max_depth = 6;
  auto forest = RandomForest::Fit(t, train, opts);
  ASSERT_TRUE(forest.ok());
  const auto predictions = forest->PredictRows(t, test);
  std::vector<uint8_t> actual(test.size());
  for (size_t i = 0; i < test.size(); ++i) actual[i] = t.Label(test[i]);
  const ConfusionMatrix cm = ComputeConfusion(predictions, actual);
  // Bayes accuracy is 0.85; the forest should land close to it.
  EXPECT_GT(cm.Accuracy(), 0.80);
}

TEST(RandomForest, DeterministicForFixedSeed) {
  const Table t = ThresholdTable(500, 12);
  RandomForestOptions opts;
  opts.num_trees = 5;
  opts.seed = 77;
  auto a = RandomForest::Fit(t, AllRows(t), opts);
  auto b = RandomForest::Fit(t, AllRows(t), opts);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    ASSERT_DOUBLE_EQ(a->PredictProba(t.Row(i)), b->PredictProba(t.Row(i)));
  }
}

TEST(RandomForest, ProbaIsAverageOfTrees) {
  const Table t = ThresholdTable(300, 13);
  RandomForestOptions opts;
  opts.num_trees = 7;
  auto forest = RandomForest::Fit(t, AllRows(t), opts);
  ASSERT_TRUE(forest.ok());
  for (size_t i = 0; i < 20; ++i) {
    const double proba = forest->PredictProba(t.Row(i));
    ASSERT_GE(proba, 0.0);
    ASSERT_LE(proba, 1.0);
  }
}

TEST(ConfusionMatrix, CountsAndRates) {
  // predicted: 1 1 0 0 1 ; actual: 1 0 0 1 1
  const ConfusionMatrix cm =
      ComputeConfusion({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(cm.true_positives, 2u);
  EXPECT_EQ(cm.false_positives, 1u);
  EXPECT_EQ(cm.true_negatives, 1u);
  EXPECT_EQ(cm.false_negatives, 1u);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(cm.TruePositiveRate(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.FalsePositiveRate(), 0.5);
  EXPECT_DOUBLE_EQ(cm.Precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.PositiveRate(), 0.6);
}

TEST(ConfusionMatrix, EmptyAndDegenerate) {
  const ConfusionMatrix empty = ComputeConfusion({}, {});
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.TruePositiveRate(), 0.0);
  // No actual positives → TPR defined as 0.
  const ConfusionMatrix no_pos = ComputeConfusion({0, 1}, {0, 0});
  EXPECT_DOUBLE_EQ(no_pos.TruePositiveRate(), 0.0);
  EXPECT_DOUBLE_EQ(no_pos.FalsePositiveRate(), 0.5);
}

TEST(ConfusionMatrix, ToStringMentionsCounts) {
  const ConfusionMatrix cm = ComputeConfusion({1, 0}, {1, 0});
  const std::string s = cm.ToString();
  EXPECT_NE(s.find("TP=1"), std::string::npos);
  EXPECT_NE(s.find("acc=1.0000"), std::string::npos);
}

// Property sweep: forest accuracy improves (or stays) as trees are added on
// a learnable concept.
class ForestSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ForestSizeSweep, ReasonableAccuracyAtAllSizes) {
  const Table t = ThresholdTable(1500, 21);
  auto [train, test] = t.TrainTestSplit(0.7, 22);
  RandomForestOptions opts;
  opts.num_trees = GetParam();
  opts.tree.max_depth = 5;
  opts.seed = 3;
  auto forest = RandomForest::Fit(t, train, opts);
  ASSERT_TRUE(forest.ok());
  const auto predictions = forest->PredictRows(t, test);
  std::vector<uint8_t> actual(test.size());
  for (size_t i = 0; i < test.size(); ++i) actual[i] = t.Label(test[i]);
  EXPECT_GT(ComputeConfusion(predictions, actual).Accuracy(), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeSweep, ::testing::Values(1, 5, 20));

}  // namespace
}  // namespace sfa::ml
