// Shared seeded-RNG fixtures and assertions for the audit test suites.
//
// The dataset generators here were promoted from ad-hoc copies in
// test_audit_pipeline.cc, test_pvalue_calibration.cc, and
// test_golden_figures.cc. Their RNG draw ORDER is part of the test contract:
// several suites pin exact statistical outputs (golden figures) or seeded
// statistical bounds (p-value calibration) produced by these exact streams,
// so any change to the draw sequence must be loud and deliberate — treat
// these helpers like the golden constants themselves.
#ifndef SFA_TESTS_TESTING_UTIL_H_
#define SFA_TESTS_TESTING_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/partitioning_family.h"
#include "data/dataset.h"
#include "geo/partitioning.h"
#include "geo/rect.h"

namespace sfa::core::testing {

/// A synthetic "city" on the [0,10)² plane: uniform locations, prediction
/// rate `planted_rate` inside the fixed zone [6,9]² and `base_rate` outside,
/// plus a Bernoulli(0.5) ground-truth bit (so equal-opportunity views can be
/// built). Draw order per individual: location x, location y, prediction,
/// ground truth. `planted_rate == base_rate` yields a spatially fair city.
inline data::OutcomeDataset MakePlantedCity(uint64_t seed, size_t n,
                                            double planted_rate,
                                            double base_rate = 0.55,
                                            std::string name = "city") {
  Rng rng(seed);
  data::OutcomeDataset ds(std::move(name));
  const geo::Rect zone(6.0, 6.0, 9.0, 9.0);
  for (size_t i = 0; i < n; ++i) {
    const geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const double rate = zone.Contains(loc) ? planted_rate : base_rate;
    ds.Add(loc, rng.Bernoulli(rate) ? 1 : 0, rng.Bernoulli(0.5) ? 1 : 0);
  }
  return ds;
}

/// A spatially fair dataset on a `width`×`height` plane: the Bernoulli(rho)
/// label ignores the location by construction. Draw order per individual:
/// location x, location y, label. No ground-truth bit (prediction only).
inline data::OutcomeDataset MakeFairDataset(uint64_t seed, size_t n,
                                            double rho, double width = 3.0,
                                            double height = 2.0,
                                            std::string name = "fair") {
  Rng rng(seed);
  data::OutcomeDataset ds(std::move(name));
  for (size_t i = 0; i < n; ++i) {
    ds.Add({rng.Uniform(0, width), rng.Uniform(0, height)},
           rng.Bernoulli(rho) ? 1 : 0);
  }
  return ds;
}

/// The paper Fig. 1 family construction at test scale: `count` random
/// rectangular partitionings with `min_splits`..`max_splits` per axis, drawn
/// from a dedicated seeded stream over the dataset's (expanded) bounding
/// box. Golden pins depend on this exact stream.
inline Result<std::unique_ptr<PartitioningCollectionFamily>>
MakeSeededPartitioningFamily(const data::OutcomeDataset& ds, uint64_t seed,
                             uint32_t count = 20, uint32_t min_splits = 4,
                             uint32_t max_splits = 12) {
  Rng rng(seed);
  auto parts = geo::MakeRandomResolutionPartitionings(
      ds.BoundingBox().Expanded(1e-6), count, min_splits, max_splits, &rng);
  SFA_RETURN_NOT_OK(parts.status());
  return PartitioningCollectionFamily::Create(ds.locations(), *parts);
}

/// Asserts that two AuditResults carry the same statistical payload,
/// bit-for-bit — the pipeline determinism contract. The per-field EXPECTs
/// exist for readable failure diffs; the authoritative (complete) field
/// list is core::ResultsBitIdentical, asserted at the end so this helper
/// can never silently lag behind a grown AuditResult.
inline void ExpectIdenticalResult(const AuditResult& a, const AuditResult& b,
                                  const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_TRUE(ResultsBitIdentical(a, b));
  EXPECT_EQ(a.spatially_fair, b.spatially_fair);
  EXPECT_EQ(a.p_value, b.p_value);
  EXPECT_EQ(a.tau, b.tau);
  EXPECT_EQ(a.best_region, b.best_region);
  EXPECT_EQ(a.critical_value, b.critical_value);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.total_n, b.total_n);
  EXPECT_EQ(a.total_p, b.total_p);
  EXPECT_EQ(a.overall_rate, b.overall_rate);
  EXPECT_EQ(a.observed.llr, b.observed.llr);
  EXPECT_EQ(a.observed.positives, b.observed.positives);
  EXPECT_EQ(a.null_distribution.MaximaVector(), b.null_distribution.MaximaVector());
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].region_index, b.findings[i].region_index);
    EXPECT_EQ(a.findings[i].llr, b.findings[i].llr);
    EXPECT_EQ(a.findings[i].log_sul, b.findings[i].log_sul);
    EXPECT_EQ(a.findings[i].n, b.findings[i].n);
    EXPECT_EQ(a.findings[i].p, b.findings[i].p);
  }
}

}  // namespace sfa::core::testing

#endif  // SFA_TESTS_TESTING_UTIL_H_
