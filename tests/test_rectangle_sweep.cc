// Tests for the all-rectangles sweep family: enumeration arithmetic and
// count agreement with brute force and with the grid family.
#include "core/rectangle_sweep_family.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "core/scan.h"

namespace sfa::core {
namespace {

struct Cloud {
  std::vector<geo::Point> points;
  std::vector<uint8_t> labels;
};

Cloud MakeCloud(size_t n, uint64_t seed) {
  Rng rng(seed);
  Cloud cloud;
  cloud.points.resize(n);
  cloud.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    cloud.points[i] = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    cloud.labels[i] = rng.Bernoulli(0.35) ? 1 : 0;
  }
  return cloud;
}

TEST(RectangleSweepFamily, RegionCountFormula) {
  const Cloud cloud = MakeCloud(50, 1);
  auto family = RectangleSweepFamily::Create(cloud.points, 4, 3);
  ASSERT_TRUE(family.ok());
  // 4*5/2 = 10 column intervals, 3*4/2 = 6 row intervals → 60 rectangles.
  EXPECT_EQ((*family)->num_regions(), 60u);
}

TEST(RectangleSweepFamily, RejectsOverBudgetAndEmpty) {
  const Cloud cloud = MakeCloud(10, 2);
  EXPECT_FALSE(RectangleSweepFamily::Create({}, 4, 4).ok());
  EXPECT_FALSE(RectangleSweepFamily::Create(cloud.points, 0, 4).ok());
  // 100x100 grid → 5050^2 ≈ 25.5M rectangles > default 1M budget.
  EXPECT_FALSE(RectangleSweepFamily::Create(cloud.points, 100, 100).ok());
  // Raising the budget admits it.
  EXPECT_TRUE(
      RectangleSweepFamily::Create(cloud.points, 100, 100, 1ull << 26).ok());
}

TEST(RectangleSweepFamily, DecodeRegionEnumeratesAllRectanglesOnce) {
  const Cloud cloud = MakeCloud(20, 3);
  auto family = RectangleSweepFamily::Create(cloud.points, 5, 4);
  ASSERT_TRUE(family.ok());
  std::set<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>> seen;
  for (size_t r = 0; r < (*family)->num_regions(); ++r) {
    const auto range = (*family)->DecodeRegion(r);
    ASSERT_LT(range.x0, range.x1);
    ASSERT_LE(range.x1, 5u);
    ASSERT_LT(range.y0, range.y1);
    ASSERT_LE(range.y1, 4u);
    seen.insert({range.x0, range.x1, range.y0, range.y1});
  }
  EXPECT_EQ(seen.size(), (*family)->num_regions());  // all distinct
}

TEST(RectangleSweepFamily, CountsMatchBruteForce) {
  const Cloud cloud = MakeCloud(800, 4);
  auto family = RectangleSweepFamily::Create(cloud.points, 6, 5);
  ASSERT_TRUE(family.ok());
  const Labels labels = Labels::FromBytes(cloud.labels);
  std::vector<uint64_t> positives;
  (*family)->CountPositives(labels, &positives);
  ASSERT_EQ(positives.size(), (*family)->num_regions());
  for (size_t r = 0; r < (*family)->num_regions(); ++r) {
    const geo::Rect rect = (*family)->Describe(r).rect;
    uint64_t n = 0, p = 0;
    for (size_t i = 0; i < cloud.points.size(); ++i) {
      if (rect.Contains(cloud.points[i])) {
        ++n;
        p += cloud.labels[i];
      }
    }
    ASSERT_EQ((*family)->PointCount(r), n) << r;
    ASSERT_EQ(positives[r], p) << r;
  }
}

TEST(RectangleSweepFamily, SingleCellRectanglesMatchGridFamily) {
  const Cloud cloud = MakeCloud(500, 5);
  auto sweep = RectangleSweepFamily::Create(cloud.points, 5, 5);
  auto grid = GridPartitionFamily::Create(cloud.points, 5, 5);
  ASSERT_TRUE(sweep.ok() && grid.ok());
  const Labels labels = Labels::FromBytes(cloud.labels);
  std::vector<uint64_t> sweep_p, grid_p;
  (*sweep)->CountPositives(labels, &sweep_p);
  (*grid)->CountPositives(labels, &grid_p);
  // For every grid cell find the sweep region with the same rect.
  for (size_t c = 0; c < (*grid)->num_regions(); ++c) {
    const geo::Rect cell = (*grid)->Describe(c).rect;
    bool found = false;
    for (size_t r = 0; r < (*sweep)->num_regions(); ++r) {
      const auto range = (*sweep)->DecodeRegion(r);
      if (range.x1 - range.x0 == 1 && range.y1 - range.y0 == 1) {
        const geo::Rect rect = (*sweep)->Describe(r).rect;
        if (std::abs(rect.min_x - cell.min_x) < 1e-9 &&
            std::abs(rect.min_y - cell.min_y) < 1e-9) {
          EXPECT_EQ(sweep_p[r], grid_p[c]);
          EXPECT_EQ((*sweep)->PointCount(r), (*grid)->PointCount(c));
          found = true;
          break;
        }
      }
    }
    EXPECT_TRUE(found) << "cell " << c;
  }
}

TEST(RectangleSweepFamily, WholeGridRegionHoldsEverything) {
  const Cloud cloud = MakeCloud(300, 6);
  auto family = RectangleSweepFamily::Create(cloud.points, 4, 4);
  ASSERT_TRUE(family.ok());
  bool found_whole = false;
  for (size_t r = 0; r < (*family)->num_regions(); ++r) {
    const auto range = (*family)->DecodeRegion(r);
    if (range.x0 == 0 && range.x1 == 4 && range.y0 == 0 && range.y1 == 4) {
      EXPECT_EQ((*family)->PointCount(r), 300u);
      found_whole = true;
    }
  }
  EXPECT_TRUE(found_whole);
}

TEST(RectangleSweepFamily, FindsPlantedMultiCellRegion) {
  // A planted block spanning 2x2 cells of an 8x8 grid: the sweep can capture
  // it in ONE region, so its max LLR must exceed the single-cell grid
  // family's max.
  Rng rng(7);
  Cloud cloud;
  const geo::Rect zone(2.5, 2.5, 5.0, 5.0);
  for (int i = 0; i < 6000; ++i) {
    geo::Point p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    cloud.points.push_back(p);
    cloud.labels.push_back(rng.Bernoulli(zone.Contains(p) ? 0.7 : 0.5) ? 1 : 0);
  }
  auto sweep = RectangleSweepFamily::Create(cloud.points, 8, 8);
  auto grid = GridPartitionFamily::Create(cloud.points, 8, 8);
  ASSERT_TRUE(sweep.ok() && grid.ok());
  const Labels labels = Labels::FromBytes(cloud.labels);
  const ScanResult sweep_scan =
      ScanAllRegions(**sweep, labels, stats::ScanDirection::kTwoSided);
  const ScanResult grid_scan =
      ScanAllRegions(**grid, labels, stats::ScanDirection::kTwoSided);
  EXPECT_GT(sweep_scan.max_llr, grid_scan.max_llr);
  // The argmax rectangle overlaps the planted zone.
  EXPECT_TRUE(
      (*sweep)->Describe(sweep_scan.argmax).rect.Intersects(zone));
}

TEST(RectangleSweepFamily, WorksWithAuditor) {
  Rng rng(8);
  data::OutcomeDataset ds("sweep-audit");
  const geo::Rect zone(6.0, 0.0, 10.0, 4.0);
  for (int i = 0; i < 4000; ++i) {
    geo::Point p{rng.Uniform(0, 10), rng.Uniform(0, 10)};
    ds.Add(p, rng.Bernoulli(zone.Contains(p) ? 0.3 : 0.55) ? 1 : 0);
  }
  auto family = RectangleSweepFamily::Create(ds.locations(), 8, 8);
  ASSERT_TRUE(family.ok());
  AuditOptions opts;
  opts.alpha = 0.01;
  opts.monte_carlo.num_worlds = 199;
  auto result = Auditor(opts).Audit(ds, **family);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->spatially_fair);
  ASSERT_FALSE(result->findings.empty());
  EXPECT_TRUE(result->findings[0].rect.Intersects(zone));
}

// Property sweep: decode/enumeration round-trips across grid shapes.
class SweepShapeSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(SweepShapeSweep, CanonicalOrderMatchesCountPositives) {
  const auto [gx, gy] = GetParam();
  const Cloud cloud = MakeCloud(200, gx * 31 + gy);
  auto family = RectangleSweepFamily::Create(cloud.points, gx, gy);
  ASSERT_TRUE(family.ok());
  const Labels labels = Labels::FromBytes(cloud.labels);
  std::vector<uint64_t> positives;
  (*family)->CountPositives(labels, &positives);
  // Spot-check a pseudo-random subset of regions against brute force.
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t r = rng.NextUint64((*family)->num_regions());
    const geo::Rect rect = (*family)->Describe(r).rect;
    uint64_t p = 0;
    for (size_t i = 0; i < cloud.points.size(); ++i) {
      if (rect.Contains(cloud.points[i])) p += cloud.labels[i];
    }
    ASSERT_EQ(positives[r], p) << gx << "x" << gy << " region " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SweepShapeSweep,
    ::testing::Values(std::make_tuple(1u, 1u), std::make_tuple(1u, 7u),
                      std::make_tuple(7u, 1u), std::make_tuple(6u, 6u),
                      std::make_tuple(12u, 3u)));

// Regression: Rebuild with transposed dimensions keeps the same table size
// ((nx+1)*(ny+1) unchanged), so the reuse path must still refill — stale
// interior sums would otherwise alias the new layout's zero row/column.
// Matters in production because CountPositives pools its summed-area table
// thread-locally across families.
TEST(PrefixSum2DRebuild, TransposedDimensionsRefillCompletely) {
  const std::vector<uint32_t> ones(6, 1);
  spatial::PrefixSum2D prefix(2, 3, ones);
  ASSERT_EQ(prefix.Total(), 6u);
  prefix.Rebuild(3, 2, ones.data());
  EXPECT_EQ(prefix.Total(), 6u);
  EXPECT_EQ(prefix.SumRange(0, 0, 1, 1), 1u);
  EXPECT_EQ(prefix.SumRange(0, 0, 3, 1), 3u);
}

// Two families with transposed grids recounted on the same thread must not
// contaminate each other through the thread-local prefix pools.
TEST(RectangleSweep, InterleavedTransposedFamiliesCountIndependently) {
  sfa::Rng rng(314);
  std::vector<geo::Point> pts(400);
  for (auto& p : pts) p = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
  auto tall = RectangleSweepFamily::Create(pts, 4, 9);
  auto wide = RectangleSweepFamily::Create(pts, 9, 4);
  ASSERT_TRUE(tall.ok() && wide.ok());
  const Labels labels = Labels::SampleBernoulli(pts.size(), 0.5, &rng);
  std::vector<uint64_t> tall_before, wide_counts, tall_after;
  (*tall)->CountPositives(labels, &tall_before);
  (*wide)->CountPositives(labels, &wide_counts);
  (*tall)->CountPositives(labels, &tall_after);
  EXPECT_EQ(tall_before, tall_after);
  // The full-extent rectangle of each family sees every positive.
  const auto full_extent_count = [&](const RectangleSweepFamily& family,
                                     const std::vector<uint64_t>& counts) {
    for (size_t r = 0; r < family.num_regions(); ++r) {
      const auto range = family.DecodeRegion(r);
      if (range.x0 == 0 && range.y0 == 0 && range.x1 == family.grid().nx() &&
          range.y1 == family.grid().ny()) {
        return counts[r];
      }
    }
    return uint64_t{0};
  };
  EXPECT_EQ(full_extent_count(**tall, tall_before), labels.positive_count());
  EXPECT_EQ(full_extent_count(**wide, wide_counts), labels.positive_count());
}

}  // namespace
}  // namespace sfa::core
