// Cross-backend equivalence suite for the sparse annulus counting backend
// (core/annulus_index.h): for both overlapping families (SquareScanFamily,
// KnnCircleFamily) the sparse CSR scatter counts must equal the dense
// AND+popcount counts and a hand-rolled scalar loop, across random seeds,
// both ScanDirections, and degenerate ladders (L=1, duplicate centers, empty
// regions); the sparse backend's Monte Carlo null distribution must be
// bit-identical to the dense reference for both null models, any batch size,
// and parallel on/off. Also covers the CSR builder, the annulus collapse
// helper, the ladder dedup both families report in Name(), and the sparse
// backend's membership-memory advantage.
#include "core/annulus_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/knn_circle_family.h"
#include "core/labels.h"
#include "core/scan.h"
#include "core/significance.h"
#include "core/square_family.h"
#include "spatial/csr.h"
#include "spatial/kdtree.h"

namespace sfa::core {
namespace {

std::vector<geo::Point> Cloud(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) {
    if (rng.Bernoulli(0.6)) {
      p = {rng.Normal(3, 0.7), rng.Normal(7, 0.7)};
    } else {
      p = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    }
  }
  return pts;
}

std::vector<geo::Point> RandomCenters(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::Point> centers(count);
  for (auto& c : centers) c = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
  return centers;
}

// ------------------------------------------------------------ CSR builder ---

TEST(Csr32, BuildsStableRowMajorLayout) {
  const std::vector<std::pair<uint32_t, uint32_t>> entries = {
      {2, 7}, {0, 1}, {2, 5}, {0, 3}, {3, 9}};
  const spatial::Csr32 csr = spatial::BuildCsr32(5, entries);
  ASSERT_EQ(csr.num_rows(), 5u);
  ASSERT_EQ(csr.num_entries(), 5u);
  EXPECT_EQ(csr.offsets, (std::vector<uint32_t>{0, 2, 2, 4, 5, 5}));
  // Stable within a row: values keep input order.
  EXPECT_EQ(csr.values, (std::vector<uint32_t>{1, 3, 7, 5, 9}));
  EXPECT_GT(csr.MemoryBytes(), 0u);
}

TEST(Csr32, EmptyInputs) {
  const spatial::Csr32 none = spatial::BuildCsr32(3, {});
  EXPECT_EQ(none.num_rows(), 3u);
  EXPECT_EQ(none.num_entries(), 0u);
  EXPECT_EQ(none.offsets, (std::vector<uint32_t>{0, 0, 0, 0}));
}

// ---------------------------------------------------------- annulus index ---

TEST(AnnulusIndex, HandExampleCountsAllRungsAtOnce) {
  // 2 centers, 3 rungs. Center 0: point 0 in rung 0, points 1,2 enter at
  // rung 1, point 3 at rung 2. Center 1: point 2 in rung 0, point 4 at rung 2.
  const std::vector<AnnulusEntry> entries = {
      {0, 0, 0}, {1, 0, 1}, {2, 0, 1}, {3, 0, 2}, {2, 1, 0}, {4, 1, 2}};
  const AnnulusIndex index(6, 2, 3, entries);
  EXPECT_EQ(index.num_regions(), 6u);
  EXPECT_EQ(index.num_entries(), 6u);
  EXPECT_EQ(index.region_point_counts(),
            (std::vector<uint64_t>{1, 3, 4, 1, 1, 2}));

  const std::vector<uint32_t> positives = {2, 3, 4};  // labels 0,1 negative
  std::vector<uint32_t> hist(index.num_regions());
  std::vector<uint64_t> out(index.num_regions());
  index.CountPositives(positives.data(), positives.size(), hist.data(),
                       out.data());
  // Center 0: rung0 {0} -> 0, rung1 {0,1,2} -> 1, rung2 {0..3} -> 2.
  // Center 1: rung0 {2} -> 1, rung1 same -> 1, rung2 {2,4} -> 2.
  EXPECT_EQ(out, (std::vector<uint64_t>{0, 1, 2, 1, 1, 2}));

  // No positives.
  index.CountPositives(nullptr, 0, hist.data(), out.data());
  EXPECT_EQ(out, (std::vector<uint64_t>{0, 0, 0, 0, 0, 0}));
}

TEST(CollapseEmptyAnnuli, DropsGloballyEmptyRungsAndRemaps) {
  // Rungs 1 and 3 have no entries at any center.
  std::vector<AnnulusEntry> entries = {{0, 0, 0}, {1, 0, 2}, {2, 1, 4}};
  const std::vector<uint32_t> kept = CollapseEmptyAnnuli(5, &entries);
  EXPECT_EQ(kept, (std::vector<uint32_t>{0, 2, 4}));
  EXPECT_EQ(entries[0].rank, 0u);
  EXPECT_EQ(entries[1].rank, 1u);
  EXPECT_EQ(entries[2].rank, 2u);
}

TEST(CollapseEmptyAnnuli, KeepsEmptyRungZero) {
  // Rung 0 empty everywhere but rung 1 occupied: the empty base region is a
  // distinct (empty) member set and must survive.
  std::vector<AnnulusEntry> entries = {{0, 0, 1}};
  const std::vector<uint32_t> kept = CollapseEmptyAnnuli(2, &entries);
  EXPECT_EQ(kept, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(entries[0].rank, 1u);
}

// ----------------------------------------------- cross-backend equivalence ---

struct FamilyPair {
  std::unique_ptr<RegionFamily> sparse;
  std::unique_ptr<RegionFamily> dense;
};

FamilyPair MakeSquarePair(const std::vector<geo::Point>& points,
                          SquareScanOptions opts) {
  FamilyPair pair;
  opts.backend = CountingBackend::kSparseAnnulus;
  auto sparse = SquareScanFamily::Create(points, opts);
  EXPECT_TRUE(sparse.ok());
  pair.sparse = std::move(*sparse);
  opts.backend = CountingBackend::kDenseBits;
  auto dense = SquareScanFamily::Create(points, opts);
  EXPECT_TRUE(dense.ok());
  pair.dense = std::move(*dense);
  return pair;
}

FamilyPair MakeKnnPair(const std::vector<geo::Point>& points,
                       KnnCircleOptions opts) {
  FamilyPair pair;
  opts.backend = CountingBackend::kSparseAnnulus;
  auto sparse = KnnCircleFamily::Create(points, opts);
  EXPECT_TRUE(sparse.ok());
  pair.sparse = std::move(*sparse);
  opts.backend = CountingBackend::kDenseBits;
  auto dense = KnnCircleFamily::Create(points, opts);
  EXPECT_TRUE(dense.ok());
  pair.dense = std::move(*dense);
  return pair;
}

/// Asserts the two backends agree with each other on n(R), p(R) (scalar and
/// batched), and ScanMaxStatistic under every direction, for `worlds` random
/// label assignments.
void CheckBackendsAgree(const FamilyPair& pair, size_t worlds, uint64_t seed) {
  const RegionFamily& sparse = *pair.sparse;
  const RegionFamily& dense = *pair.dense;
  ASSERT_EQ(sparse.num_regions(), dense.num_regions());
  ASSERT_EQ(sparse.num_points(), dense.num_points());
  for (size_t r = 0; r < sparse.num_regions(); ++r) {
    ASSERT_EQ(sparse.PointCount(r), dense.PointCount(r)) << "region " << r;
  }

  Rng rng(seed);
  std::vector<Labels> labels;
  std::vector<const Labels*> ptrs;
  for (size_t w = 0; w < worlds; ++w) {
    labels.push_back(
        Labels::SampleBernoulli(sparse.num_points(), 0.1 + 0.2 * (w % 5), &rng));
  }
  for (const Labels& l : labels) ptrs.push_back(&l);

  std::vector<uint64_t> from_sparse, from_dense;
  for (size_t w = 0; w < worlds; ++w) {
    sparse.CountPositives(labels[w], &from_sparse);
    dense.CountPositives(labels[w], &from_dense);
    ASSERT_EQ(from_sparse, from_dense) << "world " << w;
  }

  const size_t stride = sparse.num_regions();
  std::vector<uint64_t> batch_sparse(worlds * stride);
  std::vector<uint64_t> batch_dense(worlds * stride);
  sparse.CountPositivesBatch(ptrs.data(), worlds, batch_sparse.data());
  dense.CountPositivesBatch(ptrs.data(), worlds, batch_dense.data());
  ASSERT_EQ(batch_sparse, batch_dense);

  std::vector<uint64_t> scratch;
  for (stats::ScanDirection direction :
       {stats::ScanDirection::kTwoSided, stats::ScanDirection::kHigh,
        stats::ScanDirection::kLow}) {
    for (size_t w = 0; w < std::min<size_t>(worlds, 3); ++w) {
      const double tau_sparse =
          ScanMaxStatistic(sparse, labels[w], direction, &scratch);
      const double tau_dense =
          ScanMaxStatistic(dense, labels[w], direction, &scratch);
      ASSERT_EQ(tau_sparse, tau_dense)
          << "direction " << static_cast<int>(direction) << " world " << w;
    }
  }
}

TEST(AnnulusBackend, SquareCountsMatchDenseAndScalarLoop) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const auto pts = Cloud(400 + 150 * seed, seed);
    SquareScanOptions opts;
    opts.centers = RandomCenters(8, seed + 100);
    opts.side_lengths = SquareScanOptions::DefaultSideLengths(0.4, 3.5, 6);
    const FamilyPair pair = MakeSquarePair(pts, opts);
    CheckBackendsAgree(pair, 6, seed + 200);

    // Scalar loop over the described rects, the third independent counter.
    Rng rng(seed + 300);
    const Labels labels = Labels::SampleBernoulli(pts.size(), 0.37, &rng);
    std::vector<uint64_t> counts;
    pair.sparse->CountPositives(labels, &counts);
    for (size_t r = 0; r < pair.sparse->num_regions(); ++r) {
      const geo::Rect rect = pair.sparse->Describe(r).rect;
      uint64_t expected_n = 0, expected_p = 0;
      for (size_t i = 0; i < pts.size(); ++i) {
        if (rect.Contains(pts[i])) {
          ++expected_n;
          expected_p += labels.bytes()[i];
        }
      }
      ASSERT_EQ(pair.sparse->PointCount(r), expected_n) << "region " << r;
      ASSERT_EQ(counts[r], expected_p) << "region " << r;
    }
  }
}

TEST(AnnulusBackend, KnnCountsMatchDenseAndScalarLoop) {
  for (uint64_t seed : {4u, 5u}) {
    const auto pts = Cloud(500, seed);
    KnnCircleOptions opts;
    opts.centers = RandomCenters(7, seed + 100);
    opts.population_fractions = {0.01, 0.03, 0.08, 0.15};
    const FamilyPair pair = MakeKnnPair(pts, opts);
    CheckBackendsAgree(pair, 6, seed + 200);

    // Scalar loop: recompute the ladder and each center's nearest list
    // directly and count positives by hand.
    std::vector<size_t> ladder;
    for (double f : opts.population_fractions) {
      ladder.push_back(std::clamp<size_t>(
          static_cast<size_t>(std::ceil(f * static_cast<double>(pts.size()))),
          1, pts.size()));
    }
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());

    Rng rng(seed + 300);
    const Labels labels = Labels::SampleBernoulli(pts.size(), 0.42, &rng);
    std::vector<uint64_t> counts;
    pair.sparse->CountPositives(labels, &counts);
    const spatial::KdTree tree(pts);
    for (size_t c = 0; c < opts.centers.size(); ++c) {
      const auto nearest = tree.KNearest(opts.centers[c], ladder.back());
      for (size_t rung = 0; rung < ladder.size(); ++rung) {
        uint64_t expected_p = 0;
        for (size_t i = 0; i < ladder[rung]; ++i) {
          expected_p += labels.bytes()[nearest[i]];
        }
        ASSERT_EQ(counts[c * ladder.size() + rung], expected_p)
            << "center " << c << " rung " << rung;
      }
    }
  }
}

TEST(AnnulusBackend, DegenerateLadders) {
  const auto pts = Cloud(300, 9);

  // L=1 ladders.
  {
    SquareScanOptions opts;
    opts.centers = RandomCenters(5, 1);
    opts.side_lengths = {1.25};
    CheckBackendsAgree(MakeSquarePair(pts, opts), 4, 10);
    KnnCircleOptions kopts;
    kopts.centers = RandomCenters(5, 2);
    kopts.population_fractions = {0.05};
    CheckBackendsAgree(MakeKnnPair(pts, kopts), 4, 11);
  }

  // Duplicate centers (overlap is total across the duplicated groups).
  {
    SquareScanOptions opts;
    opts.centers = {{3, 7}, {3, 7}, {5, 5}};
    opts.side_lengths = {0.5, 2.0, 3.0};
    CheckBackendsAgree(MakeSquarePair(pts, opts), 4, 12);
    KnnCircleOptions kopts;
    kopts.centers = {{3, 7}, {3, 7}};
    kopts.population_fractions = {0.02, 0.10};
    CheckBackendsAgree(MakeKnnPair(pts, kopts), 4, 13);
  }

  // Empty regions: centers far outside the cloud capture nothing at small
  // sides (and everything-empty ladders collapse to the base rung).
  {
    SquareScanOptions opts;
    opts.centers = {{120, 120}, {5, 5}};
    opts.side_lengths = {0.5, 1.0};
    const FamilyPair pair = MakeSquarePair(pts, opts);
    CheckBackendsAgree(pair, 4, 14);
    EXPECT_EQ(pair.sparse->PointCount(0), 0u);
  }

  // Single point, single center.
  {
    const std::vector<geo::Point> one = {{1.0, 1.0}};
    SquareScanOptions opts;
    opts.centers = {{1.0, 1.0}};
    opts.side_lengths = {0.5, 2.0};
    CheckBackendsAgree(MakeSquarePair(one, opts), 2, 15);
  }
}

// ------------------------------------------------------------ ladder dedup ---

TEST(AnnulusBackend, SquareLadderDedupCollapsesIdenticalMemberSets) {
  // Points on an integer lattice: sides 0.5 and 0.9 capture identical member
  // sets at integer centers (no point between the two rects), so one of the
  // pair must collapse; exact duplicate sides always collapse.
  std::vector<geo::Point> pts;
  for (int x = 0; x <= 9; ++x) {
    for (int y = 0; y <= 9; ++y) pts.push_back({double(x), double(y)});
  }
  SquareScanOptions opts;
  opts.centers = {{4, 4}, {7, 2}};
  opts.side_lengths = {0.5, 0.9, 2.5, 2.5};
  for (CountingBackend backend :
       {CountingBackend::kSparseAnnulus, CountingBackend::kDenseBits}) {
    opts.backend = backend;
    auto family = SquareScanFamily::Create(pts, opts);
    ASSERT_TRUE(family.ok());
    EXPECT_EQ((*family)->num_sides(), 2u) << (*family)->Name();
    EXPECT_EQ((*family)->num_regions(), 4u);
    EXPECT_NE((*family)->Name().find("deduped from 4"), std::string::npos)
        << (*family)->Name();
  }
}

TEST(AnnulusBackend, KnnLadderDedupReportedInName) {
  const auto pts = Cloud(100, 21);
  KnnCircleOptions opts;
  opts.centers = {{5, 5}};
  opts.population_fractions = {0.005, 0.01, 0.02};  // k = 1, 1, 2
  auto family = KnnCircleFamily::Create(pts, opts);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ((*family)->num_regions(), 2u);
  EXPECT_NE((*family)->Name().find("deduped from 3 fractions"),
            std::string::npos)
      << (*family)->Name();
}

TEST(AnnulusBackend, NameReportsBackend) {
  const auto pts = Cloud(200, 22);
  SquareScanOptions opts;
  opts.centers = RandomCenters(3, 23);
  opts.side_lengths = SquareScanOptions::DefaultSideLengths(0.5, 2.0, 4);
  const FamilyPair pair = MakeSquarePair(pts, opts);
  EXPECT_NE(pair.sparse->Name().find("sparse-annulus"), std::string::npos);
  EXPECT_NE(pair.dense->Name().find("dense-bits"), std::string::npos);
}

// -------------------------------------------------------------- memory win ---

TEST(AnnulusBackend, SparseMembershipMemoryBeatsDenseByLadderFactor) {
  // Representative paper-style configuration: 20-rung ladder, sides well
  // below the domain size. The sparse index must undercut the dense bit
  // vectors by at least L/3 (ISSUE 2 acceptance bar).
  const auto pts = Cloud(4096, 31);
  SquareScanOptions opts;
  opts.centers = RandomCenters(100, 32);
  opts.side_lengths = SquareScanOptions::DefaultSideLengths(0.1, 1.5, 20);
  auto sparse_family = SquareScanFamily::Create(pts, opts);
  ASSERT_TRUE(sparse_family.ok());
  opts.backend = CountingBackend::kDenseBits;
  auto dense_family = SquareScanFamily::Create(pts, opts);
  ASSERT_TRUE(dense_family.ok());

  const double ladder = static_cast<double>((*sparse_family)->num_sides());
  const auto sparse_bytes =
      static_cast<double>((*sparse_family)->MembershipBytes());
  const auto dense_bytes =
      static_cast<double>((*dense_family)->MembershipBytes());
  EXPECT_GT(sparse_bytes, 0.0);
  EXPECT_GE(dense_bytes / sparse_bytes, ladder / 3.0)
      << "sparse " << sparse_bytes << "B vs dense " << dense_bytes << "B, L="
      << ladder;

  // kNN circles: the ladder is shallower but sparse must still win.
  KnnCircleOptions kopts;
  kopts.centers = RandomCenters(50, 33);
  auto knn_sparse = KnnCircleFamily::Create(pts, kopts);
  ASSERT_TRUE(knn_sparse.ok());
  kopts.backend = CountingBackend::kDenseBits;
  auto knn_dense = KnnCircleFamily::Create(pts, kopts);
  ASSERT_TRUE(knn_dense.ok());
  EXPECT_LT((*knn_sparse)->MembershipBytes(), (*knn_dense)->MembershipBytes());
}

// --------------------------------------- multi-class counting equivalence ---

/// Packed class codes for `worlds` null worlds: iid categorical draws (the
/// multinomial Bernoulli-style null) or shuffles of one fixed multiset (the
/// permutation null). Both draw styles the multinomial engine feeds
/// CountClassesBatch must hit the same scatter paths.
std::vector<std::vector<uint8_t>> MakeClassWorlds(size_t n, uint32_t k,
                                                  size_t worlds, bool permute,
                                                  Rng* rng) {
  // Geometric-ish mix so classes have visibly different masses.
  std::vector<double> mix(k);
  double rest = 1.0;
  for (uint32_t c = 0; c < k; ++c) {
    mix[c] = (c + 1 == k) ? rest : rest * 0.5;
    rest -= mix[c];
  }
  std::vector<uint8_t> base(n);
  for (size_t i = 0; i < n; ++i) {
    base[i] = static_cast<uint8_t>(rng->Categorical(mix));
  }
  std::vector<std::vector<uint8_t>> out(worlds);
  for (size_t w = 0; w < worlds; ++w) {
    if (permute) {
      out[w] = base;
      rng->Shuffle(out[w].begin(), out[w].end());
    } else {
      out[w].resize(n);
      for (size_t i = 0; i < n; ++i) {
        out[w][i] = static_cast<uint8_t>(rng->Categorical(mix));
      }
    }
  }
  return out;
}

/// Asserts sparse CSR class scatter == dense bit-plane popcounts == the base
/// class's K-1 indicator reference, for both null-model draw styles and a
/// K ladder covering binary-degenerate (K=2) through byte-size classes.
void CheckClassCountingAgrees(const FamilyPair& pair, uint64_t seed) {
  const size_t n = pair.sparse->num_points();
  const size_t stride = pair.sparse->num_regions();
  Rng rng(seed);
  for (const uint32_t k : {2u, 3u, 5u}) {
    for (const bool permute : {false, true}) {
      const size_t worlds = 5;
      const auto class_worlds = MakeClassWorlds(n, k, worlds, permute, &rng);
      std::vector<const uint8_t*> ptrs;
      for (const auto& w : class_worlds) ptrs.push_back(w.data());

      const size_t total = ClassCountBufferSize(worlds, k - 1, stride);
      std::vector<uint64_t> from_sparse(total, ~0ULL);
      std::vector<uint64_t> from_dense(total, ~0ULL);
      std::vector<uint64_t> reference(total, ~0ULL);
      pair.sparse->CountClassesBatch(ptrs.data(), worlds, k,
                                     from_sparse.data());
      pair.dense->CountClassesBatch(ptrs.data(), worlds, k, from_dense.data());
      // Qualified call: the RegionFamily base implementation is the
      // indicator-labels reference oracle every override must match exactly.
      pair.sparse->RegionFamily::CountClassesBatch(ptrs.data(), worlds, k,
                                                   reference.data());
      ASSERT_EQ(from_sparse, reference)
          << "sparse vs reference, K=" << k << " permute=" << permute;
      ASSERT_EQ(from_dense, reference)
          << "dense vs reference, K=" << k << " permute=" << permute;

      // Consistency pin on one world: the K-1 counted classes can never
      // exceed n(R) — the last class is derived as the remainder.
      for (size_t r = 0; r < stride; ++r) {
        uint64_t counted_sum = 0;
        for (uint32_t c = 0; c + 1 < k; ++c) {
          counted_sum += reference[ClassCountRowOffset(0, c, k - 1, stride) + r];
        }
        ASSERT_LE(counted_sum, pair.sparse->PointCount(r)) << "region " << r;
      }
    }
  }
}

TEST(AnnulusBackend, ClassCountsMatchDenseAndReferenceOracle) {
  const auto pts = Cloud(450, 51);
  SquareScanOptions sq_opts;
  sq_opts.centers = RandomCenters(7, 52);
  sq_opts.side_lengths = SquareScanOptions::DefaultSideLengths(0.4, 3.0, 5);
  CheckClassCountingAgrees(MakeSquarePair(pts, sq_opts), 53);

  KnnCircleOptions knn_opts;
  knn_opts.centers = RandomCenters(6, 54);
  knn_opts.population_fractions = {0.01, 0.04, 0.09};
  CheckClassCountingAgrees(MakeKnnPair(pts, knn_opts), 55);
}

TEST(AnnulusBackend, ClassCountsCoverDegenerateShapes) {
  // Empty regions (far-out center) and a single-point cloud: the class
  // scatter must tolerate empty CSR rows and 1-point planes.
  const auto pts = Cloud(200, 61);
  SquareScanOptions opts;
  opts.centers = {{120, 120}, {5, 5}};
  opts.side_lengths = {0.5, 1.5};
  CheckClassCountingAgrees(MakeSquarePair(pts, opts), 62);

  const std::vector<geo::Point> one = {{1.0, 1.0}};
  SquareScanOptions one_opts;
  one_opts.centers = {{1.0, 1.0}};
  one_opts.side_lengths = {0.5, 2.0};
  CheckClassCountingAgrees(MakeSquarePair(one, one_opts), 63);
}

// ------------------------------------- bit-identical null distributions ---

NullDistribution MustSimulate(const RegionFamily& family,
                              const MonteCarloOptions& mc) {
  auto dist = SimulateNull(family, 0.41, 120, stats::ScanDirection::kTwoSided, mc);
  EXPECT_TRUE(dist.ok());
  return *dist;
}

TEST(AnnulusBackend, NullDistributionBitIdenticalToDenseReference) {
  const auto pts = Cloud(600, 41);
  SquareScanOptions sq_opts;
  sq_opts.centers = RandomCenters(9, 42);
  sq_opts.side_lengths = SquareScanOptions::DefaultSideLengths(0.5, 3.0, 5);
  KnnCircleOptions knn_opts;
  knn_opts.centers = RandomCenters(8, 43);

  std::vector<std::pair<std::string, FamilyPair>> pairs;
  pairs.emplace_back("square", MakeSquarePair(pts, sq_opts));
  pairs.emplace_back("knn-circle", MakeKnnPair(pts, knn_opts));

  for (const auto& [name, pair] : pairs) {
    for (NullModel null_model :
         {NullModel::kBernoulli, NullModel::kPermutation}) {
      MonteCarloOptions mc;
      mc.num_worlds = 40;
      mc.seed = 777;
      mc.null_model = null_model;
      mc.parallel = false;
      mc.engine = McEngine::kReference;
      const NullDistribution reference = MustSimulate(*pair.dense, mc);

      for (bool parallel : {false, true}) {
        for (McEngine engine : {McEngine::kBatched, McEngine::kReference}) {
          for (uint32_t batch_size : {1u, 3u, 64u}) {
            mc.parallel = parallel;
            mc.engine = engine;
            mc.batch_size = batch_size;
            const NullDistribution sparse_run = MustSimulate(*pair.sparse, mc);
            const NullDistribution dense_run = MustSimulate(*pair.dense, mc);
            EXPECT_EQ(sparse_run.MaximaVector(), reference.MaximaVector())
                << name << " sparse / " << NullModelToString(null_model)
                << " / " << McEngineToString(engine) << " / parallel="
                << parallel << " / batch=" << batch_size;
            EXPECT_EQ(dense_run.MaximaVector(), reference.MaximaVector())
                << name << " dense / " << NullModelToString(null_model)
                << " / " << McEngineToString(engine) << " / parallel="
                << parallel << " / batch=" << batch_size;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace sfa::core
