// Tests for the scan pass: per-region LLRs, the max statistic, and the
// equivalence of the full and max-only paths.
#include "core/scan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/grid_family.h"

namespace sfa::core {
namespace {

struct ScanWorld {
  std::vector<geo::Point> points;
  std::vector<uint8_t> labels;
  std::unique_ptr<GridPartitionFamily> family;
};

// A 2x1 world: left cell biased positive, right cell biased negative.
ScanWorld BiasedHalves(size_t per_side, double left_rate, double right_rate,
                   uint64_t seed) {
  sfa::Rng rng(seed);
  ScanWorld s;
  for (size_t i = 0; i < per_side; ++i) {
    s.points.push_back({rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)});
    s.labels.push_back(rng.Bernoulli(left_rate) ? 1 : 0);
  }
  for (size_t i = 0; i < per_side; ++i) {
    s.points.push_back({rng.Uniform(1.0, 2.0), rng.Uniform(0.0, 1.0)});
    s.labels.push_back(rng.Bernoulli(right_rate) ? 1 : 0);
  }
  auto family =
      GridPartitionFamily::CreateWithExtent(s.points, geo::Rect(0, 0, 2, 1), 2, 1);
  EXPECT_TRUE(family.ok());
  s.family = std::move(*family);
  return s;
}

TEST(ScanAllRegions, FindsThePlantedRegion) {
  ScanWorld s = BiasedHalves(2000, 0.8, 0.2, 61);
  const Labels labels = Labels::FromBytes(s.labels);
  const ScanResult result =
      ScanAllRegions(*s.family, labels, stats::ScanDirection::kTwoSided);
  ASSERT_EQ(result.llr.size(), 2u);
  EXPECT_GT(result.max_llr, 100.0);  // enormous planted effect
  EXPECT_EQ(result.total_n, 4000u);
  // Both cells deviate symmetrically; the max is one of them and both LLRs
  // are close (complementary regions have identical LLRs in a 2-cell world).
  EXPECT_NEAR(result.llr[0], result.llr[1], 1e-9);
}

TEST(ScanAllRegions, ComplementaryRegionsHaveEqualLlr) {
  // In a 2-partition family, R and its complement split the data identically,
  // so the two-sided LLR must be symmetric.
  ScanWorld s = BiasedHalves(500, 0.9, 0.5, 62);
  const Labels labels = Labels::FromBytes(s.labels);
  const ScanResult result =
      ScanAllRegions(*s.family, labels, stats::ScanDirection::kTwoSided);
  EXPECT_NEAR(result.llr[0], result.llr[1], 1e-9);
}

TEST(ScanAllRegions, FairWorldHasSmallStatistic) {
  ScanWorld s = BiasedHalves(2000, 0.5, 0.5, 63);
  const Labels labels = Labels::FromBytes(s.labels);
  const ScanResult result =
      ScanAllRegions(*s.family, labels, stats::ScanDirection::kTwoSided);
  // Two balanced halves of 2000: chance fluctuations yield small LLR values.
  EXPECT_LT(result.max_llr, 8.0);
}

TEST(ScanAllRegions, PositivesAreReported) {
  ScanWorld s = BiasedHalves(100, 1.0, 0.0, 64);
  const Labels labels = Labels::FromBytes(s.labels);
  const ScanResult result =
      ScanAllRegions(*s.family, labels, stats::ScanDirection::kTwoSided);
  EXPECT_EQ(result.positives[0] + result.positives[1], result.total_p);
  EXPECT_EQ(result.total_p, 100u);
}

TEST(ScanMaxStatistic, AgreesWithFullScan) {
  ScanWorld s = BiasedHalves(1000, 0.7, 0.4, 65);
  const Labels labels = Labels::FromBytes(s.labels);
  for (auto direction :
       {stats::ScanDirection::kTwoSided, stats::ScanDirection::kHigh,
        stats::ScanDirection::kLow}) {
    const ScanResult full = ScanAllRegions(*s.family, labels, direction);
    std::vector<uint64_t> scratch;
    const double max_only = ScanMaxStatistic(*s.family, labels, direction, &scratch);
    // The table-free overload reassociates the log terms, so agreement is
    // to rounding, not bitwise (the bitwise contract binds the table paths;
    // see TableOverloadIsBitIdenticalToFullScan).
    EXPECT_NEAR(full.max_llr, max_only, 1e-9 * (1.0 + std::fabs(full.max_llr)));
  }
}

TEST(ScanMaxStatistic, DirectionalScansSplitTheSignal) {
  ScanWorld s = BiasedHalves(1500, 0.8, 0.3, 66);
  const Labels labels = Labels::FromBytes(s.labels);
  const ScanResult high =
      ScanAllRegions(*s.family, labels, stats::ScanDirection::kHigh);
  const ScanResult low =
      ScanAllRegions(*s.family, labels, stats::ScanDirection::kLow);
  // The left (rich) cell is the high signal, the right (poor) cell the low
  // signal. Each directional scan must pick its own side.
  EXPECT_EQ(high.argmax, 0u);
  EXPECT_EQ(low.argmax, 1u);
  EXPECT_GT(high.max_llr, 0.0);
  EXPECT_GT(low.max_llr, 0.0);
}

TEST(ScanMaxStatistic, TableOverloadIsBitIdenticalToFullScan) {
  // The tie contract of the rank p-value: observed statistics (full scan)
  // and table-driven evaluations of the same counts must agree bit-for-bit,
  // not just to a tolerance — an ulp of daylight turns exact ties into
  // coin flips (see scan.h).
  ScanWorld s = BiasedHalves(1000, 0.7, 0.4, 68);
  const Labels labels = Labels::FromBytes(s.labels);
  const stats::LogLikelihoodTable table(labels.size());
  for (auto direction :
       {stats::ScanDirection::kTwoSided, stats::ScanDirection::kHigh,
        stats::ScanDirection::kLow}) {
    const ScanResult full = ScanAllRegions(*s.family, labels, direction);
    std::vector<uint64_t> scratch;
    const double max_only =
        ScanMaxStatistic(*s.family, labels, direction, &scratch, table);
    EXPECT_EQ(full.max_llr, max_only);  // exact, no tolerance
  }
}

TEST(ScanAllRegions, AllSameLabelGivesZeroStatistic) {
  ScanWorld s = BiasedHalves(100, 1.0, 1.0, 67);
  const Labels labels = Labels::FromBytes(s.labels);
  const ScanResult result =
      ScanAllRegions(*s.family, labels, stats::ScanDirection::kTwoSided);
  EXPECT_DOUBLE_EQ(result.max_llr, 0.0);
}

TEST(ScanAllRegions, EmptyRegionsScoreZero) {
  // 4x1 grid where only 2 cells hold points.
  std::vector<geo::Point> pts = {{0.1, 0.5}, {3.9, 0.5}};
  auto family =
      GridPartitionFamily::CreateWithExtent(pts, geo::Rect(0, 0, 4, 1), 4, 1);
  ASSERT_TRUE(family.ok());
  const Labels labels = Labels::FromBytes({1, 0});
  const ScanResult result =
      ScanAllRegions(**family, labels, stats::ScanDirection::kTwoSided);
  EXPECT_DOUBLE_EQ(result.llr[1], 0.0);
  EXPECT_DOUBLE_EQ(result.llr[2], 0.0);
}

}  // namespace
}  // namespace sfa::core
