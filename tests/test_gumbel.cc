// Tests for the Gumbel tail approximation used for far-tail p-values.
#include "stats/gumbel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace sfa::stats {
namespace {

TEST(GumbelDistribution, CdfKnownValues) {
  const GumbelDistribution g(0.0, 1.0);
  // F(mu) = exp(-1) ≈ 0.3679.
  EXPECT_NEAR(g.Cdf(0.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(g.Cdf(5.0), std::exp(-std::exp(-5.0)), 1e-12);
  EXPECT_GT(g.Cdf(2.0), g.Cdf(1.0));  // monotone
}

TEST(GumbelDistribution, UpperTailComplementsCdf) {
  const GumbelDistribution g(3.0, 2.0);
  for (double x : {-5.0, 0.0, 3.0, 10.0, 20.0}) {
    EXPECT_NEAR(g.UpperTail(x), 1.0 - g.Cdf(x), 1e-12) << x;
  }
}

TEST(GumbelDistribution, UpperTailIsStableFarOut) {
  const GumbelDistribution g(10.0, 2.0);
  // At x = mu + 60*beta, 1 - Cdf underflows via naive evaluation; UpperTail
  // must still return a positive subnormal-free value ~ e^{-z}.
  const double x = 10.0 + 60.0 * 2.0;
  const double tail = g.UpperTail(x);
  EXPECT_GT(tail, 0.0);
  EXPECT_NEAR(std::log(tail), -(x - 10.0) / 2.0, 1e-6);
}

TEST(GumbelDistribution, QuantileInvertsCdf) {
  const GumbelDistribution g(-2.0, 0.7);
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.995}) {
    EXPECT_NEAR(g.Cdf(g.Quantile(q)), q, 1e-10) << q;
  }
}

TEST(GumbelDistribution, FitRejectsDegenerateInput) {
  EXPECT_FALSE(GumbelDistribution::FitMoments(std::vector<double>{}).ok());
  EXPECT_FALSE(GumbelDistribution::FitMoments(std::vector<double>{1.0}).ok());
  EXPECT_FALSE(
      GumbelDistribution::FitMoments(std::vector<double>{2.0, 2.0, 2.0}).ok());
}

TEST(GumbelDistribution, FitRecoversParameters) {
  // Sample from a known Gumbel via inverse transform and refit.
  const GumbelDistribution truth(5.0, 1.5);
  sfa::Rng rng(42);
  std::vector<double> samples(20000);
  for (double& s : samples) s = truth.Quantile(rng.NextDouble());
  auto fitted = GumbelDistribution::FitMoments(samples);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted->mu(), 5.0, 0.05);
  EXPECT_NEAR(fitted->beta(), 1.5, 0.05);
}

TEST(GumbelDistribution, FitTailAgreesWithEmpirical) {
  // For Gumbel-ish data, the fitted upper tail at the empirical 95th
  // percentile should be ~0.05.
  const GumbelDistribution truth(0.0, 1.0);
  sfa::Rng rng(43);
  std::vector<double> samples(5000);
  for (double& s : samples) s = truth.Quantile(rng.NextDouble());
  auto fitted = GumbelDistribution::FitMoments(samples);
  ASSERT_TRUE(fitted.ok());
  std::sort(samples.begin(), samples.end());
  const double q95 = samples[static_cast<size_t>(0.95 * samples.size())];
  EXPECT_NEAR(fitted->UpperTail(q95), 0.05, 0.015);
}

TEST(GumbelDistributionDeathTest, RejectsNonPositiveScale) {
  EXPECT_DEATH(GumbelDistribution(0.0, 0.0), "scale");
}

}  // namespace
}  // namespace sfa::stats
