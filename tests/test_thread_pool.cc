// Tests for the thread pool: completion, parallel-for coverage, reuse, and
// determinism of split-RNG parallel reductions.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/random.h"

namespace sfa {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  pool.ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  int count = 0;
  pool.ParallelFor(0, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1000, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 999ull * 1000 / 2);
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    pool.ParallelFor(500, [&](size_t) { counter.fetch_add(1); });
    ASSERT_EQ(counter.load(), 500);
  }
}

// The determinism contract the Monte Carlo engine relies on: per-task RNG
// substreams give identical results for any thread count.
TEST(ThreadPool, SplitRngReductionIsThreadCountInvariant) {
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    Rng root(777);
    std::vector<double> out(64);
    pool.ParallelFor(out.size(), [&](size_t i) {
      Rng rng = root.Split(i);
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += rng.NextDouble();
      out[i] = acc;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
  EXPECT_EQ(run(2), run(16));
}

TEST(DefaultThreadPool, IsSingletonAndUsable) {
  ThreadPool& a = DefaultThreadPool();
  ThreadPool& b = DefaultThreadPool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  a.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace sfa
