// Tests for the thread pool: completion, parallel-for coverage, reuse, and
// determinism of split-RNG parallel reductions.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/random.h"

namespace sfa {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  pool.ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  int count = 0;
  pool.ParallelFor(0, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1000, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 999ull * 1000 / 2);
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    pool.ParallelFor(500, [&](size_t) { counter.fetch_add(1); });
    ASSERT_EQ(counter.load(), 500);
  }
}

// The determinism contract the Monte Carlo engine relies on: per-task RNG
// substreams give identical results for any thread count.
TEST(ThreadPool, SplitRngReductionIsThreadCountInvariant) {
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    Rng root(777);
    std::vector<double> out(64);
    pool.ParallelFor(out.size(), [&](size_t i) {
      Rng rng = root.Split(i);
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += rng.NextDouble();
      out[i] = acc;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
  EXPECT_EQ(run(2), run(16));
}

TEST(ThreadPool, TaskGroupWaitsOnlyForItsOwnTasks) {
  ThreadPool pool(4);
  std::atomic<int> grouped{0};
  std::atomic<int> ungrouped{0};
  ThreadPool::TaskGroup group;
  for (int i = 0; i < 64; ++i) {
    pool.Submit(&group, [&] { grouped.fetch_add(1); });
    pool.Submit([&] { ungrouped.fetch_add(1); });
  }
  pool.WaitGroup(&group);
  EXPECT_EQ(grouped.load(), 64);
  pool.Wait();
  EXPECT_EQ(ungrouped.load(), 64);
}

TEST(ThreadPool, WaitGroupOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group;
  pool.WaitGroup(&group);  // must not deadlock
  SUCCEED();
}

// The nested-parallelism guarantee the audit pipeline relies on: a task
// running on the pool may itself call ParallelFor. The helping WaitGroup
// keeps this deadlock-free even when the pool is saturated with outer tasks
// (pre-task-group pools deadlocked here: every worker blocked in Wait while
// the inner tasks starved).
TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer workers than outer tasks forces helping
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(32, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 32);
}

TEST(ThreadPool, TriplyNestedParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      pool.ParallelFor(4, [&](size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, NestedParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t outer = 16, inner = 256;
  std::vector<std::atomic<int>> visits(outer * inner);
  pool.ParallelFor(outer, [&](size_t i) {
    pool.ParallelFor(inner,
                     [&](size_t j) { visits[i * inner + j].fetch_add(1); });
  });
  for (size_t k = 0; k < visits.size(); ++k) ASSERT_EQ(visits[k].load(), 1) << k;
}

TEST(ThreadPool, NestedSplitRngReductionIsThreadCountInvariant) {
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    Rng root(99);
    std::vector<double> out(8 * 16);
    pool.ParallelFor(8, [&](size_t i) {
      Rng outer = root.Split(i);
      pool.ParallelFor(16, [&](size_t j) {
        Rng rng = outer.Split(j);
        double acc = 0.0;
        for (int k = 0; k < 50; ++k) acc += rng.NextDouble();
        out[i * 16 + j] = acc;
      });
    });
    return out;
  };
  EXPECT_EQ(run(1), run(5));
  EXPECT_EQ(run(2), run(13));
}

TEST(DefaultThreadPool, IsSingletonAndUsable) {
  ThreadPool& a = DefaultThreadPool();
  ThreadPool& b = DefaultThreadPool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  a.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace sfa
