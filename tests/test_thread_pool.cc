// Tests for the thread pool: completion, parallel-for coverage, reuse, and
// determinism of split-RNG parallel reductions.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/random.h"

namespace sfa {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  pool.ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(4);
  int count = 0;
  pool.ParallelFor(0, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(1000, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 999ull * 1000 / 2);
}

TEST(ThreadPool, ReusableAcrossRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    pool.ParallelFor(500, [&](size_t) { counter.fetch_add(1); });
    ASSERT_EQ(counter.load(), 500);
  }
}

// The determinism contract the Monte Carlo engine relies on: per-task RNG
// substreams give identical results for any thread count.
TEST(ThreadPool, SplitRngReductionIsThreadCountInvariant) {
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    Rng root(777);
    std::vector<double> out(64);
    pool.ParallelFor(out.size(), [&](size_t i) {
      Rng rng = root.Split(i);
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += rng.NextDouble();
      out[i] = acc;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
  EXPECT_EQ(run(2), run(16));
}

TEST(ThreadPool, TaskGroupWaitsOnlyForItsOwnTasks) {
  ThreadPool pool(4);
  std::atomic<int> grouped{0};
  std::atomic<int> ungrouped{0};
  ThreadPool::TaskGroup group;
  for (int i = 0; i < 64; ++i) {
    pool.Submit(&group, [&] { grouped.fetch_add(1); });
    pool.Submit([&] { ungrouped.fetch_add(1); });
  }
  pool.WaitGroup(&group);
  EXPECT_EQ(grouped.load(), 64);
  pool.Wait();
  EXPECT_EQ(ungrouped.load(), 64);
}

TEST(ThreadPool, WaitGroupOnEmptyGroupReturnsImmediately) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group;
  pool.WaitGroup(&group);  // must not deadlock
  SUCCEED();
}

// The nested-parallelism guarantee the audit pipeline relies on: a task
// running on the pool may itself call ParallelFor. The helping WaitGroup
// keeps this deadlock-free even when the pool is saturated with outer tasks
// (pre-task-group pools deadlocked here: every worker blocked in Wait while
// the inner tasks starved).
TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer workers than outer tasks forces helping
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(32, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 32);
}

TEST(ThreadPool, TriplyNestedParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      pool.ParallelFor(4, [&](size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, NestedParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t outer = 16, inner = 256;
  std::vector<std::atomic<int>> visits(outer * inner);
  pool.ParallelFor(outer, [&](size_t i) {
    pool.ParallelFor(inner,
                     [&](size_t j) { visits[i * inner + j].fetch_add(1); });
  });
  for (size_t k = 0; k < visits.size(); ++k) ASSERT_EQ(visits[k].load(), 1) << k;
}

TEST(ThreadPool, NestedSplitRngReductionIsThreadCountInvariant) {
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    Rng root(99);
    std::vector<double> out(8 * 16);
    pool.ParallelFor(8, [&](size_t i) {
      Rng outer = root.Split(i);
      pool.ParallelFor(16, [&](size_t j) {
        Rng rng = outer.Split(j);
        double acc = 0.0;
        for (int k = 0; k < 50; ++k) acc += rng.NextDouble();
        out[i * 16 + j] = acc;
      });
    });
    return out;
  };
  EXPECT_EQ(run(1), run(5));
  EXPECT_EQ(run(2), run(13));
}

TEST(DefaultThreadPool, IsSingletonAndUsable) {
  ThreadPool& a = DefaultThreadPool();
  ThreadPool& b = DefaultThreadPool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> counter{0};
  a.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(CancellationToken, IsSticky) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(BoundedPriorityQueue, PopsByPriorityThenFifo) {
  BoundedPriorityQueue<int> queue(/*capacity=*/8, /*num_priorities=*/3);
  EXPECT_EQ(queue.TryPush(2, 20), QueuePush::kAdmitted);
  EXPECT_EQ(queue.TryPush(0, 1), QueuePush::kAdmitted);
  EXPECT_EQ(queue.TryPush(1, 10), QueuePush::kAdmitted);
  EXPECT_EQ(queue.TryPush(0, 2), QueuePush::kAdmitted);
  EXPECT_EQ(queue.TryPush(2, 21), QueuePush::kAdmitted);
  EXPECT_EQ(queue.size(), 5u);

  int out = 0;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    order.push_back(out);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 10, 20, 21}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedPriorityQueue, TryPushRejectsAtCapacityAcrossLanes) {
  BoundedPriorityQueue<int> queue(2, 3);
  EXPECT_EQ(queue.TryPush(0, 1), QueuePush::kAdmitted);
  EXPECT_EQ(queue.TryPush(2, 2), QueuePush::kAdmitted);
  // The bound is TOTAL occupancy, not per-lane.
  EXPECT_EQ(queue.TryPush(1, 3), QueuePush::kRejected);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(queue.TryPush(1, 3), QueuePush::kAdmitted);
}

TEST(BoundedPriorityQueue, PushBlocksUntilSpaceThenAdmits) {
  BoundedPriorityQueue<int> queue(1, 1);
  ASSERT_EQ(queue.TryPush(0, 1), QueuePush::kAdmitted);
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.Push(0, 2), QueuePush::kAdmitted);  // blocks: queue full
    admitted.store(true);
  });
  // Consume the first item; the blocked producer must then get its slot.
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(admitted.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedPriorityQueue, CloseFailsPushesAndDrainsConsumers) {
  BoundedPriorityQueue<int> queue(4, 2);
  ASSERT_EQ(queue.TryPush(1, 7), QueuePush::kAdmitted);
  ASSERT_EQ(queue.TryPush(0, 8), QueuePush::kAdmitted);
  // A consumer blocked on an empty queue unblocks on Close too.
  queue.Close();
  EXPECT_EQ(queue.TryPush(0, 9), QueuePush::kClosed);
  EXPECT_EQ(queue.Push(0, 9), QueuePush::kClosed);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 8);  // priority still honored while draining
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
}

TEST(BoundedPriorityQueue, CloseUnblocksBlockedProducerAndConsumer) {
  BoundedPriorityQueue<int> full(1, 1);
  ASSERT_EQ(full.TryPush(0, 1), QueuePush::kAdmitted);
  std::thread blocked_producer([&] {
    EXPECT_EQ(full.Push(0, 2), QueuePush::kClosed);
  });
  BoundedPriorityQueue<int> empty(1, 1);
  std::thread blocked_consumer([&] {
    int out = 0;
    EXPECT_FALSE(empty.Pop(&out));
  });
  full.Close();
  empty.Close();
  blocked_producer.join();
  blocked_consumer.join();
}

TEST(BoundedPriorityQueue, ConcurrentProducersConsumersDeliverEverythingOnce) {
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 3;
  constexpr int kPerProducer = 200;
  BoundedPriorityQueue<int> queue(5, 3);
  std::vector<std::thread> threads;
  std::atomic<int> sum{0};
  std::atomic<int> popped{0};
  for (size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int out = 0;
      while (queue.Pop(&out)) {
        sum.fetch_add(out);
        popped.fetch_add(1);
      }
    });
  }
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = static_cast<int>(p) * kPerProducer + i + 1;
        ASSERT_EQ(queue.Push(value % 3, value), QueuePush::kAdmitted);
      }
    });
  }
  for (size_t t = kConsumers; t < threads.size(); ++t) threads[t].join();
  queue.Close();
  for (size_t t = 0; t < kConsumers; ++t) threads[t].join();
  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal + 1) / 2);
}

}  // namespace
}  // namespace sfa
