// Integration tests of the full audit pipeline — the paper's headline
// claims at test scale: the unfair-by-design Synth dataset must be declared
// unfair, the fair-by-design SemiSynth-style dataset fair, and the evidence
// regions must be the planted ones.
#include "core/audit.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/grid_family.h"
#include "core/partitioning_family.h"
#include "core/square_family.h"
#include "data/synth.h"

namespace sfa::core {
namespace {

AuditOptions FastOptions(double alpha = 0.01) {
  AuditOptions opts;
  opts.alpha = alpha;
  opts.monte_carlo.num_worlds = 199;
  opts.monte_carlo.seed = 1;
  return opts;
}

data::OutcomeDataset FairUniform(size_t n, double rho, uint64_t seed) {
  sfa::Rng rng(seed);
  data::OutcomeDataset ds("fair-uniform");
  for (size_t i = 0; i < n; ++i) {
    ds.Add({rng.Uniform(0, 2), rng.Uniform(0, 1)}, rng.Bernoulli(rho) ? 1 : 0);
  }
  return ds;
}

TEST(Auditor, DeclaresSynthUnfair) {
  data::SynthOptions synth;
  synth.num_outcomes = 4000;
  auto ds = data::MakeSynth(synth);
  ASSERT_TRUE(ds.ok());
  auto family = GridPartitionFamily::Create(ds->locations(), 8, 4);
  ASSERT_TRUE(family.ok());
  const Auditor auditor(FastOptions(0.01));
  auto result = auditor.Audit(*ds, **family);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->spatially_fair);
  EXPECT_LE(result->p_value, 0.01);
  EXPECT_FALSE(result->findings.empty());
  EXPECT_GT(result->tau, result->critical_value);
}

TEST(Auditor, DeclaresFairDataFair) {
  const data::OutcomeDataset ds = FairUniform(4000, 0.5, 81);
  auto family = GridPartitionFamily::Create(ds.locations(), 8, 4);
  ASSERT_TRUE(family.ok());
  const Auditor auditor(FastOptions(0.01));
  auto result = auditor.Audit(ds, **family);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->spatially_fair) << "p=" << result->p_value;
  EXPECT_GT(result->p_value, 0.01);
}

TEST(Auditor, FindingsAreRankedAndAboveCritical) {
  data::SynthOptions synth;
  synth.num_outcomes = 6000;
  auto ds = data::MakeSynth(synth);
  ASSERT_TRUE(ds.ok());
  auto family = GridPartitionFamily::Create(ds->locations(), 10, 5);
  ASSERT_TRUE(family.ok());
  const Auditor auditor(FastOptions());
  auto result = auditor.Audit(*ds, **family);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->findings.empty());
  for (size_t i = 0; i < result->findings.size(); ++i) {
    ASSERT_GT(result->findings[i].llr, result->critical_value);
    if (i > 0) {
      ASSERT_LE(result->findings[i].llr, result->findings[i - 1].llr);
    }
    // log SUL = Λ + log L0max (constant shift).
    ASSERT_NEAR(result->findings[i].log_sul - result->findings[i].llr,
                result->findings[0].log_sul - result->findings[0].llr, 1e-9);
  }
}

TEST(Auditor, LogSulMatchesEq1Definition) {
  // The paper's Eq. 1: SUL(R) = L1max(R), the maximized alternative
  // likelihood with separate inside/outside rates. RegionFinding::log_sul is
  // computed as Λ + log L0max; it must agree with a direct evaluation of
  // log L1max(R) = ll(p, n) + ll(P-p, N-n) from the finding's counts, for
  // every finding and every scan direction (directional gating never applies
  // to findings — they all have Λ > 0 in the scanned direction, where the
  // directional and two-sided statistics coincide).
  data::SynthOptions synth;
  synth.num_outcomes = 5000;
  auto ds = data::MakeSynth(synth);
  ASSERT_TRUE(ds.ok());
  auto family = GridPartitionFamily::Create(ds->locations(), 8, 4);
  ASSERT_TRUE(family.ok());
  for (auto direction :
       {stats::ScanDirection::kTwoSided, stats::ScanDirection::kHigh,
        stats::ScanDirection::kLow}) {
    AuditOptions opts = FastOptions();
    opts.direction = direction;
    auto result = Auditor(opts).Audit(*ds, **family);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result->findings.empty())
        << stats::ScanDirectionToString(direction);
    for (const RegionFinding& f : result->findings) {
      stats::ScanCounts counts;
      counts.n = f.n;
      counts.p = f.p;
      counts.total_n = result->total_n;
      counts.total_p = result->total_p;
      const double eq1 = stats::LogSpatialUnfairnessLikelihood(counts);
      ASSERT_NEAR(f.log_sul, eq1, 1e-9 * (1.0 + std::fabs(eq1)))
          << "region " << f.region_index << " under "
          << stats::ScanDirectionToString(direction);
    }
    // Ranking by Λ and ranking by SUL must be the same order (log_sul is a
    // constant shift of llr — the comment in audit.cc, now enforced).
    for (size_t i = 1; i < result->findings.size(); ++i) {
      ASSERT_LE(result->findings[i].log_sul, result->findings[i - 1].log_sul);
    }
  }
}

TEST(Auditor, FindingCountsAreConsistent) {
  data::SynthOptions synth;
  synth.num_outcomes = 3000;
  auto ds = data::MakeSynth(synth);
  ASSERT_TRUE(ds.ok());
  auto family = GridPartitionFamily::Create(ds->locations(), 6, 3);
  ASSERT_TRUE(family.ok());
  const Auditor auditor(FastOptions());
  auto result = auditor.Audit(*ds, **family);
  ASSERT_TRUE(result.ok());
  for (const RegionFinding& f : result->findings) {
    ASSERT_LE(f.p, f.n);
    ASSERT_NEAR(f.local_rate,
                static_cast<double>(f.p) / static_cast<double>(f.n), 1e-12);
    ASSERT_EQ(f.n, (*family)->PointCount(f.region_index));
  }
  EXPECT_EQ(result->total_n, 3000u);
  EXPECT_EQ(result->total_p, ds->PositiveCount());
}

TEST(Auditor, RejectsMismatchedFamily) {
  const data::OutcomeDataset ds = FairUniform(100, 0.5, 82);
  const data::OutcomeDataset other = FairUniform(200, 0.5, 83);
  auto family = GridPartitionFamily::Create(other.locations(), 4, 4);
  ASSERT_TRUE(family.ok());
  const Auditor auditor(FastOptions());
  EXPECT_TRUE(auditor.Audit(ds, **family).status().IsInvalidArgument());
}

TEST(Auditor, RejectsBadAlpha) {
  const data::OutcomeDataset ds = FairUniform(100, 0.5, 84);
  auto family = GridPartitionFamily::Create(ds.locations(), 2, 2);
  ASSERT_TRUE(family.ok());
  AuditOptions opts = FastOptions();
  opts.alpha = 0.0;
  EXPECT_TRUE(Auditor(opts).Audit(ds, **family).status().IsInvalidArgument());
  opts.alpha = 1.0;
  EXPECT_TRUE(Auditor(opts).Audit(ds, **family).status().IsInvalidArgument());
}

TEST(Auditor, EqualOpportunityMeasureAuditsTprSurface) {
  // Ground truth everywhere positive rate 0.5; predictions perfect outside a
  // planted zone where the model misses half the true positives.
  sfa::Rng rng(85);
  data::OutcomeDataset ds("model");
  const geo::Rect bad_zone(0.0, 0.0, 0.5, 1.0);
  for (size_t i = 0; i < 6000; ++i) {
    const geo::Point loc(rng.Uniform(0, 2), rng.Uniform(0, 1));
    const uint8_t actual = rng.Bernoulli(0.5) ? 1 : 0;
    uint8_t predicted = actual;
    if (actual == 1 && bad_zone.Contains(loc) && rng.Bernoulli(0.5)) {
      predicted = 0;  // false negative cluster
    }
    ds.Add(loc, predicted, actual);
  }
  // Family must be bound to the *measure view* (Y=1 individuals).
  auto view = BuildMeasureView(ds, FairnessMeasure::kEqualOpportunity);
  ASSERT_TRUE(view.ok());
  auto family = GridPartitionFamily::Create(view->locations(), 8, 4);
  ASSERT_TRUE(family.ok());
  AuditOptions opts = FastOptions();
  opts.measure = FairnessMeasure::kEqualOpportunity;
  const Auditor auditor(opts);
  auto result = auditor.Audit(ds, **family);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->spatially_fair);
  // The top finding must be inside the planted bad zone.
  ASSERT_FALSE(result->findings.empty());
  EXPECT_TRUE(bad_zone.Intersects(result->findings[0].rect));
  EXPECT_LT(result->findings[0].local_rate, result->overall_rate);
}

TEST(Auditor, DirectionalAuditSeparatesRedAndGreen) {
  data::SynthOptions synth;
  synth.num_outcomes = 5000;
  auto ds = data::MakeSynth(synth);
  ASSERT_TRUE(ds.ok());
  auto family = GridPartitionFamily::Create(ds->locations(), 6, 3);
  ASSERT_TRUE(family.ok());

  AuditOptions high_opts = FastOptions();
  high_opts.direction = stats::ScanDirection::kHigh;
  auto high = Auditor(high_opts).Audit(*ds, **family);
  ASSERT_TRUE(high.ok());

  AuditOptions low_opts = FastOptions();
  low_opts.direction = stats::ScanDirection::kLow;
  auto low = Auditor(low_opts).Audit(*ds, **family);
  ASSERT_TRUE(low.ok());

  const double mid_x = synth.extent.Center().x;
  // Green (high) findings live in the left half, red (low) in the right.
  for (const RegionFinding& f : high->findings) {
    EXPECT_LT(f.rect.Center().x, mid_x) << f.label;
    EXPECT_GT(f.local_rate, high->overall_rate);
  }
  for (const RegionFinding& f : low->findings) {
    EXPECT_GT(f.rect.Center().x, mid_x) << f.label;
    EXPECT_LT(f.local_rate, low->overall_rate);
  }
  EXPECT_FALSE(high->findings.empty());
  EXPECT_FALSE(low->findings.empty());
}

TEST(Auditor, WorksWithPartitioningCollectionFamily) {
  data::SynthOptions synth;
  synth.num_outcomes = 3000;
  auto ds = data::MakeSynth(synth);
  ASSERT_TRUE(ds.ok());
  sfa::Rng rng(86);
  auto partitionings = geo::MakeRandomPartitionings(
      geo::Rect::BoundingBox(ds->locations()).Expanded(1e-6), 10, 5, 15, &rng);
  ASSERT_TRUE(partitionings.ok());
  auto family =
      PartitioningCollectionFamily::Create(ds->locations(), *partitionings);
  ASSERT_TRUE(family.ok());
  const Auditor auditor(FastOptions());
  auto result = auditor.Audit(*ds, **family);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
}

TEST(Auditor, WorksWithSquareScanFamily) {
  data::SynthOptions synth;
  synth.num_outcomes = 3000;
  auto ds = data::MakeSynth(synth);
  ASSERT_TRUE(ds.ok());
  SquareScanOptions scan;
  scan.centers = {{0.5, 0.5}, {1.0, 0.5}, {1.5, 0.5}};
  scan.side_lengths = {0.4, 0.8};
  auto family = SquareScanFamily::Create(ds->locations(), scan);
  ASSERT_TRUE(family.ok());
  const Auditor auditor(FastOptions());
  auto result = auditor.Audit(*ds, **family);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
}

TEST(Auditor, ResultIsDeterministicForFixedSeed) {
  const data::OutcomeDataset ds = FairUniform(1000, 0.4, 87);
  auto family = GridPartitionFamily::Create(ds.locations(), 5, 5);
  ASSERT_TRUE(family.ok());
  const Auditor auditor(FastOptions());
  auto a = auditor.Audit(ds, **family);
  auto b = auditor.Audit(ds, **family);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->p_value, b->p_value);
  EXPECT_EQ(a->tau, b->tau);
  EXPECT_EQ(a->critical_value, b->critical_value);
  EXPECT_EQ(a->findings.size(), b->findings.size());
}

// Calibration sweep: the type-I error of the audit at level alpha should be
// near alpha. Run many fair worlds through a small audit and count
// rejections. (Statistical test with generous tolerance.)
class CalibrationSweep : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationSweep, TypeIErrorIsControlled) {
  const double alpha = GetParam();
  sfa::Rng rng(88);
  // One shared location cloud; labels redrawn per trial.
  std::vector<geo::Point> pts(600);
  for (auto& p : pts) p = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
  auto family = GridPartitionFamily::Create(pts, 4, 4);
  ASSERT_TRUE(family.ok());

  AuditOptions opts;
  opts.alpha = alpha;
  opts.monte_carlo.num_worlds = 99;

  int rejections = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    data::OutcomeDataset ds("calibration");
    for (const auto& p : pts) ds.Add(p, rng.Bernoulli(0.5) ? 1 : 0);
    opts.monte_carlo.seed = 1000 + static_cast<uint64_t>(trial);
    auto result = Auditor(opts).Audit(ds, **family);
    ASSERT_TRUE(result.ok());
    rejections += result->spatially_fair ? 0 : 1;
  }
  // E[rejections] = alpha * trials; allow ~4 standard deviations.
  const double expected = alpha * trials;
  const double sigma = std::sqrt(trials * alpha * (1 - alpha));
  EXPECT_LE(rejections, expected + 4 * sigma + 1);
}

INSTANTIATE_TEST_SUITE_P(Alphas, CalibrationSweep, ::testing::Values(0.05, 0.1));

}  // namespace
}  // namespace sfa::core
