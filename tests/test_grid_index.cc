// Tests for GridIndex (CSR binning + label accumulation) and PrefixSum2D.
#include "spatial/grid_index.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "spatial/prefix_sum_2d.h"

namespace sfa::spatial {
namespace {

geo::GridSpec MakeGrid(uint32_t nx, uint32_t ny) {
  auto g = geo::GridSpec::Create(geo::Rect(0, 0, 10, 10), nx, ny);
  EXPECT_TRUE(g.ok());
  return *g;
}

TEST(GridIndex, BinsPointsIntoCells) {
  const geo::GridSpec grid = MakeGrid(2, 2);
  const std::vector<geo::Point> pts = {{1, 1}, {6, 1}, {1, 6}, {6, 6}, {7, 7}};
  GridIndex index(grid, pts);
  EXPECT_EQ(index.num_points(), 5u);
  EXPECT_EQ(index.num_unassigned(), 0u);
  EXPECT_EQ(index.CellOfPoint(0), 0u);
  EXPECT_EQ(index.CellOfPoint(1), 1u);
  EXPECT_EQ(index.CellOfPoint(2), 2u);
  EXPECT_EQ(index.CellOfPoint(4), 3u);
  const auto counts = index.CountsPerCell();
  EXPECT_EQ(counts, (std::vector<uint32_t>{1, 1, 1, 2}));
}

TEST(GridIndex, PointsInCellReturnsMembers) {
  const geo::GridSpec grid = MakeGrid(2, 2);
  const std::vector<geo::Point> pts = {{1, 1}, {6, 6}, {2, 2}};
  GridIndex index(grid, pts);
  auto cell0 = index.PointsInCell(0);
  std::vector<uint32_t> ids(cell0.begin(), cell0.end());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(index.PointsInCell(1).size(), 0u);
}

TEST(GridIndex, OutsidePointsAreUnassigned) {
  const geo::GridSpec grid = MakeGrid(2, 2);
  const std::vector<geo::Point> pts = {{1, 1}, {20, 20}, {-5, 5}};
  GridIndex index(grid, pts);
  EXPECT_EQ(index.num_unassigned(), 2u);
  EXPECT_EQ(index.CellOfPoint(1), geo::GridSpec::kInvalidCell);
  EXPECT_EQ(index.CountsPerCell()[0], 1u);
}

TEST(GridIndex, AccumulateLabelCounts) {
  const geo::GridSpec grid = MakeGrid(2, 1);
  const std::vector<geo::Point> pts = {{1, 5}, {2, 5}, {6, 5}, {7, 5}, {8, 5}};
  GridIndex index(grid, pts);
  std::vector<uint32_t> out(grid.num_cells());
  index.AccumulateLabelCounts({1, 0, 1, 1, 0}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2}));
  // Re-use zeroes the buffer first.
  index.AccumulateLabelCounts({0, 0, 0, 0, 0}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 0}));
}

TEST(GridIndex, AccumulateSkipsUnassigned) {
  const geo::GridSpec grid = MakeGrid(1, 1);
  const std::vector<geo::Point> pts = {{5, 5}, {50, 50}};
  GridIndex index(grid, pts);
  std::vector<uint32_t> out(1);
  index.AccumulateLabelCounts({1, 1}, &out);
  EXPECT_EQ(out[0], 1u);
}

TEST(PrefixSum2D, SingleCell) {
  PrefixSum2D ps(1, 1, {7});
  EXPECT_EQ(ps.Total(), 7u);
  EXPECT_EQ(ps.SumRange(0, 0, 1, 1), 7u);
  EXPECT_EQ(ps.SumRange(0, 0, 0, 0), 0u);
}

TEST(PrefixSum2D, KnownGrid) {
  // 3x2 grid, row-major values:
  //   row 0: 1 2 3
  //   row 1: 4 5 6
  PrefixSum2D ps(3, 2, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(ps.Total(), 21u);
  EXPECT_EQ(ps.SumRange(0, 0, 3, 1), 6u);   // first row
  EXPECT_EQ(ps.SumRange(0, 1, 3, 2), 15u);  // second row
  EXPECT_EQ(ps.SumRange(1, 0, 2, 2), 7u);   // middle column
  EXPECT_EQ(ps.SumRange(1, 1, 3, 2), 11u);  // 5 + 6
  EXPECT_EQ(ps.SumRange(2, 0, 3, 1), 3u);
}

TEST(PrefixSum2D, EmptyRangesAreZero) {
  PrefixSum2D ps(2, 2, {1, 1, 1, 1});
  EXPECT_EQ(ps.SumRange(1, 1, 1, 1), 0u);
  EXPECT_EQ(ps.SumRange(0, 2, 2, 2), 0u);
}

// Property sweep: random grids, prefix sums match naive block sums for all
// O(n^4) ranges on small grids.
class PrefixSumSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(PrefixSumSweep, MatchesNaiveBlockSums) {
  const auto [nx, ny] = GetParam();
  sfa::Rng rng(nx * 100 + ny);
  std::vector<uint32_t> values(static_cast<size_t>(nx) * ny);
  for (auto& v : values) v = static_cast<uint32_t>(rng.NextUint64(50));
  PrefixSum2D ps(nx, ny, values);
  for (uint32_t x0 = 0; x0 <= nx; ++x0) {
    for (uint32_t x1 = x0; x1 <= nx; ++x1) {
      for (uint32_t y0 = 0; y0 <= ny; ++y0) {
        for (uint32_t y1 = y0; y1 <= ny; ++y1) {
          uint64_t naive = 0;
          for (uint32_t y = y0; y < y1; ++y) {
            for (uint32_t x = x0; x < x1; ++x) {
              naive += values[static_cast<size_t>(y) * nx + x];
            }
          }
          ASSERT_EQ(ps.SumRange(x0, y0, x1, y1), naive)
              << x0 << "," << y0 << " .. " << x1 << "," << y1;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PrefixSumSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 5u, 8u),
                       ::testing::Values(1u, 3u, 6u)));

// Integration: grid index + prefix sums reproduce brute-force block counts
// on a random point cloud (the counting path of grid-aligned audits).
TEST(GridIndexPrefixSum, EndToEndBlockCounts) {
  const geo::GridSpec grid = MakeGrid(16, 16);
  sfa::Rng rng(77);
  std::vector<geo::Point> pts(3000);
  std::vector<uint8_t> labels(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    labels[i] = rng.Bernoulli(0.37) ? 1 : 0;
  }
  GridIndex index(grid, pts);
  std::vector<uint32_t> pos_per_cell(grid.num_cells());
  index.AccumulateLabelCounts(labels, &pos_per_cell);
  PrefixSum2D ps(grid.nx(), grid.ny(), pos_per_cell);

  // Check a handful of blocks against brute force.
  for (int trial = 0; trial < 30; ++trial) {
    const auto x0 = static_cast<uint32_t>(rng.NextUint64(16));
    const auto y0 = static_cast<uint32_t>(rng.NextUint64(16));
    const auto x1 = x0 + static_cast<uint32_t>(rng.NextUint64(16 - x0 + 1));
    const auto y1 = y0 + static_cast<uint32_t>(rng.NextUint64(16 - y0 + 1));
    const geo::Rect block(grid.extent().min_x + x0 * grid.cell_width(),
                          grid.extent().min_y + y0 * grid.cell_height(),
                          grid.extent().min_x + x1 * grid.cell_width(),
                          grid.extent().min_y + y1 * grid.cell_height());
    uint64_t naive = 0;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (labels[i] && block.Contains(pts[i])) ++naive;
    }
    ASSERT_EQ(ps.SumRange(x0, y0, x1, y1), naive);
  }
}

}  // namespace
}  // namespace sfa::spatial
