// Tests for the kNN graph, join counts, and binary Moran's I.
#include "stats/join_count.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace sfa::stats {
namespace {

TEST(BuildKnnGraph, RejectsBadInputs) {
  EXPECT_FALSE(BuildKnnGraph({{0, 0}, {1, 1}}, 0).ok());
  EXPECT_FALSE(BuildKnnGraph({{0, 0}, {1, 1}}, 2).ok());  // k >= n
}

TEST(BuildKnnGraph, LineGraphStructure) {
  // Points on a line: 1-NN graph connects consecutive points.
  std::vector<geo::Point> pts;
  for (int i = 0; i < 5; ++i) pts.push_back({static_cast<double>(i), 0.0});
  auto graph = BuildKnnGraph(pts, 1);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 5u);
  // Symmetrized 1-NN on a line: middle nodes have 1-2 neighbors, each
  // endpoint exactly one.
  EXPECT_EQ(graph->begin[1] - graph->begin[0], 1u);
  // Every edge is symmetric.
  for (uint32_t i = 0; i < graph->num_nodes(); ++i) {
    for (uint32_t e = graph->begin[i]; e < graph->begin[i + 1]; ++e) {
      const uint32_t j = graph->neighbor_ids[e];
      bool back = false;
      for (uint32_t e2 = graph->begin[j]; e2 < graph->begin[j + 1]; ++e2) {
        back |= graph->neighbor_ids[e2] == i;
      }
      EXPECT_TRUE(back) << i << "->" << j;
    }
  }
}

TEST(BuildKnnGraph, NoSelfLoopsAndKRespected) {
  Rng rng(3);
  std::vector<geo::Point> pts(300);
  for (auto& p : pts) p = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
  auto graph = BuildKnnGraph(pts, 4);
  ASSERT_TRUE(graph.ok());
  for (uint32_t i = 0; i < graph->num_nodes(); ++i) {
    const size_t degree = graph->begin[i + 1] - graph->begin[i];
    EXPECT_GE(degree, 4u);        // own k neighbors at least
    EXPECT_LE(degree, 300u);      // sanity
    for (uint32_t e = graph->begin[i]; e < graph->begin[i + 1]; ++e) {
      EXPECT_NE(graph->neighbor_ids[e], i);
    }
  }
}

TEST(CountJoins, KnownTinyGraph) {
  // Path 0-1-2 with labels 1,1,0: edges (0,1)=BB, (1,2)=BW.
  std::vector<geo::Point> pts = {{0, 0}, {1, 0}, {2, 0}};
  auto graph = BuildKnnGraph(pts, 1);
  ASSERT_TRUE(graph.ok());
  const JoinCounts counts = CountJoins(*graph, {1, 1, 0});
  EXPECT_EQ(counts.bb, 1u);
  EXPECT_EQ(counts.bw, 1u);
  EXPECT_EQ(counts.ww, 0u);
  EXPECT_EQ(counts.total(), graph->num_edges());
}

TEST(MoransI, PositiveForSegregatedLabels) {
  // Left half all 1, right half all 0 → strong positive autocorrelation.
  Rng rng(7);
  std::vector<geo::Point> pts(400);
  std::vector<uint8_t> labels(400);
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 2), rng.Uniform(0, 1)};
    labels[i] = pts[i].x < 1.0 ? 1 : 0;
  }
  auto graph = BuildKnnGraph(pts, 5);
  ASSERT_TRUE(graph.ok());
  EXPECT_GT(BinaryMoransI(*graph, labels), 0.6);
}

TEST(MoransI, NearZeroForIndependentLabels) {
  Rng rng(8);
  std::vector<geo::Point> pts(1000);
  std::vector<uint8_t> labels(1000);
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  auto graph = BuildKnnGraph(pts, 5);
  ASSERT_TRUE(graph.ok());
  EXPECT_NEAR(BinaryMoransI(*graph, labels), 0.0, 0.08);
}

TEST(MoransI, ConstantLabelsGiveZero) {
  std::vector<geo::Point> pts = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  auto graph = BuildKnnGraph(pts, 1);
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(BinaryMoransI(*graph, {1, 1, 1, 1}), 0.0);
}

TEST(MoransIPValue, DetectsSegregationAndControlsNull) {
  Rng rng(9);
  std::vector<geo::Point> pts(500);
  std::vector<uint8_t> segregated(500), fair(500);
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 2), rng.Uniform(0, 1)};
    segregated[i] = pts[i].x < 1.0 ? (rng.Bernoulli(0.8) ? 1 : 0)
                                   : (rng.Bernoulli(0.2) ? 1 : 0);
    fair[i] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  auto graph = BuildKnnGraph(pts, 5);
  ASSERT_TRUE(graph.ok());
  auto p_segregated = MoransIPValue(*graph, segregated, 199, 11);
  auto p_fair = MoransIPValue(*graph, fair, 199, 12);
  ASSERT_TRUE(p_segregated.ok() && p_fair.ok());
  EXPECT_LE(*p_segregated, 0.01);
  EXPECT_GT(*p_fair, 0.05);
}

TEST(MoransIPValue, RejectsBadInputs) {
  std::vector<geo::Point> pts = {{0, 0}, {1, 0}, {2, 0}};
  auto graph = BuildKnnGraph(pts, 1);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(MoransIPValue(*graph, {1, 0}, 99, 1).ok());       // size mismatch
  EXPECT_FALSE(MoransIPValue(*graph, {1, 0, 1}, 0, 1).ok());     // no worlds
}

}  // namespace
}  // namespace sfa::stats
