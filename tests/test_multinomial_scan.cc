// Tests for the multinomial scan statistic and the multi-class grid audit.
#include "stats/multinomial_scan.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/multiclass.h"
#include "stats/bernoulli_scan.h"

namespace sfa {
namespace {

TEST(MultinomialLlr, ZeroForDegenerateRegions) {
  // Empty region.
  EXPECT_DOUBLE_EQ(
      stats::MultinomialLogLikelihoodRatio({0, 0}, {10, 10}), 0.0);
  // Region == everything.
  EXPECT_DOUBLE_EQ(
      stats::MultinomialLogLikelihoodRatio({10, 10}, {10, 10}), 0.0);
}

TEST(MultinomialLlr, ZeroWhenProportionsMatch) {
  // Inside is a perfect miniature of the totals.
  EXPECT_NEAR(stats::MultinomialLogLikelihoodRatio({5, 10, 15}, {10, 20, 30}),
              0.0, 1e-12);
}

TEST(MultinomialLlr, PositiveForDeviations) {
  EXPECT_GT(stats::MultinomialLogLikelihoodRatio({10, 0}, {20, 20}), 0.0);
  EXPECT_GT(stats::MultinomialLogLikelihoodRatio({1, 9, 0}, {10, 10, 10}), 0.0);
}

TEST(MultinomialLlr, TwoClassesReduceToBernoulli) {
  // K=2 multinomial LLR == two-sided Bernoulli scan LLR, counting class 0 as
  // "positive".
  for (uint64_t p = 0; p <= 8; ++p) {
    for (uint64_t big_p = p; big_p <= 30; big_p += 3) {
      const uint64_t n = 8, big_n = 40;
      if (big_n - big_p < n - p) continue;
      const stats::ScanCounts counts{.n = n, .p = p, .total_n = big_n,
                                     .total_p = big_p};
      const double bernoulli = stats::BernoulliLogLikelihoodRatio(counts);
      const double multinomial = stats::MultinomialLogLikelihoodRatio(
          {p, n - p}, {big_p, big_n - big_p});
      ASSERT_NEAR(bernoulli, multinomial, 1e-10)
          << "p=" << p << " P=" << big_p;
    }
  }
}

TEST(MultinomialLlr, GrowsWithEffectSize) {
  const double mild =
      stats::MultinomialLogLikelihoodRatio({12, 8, 10}, {100, 100, 100});
  const double strong =
      stats::MultinomialLogLikelihoodRatio({28, 1, 1}, {100, 100, 100});
  EXPECT_GT(strong, mild);
}

TEST(MultinomialLlrDeathTest, RejectsEmptyAndMismatched) {
  EXPECT_DEATH(stats::MultinomialLogLikelihoodRatio({}, {}), "class");
  EXPECT_DEATH(stats::MultinomialLogLikelihoodRatio({1}, {1, 2}), "classes");
}

core::MulticlassAuditOptions FastOptions() {
  core::MulticlassAuditOptions opts;
  opts.alpha = 0.01;
  opts.grid_x = 6;
  opts.grid_y = 6;
  opts.monte_carlo.num_worlds = 199;
  return opts;
}

TEST(MulticlassAudit, RejectsBadInputs) {
  const std::vector<geo::Point> pts = {{0, 0}, {1, 1}};
  EXPECT_FALSE(core::AuditMulticlassGrid({}, {}, 3, FastOptions()).ok());
  EXPECT_FALSE(core::AuditMulticlassGrid(pts, {0}, 3, FastOptions()).ok());
  EXPECT_FALSE(core::AuditMulticlassGrid(pts, {0, 1}, 1, FastOptions()).ok());
  EXPECT_FALSE(core::AuditMulticlassGrid(pts, {0, 5}, 3, FastOptions()).ok());
}

TEST(MulticlassAudit, FairMixtureIsDeclaredFair) {
  Rng rng(71);
  std::vector<geo::Point> pts(4000);
  std::vector<uint8_t> classes(pts.size());
  const std::vector<double> mix = {0.5, 0.3, 0.2};
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    classes[i] = static_cast<uint8_t>(rng.Categorical(mix));
  }
  auto result = core::AuditMulticlassGrid(pts, classes, 3, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->spatially_fair) << "p=" << result->p_value;
  EXPECT_NEAR(result->class_distribution[0], 0.5, 0.03);
}

TEST(MulticlassAudit, DetectsPlantedMixtureShift) {
  // Same marginal classes, but one corner swaps class 0 mass for class 2.
  Rng rng(72);
  std::vector<geo::Point> pts(6000);
  std::vector<uint8_t> classes(pts.size());
  const geo::Rect zone(7.0, 7.0, 10.0, 10.0);
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const bool shifted = zone.Contains(pts[i]);
    const std::vector<double> mix =
        shifted ? std::vector<double>{0.1, 0.3, 0.6}
                : std::vector<double>{0.5, 0.3, 0.2};
    classes[i] = static_cast<uint8_t>(rng.Categorical(mix));
  }
  auto result = core::AuditMulticlassGrid(pts, classes, 3, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
  ASSERT_FALSE(result->findings.empty());
  // Top finding lies in the planted zone and shows the shifted mix.
  const auto& top = result->findings[0];
  EXPECT_TRUE(zone.Intersects(top.rect));
  EXPECT_GT(top.class_counts[2], top.class_counts[0]);
  // Counts are consistent.
  uint64_t sum = 0;
  for (uint64_t c : top.class_counts) sum += c;
  EXPECT_EQ(sum, top.n);
}

TEST(MulticlassAudit, BinaryCaseAgreesWithBinaryAuditDirectionally) {
  // A 2-class multiclass audit must reach the same verdict as the binary
  // machinery on the same data (both calibrate by Monte Carlo, so compare
  // verdicts, not exact p-values).
  Rng rng(73);
  std::vector<geo::Point> pts(4000);
  std::vector<uint8_t> classes(pts.size());
  const geo::Rect zone(0.0, 0.0, 3.0, 10.0);
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    classes[i] = rng.Bernoulli(zone.Contains(pts[i]) ? 0.75 : 0.5) ? 1 : 0;
  }
  auto result = core::AuditMulticlassGrid(pts, classes, 2, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
}

TEST(MulticlassAudit, DeterministicForSeed) {
  Rng rng(74);
  std::vector<geo::Point> pts(1000);
  std::vector<uint8_t> classes(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
    classes[i] = static_cast<uint8_t>(rng.NextUint64(4));
  }
  auto a = core::AuditMulticlassGrid(pts, classes, 4, FastOptions());
  auto b = core::AuditMulticlassGrid(pts, classes, 4, FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->p_value, b->p_value);
  EXPECT_EQ(a->tau, b->tau);
}

}  // namespace
}  // namespace sfa
