// Tests for the multinomial scan statistic and the multi-class grid audit.
#include "stats/multinomial_scan.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/grid_family.h"
#include "core/knn_circle_family.h"
#include "core/labels.h"
#include "core/multiclass.h"
#include "core/partitioning_family.h"
#include "core/rectangle_sweep_family.h"
#include "core/square_family.h"
#include "geo/partitioning.h"
#include "stats/bernoulli_scan.h"

namespace sfa {
namespace {

TEST(MultinomialLlr, ZeroForDegenerateRegions) {
  // Empty region.
  EXPECT_DOUBLE_EQ(
      stats::MultinomialLogLikelihoodRatio({0, 0}, {10, 10}), 0.0);
  // Region == everything.
  EXPECT_DOUBLE_EQ(
      stats::MultinomialLogLikelihoodRatio({10, 10}, {10, 10}), 0.0);
}

TEST(MultinomialLlr, ZeroWhenProportionsMatch) {
  // Inside is a perfect miniature of the totals.
  EXPECT_NEAR(stats::MultinomialLogLikelihoodRatio({5, 10, 15}, {10, 20, 30}),
              0.0, 1e-12);
}

TEST(MultinomialLlr, PositiveForDeviations) {
  EXPECT_GT(stats::MultinomialLogLikelihoodRatio({10, 0}, {20, 20}), 0.0);
  EXPECT_GT(stats::MultinomialLogLikelihoodRatio({1, 9, 0}, {10, 10, 10}), 0.0);
}

TEST(MultinomialLlr, TwoClassesReduceToBernoulli) {
  // K=2 multinomial LLR == two-sided Bernoulli scan LLR, counting class 0 as
  // "positive".
  for (uint64_t p = 0; p <= 8; ++p) {
    for (uint64_t big_p = p; big_p <= 30; big_p += 3) {
      const uint64_t n = 8, big_n = 40;
      if (big_n - big_p < n - p) continue;
      const stats::ScanCounts counts{.n = n, .p = p, .total_n = big_n,
                                     .total_p = big_p};
      const double bernoulli = stats::BernoulliLogLikelihoodRatio(counts);
      const double multinomial = stats::MultinomialLogLikelihoodRatio(
          {p, n - p}, {big_p, big_n - big_p});
      ASSERT_NEAR(bernoulli, multinomial, 1e-10)
          << "p=" << p << " P=" << big_p;
    }
  }
}

TEST(MultinomialLlr, GrowsWithEffectSize) {
  const double mild =
      stats::MultinomialLogLikelihoodRatio({12, 8, 10}, {100, 100, 100});
  const double strong =
      stats::MultinomialLogLikelihoodRatio({28, 1, 1}, {100, 100, 100});
  EXPECT_GT(strong, mild);
}

TEST(MultinomialLlrDeathTest, RejectsEmptyAndMismatched) {
  EXPECT_DEATH(stats::MultinomialLogLikelihoodRatio({}, {}), "class");
  EXPECT_DEATH(stats::MultinomialLogLikelihoodRatio({1}, {1, 2}), "classes");
}

core::MulticlassAuditOptions FastOptions() {
  core::MulticlassAuditOptions opts;
  opts.alpha = 0.01;
  opts.grid_x = 6;
  opts.grid_y = 6;
  opts.monte_carlo.num_worlds = 199;
  return opts;
}

TEST(MulticlassAudit, RejectsBadInputs) {
  const std::vector<geo::Point> pts = {{0, 0}, {1, 1}};
  EXPECT_FALSE(core::AuditMulticlassGrid({}, {}, 3, FastOptions()).ok());
  EXPECT_FALSE(core::AuditMulticlassGrid(pts, {0}, 3, FastOptions()).ok());
  EXPECT_FALSE(core::AuditMulticlassGrid(pts, {0, 1}, 1, FastOptions()).ok());
  EXPECT_FALSE(core::AuditMulticlassGrid(pts, {0, 5}, 3, FastOptions()).ok());
}

TEST(MulticlassAudit, FairMixtureIsDeclaredFair) {
  Rng rng(71);
  std::vector<geo::Point> pts(4000);
  std::vector<uint8_t> classes(pts.size());
  const std::vector<double> mix = {0.5, 0.3, 0.2};
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    classes[i] = static_cast<uint8_t>(rng.Categorical(mix));
  }
  auto result = core::AuditMulticlassGrid(pts, classes, 3, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->spatially_fair) << "p=" << result->p_value;
  EXPECT_NEAR(result->class_distribution[0], 0.5, 0.03);
}

TEST(MulticlassAudit, DetectsPlantedMixtureShift) {
  // Same marginal classes, but one corner swaps class 0 mass for class 2.
  Rng rng(72);
  std::vector<geo::Point> pts(6000);
  std::vector<uint8_t> classes(pts.size());
  const geo::Rect zone(7.0, 7.0, 10.0, 10.0);
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    const bool shifted = zone.Contains(pts[i]);
    const std::vector<double> mix =
        shifted ? std::vector<double>{0.1, 0.3, 0.6}
                : std::vector<double>{0.5, 0.3, 0.2};
    classes[i] = static_cast<uint8_t>(rng.Categorical(mix));
  }
  auto result = core::AuditMulticlassGrid(pts, classes, 3, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
  ASSERT_FALSE(result->findings.empty());
  // Top finding lies in the planted zone and shows the shifted mix.
  const auto& top = result->findings[0];
  EXPECT_TRUE(zone.Intersects(top.rect));
  EXPECT_GT(top.class_counts[2], top.class_counts[0]);
  // Counts are consistent.
  uint64_t sum = 0;
  for (uint64_t c : top.class_counts) sum += c;
  EXPECT_EQ(sum, top.n);
}

TEST(MulticlassAudit, BinaryCaseAgreesWithBinaryAuditDirectionally) {
  // A 2-class multiclass audit must reach the same verdict as the binary
  // machinery on the same data (both calibrate by Monte Carlo, so compare
  // verdicts, not exact p-values).
  Rng rng(73);
  std::vector<geo::Point> pts(4000);
  std::vector<uint8_t> classes(pts.size());
  const geo::Rect zone(0.0, 0.0, 3.0, 10.0);
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    classes[i] = rng.Bernoulli(zone.Contains(pts[i]) ? 0.75 : 0.5) ? 1 : 0;
  }
  auto result = core::AuditMulticlassGrid(pts, classes, 2, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->spatially_fair);
}

// ---------------- CountClassesBatch vs the legacy indicator interface -------

/// All five region family types over one point cloud, sized small enough for
/// tier-1 but covering every CountClassesBatch override (grid scatter,
/// per-partitioning scatter, prefix-sum fold, sparse annulus CSR, and the
/// dense SIMD bit-plane path).
std::vector<std::unique_ptr<core::RegionFamily>> MakeAllFamilies(
    const std::vector<geo::Point>& pts, Rng* rng) {
  std::vector<std::unique_ptr<core::RegionFamily>> families;
  auto grid = core::GridPartitionFamily::Create(pts, 6, 5);
  EXPECT_TRUE(grid.ok());
  families.push_back(std::move(*grid));

  auto partitionings = geo::MakeRandomPartitionings(
      geo::Rect::BoundingBox(pts).Expanded(1e-6), 6, 3, 7, rng);
  EXPECT_TRUE(partitionings.ok());
  auto collection =
      core::PartitioningCollectionFamily::Create(pts, std::move(*partitionings));
  EXPECT_TRUE(collection.ok());
  families.push_back(std::move(*collection));

  auto sweep = core::RectangleSweepFamily::Create(pts, 5, 4);
  EXPECT_TRUE(sweep.ok());
  families.push_back(std::move(*sweep));

  std::vector<geo::Point> centers(8);
  for (auto& c : centers) c = {rng->Uniform(0, 10), rng->Uniform(0, 10)};
  core::SquareScanOptions sq;
  sq.centers = centers;
  sq.side_lengths = core::SquareScanOptions::DefaultSideLengths(0.5, 3.0, 5);
  for (core::CountingBackend backend :
       {core::CountingBackend::kSparseAnnulus, core::CountingBackend::kDenseBits}) {
    sq.backend = backend;
    auto square = core::SquareScanFamily::Create(pts, sq);
    EXPECT_TRUE(square.ok());
    families.push_back(std::move(*square));
  }

  core::KnnCircleOptions knn;
  knn.centers = centers;
  knn.population_fractions = {0.01, 0.04, 0.10};
  for (core::CountingBackend backend :
       {core::CountingBackend::kSparseAnnulus, core::CountingBackend::kDenseBits}) {
    knn.backend = backend;
    auto circles = core::KnnCircleFamily::Create(pts, knn);
    EXPECT_TRUE(circles.ok());
    families.push_back(std::move(*circles));
  }
  return families;
}

// Satellite 4 of ISSUE 9: for every family, CountClassesBatch must equal the
// legacy construction — K-1 per-class indicator label worlds counted through
// CountPositivesBatch. The indicator planes are laid out as "virtual worlds"
// (plane w*(K-1)+c), which is exactly the ClassCountRowOffset layout, so the
// two buffers must match element-for-element. Both null-model draw styles
// (iid categorical and shuffled fixed multiset) are exercised.
TEST(CountClassesBatch, MatchesIndicatorPathForAllFamilies) {
  Rng rng(4242);
  std::vector<geo::Point> pts(700);
  for (auto& p : pts) p = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
  const auto families = MakeAllFamilies(pts, &rng);

  const std::vector<double> mix = {0.45, 0.3, 0.15, 0.1};
  const auto num_classes = static_cast<uint32_t>(mix.size());
  const uint32_t counted = num_classes - 1;
  const size_t worlds = 4;

  for (const bool permute : {false, true}) {
    // Packed class worlds.
    std::vector<std::vector<uint8_t>> class_worlds(worlds);
    std::vector<const uint8_t*> class_ptrs;
    std::vector<uint8_t> base(pts.size());
    for (auto& c : base) c = static_cast<uint8_t>(rng.Categorical(mix));
    for (auto& world : class_worlds) {
      if (permute) {
        world = base;
        rng.Shuffle(world.begin(), world.end());
      } else {
        world.resize(pts.size());
        for (auto& c : world) c = static_cast<uint8_t>(rng.Categorical(mix));
      }
    }
    for (const auto& world : class_worlds) class_ptrs.push_back(world.data());

    // Legacy view of the same worlds: one indicator Labels per (world, class)
    // plane, in ClassCountRowOffset order.
    std::vector<core::Labels> planes;
    std::vector<const core::Labels*> plane_ptrs;
    std::vector<uint8_t> indicator(pts.size());
    for (size_t w = 0; w < worlds; ++w) {
      for (uint32_t c = 0; c < counted; ++c) {
        for (size_t i = 0; i < pts.size(); ++i) {
          indicator[i] = class_worlds[w][i] == c ? 1 : 0;
        }
        planes.push_back(core::Labels::FromBytes(indicator));
      }
    }
    for (const core::Labels& plane : planes) plane_ptrs.push_back(&plane);

    for (const auto& family : families) {
      const size_t stride = family->num_regions();
      std::vector<uint64_t> got(
          core::ClassCountBufferSize(worlds, counted, stride), ~0ULL);
      std::vector<uint64_t> expected(got.size(), 0);
      family->CountClassesBatch(class_ptrs.data(), worlds, num_classes,
                                got.data());
      family->CountPositivesBatch(plane_ptrs.data(), plane_ptrs.size(),
                                  expected.data());
      ASSERT_EQ(got, expected) << family->Name() << " permute=" << permute;
    }
  }
}

// Satellite 3: counting-buffer offsets must widen to size_t BEFORE the
// multiplications. These operand combinations overflow 32-bit arithmetic by
// ~56x; evaluating at compile time pins the constexpr path too.
TEST(CountClassesBatch, OffsetHelpersWidenBeforeMultiplying) {
  constexpr size_t kOffset = core::ClassCountRowOffset(123456, 6, 7, 280000);
  static_assert(kOffset == (123456ULL * 7 + 6) * 280000ULL);
  EXPECT_EQ(kOffset, 241975440000ULL);
  constexpr size_t kSize = core::ClassCountBufferSize(70000, 9, 70000);
  static_assert(kSize == 70000ULL * 9 * 70000);
  EXPECT_EQ(kSize, 44100000000ULL);
  // The truncated products a narrow intermediate would have produced.
  EXPECT_NE(kOffset, static_cast<uint32_t>(kOffset));
  EXPECT_NE(kSize, static_cast<uint32_t>(kSize));
}

TEST(MulticlassAudit, DeterministicForSeed) {
  Rng rng(74);
  std::vector<geo::Point> pts(1000);
  std::vector<uint8_t> classes(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
    classes[i] = static_cast<uint8_t>(rng.NextUint64(4));
  }
  auto a = core::AuditMulticlassGrid(pts, classes, 4, FastOptions());
  auto b = core::AuditMulticlassGrid(pts, classes, 4, FastOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->p_value, b->p_value);
  EXPECT_EQ(a->tau, b->tau);
}

}  // namespace
}  // namespace sfa
