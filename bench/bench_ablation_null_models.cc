// Ablation — null model choice (§3 design choice).
//
// The paper calibrates with an UNCONDITIONAL Bernoulli null (labels redrawn
// i.i.d. at rate rho); Kulldorff's classical scan conditions on the total
// positive count (permutation null). This ablation compares the two on the
// same family: critical values, p-values for the same observed data, and
// agreement of verdicts. They should be close for large N (the binomial
// count concentrates), with the permutation null slightly tighter.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/grid_family.h"

namespace sfa {
namespace {

core::AuditResult RunWith(core::NullModel model, const data::OutcomeDataset& ds,
                          const core::RegionFamily& family) {
  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  opts.monte_carlo.null_model = model;
  auto result = core::Auditor(opts).Audit(ds, family);
  SFA_CHECK_OK(result.status());
  return std::move(result).value();
}

}  // namespace

int Main() {
  bench::PrintHeader("Ablation", "Bernoulli vs permutation null calibration");
  Stopwatch timer;

  // One unfair and one fair dataset at two scales.
  for (const bool unfair : {true, false}) {
    for (const size_t n : {2000u, 50000u}) {
      Rng rng(n + unfair);
      data::OutcomeDataset ds(unfair ? "unfair" : "fair");
      const geo::Rect zone(0.0, 0.0, 0.6, 1.0);
      for (size_t i = 0; i < n; ++i) {
        const geo::Point p(rng.Uniform(0, 2), rng.Uniform(0, 1));
        const double rate = unfair && zone.Contains(p) ? 0.56 : 0.5;
        ds.Add(p, rng.Bernoulli(rate) ? 1 : 0);
      }
      auto family = core::GridPartitionFamily::Create(ds.locations(), 10, 5);
      SFA_CHECK_OK(family.status());

      const core::AuditResult bern =
          RunWith(core::NullModel::kBernoulli, ds, **family);
      const core::AuditResult perm =
          RunWith(core::NullModel::kPermutation, ds, **family);

      std::printf("\n-- %s data, N = %zu --\n", ds.name().c_str(), n);
      bench::PaperVsMeasured("critical LLR (Bernoulli null)", "-",
                             StrFormat("%.3f", bern.critical_value));
      bench::PaperVsMeasured("critical LLR (permutation null)", "-",
                             StrFormat("%.3f", perm.critical_value));
      bench::PaperVsMeasured("p-value (Bernoulli / permutation)", "-",
                             StrFormat("%.4f / %.4f", bern.p_value, perm.p_value));
      bench::PaperVsMeasured(
          "verdicts agree", "expected",
          bern.spatially_fair == perm.spatially_fair ? "yes" : "NO");
    }
  }
  std::printf(
      "\n  Takeaway: for the dataset sizes the paper studies, the two nulls\n"
      "  give nearly identical critical values and the same verdicts; the\n"
      "  paper's unconditional choice is not load-bearing.\n");
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
