// Figure 4 — Crime, equal opportunity (TPR surface), 20x20 grid.
//
// A random forest is trained on non-spatial incident features; the audit
// asks whether its true-positive rate is independent of location. The paper
// finds 5 significant partitions, one in Hollywood with ~3,000 outcomes and
// a local TPR of 0.51 against the global 0.58; MeanVar's top-5 are sparse
// single-false-positive cells.
#include <cstdio>

#include "bench_util.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "core/meanvar.h"
#include "core/report.h"
#include "data/crime_sim.h"

namespace sfa {
namespace {
constexpr uint32_t kG = 20;
}

int Main() {
  bench::PrintHeader("Figure 4", "Crime, 20x20 grid, equal opportunity (TPR)");
  Stopwatch timer;

  data::CrimeAuditOptions crime_opts;
  if (bench::QuickMode()) crime_opts.sim.num_incidents = 80000;
  auto bundle = data::BuildCrimeAudit(crime_opts);
  SFA_CHECK_OK(bundle.status());
  std::printf("%s\n", bundle->equal_opportunity.Summary().c_str());

  std::printf("\n-- model --\n");
  bench::PaperVsMeasured("incidents", "711,852",
                         StrFormat("%s", WithThousands(static_cast<int64_t>(
                                             crime_opts.sim.num_incidents))
                                             .c_str()));
  bench::PaperVsMeasured("model accuracy", 0.78, bundle->model_accuracy, "%.2f");
  bench::PaperVsMeasured("test entries with Y=1 (audited)", "61,266",
                         WithThousands(static_cast<int64_t>(
                             bundle->equal_opportunity.size())));
  bench::PaperVsMeasured("global TPR", 0.58, bundle->global_tpr, "%.2f");

  const data::OutcomeDataset& view = bundle->equal_opportunity;
  const geo::Rect extent = view.BoundingBox().Expanded(1e-9);
  auto family =
      core::GridPartitionFamily::CreateWithExtent(view.locations(), extent, kG, kG);
  SFA_CHECK_OK(family.status());

  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.measure = core::FairnessMeasure::kEqualOpportunity;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto audit = core::Auditor(opts).Audit(view, **family);
  SFA_CHECK_OK(audit.status());

  std::printf("\n-- (a) spatial fairness audit of the TPR surface --\n");
  bench::PaperVsMeasured("verdict", "unfair",
                         audit->spatially_fair ? "fair" : "unfair");
  bench::PaperVsMeasured("significant partitions", "5",
                         StrFormat("%zu", audit->findings.size()));
  if (!audit->findings.empty()) {
    std::printf("  top finding: %s\n",
                core::FormatFinding(audit->findings[0]).c_str());
    // The paper highlights the under-detection exhibit: among the highest-SUL
    // partitions, the Hollywood one has a local TPR *below* the global rate.
    // Findings are ranked by SUL, so the first below-global entry is our
    // counterpart.
    const core::RegionFinding* hollywood = nullptr;
    for (const auto& f : audit->findings) {
      if (f.local_rate < audit->overall_rate) {
        hollywood = &f;
        break;
      }
    }
    if (hollywood != nullptr) {
      std::printf("  under-detection exhibit: %s\n",
                  core::FormatFinding(*hollywood).c_str());
      bench::PaperVsMeasured("under-detection region n (Hollywood)", "~3,000",
                             WithThousands(static_cast<int64_t>(hollywood->n)));
      bench::PaperVsMeasured("under-detection local TPR", 0.51,
                             hollywood->local_rate, "%.2f");
      const geo::Rect hollywood_box(-118.33 - 0.08, 34.10 - 0.08, -118.33 + 0.08,
                                    34.10 + 0.08);
      bench::PaperVsMeasured("exhibit is the Hollywood plant", "yes",
                             hollywood->rect.Intersects(hollywood_box) ? "yes"
                                                                       : "no");
    } else {
      bench::PaperVsMeasured("under-detection exhibit found", "yes", "no");
    }
  }
  std::printf("\n%s", core::FormatFindingsTable(audit->findings, 8).c_str());

  // MeanVar baseline on the same 20x20 partitioning.
  auto partitioning = geo::Partitioning::Regular(extent, kG, kG);
  SFA_CHECK_OK(partitioning.status());
  auto meanvar = core::ComputeMeanVar(view, {*partitioning});
  SFA_CHECK_OK(meanvar.status());
  std::printf("\n-- (b) top-5 MeanVar contributors --\n");
  size_t sparse = 0;
  const size_t top_k = std::min<size_t>(5, meanvar->ranked_partitions.size());
  for (size_t i = 0; i < top_k; ++i) {
    const auto& c = meanvar->ranked_partitions[i];
    std::printf("  #%zu: n=%llu, p=%llu, measure=%.2f\n", i + 1,
                static_cast<unsigned long long>(c.n),
                static_cast<unsigned long long>(c.p), c.measure);
    if (c.n <= 5) ++sparse;
  }
  bench::PaperVsMeasured("top-5 MeanVar are sparse (n<=5)", "all",
                         StrFormat("%zu of %zu", sparse, top_k));
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
