// Figure 3 — LAR at a high-resolution 100x50 partitioning.
//
// (a) our framework: the dataset is declared unfair and a few dozen
//     partitions are individually significant (paper: 59), mostly DENSE
//     regions with moderately deviating rates;
// (b) MeanVar: the top-50 contributors are all SPARSE partitions with
//     extreme (mostly all-negative) measures.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "core/meanvar.h"
#include "core/report.h"

namespace sfa {
namespace {
constexpr uint32_t kGx = 100;
constexpr uint32_t kGy = 50;

struct SizeProfile {
  uint64_t median_n = 0;
  double extreme_fraction = 0.0;  // share with local rate 0 or 1
};

template <typename Iterable, typename GetN, typename GetRate>
SizeProfile Profile(const Iterable& regions, GetN get_n, GetRate get_rate) {
  std::vector<uint64_t> sizes;
  size_t extreme = 0;
  for (const auto& r : regions) {
    sizes.push_back(get_n(r));
    const double rate = get_rate(r);
    if (rate == 0.0 || rate == 1.0) ++extreme;
  }
  SizeProfile profile;
  if (!sizes.empty()) {
    std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2, sizes.end());
    profile.median_n = sizes[sizes.size() / 2];
    profile.extreme_fraction = static_cast<double>(extreme) / sizes.size();
  }
  return profile;
}

}  // namespace

int Main() {
  bench::PrintHeader("Figure 3", "LAR, 100x50 grid: significant partitions vs top MeanVar");
  Stopwatch timer;

  const data::LarSimResult lar = bench::MakeLar();
  const data::OutcomeDataset& ds = lar.dataset;
  std::printf("%s\n", ds.Summary().c_str());

  const geo::Rect extent = ds.BoundingBox().Expanded(1e-9);
  auto family = core::GridPartitionFamily::CreateWithExtent(ds.locations(), extent,
                                                            kGx, kGy);
  SFA_CHECK_OK(family.status());

  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto audit = core::Auditor(opts).Audit(ds, **family);
  SFA_CHECK_OK(audit.status());

  auto partitioning = geo::Partitioning::Regular(extent, kGx, kGy);
  SFA_CHECK_OK(partitioning.status());
  auto meanvar = core::ComputeMeanVar(ds, {*partitioning});
  SFA_CHECK_OK(meanvar.status());

  std::printf("\n-- (a) spatial fairness audit --\n");
  bench::PaperVsMeasured("verdict", "unfair",
                         audit->spatially_fair ? "fair" : "unfair");
  bench::PaperVsMeasured("significant partitions", "59",
                         StrFormat("%zu", audit->findings.size()));
  bench::PaperVsMeasured("critical LLR at 0.005", "9.6",
                         StrFormat("%.1f", audit->critical_value));
  const SizeProfile ours = Profile(
      audit->findings, [](const auto& f) { return f.n; },
      [](const auto& f) { return f.local_rate; });
  bench::PaperVsMeasured("median n of flagged partitions", "dense (100s-1000s)",
                         StrFormat("%llu",
                                   static_cast<unsigned long long>(ours.median_n)));
  bench::PaperVsMeasured("flagged with extreme rate (0 or 1)", "rare",
                         StrFormat("%.0f%%", 100 * ours.extreme_fraction));
  std::printf("\n%s", core::FormatFindingsTable(audit->findings, 10).c_str());

  std::printf("\n-- (b) top-50 MeanVar contributors --\n");
  const size_t top_k = std::min<size_t>(50, meanvar->ranked_partitions.size());
  const std::vector<core::PartitionContribution> top(
      meanvar->ranked_partitions.begin(),
      meanvar->ranked_partitions.begin() + static_cast<ptrdiff_t>(top_k));
  const SizeProfile theirs = Profile(
      top, [](const auto& c) { return c.n; },
      [](const auto& c) { return c.measure; });
  bench::PaperVsMeasured("median n of top-50 MeanVar partitions", "~1-5 (sparse)",
                         StrFormat("%llu",
                                   static_cast<unsigned long long>(theirs.median_n)));
  bench::PaperVsMeasured("top-50 with extreme rate (0 or 1)", "all",
                         StrFormat("%.0f%%", 100 * theirs.extreme_fraction));
  std::printf("\n%s", core::FormatMeanVarTable(*meanvar, 10).c_str());
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
