// Ablation — Monte Carlo budget (§3: W-1 simulated worlds).
//
// How many worlds are enough? This ablation tracks the critical value and
// the p-value of a fixed observed statistic as the world budget grows, and
// compares the empirical far tail against the Gumbel approximation
// (stats/gumbel.h) fitted to the same worlds.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/grid_family.h"
#include "core/scan.h"
#include "core/significance.h"

namespace sfa {

int Main() {
  bench::PrintHeader("Ablation", "Monte Carlo world budget & Gumbel tail");
  Stopwatch timer;

  // Fixed fair location cloud + one observed (slightly unfair) world.
  Rng rng(515);
  std::vector<geo::Point> pts(20000);
  for (auto& p : pts) p = {rng.Uniform(0, 2), rng.Uniform(0, 1)};
  auto family = core::GridPartitionFamily::Create(pts, 10, 5);
  SFA_CHECK_OK(family.status());

  std::vector<uint8_t> bytes(pts.size());
  const geo::Rect zone(0.0, 0.0, 0.5, 1.0);
  for (size_t i = 0; i < pts.size(); ++i) {
    bytes[i] = rng.Bernoulli(zone.Contains(pts[i]) ? 0.56 : 0.5) ? 1 : 0;
  }
  const core::Labels observed = core::Labels::FromBytes(bytes);
  std::vector<uint64_t> scratch;
  const double tau = core::ScanMaxStatistic(
      **family, observed, stats::ScanDirection::kTwoSided, &scratch);
  std::printf("observed tau = %.3f\n\n", tau);
  std::printf("  %8s | %12s | %12s | %12s\n", "worlds", "critical", "MC p-value",
              "Gumbel p");
  for (uint32_t worlds : {99u, 199u, 499u, 999u, 1999u}) {
    core::MonteCarloOptions mc;
    mc.num_worlds = worlds;
    mc.seed = 2024;
    auto dist = core::SimulateNull(**family, observed.positive_rate(),
                                   observed.positive_count(),
                                   stats::ScanDirection::kTwoSided, mc);
    SFA_CHECK_OK(dist.status());
    auto gumbel_p = dist->GumbelPValue(tau);
    std::printf("  %8u | %12.3f | %12.4f | %12.4f\n", worlds,
                dist->CriticalValue(bench::kAlpha), dist->PValue(tau),
                gumbel_p.ok() ? *gumbel_p : -1.0);
  }
  std::printf(
      "\n  Takeaway: the critical value stabilizes by ~500 worlds; the Gumbel\n"
      "  fit tracks the Monte Carlo p-value in-range and extends it smoothly\n"
      "  below the 1/W resolution floor.\n");
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
