// Performance microbenchmarks for the audit substrate (google-benchmark).
// Backs the paper's O(M * N_R * Q) complexity discussion (§3): measures the
// per-world cost Q of each counting backend and the end-to-end Monte Carlo
// throughput.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/random.h"
#include "core/grid_family.h"
#include "core/knn_circle_family.h"
#include "core/labels.h"
#include "core/scan.h"
#include "core/significance.h"
#include "core/square_family.h"
#include "spatial/bitvector.h"
#include "spatial/kdtree.h"
#include "stats/bernoulli_scan.h"
#include "stats/distributions.h"

namespace sfa {
namespace {

std::vector<geo::Point> Cloud(size_t n, uint64_t seed = 11) {
  Rng rng(seed);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) {
    if (rng.Bernoulli(0.7)) {
      p = {rng.Normal(3, 0.4), rng.Normal(7, 0.4)};
    } else {
      p = {rng.Uniform(0, 10), rng.Uniform(0, 10)};
    }
  }
  return pts;
}

void BM_LlrEvaluation(benchmark::State& state) {
  stats::ScanCounts counts{.n = 5000, .p = 3500, .total_n = 200000,
                           .total_p = 124000};
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::BernoulliLogLikelihoodRatio(counts));
    counts.p = (counts.p + 1) % counts.n;
  }
}
BENCHMARK(BM_LlrEvaluation);

void BM_KdTreeRangeCount(benchmark::State& state) {
  const auto pts = Cloud(static_cast<size_t>(state.range(0)));
  const spatial::KdTree tree(pts);
  Rng rng(5);
  for (auto _ : state) {
    const double x = rng.Uniform(0, 9);
    const double y = rng.Uniform(0, 9);
    benchmark::DoNotOptimize(tree.CountInRect(geo::Rect(x, y, x + 1, y + 1)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KdTreeRangeCount)->Range(1000, 1 << 18);

void BM_NaiveRangeCount(benchmark::State& state) {
  const auto pts = Cloud(static_cast<size_t>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    const double x = rng.Uniform(0, 9);
    const double y = rng.Uniform(0, 9);
    const geo::Rect query(x, y, x + 1, y + 1);
    size_t count = 0;
    for (const auto& p : pts) count += query.Contains(p);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NaiveRangeCount)->Range(1000, 1 << 18);

void BM_BitVectorAndPopcount(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  spatial::BitVector a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) a.Set(i);
    if (rng.Bernoulli(0.6)) b.Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(spatial::BitVector::AndPopcount(a, b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n / 8));
}
BENCHMARK(BM_BitVectorAndPopcount)->Range(1 << 10, 1 << 20);

void BM_GridFamilyWorld(benchmark::State& state) {
  // One Monte Carlo world against a 100x50 grid family: label generation +
  // counting + max-LLR.
  const auto n = static_cast<size_t>(state.range(0));
  const auto pts = Cloud(n);
  auto family = core::GridPartitionFamily::Create(pts, 100, 50);
  if (!family.ok()) {
    state.SkipWithError("family creation failed");
    return;
  }
  Rng rng(9);
  std::vector<uint64_t> scratch;
  for (auto _ : state) {
    const core::Labels labels = core::Labels::SampleBernoulli(n, 0.62, &rng);
    benchmark::DoNotOptimize(core::ScanMaxStatistic(
        **family, labels, stats::ScanDirection::kTwoSided, &scratch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_GridFamilyWorld)->Range(1 << 12, 1 << 18);

void BM_SquareFamilyWorld(benchmark::State& state) {
  // One Monte Carlo world against 2,000 memoized square regions (popcount
  // path), as in the paper's Fig. 5 setting.
  const auto n = static_cast<size_t>(state.range(0));
  const auto pts = Cloud(n);
  core::SquareScanOptions opts;
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    opts.centers.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  opts.side_lengths = core::SquareScanOptions::DefaultSideLengths(0.2, 4.0, 20);
  auto family = core::SquareScanFamily::Create(pts, opts);
  if (!family.ok()) {
    state.SkipWithError("family creation failed");
    return;
  }
  std::vector<uint64_t> scratch;
  for (auto _ : state) {
    const core::Labels labels = core::Labels::SampleBernoulli(n, 0.62, &rng);
    benchmark::DoNotOptimize(core::ScanMaxStatistic(
        **family, labels, stats::ScanDirection::kTwoSided, &scratch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SquareFamilyWorld)->Range(1 << 12, 1 << 17);

void RunMonteCarloBench(benchmark::State& state, const core::MonteCarloOptions& base) {
  // Full null calibration at the given world count against a 50x25 grid
  // family at N=20k — the ISSUE 1 headline configuration.
  const size_t n = 20000;
  const auto pts = Cloud(n);
  auto family = core::GridPartitionFamily::Create(pts, 50, 25);
  if (!family.ok()) {
    state.SkipWithError("family creation failed");
    return;
  }
  core::MonteCarloOptions mc = base;
  mc.num_worlds = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto dist = core::SimulateNull(**family, 0.62, n * 62 / 100,
                                   stats::ScanDirection::kTwoSided, mc);
    if (!dist.ok()) {
      state.SkipWithError("simulation failed");
      return;
    }
    benchmark::DoNotOptimize(dist->sorted_max());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_MonteCarloEndToEnd(benchmark::State& state) {
  // Production defaults: batched engine, closed-form cell sampling.
  RunMonteCarloBench(state, core::MonteCarloOptions{});
}
BENCHMARK(BM_MonteCarloEndToEnd)->Arg(99)->Arg(199)->Unit(benchmark::kMillisecond);

void BM_MonteCarloEndToEndPointLevel(benchmark::State& state) {
  // Batched engine without the closed-form sampler: isolates what batching,
  // pooled arenas, and the log-table LLR buy on their own.
  core::MonteCarloOptions mc;
  mc.closed_form_cells = false;
  RunMonteCarloBench(state, mc);
}
BENCHMARK(BM_MonteCarloEndToEndPointLevel)
    ->Arg(99)
    ->Arg(199)
    ->Unit(benchmark::kMillisecond);

void BM_MonteCarloEndToEndReference(benchmark::State& state) {
  // Per-world reference strategy with point-level sampling: the pre-engine
  // baseline (fresh buffers every world, scalar counting).
  core::MonteCarloOptions mc;
  mc.engine = core::McEngine::kReference;
  mc.closed_form_cells = false;
  RunMonteCarloBench(state, mc);
}
BENCHMARK(BM_MonteCarloEndToEndReference)
    ->Arg(99)
    ->Arg(199)
    ->Unit(benchmark::kMillisecond);

void RunOverlappingFamilyBench(benchmark::State& state,
                               const core::RegionFamily& family, size_t n) {
  // Overlapping-family calibration: batched (range 1) vs reference (range 0)
  // engines; the counting backend is fixed by the family instance.
  core::MonteCarloOptions mc;
  mc.num_worlds = 49;
  mc.engine = state.range(0) == 0 ? core::McEngine::kReference
                                  : core::McEngine::kBatched;
  for (auto _ : state) {
    auto dist = core::SimulateNull(family, 0.62, n * 62 / 100,
                                   stats::ScanDirection::kTwoSided, mc);
    if (!dist.ok()) {
      state.SkipWithError("simulation failed");
      return;
    }
    benchmark::DoNotOptimize(dist->sorted_max());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          mc.num_worlds);
}

std::unique_ptr<core::SquareScanFamily> BenchSquareFamily(
    size_t n, core::CountingBackend backend) {
  const auto pts = Cloud(n);
  core::SquareScanOptions opts;
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    opts.centers.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  opts.side_lengths = core::SquareScanOptions::DefaultSideLengths(0.2, 4.0, 20);
  opts.backend = backend;
  auto family = core::SquareScanFamily::Create(pts, opts);
  return family.ok() ? std::move(*family) : nullptr;
}

std::unique_ptr<core::KnnCircleFamily> BenchKnnFamily(
    size_t n, core::CountingBackend backend) {
  const auto pts = Cloud(n);
  core::KnnCircleOptions opts;
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    opts.centers.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  opts.backend = backend;
  auto family = core::KnnCircleFamily::Create(pts, opts);
  return family.ok() ? std::move(*family) : nullptr;
}

void BM_MonteCarloSquareFamily(benchmark::State& state) {
  // 2,000 square regions at N = 2^15 through the default sparse-annulus
  // scatter backend.
  const size_t n = 1 << 15;
  const auto family = BenchSquareFamily(n, core::CountingBackend::kSparseAnnulus);
  if (!family) {
    state.SkipWithError("family creation failed");
    return;
  }
  RunOverlappingFamilyBench(state, *family, n);
}
BENCHMARK(BM_MonteCarloSquareFamily)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MonteCarloSquareFamilyDense(benchmark::State& state) {
  // Same configuration through the dense AND+popcount reference backend.
  const size_t n = 1 << 15;
  const auto family = BenchSquareFamily(n, core::CountingBackend::kDenseBits);
  if (!family) {
    state.SkipWithError("family creation failed");
    return;
  }
  RunOverlappingFamilyBench(state, *family, n);
}
BENCHMARK(BM_MonteCarloSquareFamilyDense)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_MonteCarloKnnFamily(benchmark::State& state) {
  // 700 kNN circles (100 centers x 7-rung SaTScan ladder) at N = 2^15,
  // sparse-annulus scatter backend.
  const size_t n = 1 << 15;
  const auto family = BenchKnnFamily(n, core::CountingBackend::kSparseAnnulus);
  if (!family) {
    state.SkipWithError("family creation failed");
    return;
  }
  RunOverlappingFamilyBench(state, *family, n);
}
BENCHMARK(BM_MonteCarloKnnFamily)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MonteCarloKnnFamilyDense(benchmark::State& state) {
  const size_t n = 1 << 15;
  const auto family = BenchKnnFamily(n, core::CountingBackend::kDenseBits);
  if (!family) {
    state.SkipWithError("family creation failed");
    return;
  }
  RunOverlappingFamilyBench(state, *family, n);
}
BENCHMARK(BM_MonteCarloKnnFamilyDense)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_RngBinomial(benchmark::State& state) {
  // One-off Binomial draws across regimes: small n·p (CDF inversion) and
  // large n·p (BTRS rejection).
  const auto n = static_cast<uint64_t>(state.range(0));
  Rng rng(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Binomial(n, 0.62));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RngBinomial)->Arg(8)->Arg(64)->Arg(1024)->Arg(20000);

void BM_FixedBinomialSampler(benchmark::State& state) {
  // The engine's per-cell alias sampler: O(1) per draw for fixed (n, p).
  const auto n = static_cast<uint64_t>(state.range(0));
  const stats::FixedBinomialSampler sampler(n, 0.62);
  Rng rng(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Draw(&rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FixedBinomialSampler)->Arg(8)->Arg(64)->Arg(1024)->Arg(20000);

void BM_LabelsSampling(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Labels::SampleBernoulli(n, 0.62, &rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_LabelsSampling)->Range(1 << 12, 1 << 18);

}  // namespace
}  // namespace sfa

BENCHMARK_MAIN();
