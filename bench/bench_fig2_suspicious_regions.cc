// Figure 2 — "Where is it unfair?" head-to-head on LAR.
//
// MeanVar's most suspicious partition is a sparse, all-negative sliver (the
// paper shows one in Iowa with n=5, rho=0): extreme measure, no statistical
// weight. Our framework's top-SUL region is dense (paper: northern
// California, n≈8000, rho≈0.84) with a log-likelihood difference around
// 1000 — a finding that survives significance testing at p < 0.005.
#include <cstdio>

#include "bench_util.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "core/meanvar.h"
#include "core/report.h"
#include "stats/distributions.h"

namespace sfa {
namespace {
constexpr uint32_t kGx = 100;
constexpr uint32_t kGy = 50;
}  // namespace

int Main() {
  bench::PrintHeader("Figure 2", "Most suspicious region: MeanVar vs SUL (LAR, 100x50)");
  Stopwatch timer;

  const data::LarSimResult lar = bench::MakeLar();
  const data::OutcomeDataset& ds = lar.dataset;
  std::printf("%s\n", ds.Summary().c_str());

  // The 100x50 regular partitioning doubles as the (single) partitioning for
  // MeanVar and as the region family for the audit.
  const geo::Rect extent = ds.BoundingBox().Expanded(1e-9);
  auto partitioning = geo::Partitioning::Regular(extent, kGx, kGy);
  SFA_CHECK_OK(partitioning.status());
  auto meanvar = core::ComputeMeanVar(ds, {*partitioning});
  SFA_CHECK_OK(meanvar.status());

  auto family = core::GridPartitionFamily::CreateWithExtent(ds.locations(), extent,
                                                            kGx, kGy);
  SFA_CHECK_OK(family.status());
  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto audit = core::Auditor(opts).Audit(ds, **family);
  SFA_CHECK_OK(audit.status());

  // MeanVar's champion.
  SFA_CHECK(!meanvar->ranked_partitions.empty());
  const core::PartitionContribution& mv_top = meanvar->ranked_partitions[0];
  std::printf("\n-- (a) MeanVar's most suspicious partition --\n");
  std::printf("  n=%llu, p=%llu, local rate=%.3f, rect=%s\n",
              static_cast<unsigned long long>(mv_top.n),
              static_cast<unsigned long long>(mv_top.p), mv_top.measure,
              mv_top.rect.ToString().c_str());
  bench::PaperVsMeasured("MeanVar top region size n", "5 (sparse)",
                         StrFormat("%llu", static_cast<unsigned long long>(mv_top.n)));
  bench::PaperVsMeasured("MeanVar top region rate", "0.00 (extreme)",
                         StrFormat("%.2f", mv_top.measure));
  // Statistical insignificance of the sparse extreme (binomial tail).
  const double p_binom = stats::BinomialTestTwoSided(
      mv_top.p, mv_top.n, ds.PositiveRate());
  std::printf("  two-sided binomial p-value of that observation: %.3f%s\n", p_binom,
              p_binom > bench::kAlpha ? "  (NOT significant)" : "");

  // Our champion.
  std::printf("\n-- (b) highest-SUL significant region (our framework) --\n");
  if (audit->findings.empty()) {
    std::printf("  no significant regions found\n");
  } else {
    const core::RegionFinding& top = audit->findings[0];
    std::printf("  %s\n", core::FormatFinding(top).c_str());
    bench::PaperVsMeasured("top region size n", "~7,800 (dense)",
                           StrFormat("%llu", static_cast<unsigned long long>(top.n)));
    bench::PaperVsMeasured("top region local rate", 0.84, top.local_rate, "%.2f");
    bench::PaperVsMeasured("top region log-likelihood diff", "~1000",
                           StrFormat("%.1f", top.llr));
    bench::PaperVsMeasured("top region p-value", "< 0.005",
                           StrFormat("< %.4f (LLR > critical %.1f)",
                                     1.0 / (bench::NumWorlds() + 1),
                                     audit->critical_value));
  }
  bench::PaperVsMeasured("critical LLR at alpha=0.005", "9.6",
                         StrFormat("%.1f", audit->critical_value));
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
