// Figure 6 (Appendix A) — why raw extremes are not evidence.
//
// Worlds of 1,000 outcomes at rho = 0.5 over a fixed irregular location
// cloud: in virtually every such fair world one can find a small region with
// at least five negative and no positive outcomes. The harness measures that
// frequency empirically and contrasts it with the audit's false-alarm rate
// on the same worlds.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/scan.h"
#include "core/square_family.h"
#include "core/significance.h"

namespace sfa {
namespace {

constexpr size_t kOutcomes = 1000;
constexpr double kRho = 0.5;

std::vector<geo::Point> IrregularCloud(uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::Point> pts;
  pts.reserve(kOutcomes);
  // A few dense clusters plus scatter, like the paper's Figure 6 panels.
  for (int c = 0; c < 6; ++c) {
    const geo::Point center{rng.Uniform(1, 9), rng.Uniform(1, 9)};
    for (int i = 0; i < 130; ++i) {
      pts.push_back({rng.Normal(center.x, 0.35), rng.Normal(center.y, 0.35)});
    }
  }
  while (pts.size() < kOutcomes) {
    pts.push_back({rng.Uniform(0, 10), rng.Uniform(0, 10)});
  }
  return pts;
}

}  // namespace

int Main() {
  bench::PrintHeader("Figure 6", "Fair worlds almost always contain a >=5-negative cluster");
  Stopwatch timer;

  const std::vector<geo::Point> pts = IrregularCloud(606);
  // Candidate small regions: squares of sides 0.5/1.0/1.5 at every point of
  // a coarse lattice over the cloud (a generous stand-in for "a blue circle
  // someone could draw").
  core::SquareScanOptions scan;
  for (double x = 0.25; x < 10.0; x += 0.5) {
    for (double y = 0.25; y < 10.0; y += 0.5) {
      scan.centers.push_back({x, y});
    }
  }
  scan.side_lengths = {0.5, 1.0, 1.5};
  auto family = core::SquareScanFamily::Create(pts, scan);
  SFA_CHECK_OK(family.status());

  // Null calibration once (shared across the audit trials below).
  core::MonteCarloOptions mc;
  mc.num_worlds = bench::NumWorlds();
  auto null_dist = core::SimulateNull(**family, kRho, kOutcomes / 2,
                                      stats::ScanDirection::kTwoSided, mc);
  SFA_CHECK_OK(null_dist.status());
  const double critical = null_dist->CriticalValue(bench::kAlpha);

  Rng rng(707);
  const int worlds = bench::QuickMode() ? 100 : 400;
  int with_cluster = 0;
  int audit_rejections = 0;
  std::vector<uint64_t> scratch;
  for (int w = 0; w < worlds; ++w) {
    const core::Labels labels = core::Labels::SampleBernoulli(kOutcomes, kRho, &rng);
    // (1) Does a >=5-negative, 0-positive region exist?
    std::vector<uint64_t> positives;
    (*family)->CountPositives(labels, &positives);
    bool found = false;
    for (size_t r = 0; r < (*family)->num_regions() && !found; ++r) {
      const uint64_t n = (*family)->PointCount(r);
      found = n >= 5 && positives[r] == 0;
    }
    with_cluster += found;
    // (2) Does the audit (correctly) decline to call the world unfair?
    const double tau = core::ScanMaxStatistic(
        **family, labels, stats::ScanDirection::kTwoSided, &scratch);
    if (null_dist->PValue(tau) <= bench::kAlpha) ++audit_rejections;
  }

  std::printf("\n");
  bench::PaperVsMeasured(
      "fair worlds containing a >=5-negative cluster", "easy to find in all",
      StrFormat("%.1f%% of %d worlds", 100.0 * with_cluster / worlds, worlds));
  bench::PaperVsMeasured(
      "audit false-alarm rate at alpha=0.005", "~0.5%",
      StrFormat("%.2f%% of %d worlds", 100.0 * audit_rejections / worlds, worlds));
  bench::PaperVsMeasured("critical LLR used", "-",
                         StrFormat("%.2f", critical));
  std::printf(
      "\n  Takeaway: extreme-looking small clusters arise by chance in fair\n"
      "  data (left column), so flagging them is not evidence; the\n"
      "  likelihood-ratio audit ignores them (right column).\n");
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
