// Figure 1 + §4.2 "Is it fair?" — the headline result.
//
// Two controlled datasets: SemiSynth (fair by design, irregular Florida
// locations, Bernoulli(0.5) labels) and Synth (unfair by design, uniform
// locations, left half twice the positive rate of the right). Over 100
// random rectangular partitionings (10-40 splits per axis):
//
//   * MeanVar (Xie et al. 2022) INVERTS the ordering — the fair dataset
//     scores as less fair (paper: 0.0522 vs 0.0431);
//   * our likelihood-ratio audit gets both right: SemiSynth fair, Synth
//     unfair at the 0.005 level.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/meanvar.h"
#include "core/partitioning_family.h"
#include "core/report.h"
#include "viz/map_render.h"

namespace sfa {
namespace {

core::AuditResult RunAudit(const data::OutcomeDataset& ds,
                           const std::vector<geo::Partitioning>& partitionings) {
  auto family =
      core::PartitioningCollectionFamily::Create(ds.locations(), partitionings);
  SFA_CHECK_OK(family.status());
  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto result = core::Auditor(opts).Audit(ds, **family);
  SFA_CHECK_OK(result.status());
  return std::move(result).value();
}

}  // namespace

int Main() {
  bench::PrintHeader("Figure 1 / §4.2", "Is it fair? MeanVar vs spatial-fairness audit");
  Stopwatch timer;

  const data::OutcomeDataset semi = bench::MakeSemiSynthDataset();
  const data::OutcomeDataset synth = bench::MakeSynthDataset();
  std::printf("%s\n%s\n", semi.Summary().c_str(), synth.Summary().c_str());

  // 100 regular partitionings of random resolution per dataset extent
  // (splits U{10..40}, equally spaced — the grid-aligned construction of
  // Xie et al.'s MeanVar).
  Rng rng(2023);
  auto semi_parts = geo::MakeRandomResolutionPartitionings(
      semi.BoundingBox().Expanded(1e-6), 100, 10, 40, &rng);
  auto synth_parts = geo::MakeRandomResolutionPartitionings(
      synth.BoundingBox().Expanded(1e-6), 100, 10, 40, &rng);
  SFA_CHECK_OK(semi_parts.status());
  SFA_CHECK_OK(synth_parts.status());

  auto mv_semi = core::ComputeMeanVar(semi, *semi_parts);
  auto mv_synth = core::ComputeMeanVar(synth, *synth_parts);
  SFA_CHECK_OK(mv_semi.status());
  SFA_CHECK_OK(mv_synth.status());

  const core::AuditResult audit_semi = RunAudit(semi, *semi_parts);
  const core::AuditResult audit_synth = RunAudit(synth, *synth_parts);

  std::printf("\n-- MeanVar (lower = 'fairer' per the baseline) --\n");
  bench::PaperVsMeasured("MeanVar(SemiSynth, fair-by-design)", 0.0522,
                         mv_semi->mean_var);
  bench::PaperVsMeasured("MeanVar(Synth, unfair-by-design)", 0.0431,
                         mv_synth->mean_var);
  bench::PaperVsMeasured(
      "MeanVar inversion (fair scores WORSE)", "yes",
      mv_semi->mean_var > mv_synth->mean_var ? "yes" : "NO (!)");

  std::printf("\n-- Spatial fairness audit (alpha = 0.005) --\n");
  bench::PaperVsMeasured("SemiSynth verdict", "fair",
                         audit_semi.spatially_fair ? "fair" : "unfair");
  bench::PaperVsMeasured("Synth verdict", "unfair",
                         audit_synth.spatially_fair ? "fair" : "unfair");
  bench::PaperVsMeasured("SemiSynth p-value", "> 0.005",
                         StrFormat("%.4f", audit_semi.p_value));
  bench::PaperVsMeasured("Synth p-value", "<= 0.005",
                         StrFormat("%.4f", audit_synth.p_value));

  std::printf("\n%s",
              core::FormatAuditSummary(audit_semi, "SemiSynth").c_str());
  std::printf("%s", core::FormatAuditSummary(audit_synth, "Synth").c_str());

  // Regenerate the figure's two panels as SVG maps.
  viz::MapOptions map_opts;
  map_opts.title = StrFormat("Fig 1(a) SemiSynth (fair by design): MeanVar %.4f",
                             mv_semi->mean_var);
  SFA_CHECK_OK(
      viz::WriteOutcomeMap(semi, {}, "/tmp/sfa_fig1a_semisynth.svg", map_opts));
  map_opts.title = StrFormat("Fig 1(b) Synth (unfair by design): MeanVar %.4f",
                             mv_synth->mean_var);
  SFA_CHECK_OK(
      viz::WriteOutcomeMap(synth, {}, "/tmp/sfa_fig1b_synth.svg", map_opts));
  std::printf("\nfigure panels: /tmp/sfa_fig1a_semisynth.svg, /tmp/sfa_fig1b_synth.svg\n");
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
