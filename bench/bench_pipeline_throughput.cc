// Throughput of the concurrent AuditPipeline vs the naive request loop.
//
// The workload is the acceptance scenario of the pipeline PR: a mixed
// 32-request batch — two cities, three family types (partition grid,
// overlapping square scan, equal-opportunity slice), both null models, two
// scan directions — where every (family, totals, null, direction)
// combination is audited at eight α levels. That α-sweep is the production
// shape the calibration cache exists for: 32 requests collapse onto 4
// Monte Carlo calibrations (87.5% hit rate, ≥ the 50% the acceptance bar
// asks for).
//
//   BM_LoopAuditor             one Auditor::Audit per request, no sharing —
//                              the pre-pipeline baseline;
//   BM_PipelineColdCache       the same batch through AuditPipeline::Run
//                              with the cache cleared every iteration
//                              (intra-batch sharing only);
//   BM_PipelineWarmCache       steady-state replay: calibrations stay cached
//                              across iterations (assembly cost only);
//   BM_PipelinePersistedWarm   restart simulation: every iteration builds a
//                              FRESH pipeline (empty memory cache) that
//                              warm-starts from an on-disk CalibrationStore
//                              written once up front — the cold-start
//                              calibration cost across a process restart,
//                              reduced to disk loads.
//
// Counters report requests/s and the manifest's calibration hit rate (plus
// store loads for the persisted tier); the JSON artifact (bench_json target)
// tracks all four across PRs. The acceptance criterion — pipeline ≥ 3× loop
// on this batch — is the cold-cache ratio.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/audit_pipeline.h"
#include "core/calibration_store.h"
#include "core/grid_family.h"
#include "core/measure.h"
#include "core/square_family.h"
#include "data/dataset.h"
#include "stats/kmeans.h"

namespace {

using namespace sfa;
using namespace sfa::core;

constexpr uint32_t kNumWorlds = 199;
constexpr size_t kCityPoints = 8000;

struct Workload {
  data::OutcomeDataset city_a;
  data::OutcomeDataset city_b;
  data::OutcomeDataset city_a_eo;
  std::vector<std::unique_ptr<RegionFamily>> families;
  std::vector<AuditRequest> requests;
};

data::OutcomeDataset MakeCity(uint64_t seed, double planted_rate) {
  Rng rng(seed);
  data::OutcomeDataset ds("bench-city");
  const geo::Rect zone(6.0, 6.0, 9.0, 9.0);
  for (size_t i = 0; i < kCityPoints; ++i) {
    const geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
    const double rate = zone.Contains(loc) ? planted_rate : 0.55;
    ds.Add(loc, rng.Bernoulli(rate) ? 1 : 0, rng.Bernoulli(0.5) ? 1 : 0);
  }
  return ds;
}

std::unique_ptr<RegionFamily> MakeSquares(const std::vector<geo::Point>& pts,
                                          uint64_t seed) {
  stats::KMeansOptions kmeans;
  kmeans.k = 24;
  kmeans.seed = seed;
  auto centers = stats::KMeans(pts, kmeans);
  SFA_CHECK_OK(centers.status());
  SquareScanOptions opts;
  opts.centers = centers->centers;
  opts.side_lengths = {0.5, 1.0, 1.5, 2.0};
  auto family = SquareScanFamily::Create(pts, opts);
  SFA_CHECK_OK(family.status());
  return std::move(family).value();
}

/// The mixed batch: 4 unique calibrations × 8 α levels = 32 requests.
const Workload& SharedWorkload() {
  static Workload* w = [] {
    auto* wl = new Workload;
    wl->city_a = MakeCity(11, 0.40);
    wl->city_b = MakeCity(22, 0.55);
    auto eo = BuildMeasureView(wl->city_a, FairnessMeasure::kEqualOpportunity);
    SFA_CHECK_OK(eo.status());
    wl->city_a_eo = std::move(eo).value();

    auto grid_a = GridPartitionFamily::Create(wl->city_a.locations(), 12, 12);
    auto grid_b = GridPartitionFamily::Create(wl->city_b.locations(), 10, 10);
    auto grid_eo = GridPartitionFamily::Create(wl->city_a_eo.locations(), 8, 8);
    SFA_CHECK_OK(grid_a.status());
    SFA_CHECK_OK(grid_b.status());
    SFA_CHECK_OK(grid_eo.status());
    wl->families.push_back(std::move(grid_a).value());   // [0]
    wl->families.push_back(std::move(grid_b).value());   // [1]
    wl->families.push_back(std::move(grid_eo).value());  // [2]
    wl->families.push_back(MakeSquares(wl->city_a.locations(), 31));  // [3]
    wl->families.push_back(MakeSquares(wl->city_b.locations(), 32));  // [4]

    struct Combo {
      const data::OutcomeDataset* ds;
      size_t family;
      NullModel null_model;
      stats::ScanDirection direction;
      const char* tag;
    };
    const Combo combos[4] = {
        {&wl->city_a, 0, NullModel::kBernoulli, stats::ScanDirection::kTwoSided,
         "a-grid"},
        {&wl->city_a, 3, NullModel::kBernoulli, stats::ScanDirection::kTwoSided,
         "a-squares"},
        {&wl->city_a_eo, 2, NullModel::kBernoulli, stats::ScanDirection::kLow,
         "a-eo-low"},
        {&wl->city_b, 1, NullModel::kPermutation,
         stats::ScanDirection::kTwoSided, "b-grid-perm"},
    };
    const double alphas[8] = {0.1, 0.05, 0.02, 0.01,
                              0.005, 0.002, 0.001, 0.0005};
    for (const Combo& combo : combos) {
      for (double alpha : alphas) {
        AuditRequest req;
        req.id = std::string(combo.tag) + "@" + std::to_string(alpha);
        req.dataset = combo.ds;
        req.dataset_is_view = true;  // city_a_eo is already a view
        req.family = wl->families[combo.family].get();
        req.options.alpha = alpha;
        req.options.direction = combo.direction;
        req.options.monte_carlo.num_worlds = kNumWorlds;
        req.options.monte_carlo.null_model = combo.null_model;
        wl->requests.push_back(std::move(req));
      }
    }
    return wl;
  }();
  return *w;
}

void BM_LoopAuditor(benchmark::State& state) {
  const Workload& wl = SharedWorkload();
  size_t served = 0;
  for (auto _ : state) {
    for (const AuditRequest& req : wl.requests) {
      auto result = Auditor(req.options).AuditView(*req.dataset, *req.family);
      SFA_CHECK_OK(result.status());
      benchmark::DoNotOptimize(result->p_value);
      ++served;
    }
  }
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LoopAuditor)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PipelineColdCache(benchmark::State& state) {
  const Workload& wl = SharedWorkload();
  AuditPipeline pipeline;
  PipelineManifest manifest;
  size_t served = 0;
  for (auto _ : state) {
    pipeline.cache().Clear();
    auto responses = pipeline.Run(wl.requests, &manifest);
    SFA_CHECK_OK(responses.status());
    SFA_CHECK(manifest.num_failed == 0);
    served += responses->size();
  }
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  state.counters["hit_rate"] = manifest.HitRate();
}
BENCHMARK(BM_PipelineColdCache)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PipelineWarmCache(benchmark::State& state) {
  const Workload& wl = SharedWorkload();
  AuditPipeline pipeline;
  // Prime the cache once outside timing.
  SFA_CHECK_OK(pipeline.Run(wl.requests).status());
  PipelineManifest manifest;
  size_t served = 0;
  for (auto _ : state) {
    auto responses = pipeline.Run(wl.requests, &manifest);
    SFA_CHECK_OK(responses.status());
    served += responses->size();
  }
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  state.counters["hit_rate"] = manifest.HitRate();
}
BENCHMARK(BM_PipelineWarmCache)->Unit(benchmark::kMillisecond)->UseRealTime();

// Multinomial audits through the same pipeline (the statistic layer): a
// 3-class city audited over a grid at the full α sweep — one multinomial
// calibration shared by 8 requests, closed-form per-cell Multinomial(n_c, q)
// null worlds. Tracks what the statistic abstraction costs relative to the
// binary path (same serving stack, K−1 counting passes per labeled world).
void BM_PipelineMultinomial(benchmark::State& state) {
  static const auto* mc_workload = [] {
    struct MulticlassWorkload {
      data::OutcomeDataset view{"bench-multiclass"};
      std::unique_ptr<RegionFamily> family;
      std::vector<AuditRequest> requests;
    };
    auto* wl = new MulticlassWorkload;
    Rng rng(77);
    const geo::Rect zone(6.0, 6.0, 9.0, 9.0);
    const std::vector<double> base = {0.5, 0.3, 0.2};
    const std::vector<double> shifted = {0.25, 0.3, 0.45};
    std::vector<geo::Point> pts;
    for (size_t i = 0; i < kCityPoints; ++i) {
      const geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
      const auto& mix = zone.Contains(loc) ? shifted : base;
      pts.push_back(loc);
      wl->view.Add(loc, static_cast<uint8_t>(rng.Categorical(mix)));
    }
    auto family = GridPartitionFamily::Create(pts, 12, 12);
    SFA_CHECK_OK(family.status());
    wl->family = std::move(family).value();
    const double alphas[8] = {0.1, 0.05, 0.02, 0.01,
                              0.005, 0.002, 0.001, 0.0005};
    for (double alpha : alphas) {
      AuditRequest req;
      req.id = "multinomial@" + std::to_string(alpha);
      req.dataset = &wl->view;
      req.dataset_is_view = true;
      req.family = wl->family.get();
      req.options.alpha = alpha;
      req.options.statistic = StatisticKind::kMultinomial;
      req.options.num_classes = 3;
      req.options.monte_carlo.num_worlds = kNumWorlds;
      wl->requests.push_back(std::move(req));
    }
    return wl;
  }();

  AuditPipeline pipeline;
  PipelineManifest manifest;
  size_t served = 0;
  for (auto _ : state) {
    pipeline.cache().Clear();
    auto responses = pipeline.Run(mc_workload->requests, &manifest);
    SFA_CHECK_OK(responses.status());
    SFA_CHECK(manifest.num_failed == 0);
    served += responses->size();
  }
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  state.counters["hit_rate"] = manifest.HitRate();
}
BENCHMARK(BM_PipelineMultinomial)->Unit(benchmark::kMillisecond)->UseRealTime();

// Binary-vs-multinomial over the SAME overlapping square family: unlike the
// grid bench above there is no closed-form cell shortcut here, so every
// multinomial null world is a full vector of packed class codes counted
// through RegionFamily::CountClassesBatch (sparse annulus class scatter /
// SIMD bit planes). The tracked ratio BM_PipelineMultinomialSquares /
// BM_PipelineBinarySquares is the ISSUE 9 acceptance metric: the native
// K-class kernel must keep K=3 calibration within ~1.5x of the binary path
// instead of the ~(K-1)x the per-class indicator re-labeling used to cost.
struct SquaresAbWorkload {
  data::OutcomeDataset binary_view{"bench-squares-binary"};
  data::OutcomeDataset multiclass_view{"bench-squares-multiclass"};
  std::unique_ptr<RegionFamily> family;
  std::vector<AuditRequest> binary_requests;
  std::vector<AuditRequest> multiclass_requests;
};

const SquaresAbWorkload& SharedSquaresAb() {
  static SquaresAbWorkload* w = [] {
    auto* wl = new SquaresAbWorkload;
    Rng rng(88);
    const geo::Rect zone(6.0, 6.0, 9.0, 9.0);
    const std::vector<double> base = {0.5, 0.3, 0.2};
    const std::vector<double> shifted = {0.25, 0.3, 0.45};
    std::vector<geo::Point> pts;
    for (size_t i = 0; i < kCityPoints; ++i) {
      const geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
      pts.push_back(loc);
      const bool in_zone = zone.Contains(loc);
      wl->binary_view.Add(loc, rng.Bernoulli(in_zone ? 0.40 : 0.55) ? 1 : 0);
      wl->multiclass_view.Add(
          loc, static_cast<uint8_t>(rng.Categorical(in_zone ? shifted : base)));
    }
    wl->family = MakeSquares(pts, 33);
    const double alphas[8] = {0.1, 0.05, 0.02, 0.01,
                              0.005, 0.002, 0.001, 0.0005};
    for (double alpha : alphas) {
      AuditRequest req;
      req.dataset_is_view = true;
      req.family = wl->family.get();
      req.options.alpha = alpha;
      req.options.monte_carlo.num_worlds = kNumWorlds;

      req.id = "squares-binary@" + std::to_string(alpha);
      req.dataset = &wl->binary_view;
      wl->binary_requests.push_back(req);

      req.id = "squares-multinomial@" + std::to_string(alpha);
      req.dataset = &wl->multiclass_view;
      req.options.statistic = StatisticKind::kMultinomial;
      req.options.num_classes = 3;
      wl->multiclass_requests.push_back(std::move(req));
    }
    return wl;
  }();
  return *w;
}

void RunSquaresAbBatch(benchmark::State& state,
                       const std::vector<AuditRequest>& requests) {
  AuditPipeline pipeline;
  PipelineManifest manifest;
  size_t served = 0;
  for (auto _ : state) {
    pipeline.cache().Clear();
    auto responses = pipeline.Run(requests, &manifest);
    SFA_CHECK_OK(responses.status());
    SFA_CHECK(manifest.num_failed == 0);
    served += responses->size();
  }
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  state.counters["hit_rate"] = manifest.HitRate();
}

void BM_PipelineBinarySquares(benchmark::State& state) {
  RunSquaresAbBatch(state, SharedSquaresAb().binary_requests);
}
BENCHMARK(BM_PipelineBinarySquares)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PipelineMultinomialSquares(benchmark::State& state) {
  RunSquaresAbBatch(state, SharedSquaresAb().multiclass_requests);
}
BENCHMARK(BM_PipelineMultinomialSquares)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PipelinePersistedWarm(benchmark::State& state) {
  const Workload& wl = SharedWorkload();
  // One-time persist outside timing: a "previous process" computes all four
  // calibrations and write-behinds them into the store directory.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("sfa_bench_pipeline_store_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    auto store = CalibrationStore::Open({.directory = dir.string()});
    SFA_CHECK_OK(store.status());
    AuditPipeline seeder;
    seeder.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*store)));
    SFA_CHECK_OK(seeder.Run(wl.requests).status());
    seeder.cache().FlushStore();
  }

  PipelineManifest manifest;
  size_t served = 0;
  uint64_t loaded = 0;
  for (auto _ : state) {
    // A fresh pipeline and store handle per iteration: nothing survives in
    // memory, only the directory — the restart scenario.
    auto store = CalibrationStore::Open({.directory = dir.string()});
    SFA_CHECK_OK(store.status());
    AuditPipeline restarted;
    restarted.cache().AttachStore(
        std::shared_ptr<CalibrationStore>(std::move(*store)));
    auto responses = restarted.Run(wl.requests, &manifest);
    SFA_CHECK_OK(responses.status());
    SFA_CHECK(manifest.num_failed == 0);
    SFA_CHECK(manifest.calibrations_computed == 0);  // the persisted contract
    served += responses->size();
    loaded += manifest.calibrations_loaded;
  }
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  state.counters["hit_rate"] = manifest.HitRate();
  state.counters["store_loads"] = static_cast<double>(loaded);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PipelinePersistedWarm)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Adaptive sequential MC on a cold-cache mixed batch: 32 DISTINCT cities
// (half fair, half planted) each needing its own calibration at W = 999.
// Distinct datasets are the honest workload here: the adaptive stopping rule
// is keyed on (observed Λ, α), so unlike the α-sweep batches above these
// calibrations cannot be shared — the win must come from simulating fewer
// worlds, not from cache hits. A full-precision reference run outside timing
// pins the expected verdicts; every timed iteration re-checks that adaptive
// decisions match it exactly (the acceptance bar: ≥ 3× fewer worlds at
// unchanged decisions). Counters report the worlds ratio alongside req/s.
void BM_PipelineAdaptiveMC(benchmark::State& state) {
  constexpr uint32_t kAdaptiveWorlds = 999;
  constexpr size_t kAdaptiveCities = 32;
  constexpr size_t kAdaptivePoints = 4000;
  static const auto* workload = [] {
    struct AdaptiveWorkload {
      std::vector<data::OutcomeDataset> cities;
      std::vector<std::unique_ptr<RegionFamily>> families;
      std::vector<AuditRequest> requests;
      std::vector<bool> reference_fair;  // full-precision verdicts
    };
    auto* wl = new AdaptiveWorkload;
    wl->cities.reserve(kAdaptiveCities);
    for (size_t i = 0; i < kAdaptiveCities; ++i) {
      // Even cities fair, odd cities planted (alternating strength): both
      // stop sides of the CI rule engage.
      const double rate = i % 2 == 0 ? 0.55 : (i % 4 == 1 ? 0.90 : 0.70);
      Rng rng(100 + i);
      data::OutcomeDataset ds("adaptive-city-" + std::to_string(i));
      const geo::Rect zone(6.0, 6.0, 9.0, 9.0);
      for (size_t p = 0; p < kAdaptivePoints; ++p) {
        const geo::Point loc(rng.Uniform(0, 10), rng.Uniform(0, 10));
        ds.Add(loc, rng.Bernoulli(zone.Contains(loc) ? rate : 0.55) ? 1 : 0);
      }
      wl->cities.push_back(std::move(ds));
    }
    for (size_t i = 0; i < kAdaptiveCities; ++i) {
      auto family =
          GridPartitionFamily::Create(wl->cities[i].locations(), 8, 8);
      SFA_CHECK_OK(family.status());
      wl->families.push_back(std::move(family).value());
      AuditRequest req;
      req.id = "adaptive-" + std::to_string(i);
      req.dataset = &wl->cities[i];
      req.dataset_is_view = true;
      req.family = wl->families[i].get();
      req.options.alpha = 0.05;
      req.options.significance = SignificanceMethod::kAuto;
      req.options.monte_carlo.num_worlds = kAdaptiveWorlds;
      req.options.monte_carlo.seed = 900 + i;
      req.options.monte_carlo.adaptive.enabled = true;
      wl->requests.push_back(std::move(req));
    }
    // Full-precision reference: the same batch, adaptive off.
    std::vector<AuditRequest> full = wl->requests;
    for (AuditRequest& req : full) {
      req.options.monte_carlo.adaptive.enabled = false;
    }
    AuditPipeline reference;
    auto responses = reference.Run(full);
    SFA_CHECK_OK(responses.status());
    for (const AuditResponse& response : *responses) {
      SFA_CHECK_OK(response.status);
      wl->reference_fair.push_back(response.result.spatially_fair);
    }
    return wl;
  }();

  AuditPipeline pipeline;
  PipelineManifest manifest;
  size_t served = 0;
  for (auto _ : state) {
    pipeline.cache().Clear();
    auto responses = pipeline.Run(workload->requests, &manifest);
    SFA_CHECK_OK(responses.status());
    SFA_CHECK(manifest.num_failed == 0);
    for (size_t i = 0; i < responses->size(); ++i) {
      // The acceptance bar's "unchanged decisions" half, re-checked every
      // iteration.
      SFA_CHECK((*responses)[i].result.spatially_fair ==
                workload->reference_fair[i]);
    }
    served += responses->size();
  }
  const auto requested =
      static_cast<double>(kAdaptiveCities) * kAdaptiveWorlds;
  const auto simulated =
      requested - static_cast<double>(manifest.worlds_saved);
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
  state.counters["early_stops"] = static_cast<double>(manifest.early_stops);
  state.counters["worlds_saved"] = static_cast<double>(manifest.worlds_saved);
  state.counters["worlds_ratio"] = requested / simulated;
}
BENCHMARK(BM_PipelineAdaptiveMC)->Unit(benchmark::kMillisecond)->UseRealTime();

// Zero-copy warm path A/B: the SAME persisted frame population served
// through CalibrationStore::Load (heap copy + per-load allocation) versus
// CalibrationStore::LoadView (one-time-validated mmap'd view; warm hits
// cost one stat and a shared_ptr bump). Both paths ride the in-memory
// store index, so the delta isolates copy-vs-map — the ISSUE 10 acceptance
// ratio BM_StoreLoadMmap / BM_StoreLoadCopy must be ≥ 5×. Frames hold
// 32768 maxima (256 KiB of doubles) × 16 keys: the production shape where
// copy cost dominates once checksums are amortised away.
struct StoreLoadWorkload {
  std::filesystem::path dir;
  std::shared_ptr<CalibrationStore> store;
  std::vector<CalibrationKey> keys;
};

const StoreLoadWorkload& SharedStoreLoad() {
  static StoreLoadWorkload* w = [] {
    constexpr size_t kFrames = 16;
    constexpr size_t kWorldsPerFrame = 32768;
    auto* wl = new StoreLoadWorkload;
    wl->dir = std::filesystem::temp_directory_path() /
              ("sfa_bench_store_load_" + std::to_string(::getpid()));
    std::filesystem::remove_all(wl->dir);
    auto store = CalibrationStore::Open({.directory = wl->dir.string()});
    SFA_CHECK_OK(store.status());
    wl->store = std::shared_ptr<CalibrationStore>(std::move(*store));
    Rng rng(4242);
    for (size_t k = 0; k < kFrames; ++k) {
      CalibrationKey key;
      key.hash = 0x9e3779b97f4a7c15ULL * (k + 1);
      key.debug = "bench-store-load-" + std::to_string(k);
      std::vector<double> maxima(kWorldsPerFrame);
      for (double& m : maxima) m = rng.Uniform(0.0, 12.0);
      SFA_CHECK_OK(
          wl->store->Store(key, NullDistribution(std::move(maxima))));
      wl->keys.push_back(std::move(key));
    }
    // First touch outside timing: earn the one-time checksums so both
    // benches measure the steady warm path, not validation.
    for (const CalibrationKey& key : wl->keys) {
      SFA_CHECK_OK(wl->store->Load(key).status());
    }
    return wl;
  }();
  return *w;
}

void BM_StoreLoadCopy(benchmark::State& state) {
  const StoreLoadWorkload& wl = SharedStoreLoad();
  size_t loads = 0;
  for (auto _ : state) {
    for (const CalibrationKey& key : wl.keys) {
      auto dist = wl.store->Load(key);
      SFA_CHECK_OK(dist.status());
      benchmark::DoNotOptimize(dist->sorted_max().data());
      ++loads;
    }
  }
  state.counters["loads/s"] = benchmark::Counter(
      static_cast<double>(loads), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreLoadCopy)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_StoreLoadMmap(benchmark::State& state) {
  const StoreLoadWorkload& wl = SharedStoreLoad();
  SFA_CHECK(wl.store->mmap_enabled());
  size_t loads = 0;
  for (auto _ : state) {
    for (const CalibrationKey& key : wl.keys) {
      auto view = wl.store->LoadView(key);
      SFA_CHECK_OK(view.status());
      benchmark::DoNotOptimize(view->sorted_max().data());
      ++loads;
    }
  }
  const CalibrationStore::Stats stats = wl.store->stats();
  state.counters["loads/s"] = benchmark::Counter(
      static_cast<double>(loads), benchmark::Counter::kIsRate);
  state.counters["mmap_frames"] = static_cast<double>(stats.mmap_frames);
  state.counters["mmap_bytes"] = static_cast<double>(stats.mmap_bytes);
}
BENCHMARK(BM_StoreLoadMmap)->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
