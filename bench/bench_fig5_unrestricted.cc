// Figures 5 and 10 — unrestricted square regions on LAR.
//
// Scan centers: 100 k-means centers of the observation locations; regions:
// 20 side lengths from 0.1 to 2.0 degrees per center (2,000 regions total,
// Fig. 10). The audit flags several hundred regions (paper: 700); keeping
// the best per center and greedily removing overlaps leaves a few dozen
// exhibits (paper: 28) of widely varying area and observation count.
#include <cstdio>

#include "bench_util.h"
#include "core/audit.h"
#include "core/evidence.h"
#include "core/report.h"
#include "core/square_family.h"
#include "stats/kmeans.h"
#include "viz/map_render.h"

namespace sfa {

int Main() {
  bench::PrintHeader("Figures 5 & 10", "LAR: 2,000 square regions from 100 k-means centers");
  Stopwatch timer;

  const data::LarSimResult lar = bench::MakeLar();
  const data::OutcomeDataset& ds = lar.dataset;
  std::printf("%s\n", ds.Summary().c_str());

  stats::KMeansOptions km;
  km.k = 100;
  km.max_iterations = 30;
  km.seed = 7;
  auto clusters = stats::KMeans(ds.locations(), km);
  SFA_CHECK_OK(clusters.status());

  core::SquareScanOptions scan;
  scan.centers = clusters->centers;
  scan.side_lengths = core::SquareScanOptions::DefaultSideLengths();
  auto family = core::SquareScanFamily::Create(ds.locations(), scan);
  SFA_CHECK_OK(family.status());

  std::printf("\n-- Figure 10: scan geometry --\n");
  bench::PaperVsMeasured("scan centers (k-means)", "100",
                         StrFormat("%zu", (*family)->num_centers()));
  bench::PaperVsMeasured("side lengths", "20 (0.1..2.0 deg)",
                         StrFormat("%zu (%.1f..%.1f deg)", (*family)->num_sides(),
                                   scan.side_lengths.front(),
                                   scan.side_lengths.back()));
  bench::PaperVsMeasured("regions scanned", "2,000",
                         StrFormat("%zu", (*family)->num_regions()));

  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto audit = core::Auditor(opts).Audit(ds, **family);
  SFA_CHECK_OK(audit.status());

  std::printf("\n-- Figure 5: unfair regions --\n");
  bench::PaperVsMeasured("verdict", "unfair",
                         audit->spatially_fair ? "fair" : "unfair");
  bench::PaperVsMeasured("significant regions", "700",
                         StrFormat("%zu", audit->findings.size()));

  const auto best = core::BestPerGroup(audit->findings);
  const auto kept = core::SelectNonOverlapping(best);
  bench::PaperVsMeasured("non-overlapping exhibits", "28",
                         StrFormat("%zu", kept.size()));

  if (!kept.empty()) {
    uint64_t min_n = kept[0].n, max_n = kept[0].n;
    double min_side = 1e9, max_side = 0.0;
    for (const auto& f : kept) {
      min_n = std::min(min_n, f.n);
      max_n = std::max(max_n, f.n);
      min_side = std::min(min_side, f.rect.width());
      max_side = std::max(max_side, f.rect.width());
    }
    bench::PaperVsMeasured("smallest/largest exhibit side (deg)", "0.1 / 2.0",
                           StrFormat("%.1f / %.1f", min_side, max_side));
    bench::PaperVsMeasured("exhibit observation range", "473 .. 4,783",
                           StrFormat("%s .. %s",
                                     WithThousands(static_cast<int64_t>(min_n)).c_str(),
                                     WithThousands(static_cast<int64_t>(max_n)).c_str()));
  }
  std::printf("\n%s", core::FormatFindingsTable(kept, 28).c_str());

  // Figure 5 as an SVG map: outcomes + the non-overlapping exhibits.
  std::vector<viz::MapRegion> overlays;
  for (size_t i = 0; i < kept.size(); ++i) {
    viz::MapRegion overlay;
    overlay.rect = kept[i].rect;
    overlay.color = viz::Color::Blue();
    overlay.caption = StrFormat("#%zu n=%llu rate=%.2f", i + 1,
                                static_cast<unsigned long long>(kept[i].n),
                                kept[i].local_rate);
    overlays.push_back(std::move(overlay));
  }
  viz::MapOptions map_opts;
  map_opts.title = StrFormat("Fig 5: %zu non-overlapping unfair regions (LAR)",
                             kept.size());
  SFA_CHECK_OK(viz::WriteOutcomeMap(ds, overlays, "/tmp/sfa_fig5_regions.svg",
                                    map_opts));
  std::printf("\nfigure panel: /tmp/sfa_fig5_regions.svg\n");
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
