// Ablation — detection power of the audit.
//
// Power matrix over (effect size delta, region mass fraction): repeat
// plant-and-audit trials and report the rejection rate at alpha = 0.05.
// Power should increase along both axes and collapse to ~alpha at delta = 0
// (type-I control).
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/rectangle_sweep_family.h"
#include "core/scan.h"
#include "core/significance.h"

namespace sfa {

int Main() {
  bench::PrintHeader("Ablation", "Detection power vs effect size and region mass");
  Stopwatch timer;

  const double alpha = 0.05;
  const size_t n = bench::QuickMode() ? 4000 : 10000;
  const int trials = bench::QuickMode() ? 30 : 60;

  // Fixed locations; the null distribution is calibrated once per run and
  // shared across trials (locations do not change).
  Rng rng(1212);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) p = {rng.Uniform(0, 1), rng.Uniform(0, 1)};
  auto family = core::RectangleSweepFamily::Create(pts, 8, 8);
  SFA_CHECK_OK(family.status());
  core::MonteCarloOptions mc;
  mc.num_worlds = 199;
  mc.seed = 77;
  auto null_dist = core::SimulateNull(**family, 0.5, n / 2,
                                      stats::ScanDirection::kTwoSided, mc);
  SFA_CHECK_OK(null_dist.status());

  const std::vector<double> deltas = {0.0, 0.03, 0.06, 0.1, 0.15};
  const std::vector<double> fractions = {0.05, 0.1, 0.25};

  std::printf("\n  power (rejection rate at alpha=%.2f, %d trials each)\n", alpha,
              trials);
  std::printf("  %8s |", "delta");
  for (double f : fractions) std::printf(" mass %4.0f%% |", 100 * f);
  std::printf("\n  ---------+");
  for (size_t i = 0; i < fractions.size(); ++i) std::printf("-----------+");
  std::printf("\n");

  std::vector<uint64_t> scratch;
  for (double delta : deltas) {
    std::printf("  %8.2f |", delta);
    for (double fraction : fractions) {
      // Square plant of the requested area fraction in the unit square.
      const double side = std::sqrt(fraction);
      const geo::Rect plant(0.1, 0.1, 0.1 + side, 0.1 + side);
      int rejections = 0;
      for (int t = 0; t < trials; ++t) {
        std::vector<uint8_t> bytes(n);
        for (size_t i = 0; i < n; ++i) {
          const double rate = plant.Contains(pts[i]) ? 0.5 + delta : 0.5;
          bytes[i] = rng.Bernoulli(rate) ? 1 : 0;
        }
        const core::Labels labels = core::Labels::FromBytes(std::move(bytes));
        const double tau = core::ScanMaxStatistic(
            **family, labels, stats::ScanDirection::kTwoSided, &scratch);
        if (null_dist->PValue(tau) <= alpha) ++rejections;
      }
      std::printf("   %6.2f   |", static_cast<double>(rejections) / trials);
    }
    std::printf("\n");
  }
  std::printf(
      "\n  Expected shape: ~%.2f in the delta=0 row (type-I control), rising\n"
      "  toward 1.0 with either larger effects or more affected mass.\n",
      alpha);
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
