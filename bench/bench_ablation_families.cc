// Ablation — region family choice (§3: "a predetermined set of regions R").
//
// The same planted deviation is scanned with four families: a matched
// regular grid, a mismatched (offset-resolution) grid, k-means-centered
// squares, and the exhaustive rectangle sweep. Reported: verdict, max LLR,
// and whether the top finding overlaps the plant. The rectangle sweep should
// dominate on grid-unaligned plants; scan-center squares recover most of the
// power at a fraction of the region count.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "core/knn_circle_family.h"
#include "core/rectangle_sweep_family.h"
#include "core/square_family.h"
#include "stats/kmeans.h"

namespace sfa {
namespace {

void Report(const char* name, const core::RegionFamily& family,
            const data::OutcomeDataset& ds, const geo::Rect& plant) {
  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto result = core::Auditor(opts).Audit(ds, family);
  SFA_CHECK_OK(result.status());
  const bool hit =
      !result->findings.empty() && result->findings[0].rect.Intersects(plant);
  std::printf("  %-28s | regions %7zu | tau %8.2f | %-6s | top hits plant: %s\n",
              name, family.num_regions(), result->tau,
              result->spatially_fair ? "fair" : "unfair", hit ? "yes" : "no");
}

}  // namespace

int Main() {
  bench::PrintHeader("Ablation", "Region family power on a grid-unaligned plant");
  Stopwatch timer;

  // Plant deliberately not aligned to any 10x5 or 16x8 grid line.
  Rng rng(909);
  data::OutcomeDataset ds("planted");
  const geo::Rect plant(0.37, 0.22, 0.93, 0.71);
  const size_t n = bench::QuickMode() ? 20000 : 60000;
  for (size_t i = 0; i < n; ++i) {
    const geo::Point p(rng.Uniform(0, 2), rng.Uniform(0, 1));
    ds.Add(p, rng.Bernoulli(plant.Contains(p) ? 0.56 : 0.5) ? 1 : 0);
  }
  std::printf("%s | plant %s at rate 0.56 vs 0.50\n", ds.Summary().c_str(),
              plant.ToString().c_str());

  auto grid_matched = core::GridPartitionFamily::Create(ds.locations(), 10, 5);
  SFA_CHECK_OK(grid_matched.status());
  Report("grid 10x5", **grid_matched, ds, plant);

  auto grid_fine = core::GridPartitionFamily::Create(ds.locations(), 16, 8);
  SFA_CHECK_OK(grid_fine.status());
  Report("grid 16x8", **grid_fine, ds, plant);

  stats::KMeansOptions km;
  km.k = 30;
  km.seed = 4;
  auto clusters = stats::KMeans(ds.locations(), km);
  SFA_CHECK_OK(clusters.status());
  core::SquareScanOptions scan;
  scan.centers = clusters->centers;
  scan.side_lengths = core::SquareScanOptions::DefaultSideLengths(0.1, 0.9, 9);
  auto squares = core::SquareScanFamily::Create(ds.locations(), scan);
  SFA_CHECK_OK(squares.status());
  Report("k-means squares 30x9", **squares, ds, plant);

  core::KnnCircleOptions knn;
  knn.centers = clusters->centers;
  knn.population_fractions = {0.01, 0.02, 0.05, 0.10, 0.15, 0.20};
  auto circles = core::KnnCircleFamily::Create(ds.locations(), knn);
  SFA_CHECK_OK(circles.status());
  Report("kNN circles (SaTScan-style)", **circles, ds, plant);

  auto sweep = core::RectangleSweepFamily::Create(ds.locations(), 16, 8);
  SFA_CHECK_OK(sweep.status());
  Report("rectangle sweep 16x8", **sweep, ds, plant);

  std::printf(
      "\n  Takeaway: single-cell grids fragment a misaligned plant across\n"
      "  cells and lose power; families whose regions can COVER the plant\n"
      "  (large squares, swept rectangles) recover it with far higher LLR.\n"
      "  The sweep is exhaustive but its region count grows quartically.\n");
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
