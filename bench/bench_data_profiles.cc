// Figures 7 & 8 — dataset profiles (the paper renders the point clouds; we
// print the structural summaries that make the renders meaningful: sizes,
// rates, distinct locations, density skew).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "data/crime_sim.h"
#include "data/us_geography.h"
#include "geo/grid.h"

namespace sfa {
namespace {

double DensitySkew(const std::vector<geo::Point>& pts, const geo::Rect& extent) {
  auto grid = geo::GridSpec::Create(extent.Expanded(1e-9), 40, 20);
  SFA_CHECK_OK(grid.status());
  std::vector<uint32_t> counts(grid->num_cells(), 0);
  for (const auto& p : pts) {
    if (grid->Covers(p)) ++counts[grid->CellOf(p)];
  }
  std::sort(counts.begin(), counts.end(), std::greater<uint32_t>());
  uint64_t total = 0, top = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i < counts.size() / 10) top += counts[i];
  }
  return total == 0 ? 0.0 : static_cast<double>(top) / static_cast<double>(total);
}

}  // namespace

int Main() {
  bench::PrintHeader("Figures 7 & 8", "Dataset profiles: LAR and Crime");
  Stopwatch timer;

  const data::LarSimResult lar = bench::MakeLar();
  std::printf("\n-- Figure 7: LAR --\n");
  std::printf("  %s\n", lar.dataset.Summary().c_str());
  bench::PaperVsMeasured("applications", "206,418",
                         WithThousands(static_cast<int64_t>(lar.dataset.size())));
  bench::PaperVsMeasured(
      "distinct locations", "50,647",
      WithThousands(static_cast<int64_t>(lar.dataset.CountDistinctLocations())));
  bench::PaperVsMeasured("positive rate", 0.62, lar.dataset.PositiveRate(), "%.2f");
  bench::PaperVsMeasured(
      "density skew (top-10% cells' share)", "high (metro clustering)",
      StrFormat("%.0f%%", 100 * DensitySkew(lar.dataset.locations(),
                                            lar.dataset.BoundingBox())));
  bench::PaperVsMeasured("solved base accept rate", "-",
                         StrFormat("%.3f", lar.base_rate));
  const std::vector<data::PlantedRegion> planted_regions =
      data::LarSimOptions::DefaultPlantedRegions();
  for (size_t r = 0; r < lar.planted_counts.size(); ++r) {
    const data::PlantedRegion& planted = planted_regions[r];
    std::printf("  planted %-10s rate %.2f, applications inside: %s\n",
                planted.label.c_str(), planted.positive_rate,
                WithThousands(static_cast<int64_t>(lar.planted_counts[r])).c_str());
  }

  data::CrimeSimOptions crime_opts;
  if (bench::QuickMode()) crime_opts.num_incidents = 80000;
  auto crime = data::MakeCrimeIncidents(crime_opts);
  SFA_CHECK_OK(crime.status());
  std::printf("\n-- Figure 8: Crime --\n");
  bench::PaperVsMeasured("incidents", "711,852",
                         WithThousands(static_cast<int64_t>(crime->table.num_rows())));
  bench::PaperVsMeasured("serious rate (ground truth)", "~0.3",
                         StrFormat("%.2f", crime->table.PositiveRate()));
  bench::PaperVsMeasured("features", "7",
                         StrFormat("%zu", crime->table.num_features()));
  bench::PaperVsMeasured("precincts", "21",
                         StrFormat("%zu", crime->precinct_names.size()));
  bench::PaperVsMeasured(
      "density skew (top-10% cells' share)", "precinct clustering",
      StrFormat("%.0f%%", 100 * DensitySkew(crime->locations,
                                            data::LosAngelesBounds())));
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
