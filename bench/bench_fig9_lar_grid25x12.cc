// Figure 9 (Appendix B.1) — LAR at a low-resolution 25x12 partitioning.
//
// At coarse resolution our framework still flags dense deviating partitions
// (paper: 22 significant), while MeanVar's top-20 now mixes in some dense
// areas — including the northern-California region — but remains dominated
// by sparse extremes.
#include <cstdio>

#include "bench_util.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "core/meanvar.h"
#include "core/report.h"

namespace sfa {
namespace {
constexpr uint32_t kGx = 25;
constexpr uint32_t kGy = 12;
}  // namespace

int Main() {
  bench::PrintHeader("Figure 9", "LAR, low-resolution 25x12 partitioning");
  Stopwatch timer;

  const data::LarSimResult lar = bench::MakeLar();
  const data::OutcomeDataset& ds = lar.dataset;
  std::printf("%s\n", ds.Summary().c_str());

  const geo::Rect extent = ds.BoundingBox().Expanded(1e-9);
  auto family = core::GridPartitionFamily::CreateWithExtent(ds.locations(), extent,
                                                            kGx, kGy);
  SFA_CHECK_OK(family.status());
  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto audit = core::Auditor(opts).Audit(ds, **family);
  SFA_CHECK_OK(audit.status());

  auto partitioning = geo::Partitioning::Regular(extent, kGx, kGy);
  SFA_CHECK_OK(partitioning.status());
  auto meanvar = core::ComputeMeanVar(ds, {*partitioning});
  SFA_CHECK_OK(meanvar.status());

  std::printf("\n-- (a) spatial fairness audit --\n");
  bench::PaperVsMeasured("verdict", "unfair",
                         audit->spatially_fair ? "fair" : "unfair");
  bench::PaperVsMeasured("significant partitions", "22",
                         StrFormat("%zu", audit->findings.size()));
  std::printf("\n%s", core::FormatFindingsTable(audit->findings, 8).c_str());

  std::printf("\n-- (b) top-20 MeanVar contributors --\n");
  const size_t top_k = std::min<size_t>(20, meanvar->ranked_partitions.size());
  size_t dense = 0;
  bool found_ca_region = false;
  const geo::Rect bay_area(-122.80, 37.00, -121.60, 38.60);
  for (size_t i = 0; i < top_k; ++i) {
    const auto& c = meanvar->ranked_partitions[i];
    if (c.n >= 100) ++dense;
    if (c.rect.Intersects(bay_area)) found_ca_region = true;
  }
  bench::PaperVsMeasured("dense partitions among MeanVar top-20", "some",
                         StrFormat("%zu of %zu", dense, top_k));
  bench::PaperVsMeasured("MeanVar top-20 reaches the N-CA region", "yes",
                         found_ca_region ? "yes" : "no");
  std::printf("\n%s", core::FormatMeanVarTable(*meanvar, 8).c_str());
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
