// Ablation — classical spatial autocorrelation vs the scan audit.
//
// Moran's I / join counts are the standard first-line diagnostics for
// "outcomes depend on location". They answer the global question with one
// number but cannot testify: no region, no effect size, no direction. This
// harness runs both on the same datasets and reports what each can and
// cannot say. Shape expectations: both reject on strongly clustered
// unfairness; Moran's I is weak on small localized deviations (its signal
// dilutes over the whole graph) where the scan still localizes.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/grid_family.h"
#include "stats/join_count.h"

namespace sfa {
namespace {

struct CaseResult {
  double morans_i = 0.0;
  double morans_p = 1.0;
  bool audit_unfair = false;
  double audit_p = 1.0;
  std::string audit_where;
};

CaseResult RunCase(const data::OutcomeDataset& ds) {
  CaseResult out;
  auto graph = stats::BuildKnnGraph(ds.locations(), 5);
  SFA_CHECK_OK(graph.status());
  out.morans_i = stats::BinaryMoransI(*graph, ds.predicted());
  auto morans_p = stats::MoransIPValue(*graph, ds.predicted(), 199, 7);
  SFA_CHECK_OK(morans_p.status());
  out.morans_p = *morans_p;

  auto family = core::GridPartitionFamily::Create(ds.locations(), 10, 10);
  SFA_CHECK_OK(family.status());
  core::AuditOptions opts;
  opts.alpha = 0.005;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto audit = core::Auditor(opts).Audit(ds, **family);
  SFA_CHECK_OK(audit.status());
  out.audit_unfair = !audit->spatially_fair;
  out.audit_p = audit->p_value;
  out.audit_where = audit->findings.empty()
                        ? "(none)"
                        : audit->findings[0].rect.ToString();
  return out;
}

}  // namespace

int Main() {
  bench::PrintHeader("Ablation", "Moran's I / join counts vs the scan audit");
  Stopwatch timer;
  const size_t n = bench::QuickMode() ? 4000 : 10000;
  Rng rng(42);

  // Case A: fair. Case B: one half shifted (global structure). Case C: one
  // small pocket shifted (localized structure, ~4% of the data).
  data::OutcomeDataset fair("fair"), halves("halves"), pocket("pocket");
  const geo::Rect pocket_zone(7.6, 7.6, 9.6, 9.6);
  for (size_t i = 0; i < n; ++i) {
    const geo::Point p(rng.Uniform(0, 10), rng.Uniform(0, 10));
    fair.Add(p, rng.Bernoulli(0.5) ? 1 : 0);
    halves.Add(p, rng.Bernoulli(p.x < 5.0 ? 0.62 : 0.38) ? 1 : 0);
    pocket.Add(p, rng.Bernoulli(pocket_zone.Contains(p) ? 0.15 : 0.5) ? 1 : 0);
  }

  std::printf("\n  %-8s | %10s | %10s | %8s | %10s | %s\n", "case", "Moran I",
              "Moran p", "audit", "audit p", "audit evidence");
  for (const auto* ds : {&fair, &halves, &pocket}) {
    const CaseResult r = RunCase(*ds);
    std::printf("  %-8s | %10.4f | %10.4f | %8s | %10.4f | %s\n",
                ds->name().c_str(), r.morans_i, r.morans_p,
                r.audit_unfair ? "unfair" : "fair", r.audit_p,
                r.audit_unfair ? r.audit_where.c_str() : "-");
  }
  std::printf(
      "\n  Takeaway: both methods clear the fair case and catch the global\n"
      "  half-shift, but only the audit also names the WHERE; on the small\n"
      "  pocket the global Moran statistic dilutes while the scan pinpoints\n"
      "  the planted zone at high significance.\n");
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
