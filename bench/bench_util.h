// Shared plumbing for the figure-reproduction harnesses: full-scale dataset
// construction with caching across benches of one process, and uniform
// "paper vs measured" reporting consumed by EXPERIMENTS.md.
#ifndef SFA_BENCH_BENCH_UTIL_H_
#define SFA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/lar_sim.h"
#include "data/synth.h"

namespace sfa::bench {

/// Quick mode (env SFA_QUICK=1) shrinks datasets and Monte Carlo budgets so
/// the whole harness suite runs in seconds; default is full paper scale.
inline bool QuickMode() {
  const char* env = std::getenv("SFA_QUICK");
  return env != nullptr && env[0] == '1';
}

inline uint32_t NumWorlds() { return QuickMode() ? 199 : 999; }

/// The paper's significance level.
inline constexpr double kAlpha = 0.005;

/// Full-scale (or quick-mode) LarSim with the default planted regions.
inline data::LarSimResult MakeLar() {
  data::LarSimOptions opts;
  if (QuickMode()) {
    opts.num_locations = 10000;
    opts.num_applications = 40000;
  }
  auto result = data::MakeLarSim(opts);
  SFA_CHECK_OK(result.status());
  return std::move(result).value();
}

inline data::OutcomeDataset MakeSynthDataset() {
  auto ds = data::MakeSynth(data::SynthOptions{});
  SFA_CHECK_OK(ds.status());
  return std::move(ds).value();
}

inline data::OutcomeDataset MakeSemiSynthDataset() {
  auto ds = data::MakeSemiSynthStandalone(data::SemiSynthOptions{});
  SFA_CHECK_OK(ds.status());
  return std::move(ds).value();
}

inline void PrintHeader(const std::string& figure, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  std::printf("================================================================\n");
  if (QuickMode()) std::printf("(SFA_QUICK=1: reduced scale)\n");
}

/// One paper-vs-measured comparison row.
inline void PaperVsMeasured(const std::string& metric, const std::string& paper,
                            const std::string& measured) {
  std::printf("  %-46s | paper: %-18s | measured: %s\n", metric.c_str(),
              paper.c_str(), measured.c_str());
}

inline void PaperVsMeasured(const std::string& metric, double paper,
                            double measured, const char* fmt = "%.4f") {
  PaperVsMeasured(metric, StrFormat(fmt, paper), StrFormat(fmt, measured));
}

}  // namespace sfa::bench

#endif  // SFA_BENCH_BENCH_UTIL_H_
