// Figure 11 (Appendix B.2) — directional "red" scan on LAR: regions with a
// significantly LOWER positive rate inside than outside. The paper reports
// 27 non-overlapping red regions, the worst around Miami (n=6,281, rho=0.43).
#include <cstdio>

#include "bench_util.h"
#include "core/audit.h"
#include "core/evidence.h"
#include "core/report.h"
#include "core/square_family.h"
#include "stats/kmeans.h"

namespace sfa {

int Main() {
  bench::PrintHeader("Figure 11", "LAR: directional scan for 'red' (low-rate) regions");
  Stopwatch timer;

  const data::LarSimResult lar = bench::MakeLar();
  const data::OutcomeDataset& ds = lar.dataset;
  std::printf("%s\n", ds.Summary().c_str());

  stats::KMeansOptions km;
  km.k = 100;
  km.max_iterations = 30;
  km.seed = 7;
  auto clusters = stats::KMeans(ds.locations(), km);
  SFA_CHECK_OK(clusters.status());
  core::SquareScanOptions scan;
  scan.centers = clusters->centers;
  scan.side_lengths = core::SquareScanOptions::DefaultSideLengths();
  auto family = core::SquareScanFamily::Create(ds.locations(), scan);
  SFA_CHECK_OK(family.status());

  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.direction = stats::ScanDirection::kLow;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto audit = core::Auditor(opts).Audit(ds, **family);
  SFA_CHECK_OK(audit.status());

  const auto kept = core::SelectNonOverlapping(core::BestPerGroup(audit->findings));
  std::printf("\n");
  bench::PaperVsMeasured("non-overlapping red regions", "27",
                         StrFormat("%zu", kept.size()));
  if (!kept.empty()) {
    const core::RegionFinding& worst = kept[0];
    std::printf("  worst red region: %s\n", core::FormatFinding(worst).c_str());
    bench::PaperVsMeasured("worst red region n (paper: Miami)", "6,281",
                           WithThousands(static_cast<int64_t>(worst.n)));
    bench::PaperVsMeasured("worst red region local rate", 0.43, worst.local_rate,
                           "%.2f");
    const geo::Rect miami(-80.50, 25.40, -80.05, 26.40);
    bench::PaperVsMeasured("worst red region is the Miami plant", "yes",
                           worst.rect.Intersects(miami) ? "yes" : "no");
    // Every red finding must indeed have a depressed local rate.
    bool all_below = true;
    for (const auto& f : kept) all_below &= f.local_rate < audit->overall_rate;
    bench::PaperVsMeasured("all red regions below global rate", "yes",
                           all_below ? "yes" : "NO (!)");
  }
  std::printf("\n%s", core::FormatFindingsTable(kept, 27).c_str());
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
