// Ablation — gerrymandering (the paper's §1 motivation).
//
// "Location is highly susceptible to gerrymandering: the act of purposefully
// defining a partitioning of the space so that the partition measures appear
// non-discriminatory." This harness plays the adversary: starting from a
// regular partitioning of the unfair-by-design Synth dataset, it hill-climbs
// the split positions to MINIMIZE MeanVar. The baseline's unfairness score
// collapses (the audit target is gamed), while the likelihood-ratio audit —
// whose null calibration does not depend on any partition boundaries the
// adversary controls — still rejects spatial fairness on the same regions.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "core/audit.h"
#include "core/meanvar.h"
#include "core/partitioning_family.h"

namespace sfa {
namespace {

// One hill-climbing pass: jitter each interior split and keep improvements.
geo::Partitioning Gerrymander(const data::OutcomeDataset& ds,
                              const geo::Partitioning& start, int rounds,
                              Rng* rng) {
  auto score = [&ds](const geo::Partitioning& p) {
    auto mv = core::ComputeMeanVar(ds, {p});
    SFA_CHECK_OK(mv.status());
    return mv->mean_var;
  };
  geo::Partitioning best = start;
  double best_score = score(best);
  const geo::Rect& extent = start.extent();
  for (int round = 0; round < rounds; ++round) {
    for (const bool x_axis : {true, false}) {
      const auto& splits = x_axis ? best.x_splits() : best.y_splits();
      for (size_t s = 0; s < splits.size(); ++s) {
        std::vector<double> xs = best.x_splits();
        std::vector<double> ys = best.y_splits();
        auto& target = x_axis ? xs : ys;
        const double lo = x_axis ? extent.min_x : extent.min_y;
        const double hi = x_axis ? extent.max_x : extent.max_y;
        const double jitter = (hi - lo) * 0.03 * rng->Normal();
        target[s] = std::clamp(target[s] + jitter, lo + 1e-9 * (hi - lo),
                               hi - 1e-9 * (hi - lo));
        auto candidate = geo::Partitioning::Create(extent, xs, ys);
        if (!candidate.ok()) continue;
        const double candidate_score = score(*candidate);
        if (candidate_score < best_score) {
          best_score = candidate_score;
          best = std::move(candidate).value();
        }
      }
    }
  }
  return best;
}

core::AuditResult Audit(const data::OutcomeDataset& ds,
                        const geo::Partitioning& partitioning) {
  auto family =
      core::PartitioningCollectionFamily::Create(ds.locations(), {partitioning});
  SFA_CHECK_OK(family.status());
  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto result = core::Auditor(opts).Audit(ds, **family);
  SFA_CHECK_OK(result.status());
  return std::move(result).value();
}

}  // namespace

int Main() {
  bench::PrintHeader("Ablation", "Gerrymandering MeanVar vs the audit");
  Stopwatch timer;

  const data::OutcomeDataset synth = bench::MakeSynthDataset();
  std::printf("%s (left half rate 2/3, right half 1/3 — unfair by design)\n",
              synth.Summary().c_str());

  const geo::Rect extent = synth.BoundingBox().Expanded(1e-6);
  auto start = geo::Partitioning::Regular(extent, 8, 8);
  SFA_CHECK_OK(start.status());

  auto mv_before = core::ComputeMeanVar(synth, {*start});
  SFA_CHECK_OK(mv_before.status());
  const core::AuditResult audit_before = Audit(synth, *start);

  Rng rng(1789);  // the gerrymander's birth year
  const int rounds = bench::QuickMode() ? 10 : 40;
  const geo::Partitioning rigged = Gerrymander(synth, *start, rounds, &rng);
  auto mv_after = core::ComputeMeanVar(synth, {rigged});
  SFA_CHECK_OK(mv_after.status());
  const core::AuditResult audit_after = Audit(synth, rigged);

  std::printf("\n");
  bench::PaperVsMeasured("MeanVar, honest 8x8 partitioning", "-",
                         StrFormat("%.4f", mv_before->mean_var));
  bench::PaperVsMeasured(
      "MeanVar after adversarial boundary search", "can be driven down",
      StrFormat("%.4f (-%.0f%%)", mv_after->mean_var,
                100.0 * (1.0 - mv_after->mean_var / mv_before->mean_var)));
  bench::PaperVsMeasured("audit verdict, honest partitioning", "unfair",
                         audit_before.spatially_fair ? "fair" : "unfair");
  bench::PaperVsMeasured("audit verdict, gerrymandered partitioning", "unfair",
                         audit_after.spatially_fair ? "fair (!)" : "still unfair");
  bench::PaperVsMeasured("audit p-value before / after", "-",
                         StrFormat("%.4f / %.4f", audit_before.p_value,
                                   audit_after.p_value));
  std::printf(
      "\n  Takeaway: an adversary who controls partition boundaries can push\n"
      "  the MeanVar score toward 'fair' on designed-unfair data, but the\n"
      "  likelihood-ratio audit still rejects on the SAME rigged regions —\n"
      "  its Monte Carlo null recalibrates to whatever regions are scanned.\n");
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
