// Figure 12 (Appendix B.2) — directional "green" scan on LAR: regions with a
// significantly HIGHER positive rate inside than outside. The paper reports
// 17 non-overlapping green regions, the strongest around San Jose
// (n=17,875, rho=0.83).
#include <cstdio>

#include "bench_util.h"
#include "core/audit.h"
#include "core/evidence.h"
#include "core/report.h"
#include "core/square_family.h"
#include "stats/kmeans.h"

namespace sfa {

int Main() {
  bench::PrintHeader("Figure 12", "LAR: directional scan for 'green' (high-rate) regions");
  Stopwatch timer;

  const data::LarSimResult lar = bench::MakeLar();
  const data::OutcomeDataset& ds = lar.dataset;
  std::printf("%s\n", ds.Summary().c_str());

  stats::KMeansOptions km;
  km.k = 100;
  km.max_iterations = 30;
  km.seed = 7;
  auto clusters = stats::KMeans(ds.locations(), km);
  SFA_CHECK_OK(clusters.status());
  core::SquareScanOptions scan;
  scan.centers = clusters->centers;
  scan.side_lengths = core::SquareScanOptions::DefaultSideLengths();
  auto family = core::SquareScanFamily::Create(ds.locations(), scan);
  SFA_CHECK_OK(family.status());

  core::AuditOptions opts;
  opts.alpha = bench::kAlpha;
  opts.direction = stats::ScanDirection::kHigh;
  opts.monte_carlo.num_worlds = bench::NumWorlds();
  auto audit = core::Auditor(opts).Audit(ds, **family);
  SFA_CHECK_OK(audit.status());

  const auto kept = core::SelectNonOverlapping(core::BestPerGroup(audit->findings));
  std::printf("\n");
  bench::PaperVsMeasured("non-overlapping green regions", "17",
                         StrFormat("%zu", kept.size()));
  if (!kept.empty()) {
    const core::RegionFinding& best = kept[0];
    std::printf("  strongest green region: %s\n", core::FormatFinding(best).c_str());
    bench::PaperVsMeasured("strongest green region n (paper: San Jose)", "17,875",
                           WithThousands(static_cast<int64_t>(best.n)));
    bench::PaperVsMeasured("strongest green region local rate", 0.83,
                           best.local_rate, "%.2f");
    const geo::Rect bay_area(-122.80, 37.00, -121.60, 38.60);
    bench::PaperVsMeasured("strongest green region is the Bay-Area plant", "yes",
                           best.rect.Intersects(bay_area) ? "yes" : "no");
    bool all_above = true;
    for (const auto& f : kept) all_above &= f.local_rate > audit->overall_rate;
    bench::PaperVsMeasured("all green regions above global rate", "yes",
                           all_above ? "yes" : "NO (!)");
  }
  std::printf("\n%s", core::FormatFindingsTable(kept, 17).c_str());
  std::printf("\n[done in %s]\n", timer.ElapsedString().c_str());
  return 0;
}

}  // namespace sfa

int main() { return sfa::Main(); }
