#include "ml/table.h"

#include <numeric>

#include "common/macros.h"

namespace sfa::ml {

Table::Table(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {}

void Table::AddRow(const std::vector<uint8_t>& features, uint8_t label) {
  SFA_CHECK_MSG(features.size() == num_features(),
                "row has " << features.size() << " features, table expects "
                           << num_features());
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

double Table::PositiveRate() const {
  if (labels_.empty()) return 0.0;
  size_t positives = 0;
  for (uint8_t label : labels_) positives += (label != 0);
  return static_cast<double>(positives) / static_cast<double>(labels_.size());
}

std::pair<std::vector<uint32_t>, std::vector<uint32_t>> Table::TrainTestSplit(
    double train_fraction, uint64_t seed) const {
  SFA_CHECK_MSG(train_fraction > 0.0 && train_fraction < 1.0,
                "train_fraction " << train_fraction << " outside (0,1)");
  std::vector<uint32_t> rows(num_rows());
  std::iota(rows.begin(), rows.end(), 0u);
  Rng rng(seed);
  rng.Shuffle(rows.begin(), rows.end());
  const auto cut = static_cast<size_t>(train_fraction * static_cast<double>(rows.size()));
  std::vector<uint32_t> train(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(cut));
  std::vector<uint32_t> test(rows.begin() + static_cast<ptrdiff_t>(cut), rows.end());
  return {std::move(train), std::move(test)};
}

}  // namespace sfa::ml
