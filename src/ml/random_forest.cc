#include "ml/random_forest.h"

#include <cmath>
#include <mutex>

#include "common/macros.h"
#include "common/random.h"
#include "common/thread_pool.h"

namespace sfa::ml {

Result<RandomForest> RandomForest::Fit(const Table& table,
                                       const std::vector<uint32_t>& rows,
                                       const RandomForestOptions& options) {
  if (rows.empty()) return Status::InvalidArgument("empty training set");
  if (options.num_trees == 0) {
    return Status::InvalidArgument("forest needs at least one tree");
  }
  if (options.bootstrap_fraction <= 0.0 || options.bootstrap_fraction > 1.0) {
    return Status::InvalidArgument("bootstrap_fraction must be in (0, 1]");
  }

  RandomForestOptions opts = options;
  if (opts.tree.max_features == 0) {
    opts.tree.max_features = static_cast<uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(table.num_features()))));
  }

  RandomForest forest;
  forest.trees_.resize(opts.num_trees);
  Rng root_rng(opts.seed);
  const auto sample_size = static_cast<size_t>(
      opts.bootstrap_fraction * static_cast<double>(rows.size()));
  SFA_CHECK(sample_size > 0);

  Status first_error = Status::OK();
  std::mutex error_mu;
  auto fit_one = [&](size_t t) {
    Rng rng = root_rng.Split(t);
    std::vector<uint32_t> sample(sample_size);
    for (size_t i = 0; i < sample_size; ++i) {
      sample[i] = rows[rng.NextUint64(rows.size())];
    }
    DecisionTreeOptions tree_opts = opts.tree;
    tree_opts.seed = rng.Next();
    auto tree = DecisionTree::Fit(table, sample, tree_opts);
    if (!tree.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = tree.status();
      return;
    }
    forest.trees_[t] = std::move(tree).value();
  };

  if (opts.parallel) {
    DefaultThreadPool().ParallelFor(opts.num_trees, fit_one);
  } else {
    for (size_t t = 0; t < opts.num_trees; ++t) fit_one(t);
  }
  SFA_RETURN_NOT_OK(first_error);
  return forest;
}

double RandomForest::PredictProba(const uint8_t* features) const {
  SFA_DCHECK(!trees_.empty());
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.PredictProba(features);
  return sum / static_cast<double>(trees_.size());
}

std::vector<uint8_t> RandomForest::PredictRows(
    const Table& table, const std::vector<uint32_t>& rows) const {
  std::vector<uint8_t> out(rows.size());
  DefaultThreadPool().ParallelFor(rows.size(), [&](size_t i) {
    out[i] = Predict(table.Row(rows[i]));
  });
  return out;
}

}  // namespace sfa::ml
