#include "ml/decision_tree.h"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/macros.h"

namespace sfa::ml {

namespace {

double GiniFromCounts(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Result<DecisionTree> DecisionTree::Fit(const Table& table,
                                       const std::vector<uint32_t>& rows,
                                       const DecisionTreeOptions& options) {
  if (rows.empty()) return Status::InvalidArgument("empty training set");
  if (table.num_features() == 0) {
    return Status::InvalidArgument("table has no features");
  }
  DecisionTree tree;
  Rng rng(options.seed);
  std::vector<uint32_t> working = rows;
  tree.BuildNode(table, &working, 0, working.size(), 0, options, &rng);
  return tree;
}

DecisionTree::SplitCandidate DecisionTree::FindBestSplit(
    const Table& table, const std::vector<uint32_t>& rows, size_t begin, size_t end,
    const DecisionTreeOptions& options, Rng* rng) const {
  const size_t count = end - begin;
  const size_t num_features = table.num_features();

  // Choose the candidate feature subset (all, or max_features at random).
  std::vector<uint16_t> features(num_features);
  std::iota(features.begin(), features.end(), static_cast<uint16_t>(0));
  if (options.max_features > 0 && options.max_features < num_features) {
    rng->Shuffle(features.begin(), features.end());
    features.resize(options.max_features);
  }

  SplitCandidate best;
  best.gini_after = 2.0;  // larger than any achievable weighted Gini

  for (uint16_t f : features) {
    // Histogram pass: per feature value, row and positive counts.
    std::array<uint32_t, 256> count_per_value{};
    std::array<uint32_t, 256> pos_per_value{};
    uint8_t max_value = 0;
    uint32_t total_pos = 0;
    for (size_t i = begin; i < end; ++i) {
      const uint32_t row = rows[i];
      const uint8_t v = table.Feature(row, f);
      ++count_per_value[v];
      const uint8_t label = table.Label(row);
      pos_per_value[v] += label;
      total_pos += label;
      max_value = std::max(max_value, v);
    }
    // Scan thresholds t: left = {value <= t}. Stop before the last observed
    // value so both sides stay non-empty.
    double left_count = 0.0;
    double left_pos = 0.0;
    for (uint32_t t = 0; t < max_value; ++t) {
      left_count += count_per_value[t];
      left_pos += pos_per_value[t];
      if (left_count == 0) continue;
      const double right_count = static_cast<double>(count) - left_count;
      if (right_count == 0) break;
      if (left_count < options.min_samples_leaf ||
          right_count < options.min_samples_leaf) {
        continue;
      }
      const double right_pos = static_cast<double>(total_pos) - left_pos;
      const double weighted =
          (left_count * GiniFromCounts(left_pos, left_count) +
           right_count * GiniFromCounts(right_pos, right_count)) /
          static_cast<double>(count);
      if (weighted < best.gini_after) {
        best.valid = true;
        best.feature = f;
        best.threshold = static_cast<uint8_t>(t);
        best.gini_after = weighted;
        best.left_count = static_cast<size_t>(left_count);
      }
    }
  }
  return best;
}

int32_t DecisionTree::BuildNode(const Table& table, std::vector<uint32_t>* rows,
                                size_t begin, size_t end, uint32_t depth,
                                const DecisionTreeOptions& options, Rng* rng) {
  const size_t count = end - begin;
  SFA_DCHECK(count > 0);
  depth_ = std::max(depth_, depth);

  size_t positives = 0;
  for (size_t i = begin; i < end; ++i) positives += table.Label((*rows)[i]);
  const double prob = static_cast<double>(positives) / static_cast<double>(count);

  const auto node_index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_.back().prob = static_cast<float>(prob);

  const bool pure = positives == 0 || positives == count;
  if (pure || depth >= options.max_depth || count < options.min_samples_split) {
    return node_index;  // leaf
  }

  const SplitCandidate split = FindBestSplit(table, *rows, begin, end, options, rng);
  const double gini_before = GiniFromCounts(static_cast<double>(positives),
                                            static_cast<double>(count));
  if (!split.valid || split.gini_after >= gini_before - 1e-12) {
    return node_index;  // no useful split
  }

  // In-place stable partition of the row range by the chosen split.
  auto middle = std::stable_partition(
      rows->begin() + static_cast<ptrdiff_t>(begin),
      rows->begin() + static_cast<ptrdiff_t>(end), [&](uint32_t row) {
        return table.Feature(row, split.feature) <= split.threshold;
      });
  const auto mid = static_cast<size_t>(middle - rows->begin());
  SFA_DCHECK(mid > begin && mid < end);

  nodes_[static_cast<size_t>(node_index)].feature = split.feature;
  nodes_[static_cast<size_t>(node_index)].threshold = split.threshold;
  const int32_t left = BuildNode(table, rows, begin, mid, depth + 1, options, rng);
  const int32_t right = BuildNode(table, rows, mid, end, depth + 1, options, rng);
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

double DecisionTree::PredictProba(const uint8_t* features) const {
  SFA_DCHECK(!nodes_.empty());
  int32_t index = 0;
  while (true) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (node.left < 0) return node.prob;
    index = features[node.feature] <= node.threshold ? node.left : node.right;
  }
}

}  // namespace sfa::ml
