// Feature table for the classifier substrate. Features are small ordinal
// integers (0..255): every feature the paper's Crime experiment uses (hour,
// precinct, victim age bucket, sex, descent, premise type, weapon) is
// naturally categorical or binnable, which lets the tree learner use O(256)
// histogram splits instead of sort-based exact splits.
#ifndef SFA_ML_TABLE_H_
#define SFA_ML_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace sfa::ml {

/// Row-major table of uint8 features plus a binary label per row.
class Table {
 public:
  Table() = default;

  /// Creates an empty table with the given feature names.
  explicit Table(std::vector<std::string> feature_names);

  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  /// Appends one row; `features` must have num_features() entries.
  void AddRow(const std::vector<uint8_t>& features, uint8_t label);

  uint8_t Feature(size_t row, size_t col) const {
    return features_[row * num_features() + col];
  }
  uint8_t Label(size_t row) const { return labels_[row]; }
  const std::vector<uint8_t>& labels() const { return labels_; }

  /// Pointer to the contiguous feature row (num_features() entries).
  const uint8_t* Row(size_t row) const {
    return features_.data() + row * num_features();
  }

  /// Fraction of rows with label 1.
  double PositiveRate() const;

  /// Deterministic train/test split: shuffles row indices with `seed` and
  /// returns (train_rows, test_rows) with ~train_fraction of rows in train.
  std::pair<std::vector<uint32_t>, std::vector<uint32_t>> TrainTestSplit(
      double train_fraction, uint64_t seed) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<uint8_t> features_;
  std::vector<uint8_t> labels_;
};

}  // namespace sfa::ml

#endif  // SFA_ML_TABLE_H_
