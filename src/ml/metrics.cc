#include "ml/metrics.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::ml {

double ConfusionMatrix::Accuracy() const {
  const uint64_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(t);
}

double ConfusionMatrix::TruePositiveRate() const {
  const uint64_t ap = actual_positives();
  if (ap == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(ap);
}

double ConfusionMatrix::FalsePositiveRate() const {
  const uint64_t an = actual_negatives();
  if (an == 0) return 0.0;
  return static_cast<double>(false_positives) / static_cast<double>(an);
}

double ConfusionMatrix::Precision() const {
  const uint64_t pp = true_positives + false_positives;
  if (pp == 0) return 0.0;
  return static_cast<double>(true_positives) / static_cast<double>(pp);
}

double ConfusionMatrix::PositiveRate() const {
  const uint64_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(true_positives + false_positives) /
         static_cast<double>(t);
}

std::string ConfusionMatrix::ToString() const {
  return StrFormat(
      "TP=%llu FP=%llu TN=%llu FN=%llu | acc=%.4f tpr=%.4f fpr=%.4f",
      static_cast<unsigned long long>(true_positives),
      static_cast<unsigned long long>(false_positives),
      static_cast<unsigned long long>(true_negatives),
      static_cast<unsigned long long>(false_negatives), Accuracy(),
      TruePositiveRate(), FalsePositiveRate());
}

ConfusionMatrix ComputeConfusion(const std::vector<uint8_t>& predicted,
                                 const std::vector<uint8_t>& actual) {
  SFA_CHECK_MSG(predicted.size() == actual.size(),
                "predicted size " << predicted.size() << " != actual "
                                  << actual.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const bool pred = predicted[i] != 0;
    const bool truth = actual[i] != 0;
    if (pred && truth) {
      ++cm.true_positives;
    } else if (pred && !truth) {
      ++cm.false_positives;
    } else if (!pred && truth) {
      ++cm.false_negatives;
    } else {
      ++cm.true_negatives;
    }
  }
  return cm;
}

}  // namespace sfa::ml
