// CART binary classifier over uint8 ordinal features with histogram-based
// split search (Gini impurity). One pass per (node, feature) accumulates
// class counts per feature value; candidate thresholds are the <= v cuts, so
// split search costs O(rows + 256) per feature instead of O(rows log rows).
#ifndef SFA_ML_DECISION_TREE_H_
#define SFA_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "ml/table.h"

namespace sfa::ml {

struct DecisionTreeOptions {
  uint32_t max_depth = 12;
  uint32_t min_samples_split = 20;
  uint32_t min_samples_leaf = 5;
  /// Features examined per split: 0 means all, otherwise a random subset of
  /// this size (used by the random forest).
  uint32_t max_features = 0;
  uint64_t seed = 7;
};

class DecisionTree {
 public:
  DecisionTree() = default;

  /// Fits a tree on `rows` of `table` (row-index subset; pass all rows for a
  /// full fit). Fails on an empty training set.
  static Result<DecisionTree> Fit(const Table& table,
                                  const std::vector<uint32_t>& rows,
                                  const DecisionTreeOptions& options);

  /// Predicted probability of class 1 for a feature row.
  double PredictProba(const uint8_t* features) const;

  /// Hard 0/1 prediction at threshold 0.5.
  uint8_t Predict(const uint8_t* features) const {
    return PredictProba(features) >= 0.5 ? 1 : 0;
  }

  size_t num_nodes() const { return nodes_.size(); }
  uint32_t depth() const { return depth_; }

 private:
  struct Node {
    // Leaf iff left < 0; then `prob` is the class-1 probability.
    int32_t left = -1;
    int32_t right = -1;
    uint16_t feature = 0;
    uint8_t threshold = 0;  // go left when feature value <= threshold
    float prob = 0.0f;
  };

  struct SplitCandidate {
    bool valid = false;
    uint16_t feature = 0;
    uint8_t threshold = 0;
    double gini_after = 0.0;
    size_t left_count = 0;
  };

  int32_t BuildNode(const Table& table, std::vector<uint32_t>* rows, size_t begin,
                    size_t end, uint32_t depth, const DecisionTreeOptions& options,
                    Rng* rng);
  SplitCandidate FindBestSplit(const Table& table, const std::vector<uint32_t>& rows,
                               size_t begin, size_t end,
                               const DecisionTreeOptions& options, Rng* rng) const;

  std::vector<Node> nodes_;
  uint32_t depth_ = 0;
};

}  // namespace sfa::ml

#endif  // SFA_ML_DECISION_TREE_H_
