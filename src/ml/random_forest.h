// Bagged random forest over DecisionTree: bootstrap row sampling plus
// per-split feature subsampling, probability averaging across trees. This is
// the classifier audited in the paper's Crime experiment (its authors used a
// scikit-learn random forest; the audit only needs its predictions).
#ifndef SFA_ML_RANDOM_FOREST_H_
#define SFA_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/decision_tree.h"
#include "ml/table.h"

namespace sfa::ml {

struct RandomForestOptions {
  uint32_t num_trees = 20;
  DecisionTreeOptions tree;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  uint64_t seed = 1234;
  /// Trees trained in parallel on the default thread pool when true.
  bool parallel = true;
};

class RandomForest {
 public:
  RandomForest() = default;

  /// Fits `options.num_trees` trees on bootstrap samples of `rows`. If
  /// options.tree.max_features == 0 it defaults to ceil(sqrt(num_features)).
  static Result<RandomForest> Fit(const Table& table,
                                  const std::vector<uint32_t>& rows,
                                  const RandomForestOptions& options);

  /// Mean class-1 probability across trees.
  double PredictProba(const uint8_t* features) const;

  /// Hard prediction at threshold 0.5.
  uint8_t Predict(const uint8_t* features) const {
    return PredictProba(features) >= 0.5 ? 1 : 0;
  }

  /// Predictions for a list of table rows.
  std::vector<uint8_t> PredictRows(const Table& table,
                                   const std::vector<uint32_t>& rows) const;

  size_t num_trees() const { return trees_.size(); }

 private:
  std::vector<DecisionTree> trees_;
};

}  // namespace sfa::ml

#endif  // SFA_ML_RANDOM_FOREST_H_
