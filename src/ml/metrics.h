// Classification metrics: confusion matrix, accuracy, and the rate family
// (TPR/FPR/precision) the fairness measures are built on.
#ifndef SFA_ML_METRICS_H_
#define SFA_ML_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sfa::ml {

struct ConfusionMatrix {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t true_negatives = 0;
  uint64_t false_negatives = 0;

  uint64_t total() const {
    return true_positives + false_positives + true_negatives + false_negatives;
  }
  uint64_t actual_positives() const { return true_positives + false_negatives; }
  uint64_t actual_negatives() const { return true_negatives + false_positives; }

  double Accuracy() const;
  /// TPR = TP / (TP + FN); 0 when there are no actual positives.
  double TruePositiveRate() const;
  /// FPR = FP / (FP + TN); 0 when there are no actual negatives.
  double FalsePositiveRate() const;
  /// Precision = TP / (TP + FP); 0 when nothing was predicted positive.
  double Precision() const;
  /// Fraction of predictions that are positive.
  double PositiveRate() const;

  std::string ToString() const;
};

/// Builds the confusion matrix of `predicted` against `actual` (0/1 vectors
/// of equal length).
ConfusionMatrix ComputeConfusion(const std::vector<uint8_t>& predicted,
                                 const std::vector<uint8_t>& actual);

}  // namespace sfa::ml

#endif  // SFA_ML_METRICS_H_
