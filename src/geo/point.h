// 2-d point type. Coordinates are generic doubles; throughout the library
// x = longitude (degrees East) and y = latitude (degrees North) for
// geographic data, but nothing in geo/ assumes a particular CRS.
#ifndef SFA_GEO_POINT_H_
#define SFA_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace sfa::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }

  constexpr bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  constexpr bool operator!=(const Point& o) const { return !(*this == o); }

  /// Squared Euclidean distance to `o` (cheap; no sqrt).
  double DistanceSquaredTo(const Point& o) const {
    const double dx = x - o.x;
    const double dy = y - o.y;
    return dx * dx + dy * dy;
  }

  /// Euclidean distance to `o`.
  double DistanceTo(const Point& o) const { return std::sqrt(DistanceSquaredTo(o)); }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

}  // namespace sfa::geo

#endif  // SFA_GEO_POINT_H_
