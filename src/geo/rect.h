// Axis-aligned rectangle with half-open upper edges: a point is inside when
// min_x <= x < max_x and min_y <= y < max_y. Half-open semantics make grid
// cells and partitions tile the plane without double counting; Contains- and
// intersection-style predicates all follow this convention.
#ifndef SFA_GEO_RECT_H_
#define SFA_GEO_RECT_H_

#include <ostream>
#include <string>
#include <vector>

#include "geo/point.h"

namespace sfa::geo {

struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  constexpr Rect() = default;
  constexpr Rect(double min_x_in, double min_y_in, double max_x_in, double max_y_in)
      : min_x(min_x_in), min_y(min_y_in), max_x(max_x_in), max_y(max_y_in) {}

  /// Square of side `side` centered at `center`.
  static Rect CenteredSquare(const Point& center, double side);

  /// Smallest rectangle covering all `points`; empty input gives a degenerate
  /// rect at the origin.
  static Rect BoundingBox(const std::vector<Point>& points);

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
  double Area() const { return width() * height(); }
  Point Center() const { return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0}; }

  /// True when width and height are both >= 0 (degenerate rects allowed).
  bool IsValid() const { return max_x >= min_x && max_y >= min_y; }

  /// Half-open membership test (upper edges excluded).
  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x < max_x && p.y >= min_y && p.y < max_y;
  }

  /// True when `other` lies entirely within this rect.
  bool ContainsRect(const Rect& other) const {
    return other.min_x >= min_x && other.max_x <= max_x && other.min_y >= min_y &&
           other.max_y <= max_y;
  }

  /// True when the interiors overlap (shared edges do not count, consistent
  /// with half-open membership).
  bool Intersects(const Rect& other) const {
    return min_x < other.max_x && other.min_x < max_x && min_y < other.max_y &&
           other.min_y < max_y;
  }

  /// The overlapping rectangle; degenerate (zero-area) when disjoint.
  Rect Intersection(const Rect& other) const;

  /// Smallest rect covering both.
  Rect Union(const Rect& other) const;

  /// Expands every side outward by `margin` (>= 0).
  Rect Expanded(double margin) const;

  bool operator==(const Rect& o) const {
    return min_x == o.min_x && min_y == o.min_y && max_x == o.max_x &&
           max_y == o.max_y;
  }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

}  // namespace sfa::geo

#endif  // SFA_GEO_RECT_H_
