#include "geo/polygon.h"

namespace sfa::geo {

Polygon::Polygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)), bbox_(Rect::BoundingBox(vertices_)) {}

Result<Polygon> Polygon::Create(std::vector<Point> vertices) {
  if (vertices.size() < 3) {
    return Status::InvalidArgument("polygon needs at least 3 vertices");
  }
  return Polygon(std::move(vertices));
}

bool Polygon::Contains(const Point& p) const {
  // Bounding-box reject first: polygons here are country/state outlines and
  // most queried points are far away.
  if (!(p.x >= bbox_.min_x && p.x <= bbox_.max_x && p.y >= bbox_.min_y &&
        p.y <= bbox_.max_y)) {
    return false;
  }
  bool inside = false;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (crosses) {
      const double x_at_y = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (p.x < x_at_y) inside = !inside;
    }
  }
  return inside;
}

double Polygon::SignedArea() const {
  double twice_area = 0.0;
  const size_t n = vertices_.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    twice_area += vertices_[j].x * vertices_[i].y - vertices_[i].x * vertices_[j].y;
  }
  return twice_area / 2.0;
}

}  // namespace sfa::geo
