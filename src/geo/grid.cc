#include "geo/grid.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::geo {

GridSpec::GridSpec(const Rect& extent, uint32_t nx, uint32_t ny)
    : extent_(extent),
      nx_(nx),
      ny_(ny),
      cell_w_(extent.width() / nx),
      cell_h_(extent.height() / ny) {}

Result<GridSpec> GridSpec::Create(const Rect& extent, uint32_t nx, uint32_t ny) {
  if (nx == 0 || ny == 0) {
    return Status::InvalidArgument(
        StrFormat("grid must have at least one cell per axis, got %u x %u", nx, ny));
  }
  if (!(extent.width() > 0.0) || !(extent.height() > 0.0)) {
    return Status::InvalidArgument("grid extent must have positive area, got " +
                                   extent.ToString());
  }
  if (static_cast<uint64_t>(nx) * ny > (1ULL << 31)) {
    return Status::InvalidArgument(
        StrFormat("grid of %u x %u cells exceeds the 2^31 cell budget", nx, ny));
  }
  return GridSpec(extent, nx, ny);
}

uint32_t GridSpec::ColumnOf(double x) const {
  double rel = (x - extent_.min_x) / cell_w_;
  auto col = static_cast<int64_t>(std::floor(rel));
  col = std::clamp<int64_t>(col, 0, static_cast<int64_t>(nx_) - 1);
  return static_cast<uint32_t>(col);
}

uint32_t GridSpec::RowOf(double y) const {
  double rel = (y - extent_.min_y) / cell_h_;
  auto row = static_cast<int64_t>(std::floor(rel));
  row = std::clamp<int64_t>(row, 0, static_cast<int64_t>(ny_) - 1);
  return static_cast<uint32_t>(row);
}

uint32_t GridSpec::CellOf(const Point& p) const {
  SFA_DCHECK(Covers(p));
  return RowOf(p.y) * nx_ + ColumnOf(p.x);
}

Rect GridSpec::CellRect(uint32_t cx, uint32_t cy) const {
  SFA_DCHECK(cx < nx_ && cy < ny_);
  return Rect(extent_.min_x + cx * cell_w_, extent_.min_y + cy * cell_h_,
              extent_.min_x + (cx + 1) * cell_w_, extent_.min_y + (cy + 1) * cell_h_);
}

Rect GridSpec::CellRectById(uint32_t cell_id) const {
  SFA_DCHECK(cell_id < num_cells());
  return CellRect(cell_id % nx_, cell_id / nx_);
}

std::vector<uint32_t> GridSpec::AssignCells(const std::vector<Point>& points) const {
  std::vector<uint32_t> cells(points.size(), kInvalidCell);
  for (size_t i = 0; i < points.size(); ++i) {
    if (Covers(points[i])) cells[i] = CellOf(points[i]);
  }
  return cells;
}

}  // namespace sfa::geo
