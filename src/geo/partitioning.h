// Axis-aligned rectangular partitionings of a bounding rectangle.
//
// A Partitioning is defined by sorted interior split coordinates on each
// axis; (s_x splits) x (s_y splits) produce (s_x+1)*(s_y+1) rectangular
// partitions that tile the extent. This is the region structure used both by
// the MeanVar baseline of Xie et al. (2022) and by the paper's §4.2
// partitioning-restricted audits.
#ifndef SFA_GEO_PARTITIONING_H_
#define SFA_GEO_PARTITIONING_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace sfa::geo {

class Partitioning {
 public:
  Partitioning() = default;

  /// Builds a partitioning from interior split coordinates. Splits must lie
  /// strictly inside the extent; they are sorted and deduplicated.
  static Result<Partitioning> Create(const Rect& extent, std::vector<double> x_splits,
                                     std::vector<double> y_splits);

  /// Regular g_x x g_y partitioning (equally spaced splits).
  static Result<Partitioning> Regular(const Rect& extent, uint32_t g_x, uint32_t g_y);

  /// Random partitioning with `num_x_splits` / `num_y_splits` interior splits
  /// drawn uniformly inside the extent (the construction used by the paper's
  /// §4.2: split counts drawn from U{10..40} by the caller).
  static Result<Partitioning> Random(const Rect& extent, uint32_t num_x_splits,
                                     uint32_t num_y_splits, Rng* rng);

  const Rect& extent() const { return extent_; }
  const std::vector<double>& x_splits() const { return x_splits_; }
  const std::vector<double>& y_splits() const { return y_splits_; }

  uint32_t columns() const { return static_cast<uint32_t>(x_splits_.size()) + 1; }
  uint32_t rows() const { return static_cast<uint32_t>(y_splits_.size()) + 1; }
  uint32_t num_partitions() const { return columns() * rows(); }

  /// Partition id of `p` (row-major, column fastest). Points outside the
  /// extent are clamped into the nearest boundary partition, mirroring
  /// GridSpec's closed max edge.
  uint32_t PartitionOf(const Point& p) const;

  /// Column index of x via binary search over x_splits.
  uint32_t ColumnOf(double x) const;
  /// Row index of y via binary search over y_splits.
  uint32_t RowOf(double y) const;

  /// Rectangle of partition (cx, cy).
  Rect PartitionRect(uint32_t cx, uint32_t cy) const;
  /// Rectangle of partition `id` (row-major).
  Rect PartitionRectById(uint32_t id) const;

  /// Partition id for every point (clamped as in PartitionOf).
  std::vector<uint32_t> AssignPartitions(const std::vector<Point>& points) const;

 private:
  Partitioning(const Rect& extent, std::vector<double> x_splits,
               std::vector<double> y_splits);

  Rect extent_;
  std::vector<double> x_splits_;
  std::vector<double> y_splits_;
};

/// Generates `count` random partitionings whose per-axis split counts are
/// drawn uniformly from [min_splits, max_splits] and whose split POSITIONS
/// are uniform random inside the extent.
Result<std::vector<Partitioning>> MakeRandomPartitionings(const Rect& extent,
                                                          uint32_t count,
                                                          uint32_t min_splits,
                                                          uint32_t max_splits,
                                                          Rng* rng);

/// Generates `count` REGULAR partitionings whose per-axis split counts are
/// drawn uniformly from [min_splits, max_splits] (splits equally spaced).
/// This is the construction of the paper's "Is it fair?" experiment (100
/// partitionings, splits in U{10..40}), matching the grid-aligned
/// partitionings of Xie et al.'s MeanVar.
Result<std::vector<Partitioning>> MakeRandomResolutionPartitionings(
    const Rect& extent, uint32_t count, uint32_t min_splits, uint32_t max_splits,
    Rng* rng);

}  // namespace sfa::geo

#endif  // SFA_GEO_PARTITIONING_H_
