// Geographic distance helpers. The paper works in degrees ("side lengths
// from 0.1 up to 2 degrees, roughly 10 to 200 kilometers"); these helpers
// make that degree <-> km correspondence explicit for reports.
#ifndef SFA_GEO_DISTANCE_H_
#define SFA_GEO_DISTANCE_H_

#include "geo/point.h"

namespace sfa::geo {

/// Mean Earth radius (km).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// Kilometers spanned by one degree of latitude (constant on the sphere).
inline constexpr double kKmPerDegreeLat = 111.195;

/// Great-circle distance in km between two (lon, lat) degree points
/// (haversine formula).
double HaversineKm(const Point& lonlat_a, const Point& lonlat_b);

/// Kilometers spanned by one degree of longitude at the given latitude.
double KmPerDegreeLonAt(double latitude_deg);

/// Euclidean distance in degree space (used when regions are defined in
/// degrees, as in the paper's square-scan experiment).
double EuclideanDegrees(const Point& a, const Point& b);

}  // namespace sfa::geo

#endif  // SFA_GEO_DISTANCE_H_
