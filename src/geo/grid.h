// Regular grid over a bounding rectangle: nx * ny equally sized cells with
// half-open edges, except that points on the global max edge are clamped into
// the last row/column so every point of the covered rect maps to a cell.
#ifndef SFA_GEO_GRID_H_
#define SFA_GEO_GRID_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace sfa::geo {

/// Row-major cell addressing: cell id = cy * nx + cx, with cx fastest.
class GridSpec {
 public:
  GridSpec() = default;

  /// Grid of nx x ny cells over `extent`. Requires nx, ny >= 1 and a
  /// non-degenerate extent.
  static Result<GridSpec> Create(const Rect& extent, uint32_t nx, uint32_t ny);

  const Rect& extent() const { return extent_; }
  uint32_t nx() const { return nx_; }
  uint32_t ny() const { return ny_; }
  uint32_t num_cells() const { return nx_ * ny_; }
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }

  /// True when `p` is inside the extent (closed on all edges for lookup
  /// convenience: max-edge points clamp into the last cell).
  bool Covers(const Point& p) const {
    return p.x >= extent_.min_x && p.x <= extent_.max_x && p.y >= extent_.min_y &&
           p.y <= extent_.max_y;
  }

  /// Cell id of `p`; requires Covers(p).
  uint32_t CellOf(const Point& p) const;

  /// Column of x coordinate (clamped into [0, nx-1]).
  uint32_t ColumnOf(double x) const;
  /// Row of y coordinate (clamped into [0, ny-1]).
  uint32_t RowOf(double y) const;

  /// Rectangle of cell (cx, cy).
  Rect CellRect(uint32_t cx, uint32_t cy) const;
  /// Rectangle of cell `cell_id` (row-major).
  Rect CellRectById(uint32_t cell_id) const;

  /// Assigns each point its cell id; points outside the extent get
  /// `kInvalidCell`.
  static constexpr uint32_t kInvalidCell = 0xFFFFFFFFu;
  std::vector<uint32_t> AssignCells(const std::vector<Point>& points) const;

 private:
  GridSpec(const Rect& extent, uint32_t nx, uint32_t ny);

  Rect extent_;
  uint32_t nx_ = 0;
  uint32_t ny_ = 0;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
};

}  // namespace sfa::geo

#endif  // SFA_GEO_GRID_H_
