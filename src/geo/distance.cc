#include "geo/distance.h"

#include <cmath>

namespace sfa::geo {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
}

double HaversineKm(const Point& a, const Point& b) {
  const double lat1 = a.y * kDegToRad;
  const double lat2 = b.y * kDegToRad;
  const double dlat = (b.y - a.y) * kDegToRad;
  const double dlon = (b.x - a.x) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

double KmPerDegreeLonAt(double latitude_deg) {
  return kKmPerDegreeLat * std::cos(latitude_deg * kDegToRad);
}

double EuclideanDegrees(const Point& a, const Point& b) { return a.DistanceTo(b); }

}  // namespace sfa::geo
