#include "geo/partitioning.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::geo {

namespace {

// Sorts, deduplicates, and validates interior splits for one axis.
Status NormalizeSplits(double lo, double hi, std::vector<double>* splits) {
  std::sort(splits->begin(), splits->end());
  splits->erase(std::unique(splits->begin(), splits->end()), splits->end());
  for (double s : *splits) {
    if (!(s > lo) || !(s < hi)) {
      return Status::InvalidArgument(
          StrFormat("split %.6f not strictly inside (%.6f, %.6f)", s, lo, hi));
    }
  }
  return Status::OK();
}

}  // namespace

Partitioning::Partitioning(const Rect& extent, std::vector<double> x_splits,
                           std::vector<double> y_splits)
    : extent_(extent), x_splits_(std::move(x_splits)), y_splits_(std::move(y_splits)) {}

Result<Partitioning> Partitioning::Create(const Rect& extent,
                                          std::vector<double> x_splits,
                                          std::vector<double> y_splits) {
  if (!(extent.width() > 0.0) || !(extent.height() > 0.0)) {
    return Status::InvalidArgument("partitioning extent must have positive area");
  }
  SFA_RETURN_NOT_OK(NormalizeSplits(extent.min_x, extent.max_x, &x_splits));
  SFA_RETURN_NOT_OK(NormalizeSplits(extent.min_y, extent.max_y, &y_splits));
  return Partitioning(extent, std::move(x_splits), std::move(y_splits));
}

Result<Partitioning> Partitioning::Regular(const Rect& extent, uint32_t g_x,
                                           uint32_t g_y) {
  if (g_x == 0 || g_y == 0) {
    return Status::InvalidArgument("regular partitioning needs >= 1 cell per axis");
  }
  std::vector<double> xs, ys;
  xs.reserve(g_x - 1);
  ys.reserve(g_y - 1);
  for (uint32_t i = 1; i < g_x; ++i) {
    xs.push_back(extent.min_x + extent.width() * i / g_x);
  }
  for (uint32_t j = 1; j < g_y; ++j) {
    ys.push_back(extent.min_y + extent.height() * j / g_y);
  }
  return Create(extent, std::move(xs), std::move(ys));
}

Result<Partitioning> Partitioning::Random(const Rect& extent, uint32_t num_x_splits,
                                          uint32_t num_y_splits, Rng* rng) {
  SFA_CHECK(rng != nullptr);
  std::vector<double> xs, ys;
  xs.reserve(num_x_splits);
  ys.reserve(num_y_splits);
  for (uint32_t i = 0; i < num_x_splits; ++i) {
    xs.push_back(rng->Uniform(extent.min_x, extent.max_x));
  }
  for (uint32_t j = 0; j < num_y_splits; ++j) {
    ys.push_back(rng->Uniform(extent.min_y, extent.max_y));
  }
  // Uniform draws can collide with the boundary only with probability 0;
  // duplicates are removed by Create.
  return Create(extent, std::move(xs), std::move(ys));
}

uint32_t Partitioning::ColumnOf(double x) const {
  auto it = std::upper_bound(x_splits_.begin(), x_splits_.end(), x);
  return static_cast<uint32_t>(it - x_splits_.begin());
}

uint32_t Partitioning::RowOf(double y) const {
  auto it = std::upper_bound(y_splits_.begin(), y_splits_.end(), y);
  return static_cast<uint32_t>(it - y_splits_.begin());
}

uint32_t Partitioning::PartitionOf(const Point& p) const {
  return RowOf(p.y) * columns() + ColumnOf(p.x);
}

Rect Partitioning::PartitionRect(uint32_t cx, uint32_t cy) const {
  SFA_DCHECK(cx < columns() && cy < rows());
  const double x0 = cx == 0 ? extent_.min_x : x_splits_[cx - 1];
  const double x1 = cx == columns() - 1 ? extent_.max_x : x_splits_[cx];
  const double y0 = cy == 0 ? extent_.min_y : y_splits_[cy - 1];
  const double y1 = cy == rows() - 1 ? extent_.max_y : y_splits_[cy];
  return Rect(x0, y0, x1, y1);
}

Rect Partitioning::PartitionRectById(uint32_t id) const {
  SFA_DCHECK(id < num_partitions());
  return PartitionRect(id % columns(), id / columns());
}

std::vector<uint32_t> Partitioning::AssignPartitions(
    const std::vector<Point>& points) const {
  std::vector<uint32_t> out(points.size());
  for (size_t i = 0; i < points.size(); ++i) out[i] = PartitionOf(points[i]);
  return out;
}

Result<std::vector<Partitioning>> MakeRandomPartitionings(const Rect& extent,
                                                          uint32_t count,
                                                          uint32_t min_splits,
                                                          uint32_t max_splits,
                                                          Rng* rng) {
  SFA_CHECK(rng != nullptr);
  if (min_splits > max_splits) {
    return Status::InvalidArgument(
        StrFormat("min_splits %u > max_splits %u", min_splits, max_splits));
  }
  std::vector<Partitioning> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const auto sx = static_cast<uint32_t>(rng->UniformInt(min_splits, max_splits));
    const auto sy = static_cast<uint32_t>(rng->UniformInt(min_splits, max_splits));
    SFA_ASSIGN_OR_RETURN(Partitioning p, Partitioning::Random(extent, sx, sy, rng));
    out.push_back(std::move(p));
  }
  return out;
}

Result<std::vector<Partitioning>> MakeRandomResolutionPartitionings(
    const Rect& extent, uint32_t count, uint32_t min_splits, uint32_t max_splits,
    Rng* rng) {
  SFA_CHECK(rng != nullptr);
  if (min_splits > max_splits) {
    return Status::InvalidArgument(
        StrFormat("min_splits %u > max_splits %u", min_splits, max_splits));
  }
  std::vector<Partitioning> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const auto sx = static_cast<uint32_t>(rng->UniformInt(min_splits, max_splits));
    const auto sy = static_cast<uint32_t>(rng->UniformInt(min_splits, max_splits));
    SFA_ASSIGN_OR_RETURN(Partitioning p,
                         Partitioning::Regular(extent, sx + 1, sy + 1));
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace sfa::geo
