// Simple (non-self-intersecting) polygon with even-odd point-in-polygon
// testing. Used for coarse state outlines (e.g. Florida for the SemiSynth
// dataset); not a general-purpose computational-geometry kernel.
#ifndef SFA_GEO_POLYGON_H_
#define SFA_GEO_POLYGON_H_

#include <vector>

#include "common/status.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace sfa::geo {

class Polygon {
 public:
  Polygon() = default;

  /// Builds a polygon from its vertex ring (implicitly closed; do not repeat
  /// the first vertex). Requires >= 3 vertices.
  static Result<Polygon> Create(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  const Rect& bounding_box() const { return bbox_; }

  /// Even-odd (ray casting) membership test. Boundary points may land on
  /// either side; this is acceptable for sampling use cases.
  bool Contains(const Point& p) const;

  /// Signed area via the shoelace formula (positive for counter-clockwise
  /// vertex order).
  double SignedArea() const;

  /// Absolute area.
  double Area() const { return SignedArea() < 0 ? -SignedArea() : SignedArea(); }

 private:
  explicit Polygon(std::vector<Point> vertices);

  std::vector<Point> vertices_;
  Rect bbox_;
};

}  // namespace sfa::geo

#endif  // SFA_GEO_POLYGON_H_
