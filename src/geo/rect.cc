#include "geo/rect.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"

namespace sfa::geo {

Rect Rect::CenteredSquare(const Point& center, double side) {
  const double half = side / 2.0;
  return Rect(center.x - half, center.y - half, center.x + half, center.y + half);
}

Rect Rect::BoundingBox(const std::vector<Point>& points) {
  if (points.empty()) return Rect();
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();
  for (const Point& p : points) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  return Rect(min_x, min_y, max_x, max_y);
}

Rect Rect::Intersection(const Rect& other) const {
  Rect out(std::max(min_x, other.min_x), std::max(min_y, other.min_y),
           std::min(max_x, other.max_x), std::min(max_y, other.max_y));
  if (out.max_x < out.min_x) out.max_x = out.min_x;
  if (out.max_y < out.min_y) out.max_y = out.min_y;
  return out;
}

Rect Rect::Union(const Rect& other) const {
  return Rect(std::min(min_x, other.min_x), std::min(min_y, other.min_y),
              std::max(max_x, other.max_x), std::max(max_y, other.max_y));
}

Rect Rect::Expanded(double margin) const {
  return Rect(min_x - margin, min_y - margin, max_x + margin, max_y + margin);
}

std::string Rect::ToString() const {
  return StrFormat("[%.4f, %.4f] x [%.4f, %.4f]", min_x, max_x, min_y, max_y);
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << r.ToString();
}

}  // namespace sfa::geo
