// 2-d prefix sums (summed-area table) over per-cell values of a regular
// grid, enabling O(1) aggregation over any axis-aligned block of cells.
#ifndef SFA_SPATIAL_PREFIX_SUM_2D_H_
#define SFA_SPATIAL_PREFIX_SUM_2D_H_

#include <cstdint>
#include <vector>

namespace sfa::spatial {

/// Summed-area table over an nx x ny row-major value array.
class PrefixSum2D {
 public:
  PrefixSum2D() = default;

  /// Builds from row-major `values` of an nx x ny grid (values.size() must be
  /// nx*ny).
  PrefixSum2D(uint32_t nx, uint32_t ny, const std::vector<uint32_t>& values);

  /// Rebuilds in place from new `values`, reusing the table storage when the
  /// dimensions are unchanged — the per-world refill path of the rectangle
  /// sweep's Monte Carlo counting (no allocation after the first world).
  void Rebuild(uint32_t nx, uint32_t ny, const std::vector<uint32_t>& values);

  /// Same, from a raw row-major array of nx*ny values.
  void Rebuild(uint32_t nx, uint32_t ny, const uint32_t* values);

  uint32_t nx() const { return nx_; }
  uint32_t ny() const { return ny_; }

  /// Sum of values over cell columns [cx0, cx1) and rows [cy0, cy1).
  /// Requires cx0 <= cx1 <= nx and cy0 <= cy1 <= ny.
  uint64_t SumRange(uint32_t cx0, uint32_t cy0, uint32_t cx1, uint32_t cy1) const;

  /// Sum over the whole grid.
  uint64_t Total() const { return SumRange(0, 0, nx_, ny_); }

 private:
  // table_ has (nx+1) x (ny+1) entries; table_[(y)*(nx_+1)+x] = sum of the
  // block [0,x) x [0,y).
  uint32_t nx_ = 0;
  uint32_t ny_ = 0;
  std::vector<uint64_t> table_;
};

}  // namespace sfa::spatial

#endif  // SFA_SPATIAL_PREFIX_SUM_2D_H_
