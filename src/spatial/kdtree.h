// Static 2-d KD-tree over a point set, supporting rectangle range counting,
// range reporting, and nearest-neighbor queries. The tree is built once
// (median splits, O(n log n)) and is immutable afterwards; subtree sizes are
// stored so fully-covered subtrees count in O(1), giving the O(sqrt(n) + k)
// classic range-search bound.
//
// Rectangle semantics are half-open (geo::Rect::Contains).
#ifndef SFA_SPATIAL_KDTREE_H_
#define SFA_SPATIAL_KDTREE_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"

namespace sfa::spatial {

class KdTree {
 public:
  KdTree() = default;

  /// Builds a tree over `points`. Point ids are indices into this vector and
  /// are preserved across queries. The point vector is copied.
  explicit KdTree(std::vector<geo::Point> points);

  size_t size() const { return points_.size(); }
  const std::vector<geo::Point>& points() const { return points_; }

  /// Number of points inside `rect`.
  size_t CountInRect(const geo::Rect& rect) const;

  /// Ids of all points inside `rect`, in unspecified order.
  std::vector<uint32_t> ReportRect(const geo::Rect& rect) const;

  /// Invokes visitor(id) for every point inside `rect`.
  template <typename Visitor>
  void VisitRect(const geo::Rect& rect, Visitor&& visitor) const {
    if (!nodes_.empty()) {
      VisitRecursive(0, bounds_, rect, visitor);
    }
  }

  /// Id of the nearest point to `query` (Euclidean). Requires size() > 0.
  uint32_t Nearest(const geo::Point& query) const;

  /// Ids of the k nearest points to `query`, ordered by increasing distance
  /// (ties broken arbitrarily). Requires 1 <= k <= size().
  std::vector<uint32_t> KNearest(const geo::Point& query, size_t k) const;

 private:
  struct Node {
    // Children are at 2i+1 / 2i+2 in an implicit layout only for a perfectly
    // balanced tree; we store explicit links because median splits on
    // duplicate coordinates can unbalance slightly.
    int32_t left = -1;
    int32_t right = -1;
    uint32_t begin = 0;   // range [begin, end) into ids_ covered by this node
    uint32_t end = 0;
    uint32_t split_id = 0;  // the point stored at this node
    uint8_t axis = 0;       // 0 = x, 1 = y
  };

  int32_t Build(uint32_t begin, uint32_t end, int depth);
  void CountRecursive(int32_t node, const geo::Rect& node_bounds,
                      const geo::Rect& query, size_t* count) const;

  template <typename Visitor>
  void VisitRecursive(int32_t node_index, const geo::Rect& node_bounds,
                      const geo::Rect& query, Visitor&& visitor) const {
    const Node& node = nodes_[static_cast<size_t>(node_index)];
    if (!node_bounds.Intersects(query)) return;
    if (query.ContainsRect(node_bounds)) {
      for (uint32_t i = node.begin; i < node.end; ++i) visitor(ids_[i]);
      return;
    }
    const geo::Point& p = points_[node.split_id];
    if (query.Contains(p)) visitor(node.split_id);
    geo::Rect left_bounds = node_bounds;
    geo::Rect right_bounds = node_bounds;
    if (node.axis == 0) {
      left_bounds.max_x = p.x;
      right_bounds.min_x = p.x;
    } else {
      left_bounds.max_y = p.y;
      right_bounds.min_y = p.y;
    }
    if (node.left >= 0) VisitRecursive(node.left, left_bounds, query, visitor);
    if (node.right >= 0) VisitRecursive(node.right, right_bounds, query, visitor);
  }

  void NearestRecursive(int32_t node_index, const geo::Point& query,
                        uint32_t* best_id, double* best_dist_sq) const;

  // Bounded max-heap of (distance², id) used by KNearest.
  struct HeapEntry {
    double dist_sq;
    uint32_t id;
    bool operator<(const HeapEntry& other) const {
      return dist_sq < other.dist_sq;
    }
  };
  void KNearestRecursive(int32_t node_index, const geo::Point& query, size_t k,
                         std::vector<HeapEntry>* heap) const;

  std::vector<geo::Point> points_;
  std::vector<uint32_t> ids_;  // permutation of point ids in tree order
  std::vector<Node> nodes_;
  geo::Rect bounds_;
};

}  // namespace sfa::spatial

#endif  // SFA_SPATIAL_KDTREE_H_
