#include "spatial/grid_index.h"

#include "common/macros.h"

namespace sfa::spatial {

GridIndex::GridIndex(const geo::GridSpec& grid, const std::vector<geo::Point>& points)
    : grid_(grid), cell_of_point_(grid.AssignCells(points)) {
  const uint32_t num_cells = grid_.num_cells();
  std::vector<uint32_t> counts(num_cells, 0);
  for (uint32_t cell : cell_of_point_) {
    if (cell == geo::GridSpec::kInvalidCell) {
      ++num_unassigned_;
    } else {
      ++counts[cell];
    }
  }
  cell_start_.assign(num_cells + 1, 0);
  for (uint32_t c = 0; c < num_cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  ids_by_cell_.resize(cell_of_point_.size() - num_unassigned_);
  std::vector<uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (uint32_t i = 0; i < cell_of_point_.size(); ++i) {
    const uint32_t cell = cell_of_point_[i];
    if (cell != geo::GridSpec::kInvalidCell) {
      ids_by_cell_[cursor[cell]++] = i;
    }
  }
}

std::span<const uint32_t> GridIndex::PointsInCell(uint32_t cell_id) const {
  SFA_DCHECK(cell_id < grid_.num_cells());
  return {ids_by_cell_.data() + cell_start_[cell_id],
          ids_by_cell_.data() + cell_start_[cell_id + 1]};
}

std::vector<uint32_t> GridIndex::CountsPerCell() const {
  const uint32_t num_cells = grid_.num_cells();
  std::vector<uint32_t> counts(num_cells);
  for (uint32_t c = 0; c < num_cells; ++c) {
    counts[c] = cell_start_[c + 1] - cell_start_[c];
  }
  return counts;
}

void GridIndex::AccumulateLabelCounts(const std::vector<uint8_t>& labels,
                                      std::vector<uint32_t>* out) const {
  SFA_CHECK(out != nullptr);
  SFA_CHECK_MSG(labels.size() == cell_of_point_.size(),
                "labels size " << labels.size() << " != points "
                               << cell_of_point_.size());
  SFA_CHECK(out->size() == grid_.num_cells());
  std::fill(out->begin(), out->end(), 0u);
  for (uint32_t i = 0; i < cell_of_point_.size(); ++i) {
    const uint32_t cell = cell_of_point_[i];
    if (cell != geo::GridSpec::kInvalidCell && labels[i] != 0) {
      ++(*out)[cell];
    }
  }
}

}  // namespace sfa::spatial
