#include "spatial/bitvector.h"

#include <bit>
#include <cstring>

#include "common/macros.h"
#include "spatial/simd_popcount.h"

namespace sfa::spatial {

BitVector::BitVector(size_t size) : size_(size), words_((size + 63) / 64, 0ULL) {}

BitVector BitVector::FromBools(const std::vector<uint8_t>& bools) {
  BitVector bv(bools.size());
  for (size_t i = 0; i < bools.size(); ++i) {
    if (bools[i]) bv.Set(i);
  }
  return bv;
}

void BitVector::Reset() { std::fill(words_.begin(), words_.end(), 0ULL); }

void BitVector::AssignFromBytes(const uint8_t* bytes, size_t n) {
  if (size_ != n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0ULL);
  }
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t word = 0;
    const uint8_t* chunk_base = bytes + w * 64;
    for (size_t g = 0; g < 8; ++g) {
      // Gather 8 label bytes at once; the multiply shifts each byte's LSB
      // into the top byte's consecutive bit lanes (little-endian SWAR).
      uint64_t chunk;
      std::memcpy(&chunk, chunk_base + g * 8, 8);
      const uint64_t bits8 =
          ((chunk & 0x0101010101010101ULL) * 0x0102040810204080ULL) >> 56;
      word |= bits8 << (g * 8);
    }
    words_[w] = word;
  }
  if (n % 64 != 0) {
    uint64_t word = 0;
    for (size_t i = full_words * 64; i < n; ++i) {
      word |= static_cast<uint64_t>(bytes[i] & 1) << (i & 63);
    }
    words_[full_words] = word;  // tail bits beyond size_ stay zero
  }
}

void BitVector::AssignFromByteValue(const uint8_t* bytes, size_t n,
                                    uint8_t value) {
  if (size_ != n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0ULL);
  }
  // Per-byte equality without cross-byte borrows: after XOR with the
  // broadcast value, byte b equals `value` iff b == 0, and
  // ((b & 0x7f) + 0x7f) | b has its high bit clear exactly when b == 0 (the
  // 7-bit add cannot carry out of the byte). The same multiply as
  // AssignFromBytes then gathers the eight per-byte flags into bit lanes.
  const uint64_t broadcast = 0x0101010101010101ULL * value;
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t word = 0;
    const uint8_t* chunk_base = bytes + w * 64;
    for (size_t g = 0; g < 8; ++g) {
      uint64_t chunk;
      std::memcpy(&chunk, chunk_base + g * 8, 8);
      const uint64_t x = chunk ^ broadcast;
      const uint64_t nonzero_high =
          ((x & 0x7f7f7f7f7f7f7f7fULL) + 0x7f7f7f7f7f7f7f7fULL) | x;
      const uint64_t eq = ~nonzero_high & 0x8080808080808080ULL;
      word |= (((eq >> 7) * 0x0102040810204080ULL) >> 56) << (g * 8);
    }
    words_[w] = word;
  }
  if (n % 64 != 0) {
    uint64_t word = 0;
    for (size_t i = full_words * 64; i < n; ++i) {
      word |= static_cast<uint64_t>(bytes[i] == value ? 1 : 0) << (i & 63);
    }
    words_[full_words] = word;  // tail bits beyond size_ stay zero
  }
}

size_t BitVector::Popcount() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

size_t BitVector::AndPopcount(const BitVector& a, const BitVector& b) {
  SFA_DCHECK(a.size_ == b.size_);
  return static_cast<size_t>(
      AndPopcountWords(a.words_.data(), b.words_.data(), a.words_.size()));
}

void BitVector::AndPopcountMany(const BitVector& a, const BitVector* const* batch,
                                size_t count, uint64_t* out) {
  // Validate every entry up front, and unconditionally: a mis-sized vector
  // anywhere in the batch would make the word-blocked kernel read past its
  // storage, so this must hold in release builds too (the check loop is
  // O(count), noise next to the O(count * words) popcount work).
  for (size_t b = 0; b < count; ++b) {
    SFA_CHECK_MSG(batch[b]->size_ == a.size_,
                  "AndPopcountMany: batch entry size mismatch");
  }
  const size_t num_words = a.words_.size();
  const uint64_t* aw = a.words_.data();
  // Process worlds in blocks of 4 so each word of `a` is loaded once per block
  // while four accumulators stay in registers (SIMD-dispatched kernel).
  size_t b = 0;
  for (; b + 4 <= count; b += 4) {
    AndPopcountWords4(aw, batch[b]->words_.data(), batch[b + 1]->words_.data(),
                      batch[b + 2]->words_.data(), batch[b + 3]->words_.data(),
                      num_words, out + b);
  }
  for (; b < count; ++b) {
    out[b] = AndPopcountWords(aw, batch[b]->words_.data(), num_words);
  }
}

size_t BitVector::AndNotPopcount(const BitVector& a, const BitVector& b) {
  SFA_DCHECK(a.size_ == b.size_);
  size_t total = 0;
  const size_t n = a.words_.size();
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a.words_[i] & ~b.words_[i]));
  }
  return total;
}

void BitVector::OrWith(const BitVector& other) {
  SFA_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AndWith(const BitVector& other) {
  SFA_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

std::vector<uint32_t> BitVector::ToIndices() const {
  std::vector<uint32_t> out;
  out.reserve(Popcount());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace sfa::spatial
