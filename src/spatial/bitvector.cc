#include "spatial/bitvector.h"

#include <bit>
#include <cstring>

#include "common/macros.h"

namespace sfa::spatial {

BitVector::BitVector(size_t size) : size_(size), words_((size + 63) / 64, 0ULL) {}

BitVector BitVector::FromBools(const std::vector<uint8_t>& bools) {
  BitVector bv(bools.size());
  for (size_t i = 0; i < bools.size(); ++i) {
    if (bools[i]) bv.Set(i);
  }
  return bv;
}

void BitVector::Reset() { std::fill(words_.begin(), words_.end(), 0ULL); }

void BitVector::AssignFromBytes(const uint8_t* bytes, size_t n) {
  if (size_ != n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0ULL);
  }
  const size_t full_words = n / 64;
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t word = 0;
    const uint8_t* chunk_base = bytes + w * 64;
    for (size_t g = 0; g < 8; ++g) {
      // Gather 8 label bytes at once; the multiply shifts each byte's LSB
      // into the top byte's consecutive bit lanes (little-endian SWAR).
      uint64_t chunk;
      std::memcpy(&chunk, chunk_base + g * 8, 8);
      const uint64_t bits8 =
          ((chunk & 0x0101010101010101ULL) * 0x0102040810204080ULL) >> 56;
      word |= bits8 << (g * 8);
    }
    words_[w] = word;
  }
  if (n % 64 != 0) {
    uint64_t word = 0;
    for (size_t i = full_words * 64; i < n; ++i) {
      word |= static_cast<uint64_t>(bytes[i] & 1) << (i & 63);
    }
    words_[full_words] = word;  // tail bits beyond size_ stay zero
  }
}

size_t BitVector::Popcount() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

size_t BitVector::AndPopcount(const BitVector& a, const BitVector& b) {
  SFA_DCHECK(a.size_ == b.size_);
  size_t total = 0;
  const size_t n = a.words_.size();
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a.words_[i] & b.words_[i]));
  }
  return total;
}

void BitVector::AndPopcountMany(const BitVector& a, const BitVector* const* batch,
                                size_t count, uint64_t* out) {
  const size_t num_words = a.words_.size();
  // Process worlds in blocks of 4 so the accumulators live in registers while
  // each word of `a` is loaded exactly once per block.
  size_t b = 0;
  for (; b + 4 <= count; b += 4) {
    SFA_DCHECK(batch[b]->size_ == a.size_);
    uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
    const uint64_t* w0 = batch[b]->words_.data();
    const uint64_t* w1 = batch[b + 1]->words_.data();
    const uint64_t* w2 = batch[b + 2]->words_.data();
    const uint64_t* w3 = batch[b + 3]->words_.data();
    for (size_t i = 0; i < num_words; ++i) {
      const uint64_t aw = a.words_[i];
      acc0 += static_cast<uint64_t>(std::popcount(aw & w0[i]));
      acc1 += static_cast<uint64_t>(std::popcount(aw & w1[i]));
      acc2 += static_cast<uint64_t>(std::popcount(aw & w2[i]));
      acc3 += static_cast<uint64_t>(std::popcount(aw & w3[i]));
    }
    out[b] = acc0;
    out[b + 1] = acc1;
    out[b + 2] = acc2;
    out[b + 3] = acc3;
  }
  for (; b < count; ++b) {
    out[b] = AndPopcount(a, *batch[b]);
  }
}

size_t BitVector::AndNotPopcount(const BitVector& a, const BitVector& b) {
  SFA_DCHECK(a.size_ == b.size_);
  size_t total = 0;
  const size_t n = a.words_.size();
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a.words_[i] & ~b.words_[i]));
  }
  return total;
}

void BitVector::OrWith(const BitVector& other) {
  SFA_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AndWith(const BitVector& other) {
  SFA_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

std::vector<uint32_t> BitVector::ToIndices() const {
  std::vector<uint32_t> out;
  out.reserve(Popcount());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace sfa::spatial
