#include "spatial/bitvector.h"

#include <bit>

#include "common/macros.h"

namespace sfa::spatial {

BitVector::BitVector(size_t size) : size_(size), words_((size + 63) / 64, 0ULL) {}

BitVector BitVector::FromBools(const std::vector<uint8_t>& bools) {
  BitVector bv(bools.size());
  for (size_t i = 0; i < bools.size(); ++i) {
    if (bools[i]) bv.Set(i);
  }
  return bv;
}

void BitVector::Reset() { std::fill(words_.begin(), words_.end(), 0ULL); }

size_t BitVector::Popcount() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

size_t BitVector::AndPopcount(const BitVector& a, const BitVector& b) {
  SFA_DCHECK(a.size_ == b.size_);
  size_t total = 0;
  const size_t n = a.words_.size();
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a.words_[i] & b.words_[i]));
  }
  return total;
}

size_t BitVector::AndNotPopcount(const BitVector& a, const BitVector& b) {
  SFA_DCHECK(a.size_ == b.size_);
  size_t total = 0;
  const size_t n = a.words_.size();
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(std::popcount(a.words_[i] & ~b.words_[i]));
  }
  return total;
}

void BitVector::OrWith(const BitVector& other) {
  SFA_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AndWith(const BitVector& other) {
  SFA_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

std::vector<uint32_t> BitVector::ToIndices() const {
  std::vector<uint32_t> out;
  out.reserve(Popcount());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace sfa::spatial
