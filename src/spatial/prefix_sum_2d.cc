#include "spatial/prefix_sum_2d.h"

#include "common/macros.h"

namespace sfa::spatial {

PrefixSum2D::PrefixSum2D(uint32_t nx, uint32_t ny, const std::vector<uint32_t>& values) {
  Rebuild(nx, ny, values);
}

void PrefixSum2D::Rebuild(uint32_t nx, uint32_t ny,
                          const std::vector<uint32_t>& values) {
  SFA_CHECK_MSG(values.size() == static_cast<size_t>(nx) * ny,
                "values size " << values.size() << " != " << nx << "*" << ny);
  Rebuild(nx, ny, values.data());
}

void PrefixSum2D::Rebuild(uint32_t nx, uint32_t ny, const uint32_t* values) {
  SFA_CHECK(values != nullptr);
  // The first row and column stay zero; every other entry is overwritten
  // below, so the zero-fill is only needed when the layout changes. Dimension
  // changes must refill even at equal table size (e.g. 2x3 -> 3x2): the new
  // layout's first row/column would otherwise alias stale interior sums.
  const size_t wanted = static_cast<size_t>(nx + 1) * (ny + 1);
  if (table_.size() != wanted || nx != nx_ || ny != ny_) {
    table_.assign(wanted, 0ULL);
  }
  nx_ = nx;
  ny_ = ny;
  const size_t stride = nx_ + 1;
  for (uint32_t y = 0; y < ny_; ++y) {
    uint64_t row_sum = 0;
    for (uint32_t x = 0; x < nx_; ++x) {
      row_sum += values[static_cast<size_t>(y) * nx_ + x];
      table_[(y + 1) * stride + (x + 1)] = table_[y * stride + (x + 1)] + row_sum;
    }
  }
}

uint64_t PrefixSum2D::SumRange(uint32_t cx0, uint32_t cy0, uint32_t cx1,
                               uint32_t cy1) const {
  SFA_DCHECK(cx0 <= cx1 && cx1 <= nx_);
  SFA_DCHECK(cy0 <= cy1 && cy1 <= ny_);
  const size_t stride = nx_ + 1;
  return table_[cy1 * stride + cx1] - table_[cy0 * stride + cx1] -
         table_[cy1 * stride + cx0] + table_[cy0 * stride + cx0];
}

}  // namespace sfa::spatial
