// Dynamic fixed-length bit vector with hardware popcount.
//
// This is the workhorse of Monte Carlo recounting for memoized region
// families: a region's membership is a BitVector over point ids, a world's
// labels are another, and p(R) = AndPopcount(membership, labels) — one AND +
// POPCNT per 64 points, so re-evaluating 2,000 regions over 200k points costs
// a few milliseconds per world.
#ifndef SFA_SPATIAL_BITVECTOR_H_
#define SFA_SPATIAL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sfa::spatial {

class BitVector {
 public:
  BitVector() = default;

  /// Creates a vector of `size` bits, all zero.
  explicit BitVector(size_t size);

  /// Builds from a bool vector (bit i = bools[i]).
  static BitVector FromBools(const std::vector<uint8_t>& bools);

  /// Rebuilds the vector from `n` 0/1 bytes, packing one 64-bit word per 8
  /// byte-loads (SWAR, no per-bit read-modify-write) and reusing existing
  /// word storage when the size already matches — the allocation-free refill
  /// path of the Monte Carlo label pool.
  void AssignFromBytes(const uint8_t* bytes, size_t n);

  /// Rebuilds the vector as the equality indicator of a class-code array:
  /// bit i = (bytes[i] == value). Same SWAR/no-allocation contract as
  /// AssignFromBytes — this is how the dense counting backend packs one class
  /// of a packed K-class world into a bit plane.
  void AssignFromByteValue(const uint8_t* bytes, size_t n, uint8_t value);

  size_t size() const { return size_; }
  size_t num_words() const { return words_.size(); }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  void Assign(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Sets all bits to zero without changing the size.
  void Reset();

  /// Number of set bits.
  size_t Popcount() const;

  /// Number of positions set in both `a` and `b`. Sizes must match.
  static size_t AndPopcount(const BitVector& a, const BitVector& b);

  /// Batched intersection counts: out[b] = AndPopcount(a, *batch[b]) for all
  /// `count` vectors, word-blocked so each word of `a` is loaded once and
  /// intersected against every world — the memory-traffic-amortized kernel of
  /// batched Monte Carlo recounting. All sizes must match `a`.
  static void AndPopcountMany(const BitVector& a, const BitVector* const* batch,
                              size_t count, uint64_t* out);

  /// Number of positions set in `a` but not in `b`. Sizes must match.
  static size_t AndNotPopcount(const BitVector& a, const BitVector& b);

  /// In-place OR with `other` (sizes must match).
  void OrWith(const BitVector& other);

  /// In-place AND with `other` (sizes must match).
  void AndWith(const BitVector& other);

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToIndices() const;

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  const uint64_t* words() const { return words_.data(); }

 private:
  // Bits beyond size_ in the last word are maintained as zero so popcounts
  // need no masking.
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sfa::spatial

#endif  // SFA_SPATIAL_BITVECTOR_H_
