// Compressed-sparse-row storage over uint32 payloads, built by counting
// sort from unordered (row, value) pairs.
//
// This is the storage backbone of the sparse annulus counting backend
// (core/annulus_index.h): one CSR row per point, holding the region slots the
// point scatters into. Kept generic — any bipartite incidence whose rows and
// values fit in 32 bits can use it.
#ifndef SFA_SPATIAL_CSR_H_
#define SFA_SPATIAL_CSR_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sfa::spatial {

/// Row-major CSR: the values of row r live in
/// values[offsets[r] .. offsets[r + 1]).
struct Csr32 {
  std::vector<uint32_t> offsets;  // num_rows + 1 entries, offsets[0] == 0
  std::vector<uint32_t> values;

  size_t num_rows() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  size_t num_entries() const { return values.size(); }
  /// Heap footprint of the two arrays (the quantity the sparse backend's
  /// memory claims are stated in).
  size_t MemoryBytes() const {
    return offsets.capacity() * sizeof(uint32_t) +
           values.capacity() * sizeof(uint32_t);
  }
};

/// Builds a Csr32 from unordered (row, value) pairs in O(num_rows + entries)
/// by counting sort. Within a row, values keep the order they appear in
/// `entries` (the sort is stable), so deterministic input order gives a
/// deterministic layout. Rows must be < num_rows; entry count must fit in
/// uint32 (checked).
Csr32 BuildCsr32(size_t num_rows,
                 const std::vector<std::pair<uint32_t, uint32_t>>& entries);

}  // namespace sfa::spatial

#endif  // SFA_SPATIAL_CSR_H_
