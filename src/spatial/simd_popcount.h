// Runtime-dispatched AND+popcount kernels over 64-bit word arrays.
//
// This is the instruction-level layer under BitVector::AndPopcountMany: the
// batched Monte Carlo recount spends nearly all of its dense-backend time in
// popcount(a[i] & b[i]) reductions, so the word loop is worth vectorizing.
// Three implementations share one contract and are bit-identical (popcounts
// are integer-exact, so "identical" here is a hard guarantee, not a tolerance):
//
//   kScalar  — portable std::popcount loop, 4 accumulators (the reference).
//   kAvx2    — 256-bit AND + vpshufb nibble-LUT popcount + psadbw reduce.
//   kAvx512  — 512-bit AND + native vpopcntq (AVX-512 VPOPCNTDQ).
//
// Dispatch is resolved once per process from CPUID, overridable two ways:
//   * env  SFA_SIMD_POPCOUNT = scalar | avx2 | avx512 | auto   (read at first
//     use — this is the CI A/B escape hatch; unsupported tiers clamp down),
//   * code ForcePopcountKernel(k) — used by the fuzz tests to pin each arm.
//
// Kernels compiled with __attribute__((target(...))) function multiversioning,
// so no per-file -mavx* flags leak into the rest of the build; non-x86 builds
// (or toolchains failing the CMake probe) compile the scalar path only.
#ifndef SFA_SPATIAL_SIMD_POPCOUNT_H_
#define SFA_SPATIAL_SIMD_POPCOUNT_H_

#include <cstddef>
#include <cstdint>

namespace sfa::spatial {

enum class PopcountKernel : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// The kernel currently in effect (after env override and CPUID clamping).
PopcountKernel ActivePopcountKernel();

/// Forces a specific kernel; clamps to the best supported tier at or below
/// `kernel` and returns the previously active kernel (so tests can restore).
PopcountKernel ForcePopcountKernel(PopcountKernel kernel);

/// Human-readable kernel name ("scalar" / "avx2" / "avx512").
const char* PopcountKernelName(PopcountKernel kernel);

/// sum_i popcount(a[i] & b[i]) over `n` words, via the active kernel.
uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b, size_t n);

/// Four-stream variant: out4[s] = sum_i popcount(a[i] & b_s[i]). Each word of
/// `a` is loaded once and intersected against all four streams — the
/// register-blocked inner kernel of BitVector::AndPopcountMany.
void AndPopcountWords4(const uint64_t* a, const uint64_t* b0,
                       const uint64_t* b1, const uint64_t* b2,
                       const uint64_t* b3, size_t n, uint64_t* out4);

}  // namespace sfa::spatial

#endif  // SFA_SPATIAL_SIMD_POPCOUNT_H_
