#include "spatial/simd_popcount.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(SFA_X86_SIMD)
#include <immintrin.h>
#endif

namespace sfa::spatial {
namespace {

// ------------------------------------------------------------------ scalar ---

uint64_t ScalarAndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

void ScalarAndPopcount4(const uint64_t* a, const uint64_t* b0,
                        const uint64_t* b1, const uint64_t* b2,
                        const uint64_t* b3, size_t n, uint64_t* out4) {
  uint64_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t aw = a[i];
    acc0 += static_cast<uint64_t>(std::popcount(aw & b0[i]));
    acc1 += static_cast<uint64_t>(std::popcount(aw & b1[i]));
    acc2 += static_cast<uint64_t>(std::popcount(aw & b2[i]));
    acc3 += static_cast<uint64_t>(std::popcount(aw & b3[i]));
  }
  out4[0] = acc0;
  out4[1] = acc1;
  out4[2] = acc2;
  out4[3] = acc3;
}

#if defined(SFA_X86_SIMD)

// -------------------------------------------------------------------- AVX2 ---
// AVX2 has no vector popcount; the classic vpshufb nibble-LUT computes a
// per-byte popcount, and _mm256_sad_epu8 against zero horizontally sums each
// 8-byte lane into a 64-bit counter — one add per 32 bytes, no overflow for
// any realistic word count.

__attribute__((target("avx2"))) inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline uint64_t HorizontalSum256(__m256i v) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

__attribute__((target("avx2"))) uint64_t Avx2AndPopcount(const uint64_t* a,
                                                         const uint64_t* b,
                                                         size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(av, bv)));
  }
  uint64_t total = HorizontalSum256(acc);
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

__attribute__((target("avx2"))) void Avx2AndPopcount4(
    const uint64_t* a, const uint64_t* b0, const uint64_t* b1,
    const uint64_t* b2, const uint64_t* b3, size_t n, uint64_t* out4) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc0 = _mm256_add_epi64(
        acc0, Popcount256(_mm256_and_si256(
                  av, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(b0 + i)))));
    acc1 = _mm256_add_epi64(
        acc1, Popcount256(_mm256_and_si256(
                  av, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(b1 + i)))));
    acc2 = _mm256_add_epi64(
        acc2, Popcount256(_mm256_and_si256(
                  av, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(b2 + i)))));
    acc3 = _mm256_add_epi64(
        acc3, Popcount256(_mm256_and_si256(
                  av, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(b3 + i)))));
  }
  uint64_t t0 = HorizontalSum256(acc0);
  uint64_t t1 = HorizontalSum256(acc1);
  uint64_t t2 = HorizontalSum256(acc2);
  uint64_t t3 = HorizontalSum256(acc3);
  for (; i < n; ++i) {
    const uint64_t aw = a[i];
    t0 += static_cast<uint64_t>(std::popcount(aw & b0[i]));
    t1 += static_cast<uint64_t>(std::popcount(aw & b1[i]));
    t2 += static_cast<uint64_t>(std::popcount(aw & b2[i]));
    t3 += static_cast<uint64_t>(std::popcount(aw & b3[i]));
  }
  out4[0] = t0;
  out4[1] = t1;
  out4[2] = t2;
  out4[3] = t3;
}

// ------------------------------------------------------------------ AVX-512 ---
// VPOPCNTDQ gives a native 64-bit-lane popcount, so the kernel is a pure
// load/AND/popcount/add chain over 8-word chunks.

// GCC's avx512fintrin.h trips -Wuninitialized on its own internal
// _mm512_undefined temporaries when these intrinsics are expanded; the
// warning is in the system header, not this code.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"

__attribute__((target("avx512f,avx512vpopcntdq"))) uint64_t Avx512AndPopcount(
    const uint64_t* a, const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i av = _mm512_loadu_si512(a + i);
    const __m512i bv = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(av, bv)));
  }
  uint64_t total = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) void Avx512AndPopcount4(
    const uint64_t* a, const uint64_t* b0, const uint64_t* b1,
    const uint64_t* b2, const uint64_t* b3, size_t n, uint64_t* out4) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  __m512i acc2 = _mm512_setzero_si512();
  __m512i acc3 = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i av = _mm512_loadu_si512(a + i);
    acc0 = _mm512_add_epi64(
        acc0, _mm512_popcnt_epi64(
                  _mm512_and_si512(av, _mm512_loadu_si512(b0 + i))));
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(
                  _mm512_and_si512(av, _mm512_loadu_si512(b1 + i))));
    acc2 = _mm512_add_epi64(
        acc2, _mm512_popcnt_epi64(
                  _mm512_and_si512(av, _mm512_loadu_si512(b2 + i))));
    acc3 = _mm512_add_epi64(
        acc3, _mm512_popcnt_epi64(
                  _mm512_and_si512(av, _mm512_loadu_si512(b3 + i))));
  }
  uint64_t t0 = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc0));
  uint64_t t1 = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc1));
  uint64_t t2 = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc2));
  uint64_t t3 = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc3));
  for (; i < n; ++i) {
    const uint64_t aw = a[i];
    t0 += static_cast<uint64_t>(std::popcount(aw & b0[i]));
    t1 += static_cast<uint64_t>(std::popcount(aw & b1[i]));
    t2 += static_cast<uint64_t>(std::popcount(aw & b2[i]));
    t3 += static_cast<uint64_t>(std::popcount(aw & b3[i]));
  }
  out4[0] = t0;
  out4[1] = t1;
  out4[2] = t2;
  out4[3] = t3;
}

#pragma GCC diagnostic pop

#endif  // SFA_X86_SIMD

// ---------------------------------------------------------------- dispatch ---

using Fn1 = uint64_t (*)(const uint64_t*, const uint64_t*, size_t);
using Fn4 = void (*)(const uint64_t*, const uint64_t*, const uint64_t*,
                     const uint64_t*, const uint64_t*, size_t, uint64_t*);

struct KernelTable {
  PopcountKernel kind;
  Fn1 one;
  Fn4 four;
};

constexpr KernelTable kScalarTable = {PopcountKernel::kScalar,
                                      ScalarAndPopcount, ScalarAndPopcount4};
#if defined(SFA_X86_SIMD)
constexpr KernelTable kAvx2Table = {PopcountKernel::kAvx2, Avx2AndPopcount,
                                    Avx2AndPopcount4};
constexpr KernelTable kAvx512Table = {PopcountKernel::kAvx512,
                                      Avx512AndPopcount, Avx512AndPopcount4};
#endif

PopcountKernel BestSupportedKernel() {
#if defined(SFA_X86_SIMD)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return PopcountKernel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return PopcountKernel::kAvx2;
#endif
  return PopcountKernel::kScalar;
}

// Unsupported requests clamp DOWN to the best tier the CPU (and build) can
// actually run, never up — forcing "avx512" on an AVX2-only host yields avx2.
PopcountKernel ClampToSupported(PopcountKernel requested) {
  const PopcountKernel best = BestSupportedKernel();
  return static_cast<uint8_t>(requested) <= static_cast<uint8_t>(best)
             ? requested
             : best;
}

const KernelTable* TableFor(PopcountKernel kernel) {
  switch (ClampToSupported(kernel)) {
#if defined(SFA_X86_SIMD)
    case PopcountKernel::kAvx512:
      return &kAvx512Table;
    case PopcountKernel::kAvx2:
      return &kAvx2Table;
#endif
    default:
      return &kScalarTable;
  }
}

PopcountKernel KernelFromEnv() {
  const char* env = std::getenv("SFA_SIMD_POPCOUNT");
  if (env == nullptr || std::strcmp(env, "auto") == 0 || env[0] == '\0') {
    return BestSupportedKernel();
  }
  if (std::strcmp(env, "scalar") == 0) return PopcountKernel::kScalar;
  if (std::strcmp(env, "avx2") == 0) return PopcountKernel::kAvx2;
  if (std::strcmp(env, "avx512") == 0) return PopcountKernel::kAvx512;
  // Unknown value: fall back to auto rather than aborting a production run.
  return BestSupportedKernel();
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ActiveTable() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Benign first-use race: every thread resolves the same env+CPUID answer.
    table = TableFor(KernelFromEnv());
    g_active.store(table, std::memory_order_release);
  }
  return table;
}

}  // namespace

PopcountKernel ActivePopcountKernel() { return ActiveTable()->kind; }

PopcountKernel ForcePopcountKernel(PopcountKernel kernel) {
  const PopcountKernel previous = ActiveTable()->kind;
  g_active.store(TableFor(kernel), std::memory_order_release);
  return previous;
}

const char* PopcountKernelName(PopcountKernel kernel) {
  switch (kernel) {
    case PopcountKernel::kAvx512:
      return "avx512";
    case PopcountKernel::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  return ActiveTable()->one(a, b, n);
}

void AndPopcountWords4(const uint64_t* a, const uint64_t* b0,
                       const uint64_t* b1, const uint64_t* b2,
                       const uint64_t* b3, size_t n, uint64_t* out4) {
  ActiveTable()->four(a, b0, b1, b2, b3, n, out4);
}

}  // namespace sfa::spatial
