#include "spatial/csr.h"

#include <limits>

#include "common/macros.h"

namespace sfa::spatial {

Csr32 BuildCsr32(size_t num_rows,
                 const std::vector<std::pair<uint32_t, uint32_t>>& entries) {
  SFA_CHECK_MSG(entries.size() <= std::numeric_limits<uint32_t>::max(),
                "CSR entry count " << entries.size() << " exceeds uint32");
  Csr32 csr;
  csr.offsets.assign(num_rows + 1, 0);
  for (const auto& [row, value] : entries) {
    SFA_DCHECK(row < num_rows);
    (void)value;
    ++csr.offsets[row + 1];
  }
  for (size_t r = 0; r < num_rows; ++r) csr.offsets[r + 1] += csr.offsets[r];
  csr.values.resize(entries.size());
  // Stable placement: cursor[r] starts at the row's offset and advances as
  // entries land, preserving input order within each row.
  std::vector<uint32_t> cursor(csr.offsets.begin(), csr.offsets.end() - 1);
  for (const auto& [row, value] : entries) {
    csr.values[cursor[row]++] = value;
  }
  return csr;
}

}  // namespace sfa::spatial
