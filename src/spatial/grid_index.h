// Uniform grid index: bins point ids by grid cell for O(1) cell lookups and
// fast per-cell aggregation. This is the counting backbone for grid-aligned
// region families: per Monte Carlo world, positive counts per cell are
// accumulated in one O(N) pass and partitions aggregate cells (optionally via
// PrefixSum2D).
#ifndef SFA_SPATIAL_GRID_INDEX_H_
#define SFA_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geo/grid.h"
#include "geo/point.h"

namespace sfa::spatial {

class GridIndex {
 public:
  /// Bins `points` into the cells of `grid`. Points outside the grid extent
  /// are recorded as unassigned and excluded from all aggregates.
  GridIndex(const geo::GridSpec& grid, const std::vector<geo::Point>& points);

  const geo::GridSpec& grid() const { return grid_; }
  size_t num_points() const { return cell_of_point_.size(); }
  size_t num_unassigned() const { return num_unassigned_; }

  /// Cell id of point `i`, or GridSpec::kInvalidCell when outside the extent.
  uint32_t CellOfPoint(uint32_t i) const { return cell_of_point_[i]; }

  /// All cell assignments (parallel to the input point vector).
  const std::vector<uint32_t>& cell_assignments() const { return cell_of_point_; }

  /// Point ids in cell `cell_id` (view into internal CSR storage).
  std::span<const uint32_t> PointsInCell(uint32_t cell_id) const;

  /// Number of points per cell (length num_cells()).
  std::vector<uint32_t> CountsPerCell() const;

  /// Accumulates per-cell counts of points whose `labels[i]` is non-zero.
  /// `out` must have grid().num_cells() entries; it is zeroed first.
  /// Thread-safe: touches only `out`.
  void AccumulateLabelCounts(const std::vector<uint8_t>& labels,
                             std::vector<uint32_t>* out) const;

 private:
  geo::GridSpec grid_;
  std::vector<uint32_t> cell_of_point_;
  std::vector<uint32_t> cell_start_;  // CSR offsets into ids_by_cell_
  std::vector<uint32_t> ids_by_cell_;
  size_t num_unassigned_ = 0;
};

}  // namespace sfa::spatial

#endif  // SFA_SPATIAL_GRID_INDEX_H_
