#include "spatial/kdtree.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace sfa::spatial {

KdTree::KdTree(std::vector<geo::Point> points) : points_(std::move(points)) {
  const size_t n = points_.size();
  ids_.resize(n);
  for (size_t i = 0; i < n; ++i) ids_[i] = static_cast<uint32_t>(i);
  if (n == 0) return;
  nodes_.reserve(n);
  // Expand the bounding box infinitesimally on the max edges so the half-open
  // node-bounds bookkeeping still covers points sitting exactly on them.
  bounds_ = geo::Rect::BoundingBox(points_);
  bounds_.max_x = std::nextafter(bounds_.max_x, std::numeric_limits<double>::max());
  bounds_.max_y = std::nextafter(bounds_.max_y, std::numeric_limits<double>::max());
  Build(0, static_cast<uint32_t>(n), 0);
}

int32_t KdTree::Build(uint32_t begin, uint32_t end, int depth) {
  if (begin >= end) return -1;
  const uint8_t axis = static_cast<uint8_t>(depth & 1);
  const uint32_t mid = begin + (end - begin) / 2;
  auto cmp = [this, axis](uint32_t a, uint32_t b) {
    return axis == 0 ? points_[a].x < points_[b].x : points_[a].y < points_[b].y;
  };
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid, ids_.begin() + end, cmp);

  const auto node_index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].axis = axis;
  nodes_[static_cast<size_t>(node_index)].begin = begin;
  nodes_[static_cast<size_t>(node_index)].end = end;
  nodes_[static_cast<size_t>(node_index)].split_id = ids_[mid];

  const int32_t left = Build(begin, mid, depth + 1);
  const int32_t right = Build(mid + 1, end, depth + 1);
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

size_t KdTree::CountInRect(const geo::Rect& rect) const {
  if (nodes_.empty()) return 0;
  size_t count = 0;
  CountRecursive(0, bounds_, rect, &count);
  return count;
}

void KdTree::CountRecursive(int32_t node_index, const geo::Rect& node_bounds,
                            const geo::Rect& query, size_t* count) const {
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  if (!node_bounds.Intersects(query)) return;
  if (query.ContainsRect(node_bounds)) {
    *count += node.end - node.begin;
    return;
  }
  const geo::Point& p = points_[node.split_id];
  if (query.Contains(p)) ++(*count);
  geo::Rect left_bounds = node_bounds;
  geo::Rect right_bounds = node_bounds;
  if (node.axis == 0) {
    left_bounds.max_x = p.x;
    right_bounds.min_x = p.x;
  } else {
    left_bounds.max_y = p.y;
    right_bounds.min_y = p.y;
  }
  if (node.left >= 0) CountRecursive(node.left, left_bounds, query, count);
  if (node.right >= 0) CountRecursive(node.right, right_bounds, query, count);
}

std::vector<uint32_t> KdTree::ReportRect(const geo::Rect& rect) const {
  std::vector<uint32_t> out;
  VisitRect(rect, [&out](uint32_t id) { out.push_back(id); });
  return out;
}

uint32_t KdTree::Nearest(const geo::Point& query) const {
  SFA_CHECK(!points_.empty());
  uint32_t best_id = 0;
  double best_dist_sq = std::numeric_limits<double>::infinity();
  NearestRecursive(0, query, &best_id, &best_dist_sq);
  return best_id;
}

std::vector<uint32_t> KdTree::KNearest(const geo::Point& query, size_t k) const {
  SFA_CHECK_MSG(k >= 1 && k <= points_.size(),
                "k=" << k << " outside [1, " << points_.size() << "]");
  std::vector<HeapEntry> heap;
  heap.reserve(k + 1);
  KNearestRecursive(0, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end());
  std::vector<uint32_t> out(heap.size());
  for (size_t i = 0; i < heap.size(); ++i) out[i] = heap[i].id;
  return out;
}

void KdTree::KNearestRecursive(int32_t node_index, const geo::Point& query,
                               size_t k, std::vector<HeapEntry>* heap) const {
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  const geo::Point& p = points_[node.split_id];
  const double d = query.DistanceSquaredTo(p);
  if (heap->size() < k) {
    heap->push_back({d, node.split_id});
    std::push_heap(heap->begin(), heap->end());
  } else if (d < heap->front().dist_sq) {
    std::pop_heap(heap->begin(), heap->end());
    heap->back() = {d, node.split_id};
    std::push_heap(heap->begin(), heap->end());
  }
  const double delta = node.axis == 0 ? query.x - p.x : query.y - p.y;
  const int32_t near_child = delta < 0 ? node.left : node.right;
  const int32_t far_child = delta < 0 ? node.right : node.left;
  if (near_child >= 0) KNearestRecursive(near_child, query, k, heap);
  const bool heap_full = heap->size() >= k;
  if (far_child >= 0 &&
      (!heap_full || delta * delta < heap->front().dist_sq)) {
    KNearestRecursive(far_child, query, k, heap);
  }
}

void KdTree::NearestRecursive(int32_t node_index, const geo::Point& query,
                              uint32_t* best_id, double* best_dist_sq) const {
  const Node& node = nodes_[static_cast<size_t>(node_index)];
  const geo::Point& p = points_[node.split_id];
  const double d = query.DistanceSquaredTo(p);
  if (d < *best_dist_sq) {
    *best_dist_sq = d;
    *best_id = node.split_id;
  }
  const double delta = node.axis == 0 ? query.x - p.x : query.y - p.y;
  const int32_t near_child = delta < 0 ? node.left : node.right;
  const int32_t far_child = delta < 0 ? node.right : node.left;
  if (near_child >= 0) NearestRecursive(near_child, query, best_id, best_dist_sq);
  if (far_child >= 0 && delta * delta < *best_dist_sq) {
    NearestRecursive(far_child, query, best_id, best_dist_sq);
  }
}

}  // namespace sfa::spatial
