// Umbrella header: includes the whole public API of the spatial fairness
// auditing library. Fine for applications; library code should include the
// specific module headers instead.
#ifndef SFA_SFA_H_
#define SFA_SFA_H_

#include "common/logging.h"      // IWYU pragma: export
#include "common/macros.h"       // IWYU pragma: export
#include "common/random.h"       // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "common/string_util.h"  // IWYU pragma: export
#include "common/thread_pool.h"  // IWYU pragma: export
#include "common/timer.h"        // IWYU pragma: export

#include "geo/distance.h"      // IWYU pragma: export
#include "geo/grid.h"          // IWYU pragma: export
#include "geo/partitioning.h"  // IWYU pragma: export
#include "geo/point.h"         // IWYU pragma: export
#include "geo/polygon.h"       // IWYU pragma: export
#include "geo/rect.h"          // IWYU pragma: export

#include "spatial/bitvector.h"      // IWYU pragma: export
#include "spatial/grid_index.h"     // IWYU pragma: export
#include "spatial/kdtree.h"         // IWYU pragma: export
#include "spatial/prefix_sum_2d.h"  // IWYU pragma: export

#include "stats/bernoulli_scan.h"    // IWYU pragma: export
#include "stats/descriptive.h"       // IWYU pragma: export
#include "stats/distributions.h"     // IWYU pragma: export
#include "stats/gumbel.h"            // IWYU pragma: export
#include "stats/histogram.h"         // IWYU pragma: export
#include "stats/join_count.h"        // IWYU pragma: export
#include "stats/kmeans.h"            // IWYU pragma: export
#include "stats/multinomial_scan.h"  // IWYU pragma: export

#include "data/crime_sim.h"     // IWYU pragma: export
#include "data/csv.h"           // IWYU pragma: export
#include "data/dataset.h"       // IWYU pragma: export
#include "data/lar_sim.h"       // IWYU pragma: export
#include "data/synth.h"         // IWYU pragma: export
#include "data/us_geography.h"  // IWYU pragma: export

#include "ml/decision_tree.h"  // IWYU pragma: export
#include "ml/metrics.h"        // IWYU pragma: export
#include "ml/random_forest.h"  // IWYU pragma: export
#include "ml/table.h"          // IWYU pragma: export

#include "core/audit.h"                   // IWYU pragma: export
#include "core/audit_pipeline.h"          // IWYU pragma: export
#include "core/bernoulli_statistic.h"     // IWYU pragma: export
#include "core/calibration_cache.h"       // IWYU pragma: export
#include "core/calibration_store.h"       // IWYU pragma: export
#include "core/equal_odds.h"              // IWYU pragma: export
#include "core/evidence.h"                // IWYU pragma: export
#include "core/export.h"                  // IWYU pragma: export
#include "core/grid_family.h"             // IWYU pragma: export
#include "core/knn_circle_family.h"       // IWYU pragma: export
#include "core/labels.h"                  // IWYU pragma: export
#include "core/meanvar.h"                 // IWYU pragma: export
#include "core/measure.h"                 // IWYU pragma: export
#include "core/multiclass.h"              // IWYU pragma: export
#include "core/multinomial_statistic.h"   // IWYU pragma: export
#include "core/partitioning_family.h"     // IWYU pragma: export
#include "core/rectangle_sweep_family.h"  // IWYU pragma: export
#include "core/region_family.h"           // IWYU pragma: export
#include "core/report.h"                  // IWYU pragma: export
#include "core/scan.h"                    // IWYU pragma: export
#include "core/scan_statistic.h"          // IWYU pragma: export
#include "core/significance.h"            // IWYU pragma: export
#include "core/square_family.h"           // IWYU pragma: export

#include "viz/map_render.h"  // IWYU pragma: export
#include "viz/svg.h"         // IWYU pragma: export

#endif  // SFA_SFA_H_
