// CrimeSim: a synthetic stand-in for the paper's Crime dataset (LAPD
// incidents 2010-2019; a random forest on 7 non-spatial features predicts
// whether an incident is "serious"; the audit then asks whether the model's
// true-positive rate is independent of location).
//
// Generative model. Each incident belongs to a latent crime *context*
// (property, traffic, vice, domestic, street-violent, gang) whose mixture
// varies by police precinct. The context drives the observable features
// (hour, victim age/sex/descent, premise, weapon) and, together with the
// weapon/premise, the ground-truth seriousness probability. The classifier
// sees only the features — never the location — so any spatial unfairness in
// its accuracy emerges from feature-distribution shift across space, which
// is exactly the mechanism the paper audits.
//
// Planted effect. In the Hollywood precinct (and, more mildly, Harbor) a
// fraction of incidents have their evidence features re-drawn from a generic
// "nightlife" distribution that is uninformative about seriousness. Serious
// incidents there become indistinguishable from non-serious ones, the model
// under-detects them, and the local TPR drops below the global TPR —
// mirroring the paper's finding of a Hollywood region at TPR ~0.51 vs the
// global 0.58.
#ifndef SFA_DATA_CRIME_SIM_H_
#define SFA_DATA_CRIME_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "geo/point.h"
#include "ml/random_forest.h"
#include "ml/table.h"

namespace sfa::data {

struct CrimeSimOptions {
  uint64_t num_incidents = 711852;
  uint64_t seed = 1019;
  /// Fraction of Hollywood incidents whose evidence features are scrambled.
  double hollywood_scramble = 0.30;
  /// Milder secondary effect in the Harbor precinct.
  double harbor_scramble = 0.12;
};

/// Incident table (features + seriousness labels) with per-incident
/// locations kept out-of-band — the classifier must not see them.
struct CrimeSimData {
  ml::Table table;
  std::vector<geo::Point> locations;
  std::vector<std::string> precinct_names;
  std::vector<geo::Point> precinct_centers;
};

/// Generates the incident table. Deterministic for a fixed seed.
Result<CrimeSimData> MakeCrimeIncidents(const CrimeSimOptions& options);

struct CrimeAuditOptions {
  CrimeSimOptions sim;
  ml::RandomForestOptions forest;
  double train_fraction = 0.7;
  uint64_t split_seed = 404;
};

/// Everything the Crime experiment needs: the trained model's test-set
/// behaviour packaged as audit datasets.
struct CrimeAuditBundle {
  /// Test individuals with ground truth Y=1 (serious), outcome = the model's
  /// prediction. Auditing this dataset's positive rate audits the TPR
  /// surface (equal opportunity), as in the paper.
  OutcomeDataset equal_opportunity;
  /// All test individuals with predictions and ground truth (enables
  /// predictive-equality audits on Y=0 as well).
  OutcomeDataset full_test;
  double model_accuracy = 0.0;
  double global_tpr = 0.0;
  uint64_t num_test = 0;
  uint64_t num_test_positives = 0;
};

/// Generates incidents, trains a random forest on a train split, and builds
/// the audit datasets from the held-out test split.
Result<CrimeAuditBundle> BuildCrimeAudit(const CrimeAuditOptions& options);

}  // namespace sfa::data

#endif  // SFA_DATA_CRIME_SIM_H_
