// The paper's two controlled datasets (§4.1):
//
// Synth     — unfair by design: 10,000 locations uniform in a rectangle, the
//             left half's positive rate is twice the right half's (≈0.67 vs
//             ≈0.33), 5,000 outcomes per half.
// SemiSynth — fair by design: 10,000 locations drawn from the (irregular)
//             LAR location distribution restricted to Florida, every label an
//             independent Bernoulli(0.5) coin flip.
//
// Together they are the ground truth for the "is it fair?" experiment: a
// correct auditor must declare SemiSynth fair and Synth unfair; MeanVar
// famously orders them the other way (paper Fig. 1).
#ifndef SFA_DATA_SYNTH_H_
#define SFA_DATA_SYNTH_H_

#include <cstdint>

#include "common/status.h"
#include "data/dataset.h"

namespace sfa::data {

struct SynthOptions {
  uint64_t num_outcomes = 10000;       ///< total; half per side
  double left_positive_rate = 2.0 / 3;  ///< twice the right rate
  double right_positive_rate = 1.0 / 3;
  geo::Rect extent = geo::Rect(0.0, 0.0, 2.0, 1.0);
  uint64_t seed = 17;
};

/// Generates the unfair-by-design Synth dataset.
Result<OutcomeDataset> MakeSynth(const SynthOptions& options);

struct SemiSynthOptions {
  uint64_t num_outcomes = 10000;
  double positive_rate = 0.5;  ///< location-independent coin flip
  /// Fraction of standalone locations placed uniformly inside the Florida
  /// outline instead of around a Florida metro; produces the isolated-point
  /// tail visible in the paper's Fig. 1(a). The default reproduces the
  /// paper's MeanVar(SemiSynth) ≈ 0.052 under 100 random 10-40-split
  /// partitionings.
  double rural_fraction = 0.14;
  uint64_t seed = 23;
};

/// Generates the fair-by-design SemiSynth dataset by sampling (with
/// replacement) from `base_locations` restricted to the Florida outline and
/// assigning labels by independent Bernoulli(positive_rate) trials.
/// `base_locations` would typically be LarSim locations; fails when none of
/// them fall inside Florida.
Result<OutcomeDataset> MakeSemiSynth(const std::vector<geo::Point>& base_locations,
                                     const SemiSynthOptions& options);

/// Standalone SemiSynth: draws the locations directly from the LAR location
/// process restricted to Florida (Gaussian mixture around the Florida metros
/// plus a uniform rural background inside the state outline), one outcome
/// per distinct location. This matches the paper's construction — 10,000
/// irregularly distributed Florida locations with fair Bernoulli labels —
/// without requiring a LAR dataset first.
Result<OutcomeDataset> MakeSemiSynthStandalone(const SemiSynthOptions& options);

}  // namespace sfa::data

#endif  // SFA_DATA_SYNTH_H_
