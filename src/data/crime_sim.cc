#include "data/crime_sim.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/macros.h"
#include "common/random.h"
#include "data/us_geography.h"
#include "ml/metrics.h"

namespace sfa::data {

namespace {

// Latent crime contexts. The mixture over contexts varies by precinct; the
// context drives both the observable features and the seriousness process.
enum Context : size_t {
  kProperty = 0,
  kTraffic = 1,
  kVice = 2,
  kDomestic = 3,
  kStreetViolent = 4,
  kGang = 5,
  kNumContexts = 6,
};

// Feature encodings (all uint8 ordinals; see ml/table.h for why).
enum Premise : uint8_t {
  kStreet = 0,
  kResidence = 1,
  kCommercial = 2,
  kVehiclePremise = 3,
  kBar = 4,
  kPark = 5,
  kSchool = 6,
  kTransit = 7,
  kParking = 8,
  kOtherPremise = 9,
};

enum Weapon : uint8_t {
  kNoWeapon = 0,
  kFirearm = 1,
  kKnife = 2,
  kBlunt = 3,
  kBodily = 4,
  kVehicleWeapon = 5,
  kUnknownWeapon = 6,
  kOtherWeapon = 7,
};

struct Precinct {
  const char* name;
  geo::Point center;
  // Context mixture weights (property, traffic, vice, domestic, street, gang).
  std::array<double, kNumContexts> mix;
};

// 21 LAPD-like areas. Mixes are stylized: gang/violent mass concentrates in
// the south/east precincts, property in the valley and west side, vice in
// Hollywood/Central.
const std::array<Precinct, 21>& Precincts() {
  static const std::array<Precinct, 21> kPrecincts = {{
      {"Central", {-118.245, 34.044}, {0.30, 0.10, 0.20, 0.10, 0.20, 0.10}},
      {"Rampart", {-118.270, 34.060}, {0.30, 0.10, 0.12, 0.14, 0.22, 0.12}},
      {"Southwest", {-118.300, 34.010}, {0.26, 0.08, 0.08, 0.16, 0.26, 0.16}},
      {"Hollenbeck", {-118.210, 34.040}, {0.30, 0.10, 0.08, 0.16, 0.22, 0.14}},
      {"Harbor", {-118.280, 33.750}, {0.34, 0.12, 0.08, 0.16, 0.20, 0.10}},
      {"Hollywood", {-118.330, 34.100}, {0.28, 0.08, 0.24, 0.10, 0.22, 0.08}},
      {"Wilshire", {-118.340, 34.060}, {0.40, 0.12, 0.08, 0.14, 0.20, 0.06}},
      {"West LA", {-118.450, 34.040}, {0.50, 0.14, 0.06, 0.12, 0.14, 0.04}},
      {"Van Nuys", {-118.450, 34.190}, {0.42, 0.14, 0.08, 0.16, 0.14, 0.06}},
      {"West Valley", {-118.550, 34.200}, {0.46, 0.14, 0.06, 0.16, 0.12, 0.06}},
      {"Northeast", {-118.250, 34.110}, {0.36, 0.12, 0.08, 0.14, 0.20, 0.10}},
      {"77th Street", {-118.280, 33.970}, {0.22, 0.08, 0.08, 0.16, 0.26, 0.20}},
      {"Newton", {-118.260, 34.010}, {0.24, 0.08, 0.08, 0.16, 0.26, 0.18}},
      {"Pacific", {-118.420, 33.990}, {0.46, 0.14, 0.08, 0.12, 0.16, 0.04}},
      {"N Hollywood", {-118.380, 34.170}, {0.40, 0.12, 0.10, 0.14, 0.16, 0.08}},
      {"Foothill", {-118.410, 34.250}, {0.38, 0.14, 0.06, 0.18, 0.16, 0.08}},
      {"Devonshire", {-118.530, 34.260}, {0.46, 0.16, 0.06, 0.14, 0.12, 0.06}},
      {"Mission", {-118.440, 34.270}, {0.38, 0.14, 0.08, 0.16, 0.16, 0.08}},
      {"Olympic", {-118.300, 34.050}, {0.34, 0.10, 0.12, 0.14, 0.20, 0.10}},
      {"Southeast", {-118.240, 33.940}, {0.20, 0.08, 0.08, 0.16, 0.26, 0.22}},
      {"Topanga", {-118.610, 34.220}, {0.48, 0.16, 0.06, 0.14, 0.12, 0.04}},
  }};
  return kPrecincts;
}

constexpr size_t kHollywoodIndex = 5;
constexpr size_t kHarborIndex = 4;

// Incident volume per precinct (heavier in dense/high-crime areas).
const std::array<double, 21> kPrecinctVolume = {
    1.3, 1.1, 1.1, 0.9, 0.8, 1.2, 1.0, 0.9, 1.0, 0.9, 0.9,
    1.4, 1.2, 1.0, 1.0, 0.8, 0.8, 0.9, 1.1, 1.3, 0.7};

// Context mixes are blended toward the city-wide average before sampling:
// real precincts differ in crime composition, but the paper's model shows a
// fairly flat TPR surface outside a handful of areas (its audit flags only
// 5 of 400 partitions). The blend keeps composition differences visible in
// the features while letting the planted Hollywood/Harbor evidence-quality
// effects dominate the TPR deviations.
constexpr double kMixFlattening = 0.72;

std::array<double, kNumContexts> BlendedMix(const Precinct& precinct) {
  // City-wide average context mix, volume-weighted.
  static const std::array<double, kNumContexts> kAverage = [] {
    std::array<double, kNumContexts> avg{};
    double total = 0.0;
    const auto& precincts = Precincts();
    for (size_t i = 0; i < precincts.size(); ++i) {
      for (size_t c = 0; c < kNumContexts; ++c) {
        avg[c] += kPrecinctVolume[i] * precincts[i].mix[c];
      }
      total += kPrecinctVolume[i];
    }
    for (double& v : avg) v /= total;
    return avg;
  }();
  std::array<double, kNumContexts> mix{};
  for (size_t c = 0; c < kNumContexts; ++c) {
    mix[c] = kMixFlattening * kAverage[c] + (1.0 - kMixFlattening) * precinct.mix[c];
  }
  return mix;
}

// Base seriousness probability per context.
constexpr std::array<double, kNumContexts> kContextSeriousness = {
    0.10, 0.15, 0.20, 0.45, 0.65, 0.85};

// Additive weapon modifier on the seriousness probability.
constexpr std::array<double, 8> kWeaponSeriousness = {
    -0.05, 0.18, 0.10, 0.05, 0.02, 0.00, -0.02, 0.00};

double PremiseSeriousness(uint8_t premise) {
  switch (premise) {
    case kStreet:
      return 0.03;
    case kBar:
      return 0.05;
    case kPark:
      return 0.02;
    default:
      return 0.0;
  }
}

// Hour-of-day distribution per context (peaks; sampled as a discretized
// wrapped normal around the peak).
uint8_t SampleHour(Context context, sfa::Rng* rng) {
  double peak;
  double spread;
  switch (context) {
    case kProperty:
      peak = 13.0;
      spread = 4.0;
      break;
    case kTraffic:
      peak = rng->Bernoulli(0.5) ? 8.0 : 17.0;
      spread = 2.0;
      break;
    case kVice:
      peak = 23.0;
      spread = 3.0;
      break;
    case kDomestic:
      peak = 20.0;
      spread = 4.0;
      break;
    case kStreetViolent:
      peak = 22.0;
      spread = 3.5;
      break;
    case kGang:
    default:
      peak = 23.5;
      spread = 3.0;
      break;
  }
  const double h = rng->Normal(peak, spread);
  const int wrapped = ((static_cast<int>(std::lround(h)) % 24) + 24) % 24;
  return static_cast<uint8_t>(wrapped);
}

uint8_t SamplePremise(Context context, sfa::Rng* rng) {
  // Per-context premise weights over the 10 premise codes.
  static const std::array<std::array<double, 10>, kNumContexts> kWeights = {{
      // street res com veh bar park sch trans park other
      {0.10, 0.30, 0.20, 0.20, 0.01, 0.02, 0.02, 0.02, 0.10, 0.03},  // property
      {0.70, 0.00, 0.02, 0.20, 0.00, 0.00, 0.00, 0.02, 0.05, 0.01},  // traffic
      {0.40, 0.10, 0.10, 0.05, 0.20, 0.05, 0.00, 0.03, 0.02, 0.05},  // vice
      {0.03, 0.80, 0.02, 0.03, 0.02, 0.01, 0.01, 0.01, 0.02, 0.05},  // domestic
      {0.45, 0.10, 0.10, 0.05, 0.08, 0.06, 0.02, 0.05, 0.06, 0.03},  // street
      {0.60, 0.08, 0.04, 0.08, 0.03, 0.08, 0.01, 0.02, 0.04, 0.02},  // gang
  }};
  const auto& w = kWeights[context];
  return static_cast<uint8_t>(
      rng->Categorical(std::vector<double>(w.begin(), w.end())));
}

uint8_t SampleWeapon(Context context, sfa::Rng* rng) {
  static const std::array<std::array<double, 8>, kNumContexts> kWeights = {{
      // none gun knife blunt bodily vehicle unknown other
      {0.70, 0.01, 0.02, 0.03, 0.02, 0.02, 0.15, 0.05},  // property
      {0.20, 0.00, 0.00, 0.01, 0.01, 0.70, 0.06, 0.02},  // traffic
      {0.55, 0.03, 0.04, 0.02, 0.08, 0.01, 0.22, 0.05},  // vice
      {0.15, 0.05, 0.12, 0.08, 0.50, 0.01, 0.05, 0.04},  // domestic
      {0.12, 0.25, 0.18, 0.10, 0.25, 0.02, 0.05, 0.03},  // street violent
      {0.05, 0.60, 0.12, 0.05, 0.10, 0.02, 0.04, 0.02},  // gang
  }};
  const auto& w = kWeights[context];
  return static_cast<uint8_t>(
      rng->Categorical(std::vector<double>(w.begin(), w.end())));
}

uint8_t SampleAgeBucket(Context context, sfa::Rng* rng) {
  // Decade buckets 0..9 (0-9, 10-19, ..., 90+). Violent contexts skew young.
  double mean;
  switch (context) {
    case kGang:
      mean = 2.4;
      break;
    case kStreetViolent:
      mean = 3.0;
      break;
    case kDomestic:
      mean = 3.4;
      break;
    default:
      mean = 4.2;
      break;
  }
  const double v = rng->Normal(mean, 1.6);
  return static_cast<uint8_t>(std::clamp<int>(static_cast<int>(std::lround(v)), 0, 9));
}

uint8_t SampleSex(Context context, sfa::Rng* rng) {
  // 0 = male, 1 = female, 2 = unknown/other.
  double p_female;
  switch (context) {
    case kDomestic:
      p_female = 0.70;
      break;
    case kStreetViolent:
      p_female = 0.30;
      break;
    case kGang:
      p_female = 0.15;
      break;
    default:
      p_female = 0.45;
      break;
  }
  if (rng->Bernoulli(0.03)) return 2;
  return rng->Bernoulli(p_female) ? 1 : 0;
}

uint8_t SampleDescent(size_t precinct, sfa::Rng* rng) {
  // 6 coarse categories with precinct-dependent weights (weak signal only).
  const double shift = static_cast<double>(precinct % 7) / 7.0;
  std::vector<double> w = {0.25 + 0.2 * shift, 0.25 - 0.1 * shift, 0.20,
                           0.15, 0.10, 0.05};
  return static_cast<uint8_t>(rng->Categorical(w));
}

// Evidence features re-drawn to look like a mundane daytime property
// incident — the signature the classifier associates with non-serious crime.
// Serious incidents recorded this way become near-invisible to the model,
// which is the planted Hollywood mechanism: under-detection of seriousness
// caused by locally uninformative evidence.
void ScrambleEvidence(sfa::Rng* rng, uint8_t* hour, uint8_t* premise,
                      uint8_t* weapon) {
  const double h = rng->Normal(13.0, 4.0);
  *hour = static_cast<uint8_t>(((static_cast<int>(std::lround(h)) % 24) + 24) % 24);
  std::vector<double> premise_w = {0.08, 0.32, 0.22, 0.20, 0.00,
                                   0.02, 0.02, 0.02, 0.10, 0.02};
  *premise = static_cast<uint8_t>(rng->Categorical(premise_w));
  std::vector<double> weapon_w = {0.72, 0.00, 0.01, 0.02, 0.02, 0.02, 0.17, 0.04};
  *weapon = static_cast<uint8_t>(rng->Categorical(weapon_w));
}

}  // namespace

Result<CrimeSimData> MakeCrimeIncidents(const CrimeSimOptions& options) {
  if (options.num_incidents == 0) {
    return Status::InvalidArgument("CrimeSim needs at least one incident");
  }
  for (double q : {options.hollywood_scramble, options.harbor_scramble}) {
    if (q < 0.0 || q > 1.0) {
      return Status::InvalidArgument("scramble fractions must be in [0, 1]");
    }
  }

  Rng rng(options.seed);
  const auto& precincts = Precincts();
  std::vector<double> volume(kPrecinctVolume.begin(), kPrecinctVolume.end());

  CrimeSimData out;
  out.table = ml::Table({"hour", "precinct", "victim_age", "victim_sex",
                         "victim_descent", "premise", "weapon"});
  out.locations.reserve(options.num_incidents);
  for (const Precinct& p : precincts) {
    out.precinct_names.emplace_back(p.name);
    out.precinct_centers.push_back(p.center);
  }

  const geo::Rect la = LosAngelesBounds();
  for (uint64_t i = 0; i < options.num_incidents; ++i) {
    const size_t pi = rng.Categorical(volume);
    const Precinct& precinct = precincts[pi];
    const std::array<double, kNumContexts> mix = BlendedMix(precinct);
    const auto context = static_cast<Context>(
        rng.Categorical(std::vector<double>(mix.begin(), mix.end())));

    uint8_t hour = SampleHour(context, &rng);
    uint8_t premise = SamplePremise(context, &rng);
    uint8_t weapon = SampleWeapon(context, &rng);
    const uint8_t age = SampleAgeBucket(context, &rng);
    const uint8_t sex = SampleSex(context, &rng);
    const uint8_t descent = SampleDescent(pi, &rng);

    // Ground truth seriousness depends on the *true* evidence.
    double p_serious = kContextSeriousness[context] + kWeaponSeriousness[weapon] +
                       PremiseSeriousness(premise);
    p_serious = std::clamp(p_serious, 0.02, 0.98);
    const uint8_t serious = rng.Bernoulli(p_serious) ? 1 : 0;

    // Planted effect: the *recorded* evidence in Hollywood/Harbor is
    // sometimes generic nightlife noise, decoupling features from the label.
    double scramble_q = 0.0;
    if (pi == kHollywoodIndex) scramble_q = options.hollywood_scramble;
    if (pi == kHarborIndex) scramble_q = options.harbor_scramble;
    if (scramble_q > 0.0 && rng.Bernoulli(scramble_q)) {
      ScrambleEvidence(&rng, &hour, &premise, &weapon);
    }

    out.table.AddRow({hour, static_cast<uint8_t>(pi), age, sex, descent, premise,
                      weapon},
                     serious);
    const geo::Point loc(
        std::clamp(rng.Normal(precinct.center.x, 0.020), la.min_x, la.max_x),
        std::clamp(rng.Normal(precinct.center.y, 0.020), la.min_y, la.max_y));
    out.locations.push_back(loc);
  }
  return out;
}

Result<CrimeAuditBundle> BuildCrimeAudit(const CrimeAuditOptions& options) {
  SFA_ASSIGN_OR_RETURN(CrimeSimData sim, MakeCrimeIncidents(options.sim));
  auto [train_rows, test_rows] =
      sim.table.TrainTestSplit(options.train_fraction, options.split_seed);
  if (train_rows.empty() || test_rows.empty()) {
    return Status::InvalidArgument("degenerate train/test split");
  }
  SFA_ASSIGN_OR_RETURN(ml::RandomForest forest,
                       ml::RandomForest::Fit(sim.table, train_rows, options.forest));

  const std::vector<uint8_t> predictions = forest.PredictRows(sim.table, test_rows);
  std::vector<uint8_t> actual(test_rows.size());
  for (size_t i = 0; i < test_rows.size(); ++i) {
    actual[i] = sim.table.Label(test_rows[i]);
  }
  const ml::ConfusionMatrix cm = ml::ComputeConfusion(predictions, actual);

  CrimeAuditBundle bundle;
  bundle.full_test.set_name("Crime[test]");
  bundle.equal_opportunity.set_name("Crime[test,Y=1]");
  for (size_t i = 0; i < test_rows.size(); ++i) {
    const geo::Point& loc = sim.locations[test_rows[i]];
    bundle.full_test.Add(loc, predictions[i], actual[i]);
    if (actual[i] == 1) {
      bundle.equal_opportunity.Add(loc, predictions[i], actual[i]);
    }
  }
  bundle.model_accuracy = cm.Accuracy();
  bundle.global_tpr = cm.TruePositiveRate();
  bundle.num_test = test_rows.size();
  bundle.num_test_positives = cm.actual_positives();
  return bundle;
}

}  // namespace sfa::data
