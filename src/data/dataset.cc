#include "data/dataset.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::data {

void OutcomeDataset::Add(const geo::Point& location, uint8_t predicted) {
  SFA_CHECK_MSG(actual_.empty(),
                "cannot mix individuals with and without ground truth");
  locations_.push_back(location);
  predicted_.push_back(predicted);
}

void OutcomeDataset::Add(const geo::Point& location, uint8_t predicted,
                         uint8_t actual) {
  SFA_CHECK_MSG(actual_.size() == locations_.size(),
                "cannot mix individuals with and without ground truth");
  locations_.push_back(location);
  predicted_.push_back(predicted);
  actual_.push_back(actual);
}

Status OutcomeDataset::Validate() const { return Validate(2); }

Status OutcomeDataset::Validate(uint32_t num_classes) const {
  if (predicted_.size() != locations_.size()) {
    return Status::Internal("predicted/location size mismatch");
  }
  if (!actual_.empty() && actual_.size() != locations_.size()) {
    return Status::Internal("actual/location size mismatch");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 outcome classes");
  }
  for (uint8_t y : predicted_) {
    if (y >= num_classes) {
      return num_classes == 2
                 ? Status::InvalidArgument("predicted labels must be 0/1")
                 : Status::InvalidArgument(
                       StrFormat("predicted class %u outside [0, %u)", y,
                                 num_classes));
    }
  }
  for (uint8_t y : actual_) {
    if (y > 1) return Status::InvalidArgument("actual labels must be 0/1");
  }
  return Status::OK();
}

uint64_t OutcomeDataset::PositiveCount() const {
  uint64_t count = 0;
  for (uint8_t y : predicted_) count += y;
  return count;
}

double OutcomeDataset::PositiveRate() const {
  if (empty()) return 0.0;
  return static_cast<double>(PositiveCount()) / static_cast<double>(size());
}

Result<OutcomeDataset> OutcomeDataset::FilterByActual(uint8_t actual_value) const {
  if (!has_actual()) {
    return Status::FailedPrecondition("dataset '" + name_ +
                                      "' has no ground-truth labels");
  }
  OutcomeDataset out(name_ + StrFormat("[Y=%u]", actual_value));
  for (size_t i = 0; i < size(); ++i) {
    if (actual_[i] == actual_value) {
      out.Add(locations_[i], predicted_[i], actual_[i]);
    }
  }
  return out;
}

size_t OutcomeDataset::CountDistinctLocations() const {
  std::vector<geo::Point> copy = locations_;
  std::sort(copy.begin(), copy.end(), [](const geo::Point& a, const geo::Point& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  copy.erase(std::unique(copy.begin(), copy.end()), copy.end());
  return copy.size();
}

std::string OutcomeDataset::Summary() const {
  return StrFormat("%s: n=%s, positives=%s (rate %.4f), bbox=%s",
                   name_.empty() ? "<unnamed>" : name_.c_str(),
                   WithThousands(static_cast<int64_t>(size())).c_str(),
                   WithThousands(static_cast<int64_t>(PositiveCount())).c_str(),
                   PositiveRate(), BoundingBox().ToString().c_str());
}

}  // namespace sfa::data
