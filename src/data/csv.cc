#include "data/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::data {

Result<std::vector<std::string>> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("quote in the middle of an unquoted field");
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF line endings
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

Status WriteCsv(const OutcomeDataset& dataset, const std::string& path) {
  SFA_RETURN_NOT_OK(dataset.Validate());
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  const bool with_actual = dataset.has_actual();
  out << (with_actual ? "lon,lat,predicted,actual\n" : "lon,lat,predicted\n");
  for (size_t i = 0; i < dataset.size(); ++i) {
    const geo::Point& p = dataset.locations()[i];
    out << StrFormat("%.8f,%.8f,%u", p.x, p.y, dataset.predicted()[i]);
    if (with_actual) out << ',' << static_cast<unsigned>(dataset.actual()[i]);
    out << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IOError("failed while writing '" + path + "'");
  return Status::OK();
}

namespace {

Result<int> FindColumn(const std::vector<std::string>& header,
                       const std::string& name, bool required) {
  for (size_t i = 0; i < header.size(); ++i) {
    if (ToLower(Trim(header[i])) == name) return static_cast<int>(i);
  }
  if (required) {
    return Status::ParseError("missing required CSV column '" + name + "'");
  }
  return -1;
}

Result<uint8_t> ParseLabel(const std::string& field, size_t line_number) {
  SFA_ASSIGN_OR_RETURN(int64_t value, ParseInt64(field));
  if (value != 0 && value != 1) {
    return Status::ParseError(
        StrFormat("line %zu: label must be 0 or 1, got %lld", line_number,
                  static_cast<long long>(value)));
  }
  return static_cast<uint8_t>(value);
}

}  // namespace

Result<OutcomeDataset> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("'" + path + "' is empty");
  }
  SFA_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseCsvLine(line));
  SFA_ASSIGN_OR_RETURN(int lon_col, FindColumn(header, "lon", /*required=*/true));
  SFA_ASSIGN_OR_RETURN(int lat_col, FindColumn(header, "lat", /*required=*/true));
  SFA_ASSIGN_OR_RETURN(int pred_col,
                       FindColumn(header, "predicted", /*required=*/true));
  SFA_ASSIGN_OR_RETURN(int actual_col,
                       FindColumn(header, "actual", /*required=*/false));

  OutcomeDataset dataset(path);
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    SFA_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line));
    const size_t needed = static_cast<size_t>(
        std::max({lon_col, lat_col, pred_col, actual_col}) + 1);
    if (fields.size() < needed) {
      return Status::ParseError(
          StrFormat("line %zu: expected at least %zu fields, got %zu", line_number,
                    needed, fields.size()));
    }
    auto lon = ParseDouble(fields[static_cast<size_t>(lon_col)]);
    if (!lon.ok()) {
      return lon.status().WithContext(StrFormat("line %zu: lon", line_number));
    }
    auto lat = ParseDouble(fields[static_cast<size_t>(lat_col)]);
    if (!lat.ok()) {
      return lat.status().WithContext(StrFormat("line %zu: lat", line_number));
    }
    SFA_ASSIGN_OR_RETURN(
        uint8_t predicted,
        ParseLabel(fields[static_cast<size_t>(pred_col)], line_number));
    if (actual_col >= 0) {
      SFA_ASSIGN_OR_RETURN(
          uint8_t actual,
          ParseLabel(fields[static_cast<size_t>(actual_col)], line_number));
      dataset.Add(geo::Point(*lon, *lat), predicted, actual);
    } else {
      dataset.Add(geo::Point(*lon, *lat), predicted);
    }
  }
  SFA_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

}  // namespace sfa::data
