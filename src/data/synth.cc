#include "data/synth.h"

#include <cmath>

#include "common/macros.h"
#include "common/random.h"
#include "data/us_geography.h"

namespace sfa::data {

Result<OutcomeDataset> MakeSynth(const SynthOptions& options) {
  if (options.num_outcomes == 0) {
    return Status::InvalidArgument("Synth needs at least one outcome");
  }
  if (!(options.extent.Area() > 0.0)) {
    return Status::InvalidArgument("Synth extent must have positive area");
  }
  for (double rate : {options.left_positive_rate, options.right_positive_rate}) {
    if (rate < 0.0 || rate > 1.0) {
      return Status::InvalidArgument("positive rates must lie in [0, 1]");
    }
  }
  Rng rng(options.seed);
  OutcomeDataset out("Synth");
  const geo::Rect& extent = options.extent;
  const double mid_x = extent.Center().x;
  const uint64_t half = options.num_outcomes / 2;
  for (uint64_t i = 0; i < options.num_outcomes; ++i) {
    const bool left = i < half;
    const double x = left ? rng.Uniform(extent.min_x, mid_x)
                          : rng.Uniform(mid_x, extent.max_x);
    const double y = rng.Uniform(extent.min_y, extent.max_y);
    const double rate =
        left ? options.left_positive_rate : options.right_positive_rate;
    out.Add(geo::Point(x, y), rng.Bernoulli(rate) ? 1 : 0);
  }
  return out;
}

namespace {

Status ValidateSemiSynthOptions(const SemiSynthOptions& options) {
  if (options.num_outcomes == 0) {
    return Status::InvalidArgument("SemiSynth needs at least one outcome");
  }
  if (options.positive_rate < 0.0 || options.positive_rate > 1.0) {
    return Status::InvalidArgument("positive rate must lie in [0, 1]");
  }
  if (options.rural_fraction < 0.0 || options.rural_fraction > 1.0) {
    return Status::InvalidArgument("rural fraction must lie in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<OutcomeDataset> MakeSemiSynth(const std::vector<geo::Point>& base_locations,
                                     const SemiSynthOptions& options) {
  SFA_RETURN_NOT_OK(ValidateSemiSynthOptions(options));
  const geo::Polygon& florida = FloridaOutline();
  std::vector<geo::Point> florida_locations;
  for (const geo::Point& p : base_locations) {
    if (florida.Contains(p)) florida_locations.push_back(p);
  }
  if (florida_locations.empty()) {
    return Status::FailedPrecondition(
        "no base locations fall inside the Florida outline");
  }
  Rng rng(options.seed);
  OutcomeDataset out("SemiSynth");
  for (uint64_t i = 0; i < options.num_outcomes; ++i) {
    const geo::Point& p =
        florida_locations[rng.NextUint64(florida_locations.size())];
    out.Add(p, rng.Bernoulli(options.positive_rate) ? 1 : 0);
  }
  return out;
}

Result<OutcomeDataset> MakeSemiSynthStandalone(const SemiSynthOptions& options) {
  SFA_RETURN_NOT_OK(ValidateSemiSynthOptions(options));
  const geo::Polygon& florida = FloridaOutline();
  const geo::Rect bbox = florida.bounding_box();

  // Florida metros from the gazetteer, population-weighted, with the same
  // sprawl model as LarSim (sigma grows with metro size).
  std::vector<const Metro*> fl_metros;
  std::vector<double> weights;
  for (const Metro& metro : UsMetros()) {
    if (florida.Contains(metro.center)) {
      fl_metros.push_back(&metro);
      weights.push_back(metro.population_m);
    }
  }
  if (fl_metros.empty()) {
    return Status::Internal("gazetteer has no Florida metros");
  }

  Rng rng(options.seed);
  OutcomeDataset out("SemiSynth");
  uint64_t produced = 0;
  while (produced < options.num_outcomes) {
    geo::Point p;
    if (rng.Bernoulli(options.rural_fraction)) {
      // Rejection-sample the state outline from its bounding box.
      do {
        p = {rng.Uniform(bbox.min_x, bbox.max_x), rng.Uniform(bbox.min_y, bbox.max_y)};
      } while (!florida.Contains(p));
    } else {
      const Metro& metro = *fl_metros[rng.Categorical(weights)];
      const double sigma = 0.03 + 0.06 * std::sqrt(metro.population_m);
      p = {rng.Normal(metro.center.x, sigma), rng.Normal(metro.center.y, sigma)};
      if (!florida.Contains(p)) continue;  // fell into the sea or a neighbor
    }
    out.Add(p, rng.Bernoulli(options.positive_rate) ? 1 : 0);
    ++produced;
  }
  return out;
}

}  // namespace sfa::data
