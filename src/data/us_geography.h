// Small built-in gazetteer used by the dataset simulators: ~60 continental-US
// metropolitan areas with approximate (lon, lat) centers and population
// weights, a coarse Florida outline, and the bounding boxes the paper's
// datasets live in. This replaces the Census Gazetteer files the paper uses
// to geocode census tracts (see DESIGN.md §3 on substitutions).
#ifndef SFA_DATA_US_GEOGRAPHY_H_
#define SFA_DATA_US_GEOGRAPHY_H_

#include <string>
#include <vector>

#include "geo/point.h"
#include "geo/polygon.h"
#include "geo/rect.h"

namespace sfa::data {

struct Metro {
  std::string name;
  geo::Point center;     ///< (lon, lat) degrees
  double population_m;   ///< metro population, millions (sampling weight)
};

/// The built-in metro table, ordered by descending population.
const std::vector<Metro>& UsMetros();

/// Bounding box of the continental United States.
geo::Rect ContinentalUsBounds();

/// Coarse polygon outline of Florida (panhandle through the southern tip;
/// Keys excluded). Suitable for point-in-state tests at ~0.1 degree fidelity.
const geo::Polygon& FloridaOutline();

/// Bounding box of the City of Los Angeles (the Crime dataset's extent).
geo::Rect LosAngelesBounds();

}  // namespace sfa::data

#endif  // SFA_DATA_US_GEOGRAPHY_H_
