// The audit input: individuals with a location, a binary model prediction,
// and (optionally) a binary ground-truth outcome. This is the only data
// format the core audit framework consumes; fairness measures (statistical
// parity / equal opportunity / predictive equality) are realized as views of
// this container (see core/measure.h).
#ifndef SFA_DATA_DATASET_H_
#define SFA_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace sfa::data {

class OutcomeDataset {
 public:
  OutcomeDataset() = default;
  explicit OutcomeDataset(std::string name) : name_(std::move(name)) {}

  /// Appends an individual with a prediction only (no ground truth).
  void Add(const geo::Point& location, uint8_t predicted);

  /// Appends an individual with both prediction and ground truth.
  void Add(const geo::Point& location, uint8_t predicted, uint8_t actual);

  /// Validates internal consistency: parallel array sizes, 0/1 labels, and
  /// that ground truth is either absent or present for every individual.
  Status Validate() const;

  /// Multiclass-aware validation: predicted values must lie in
  /// [0, num_classes) — so Validate(2) is the binary contract above — while
  /// ground truth stays 0/1 (it selects measure views, not outcome classes).
  /// Multinomial audits (core::StatisticKind::kMultinomial) carry class ids
  /// in predicted() and validate through this overload.
  Status Validate(uint32_t num_classes) const;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return locations_.size(); }
  bool empty() const { return locations_.empty(); }
  bool has_actual() const { return !actual_.empty(); }

  const std::vector<geo::Point>& locations() const { return locations_; }
  const std::vector<uint8_t>& predicted() const { return predicted_; }
  const std::vector<uint8_t>& actual() const { return actual_; }

  /// Number of individuals predicted positive (P in the paper).
  uint64_t PositiveCount() const;

  /// Overall positive rate ρ = P/N (0 when empty).
  double PositiveRate() const;

  /// Bounding box of all locations.
  geo::Rect BoundingBox() const { return geo::Rect::BoundingBox(locations_); }

  /// Subset with only the individuals whose ground truth equals
  /// `actual_value` (used to audit TPR: keep Y=1, measure on predictions).
  /// Fails when the dataset has no ground truth.
  Result<OutcomeDataset> FilterByActual(uint8_t actual_value) const;

  /// Number of distinct locations (exact; sorts a copy).
  size_t CountDistinctLocations() const;

  /// One-line human summary: size, positives, rate, bbox.
  std::string Summary() const;

 private:
  std::string name_;
  std::vector<geo::Point> locations_;
  std::vector<uint8_t> predicted_;
  std::vector<uint8_t> actual_;  // empty when ground truth is unavailable
};

}  // namespace sfa::data

#endif  // SFA_DATA_DATASET_H_
