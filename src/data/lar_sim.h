// LarSim: a synthetic stand-in for the paper's LAR dataset (HMDA modified
// loan/application register, Bank of America 2021 — 206,418 applications at
// 50,647 census-tract centers, overall acceptance rate 0.62).
//
// The generator reproduces the three structural properties the paper's
// evaluation depends on:
//  1. highly irregular spatial density — tract-like locations are sampled
//     from a Gaussian mixture centered on US metros (population-weighted)
//     plus a uniform rural background, and applications are distributed over
//     locations with heavy-tailed (log-normal) weights;
//  2. a global positive rate of ~0.62 — the base acceptance probability is
//     solved analytically after locations are drawn so that the expected
//     overall rate matches the target exactly;
//  3. localized rate deviations — a configurable set of planted regions
//     whose local acceptance rate differs from the base (defaults follow the
//     paper's findings: a Bay-Area "green" region at ~0.84, Miami "red" at
//     ~0.43, and a few milder city-level effects).
//
// See DESIGN.md §3 for the substitution rationale.
#ifndef SFA_DATA_LAR_SIM_H_
#define SFA_DATA_LAR_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "geo/rect.h"

namespace sfa::data {

/// A rectangular area with a planted local acceptance rate.
struct PlantedRegion {
  std::string label;
  geo::Rect rect;
  double positive_rate = 0.5;
};

struct LarSimOptions {
  uint64_t num_locations = 50647;
  uint64_t num_applications = 206418;
  double overall_positive_rate = 0.62;
  /// Fraction of locations placed uniformly at random (rural background)
  /// rather than around a metro center.
  double rural_fraction = 0.12;
  uint64_t seed = 2021;
  /// Planted rate deviations; earlier entries win where regions overlap.
  /// Empty = spatially fair LAR (useful for null calibration tests).
  std::vector<PlantedRegion> planted = DefaultPlantedRegions();

  static std::vector<PlantedRegion> DefaultPlantedRegions();
};

struct LarSimResult {
  OutcomeDataset dataset;
  /// The tract-like location table (before application multiplicities).
  std::vector<geo::Point> tract_locations;
  /// The base rate solved so the expected overall rate hits the target.
  double base_rate = 0.0;
  /// Applications that fell in each planted region (parallel to planted).
  std::vector<uint64_t> planted_counts;
};

/// Generates the synthetic LAR dataset. Deterministic for a fixed seed.
Result<LarSimResult> MakeLarSim(const LarSimOptions& options);

}  // namespace sfa::data

#endif  // SFA_DATA_LAR_SIM_H_
