// CSV persistence for OutcomeDataset: header `lon,lat,predicted[,actual]`,
// RFC-4180-style quoting tolerated on read (quotes are only needed for the
// header-free numeric payload, but users may hand-edit files).
#ifndef SFA_DATA_CSV_H_
#define SFA_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace sfa::data {

/// Parses one CSV record, honoring double-quoted fields with "" escapes.
/// Exposed for testing.
Result<std::vector<std::string>> ParseCsvLine(const std::string& line);

/// Writes `dataset` to `path`. Emits the `actual` column only when ground
/// truth is present.
Status WriteCsv(const OutcomeDataset& dataset, const std::string& path);

/// Reads a dataset written by WriteCsv (or any CSV with columns lon, lat,
/// predicted and optionally actual, matched by header name,
/// case-insensitively). The dataset is named after the file.
Result<OutcomeDataset> ReadCsv(const std::string& path);

}  // namespace sfa::data

#endif  // SFA_DATA_CSV_H_
