#include "data/lar_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/us_geography.h"

namespace sfa::data {

std::vector<PlantedRegion> LarSimOptions::DefaultPlantedRegions() {
  // Rates chosen to mirror the paper's reported regions: the Bay Area plays
  // the Northern-California/San-Jose "green" region (local rate ~0.83-0.84),
  // Miami the strongest "red" region (~0.43). The remaining cities provide a
  // spectrum of milder deviations — real lending data is heterogeneous at
  // low amplitude almost everywhere — so that high-resolution partitionings
  // surface a few dozen significant partitions (paper Fig. 3: 59) and the
  // directional square scans surface a few dozen red/green exhibits
  // (Figs. 11/12: 27 red, 17 green, with Tampa and Orlando called out in
  // Fig. 5).
  return {
      {"Bay Area", geo::Rect(-122.80, 37.00, -121.60, 38.60), 0.835},
      {"Miami", geo::Rect(-80.50, 25.40, -80.05, 26.40), 0.430},
      {"Seattle", geo::Rect(-122.60, 47.20, -121.90, 47.90), 0.720},
      {"Detroit", geo::Rect(-83.50, 42.00, -82.70, 42.70), 0.520},
      {"Houston", geo::Rect(-95.80, 29.40, -95.00, 30.10), 0.550},
      {"Boston", geo::Rect(-71.40, 42.10, -70.80, 42.60), 0.710},
      // Milder, metro-scale deviations.
      {"Tampa", geo::Rect(-82.75, 27.70, -82.20, 28.20), 0.690},
      {"Orlando", geo::Rect(-81.70, 28.25, -81.10, 28.85), 0.545},
      {"New York", geo::Rect(-74.40, 40.45, -73.60, 41.05), 0.585},
      {"Los Angeles", geo::Rect(-118.70, 33.70, -117.80, 34.35), 0.665},
      {"Chicago", geo::Rect(-88.10, 41.55, -87.40, 42.20), 0.575},
      {"Phoenix", geo::Rect(-112.45, 33.15, -111.70, 33.80), 0.670},
      {"Dallas", geo::Rect(-97.20, 32.50, -96.40, 33.10), 0.585},
      {"Atlanta", geo::Rect(-84.75, 33.45, -84.05, 34.05), 0.570},
      {"Minneapolis", geo::Rect(-93.60, 44.70, -92.95, 45.25), 0.680},
      {"Denver", geo::Rect(-105.30, 39.45, -104.65, 40.05), 0.675},
      {"St. Louis", geo::Rect(-90.55, 38.35, -89.85, 38.95), 0.580},
      {"Portland", geo::Rect(-123.00, 45.25, -122.35, 45.80), 0.665},
  };
}

namespace {

// Spread of tract locations around a metro center, in degrees; larger metros
// sprawl further.
double MetroSigmaDegrees(double population_m) {
  return 0.03 + 0.06 * std::sqrt(population_m);
}

}  // namespace

Result<LarSimResult> MakeLarSim(const LarSimOptions& options) {
  if (options.num_locations == 0 || options.num_applications == 0) {
    return Status::InvalidArgument("LarSim needs locations and applications");
  }
  if (options.num_applications < options.num_locations) {
    return Status::InvalidArgument(
        "LarSim expects at least one application per location on average");
  }
  if (options.overall_positive_rate <= 0.0 || options.overall_positive_rate >= 1.0) {
    return Status::InvalidArgument("overall positive rate must be in (0, 1)");
  }
  if (options.rural_fraction < 0.0 || options.rural_fraction > 1.0) {
    return Status::InvalidArgument("rural fraction must be in [0, 1]");
  }
  for (const PlantedRegion& region : options.planted) {
    if (region.positive_rate < 0.0 || region.positive_rate > 1.0) {
      return Status::InvalidArgument("planted rate for '" + region.label +
                                     "' outside [0, 1]");
    }
    if (!(region.rect.Area() > 0.0)) {
      return Status::InvalidArgument("planted region '" + region.label +
                                     "' has empty extent");
    }
  }

  Rng rng(options.seed);
  const geo::Rect us = ContinentalUsBounds();
  const std::vector<Metro>& metros = UsMetros();
  std::vector<double> metro_weights;
  metro_weights.reserve(metros.size());
  for (const Metro& metro : metros) metro_weights.push_back(metro.population_m);

  LarSimResult result;
  result.dataset.set_name("LarSim");

  // --- 1. Tract-like locations: metro Gaussian mixture + rural background.
  result.tract_locations.reserve(options.num_locations);
  for (uint64_t i = 0; i < options.num_locations; ++i) {
    geo::Point p;
    if (rng.Bernoulli(options.rural_fraction)) {
      p = geo::Point(rng.Uniform(us.min_x, us.max_x), rng.Uniform(us.min_y, us.max_y));
    } else {
      const Metro& metro = metros[rng.Categorical(metro_weights)];
      const double sigma = MetroSigmaDegrees(metro.population_m);
      p = geo::Point(rng.Normal(metro.center.x, sigma),
                     rng.Normal(metro.center.y, sigma));
      p.x = std::clamp(p.x, us.min_x, us.max_x);
      p.y = std::clamp(p.y, us.min_y, us.max_y);
    }
    result.tract_locations.push_back(p);
  }

  // --- 2. Heavy-tailed application multiplicities over locations.
  std::vector<double> cumulative(options.num_locations);
  double total_weight = 0.0;
  for (uint64_t i = 0; i < options.num_locations; ++i) {
    total_weight += std::exp(rng.Normal(0.0, 1.0));  // log-normal weight
    cumulative[i] = total_weight;
  }
  std::vector<uint32_t> application_location(options.num_applications);
  for (uint64_t a = 0; a < options.num_applications; ++a) {
    const double u = rng.NextDouble() * total_weight;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    application_location[a] =
        static_cast<uint32_t>(std::min<size_t>(it - cumulative.begin(),
                                               options.num_locations - 1));
  }

  // --- 3. Base rate solved so the expected overall rate hits the target:
  //        base = (target*N - sum_r n_r * rate_r) / (N - sum_r n_r).
  result.planted_counts.assign(options.planted.size(), 0);
  std::vector<int32_t> region_of_application(options.num_applications, -1);
  for (uint64_t a = 0; a < options.num_applications; ++a) {
    const geo::Point& p = result.tract_locations[application_location[a]];
    for (size_t r = 0; r < options.planted.size(); ++r) {
      if (options.planted[r].rect.Contains(p)) {
        region_of_application[a] = static_cast<int32_t>(r);
        ++result.planted_counts[r];
        break;  // earlier planted regions win overlaps
      }
    }
  }
  double planted_total = 0.0;
  double planted_expected_positives = 0.0;
  for (size_t r = 0; r < options.planted.size(); ++r) {
    planted_total += static_cast<double>(result.planted_counts[r]);
    planted_expected_positives +=
        static_cast<double>(result.planted_counts[r]) * options.planted[r].positive_rate;
  }
  const auto n_total = static_cast<double>(options.num_applications);
  double base_rate =
      planted_total >= n_total
          ? options.overall_positive_rate
          : (options.overall_positive_rate * n_total - planted_expected_positives) /
                (n_total - planted_total);
  base_rate = std::clamp(base_rate, 0.02, 0.98);
  result.base_rate = base_rate;
  SFA_LOG(kDebug) << StrFormat("LarSim base rate %.4f (planted mass %.0f of %.0f)",
                               base_rate, planted_total, n_total);

  // --- 4. Outcomes.
  for (uint64_t a = 0; a < options.num_applications; ++a) {
    const geo::Point& p = result.tract_locations[application_location[a]];
    const int32_t r = region_of_application[a];
    const double rate =
        r < 0 ? base_rate : options.planted[static_cast<size_t>(r)].positive_rate;
    result.dataset.Add(p, rng.Bernoulli(rate) ? 1 : 0);
  }
  return result;
}

}  // namespace sfa::data
