#include "core/scan.h"

#include "common/macros.h"

namespace sfa::core {

namespace {

stats::ScanCounts MakeCounts(const RegionFamily& family, size_t region,
                             uint64_t positives, uint64_t total_n,
                             uint64_t total_p) {
  stats::ScanCounts c;
  c.n = family.PointCount(region);
  c.p = positives;
  c.total_n = total_n;
  c.total_p = total_p;
  return c;
}

}  // namespace

ScanResult ScanAllRegions(const RegionFamily& family, const Labels& labels,
                          stats::ScanDirection direction,
                          const stats::LogLikelihoodTable& table) {
  SFA_DCHECK(table.max_count() == labels.size());
  ScanResult result;
  result.total_n = labels.size();
  result.total_p = labels.positive_count();
  family.CountPositives(labels, &result.positives);
  result.llr.resize(family.num_regions());
  for (size_t r = 0; r < family.num_regions(); ++r) {
    const stats::ScanCounts counts =
        MakeCounts(family, r, result.positives[r], result.total_n, result.total_p);
    const double llr = stats::BernoulliLogLikelihoodRatio(counts, direction, table);
    result.llr[r] = llr;
    if (llr > result.max_llr) {
      result.max_llr = llr;
      result.argmax = r;
    }
  }
  return result;
}

ScanResult ScanAllRegions(const RegionFamily& family, const Labels& labels,
                          stats::ScanDirection direction) {
  // The shared k·log k table: identical arithmetic to the Monte Carlo
  // engine, so observed-vs-null ties are exact (see header contract).
  const stats::LogLikelihoodTable table(labels.size());
  return ScanAllRegions(family, labels, direction, table);
}

double ScanMaxStatistic(const RegionFamily& family, const Labels& labels,
                        stats::ScanDirection direction,
                        std::vector<uint64_t>* scratch,
                        const stats::LogLikelihoodTable& table) {
  SFA_CHECK(scratch != nullptr);
  family.CountPositives(labels, scratch);
  const uint64_t total_n = labels.size();
  const uint64_t total_p = labels.positive_count();
  double max_llr = 0.0;
  for (size_t r = 0; r < family.num_regions(); ++r) {
    const stats::ScanCounts counts =
        MakeCounts(family, r, (*scratch)[r], total_n, total_p);
    const double llr = stats::BernoulliLogLikelihoodRatio(counts, direction, table);
    if (llr > max_llr) max_llr = llr;
  }
  return max_llr;
}

double ScanMaxStatistic(const RegionFamily& family, const Labels& labels,
                        stats::ScanDirection direction,
                        std::vector<uint64_t>* scratch) {
  SFA_CHECK(scratch != nullptr);
  family.CountPositives(labels, scratch);
  const uint64_t total_n = labels.size();
  const uint64_t total_p = labels.positive_count();
  double max_llr = 0.0;
  for (size_t r = 0; r < family.num_regions(); ++r) {
    const stats::ScanCounts counts =
        MakeCounts(family, r, (*scratch)[r], total_n, total_p);
    const double llr = stats::BernoulliLogLikelihoodRatio(counts, direction);
    if (llr > max_llr) max_llr = llr;
  }
  return max_llr;
}

}  // namespace sfa::core
