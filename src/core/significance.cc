#include "core/significance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "core/mc_engine.h"
#include "stats/gumbel.h"

namespace sfa::core {

const char* NullModelToString(NullModel model) {
  switch (model) {
    case NullModel::kBernoulli:
      return "unconditional Bernoulli";
    case NullModel::kPermutation:
      return "conditional permutation";
  }
  return "?";
}

const char* McEngineToString(McEngine engine) {
  switch (engine) {
    case McEngine::kBatched:
      return "batched";
    case McEngine::kReference:
      return "per-world reference";
  }
  return "?";
}

NullDistribution::NullDistribution(std::vector<double> max_llrs)
    : sorted_max_(std::move(max_llrs)) {
  std::sort(sorted_max_.begin(), sorted_max_.end(), std::greater<double>());
}

double NullDistribution::PValue(double observed) const {
  SFA_CHECK(!sorted_max_.empty());
  // sorted_max_ is descending; upper_bound with greater<> yields the first
  // element strictly below `observed`, so everything before it is >= observed.
  const auto it = std::upper_bound(sorted_max_.begin(), sorted_max_.end(), observed,
                                   std::greater<double>());
  const auto geq = static_cast<size_t>(it - sorted_max_.begin());
  return static_cast<double>(1 + geq) / static_cast<double>(sorted_max_.size() + 1);
}

double NullDistribution::CriticalValue(double alpha) const {
  SFA_CHECK(!sorted_max_.empty());
  SFA_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha " << alpha << " outside (0,1)");
  const size_t w = sorted_max_.size() + 1;
  // Λ is significant iff (1 + #{null >= Λ}) / w <= alpha, i.e. at most
  // floor(alpha*w) - 1 null values may reach Λ. The threshold is the
  // (floor(alpha*w))-th largest null value: any Λ strictly above it wins.
  const auto budget = static_cast<size_t>(std::floor(alpha * static_cast<double>(w)));
  if (budget == 0) return std::numeric_limits<double>::infinity();
  return sorted_max_[budget - 1];
}

Result<double> NullDistribution::GumbelPValue(double observed) const {
  SFA_ASSIGN_OR_RETURN(stats::GumbelDistribution gumbel,
                       stats::GumbelDistribution::FitMoments(sorted_max_));
  return gumbel.UpperTail(observed);
}

Result<NullDistribution> SimulateNull(const RegionFamily& family, double rho,
                                      uint64_t total_positives,
                                      stats::ScanDirection direction,
                                      const MonteCarloOptions& options) {
  if (options.num_worlds == 0) {
    return Status::InvalidArgument("Monte Carlo needs at least one world");
  }
  if (rho < 0.0 || rho > 1.0) {
    return Status::InvalidArgument("rho must be in [0, 1]");
  }
  const size_t n = family.num_points();
  if (total_positives > n) {
    return Status::InvalidArgument("more positives than points");
  }
  return NullDistribution(
      RunMonteCarloWorlds(family, rho, total_positives, direction, options));
}

}  // namespace sfa::core
