#include "core/significance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "core/bernoulli_statistic.h"
#include "core/mc_engine.h"
#include "stats/gumbel.h"

namespace sfa::core {

const char* NullModelToString(NullModel model) {
  switch (model) {
    case NullModel::kBernoulli:
      return "unconditional Bernoulli";
    case NullModel::kPermutation:
      return "conditional permutation";
  }
  return "?";
}

const char* McEngineToString(McEngine engine) {
  switch (engine) {
    case McEngine::kBatched:
      return "batched";
    case McEngine::kReference:
      return "per-world reference";
  }
  return "?";
}

const char* SignificanceMethodToString(SignificanceMethod method) {
  switch (method) {
    case SignificanceMethod::kEmpirical:
      return "empirical";
    case SignificanceMethod::kGumbelTail:
      return "gumbel-tail";
    case SignificanceMethod::kAuto:
      return "auto";
  }
  return "?";
}

const char* McStopReasonToString(McStopReason reason) {
  switch (reason) {
    case McStopReason::kNone:
      return "none";
    case McStopReason::kCiBelowAlpha:
      return "ci-below-alpha";
    case McStopReason::kCiAboveAlpha:
      return "ci-above-alpha";
  }
  return "?";
}

void NullDistribution::AdoptOwned(std::vector<double> max_llrs) {
  std::sort(max_llrs.begin(), max_llrs.end(), std::greater<double>());
  // The vector's heap buffer is address-stable behind the shared_ptr, so the
  // span survives copies/moves of this object without custom copy control.
  auto owned = std::make_shared<const std::vector<double>>(std::move(max_llrs));
  maxima_ = std::span<const double>(owned->data(), owned->size());
  backing_ = std::move(owned);
}

NullDistribution::NullDistribution(std::vector<double> max_llrs) {
  worlds_requested_ = max_llrs.size();
  AdoptOwned(std::move(max_llrs));
}

NullDistribution::NullDistribution(std::vector<double> max_llrs,
                                   uint64_t worlds_requested,
                                   McStopReason stop_reason)
    : worlds_requested_(worlds_requested), stop_reason_(stop_reason) {
  SFA_CHECK_MSG(worlds_requested_ >= max_llrs.size(),
                "worlds_requested " << worlds_requested_ << " < completed "
                                    << max_llrs.size());
  AdoptOwned(std::move(max_llrs));
}

NullDistribution::NullDistribution(std::span<const double> sorted_maxima,
                                   std::shared_ptr<const void> backing,
                                   uint64_t worlds_requested,
                                   McStopReason stop_reason)
    : maxima_(sorted_maxima),
      backing_(std::move(backing)),
      worlds_requested_(worlds_requested),
      stop_reason_(stop_reason),
      zero_copy_(true) {
  SFA_CHECK_MSG(worlds_requested_ >= maxima_.size(),
                "worlds_requested " << worlds_requested_ << " < completed "
                                    << maxima_.size());
  // Sorted-descending is the caller's contract (checked once at frame
  // validation); spot-check the ends so a grossly wrong span fails fast.
  SFA_DCHECK(maxima_.empty() || maxima_.front() >= maxima_.back());
}

double NullDistribution::PValue(double observed) const {
  SFA_CHECK(!maxima_.empty());
  // maxima_ is descending; upper_bound with greater<> yields the first
  // element strictly below `observed`, so everything before it is >= observed.
  const auto it = std::upper_bound(maxima_.begin(), maxima_.end(), observed,
                                   std::greater<double>());
  const auto geq = static_cast<size_t>(it - maxima_.begin());
  return static_cast<double>(1 + geq) / static_cast<double>(maxima_.size() + 1);
}

double NullDistribution::CriticalValue(double alpha) const {
  SFA_CHECK(!maxima_.empty());
  SFA_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha " << alpha << " outside (0,1)");
  const size_t w = maxima_.size() + 1;
  // Λ is significant iff (1 + #{null >= Λ}) / w <= alpha, i.e. at most
  // floor(alpha*w) - 1 null values may reach Λ. The threshold is the
  // (floor(alpha*w))-th largest null value: any Λ strictly above it wins.
  const auto budget = static_cast<size_t>(std::floor(alpha * static_cast<double>(w)));
  if (budget == 0) return std::numeric_limits<double>::infinity();
  return maxima_[budget - 1];
}

Result<double> NullDistribution::GumbelPValue(double observed) const {
  // Degenerate nulls (constant maxima — e.g. tiny families where every
  // world scans to 0) have no tail to fit; make the failure mode explicit
  // rather than leaving it to the moments fit's sample-variance check.
  if (maxima_.size() < 2 || maxima_.front() == maxima_.back()) {
    return Status::FailedPrecondition(
        "Gumbel tail fit needs >= 2 distinct simulated maxima");
  }
  SFA_ASSIGN_OR_RETURN(stats::GumbelDistribution gumbel,
                       stats::GumbelDistribution::FitMoments(maxima_));
  return gumbel.UpperTail(observed);
}

TailFit NullDistribution::AssessTailFit(double max_ks) const {
  TailFit fit;
  if (maxima_.size() < 2 || maxima_.front() == maxima_.back()) {
    return fit;  // degenerate: fitted = false, ks = 1
  }
  auto fitted = stats::GumbelDistribution::FitMoments(maxima_);
  if (!fitted.ok()) return fit;
  fit.fitted = true;
  fit.mu = fitted->mu();
  fit.beta = fitted->beta();
  // Two-sided KS distance of the fitted CDF against the empirical maxima,
  // evaluated at both sides of every jump. maxima_ is descending, so
  // index size-1-i walks the samples ascending; ties are covered because
  // every tied index contributes both its lower and upper ECDF step, which
  // bracket the true jump.
  const double n = static_cast<double>(maxima_.size());
  double d = 0.0;
  for (size_t i = 0; i < maxima_.size(); ++i) {
    const double x = maxima_[maxima_.size() - 1 - i];
    const double f = fitted->Cdf(x);
    d = std::max(d, (static_cast<double>(i) + 1.0) / n - f);
    d = std::max(d, f - static_cast<double>(i) / n);
  }
  fit.ks_distance = d;
  fit.ok = d <= max_ks;
  return fit;
}

PValueEstimate NullDistribution::ResolvePValue(double observed,
                                               SignificanceMethod method,
                                               double max_ks) const {
  SFA_CHECK(!maxima_.empty());
  PValueEstimate estimate;
  estimate.p_value = PValue(observed);
  estimate.method = SignificanceMethod::kEmpirical;

  const bool beyond_simulated = observed > maxima_.front();
  const bool want_tail =
      method == SignificanceMethod::kGumbelTail ||
      (method == SignificanceMethod::kAuto && beyond_simulated);
  if (!want_tail) return estimate;

  const TailFit fit = AssessTailFit(max_ks);
  estimate.tail_fit_ok = fit.ok;
  estimate.tail_ks = fit.ks_distance;
  if (!fit.ok) return estimate;  // clean degradation to empirical

  const stats::GumbelDistribution gumbel(fit.mu, fit.beta);
  double tail_p = gumbel.UpperTail(observed);
  if (method == SignificanceMethod::kAuto) {
    // kAuto only fires beyond the simulated range, where the empirical
    // p-value saturates at its resolution cap 1/(W+1); keep the tail value
    // under that cap so auto p-values are monotone in the evidence.
    tail_p = std::min(tail_p, estimate.p_value);
  }
  estimate.p_value = tail_p;
  estimate.method = SignificanceMethod::kGumbelTail;
  return estimate;
}

CriticalValueInfo NullDistribution::CriticalValueEx(double alpha,
                                                    bool tail_advisory,
                                                    double max_ks) const {
  SFA_CHECK(!maxima_.empty());
  SFA_CHECK_MSG(alpha > 0.0 && alpha < 1.0, "alpha " << alpha << " outside (0,1)");
  CriticalValueInfo info;
  const size_t w = maxima_.size() + 1;
  const auto budget = static_cast<size_t>(std::floor(alpha * static_cast<double>(w)));
  if (budget > 0) {
    info.value = maxima_[budget - 1];
    info.resolvable = true;
    return info;
  }
  if (tail_advisory) {
    const TailFit fit = AssessTailFit(max_ks);
    if (fit.ok) {
      info.value = stats::GumbelDistribution(fit.mu, fit.beta).Quantile(1.0 - alpha);
      info.advisory_tail = true;
      return info;
    }
  }
  info.value = std::numeric_limits<double>::infinity();
  return info;
}

Status ValidateMonteCarloOptions(const MonteCarloOptions& options) {
  if (options.num_worlds == 0) {
    return Status::InvalidArgument("Monte Carlo needs at least one world");
  }
  if (options.adaptive.enabled) {
    if (!(options.adaptive.alpha > 0.0 && options.adaptive.alpha < 1.0)) {
      return Status::InvalidArgument(
          "adaptive Monte Carlo alpha must be in (0, 1)");
    }
    if (!(options.adaptive.z > 0.0)) {
      return Status::InvalidArgument("adaptive Monte Carlo z must be > 0");
    }
    if (!std::isfinite(options.adaptive.observed)) {
      return Status::InvalidArgument(
          "adaptive Monte Carlo observed statistic must be finite");
    }
    if (options.adaptive.check_every == 0) {
      return Status::InvalidArgument(
          "adaptive Monte Carlo check_every must be >= 1");
    }
    if (options.adaptive.min_worlds == 0) {
      return Status::InvalidArgument(
          "adaptive Monte Carlo min_worlds must be >= 1");
    }
  }
  return Status::OK();
}

Result<NullDistribution> SimulateNull(const RegionFamily& family, double rho,
                                      uint64_t total_positives,
                                      stats::ScanDirection direction,
                                      const MonteCarloOptions& options) {
  SFA_RETURN_NOT_OK(ValidateMonteCarloOptions(options));
  if (rho < 0.0 || rho > 1.0) {
    return Status::InvalidArgument("rho must be in [0, 1]");
  }
  const size_t n = family.num_points();
  if (total_positives > n) {
    return Status::InvalidArgument("more positives than points");
  }
  if (!options.adaptive.enabled) {
    return NullDistribution(
        RunMonteCarloWorlds(family, rho, total_positives, direction, options));
  }
  // Adaptive runs need an outcome to carry the stop metadata; the legacy
  // non-adaptive path above stays unstoppable (its historical contract).
  const BernoulliScanStatistic statistic(direction, n, total_positives, rho);
  const std::unique_ptr<StatisticSimulation> simulation =
      statistic.MakeSimulation(family, options);
  McRunOutcome outcome;
  std::vector<double> max_llrs =
      RunMonteCarloWorlds(*simulation, options, &outcome);
  if (!outcome.complete) return outcome.stop_cause;
  return NullDistribution(std::move(max_llrs), options.num_worlds,
                          outcome.stop_reason);
}

}  // namespace sfa::core
