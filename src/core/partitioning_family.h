// Region family over a *collection* of rectangular partitionings: the union
// of all partitions of all partitionings, with per-point partition ids
// memoized per partitioning. This is the family used in the paper's §4.2
// "Is it fair?" experiment, where the audit is restricted to the same 100
// random partitionings the MeanVar baseline evaluates.
#ifndef SFA_CORE_PARTITIONING_FAMILY_H_
#define SFA_CORE_PARTITIONING_FAMILY_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/region_family.h"
#include "geo/partitioning.h"
#include "geo/point.h"

namespace sfa::core {

class PartitioningCollectionFamily : public RegionFamily {
 public:
  /// Binds `partitionings` to `points`. Region indices are the concatenation
  /// of each partitioning's partitions, in order.
  static Result<std::unique_ptr<PartitioningCollectionFamily>> Create(
      const std::vector<geo::Point>& points,
      std::vector<geo::Partitioning> partitionings);

  size_t num_regions() const override { return total_regions_; }
  size_t num_points() const override { return num_points_; }
  RegionDescriptor Describe(size_t r) const override;
  uint64_t PointCount(size_t r) const override { return point_counts_[r]; }
  void CountPositives(const Labels& labels,
                      std::vector<uint64_t>* out) const override;
  /// Each partitioning's assignment array is streamed once per batch.
  void CountPositivesBatch(const Labels* const* batch, size_t num_worlds,
                           uint64_t* out) const override;
  /// Same streaming pass, scattering each point into the class histogram of
  /// every partitioning it feeds.
  void CountClassesBatch(const uint8_t* const* class_worlds, size_t num_worlds,
                         uint32_t num_classes, uint64_t* out) const override;
  /// Non-null only for a single partitioning: its partitions then tile the
  /// points and closed-form Binomial sampling applies. With several
  /// partitionings the same point feeds regions of every partitioning, so
  /// per-region counts are jointly coupled through point-level labels and no
  /// disjoint decomposition exists.
  const CellDecomposition* cell_decomposition() const override {
    return single_partitioning_cells_.cell_counts.empty()
               ? nullptr
               : &single_partitioning_cells_;
  }
  void CountPositivesFromCells(const uint32_t* cell_positives,
                               uint64_t* out) const override;
  std::string Name() const override;

  size_t num_partitionings() const { return partitionings_.size(); }
  const geo::Partitioning& partitioning(size_t t) const { return partitionings_[t]; }

  /// (partitioning index, partition id within it) of region `r`.
  std::pair<size_t, uint32_t> Locate(size_t r) const;

  /// First region index of partitioning `t`.
  size_t RegionOffset(size_t t) const { return offsets_[t]; }

 private:
  PartitioningCollectionFamily(const std::vector<geo::Point>& points,
                               std::vector<geo::Partitioning> partitionings);

  std::vector<geo::Partitioning> partitionings_;
  // assignment_[t][i]: partition id of point i in partitioning t.
  std::vector<std::vector<uint32_t>> assignment_;
  std::vector<size_t> offsets_;  // prefix sums of partitions per partitioning
  std::vector<uint64_t> point_counts_;
  CellDecomposition single_partitioning_cells_;  // populated iff T == 1
  size_t total_regions_ = 0;
  size_t num_points_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_PARTITIONING_FAMILY_H_
