// Equal-odds spatial audit: the conjunction of equal opportunity (TPR) and
// predictive equality (FPR). A model satisfies spatial equal odds when BOTH
// error-rate surfaces are independent of location (paper §2.1/§3: "the case
// in which both the true positive rate and the false positive rate are
// equal ... is called equal odds").
//
// The two component audits run on different measure views (Y=1 and Y=0
// individuals), each against its own region family bound to that view's
// locations; the joint verdict applies a Bonferroni split (alpha/2 each), so
// the family-wise type-I error stays below alpha.
#ifndef SFA_CORE_EQUAL_ODDS_H_
#define SFA_CORE_EQUAL_ODDS_H_

#include <functional>
#include <memory>

#include "common/status.h"
#include "core/audit.h"

namespace sfa::core {

struct EqualOddsResult {
  AuditResult tpr;  ///< equal-opportunity audit (Y=1 view)
  AuditResult fpr;  ///< predictive-equality audit (Y=0 view)
  bool spatially_fair = true;  ///< both components fair at alpha/2
  double alpha = 0.0;          ///< the joint level
};

/// Builds a region family bound to a measure view's locations. Users supply
/// this so any family type works (grid, squares, rectangle sweep, custom).
using FamilyFactory = std::function<Result<std::unique_ptr<RegionFamily>>(
    const std::vector<geo::Point>& locations)>;

/// Runs the joint equal-odds audit of `dataset` (must carry ground truth).
/// `options.measure` is ignored; `options.alpha` is the JOINT level (each
/// component tests at alpha/2).
Result<EqualOddsResult> AuditEqualOdds(const data::OutcomeDataset& dataset,
                                       const FamilyFactory& make_family,
                                       const AuditOptions& options);

}  // namespace sfa::core

#endif  // SFA_CORE_EQUAL_ODDS_H_
