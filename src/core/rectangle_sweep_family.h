// Region family of ALL grid-aligned rectangles of an nx x ny grid —
// nx(nx+1)/2 * ny(ny+1)/2 regions. This is the exhaustive rectangle scan in
// the spirit of Kulldorff's original proposal and of the "all possible
// rectangular partitionings" view in Xie et al.: no scan-center placement
// heuristic can miss a grid-aligned deviation.
//
// Counting strategy: point counts per cell are aggregated into a 2-d prefix
// sum once; per Monte Carlo world, positive counts per cell are accumulated
// in O(N) and folded into a second prefix sum, after which every rectangle's
// (n, p) is two O(1) lookups. A world therefore costs O(N + R) where
// R = number of rectangles — practical up to ~32x32 grids (~280k regions).
//
// Because R grows as O(nx^2 * ny^2), Describe()/PointCount() compute the
// rectangle decomposition from the region index arithmetically instead of
// materializing descriptors.
#ifndef SFA_CORE_RECTANGLE_SWEEP_FAMILY_H_
#define SFA_CORE_RECTANGLE_SWEEP_FAMILY_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/region_family.h"
#include "geo/grid.h"
#include "spatial/grid_index.h"
#include "spatial/prefix_sum_2d.h"

namespace sfa::core {

class RectangleSweepFamily : public RegionFamily {
 public:
  /// Builds the family over `points` with a g_x x g_y base grid covering
  /// their bounding box. Fails when the rectangle count would exceed
  /// `max_regions` (default 1M), since Monte Carlo cost is linear in it.
  static Result<std::unique_ptr<RectangleSweepFamily>> Create(
      const std::vector<geo::Point>& points, uint32_t g_x, uint32_t g_y,
      size_t max_regions = 1u << 20);

  size_t num_regions() const override { return num_regions_; }
  size_t num_points() const override { return index_.num_points(); }
  RegionDescriptor Describe(size_t r) const override;
  uint64_t PointCount(size_t r) const override;
  void CountPositives(const Labels& labels,
                      std::vector<uint64_t>* out) const override;
  /// One O(N) class scatter per world fills all K−1 per-cell histograms, then
  /// one prefix-sum rebuild + O(1)-per-rectangle fold per class.
  void CountClassesBatch(const uint8_t* const* class_worlds, size_t num_worlds,
                         uint32_t num_classes, uint64_t* out) const override;
  /// Every rectangle aggregates base-grid cells, so per-cell positives
  /// determine all region counts: the base cells form the decomposition and
  /// closed-form Binomial sampling applies.
  const CellDecomposition* cell_decomposition() const override { return &cells_; }
  void CountPositivesFromCells(const uint32_t* cell_positives,
                               uint64_t* out) const override;
  std::string Name() const override;

  const geo::GridSpec& grid() const { return index_.grid(); }

  /// Decomposes a region index into its cell-range rectangle
  /// [x0, x1) x [y0, y1) (exposed for tests).
  struct CellRange {
    uint32_t x0, x1, y0, y1;
  };
  CellRange DecodeRegion(size_t r) const;

 private:
  RectangleSweepFamily(const geo::GridSpec& grid,
                       const std::vector<geo::Point>& points);

  /// O(1)-per-rectangle fold of a per-cell summed-area table into the
  /// canonical region order.
  void FoldPrefixIntoRegions(const spatial::PrefixSum2D& positive_prefix,
                             uint64_t* out) const;

  spatial::GridIndex index_;
  spatial::PrefixSum2D count_prefix_;  // point counts (fixed)
  CellDecomposition cells_;            // base-grid cells (+ extent misses)
  std::vector<uint64_t> point_counts_;  // n(R) cached in canonical order
  size_t num_regions_ = 0;
  // Numbers of (begin, end) column/row intervals: nx(nx+1)/2 and ny(ny+1)/2.
  size_t x_intervals_ = 0;
  size_t y_intervals_ = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_RECTANGLE_SWEEP_FAMILY_H_
