// Shared null-calibration cache for multi-audit workloads.
//
// Under a fixed null model the simulated NullDistribution of the max scan
// statistic depends only on the simulation inputs: the region family's
// counting structure, the measure view's totals (N, P — and through them
// ρ = P/N), the scan direction, and the Monte Carlo options that shape the
// random draws. It does NOT depend on which request asked for it — so a
// batch that audits the same city at several α levels, or statistical-parity
// and equal-odds slices that happen to share a family binding and totals,
// needs ONE Monte Carlo run where the naive loop pays W-1 worlds per
// request. This cache keys calibrations by a content hash of exactly those
// inputs and shares the resulting NullDistribution across requests.
//
// Keys deliberately EXCLUDE the execution-only Monte Carlo knobs (engine,
// batch_size, parallel): the world engine guarantees bit-identical maxima
// across all of them (core/mc_engine.h), so requests differing only there
// still share one calibration. Everything that can shift a drawn value —
// num_worlds, null model, seed, closed_form_cells (different RNG stream) —
// is hashed, and so is the ScanStatistic's Fingerprint(): the statistic's
// kind, configuration (direction / class count), and view totals beyond N
// are part of the calibration identity, so a Bernoulli and a multinomial
// calibration over the same family and N can never collide in the cache or
// the persistent store.
#ifndef SFA_CORE_CALIBRATION_CACHE_H_
#define SFA_CORE_CALIBRATION_CACHE_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/region_family.h"
#include "core/significance.h"
#include "stats/bernoulli_scan.h"

namespace sfa::core {

class CalibrationStore;  // core/calibration_store.h
class ScanStatistic;     // core/scan_statistic.h

/// Content-hashed identity of one null calibration.
struct CalibrationKey {
  /// 64-bit content hash over the family fingerprint (Name(), point and
  /// region counts, per-region n(R), cell profile, and the count vectors of
  /// three fixed pseudo-random probe worlds — the latter capture membership
  /// structure that size profiles miss), the view totals, the direction,
  /// and the draw-relevant Monte Carlo options.
  uint64_t hash = 0;
  /// Human-readable rendering for manifests and collision disambiguation;
  /// equality compares BOTH hash and this string.
  std::string debug;

  bool operator==(const CalibrationKey& other) const {
    return hash == other.hash && debug == other.debug;
  }
  bool operator!=(const CalibrationKey& other) const { return !(*this == other); }
};

/// The family-only part of the key: Name(), size profiles, and the probe
/// worlds. This walks every region and runs three CountPositives passes, so
/// batch executors computing keys for many requests against one family
/// should compute it once per family and use the fingerprint overload below
/// (the fingerprint is a pure function of the immutable family).
uint64_t FamilyFingerprint(const RegionFamily& family);

/// Builds the calibration key for `statistic` (which carries the view totals
/// and its own fingerprint; statistic.total_n() must equal
/// family.num_points()) simulated over `family` with `options`.
CalibrationKey MakeCalibrationKey(const RegionFamily& family,
                                  const ScanStatistic& statistic,
                                  const MonteCarloOptions& options);

/// Same, with a precomputed FamilyFingerprint(family).
CalibrationKey MakeCalibrationKey(const RegionFamily& family,
                                  uint64_t fingerprint,
                                  const ScanStatistic& statistic,
                                  const MonteCarloOptions& options);

/// Bernoulli convenience overloads (the pre-statistic-layer signatures):
/// key the binary statistic over (N, P, direction).
CalibrationKey MakeCalibrationKey(const RegionFamily& family, uint64_t total_n,
                                  uint64_t total_p,
                                  stats::ScanDirection direction,
                                  const MonteCarloOptions& options);
CalibrationKey MakeCalibrationKey(const RegionFamily& family,
                                  uint64_t fingerprint, uint64_t total_n,
                                  uint64_t total_p,
                                  stats::ScanDirection direction,
                                  const MonteCarloOptions& options);

/// Execution-only context handed to a calibration computation by
/// CalibrationCache::GetOrCompute. When the cross-process lease fabric is
/// active (CalibrationStore::Options::lease_ttl_ms > 0), `heartbeat` reports
/// the holder's liveness through the key's lease file — wire it into
/// MonteCarloOptions::heartbeat so it fires at world-batch boundaries
/// (rate-limited internally, thread-safe, free when called often). May be
/// empty (no fabric): callers must check before invoking.
struct ComputeContext {
  std::function<void()> heartbeat;
};

/// Thread-safe get-or-compute cache of NullDistributions. Values are
/// immutable and shared by pointer; a cached hit therefore yields the exact
/// same distribution object a fresh simulation would produce (the simulation
/// is deterministic in the key's inputs). Single-flight: concurrent callers
/// of the same key run the computation once and share its result (or its
/// error).
///
/// Internally striped: slots live in kNumShards independent shards selected
/// by the key's content hash, each with its own mutex and wakeup CV, so
/// lookups of distinct keys from many stream workers don't serialize on one
/// lock. Striping is invisible to callers — single-flight still holds per
/// key (a key maps to exactly one shard), and stats() aggregates across
/// shards.
class CalibrationCache {
 public:
  static constexpr size_t kNumShards = 16;
  struct Stats {
    uint64_t hits = 0;    ///< lookups served from a finished entry
    uint64_t misses = 0;  ///< lookups that ran (or joined) a computation
    uint64_t entries = 0; ///< distinct calibrations currently cached
    uint64_t store_hits = 0;   ///< misses served by the persistent store
    uint64_t store_writes = 0; ///< persists: write-behind queued, or leased
                               ///< write-throughs that landed
  };

  /// Where a GetOrCompute value came from. Diagnostic only — the value is
  /// byte-identical across all three sources (that is the point of the
  /// content-hashed key and the deterministic simulation).
  enum class Source {
    kMemory,    ///< already cached in memory (or joined an in-flight compute)
    kStore,     ///< read through from the attached CalibrationStore
    kComputed,  ///< simulated fresh by this call
  };

  CalibrationCache() = default;
  /// Blocks on outstanding write-behind persists (see AttachStore).
  ~CalibrationCache();
  CalibrationCache(const CalibrationCache&) = delete;
  CalibrationCache& operator=(const CalibrationCache&) = delete;

  /// Attaches a persistent backing store, making the cache a read-through /
  /// write-behind layer: a memory miss first consults the store (a valid
  /// frame is adopted without simulating), and freshly computed calibrations
  /// are persisted asynchronously on the default thread pool so the compute
  /// path never waits on disk. Call FlushStore() (or destroy the cache)
  /// before relying on durability. Attach at most once, before concurrent
  /// use; `store` is shared because write-behind tasks may outlive callers.
  void AttachStore(std::shared_ptr<CalibrationStore> store);
  const std::shared_ptr<CalibrationStore>& store() const { return store_; }

  /// Blocks until every queued write-behind persist has landed on disk.
  void FlushStore();

  using ComputeFn =
      std::function<Result<NullDistribution>(const ComputeContext&)>;
  /// Polled while this process is blocked on a FOREIGN process's lease for
  /// the key; returning true abandons the wait and runs `compute` locally
  /// (whose own cancel/deadline checks then decide promptly — and if it does
  /// run to completion, the result is byte-identical to the holder's, merely
  /// duplicated). Empty = wait for the holder indefinitely.
  using WaitStopped = std::function<bool()>;

  /// Returns the calibration for `key`, invoking `compute` at most once per
  /// key (errors are NOT cached: a failed computation clears the slot so a
  /// later call may retry). `compute` runs without the cache lock held and
  /// may itself parallelize on the shared pool. `source` (optional) reports
  /// where the value came from.
  ///
  /// With a lease-enabled store attached, single-flight extends across
  /// processes: the in-process owner additionally acquires the key's lease
  /// file before simulating (re-checking the store after acquisition, since
  /// a previous holder may have just persisted the frame), heartbeats
  /// through ComputeContext while computing, writes the frame THROUGH
  /// synchronously (not behind — peers re-check the store the moment the
  /// lease releases), and releases. When a live foreign process holds the
  /// lease, this process polls the store (lease_wait_poll_ms) instead of
  /// simulating; a holder that dies is taken over via the store's staleness
  /// rules and costs at most one recompute.
  Result<std::shared_ptr<const NullDistribution>> GetOrCompute(
      const CalibrationKey& key, const ComputeFn& compute,
      Source* source = nullptr, const WaitStopped& wait_stopped = nullptr);

  /// Context-free convenience overload for computations that don't report
  /// heartbeats (batch paths, tests).
  Result<std::shared_ptr<const NullDistribution>> GetOrCompute(
      const CalibrationKey& key,
      const std::function<Result<NullDistribution>()>& compute,
      Source* source = nullptr);

  /// Lookup without computing; nullptr when absent or still in flight. A
  /// successful lookup counts as a hit in stats(); a failed one changes
  /// nothing (the caller presumably proceeds to GetOrCompute, which records
  /// the miss).
  std::shared_ptr<const NullDistribution> Lookup(const CalibrationKey& key) const;

  Stats stats() const;

  /// Drops every cached calibration and resets the stats.
  void Clear();

 private:
  struct Slot {
    std::shared_ptr<const NullDistribution> value;
    Status status = Status::OK();
    bool ready = false;
  };

  /// One lock stripe: its own mutex, single-flight wakeup CV, slot map, and
  /// stat counters (aggregated by stats()).
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable slot_ready;
    /// Keyed by the debug rendering (which embeds the content hash), so two
    /// keys collide only when hash AND rendering agree — CalibrationKey
    /// equality exactly.
    std::unordered_map<std::string, std::shared_ptr<Slot>> slots;
    mutable uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t store_hits = 0;
    uint64_t store_writes = 0;
  };

  /// The key's shard. The content hash is already SplitMix64-dispersed, so
  /// the low bits stripe evenly.
  Shard& ShardFor(const CalibrationKey& key) const {
    return shards_[key.hash % kNumShards];
  }

  /// The cross-process arm of the owner path: lease-acquire / store-recheck
  /// / compute-with-heartbeat / write-through / release, or poll a live
  /// foreign holder. Sets *from_store when the frame came off disk and
  /// *wrote_through when this call already persisted it (suppressing the
  /// write-behind).
  Result<NullDistribution> ComputeWithLease(const CalibrationStore& store,
                                            const CalibrationKey& key,
                                            const ComputeFn& compute,
                                            const WaitStopped& wait_stopped,
                                            bool* from_store,
                                            bool* wrote_through) const;

  mutable std::array<Shard, kNumShards> shards_;
  /// Persistence layer. Immutable after AttachStore, which the contract
  /// requires to happen before concurrent use — reads take no lock.
  std::shared_ptr<CalibrationStore> store_;
  /// Outstanding write-behind persists; FlushStore waits on it (helping).
  ThreadPool::TaskGroup store_writes_group_;
};

}  // namespace sfa::core

#endif  // SFA_CORE_CALIBRATION_CACHE_H_
