// The region family abstraction: the predetermined set of regions R the
// audit scans (paper §3, "a predetermined set of regions R").
//
// A family is bound to a fixed point set at construction. Point counts
// n(R) never change; positive counts p(R) depend on the label assignment
// and are re-evaluated once per Monte Carlo world, so implementations
// precompute whatever geometry lets CountPositives run in (near) linear
// time:
//
//   GridPartitionFamily        cells of one regular grid       O(N) / world
//   PartitioningCollectionFamily  all partitions of many
//                              rectangular partitionings       O(T·N) / world
//   SquareScanFamily           k-means-centered squares of
//                              several side lengths            popcount / world
//
// Two optional fast paths serve the batched Monte Carlo engine:
//
//   CountPositivesBatch  evaluates B worlds per pass over the family's
//                        geometry, amortizing memory traffic (tuned
//                        overrides in every bundled family);
//   cell_decomposition   declares that p(R) is a pure function of positive
//                        counts over a disjoint cell partition of the
//                        points, letting the engine draw per-cell positives
//                        in closed form — Binomial(n_c, ρ) per cell, O(cells)
//                        instead of O(N) per Bernoulli null world.
#ifndef SFA_CORE_REGION_FAMILY_H_
#define SFA_CORE_REGION_FAMILY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/labels.h"
#include "geo/rect.h"

namespace sfa::core {

/// Counting backend of the memoized overlapping families (SquareScanFamily,
/// KnnCircleFamily). Both backends produce identical integer counts — and
/// therefore bit-identical Monte Carlo null distributions for a fixed seed —
/// the choice trades memory and per-world cost only
/// (tests/test_annulus_index.cc enforces the equivalence).
enum class CountingBackend {
  /// Per-center nested ladders stored once as a point-major sparse CSR of
  /// (point, annulus-rank) entries (core/annulus_index.h); worlds are counted
  /// by scattering only their positive points into per-center annulus
  /// histograms. ~L× less membership memory and construction work for an
  /// L-rung ladder, no dense label bits touched. The default.
  kSparseAnnulus,
  /// One dense membership bit vector per region, AND+popcount against the
  /// world's label bits — the reference path.
  kDenseBits,
};

const char* CountingBackendToString(CountingBackend backend);

/// Static description of one region in a family.
struct RegionDescriptor {
  geo::Rect rect;
  std::string label;
  /// Group regions that should compete with each other during evidence
  /// selection (e.g. all side lengths of one scan center share a group; for
  /// partition families every region is its own group).
  uint32_t group = 0;
};

/// Disjoint-cell decomposition of a family's point set. Cells are pairwise
/// disjoint; every point belongs to exactly one cell or is "outside" (counted
/// toward N and P but toward no region). Valid only when per-region positive
/// counts are a pure function of per-cell positive counts
/// (CountPositivesFromCells).
struct CellDecomposition {
  /// Bound points per cell.
  std::vector<uint32_t> cell_counts;
  /// Points belonging to no cell (e.g. outside the grid extent).
  uint64_t num_outside = 0;
};

class RegionFamily {
 public:
  virtual ~RegionFamily() = default;

  /// Number of regions scanned.
  virtual size_t num_regions() const = 0;

  /// Number of points the family is bound to.
  virtual size_t num_points() const = 0;

  /// Static description of region `r`.
  virtual RegionDescriptor Describe(size_t r) const = 0;

  /// n(R): number of bound points inside region `r`.
  virtual uint64_t PointCount(size_t r) const = 0;

  /// p(R) for every region under `labels` (labels.size() == num_points()).
  /// `out` is resized to num_regions(). Must be thread-safe for concurrent
  /// calls with distinct `out` buffers AND distinct (or bit-materialized)
  /// Labels: the bit view of Labels is built lazily on first access, so
  /// sharing one Labels instance across threads requires calling
  /// labels.bits() once beforehand. The Monte Carlo engine's label pools are
  /// thread-local, satisfying this by construction.
  virtual void CountPositives(const Labels& labels,
                              std::vector<uint64_t>* out) const = 0;

  /// p(R) for `num_worlds` label worlds in one pass. `out` is a row-major
  /// [num_worlds x num_regions()] buffer owned by the caller. The base
  /// implementation loops over CountPositives; families override it to
  /// amortize passes over their geometry across worlds. Same thread-safety
  /// contract as CountPositives. Results must be identical to per-world
  /// CountPositives calls (counts are integers; the equivalence is exact and
  /// is enforced by test_mc_engine.cc).
  virtual void CountPositivesBatch(const Labels* const* batch, size_t num_worlds,
                                   uint64_t* out) const;

  /// Per-region class histograms for `num_worlds` packed K-class worlds in
  /// one pass — the native multi-class counterpart of CountPositivesBatch.
  /// `class_worlds[w]` points at num_points() class codes, each in
  /// [0, num_classes). Only classes 0..num_classes-2 are counted (the last
  /// class is derivable as n(R) minus the counted classes, mirroring the
  /// K−1 indicator construction it replaces); `out` is a row-major
  /// [num_worlds x (num_classes−1) x num_regions()] caller-owned buffer with
  /// row offsets given by ClassCountRowOffset below. The base implementation
  /// packs per-class indicator labels and loops CountPositives — the
  /// reference oracle; families override it to count all classes in a single
  /// pass over their geometry. Counts are integers, so overrides must be
  /// exactly equal to the reference (enforced per family by
  /// tests/test_multinomial_scan.cc and tests/test_annulus_index.cc). Same
  /// thread-safety contract as CountPositives.
  virtual void CountClassesBatch(const uint8_t* const* class_worlds,
                                 size_t num_worlds, uint32_t num_classes,
                                 uint64_t* out) const;

  /// The family's cell decomposition, or nullptr when region counts are not
  /// cell-decomposable (the default). The returned pointer must stay valid
  /// for the family's lifetime.
  virtual const CellDecomposition* cell_decomposition() const { return nullptr; }

  /// Maps per-cell positive counts (parallel to cell_decomposition()->
  /// cell_counts) to per-region positives in `out` (size num_regions(),
  /// caller-owned). Only called when cell_decomposition() is non-null; the
  /// default aborts. Must be thread-safe for distinct `out` buffers.
  virtual void CountPositivesFromCells(const uint32_t* cell_positives,
                                       uint64_t* out) const;

  /// Human-readable one-liner for reports.
  virtual std::string Name() const = 0;
};

/// Flat offset of the (world, class) row inside a CountClassesBatch output
/// buffer. All operands are widened to size_t BEFORE any multiplication: at
/// paper-scale configs (hundreds of thousands of worlds x regions) the
/// products overflow 32-bit arithmetic, so callers must never form these
/// offsets from narrower intermediates (pinned by tests/test_multinomial_scan).
constexpr size_t ClassCountRowOffset(size_t world, uint32_t klass,
                                     uint32_t classes_counted,
                                     size_t num_regions) {
  return (world * static_cast<size_t>(classes_counted) +
          static_cast<size_t>(klass)) *
         num_regions;
}

/// Total element count of a CountClassesBatch output buffer.
constexpr size_t ClassCountBufferSize(size_t num_worlds,
                                      uint32_t classes_counted,
                                      size_t num_regions) {
  return num_worlds * static_cast<size_t>(classes_counted) * num_regions;
}

}  // namespace sfa::core

#endif  // SFA_CORE_REGION_FAMILY_H_
