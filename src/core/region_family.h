// The region family abstraction: the predetermined set of regions R the
// audit scans (paper §3, "a predetermined set of regions R").
//
// A family is bound to a fixed point set at construction. Point counts
// n(R) never change; positive counts p(R) depend on the label assignment
// and are re-evaluated once per Monte Carlo world, so implementations
// precompute whatever geometry lets CountPositives run in (near) linear
// time:
//
//   GridPartitionFamily        cells of one regular grid       O(N) / world
//   PartitioningCollectionFamily  all partitions of many
//                              rectangular partitionings       O(T·N) / world
//   SquareScanFamily           k-means-centered squares of
//                              several side lengths            popcount / world
#ifndef SFA_CORE_REGION_FAMILY_H_
#define SFA_CORE_REGION_FAMILY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/labels.h"
#include "geo/rect.h"

namespace sfa::core {

/// Static description of one region in a family.
struct RegionDescriptor {
  geo::Rect rect;
  std::string label;
  /// Group regions that should compete with each other during evidence
  /// selection (e.g. all side lengths of one scan center share a group; for
  /// partition families every region is its own group).
  uint32_t group = 0;
};

class RegionFamily {
 public:
  virtual ~RegionFamily() = default;

  /// Number of regions scanned.
  virtual size_t num_regions() const = 0;

  /// Number of points the family is bound to.
  virtual size_t num_points() const = 0;

  /// Static description of region `r`.
  virtual RegionDescriptor Describe(size_t r) const = 0;

  /// n(R): number of bound points inside region `r`.
  virtual uint64_t PointCount(size_t r) const = 0;

  /// p(R) for every region under `labels` (labels.size() == num_points()).
  /// `out` is resized to num_regions(). Must be thread-safe for concurrent
  /// calls with distinct `out` buffers (the Monte Carlo loop relies on it).
  virtual void CountPositives(const Labels& labels,
                              std::vector<uint64_t>* out) const = 0;

  /// Human-readable one-liner for reports.
  virtual std::string Name() const = 0;
};

}  // namespace sfa::core

#endif  // SFA_CORE_REGION_FAMILY_H_
