#include "core/rectangle_sweep_family.h"

#include <limits>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::core {

namespace {

geo::Rect SnugExtent(const std::vector<geo::Point>& points) {
  geo::Rect box = geo::Rect::BoundingBox(points);
  const double dx = box.width() > 0 ? box.width() * 1e-9 : 1.0;
  const double dy = box.height() > 0 ? box.height() * 1e-9 : 1.0;
  box.max_x += dx;
  box.max_y += dy;
  return box;
}

}  // namespace

RectangleSweepFamily::RectangleSweepFamily(const geo::GridSpec& grid,
                                           const std::vector<geo::Point>& points)
    : index_(grid, points),
      count_prefix_(grid.nx(), grid.ny(), index_.CountsPerCell()) {
  cells_.cell_counts = index_.CountsPerCell();
  cells_.num_outside = index_.num_unassigned();
  const size_t nx = grid.nx();
  const size_t ny = grid.ny();
  x_intervals_ = nx * (nx + 1) / 2;
  y_intervals_ = ny * (ny + 1) / 2;
  num_regions_ = x_intervals_ * y_intervals_;
  // Cache n(R) in the canonical enumeration order so PointCount is O(1) on
  // the scan hot path.
  point_counts_.resize(num_regions_);
  size_t r = 0;
  for (uint32_t y0 = 0; y0 < ny; ++y0) {
    for (uint32_t y1 = y0 + 1; y1 <= ny; ++y1) {
      for (uint32_t x0 = 0; x0 < nx; ++x0) {
        for (uint32_t x1 = x0 + 1; x1 <= nx; ++x1) {
          point_counts_[r++] = count_prefix_.SumRange(x0, y0, x1, y1);
        }
      }
    }
  }
}

Result<std::unique_ptr<RectangleSweepFamily>> RectangleSweepFamily::Create(
    const std::vector<geo::Point>& points, uint32_t g_x, uint32_t g_y,
    size_t max_regions) {
  if (points.empty()) {
    return Status::InvalidArgument("rectangle sweep family needs points");
  }
  const size_t x_intervals = static_cast<size_t>(g_x) * (g_x + 1) / 2;
  const size_t y_intervals = static_cast<size_t>(g_y) * (g_y + 1) / 2;
  if (g_x == 0 || g_y == 0) {
    return Status::InvalidArgument("rectangle sweep needs >= 1 cell per axis");
  }
  if (x_intervals > max_regions / std::max<size_t>(1, y_intervals)) {
    return Status::InvalidArgument(StrFormat(
        "rectangle sweep over a %ux%u grid yields %zu x %zu regions, above the "
        "budget of %zu — use a coarser grid or raise max_regions",
        g_x, g_y, x_intervals, y_intervals, max_regions));
  }
  SFA_ASSIGN_OR_RETURN(geo::GridSpec grid,
                       geo::GridSpec::Create(SnugExtent(points), g_x, g_y));
  return std::unique_ptr<RectangleSweepFamily>(
      new RectangleSweepFamily(grid, points));
}

RectangleSweepFamily::CellRange RectangleSweepFamily::DecodeRegion(size_t r) const {
  SFA_DCHECK(r < num_regions_);
  const size_t iy = r / x_intervals_;
  const size_t ix = r % x_intervals_;
  // Interval index within one axis enumerates (begin asc, end asc): for
  // begin b on an axis of n cells there are (n - b) intervals.
  auto decode_axis = [](size_t interval, uint32_t n) {
    uint32_t begin = 0;
    size_t remaining = interval;
    while (remaining >= n - begin) {
      remaining -= n - begin;
      ++begin;
    }
    const auto end = static_cast<uint32_t>(begin + remaining + 1);
    return std::pair<uint32_t, uint32_t>(begin, end);
  };
  const auto [x0, x1] = decode_axis(ix, grid().nx());
  const auto [y0, y1] = decode_axis(iy, grid().ny());
  return CellRange{x0, x1, y0, y1};
}

RegionDescriptor RectangleSweepFamily::Describe(size_t r) const {
  const CellRange range = DecodeRegion(r);
  const geo::GridSpec& g = grid();
  RegionDescriptor desc;
  desc.rect = geo::Rect(g.extent().min_x + range.x0 * g.cell_width(),
                        g.extent().min_y + range.y0 * g.cell_height(),
                        g.extent().min_x + range.x1 * g.cell_width(),
                        g.extent().min_y + range.y1 * g.cell_height());
  desc.label = StrFormat("cells [%u,%u) x [%u,%u)", range.x0, range.x1, range.y0,
                         range.y1);
  desc.group = static_cast<uint32_t>(r % std::numeric_limits<uint32_t>::max());
  return desc;
}

uint64_t RectangleSweepFamily::PointCount(size_t r) const {
  SFA_DCHECK(r < num_regions_);
  return point_counts_[r];
}

void RectangleSweepFamily::CountPositives(const Labels& labels,
                                          std::vector<uint64_t>* out) const {
  SFA_CHECK(out != nullptr);
  SFA_CHECK_MSG(labels.size() == num_points(),
                "labels " << labels.size() << " != points " << num_points());
  // One O(N) pass for per-cell positives, then a prefix sum, then O(1) per
  // rectangle. The cell buffer and summed-area table are thread-local pools:
  // after each worker thread's first world, recounting allocates nothing.
  static thread_local std::vector<uint32_t> positives_per_cell;
  static thread_local spatial::PrefixSum2D positive_prefix;
  positives_per_cell.resize(grid().num_cells());
  index_.AccumulateLabelCounts(labels.bytes(), &positives_per_cell);
  positive_prefix.Rebuild(grid().nx(), grid().ny(), positives_per_cell.data());
  out->resize(num_regions_);
  FoldPrefixIntoRegions(positive_prefix, out->data());
}

void RectangleSweepFamily::CountClassesBatch(const uint8_t* const* class_worlds,
                                             size_t num_worlds,
                                             uint32_t num_classes,
                                             uint64_t* out) const {
  SFA_CHECK(class_worlds != nullptr && out != nullptr);
  SFA_CHECK_MSG(num_classes >= 2, "CountClassesBatch needs at least 2 classes");
  const uint32_t counted = num_classes - 1;
  const size_t num_cells = grid().num_cells();
  const std::vector<uint32_t>& cells = index_.cell_assignments();
  // One O(N) pass per world fills ALL K−1 per-cell class histograms, then one
  // summed-area rebuild + rectangle fold per class — the per-class point
  // passes of the indicator construction collapse into a single scatter.
  static thread_local std::vector<uint32_t> class_cells;
  static thread_local spatial::PrefixSum2D class_prefix;
  for (size_t w = 0; w < num_worlds; ++w) {
    class_cells.assign(static_cast<size_t>(counted) * num_cells, 0u);
    const uint8_t* classes = class_worlds[w];
    for (size_t i = 0; i < cells.size(); ++i) {
      const uint8_t k = classes[i];
      if (k >= counted) continue;
      const uint32_t cell = cells[i];
      if (cell == geo::GridSpec::kInvalidCell) continue;
      ++class_cells[static_cast<size_t>(k) * num_cells + cell];
    }
    for (uint32_t k = 0; k < counted; ++k) {
      class_prefix.Rebuild(grid().nx(), grid().ny(),
                           class_cells.data() + static_cast<size_t>(k) * num_cells);
      FoldPrefixIntoRegions(class_prefix,
                            out + ClassCountRowOffset(w, k, counted, num_regions_));
    }
  }
}

void RectangleSweepFamily::CountPositivesFromCells(const uint32_t* cell_positives,
                                                   uint64_t* out) const {
  static thread_local spatial::PrefixSum2D positive_prefix;
  positive_prefix.Rebuild(grid().nx(), grid().ny(), cell_positives);
  FoldPrefixIntoRegions(positive_prefix, out);
}

void RectangleSweepFamily::FoldPrefixIntoRegions(
    const spatial::PrefixSum2D& positive_prefix, uint64_t* out) const {
  // Enumerated in the same canonical order DecodeRegion uses.
  const uint32_t nx = grid().nx();
  const uint32_t ny = grid().ny();
  size_t r = 0;
  for (uint32_t y0 = 0; y0 < ny; ++y0) {
    for (uint32_t y1 = y0 + 1; y1 <= ny; ++y1) {
      for (uint32_t x0 = 0; x0 < nx; ++x0) {
        for (uint32_t x1 = x0 + 1; x1 <= nx; ++x1) {
          out[r++] = positive_prefix.SumRange(x0, y0, x1, y1);
        }
      }
    }
  }
  SFA_DCHECK(r == num_regions_);
}

std::string RectangleSweepFamily::Name() const {
  return StrFormat("all %zu grid-aligned rectangles of a %ux%u grid over %zu points",
                   num_regions_, grid().nx(), grid().ny(), num_points());
}

}  // namespace sfa::core
