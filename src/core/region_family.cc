#include "core/region_family.h"

#include <algorithm>

#include "common/macros.h"

namespace sfa::core {

const char* CountingBackendToString(CountingBackend backend) {
  switch (backend) {
    case CountingBackend::kSparseAnnulus:
      return "sparse-annulus";
    case CountingBackend::kDenseBits:
      return "dense-bits";
  }
  return "?";
}

void RegionFamily::CountPositivesBatch(const Labels* const* batch,
                                       size_t num_worlds, uint64_t* out) const {
  SFA_CHECK(batch != nullptr && out != nullptr);
  // Reference path: one world at a time through the scalar interface. The
  // scratch vector is hoisted so the only per-world cost beyond CountPositives
  // is one row copy.
  std::vector<uint64_t> scratch;
  const size_t stride = num_regions();
  for (size_t b = 0; b < num_worlds; ++b) {
    CountPositives(*batch[b], &scratch);
    std::copy(scratch.begin(), scratch.end(), out + b * stride);
  }
}

void RegionFamily::CountClassesBatch(const uint8_t* const* class_worlds,
                                     size_t num_worlds, uint32_t num_classes,
                                     uint64_t* out) const {
  SFA_CHECK(class_worlds != nullptr && out != nullptr);
  SFA_CHECK_MSG(num_classes >= 2, "CountClassesBatch needs at least 2 classes");
  // Reference oracle: materialize the K−1 per-class indicator labels and
  // route them through the scalar counting interface, exactly the
  // construction the multinomial statistic used before the native kernel.
  const uint32_t counted = num_classes - 1;
  const size_t n = num_points();
  const size_t stride = num_regions();
  std::vector<uint8_t> indicator(n);
  Labels labels;
  std::vector<uint64_t> scratch;
  for (size_t w = 0; w < num_worlds; ++w) {
    const uint8_t* classes = class_worlds[w];
    for (uint32_t k = 0; k < counted; ++k) {
      for (size_t i = 0; i < n; ++i) {
        indicator[i] = classes[i] == k ? 1 : 0;
      }
      labels.AssignBytes(indicator.data(), n);
      CountPositives(labels, &scratch);
      std::copy(scratch.begin(), scratch.end(),
                out + ClassCountRowOffset(w, k, counted, stride));
    }
  }
}

void RegionFamily::CountPositivesFromCells(const uint32_t* /*cell_positives*/,
                                           uint64_t* /*out*/) const {
  SFA_CHECK_MSG(false,
                "CountPositivesFromCells called on a family without a cell "
                "decomposition");
}

}  // namespace sfa::core
