#include "core/region_family.h"

// Interface-only translation unit: anchors the RegionFamily vtable.

namespace sfa::core {}  // namespace sfa::core
