#include "core/region_family.h"

#include <algorithm>

#include "common/macros.h"

namespace sfa::core {

const char* CountingBackendToString(CountingBackend backend) {
  switch (backend) {
    case CountingBackend::kSparseAnnulus:
      return "sparse-annulus";
    case CountingBackend::kDenseBits:
      return "dense-bits";
  }
  return "?";
}

void RegionFamily::CountPositivesBatch(const Labels* const* batch,
                                       size_t num_worlds, uint64_t* out) const {
  SFA_CHECK(batch != nullptr && out != nullptr);
  // Reference path: one world at a time through the scalar interface. The
  // scratch vector is hoisted so the only per-world cost beyond CountPositives
  // is one row copy.
  std::vector<uint64_t> scratch;
  const size_t stride = num_regions();
  for (size_t b = 0; b < num_worlds; ++b) {
    CountPositives(*batch[b], &scratch);
    std::copy(scratch.begin(), scratch.end(), out + b * stride);
  }
}

void RegionFamily::CountPositivesFromCells(const uint32_t* /*cell_positives*/,
                                           uint64_t* /*out*/) const {
  SFA_CHECK_MSG(false,
                "CountPositivesFromCells called on a family without a cell "
                "decomposition");
}

}  // namespace sfa::core
