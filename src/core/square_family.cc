#include "core/square_family.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/membership_batch.h"

namespace sfa::core {

std::vector<double> SquareScanOptions::DefaultSideLengths(double min_side,
                                                          double max_side,
                                                          uint32_t count) {
  SFA_CHECK(count >= 1);
  std::vector<double> sides(count);
  if (count == 1) {
    sides[0] = min_side;
    return sides;
  }
  for (uint32_t i = 0; i < count; ++i) {
    sides[i] = min_side + (max_side - min_side) * i / (count - 1);
  }
  return sides;
}

SquareScanFamily::SquareScanFamily(const std::vector<geo::Point>& points,
                                   const SquareScanOptions& options)
    : centers_(options.centers),
      side_lengths_(options.side_lengths),
      num_points_(points.size()) {
  const size_t total = centers_.size() * side_lengths_.size();
  memberships_.assign(total, spatial::BitVector());
  point_counts_.assign(total, 0);

  const spatial::KdTree tree(points);
  DefaultThreadPool().ParallelFor(total, [&](size_t r) {
    const geo::Point& center = centers_[r / side_lengths_.size()];
    const double side = side_lengths_[r % side_lengths_.size()];
    spatial::BitVector membership(num_points_);
    tree.VisitRect(geo::Rect::CenteredSquare(center, side),
                   [&membership](uint32_t id) { membership.Set(id); });
    point_counts_[r] = membership.Popcount();
    memberships_[r] = std::move(membership);
  });
}

Result<std::unique_ptr<SquareScanFamily>> SquareScanFamily::Create(
    const std::vector<geo::Point>& points, const SquareScanOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("square scan family needs points");
  }
  if (options.centers.empty()) {
    return Status::InvalidArgument("square scan family needs centers");
  }
  if (options.side_lengths.empty()) {
    return Status::InvalidArgument("square scan family needs side lengths");
  }
  for (double side : options.side_lengths) {
    if (!(side > 0.0)) {
      return Status::InvalidArgument(
          StrFormat("side length %.6f must be positive", side));
    }
  }
  return std::unique_ptr<SquareScanFamily>(new SquareScanFamily(points, options));
}

RegionDescriptor SquareScanFamily::Describe(size_t r) const {
  SFA_DCHECK(r < num_regions());
  const size_t center_index = CenterOfRegion(r);
  const double side = SideOfRegion(r);
  RegionDescriptor desc;
  desc.rect = geo::Rect::CenteredSquare(centers_[center_index], side);
  desc.label = StrFormat("square(center %zu at (%.3f, %.3f), side %.2f)",
                         center_index, centers_[center_index].x,
                         centers_[center_index].y, side);
  desc.group = static_cast<uint32_t>(center_index);
  return desc;
}

void SquareScanFamily::CountPositives(const Labels& labels,
                                      std::vector<uint64_t>* out) const {
  SFA_CHECK(out != nullptr);
  SFA_CHECK_MSG(labels.size() == num_points_,
                "labels " << labels.size() << " != points " << num_points_);
  out->resize(num_regions());
  for (size_t r = 0; r < memberships_.size(); ++r) {
    (*out)[r] = spatial::BitVector::AndPopcount(memberships_[r], labels.bits());
  }
}

void SquareScanFamily::CountPositivesBatch(const Labels* const* batch,
                                           size_t num_worlds,
                                           uint64_t* out) const {
  CountPositivesBatchWithMemberships(memberships_, num_points_, batch, num_worlds,
                                     out);
}

std::string SquareScanFamily::Name() const {
  return StrFormat("%zu square regions (%zu centers x %zu side lengths) over %zu points",
                   num_regions(), centers_.size(), side_lengths_.size(), num_points_);
}

}  // namespace sfa::core
