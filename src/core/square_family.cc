#include "core/square_family.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/membership_batch.h"

namespace sfa::core {

std::vector<double> SquareScanOptions::DefaultSideLengths(double min_side,
                                                          double max_side,
                                                          uint32_t count) {
  SFA_CHECK(count >= 1);
  std::vector<double> sides(count);
  if (count == 1) {
    sides[0] = min_side;
    return sides;
  }
  for (uint32_t i = 0; i < count; ++i) {
    sides[i] = min_side + (max_side - min_side) * i / (count - 1);
  }
  return sides;
}

SquareScanFamily::SquareScanFamily(const std::vector<geo::Point>& points,
                                   const SquareScanOptions& options)
    : centers_(options.centers),
      side_lengths_(options.side_lengths),
      num_requested_sides_(options.side_lengths.size()),
      backend_(options.backend),
      num_points_(points.size()) {
  std::sort(side_lengths_.begin(), side_lengths_.end());
  const size_t num_centers = centers_.size();
  const size_t full_ladder = side_lengths_.size();
  const spatial::KdTree tree(points);

  // One range report per center over the LARGEST square covers the whole
  // ladder: each reported point's annulus rank is the smallest side whose
  // square contains it, found by binary search on the actual half-open
  // Rect::Contains predicate (nesting makes it monotone in the side), so
  // ranks agree exactly with per-rung range reports even for points on
  // rect boundaries.
  std::vector<std::vector<AnnulusEntry>> per_center(num_centers);
  DefaultThreadPool().ParallelFor(num_centers, [&](size_t c) {
    const geo::Point& center = centers_[c];
    std::vector<AnnulusEntry>& out = per_center[c];
    tree.VisitRect(
        geo::Rect::CenteredSquare(center, side_lengths_.back()),
        [&](uint32_t id) {
          const geo::Point& p = points[id];
          size_t lo = 0;
          size_t hi = full_ladder - 1;
          while (lo < hi) {
            const size_t mid = lo + (hi - lo) / 2;
            if (geo::Rect::CenteredSquare(center, side_lengths_[mid])
                    .Contains(p)) {
              hi = mid;
            } else {
              lo = mid + 1;
            }
          }
          out.push_back({id, static_cast<uint32_t>(c),
                         static_cast<uint32_t>(lo)});
        });
  });
  std::vector<AnnulusEntry> entries;
  std::vector<size_t> center_offsets(num_centers + 1, 0);
  for (size_t c = 0; c < num_centers; ++c) {
    center_offsets[c] = entries.size();
    entries.insert(entries.end(), per_center[c].begin(), per_center[c].end());
    per_center[c].clear();
    per_center[c].shrink_to_fit();
  }
  center_offsets[num_centers] = entries.size();

  // Collapse sides that capture identical member sets to their predecessor at
  // every center (their annulus rank is globally empty). Both backends apply
  // the same collapse, so their region sets are identical.
  const std::vector<uint32_t> kept =
      CollapseEmptyAnnuli(full_ladder, &entries);
  if (kept.size() != full_ladder) {
    std::vector<double> deduped(kept.size());
    for (size_t i = 0; i < kept.size(); ++i) deduped[i] = side_lengths_[kept[i]];
    side_lengths_ = std::move(deduped);
  }
  const size_t num_sides = side_lengths_.size();

  if (backend_ == CountingBackend::kSparseAnnulus) {
    annulus_ = AnnulusIndex(num_points_, num_centers, num_sides, entries);
    point_counts_ = annulus_.region_point_counts();
    return;
  }

  // Dense reference: expand each center's annulus entries into cumulative
  // membership bit vectors, one per rung.
  const size_t total = num_centers * num_sides;
  memberships_.assign(total, spatial::BitVector());
  point_counts_.assign(total, 0);
  DefaultThreadPool().ParallelFor(num_centers, [&](size_t c) {
    spatial::BitVector cumulative(num_points_);
    for (size_t rung = 0; rung < num_sides; ++rung) {
      for (size_t i = center_offsets[c]; i < center_offsets[c + 1]; ++i) {
        if (entries[i].rank == rung) cumulative.Set(entries[i].point);
      }
      const size_t r = c * num_sides + rung;
      point_counts_[r] = cumulative.Popcount();
      memberships_[r] = cumulative;
    }
  });
}

Result<std::unique_ptr<SquareScanFamily>> SquareScanFamily::Create(
    const std::vector<geo::Point>& points, const SquareScanOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("square scan family needs points");
  }
  if (options.centers.empty()) {
    return Status::InvalidArgument("square scan family needs centers");
  }
  if (options.side_lengths.empty()) {
    return Status::InvalidArgument("square scan family needs side lengths");
  }
  for (double side : options.side_lengths) {
    if (!(side > 0.0)) {
      return Status::InvalidArgument(
          StrFormat("side length %.6f must be positive", side));
    }
  }
  return std::unique_ptr<SquareScanFamily>(new SquareScanFamily(points, options));
}

RegionDescriptor SquareScanFamily::Describe(size_t r) const {
  SFA_DCHECK(r < num_regions());
  const size_t center_index = CenterOfRegion(r);
  const double side = SideOfRegion(r);
  RegionDescriptor desc;
  desc.rect = geo::Rect::CenteredSquare(centers_[center_index], side);
  desc.label = StrFormat("square(center %zu at (%.3f, %.3f), side %.2f)",
                         center_index, centers_[center_index].x,
                         centers_[center_index].y, side);
  desc.group = static_cast<uint32_t>(center_index);
  return desc;
}

void SquareScanFamily::CountPositives(const Labels& labels,
                                      std::vector<uint64_t>* out) const {
  SFA_CHECK(out != nullptr);
  SFA_CHECK_MSG(labels.size() == num_points_,
                "labels " << labels.size() << " != points " << num_points_);
  out->resize(num_regions());
  if (backend_ == CountingBackend::kSparseAnnulus) {
    CountPositivesWithAnnulus(annulus_, labels, out->data());
    return;
  }
  for (size_t r = 0; r < memberships_.size(); ++r) {
    (*out)[r] = spatial::BitVector::AndPopcount(memberships_[r], labels.bits());
  }
}

void SquareScanFamily::CountPositivesBatch(const Labels* const* batch,
                                           size_t num_worlds,
                                           uint64_t* out) const {
  if (backend_ == CountingBackend::kSparseAnnulus) {
    CountPositivesBatchWithAnnulus(annulus_, num_points_, batch, num_worlds,
                                   out);
    return;
  }
  CountPositivesBatchWithMemberships(memberships_, num_points_, batch, num_worlds,
                                     out);
}

void SquareScanFamily::CountClassesBatch(const uint8_t* const* class_worlds,
                                         size_t num_worlds, uint32_t num_classes,
                                         uint64_t* out) const {
  if (backend_ == CountingBackend::kSparseAnnulus) {
    CountClassesBatchWithAnnulus(annulus_, class_worlds, num_worlds,
                                 num_classes, out);
    return;
  }
  CountClassesBatchWithMemberships(memberships_, num_points_, class_worlds,
                                   num_worlds, num_classes, out);
}

size_t SquareScanFamily::MembershipBytes() const {
  return backend_ == CountingBackend::kSparseAnnulus
             ? annulus_.MemoryBytes()
             : DenseMembershipBytes(memberships_);
}

std::string SquareScanFamily::Name() const {
  std::string dedup =
      num_sides() == num_requested_sides_
          ? ""
          : StrFormat(", deduped from %zu", num_requested_sides_);
  return StrFormat(
      "%zu square regions (%zu centers x %zu side lengths%s) over %zu points "
      "[%s]",
      num_regions(), centers_.size(), num_sides(), dedup.c_str(), num_points_,
      CountingBackendToString(backend_));
}

}  // namespace sfa::core
