// Fairness measures (paper §3). Spatial fairness is always tested on a
// binary outcome stream; the *measure* decides which individuals enter the
// stream and what the outcome bit is:
//
//   statistical parity    — everyone, outcome = model prediction Ŷ
//   equal opportunity     — only Y=1 individuals, outcome = Ŷ (TPR surface)
//   predictive equality   — only Y=0 individuals, outcome = Ŷ (FPR surface)
//
// The paper's LAR experiment audits statistical parity; its Crime experiment
// audits equal opportunity ("we retain the predictions for the true positive
// labels"). Equal odds is the conjunction of the last two and is provided as
// a convenience in core/audit.h.
#ifndef SFA_CORE_MEASURE_H_
#define SFA_CORE_MEASURE_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace sfa::core {

enum class FairnessMeasure {
  kStatisticalParity,
  kEqualOpportunity,
  kPredictiveEquality,
};

const char* FairnessMeasureToString(FairnessMeasure m);

/// Materializes the outcome stream for `measure` from `dataset`.
/// Equal opportunity / predictive equality require ground-truth labels and
/// fail otherwise; they also fail when the filtered stream is empty.
Result<data::OutcomeDataset> BuildMeasureView(const data::OutcomeDataset& dataset,
                                              FairnessMeasure measure);

}  // namespace sfa::core

#endif  // SFA_CORE_MEASURE_H_
