#include "core/partitioning_family.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"

namespace sfa::core {

PartitioningCollectionFamily::PartitioningCollectionFamily(
    const std::vector<geo::Point>& points,
    std::vector<geo::Partitioning> partitionings)
    : partitionings_(std::move(partitionings)), num_points_(points.size()) {
  const size_t t_count = partitionings_.size();
  assignment_.resize(t_count);
  offsets_.resize(t_count + 1, 0);
  for (size_t t = 0; t < t_count; ++t) {
    assignment_[t] = partitionings_[t].AssignPartitions(points);
    offsets_[t + 1] = offsets_[t] + partitionings_[t].num_partitions();
  }
  total_regions_ = offsets_[t_count];
  point_counts_.assign(total_regions_, 0);
  for (size_t t = 0; t < t_count; ++t) {
    for (uint32_t partition : assignment_[t]) {
      ++point_counts_[offsets_[t] + partition];
    }
  }
  if (t_count == 1) {
    // A lone partitioning tiles the point set (PartitionOf clamps every point
    // into a partition), so the regions themselves form a cell decomposition.
    single_partitioning_cells_.cell_counts.assign(point_counts_.begin(),
                                                  point_counts_.end());
    single_partitioning_cells_.num_outside = 0;
  }
}

Result<std::unique_ptr<PartitioningCollectionFamily>>
PartitioningCollectionFamily::Create(const std::vector<geo::Point>& points,
                                     std::vector<geo::Partitioning> partitionings) {
  if (points.empty()) {
    return Status::InvalidArgument("partitioning family needs points");
  }
  if (partitionings.empty()) {
    return Status::InvalidArgument("partitioning family needs >= 1 partitioning");
  }
  return std::unique_ptr<PartitioningCollectionFamily>(
      new PartitioningCollectionFamily(points, std::move(partitionings)));
}

std::pair<size_t, uint32_t> PartitioningCollectionFamily::Locate(size_t r) const {
  SFA_DCHECK(r < total_regions_);
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), r);
  const size_t t = static_cast<size_t>(it - offsets_.begin()) - 1;
  return {t, static_cast<uint32_t>(r - offsets_[t])};
}

RegionDescriptor PartitioningCollectionFamily::Describe(size_t r) const {
  const auto [t, partition] = Locate(r);
  RegionDescriptor desc;
  desc.rect = partitionings_[t].PartitionRectById(partition);
  desc.label = StrFormat("partitioning %zu, partition %u", t, partition);
  desc.group = static_cast<uint32_t>(r);
  return desc;
}

void PartitioningCollectionFamily::CountPositives(const Labels& labels,
                                                  std::vector<uint64_t>* out) const {
  SFA_CHECK(out != nullptr);
  SFA_CHECK_MSG(labels.size() == num_points_,
                "labels " << labels.size() << " != points " << num_points_);
  out->assign(total_regions_, 0);
  const std::vector<uint8_t>& bytes = labels.bytes();
  for (size_t t = 0; t < partitionings_.size(); ++t) {
    const std::vector<uint32_t>& assignment = assignment_[t];
    uint64_t* counts = out->data() + offsets_[t];
    for (size_t i = 0; i < assignment.size(); ++i) {
      counts[assignment[i]] += bytes[i];
    }
  }
}

void PartitioningCollectionFamily::CountPositivesBatch(const Labels* const* batch,
                                                       size_t num_worlds,
                                                       uint64_t* out) const {
  SFA_CHECK(batch != nullptr && out != nullptr);
  const size_t stride = total_regions_;
  std::fill(out, out + num_worlds * stride, 0ULL);
  std::vector<const uint8_t*> bytes(num_worlds);
  for (size_t b = 0; b < num_worlds; ++b) {
    SFA_CHECK_MSG(batch[b]->size() == num_points_,
                  "labels " << batch[b]->size() << " != points " << num_points_);
    bytes[b] = batch[b]->bytes().data();
  }
  std::vector<uint64_t*> rows(num_worlds);
  for (size_t t = 0; t < partitionings_.size(); ++t) {
    const std::vector<uint32_t>& assignment = assignment_[t];
    for (size_t b = 0; b < num_worlds; ++b) {
      rows[b] = out + b * stride + offsets_[t];
    }
    for (size_t i = 0; i < assignment.size(); ++i) {
      const uint32_t partition = assignment[i];
      for (size_t b = 0; b < num_worlds; ++b) {
        rows[b][partition] += bytes[b][i];
      }
    }
  }
}

void PartitioningCollectionFamily::CountClassesBatch(
    const uint8_t* const* class_worlds, size_t num_worlds, uint32_t num_classes,
    uint64_t* out) const {
  SFA_CHECK(class_worlds != nullptr && out != nullptr);
  SFA_CHECK_MSG(num_classes >= 2, "CountClassesBatch needs at least 2 classes");
  const uint32_t counted = num_classes - 1;
  const size_t stride = total_regions_;
  std::fill(out, out + ClassCountBufferSize(num_worlds, counted, stride), 0ULL);
  std::vector<uint64_t*> bases(num_worlds);
  for (size_t t = 0; t < partitionings_.size(); ++t) {
    const std::vector<uint32_t>& assignment = assignment_[t];
    for (size_t w = 0; w < num_worlds; ++w) {
      bases[w] = out + ClassCountRowOffset(w, 0, counted, stride) + offsets_[t];
    }
    for (size_t i = 0; i < assignment.size(); ++i) {
      const uint32_t partition = assignment[i];
      for (size_t w = 0; w < num_worlds; ++w) {
        const uint8_t k = class_worlds[w][i];
        if (k < counted) {
          ++bases[w][static_cast<size_t>(k) * stride + partition];
        }
      }
    }
  }
}

void PartitioningCollectionFamily::CountPositivesFromCells(
    const uint32_t* cell_positives, uint64_t* out) const {
  SFA_DCHECK(partitionings_.size() == 1);
  for (size_t r = 0; r < total_regions_; ++r) out[r] = cell_positives[r];
}

std::string PartitioningCollectionFamily::Name() const {
  return StrFormat("%zu partitionings (%zu partitions total) over %zu points",
                   partitionings_.size(), total_regions_, num_points_);
}

}  // namespace sfa::core
