#include "core/mc_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/bernoulli_statistic.h"

namespace sfa::core {

namespace {

/// Shared early-stop state for one run. The first batch to observe a stop
/// condition records the cause; everyone after skips without running.
struct StopState {
  std::atomic<bool> stopped{false};
  std::mutex mu;
  Status cause;

  void Trip(Status why) {
    std::unique_lock<std::mutex> lock(mu);
    if (!stopped.load(std::memory_order_relaxed)) {
      cause = std::move(why);
      stopped.store(true, std::memory_order_release);
    }
  }
};

/// The per-batch-boundary stop poll: cancel wins over deadline (a cancelled
/// request's deadline is moot), the `mc_engine.batch` failpoint is the
/// deterministic drill lever for both.
Status CheckStop(const MonteCarloOptions& options) {
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return Status::Cancelled("cancelled during Monte Carlo calibration");
  }
  if (options.deadline != std::chrono::steady_clock::time_point{} &&
      std::chrono::steady_clock::now() >= options.deadline) {
    return Status::DeadlineExceeded(
        "deadline expired during Monte Carlo calibration");
  }
  SFA_FAILPOINT("mc_engine.batch");
  return Status::OK();
}

/// How one RunWorldRange call ended: `completed` worlds of the range's own
/// [0, w_hi - w_lo) index space form a contiguous prefix.
struct RangeOutcome {
  size_t completed = 0;
  bool complete = true;
  Status stop_cause;
};

/// Runs worlds [w_lo, w_hi) into max_llrs[w_lo..w_hi) with the batched /
/// reference strategy and optional pool fan-out. When `stoppable`, polls the
/// stop controls at batch boundaries and truncates to the contiguous
/// completed prefix exactly like the full-run entry point (worlds draw from
/// per-world substreams, so a range is positionally identical to the same
/// indices of a full run).
RangeOutcome RunWorldRange(const StatisticSimulation& simulation,
                           const MonteCarloOptions& options, size_t w_lo,
                           size_t w_hi, double* max_llrs, bool stoppable) {
  const size_t num_range = w_hi - w_lo;
  // The reference engine is "batches" of one world; the batched engine works
  // in batch_size chunks. Either way the stop poll happens before a chunk
  // starts, never inside one, so a completed chunk is always whole.
  const size_t batch_size =
      options.engine == McEngine::kReference
          ? 1
          : std::max<uint32_t>(1, options.batch_size);
  const size_t num_batches = (num_range + batch_size - 1) / batch_size;

  auto run_batch = [&](size_t g) {
    const size_t b_lo = w_lo + g * batch_size;
    const size_t b_hi = std::min(w_hi, b_lo + batch_size);
    if (options.engine == McEngine::kReference) {
      for (size_t w = b_lo; w < b_hi; ++w) {
        max_llrs[w] = simulation.RunWorldReference(w);
      }
    } else {
      simulation.RunWorldBatch(b_lo, b_hi, max_llrs);
    }
  };

  StopState stop;
  std::vector<uint8_t> batch_done(stoppable ? num_batches : 0, uint8_t{0});
  auto guarded_batch = [&](size_t g) {
    // Liveness first, in BOTH modes: a lease heartbeat must keep flowing
    // even for runs that opted out of early stop (no outcome), or a healthy
    // long simulation would look dead to the cross-process fabric and get
    // taken over mid-flight.
    if (options.heartbeat) options.heartbeat();
    if (!stoppable) {
      run_batch(g);
      return;
    }
    if (stop.stopped.load(std::memory_order_acquire)) return;
    if (Status s = CheckStop(options); !s.ok()) {
      stop.Trip(std::move(s));
      return;
    }
    run_batch(g);
    batch_done[g] = 1;  // one writer per index; ParallelFor joins before reads
  };

  if (options.parallel) {
    DefaultThreadPool().ParallelFor(num_batches, guarded_batch);
  } else {
    for (size_t g = 0; g < num_batches; ++g) {
      if (stoppable && stop.stopped.load(std::memory_order_acquire)) break;
      guarded_batch(g);
    }
  }

  RangeOutcome outcome;
  if (!stoppable || !stop.stopped.load(std::memory_order_acquire)) {
    outcome.completed = num_range;
    return outcome;
  }
  // Keep only the contiguous completed prefix: batches finished out of order
  // beyond the first gap are discarded so the surviving maxima depend only on
  // (options, worlds_completed), not on scheduling.
  size_t done_batches = 0;
  while (done_batches < num_batches && batch_done[done_batches] != 0) {
    ++done_batches;
  }
  outcome.completed = std::min(num_range, done_batches * batch_size);
  outcome.complete = false;
  {
    std::unique_lock<std::mutex> lock(stop.mu);
    outcome.stop_cause = stop.cause;
  }
  return outcome;
}

/// Wilson score interval on a binomial proportion g/n at `z` normal units,
/// clamped to [0, 1]. Chosen over Clopper-Pearson because it needs no
/// incomplete beta function and its coverage is adequate for a stopping
/// rule re-checked every chunk.
void WilsonBounds(uint64_t g, uint64_t n, double z, double* lo, double* hi) {
  const double nn = static_cast<double>(n);
  const double gg = static_cast<double>(g);
  const double z2 = z * z;
  const double denom = nn + z2;
  const double center = (gg + z2 / 2.0) / denom;
  const double half =
      z * std::sqrt(gg * (nn - gg) / nn + z2 / 4.0) / denom;
  *lo = std::max(0.0, center - half);
  *hi = std::min(1.0, center + half);
}

/// The adaptive sequential engine: serial chunks of adaptive.check_every
/// worlds (each chunk batched/parallel per the execution options), a Wilson
/// CI verdict at every chunk boundary. See mc_engine.h for the determinism
/// argument.
std::vector<double> RunAdaptiveMonteCarloWorlds(
    const StatisticSimulation& simulation, const MonteCarloOptions& options,
    McRunOutcome* outcome) {
  const size_t num_worlds = options.num_worlds;
  std::vector<double> max_llrs(num_worlds, 0.0);
  const size_t check_every =
      std::max<uint32_t>(1, options.adaptive.check_every);
  const size_t min_worlds = std::max<uint32_t>(1, options.adaptive.min_worlds);
  const double observed = options.adaptive.observed;
  const double alpha = options.adaptive.alpha;

  size_t completed = 0;
  uint64_t exceed = 0;  // #{null maxima >= observed} among completed worlds
  McStopReason reason = McStopReason::kNone;
  while (completed < num_worlds) {
    const size_t hi = std::min(num_worlds, completed + check_every);
    const RangeOutcome range = RunWorldRange(simulation, options, completed,
                                             hi, max_llrs.data(),
                                             /*stoppable=*/true);
    if (!range.complete) {
      // Error stop (cancel / deadline / injected) inside the chunk: report
      // the absolute contiguous prefix, exactly like a non-adaptive run.
      outcome->worlds_completed = completed + range.completed;
      outcome->complete = false;
      outcome->stop_cause = range.stop_cause;
      outcome->stop_reason = McStopReason::kNone;
      max_llrs.resize(outcome->worlds_completed);
      return max_llrs;
    }
    for (size_t w = completed; w < hi; ++w) {
      if (max_llrs[w] >= observed) ++exceed;
    }
    completed = hi;
    if (completed >= min_worlds && completed < num_worlds) {
      double ci_lo = 0.0, ci_hi = 1.0;
      WilsonBounds(exceed, completed, options.adaptive.z, &ci_lo, &ci_hi);
      // The rank-p guards keep the stop verdict consistent with the p-value
      // the served prefix itself yields — a response built from this
      // calibration must agree with the reason we stopped computing it.
      const double rank_p = static_cast<double>(1 + exceed) /
                            static_cast<double>(completed + 1);
      if (ci_hi < alpha && rank_p <= alpha) {
        reason = McStopReason::kCiBelowAlpha;
        break;
      }
      if (ci_lo > alpha && rank_p > alpha) {
        reason = McStopReason::kCiAboveAlpha;
        break;
      }
    }
  }

  max_llrs.resize(completed);
  outcome->worlds_completed = completed;
  outcome->complete = true;
  outcome->stop_cause = Status::OK();
  outcome->stop_reason = reason;
  return max_llrs;
}

}  // namespace

std::vector<double> RunMonteCarloWorlds(const StatisticSimulation& simulation,
                                        const MonteCarloOptions& options,
                                        McRunOutcome* outcome) {
  if (options.adaptive.enabled) {
    // Adaptive runs always report through an outcome: the short maxima
    // vector is only interpretable alongside its stop metadata.
    McRunOutcome local;
    return RunAdaptiveMonteCarloWorlds(simulation, options,
                                       outcome != nullptr ? outcome : &local);
  }
  std::vector<double> max_llrs(options.num_worlds, 0.0);
  const bool stoppable = outcome != nullptr;
  const RangeOutcome range = RunWorldRange(simulation, options, 0,
                                           max_llrs.size(), max_llrs.data(),
                                           stoppable);
  if (!stoppable) return max_llrs;
  outcome->worlds_completed = range.completed;
  outcome->complete = range.complete;
  outcome->stop_cause = range.stop_cause;
  outcome->stop_reason = McStopReason::kNone;
  max_llrs.resize(range.completed);
  return max_llrs;
}

std::vector<double> RunMonteCarloWorlds(const StatisticSimulation& simulation,
                                        const MonteCarloOptions& options) {
  return RunMonteCarloWorlds(simulation, options, nullptr);
}

std::vector<double> RunMonteCarloWorlds(const RegionFamily& family, double rho,
                                        uint64_t total_positives,
                                        stats::ScanDirection direction,
                                        const MonteCarloOptions& options) {
  const BernoulliScanStatistic statistic(direction, family.num_points(),
                                         total_positives, rho);
  const std::unique_ptr<StatisticSimulation> simulation =
      statistic.MakeSimulation(family, options);
  return RunMonteCarloWorlds(*simulation, options);
}

}  // namespace sfa::core
