#include "core/mc_engine.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "core/bernoulli_statistic.h"

namespace sfa::core {

std::vector<double> RunMonteCarloWorlds(const StatisticSimulation& simulation,
                                        const MonteCarloOptions& options) {
  std::vector<double> max_llrs(options.num_worlds, 0.0);

  if (options.engine == McEngine::kReference) {
    auto run_world = [&](size_t w) {
      max_llrs[w] = simulation.RunWorldReference(w);
    };
    if (options.parallel) {
      DefaultThreadPool().ParallelFor(max_llrs.size(), run_world);
    } else {
      for (size_t w = 0; w < max_llrs.size(); ++w) run_world(w);
    }
    return max_llrs;
  }

  const size_t batch_size = std::max<uint32_t>(1, options.batch_size);
  const size_t num_batches = (max_llrs.size() + batch_size - 1) / batch_size;
  auto run_batch = [&](size_t g) {
    const size_t w_lo = g * batch_size;
    const size_t w_hi = std::min<size_t>(max_llrs.size(), w_lo + batch_size);
    simulation.RunWorldBatch(w_lo, w_hi, max_llrs.data());
  };
  if (options.parallel) {
    DefaultThreadPool().ParallelFor(num_batches, run_batch);
  } else {
    for (size_t g = 0; g < num_batches; ++g) run_batch(g);
  }
  return max_llrs;
}

std::vector<double> RunMonteCarloWorlds(const RegionFamily& family, double rho,
                                        uint64_t total_positives,
                                        stats::ScanDirection direction,
                                        const MonteCarloOptions& options) {
  const BernoulliScanStatistic statistic(direction, family.num_points(),
                                         total_positives, rho);
  const std::unique_ptr<StatisticSimulation> simulation =
      statistic.MakeSimulation(family, options);
  return RunMonteCarloWorlds(*simulation, options);
}

}  // namespace sfa::core
