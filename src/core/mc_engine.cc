#include "core/mc_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/bernoulli_statistic.h"

namespace sfa::core {

namespace {

/// Shared early-stop state for one run. The first batch to observe a stop
/// condition records the cause; everyone after skips without running.
struct StopState {
  std::atomic<bool> stopped{false};
  std::mutex mu;
  Status cause;

  void Trip(Status why) {
    std::unique_lock<std::mutex> lock(mu);
    if (!stopped.load(std::memory_order_relaxed)) {
      cause = std::move(why);
      stopped.store(true, std::memory_order_release);
    }
  }
};

/// The per-batch-boundary stop poll: cancel wins over deadline (a cancelled
/// request's deadline is moot), the `mc_engine.batch` failpoint is the
/// deterministic drill lever for both.
Status CheckStop(const MonteCarloOptions& options) {
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return Status::Cancelled("cancelled during Monte Carlo calibration");
  }
  if (options.deadline != std::chrono::steady_clock::time_point{} &&
      std::chrono::steady_clock::now() >= options.deadline) {
    return Status::DeadlineExceeded(
        "deadline expired during Monte Carlo calibration");
  }
  SFA_FAILPOINT("mc_engine.batch");
  return Status::OK();
}

}  // namespace

std::vector<double> RunMonteCarloWorlds(const StatisticSimulation& simulation,
                                        const MonteCarloOptions& options,
                                        McRunOutcome* outcome) {
  std::vector<double> max_llrs(options.num_worlds, 0.0);

  // The reference engine is "batches" of one world; the batched engine works
  // in batch_size chunks. Either way the stop poll happens before a chunk
  // starts, never inside one, so a completed chunk is always whole.
  const size_t batch_size =
      options.engine == McEngine::kReference
          ? 1
          : std::max<uint32_t>(1, options.batch_size);
  const size_t num_batches = (max_llrs.size() + batch_size - 1) / batch_size;
  const bool stoppable = outcome != nullptr;

  auto run_batch = [&](size_t g) {
    const size_t w_lo = g * batch_size;
    const size_t w_hi = std::min<size_t>(max_llrs.size(), w_lo + batch_size);
    if (options.engine == McEngine::kReference) {
      for (size_t w = w_lo; w < w_hi; ++w) {
        max_llrs[w] = simulation.RunWorldReference(w);
      }
    } else {
      simulation.RunWorldBatch(w_lo, w_hi, max_llrs.data());
    }
  };

  StopState stop;
  std::vector<uint8_t> batch_done(stoppable ? num_batches : 0, uint8_t{0});
  auto guarded_batch = [&](size_t g) {
    // Liveness first, in BOTH modes: a lease heartbeat must keep flowing
    // even for runs that opted out of early stop (no outcome), or a healthy
    // long simulation would look dead to the cross-process fabric and get
    // taken over mid-flight.
    if (options.heartbeat) options.heartbeat();
    if (!stoppable) {
      run_batch(g);
      return;
    }
    if (stop.stopped.load(std::memory_order_acquire)) return;
    if (Status s = CheckStop(options); !s.ok()) {
      stop.Trip(std::move(s));
      return;
    }
    run_batch(g);
    batch_done[g] = 1;  // one writer per index; ParallelFor joins before reads
  };

  if (options.parallel) {
    DefaultThreadPool().ParallelFor(num_batches, guarded_batch);
  } else {
    for (size_t g = 0; g < num_batches; ++g) {
      if (stoppable && stop.stopped.load(std::memory_order_acquire)) break;
      guarded_batch(g);
    }
  }

  if (!stoppable) return max_llrs;

  if (!stop.stopped.load(std::memory_order_acquire)) {
    outcome->worlds_completed = max_llrs.size();
    outcome->complete = true;
    outcome->stop_cause = Status::OK();
    return max_llrs;
  }
  // Keep only the contiguous completed prefix: batches finished out of order
  // beyond the first gap are discarded so the surviving maxima depend only on
  // (options, worlds_completed), not on scheduling.
  size_t done_batches = 0;
  while (done_batches < num_batches && batch_done[done_batches] != 0) {
    ++done_batches;
  }
  outcome->worlds_completed =
      std::min(max_llrs.size(), done_batches * batch_size);
  outcome->complete = false;
  {
    std::unique_lock<std::mutex> lock(stop.mu);
    outcome->stop_cause = stop.cause;
  }
  max_llrs.resize(outcome->worlds_completed);
  return max_llrs;
}

std::vector<double> RunMonteCarloWorlds(const StatisticSimulation& simulation,
                                        const MonteCarloOptions& options) {
  return RunMonteCarloWorlds(simulation, options, nullptr);
}

std::vector<double> RunMonteCarloWorlds(const RegionFamily& family, double rho,
                                        uint64_t total_positives,
                                        stats::ScanDirection direction,
                                        const MonteCarloOptions& options) {
  const BernoulliScanStatistic statistic(direction, family.num_points(),
                                         total_positives, rho);
  const std::unique_ptr<StatisticSimulation> simulation =
      statistic.MakeSimulation(family, options);
  return RunMonteCarloWorlds(*simulation, options);
}

}  // namespace sfa::core
