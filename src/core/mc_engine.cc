#include "core/mc_engine.h"

#include <algorithm>
#include <memory>

#include "common/macros.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "stats/distributions.h"

namespace sfa::core {

namespace {

/// Max Λ over all regions from a row of positive counts, using the shared
/// k·log k table. Region point counts are pre-gathered into `region_n` so the
/// hot loop makes no virtual calls.
double MaxLlrFromCounts(const uint64_t* positives,
                        const std::vector<uint64_t>& region_n, uint64_t total_n,
                        uint64_t total_p, stats::ScanDirection direction,
                        const stats::LogLikelihoodTable& table) {
  double max_llr = 0.0;
  const size_t num_regions = region_n.size();
  // Inlined table LLR with the per-world constant null term hoisted out of
  // the region loop. Operation order matches
  // stats::BernoulliLogLikelihoodRatio(counts, direction, table) exactly —
  // (ll_in + ll_out) - null with the same gating — so maxima are bit-equal
  // to the stats-layer evaluation (asserted by test_mc_engine.cc).
  const double null_ll = table.MaxBernoulliLogLikelihood(total_p, total_n);
  for (size_t r = 0; r < num_regions; ++r) {
    const uint64_t n = region_n[r];
    const uint64_t p = positives[r];
    const uint64_t n_out = total_n - n;
    const uint64_t p_out = total_p - p;
    if (n == 0 || n_out == 0) continue;
    const auto lhs = static_cast<unsigned __int128>(p) * n_out;
    const auto rhs = static_cast<unsigned __int128>(p_out) * n;
    if (lhs == rhs) continue;
    if (direction == stats::ScanDirection::kHigh && lhs < rhs) continue;
    if (direction == stats::ScanDirection::kLow && lhs > rhs) continue;
    const double llr = table.MaxBernoulliLogLikelihood(p, n) +
                       table.MaxBernoulliLogLikelihood(p_out, n_out) - null_ll;
    if (llr > max_llr) max_llr = llr;
  }
  return max_llr;
}

/// Per-cell Binomial(n_c, ρ) samplers, built once per simulation: (n_c, ρ)
/// never change across worlds, so each cell's alias table turns every world's
/// draw into one uniform + two loads (stats::FixedBinomialSampler). The last
/// sampler covers the points outside every cell (they shift total P only).
struct CellSamplerBank {
  std::vector<stats::FixedBinomialSampler> cells;
  stats::FixedBinomialSampler outside;

  CellSamplerBank(const CellDecomposition& decomposition, double rho) {
    cells.reserve(decomposition.cell_counts.size());
    for (uint32_t n_c : decomposition.cell_counts) {
      cells.emplace_back(n_c, rho);
    }
    if (decomposition.num_outside > 0) {
      outside = stats::FixedBinomialSampler(decomposition.num_outside, rho);
    }
  }
};

/// Draws one closed-form Bernoulli null world over a cell decomposition.
/// Returns the world's total positive count. Cell order is fixed, so for a
/// given per-world RNG the draw is identical in every engine.
uint64_t DrawCellWorld(const CellSamplerBank& bank, Rng* rng,
                       uint32_t* cell_positives) {
  uint64_t total_p = 0;
  const size_t num_cells = bank.cells.size();
  for (size_t c = 0; c < num_cells; ++c) {
    const auto p = static_cast<uint32_t>(bank.cells[c].Draw(rng));
    cell_positives[c] = p;
    total_p += p;
  }
  total_p += bank.outside.Draw(rng);
  return total_p;
}

/// Everything per-world execution needs, precomputed once per simulation and
/// shared read-only across worker threads.
struct SimulationContext {
  const RegionFamily& family;
  double rho;
  uint64_t total_positives;
  stats::ScanDirection direction;
  const MonteCarloOptions& options;
  stats::LogLikelihoodTable table;
  std::vector<uint64_t> region_n;
  const CellDecomposition* cells;  // non-null => closed-form sampling
  std::unique_ptr<CellSamplerBank> samplers;  // non-null iff cells is
  Rng root;

  SimulationContext(const RegionFamily& family_in, double rho_in,
                    uint64_t total_positives_in, stats::ScanDirection direction_in,
                    const MonteCarloOptions& options_in)
      : family(family_in),
        rho(rho_in),
        total_positives(total_positives_in),
        direction(direction_in),
        options(options_in),
        table(family_in.num_points()),
        cells(options_in.closed_form_cells &&
                      options_in.null_model == NullModel::kBernoulli
                  ? family_in.cell_decomposition()
                  : nullptr),
        root(options_in.seed) {
    region_n.resize(family.num_regions());
    for (size_t r = 0; r < region_n.size(); ++r) region_n[r] = family.PointCount(r);
    if (cells != nullptr) {
      samplers = std::make_unique<CellSamplerBank>(*cells, rho);
    }
  }
};

// ------------------------------------------------------------- reference ---

/// The reference strategy: one world at a time, fresh buffers per world, the
/// family's scalar counting interface. Kept as the semantic baseline the
/// batched engine must match bit-for-bit.
void RunWorldReference(const SimulationContext& ctx, size_t w,
                       std::vector<double>* max_llrs) {
  Rng rng = ctx.root.Split(w);
  const size_t num_regions = ctx.family.num_regions();
  const uint64_t total_n = ctx.family.num_points();
  if (ctx.cells != nullptr) {
    std::vector<uint32_t> cell_positives(ctx.cells->cell_counts.size());
    const uint64_t total_p =
        DrawCellWorld(*ctx.samplers, &rng, cell_positives.data());
    std::vector<uint64_t> counts(num_regions);
    ctx.family.CountPositivesFromCells(cell_positives.data(), counts.data());
    (*max_llrs)[w] = MaxLlrFromCounts(counts.data(), ctx.region_n, total_n, total_p,
                                      ctx.direction, ctx.table);
    return;
  }
  const Labels labels =
      ctx.options.null_model == NullModel::kBernoulli
          ? Labels::SampleBernoulli(total_n, ctx.rho, &rng)
          : Labels::SamplePermutation(total_n, ctx.total_positives, &rng);
  std::vector<uint64_t> counts;
  ctx.family.CountPositives(labels, &counts);
  (*max_llrs)[w] = MaxLlrFromCounts(counts.data(), ctx.region_n, total_n,
                                    labels.positive_count(), ctx.direction,
                                    ctx.table);
}

// --------------------------------------------------------------- batched ---

/// Thread-local buffer pool: label worlds, count rows, cell draws, and the
/// permutation shuffle buffer all live here, so after a worker's first batch
/// the steady state allocates nothing.
struct BatchArena {
  std::vector<Labels> labels;
  std::vector<const Labels*> label_ptrs;
  std::vector<uint64_t> counts;          // batch x num_regions, row-major
  std::vector<uint32_t> cell_positives;  // one world's cell draws
  std::vector<uint64_t> region_counts;   // one world's folded region counts
  std::vector<uint32_t> perm_scratch;
};

BatchArena& LocalArena() {
  static thread_local BatchArena arena;
  return arena;
}

void RunBatch(const SimulationContext& ctx, size_t batch_index, size_t batch_size,
              std::vector<double>* max_llrs) {
  const size_t w_lo = batch_index * batch_size;
  const size_t w_hi = std::min<size_t>(max_llrs->size(), w_lo + batch_size);
  const size_t worlds = w_hi - w_lo;
  const size_t num_regions = ctx.family.num_regions();
  const uint64_t total_n = ctx.family.num_points();
  BatchArena& arena = LocalArena();

  if (ctx.cells != nullptr) {
    // Closed-form worlds: O(cells) sampling dominates and has no cross-world
    // memory traffic to amortize, so the batch is a plain loop over pooled
    // buffers.
    arena.cell_positives.resize(ctx.cells->cell_counts.size());
    arena.region_counts.resize(num_regions);
    for (size_t w = w_lo; w < w_hi; ++w) {
      Rng rng = ctx.root.Split(w);
      const uint64_t total_p =
          DrawCellWorld(*ctx.samplers, &rng, arena.cell_positives.data());
      ctx.family.CountPositivesFromCells(arena.cell_positives.data(),
                                         arena.region_counts.data());
      (*max_llrs)[w] = MaxLlrFromCounts(arena.region_counts.data(), ctx.region_n,
                                        total_n, total_p, ctx.direction, ctx.table);
    }
    return;
  }

  if (arena.labels.size() < worlds) arena.labels.resize(worlds);
  arena.label_ptrs.resize(worlds);
  arena.counts.resize(worlds * num_regions);
  for (size_t j = 0; j < worlds; ++j) {
    Rng rng = ctx.root.Split(w_lo + j);
    if (ctx.options.null_model == NullModel::kBernoulli) {
      arena.labels[j].ResampleBernoulli(total_n, ctx.rho, &rng);
    } else {
      arena.labels[j].ResamplePermutation(total_n, ctx.total_positives, &rng,
                                          &arena.perm_scratch);
    }
    arena.label_ptrs[j] = &arena.labels[j];
  }
  ctx.family.CountPositivesBatch(arena.label_ptrs.data(), worlds,
                                 arena.counts.data());
  for (size_t j = 0; j < worlds; ++j) {
    (*max_llrs)[w_lo + j] = MaxLlrFromCounts(
        arena.counts.data() + j * num_regions, ctx.region_n, total_n,
        arena.labels[j].positive_count(), ctx.direction, ctx.table);
  }
}

}  // namespace

std::vector<double> RunMonteCarloWorlds(const RegionFamily& family, double rho,
                                        uint64_t total_positives,
                                        stats::ScanDirection direction,
                                        const MonteCarloOptions& options) {
  const SimulationContext ctx(family, rho, total_positives, direction, options);
  std::vector<double> max_llrs(options.num_worlds, 0.0);

  if (options.engine == McEngine::kReference) {
    auto run_world = [&](size_t w) { RunWorldReference(ctx, w, &max_llrs); };
    if (options.parallel) {
      DefaultThreadPool().ParallelFor(max_llrs.size(), run_world);
    } else {
      for (size_t w = 0; w < max_llrs.size(); ++w) run_world(w);
    }
    return max_llrs;
  }

  const size_t batch_size = std::max<uint32_t>(1, options.batch_size);
  const size_t num_batches = (max_llrs.size() + batch_size - 1) / batch_size;
  auto run_batch = [&](size_t g) { RunBatch(ctx, g, batch_size, &max_llrs); };
  if (options.parallel) {
    DefaultThreadPool().ParallelFor(num_batches, run_batch);
  } else {
    for (size_t g = 0; g < num_batches; ++g) run_batch(g);
  }
  return max_llrs;
}

}  // namespace sfa::core
