#include "core/evidence.h"

#include <algorithm>
#include <unordered_map>

namespace sfa::core {

std::vector<RegionFinding> TopK(const std::vector<RegionFinding>& findings,
                                size_t k) {
  std::vector<RegionFinding> out(findings.begin(),
                                 findings.begin() +
                                     static_cast<ptrdiff_t>(std::min(k, findings.size())));
  return out;
}

std::vector<RegionFinding> BestPerGroup(const std::vector<RegionFinding>& findings) {
  std::unordered_map<uint32_t, const RegionFinding*> best;
  for (const RegionFinding& f : findings) {
    auto [it, inserted] = best.try_emplace(f.group, &f);
    if (!inserted && f.llr > it->second->llr) it->second = &f;
  }
  std::vector<RegionFinding> out;
  out.reserve(best.size());
  for (const auto& [group, finding] : best) out.push_back(*finding);
  std::sort(out.begin(), out.end(), [](const RegionFinding& a, const RegionFinding& b) {
    return a.llr > b.llr;
  });
  return out;
}

std::vector<RegionFinding> SelectNonOverlapping(
    const std::vector<RegionFinding>& findings) {
  std::vector<RegionFinding> sorted = findings;
  std::sort(sorted.begin(), sorted.end(),
            [](const RegionFinding& a, const RegionFinding& b) {
              return a.llr > b.llr;
            });
  std::vector<RegionFinding> kept;
  for (const RegionFinding& f : sorted) {
    const bool overlaps = std::any_of(
        kept.begin(), kept.end(),
        [&f](const RegionFinding& k) { return k.rect.Intersects(f.rect); });
    if (!overlaps) kept.push_back(f);
  }
  return kept;
}

}  // namespace sfa::core
