#include "core/meanvar.h"

#include <algorithm>

#include "common/macros.h"
#include "stats/descriptive.h"

namespace sfa::core {

Result<MeanVarResult> ComputeMeanVar(
    const data::OutcomeDataset& dataset,
    const std::vector<geo::Partitioning>& partitionings,
    const MeanVarOptions& options) {
  SFA_RETURN_NOT_OK(dataset.Validate());
  if (dataset.empty()) return Status::InvalidArgument("empty dataset");
  if (partitionings.empty()) {
    return Status::InvalidArgument("MeanVar needs at least one partitioning");
  }

  MeanVarResult result;
  result.per_partitioning_variance.reserve(partitionings.size());
  const auto t_count = static_cast<double>(partitionings.size());

  for (size_t t = 0; t < partitionings.size(); ++t) {
    const geo::Partitioning& partitioning = partitionings[t];
    const uint32_t num_partitions = partitioning.num_partitions();
    std::vector<uint64_t> n_counts(num_partitions, 0);
    std::vector<uint64_t> p_counts(num_partitions, 0);
    const std::vector<uint32_t> assignment =
        partitioning.AssignPartitions(dataset.locations());
    for (size_t i = 0; i < assignment.size(); ++i) {
      ++n_counts[assignment[i]];
      p_counts[assignment[i]] += dataset.predicted()[i];
    }

    // Measures of (by default) non-empty partitions.
    stats::RunningStats measure_stats;
    for (uint32_t j = 0; j < num_partitions; ++j) {
      if (n_counts[j] == 0) {
        if (options.skip_empty_partitions) continue;
        measure_stats.Add(0.0);
      } else {
        measure_stats.Add(static_cast<double>(p_counts[j]) /
                          static_cast<double>(n_counts[j]));
      }
    }
    const double variance = measure_stats.variance_population();
    const double mean = measure_stats.mean();
    const auto k_count = static_cast<double>(measure_stats.count());
    result.per_partitioning_variance.push_back(variance);

    // Contributions: variance = sum_j (m_j - mean)^2 / K, so partition j's
    // share of MeanVar is (m_j - mean)^2 / (K * T).
    for (uint32_t j = 0; j < num_partitions; ++j) {
      if (n_counts[j] == 0 && options.skip_empty_partitions) continue;
      PartitionContribution c;
      c.partitioning_index = t;
      c.partition_id = j;
      c.rect = partitioning.PartitionRectById(j);
      c.n = n_counts[j];
      c.p = p_counts[j];
      c.measure = n_counts[j] == 0
                      ? 0.0
                      : static_cast<double>(p_counts[j]) /
                            static_cast<double>(n_counts[j]);
      c.deviation = c.measure - mean;
      c.contribution =
          k_count == 0.0 ? 0.0 : c.deviation * c.deviation / (k_count * t_count);
      result.ranked_partitions.push_back(c);
    }
  }

  result.mean_var = stats::Mean(result.per_partitioning_variance);
  std::sort(result.ranked_partitions.begin(), result.ranked_partitions.end(),
            [](const PartitionContribution& a, const PartitionContribution& b) {
              return a.contribution > b.contribution;
            });
  return result;
}

}  // namespace sfa::core
