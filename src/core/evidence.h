// Evidence post-processing (paper §4.3): turning the ranked list of
// significant regions into a digestible exhibit — top-k selection, the
// best-region-per-scan-center reduction, and greedy non-overlapping
// selection ("we select a set of non-overlapping regions ... for each center
// we keep the region with the highest value of the statistic").
#ifndef SFA_CORE_EVIDENCE_H_
#define SFA_CORE_EVIDENCE_H_

#include <cstddef>
#include <vector>

#include "core/audit.h"

namespace sfa::core {

/// First k findings (they are already ranked by Λ descending).
std::vector<RegionFinding> TopK(const std::vector<RegionFinding>& findings,
                                size_t k);

/// Keeps only the highest-Λ finding within each group (for SquareScanFamily
/// the group is the scan center, so this keeps the best side length per
/// center).
std::vector<RegionFinding> BestPerGroup(const std::vector<RegionFinding>& findings);

/// Greedy non-overlapping selection: walk findings in descending Λ order and
/// keep each region whose rectangle does not intersect any already-kept
/// rectangle. Combined with BestPerGroup this reproduces the paper's Fig. 5
/// exhibit.
std::vector<RegionFinding> SelectNonOverlapping(
    const std::vector<RegionFinding>& findings);

}  // namespace sfa::core

#endif  // SFA_CORE_EVIDENCE_H_
