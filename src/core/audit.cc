#include "core/audit.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "stats/bernoulli_scan.h"

namespace sfa::core {

Result<AuditResult> Auditor::Audit(const data::OutcomeDataset& dataset,
                                   const RegionFamily& family) const {
  SFA_ASSIGN_OR_RETURN(data::OutcomeDataset view,
                       BuildMeasureView(dataset, options_.measure));
  return AuditView(view, family);
}

Result<AuditResult> Auditor::AuditView(const data::OutcomeDataset& view,
                                       const RegionFamily& family) const {
  return AuditView(view, family, /*calibration=*/nullptr, /*scratch=*/nullptr);
}

Result<AuditResult> Auditor::AuditView(const data::OutcomeDataset& view,
                                       const RegionFamily& family,
                                       const NullDistribution* calibration,
                                       AuditScratch* scratch) const {
  SFA_RETURN_NOT_OK(view.Validate());
  if (view.empty()) return Status::InvalidArgument("empty audit view");
  if (view.size() != family.num_points()) {
    return Status::InvalidArgument(StrFormat(
        "region family is bound to %zu points but the measure view has %zu; "
        "build the family from the view's locations",
        family.num_points(), view.size()));
  }
  if (options_.alpha <= 0.0 || options_.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }

  AuditResult result;
  result.alpha = options_.alpha;

  // Observed world (scratch recycles the label buffers across pooled calls).
  AuditScratch local_scratch;
  AuditScratch& s = scratch != nullptr ? *scratch : local_scratch;
  s.observed_labels.AssignBytes(view.predicted().data(), view.predicted().size());
  result.observed = ScanAllRegions(family, s.observed_labels, options_.direction,
                                   s.TableFor(view.size()));
  result.tau = result.observed.max_llr;
  result.best_region = result.observed.argmax;
  result.total_n = result.observed.total_n;
  result.total_p = result.observed.total_p;
  result.overall_rate = view.PositiveRate();

  // Null calibration: injected (calibration cache) or simulated in place.
  if (calibration != nullptr) {
    result.null_distribution = *calibration;
  } else {
    SFA_ASSIGN_OR_RETURN(
        result.null_distribution,
        SimulateNull(family, result.overall_rate, result.total_p,
                     options_.direction, options_.monte_carlo));
  }
  result.p_value = result.null_distribution.PValue(result.tau);
  result.spatially_fair = result.p_value > options_.alpha;
  result.critical_value = result.null_distribution.CriticalValue(options_.alpha);

  // Evidence: regions individually significant against the null max
  // distribution, ranked by Λ (equivalently by SUL, since log SUL =
  // Λ + log L0max and L0max is constant across regions).
  const double log_null =
      stats::NullLogLikelihood(result.total_p, result.total_n);
  for (size_t r = 0; r < family.num_regions(); ++r) {
    const double llr = result.observed.llr[r];
    if (!(llr > result.critical_value)) continue;
    const RegionDescriptor desc = family.Describe(r);
    RegionFinding finding;
    finding.region_index = r;
    finding.rect = desc.rect;
    finding.label = desc.label;
    finding.group = desc.group;
    finding.n = family.PointCount(r);
    finding.p = result.observed.positives[r];
    finding.local_rate =
        finding.n == 0 ? 0.0
                       : static_cast<double>(finding.p) / static_cast<double>(finding.n);
    finding.llr = llr;
    finding.log_sul = llr + log_null;
    finding.significant = true;
    result.findings.push_back(std::move(finding));
  }
  // Tie-break on region index: equal-Λ findings (e.g. two partitions with
  // the same counts) must rank identically on every platform — the pipeline
  // determinism contract and the golden pins cover finding order.
  std::sort(result.findings.begin(), result.findings.end(),
            [](const RegionFinding& a, const RegionFinding& b) {
              if (a.llr != b.llr) return a.llr > b.llr;
              return a.region_index < b.region_index;
            });
  return result;
}

bool ResultsBitIdentical(const AuditResult& a, const AuditResult& b) {
  if (a.spatially_fair != b.spatially_fair || a.p_value != b.p_value ||
      a.tau != b.tau || a.best_region != b.best_region ||
      a.critical_value != b.critical_value || a.alpha != b.alpha ||
      a.total_n != b.total_n || a.total_p != b.total_p ||
      a.overall_rate != b.overall_rate) {
    return false;
  }
  if (a.observed.llr != b.observed.llr ||
      a.observed.positives != b.observed.positives ||
      a.observed.max_llr != b.observed.max_llr ||
      a.observed.argmax != b.observed.argmax ||
      a.observed.total_n != b.observed.total_n ||
      a.observed.total_p != b.observed.total_p) {
    return false;
  }
  if (a.null_distribution.sorted_max() != b.null_distribution.sorted_max()) {
    return false;
  }
  if (a.findings.size() != b.findings.size()) return false;
  for (size_t i = 0; i < a.findings.size(); ++i) {
    const RegionFinding& fa = a.findings[i];
    const RegionFinding& fb = b.findings[i];
    if (fa.region_index != fb.region_index || !(fa.rect == fb.rect) ||
        fa.label != fb.label || fa.group != fb.group || fa.n != fb.n ||
        fa.p != fb.p || fa.local_rate != fb.local_rate || fa.llr != fb.llr ||
        fa.log_sul != fb.log_sul || fa.significant != fb.significant) {
      return false;
    }
  }
  return true;
}

}  // namespace sfa::core
